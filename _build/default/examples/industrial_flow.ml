(* Full industrial-style evaluation of one c-suite circuit: the three
   flows (IndEDA proxy, HiDaP, handFP oracle) through the shared
   measurement pipeline, plus the paper's Fig 9 artifacts (density maps
   as PPM images, the top-level Gdf diagram as SVG).

   Run with: dune exec examples/industrial_flow.exe [-- circuit]
   (default circuit: c1; c2..c8 are progressively larger). *)

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "c1" in
  let circuit =
    match Circuitgen.Suite.find name with
    | Some c -> c
    | None ->
      Format.eprintf "unknown circuit %s (use c1..c8)@." name;
      exit 1
  in
  let design = Circuitgen.Gen.generate circuit.Circuitgen.Suite.params in
  let flat = Netlist.Flat.elaborate design in
  Format.printf "%a@." Netlist.Flat.pp_summary flat;
  Format.printf "paper counterpart: %d cells, %d macros (cells scaled 1:100 here)@.@."
    circuit.Circuitgen.Suite.paper_cells circuit.Circuitgen.Suite.paper_macros;
  let res = Evalflow.run_all ~name design in
  List.iter
    (fun (r : Evalflow.run) ->
      let m = r.Evalflow.metrics in
      Format.printf
        "%-7s WL %.3f m (norm %.3f)  GRC %.2f%%  WNS %.1f%%  TNS %.0f  runtime %.2f s@."
        (Evalflow.flow_name r.Evalflow.kind) m.Evalflow.wl_m
        (Evalflow.normalized_wl res r.Evalflow.kind)
        m.Evalflow.grc_pct m.Evalflow.wns_pct m.Evalflow.tns m.Evalflow.runtime_s)
    res.Evalflow.runs;
  (* Fig 9-style artifacts *)
  let dir = "example_artifacts" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun (r : Evalflow.run) ->
      let grid = Evalflow.density_map r ~flat ~bins:24 in
      let path =
        Filename.concat dir
          (Printf.sprintf "%s_density_%s.ppm" name (Evalflow.flow_name r.Evalflow.kind))
      in
      Viz.Ppm.write_file path (Viz.Ppm.of_density grid ());
      Format.printf "wrote %s@." path)
    res.Evalflow.runs;
  let r = Hidap.place flat in
  (match r.Hidap.top with
  | Some top ->
    let blocks =
      Array.to_list
        (Array.mapi
           (fun i (b : Hidap.Block.t) ->
             (b.Hidap.Block.name, top.Hidap.Floorplan.inst_rects.(i), b.Hidap.Block.macro_count))
           top.Hidap.Floorplan.inst_blocks)
    in
    let svg =
      Viz.Svg.dataflow_diagram ~die:r.Hidap.die ~blocks
        ~affinity:top.Hidap.Floorplan.inst_affinity ()
    in
    let path = Filename.concat dir (Printf.sprintf "%s_gdf.svg" name) in
    Viz.Svg.write_file path svg;
    Format.printf "wrote %s (top-level dataflow diagram)@." path
  | None -> ());
  (* density ASCII for a quick look *)
  let hidap_run =
    List.find (fun (r : Evalflow.run) -> r.Evalflow.kind = Evalflow.HiDaP) res.Evalflow.runs
  in
  Format.printf "@.HiDaP cell-density map:@.%s@."
    (Viz.Ascii.density (Evalflow.density_map hidap_run ~flat ~bins:24) ~width:48 ~height:18 ())
