examples/industrial_flow.mli:
