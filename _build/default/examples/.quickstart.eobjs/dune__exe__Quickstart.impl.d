examples/quickstart.ml: Array Circuitgen Format Geom Hidap List Netlist Viz
