examples/shape_explore.ml: Circuitgen Format Hidap Hier List Netlist Shape Util
