examples/industrial_flow.ml: Array Circuitgen Evalflow Filename Format Hidap List Netlist Printf Sys Unix Viz
