examples/lambda_sweep.mli:
