examples/shape_explore.mli:
