examples/lambda_sweep.ml: Array Cellplace Char Circuitgen Evalflow Format Hidap List Netlist Seqgraph String Viz
