examples/hnl_roundtrip.mli:
