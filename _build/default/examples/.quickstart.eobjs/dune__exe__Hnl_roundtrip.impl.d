examples/hnl_roundtrip.ml: Array Format Geom Hidap Hnl List Netlist Viz
