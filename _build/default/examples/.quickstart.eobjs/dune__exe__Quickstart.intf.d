examples/quickstart.mli:
