(* The paper's Figs 2-3 scenario: four macro blocks A-D communicating
   through a standard-cell block X. Sweeping the dataflow blend
   parameter lambda shows why both flows matter:

   - lambda = 1 (block flow only): A-D hug X but their relative
     positions ignore the A -> B/C -> D macro dataflow;
   - lambda = 0 (macro flow only): the macros follow the dataflow but X
     can end up anywhere;
   - blended lambda places X between the blocks it serves AND orders the
     blocks along the dataflow (the paper's Fig 3c).

   Run with: dune exec examples/lambda_sweep.exe *)

let () =
  let design = Circuitgen.Suite.fig2_system () in
  let flat = Netlist.Flat.elaborate design in
  let gseq = Seqgraph.build flat in
  let config = Hidap.Config.default in
  let die = Hidap.die_for flat ~config in
  let ports = Hidap.Port_plan.make gseq ~die in
  let best = ref (infinity, 0.0) in
  List.iter
    (fun lambda ->
      let config = Hidap.Config.with_lambda config lambda in
      let r = Hidap.place ~config ~die flat in
      let macros =
        List.map
          (fun (p : Hidap.macro_placement) ->
            { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect; orient = p.Hidap.orient })
          r.Hidap.placements
      in
      let m, _ = Evalflow.measure ~flat ~gseq ~ports ~die ~macros in
      if m.Evalflow.wl_um < fst !best then best := (m.Evalflow.wl_um, lambda);
      Format.printf "lambda = %.2f -> wirelength %.0f um, WNS %.1f%%@." lambda
        m.Evalflow.wl_um m.Evalflow.wns_pct;
      match r.Hidap.top with
      | Some top ->
        let rects =
          Array.to_list
            (Array.mapi
               (fun i (b : Hidap.Block.t) ->
                 ( (if b.Hidap.Block.macro_count > 0 then
                      String.make 1 (Char.chr (Char.code 'A' + (i mod 26)))
                    else "x"),
                   top.Hidap.Floorplan.inst_rects.(i) ))
               top.Hidap.Floorplan.inst_blocks)
        in
        print_string (Viz.Ascii.floorplan ~die ~rects ~width:40 ~height:14 ())
      | None -> ())
    [ 0.0; 0.2; 0.5; 0.8; 1.0 ];
  let wl, lambda = !best in
  Format.printf "best lambda %.2f (WL %.0f um) — the paper keeps the best of 3@." lambda wl
