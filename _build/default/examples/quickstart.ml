(* Quickstart: build a small hierarchical design with the netlist API,
   run the full HiDaP flow on it and inspect the result.

   Run with: dune exec examples/quickstart.exe

   The design mirrors the paper's Fig. 1: two subsystems of 8 memory
   macros joined by a cells-only connector. HiDaP recovers that
   structure: the first declustering level has three blocks (8 macros /
   cells / 8 macros), and the recursion fixes all 16 macros. *)

module D = Netlist.Design

let () =
  (* 1. A hierarchical netlist with array information. The generator
     builds the same kind of design you would write by hand: units with
     macros behind register stages named stage0_0, stage0_1, ... *)
  let design = Circuitgen.Suite.fig1_design () in

  (* ...or write modules directly with the API: *)
  let tiny =
    D.design ~top:"tiny"
      ~modules:
        [ D.module_def ~name:"tiny"
            ~ports:[ D.port ~name:"clk_in" ~dir:D.Input ]
            ~cells:
              [ D.cell ~name:"ram0" ~kind:(D.make_macro ~w:30.0 ~h:20.0)
                  ~ins:[ "clk_in" ] ~outs:[ "q0" ] ();
                D.cell ~name:"r_0" ~kind:D.Flop ~ins:[ "q0" ] ~outs:[ "d0" ] () ]
            () ]
  in
  (match D.validate tiny with
  | Ok () -> print_endline "tiny design validates"
  | Error e -> Format.printf "validation error: %a@." D.pp_error e);

  (* 2. Elaborate to the flat netlist (Gnet) and look at it. *)
  let flat = Netlist.Flat.elaborate design in
  Format.printf "%a@." Netlist.Flat.pp_summary flat;

  (* 3. Run the placer: hierarchy tree -> shape curves -> recursive
     dataflow-driven floorplan -> flipping. *)
  let result = Hidap.place flat in
  Format.printf "placed %d macros in a %.0f x %.0f die (lambda=%.1f)@."
    (List.length result.Hidap.placements)
    result.Hidap.die.Geom.Rect.w result.Hidap.die.Geom.Rect.h result.Hidap.lambda;
  Format.printf "macro overlap: %.3f (0 = legal), all inside die: %b@."
    (Hidap.overlap_area result)
    (Hidap.placement_bbox_ok result);

  (* 4. Render the floorplan. *)
  let rects =
    List.map (fun (p : Hidap.macro_placement) -> ("M", p.Hidap.rect)) result.Hidap.placements
  in
  print_string (Viz.Ascii.floorplan ~die:result.Hidap.die ~rects ~width:56 ~height:24 ());

  (* 5. Each placement carries coordinates and orientation. *)
  List.iteri
    (fun i (p : Hidap.macro_placement) ->
      if i < 4 then
        Format.printf "  %s -> %a %s@."
          flat.Netlist.Flat.nodes.(p.Hidap.fid).Netlist.Flat.path Geom.Rect.pp p.Hidap.rect
          (Geom.Orientation.to_string p.Hidap.orient))
    result.Hidap.placements;
  Format.printf "  ... (%d more)@." (max 0 (List.length result.Hidap.placements - 4))
