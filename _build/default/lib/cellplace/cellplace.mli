(** Standard-cell global placement substrate.

    Places the movable cells (flops and combinational gates) of a flat
    netlist with macros and ports fixed, in two phases:

    + {e connectivity optimization}: iterated star-model averaging (a
      Jacobi relaxation of the quadratic wirelength objective) pulls each
      cell to the weighted centroid of its nets, anchored by the fixed
      macros and ports;
    + {e spreading}: a deterministic slice-based spreader distributes
      cells over the die's free area (macros act as blockages), roughly
      preserving the relative order found by phase 1.

    The same engine evaluates every macro-placement flow, mirroring the
    paper's protocol ("metrics are taken after placement of standard
    cells using the same tool"). *)

type macro_place = {
  fid : int;
  rect : Geom.Rect.t;
  orient : Geom.Orientation.t;
}

type t = {
  positions : Geom.Point.t array;  (** per flat node id (cells and ports) *)
  die : Geom.Rect.t;
  movable : bool array;  (** per flat node id *)
}

type params = {
  iterations : int;  (** star-model relaxation sweeps *)
  spread_grid : int;  (** spreading slices per axis *)
  smooth_iterations : int;  (** post-spreading relaxation sweeps *)
}

val default_params : params

val run :
  ?params:params ->
  flat:Netlist.Flat.t ->
  macros:macro_place list ->
  port_pos:(int -> Geom.Point.t option) ->
  die:Geom.Rect.t ->
  unit ->
  t
(** [port_pos fid] gives the position of flat port [fid]; ports without a
    position default to the die boundary point nearest the die centre
    (degenerate, but keeps the solver total). *)

val density_map :
  t -> flat:Netlist.Flat.t -> macros:macro_place list -> bins:int -> float array array
(** [bins x bins] grid of placement density (cell area per bin area,
    macros included); row 0 is the bottom of the die. *)

val macro_pin_position :
  flat:Netlist.Flat.t -> macros:macro_place list -> int -> dir:[ `In | `Out ] ->
  Geom.Point.t option
(** Pin position of a macro flat node under the flipping pin model. *)
