module G = Graphlib.Digraph

type t = {
  nodes : int;
  macros : int;
  flops : int;
  combs : int;
  ports : int;
  nets : int;
  edges : int;
  scopes : int;
  max_depth : int;
  cell_area : float;
  macro_area : float;
  macro_area_pct : float;
  max_fanout : int;
  avg_fanout : float;
  comb_depth : int;
}

(* Longest path in the combinational subgraph via topological order;
   -1 when a combinational loop exists. *)
let comb_depth (flat : Flat.t) =
  let keep v = Flat.is_comb flat.Flat.nodes.(v) in
  let sub, _, _ = G.map_nodes flat.Flat.gnet ~keep in
  match Graphlib.Traversal.topological_order sub with
  | None -> -1
  | Some order ->
    let n = G.node_count sub in
    let depth = Array.make n 1 in
    let best = ref 0 in
    Array.iter
      (fun u ->
        G.succ_iter sub u (fun v -> if depth.(u) + 1 > depth.(v) then depth.(v) <- depth.(u) + 1);
        if depth.(u) > !best then best := depth.(u))
      order;
    if n = 0 then 0 else !best

let compute (flat : Flat.t) =
  let count p = Array.fold_left (fun acc n -> if p n then acc + 1 else acc) 0 flat.Flat.nodes in
  let macros = count Flat.is_macro in
  let flops = count Flat.is_flop in
  let combs = count Flat.is_comb in
  let ports = count Flat.is_port in
  let cell_area = Flat.total_cell_area flat in
  let macro_area =
    Array.fold_left
      (fun acc (n : Flat.node) -> if Flat.is_macro n then acc +. n.Flat.area else acc)
      0.0 flat.Flat.nodes
  in
  let max_depth =
    Array.fold_left
      (fun acc (s : Flat.scope) ->
        let rec depth sid d =
          if flat.Flat.scopes.(sid).Flat.sparent < 0 then d
          else depth flat.Flat.scopes.(sid).Flat.sparent (d + 1)
        in
        max acc (depth s.Flat.sid 0))
      0 flat.Flat.scopes
  in
  let max_fanout, fanout_sum, driven_nets =
    Array.fold_left
      (fun (mx, sum, n) (_, sinks) ->
        let f = Array.length sinks in
        if f > 0 then (max mx f, sum + f, n + 1) else (mx, sum, n))
      (0, 0, 0) flat.Flat.net_pins
  in
  { nodes = Array.length flat.Flat.nodes;
    macros;
    flops;
    combs;
    ports;
    nets = flat.Flat.net_count;
    edges = G.edge_count flat.Flat.gnet;
    scopes = Array.length flat.Flat.scopes;
    max_depth;
    cell_area;
    macro_area;
    macro_area_pct = (if cell_area > 0.0 then 100.0 *. macro_area /. cell_area else 0.0);
    max_fanout;
    avg_fanout =
      (if driven_nets > 0 then float_of_int fanout_sum /. float_of_int driven_nets else 0.0);
    comb_depth = comb_depth flat }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>nodes: %d (%d macros, %d flops, %d comb, %d ports)@,\
     nets: %d (%d edges), fanout avg %.2f max %d@,\
     hierarchy: %d scopes, depth %d@,\
     area: %.0f total, %.0f macro (%.1f%%)@,\
     longest combinational path: %d cells@]"
    t.nodes t.macros t.flops t.combs t.ports t.nets t.edges t.avg_fanout t.max_fanout
    t.scopes t.max_depth t.cell_area t.macro_area t.macro_area_pct t.comb_depth
