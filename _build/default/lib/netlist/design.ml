type direction = Input | Output

type macro_info = { mw : float; mh : float }

type cell_kind =
  | Macro of macro_info
  | Flop
  | Comb

type cell_decl = {
  cname : string;
  ckind : cell_kind;
  carea : float;
  cins : string list;
  couts : string list;
}

type port_decl = { pname : string; pdir : direction }

type inst_decl = {
  iname : string;
  imodule : string;
  bindings : (string * string) list;
}

type module_def = {
  mname : string;
  ports : port_decl list;
  cells : cell_decl list;
  insts : inst_decl list;
}

type t = { top : string; modules : (string * module_def) list }

let make_macro ~w ~h = Macro { mw = w; mh = h }

let default_area = function
  | Macro { mw; mh } -> mw *. mh
  | Flop | Comb -> 1.0

let cell ~name ~kind ?area ~ins ~outs () =
  let carea = match area with Some a -> a | None -> default_area kind in
  { cname = name; ckind = kind; carea; cins = ins; couts = outs }

let port ~name ~dir = { pname = name; pdir = dir }

let inst ~name ~module_ ~bindings = { iname = name; imodule = module_; bindings }

let module_def ~name ?(ports = []) ?(cells = []) ?(insts = []) () =
  { mname = name; ports; cells; insts }

let design ~top ~modules = { top; modules = List.map (fun m -> (m.mname, m)) modules }

let find_module t name = List.assoc_opt name t.modules

type error =
  | Missing_module of string
  | Duplicate_module of string
  | Unknown_port of { module_ : string; inst : string; port : string }
  | Duplicate_cell of { module_ : string; cell : string }
  | Recursive_instantiation of string

let pp_error ppf = function
  | Missing_module m -> Format.fprintf ppf "missing module %s" m
  | Duplicate_module m -> Format.fprintf ppf "duplicate module %s" m
  | Unknown_port { module_; inst; port } ->
    Format.fprintf ppf "instance %s in module %s binds unknown port %s" inst module_ port
  | Duplicate_cell { module_; cell } ->
    Format.fprintf ppf "duplicate cell %s in module %s" cell module_
  | Recursive_instantiation m -> Format.fprintf ppf "recursive instantiation of %s" m

let module_count t = List.length t.modules

let cell_area c = c.carea

let kind_name = function
  | Macro _ -> "macro"
  | Flop -> "flop"
  | Comb -> "comb"

let validate t =
  let ( let* ) r f = Result.bind r f in
  let* () =
    let seen = Hashtbl.create 16 in
    List.fold_left
      (fun acc (name, _) ->
        let* () = acc in
        if Hashtbl.mem seen name then Error (Duplicate_module name)
        else begin
          Hashtbl.add seen name ();
          Ok ()
        end)
      (Ok ()) t.modules
  in
  let* top =
    match find_module t t.top with
    | Some m -> Ok m
    | None -> Error (Missing_module t.top)
  in
  let check_module m =
    let seen = Hashtbl.create 16 in
    let* () =
      List.fold_left
        (fun acc c ->
          let* () = acc in
          if Hashtbl.mem seen c.cname then
            Error (Duplicate_cell { module_ = m.mname; cell = c.cname })
          else begin
            Hashtbl.add seen c.cname ();
            Ok ()
          end)
        (Ok ()) m.cells
    in
    List.fold_left
      (fun acc i ->
        let* () = acc in
        match find_module t i.imodule with
        | None -> Error (Missing_module i.imodule)
        | Some child ->
          let formal_ok (formal, _) =
            List.exists (fun p -> p.pname = formal) child.ports
          in
          (match List.find_opt (fun b -> not (formal_ok b)) i.bindings with
          | Some (formal, _) ->
            Error (Unknown_port { module_ = m.mname; inst = i.iname; port = formal })
          | None -> Ok ()))
      (Ok ()) m.insts
  in
  let* () =
    List.fold_left
      (fun acc (_, m) ->
        let* () = acc in
        check_module m)
      (Ok ()) t.modules
  in
  (* Recursion check: DFS over the instantiation DAG from top. *)
  let visiting = Hashtbl.create 16 in
  let done_ = Hashtbl.create 16 in
  let rec dfs m =
    if Hashtbl.mem done_ m.mname then Ok ()
    else if Hashtbl.mem visiting m.mname then Error (Recursive_instantiation m.mname)
    else begin
      Hashtbl.add visiting m.mname ();
      let* () =
        List.fold_left
          (fun acc i ->
            let* () = acc in
            match find_module t i.imodule with
            | Some child -> dfs child
            | None -> Error (Missing_module i.imodule))
          (Ok ()) m.insts
      in
      Hashtbl.remove visiting m.mname;
      Hashtbl.add done_ m.mname ();
      Ok ()
    end
  in
  dfs top
