(** Design statistics over the flat netlist: the numbers a physical
    designer checks before floorplanning. *)

type t = {
  nodes : int;
  macros : int;
  flops : int;
  combs : int;
  ports : int;
  nets : int;
  edges : int;
  scopes : int;
  max_depth : int;  (** deepest instance nesting *)
  cell_area : float;
  macro_area : float;
  macro_area_pct : float;  (** macro share of the total cell area *)
  max_fanout : int;  (** largest net driver fanout *)
  avg_fanout : float;
  comb_depth : int;
      (** longest purely combinational path (in cells); [-1] if the
          combinational subgraph has a cycle *)
}

val compute : Flat.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
