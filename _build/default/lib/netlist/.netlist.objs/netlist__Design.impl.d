lib/netlist/design.ml: Format Hashtbl List Result
