lib/netlist/design.mli: Format
