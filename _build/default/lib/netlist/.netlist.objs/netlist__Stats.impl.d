lib/netlist/stats.ml: Array Flat Format Graphlib
