lib/netlist/flat.ml: Array Design Format Graphlib Hashtbl List Util
