lib/netlist/flat.mli: Design Format Graphlib
