lib/netlist/stats.mli: Flat Format
