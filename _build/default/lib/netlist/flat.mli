(** Elaboration of a hierarchical netlist into the flat bit-level netlist
    graph Gnet (paper Table I).

    Every leaf cell of every module instance becomes one node; every
    top-level port becomes one node. Directed edges follow signal flow:
    net driver -> net sink. The instance tree is preserved as the scope
    table, from which the hierarchy tree HT is derived. *)

type node_kind =
  | Kmacro of Design.macro_info
  | Kflop
  | Kcomb
  | Kport of Design.direction

type node = {
  id : int;
  path : string;  (** full hierarchical name, e.g. [u_core/u_alu/acc_3] *)
  base : string;  (** leaf name, used for array clustering *)
  kind : node_kind;
  area : float;
  scope : int;  (** owning scope id; top-level ports use scope 0 *)
}

type scope = {
  sid : int;
  spath : string;  (** hierarchical instance path; [""] for top *)
  smodule : string;
  sparent : int;  (** [-1] for the top scope *)
  mutable schildren : int list;
  mutable scells : int list;  (** node ids of leaf cells directly in this scope *)
}

type t = {
  design_name : string;
  nodes : node array;
  scopes : scope array;
  gnet : Graphlib.Digraph.t;
  net_count : int;
  net_pins : (int array * int array) array;
      (** per net: (driver node ids, sink node ids) *)
}

val elaborate : Design.t -> t
(** Flatten the design. Raises [Invalid_argument] if {!Design.validate}
    would fail. *)

val is_macro : node -> bool
val is_flop : node -> bool
val is_comb : node -> bool
val is_port : node -> bool

val macros : t -> node list
(** All macro nodes, in id order. *)

val ports : t -> node list

val macro_count : t -> int

val cell_count : t -> int
(** Leaf cells (macros + flops + combs), excluding ports. *)

val total_cell_area : t -> float

val scope_of_node : t -> int -> scope

val pp_summary : Format.formatter -> t -> unit
