lib/report/table.mli:
