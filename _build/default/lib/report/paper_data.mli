(** The published numbers of the paper's evaluation (Tables II and III),
    used to print paper-vs-measured comparisons. *)

type flow_row = {
  wl_m : float;  (** wirelength in meters *)
  wl_norm : float;  (** normalized to handFP *)
  grc_pct : float;
  wns_pct : float;
  tns : float;
}

type circuit_rows = {
  name : string;
  cells : int;
  macros : int;
  indeda : flow_row;
  hidap : flow_row;
  handfp : flow_row;
}

val table3 : circuit_rows list
(** The 8 circuits of Table III. *)

val table2_wl_norm : float * float * float
(** Average normalized WL for (IndEDA, HiDaP, handFP): 1.143 / 1.013 /
    1.000. *)

val table2_wns : float * float * float
(** Average WNS%: -39.1 / -24.6 / -17.9. *)

val table2_effort : string * string * string
(** The published effort entries. *)

val find : string -> circuit_rows option
