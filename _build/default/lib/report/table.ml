type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ~header ?aligns rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.mapi (fun i _ -> if i = 0 then Left else Right) header
  in
  let all = header :: rows in
  let widths =
    List.init ncols (fun c ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row c with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
  in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let a = try List.nth aligns c with _ -> Right in
           let w = List.nth widths c in
           pad a w cell)
         row)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows) ^ "\n"

let fmt_f digits v = Printf.sprintf "%.*f" digits v

let fmt_pct v = Printf.sprintf "%.2f" v

let section title =
  let bar = String.make (max 8 (String.length title + 8)) '=' in
  Printf.sprintf "\n%s\n=== %s ===\n%s\n" bar title bar
