(** Column-aligned plain-text tables for the bench harness. *)

type align = Left | Right

val render : header:string list -> ?aligns:align list -> string list list -> string
(** Pads every column to its widest cell; a separator rule follows the
    header. [aligns] defaults to left for the first column, right
    elsewhere. *)

val fmt_f : int -> float -> string
(** Fixed-decimal float formatting. *)

val fmt_pct : float -> string

val section : string -> string
(** A titled horizontal rule used between bench sections. *)
