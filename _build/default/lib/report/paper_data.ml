type flow_row = {
  wl_m : float;
  wl_norm : float;
  grc_pct : float;
  wns_pct : float;
  tns : float;
}

type circuit_rows = {
  name : string;
  cells : int;
  macros : int;
  indeda : flow_row;
  hidap : flow_row;
  handfp : flow_row;
}

let row wl_m wl_norm grc_pct wns_pct tns = { wl_m; wl_norm; grc_pct; wns_pct; tns }

(* Paper Table III, transcribed verbatim. *)
let table3 =
  [ { name = "c1"; cells = 520_000; macros = 32;
      indeda = row 13.19 1.029 6.51 0.0 0.0;
      hidap = row 13.40 1.046 7.83 0.3 0.0;
      handfp = row 12.81 1.000 7.36 (-0.2) 0.0 };
    { name = "c2"; cells = 3_950_000; macros = 100;
      indeda = row 46.01 1.180 12.99 (-44.5) (-931.0);
      hidap = row 40.72 1.045 13.00 (-19.0) (-329.0);
      handfp = row 38.97 1.000 9.33 (-11.2) (-213.0) };
    { name = "c3"; cells = 3_780_000; macros = 94;
      indeda = row 44.83 1.175 10.09 (-75.5) (-553.0);
      hidap = row 35.02 0.918 8.29 (-17.5) (-260.0);
      handfp = row 38.16 1.000 9.15 (-17.8) (-317.0) };
    { name = "c4"; cells = 4_810_000; macros = 122;
      indeda = row 45.03 1.174 7.24 (-54.4) (-2167.0);
      hidap = row 40.43 1.054 4.94 (-31.2) (-2686.0);
      handfp = row 38.35 1.000 3.33 (-22.8) (-1736.0) };
    { name = "c5"; cells = 1_390_000; macros = 133;
      indeda = row 44.25 1.162 2.02 (-30.8) (-1940.0);
      hidap = row 39.51 1.038 4.72 (-25.1) (-1149.0);
      handfp = row 38.06 1.000 3.42 (-39.8) (-1017.0) };
    { name = "c6"; cells = 2_870_000; macros = 90;
      indeda = row 96.42 1.288 9.95 (-70.0) (-15341.0);
      hidap = row 79.20 1.058 2.22 (-37.0) (-5051.0);
      handfp = row 74.87 1.000 1.63 (-27.3) (-3688.0) };
    { name = "c7"; cells = 1_670_000; macros = 108;
      indeda = row 41.44 1.174 38.56 (-34.9) (-1060.0);
      hidap = row 35.52 1.007 6.47 (-29.9) (-1059.0);
      handfp = row 35.29 1.000 4.61 (-20.4) (-774.0) };
    { name = "c8"; cells = 2_200_000; macros = 37;
      indeda = row 24.85 0.987 1.02 (-3.4) (-44.0);
      hidap = row 23.75 0.944 1.37 0.0 0.0;
      handfp = row 25.17 1.000 0.93 (-3.9) (-24.0) } ]

let table2_wl_norm = (1.143, 1.013, 1.000)

let table2_wns = (-39.1, -24.6, -17.9)

let table2_effort = ("10-30 mins (CPU)", "0.5-2 hours (CPU)", "2-4 weeks (engineers + CPU)")

let find name = List.find_opt (fun c -> c.name = name) table3
