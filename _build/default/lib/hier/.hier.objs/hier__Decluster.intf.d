lib/hier/decluster.mli: Tree
