lib/hier/tree.mli: Format Netlist
