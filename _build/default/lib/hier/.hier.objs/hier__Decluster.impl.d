lib/hier/decluster.ml: Hashtbl List Queue Tree
