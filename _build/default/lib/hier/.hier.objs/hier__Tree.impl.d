lib/hier/tree.ml: Array Format Hashtbl List Netlist Util
