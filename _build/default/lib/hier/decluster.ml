type result = {
  hcb : int list;
  hcg : int list;
}

let run t ~nh ~open_frac ~min_frac =
  assert (min_frac > 0.0 && min_frac <= open_frac && open_frac <= 1.0);
  let total = Tree.area t nh in
  let open_area = open_frac *. total in
  let min_area = min_frac *. total in
  let hcb = ref [] and hcg = ref [] in
  let queue = Queue.create () in
  (match Tree.children t nh with
  | [] -> hcb := [ nh ]
  | kids -> List.iter (fun c -> Queue.push c queue) kids);
  while not (Queue.is_empty queue) do
    let m = Queue.pop queue in
    let children = Tree.children t m in
    if Tree.macro_count t m = 0 && Tree.area t m > open_area && children <> [] then
      List.iter (fun c -> Queue.push c queue) children
    else if Tree.area t m > min_area || Tree.macro_count t m > 0 then
      hcb := m :: !hcb
    else hcg := m :: !hcg
  done;
  { hcb = List.rev !hcb; hcg = List.rev !hcg }

let is_valid_cut t ~nh cut =
  let in_cut = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace in_cut id ()) cut;
  (* DFS counting cut crossings on each path; every leaf must see exactly
     one crossing. *)
  let ok = ref true in
  let rec go id crossings =
    let crossings = crossings + (if Hashtbl.mem in_cut id then 1 else 0) in
    match Tree.children t id with
    | [] -> if crossings <> 1 then ok := false
    | kids -> List.iter (fun c -> go c crossings) kids
  in
  (match Tree.children t nh with
  | [] -> if cut <> [ nh ] then ok := false
  | kids -> List.iter (fun c -> go c 0) kids);
  !ok
