(** Hierarchical declustering (paper §IV-B, Algorithm 3).

    Given a hierarchy node [nh], finds the hierarchy cut to use for
    floorplanning and splits it into HCB (blocks: nodes with macros or
    relatively big area) and HCG (small glue-logic nodes whose area is
    later absorbed into HCB blocks by target-area assignment).

    Parameters [open_frac] and [min_frac] are fractions of [area nh]
    (paper defaults 40% and 1%): a macro-free node bigger than
    [open_frac * area nh] is opened and its children explored instead;
    otherwise it lands in HCB when its area exceeds
    [min_frac * area nh] and in HCG when not. Nodes containing macros
    always become HCB blocks — the recursion of the top-level flow
    (Algorithm 2) takes care of opening them level by level. *)

type result = {
  hcb : int list;  (** HT node ids of the blocks, exploration order *)
  hcg : int list;  (** HT node ids of glue nodes *)
}

val run : Tree.t -> nh:int -> open_frac:float -> min_frac:float -> result
(** Requires [0 < min_frac] and [min_frac <= open_frac <= 1]. The search
    starts from the children of [nh] ([nh] itself is never a block of its
    own floorplan); when [nh] is a leaf, the result is a single HCB block
    [nh]. Every cell below [nh] is accounted for in exactly one returned
    node. *)

val is_valid_cut : Tree.t -> nh:int -> int list -> bool
(** Checks the hierarchy-cut property of §II-C: every root-to-leaf path of
    the subtree crosses exactly one node of the set. Used by tests. *)
