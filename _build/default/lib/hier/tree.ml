module Flat = Netlist.Flat

type kind =
  | Scope of int
  | Macro_cell of int
  | Glue of int

type node = {
  id : int;
  kind : kind;
  parent : int;
  children : int list;
  area : float;
  macro_count : int;
  name : string;
}

type t = {
  flat : Flat.t;
  nodes : node array;
  root : int;
  scope_ht : int array;  (* HT id of each scope *)
  glue_ht : int array;  (* HT glue-leaf id per scope, -1 if none *)
  macro_ht : (int, int) Hashtbl.t;  (* flat macro node id -> HT id *)
}

let build (flat : Flat.t) =
  let nscopes = Array.length flat.Flat.scopes in
  (* First pass: count HT nodes. Scope ids are preorder (parents first),
     which lets aggregates be computed by a reverse scan. *)
  let acc : node list ref = ref [] in
  let next = ref 0 in
  let scope_ht = Array.make nscopes (-1) in
  let glue_ht = Array.make nscopes (-1) in
  let macro_ht = Hashtbl.create 64 in
  let fresh kind parent name =
    let id = !next in
    incr next;
    acc := { id; kind; parent; children = []; area = 0.0; macro_count = 0; name } :: !acc;
    id
  in
  (* Create scope nodes in scope order so parents exist before children. *)
  Array.iter
    (fun (s : Flat.scope) ->
      let parent = if s.Flat.sparent < 0 then -1 else scope_ht.(s.Flat.sparent) in
      let name = if s.Flat.spath = "" then "<top>" else s.Flat.spath in
      scope_ht.(s.Flat.sid) <- fresh (Scope s.Flat.sid) parent name)
    flat.Flat.scopes;
  (* Macro leaves and glue leaves. *)
  Array.iter
    (fun (s : Flat.scope) ->
      let ht_parent = scope_ht.(s.Flat.sid) in
      let std_area = ref 0.0 in
      List.iter
        (fun cid ->
          let c = flat.Flat.nodes.(cid) in
          if Flat.is_macro c then begin
            let id = fresh (Macro_cell cid) ht_parent c.Flat.path in
            Hashtbl.replace macro_ht cid id
          end
          else std_area := !std_area +. c.Flat.area)
        s.Flat.scells;
      if !std_area > 0.0 then
        glue_ht.(s.Flat.sid) <-
          fresh (Glue s.Flat.sid) ht_parent (Util.Names.join s.Flat.spath "<cells>"))
    flat.Flat.scopes;
  let nodes = Array.of_list (List.rev !acc) in
  (* Children lists. *)
  let child_lists = Array.make (Array.length nodes) [] in
  Array.iter
    (fun n -> if n.parent >= 0 then child_lists.(n.parent) <- n.id :: child_lists.(n.parent))
    nodes;
  (* Aggregates, leaves first. Node ids are topological (parents first). *)
  let area = Array.make (Array.length nodes) 0.0 in
  let mcount = Array.make (Array.length nodes) 0 in
  for id = Array.length nodes - 1 downto 0 do
    let self_area, self_macros =
      match nodes.(id).kind with
      | Macro_cell cid -> (flat.Flat.nodes.(cid).Flat.area, 1)
      | Glue sid ->
        let a =
          List.fold_left
            (fun s cid ->
              let c = flat.Flat.nodes.(cid) in
              if Flat.is_macro c then s else s +. c.Flat.area)
            0.0 flat.Flat.scopes.(sid).Flat.scells
        in
        (a, 0)
      | Scope _ -> (0.0, 0)
    in
    let a, m =
      List.fold_left
        (fun (a, m) c -> (a +. area.(c), m + mcount.(c)))
        (self_area, self_macros) child_lists.(id)
    in
    area.(id) <- a;
    mcount.(id) <- m
  done;
  let nodes =
    Array.map
      (fun n ->
        { n with
          children = List.rev child_lists.(n.id);
          area = area.(n.id);
          macro_count = mcount.(n.id) })
      nodes
  in
  { flat; nodes; root = scope_ht.(0); scope_ht; glue_ht; macro_ht }

let flat t = t.flat

let root t = t.root

let node t id = t.nodes.(id)

let node_count t = Array.length t.nodes

let area t id = t.nodes.(id).area

let macro_count t id = t.nodes.(id).macro_count

let children t id = t.nodes.(id).children

let rec fold_subtree t id f acc =
  let acc = f acc t.nodes.(id) in
  List.fold_left (fun acc c -> fold_subtree t c f acc) acc t.nodes.(id).children

let macros_below t id =
  fold_subtree t id
    (fun acc n -> match n.kind with Macro_cell cid -> cid :: acc | Scope _ | Glue _ -> acc)
    []
  |> List.sort compare

let cells_below t id =
  fold_subtree t id
    (fun acc n ->
      match n.kind with
      | Macro_cell cid -> cid :: acc
      | Glue sid ->
        List.fold_left
          (fun acc cid ->
            if Flat.is_macro t.flat.Flat.nodes.(cid) then acc else cid :: acc)
          acc t.flat.Flat.scopes.(sid).Flat.scells
      | Scope _ -> acc)
    []
  |> List.sort compare

let ht_node_of_flat t cid =
  let c = t.flat.Flat.nodes.(cid) in
  if Flat.is_port c then invalid_arg "ht_node_of_flat: ports are not in HT";
  if Flat.is_macro c then Hashtbl.find t.macro_ht cid
  else begin
    let g = t.glue_ht.(c.Flat.scope) in
    assert (g >= 0);
    g
  end

let rec is_ancestor t ~ancestor id =
  if id < 0 then false
  else if id = ancestor then true
  else is_ancestor t ~ancestor t.nodes.(id).parent

let depth t id =
  let rec go id d = if t.nodes.(id).parent < 0 then d else go t.nodes.(id).parent (d + 1) in
  go id 0

let pp_node t ppf id =
  let n = t.nodes.(id) in
  Format.fprintf ppf "%s (area %.1f, %d macros)" n.name n.area n.macro_count
