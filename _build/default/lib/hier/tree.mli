(** Hierarchy tree HT (paper §II-C).

    Nodes represent levels of the RTL hierarchy. Every module instance
    (scope) is a node; in addition each hard macro is a leaf node of its
    scope ("at the leaf nodes of HT, the associated shape curve contains
    the possible shapes of its macro", §IV-A), and the standard cells
    declared directly in a scope are grouped into one synthetic glue leaf
    so that opening a scope never loses area. *)

type kind =
  | Scope of int  (** scope id in the flat netlist *)
  | Macro_cell of int  (** flat node id of a hard macro *)
  | Glue of int  (** direct standard cells of the given scope id *)

type node = {
  id : int;
  kind : kind;
  parent : int;  (** [-1] for the root *)
  children : int list;
  area : float;  (** total cell area (macros + std) in the subtree *)
  macro_count : int;  (** number of macros in the subtree *)
  name : string;  (** hierarchical name for reporting *)
}

type t

val build : Netlist.Flat.t -> t
(** Derive HT from the elaborated netlist. *)

val flat : t -> Netlist.Flat.t

val root : t -> int

val node : t -> int -> node

val node_count : t -> int

val area : t -> int -> float
(** Subtree cell area of a node — the paper's [area(n)]. *)

val macro_count : t -> int -> int
(** The paper's [macro_count(n)]. *)

val children : t -> int -> int list

val macros_below : t -> int -> int list
(** Flat node ids of all macros in the subtree, in increasing id order. *)

val cells_below : t -> int -> int list
(** Flat node ids of all leaf cells (macros + flops + combs) in the
    subtree. *)

val ht_node_of_flat : t -> int -> int
(** The HT leaf holding a given flat cell: its macro leaf for macros, the
    glue leaf of its scope otherwise. Raises [Invalid_argument] for
    ports. *)

val is_ancestor : t -> ancestor:int -> int -> bool
(** Reflexive ancestry test. *)

val depth : t -> int -> int

val pp_node : t -> Format.formatter -> int -> unit
