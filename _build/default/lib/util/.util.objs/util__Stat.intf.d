lib/util/stat.mli:
