lib/util/rng.mli:
