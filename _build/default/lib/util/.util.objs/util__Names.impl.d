lib/util/names.ml: List String
