lib/util/disjoint_set.mli:
