lib/util/heap.mli:
