lib/util/stat.ml: Array Float List
