lib/util/names.mli:
