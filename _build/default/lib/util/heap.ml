type 'a entry = { key : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty t = t.len = 0

let length t = t.len

let grow t =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = max 8 (cap * 2) in
    let nd = Array.make ncap t.data.(0) in
    Array.blit t.data 0 nd 0 t.len;
    t.data <- nd
  end

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(i).key < t.data.(parent).key then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && t.data.(l).key < t.data.(!smallest).key then smallest := l;
  if r < t.len && t.data.(r).key < t.data.(!smallest).key then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~key value =
  let e = { key; value } in
  if Array.length t.data = 0 then t.data <- Array.make 8 e;
  grow t;
  t.data.(t.len) <- e;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop_min t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some (top.key, top.value)
  end

let peek_min t = if t.len = 0 then None else Some (t.data.(0).key, t.data.(0).value)
