let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ :: _ -> ()

let geometric_mean xs =
  require_nonempty "geometric_mean" xs;
  let add_log acc x =
    if x <= 0.0 then invalid_arg "geometric_mean: non-positive element"
    else acc +. log x
  in
  let s = List.fold_left add_log 0.0 xs in
  exp (s /. float_of_int (List.length xs))

let mean xs =
  require_nonempty "mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum xs =
  require_nonempty "minimum" xs;
  List.fold_left min infinity xs

let maximum xs =
  require_nonempty "maximum" xs;
  List.fold_left max neg_infinity xs

let stddev xs =
  require_nonempty "stddev" xs;
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (sq /. float_of_int (List.length xs))

let median xs =
  require_nonempty "median" xs;
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let clamp_int ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let round_to ~digits x =
  let f = 10.0 ** float_of_int digits in
  Float.round (x *. f) /. f
