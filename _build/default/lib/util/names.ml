let is_digit c = c >= '0' && c <= '9'

let all_digits s = String.length s > 0 && String.for_all is_digit s

let array_base s =
  let n = String.length s in
  if n = 0 then None
  else if s.[n - 1] = ']' then
    (* name[i] form *)
    match String.rindex_opt s '[' with
    | None -> None
    | Some lb ->
      let idx = String.sub s (lb + 1) (n - lb - 2) in
      if all_digits idx && lb > 0 then Some (String.sub s 0 lb, int_of_string idx)
      else None
  else
    (* name_i form *)
    match String.rindex_opt s '_' with
    | None -> None
    | Some u ->
      let idx = String.sub s (u + 1) (n - u - 1) in
      if all_digits idx && u > 0 then Some (String.sub s 0 u, int_of_string idx)
      else None

let join a b = if a = "" then b else a ^ "/" ^ b

let split_path s = String.split_on_char '/' s |> List.filter (fun x -> x <> "")

let is_prefix ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix
