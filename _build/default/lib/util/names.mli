(** Name analysis for RTL array detection.

    The paper clusters ports and flops into multi-bit arrays by component
    name: [name[3]] and [name_3] both denote bit 3 of array [name]
    (§IV-D step 2). *)

val array_base : string -> (string * int) option
(** [array_base s] is [Some (base, index)] when [s] looks like an indexed
    array element ([base[i]] or [base_i] with a numeric suffix), [None]
    otherwise. *)

val join : string -> string -> string
(** Hierarchical path concatenation with ['/'], skipping empty prefixes. *)

val split_path : string -> string list
(** Inverse of repeated {!join}. *)

val is_prefix : prefix:string -> string -> bool
