(** Binary min-heap keyed by floats.

    Used by the shortest-path style searches in target-area assignment and
    the timing substrate. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> key:float -> 'a -> unit

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the entry with the smallest key. *)

val peek_min : 'a t -> (float * 'a) option
