type t = (int, float) Hashtbl.t

let create () = Hashtbl.create 8

let add t ~bin ~weight =
  assert (bin >= 0);
  let cur = try Hashtbl.find t bin with Not_found -> 0.0 in
  Hashtbl.replace t bin (cur +. weight)

let get t bin = try Hashtbl.find t bin with Not_found -> 0.0

let is_empty t = Hashtbl.length t = 0

let total t = Hashtbl.fold (fun _ v acc -> acc +. v) t 0.0

let max_bin t = Hashtbl.fold (fun b _ acc -> max b acc) t (-1)

let bins t =
  let l = Hashtbl.fold (fun b v acc -> (b, v) :: acc) t [] in
  List.sort (fun (a, _) (b, _) -> compare a b) l

let merge a b =
  let t = create () in
  let put bin v = add t ~bin ~weight:v in
  Hashtbl.iter put a;
  Hashtbl.iter put b;
  t

let score t ~k =
  assert (k >= 0);
  let term (bin, height) =
    let latency = float_of_int (max bin 1) in
    height /. (latency ** float_of_int k)
  in
  List.fold_left (fun acc b -> acc +. term b) 0.0 (bins t)

let pp ppf t =
  let pp_bin ppf (b, v) = Format.fprintf ppf "%d:%g" b v in
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp_bin)
    (bins t)
