(** Integer-binned histograms.

    Used to record dataflow edge information: bins index path latency
    (sequential element count) and heights accumulate bit counts
    (paper §IV-D). *)

type t

val create : unit -> t
(** Empty histogram. *)

val add : t -> bin:int -> weight:float -> unit
(** Accumulate [weight] into [bin]. Requires [bin >= 0]. *)

val get : t -> int -> float
(** Height of a bin (0 if never touched). *)

val is_empty : t -> bool

val total : t -> float
(** Sum of all heights. *)

val max_bin : t -> int
(** Largest occupied bin index; [-1] when empty. *)

val bins : t -> (int * float) list
(** Occupied (bin, height) pairs, sorted by bin. *)

val merge : t -> t -> t
(** Bin-wise sum; arguments unchanged. *)

val score : t -> k:int -> float
(** [score h ~k] is the paper's dataflow score
    [sum_i bits_i / latency_i^k] where bin 0 counts as latency 1
    (combinational paths are the tightest coupling). *)

val pp : Format.formatter -> t -> unit
