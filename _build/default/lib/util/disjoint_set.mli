(** Union–find with path compression and union by rank.

    Used for array clustering of sequential elements (paper §IV-D step 2)
    and for connectivity clustering in the IndEDA baseline. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets with elements [0 .. n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit
(** Merge the sets containing the two elements. *)

val same : t -> int -> int -> bool

val size : t -> int -> int
(** Cardinality of the set containing the element. *)

val groups : t -> int list array
(** All non-empty groups, each as a list of members; indexed arbitrarily. *)
