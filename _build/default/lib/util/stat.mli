(** Small statistics helpers used by the evaluation harness. *)

val geometric_mean : float list -> float
(** Geometric mean of strictly positive values; the paper reports
    wirelength averages this way "to reduce sensitivity to extreme
    values". Raises [Invalid_argument] on an empty list or a
    non-positive element. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on empty input. *)

val minimum : float list -> float
val maximum : float list -> float

val stddev : float list -> float
(** Population standard deviation; 0 for singleton lists. *)

val median : float list -> float

val clamp : lo:float -> hi:float -> float -> float

val clamp_int : lo:int -> hi:int -> int -> int

val round_to : digits:int -> float -> float
(** Round to a fixed number of decimal digits (for stable table output). *)
