type t = { parent : int array; rank : int array; count : int array }

let create n =
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = Array.make n 1 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let attach child root =
      t.parent.(child) <- root;
      t.count.(root) <- t.count.(root) + t.count.(child)
    in
    if t.rank.(ra) < t.rank.(rb) then attach ra rb
    else if t.rank.(ra) > t.rank.(rb) then attach rb ra
    else begin
      attach rb ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end
  end

let same t a b = find t a = find t b

let size t x = t.count.(find t x)

let groups t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let cur = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: cur)
  done;
  let acc = ref [] in
  Hashtbl.iter (fun _ members -> acc := members :: !acc) tbl;
  Array.of_list !acc
