(** Terminal rendering of floorplans and density maps. *)

val floorplan :
  die:Geom.Rect.t ->
  rects:(string * Geom.Rect.t) list ->
  ?width:int ->
  ?height:int ->
  unit ->
  string
(** Draw labelled rectangles in a character grid. Each rectangle is
    filled with the first character of its label; overlaps show ['#'].
    The die boundary is drawn with ['.']. Row 0 of the output is the top
    of the die. *)

val density :
  float array array -> ?width:int -> ?height:int -> unit -> string
(** Grey-ramp rendering of a density grid (column-major input as produced
    by {!Cellplace.density_map}: [grid.(ix).(iy)], [iy = 0] at the
    bottom). *)

val histogram_bar : float -> max:float -> width:int -> string
(** A left-aligned bar of ['▮']-style characters for table rendering. *)
