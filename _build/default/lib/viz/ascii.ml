module Rect = Geom.Rect

let floorplan ~die ~rects ?(width = 64) ?(height = 32) () =
  let grid = Array.make_matrix height width ' ' in
  (* die frame *)
  for x = 0 to width - 1 do
    grid.(0).(x) <- '.';
    grid.(height - 1).(x) <- '.'
  done;
  for y = 0 to height - 1 do
    grid.(y).(0) <- '.';
    grid.(y).(width - 1) <- '.'
  done;
  let to_grid (r : Rect.t) =
    let gx v = int_of_float ((v -. die.Rect.x) /. die.Rect.w *. float_of_int width) in
    let gy v = int_of_float ((v -. die.Rect.y) /. die.Rect.h *. float_of_int height) in
    let x0 = Util.Stat.clamp_int ~lo:0 ~hi:(width - 1) (gx r.Rect.x) in
    let x1 = Util.Stat.clamp_int ~lo:0 ~hi:(width - 1) (gx (r.Rect.x +. r.Rect.w) - 1) in
    let y0 = Util.Stat.clamp_int ~lo:0 ~hi:(height - 1) (gy r.Rect.y) in
    let y1 = Util.Stat.clamp_int ~lo:0 ~hi:(height - 1) (gy (r.Rect.y +. r.Rect.h) - 1) in
    (x0, max x0 x1, y0, max y0 y1)
  in
  List.iter
    (fun (label, r) ->
      let c = if String.length label > 0 then label.[0] else '?' in
      let x0, x1, y0, y1 = to_grid r in
      for y = y0 to y1 do
        for x = x0 to x1 do
          grid.(y).(x) <- (if grid.(y).(x) = ' ' || grid.(y).(x) = '.' then c else '#')
        done
      done)
    rects;
  let buf = Buffer.create (width * height) in
  (* top row of the die last in the grid's y order *)
  for y = height - 1 downto 0 do
    for x = 0 to width - 1 do
      Buffer.add_char buf grid.(y).(x)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let ramp = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |]

let density grid ?(width = 48) ?(height = 24) () =
  let nx = Array.length grid in
  if nx = 0 then ""
  else begin
    let ny = Array.length grid.(0) in
    let vmax =
      Array.fold_left (fun acc col -> Array.fold_left max acc col) 1e-12 grid
    in
    let buf = Buffer.create (width * height) in
    for row = height - 1 downto 0 do
      for col = 0 to width - 1 do
        let ix = Util.Stat.clamp_int ~lo:0 ~hi:(nx - 1) (col * nx / width) in
        let iy = Util.Stat.clamp_int ~lo:0 ~hi:(ny - 1) (row * ny / height) in
        let v = grid.(ix).(iy) /. vmax in
        let idx =
          Util.Stat.clamp_int ~lo:0 ~hi:(Array.length ramp - 1)
            (int_of_float (v *. float_of_int (Array.length ramp - 1)))
        in
        Buffer.add_char buf ramp.(idx)
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  end

let histogram_bar v ~max ~width =
  let n =
    if max <= 0.0 then 0
    else Util.Stat.clamp_int ~lo:0 ~hi:width (int_of_float (v /. max *. float_of_int width))
  in
  String.make n '|' ^ String.make (width - n) ' '
