(** Binary PPM (P6) image output for density maps (paper Fig. 9a-c). *)

val of_density : float array array -> ?pixels_per_bin:int -> unit -> string
(** Greyscale-to-heat rendering; input is column-major with [iy = 0] at
    the bottom, as produced by [Cellplace.density_map]. *)

val write_file : string -> string -> unit
