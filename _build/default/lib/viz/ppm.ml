(* Blue -> green -> yellow -> red heat ramp, like the paper's density
   maps. *)
let heat v =
  let v = Util.Stat.clamp ~lo:0.0 ~hi:1.0 v in
  let lerp a b t = int_of_float (a +. ((b -. a) *. t)) in
  if v < 0.33 then
    let t = v /. 0.33 in
    (lerp 30.0 40.0 t, lerp 60.0 200.0 t, lerp 180.0 120.0 t)
  else if v < 0.66 then
    let t = (v -. 0.33) /. 0.33 in
    (lerp 40.0 230.0 t, lerp 200.0 220.0 t, lerp 120.0 50.0 t)
  else
    let t = (v -. 0.66) /. 0.34 in
    (lerp 230.0 220.0 t, lerp 220.0 40.0 t, lerp 50.0 30.0 t)

let of_density grid ?(pixels_per_bin = 8) () =
  let nx = Array.length grid in
  let ny = if nx = 0 then 0 else Array.length grid.(0) in
  let w = nx * pixels_per_bin and h = ny * pixels_per_bin in
  let vmax = Array.fold_left (fun acc col -> Array.fold_left max acc col) 1e-12 grid in
  let buf = Buffer.create ((w * h * 3) + 32) in
  Buffer.add_string buf (Printf.sprintf "P6\n%d %d\n255\n" w h);
  for row = 0 to h - 1 do
    (* row 0 at the top of the image = highest y bin *)
    let iy = ny - 1 - (row / pixels_per_bin) in
    for col = 0 to w - 1 do
      let ix = col / pixels_per_bin in
      let r, g, b = heat (grid.(ix).(iy) /. vmax) in
      Buffer.add_char buf (Char.chr (Util.Stat.clamp_int ~lo:0 ~hi:255 r));
      Buffer.add_char buf (Char.chr (Util.Stat.clamp_int ~lo:0 ~hi:255 g));
      Buffer.add_char buf (Char.chr (Util.Stat.clamp_int ~lo:0 ~hi:255 b))
    done
  done;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc
