let escape s =
  String.concat ""
    (List.map
       (fun c -> match c with '"' -> "\\\"" | '\\' -> "\\\\" | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let hierarchy tree ?(max_depth = 4) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph HT {\n  rankdir=TB;\n  node [fontsize=10];\n";
  let rec emit id depth =
    let n = Hier.Tree.node tree id in
    let label =
      Printf.sprintf "%s\\n%.0f um2, %d macros" (escape n.Hier.Tree.name)
        n.Hier.Tree.area n.Hier.Tree.macro_count
    in
    let shape =
      match n.Hier.Tree.kind with
      | Hier.Tree.Macro_cell _ -> "box"
      | Hier.Tree.Glue _ -> "ellipse"
      | Hier.Tree.Scope _ -> "folder"
    in
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" id label shape);
    if depth < max_depth then
      List.iter
        (fun c ->
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id c);
          emit c (depth + 1))
        (Hier.Tree.children tree id)
    else if Hier.Tree.children tree id <> [] then begin
      Buffer.add_string buf
        (Printf.sprintf "  e%d [label=\"... %d more\", shape=plaintext];\n" id
           (List.length (Hier.Tree.children tree id)));
      Buffer.add_string buf (Printf.sprintf "  n%d -> e%d;\n" id id)
    end
  in
  emit (Hier.Tree.root tree) 0;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let seqgraph (g : Seqgraph.t) ?(min_width = 1) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph Gseq {\n  rankdir=LR;\n  node [fontsize=10];\n";
  Array.iter
    (fun (nd : Seqgraph.node) ->
      let shape, color =
        match nd.Seqgraph.kind with
        | Seqgraph.Macro _ -> ("box", "lightblue")
        | Seqgraph.Register _ -> ("ellipse", "white")
        | Seqgraph.Port _ -> ("diamond", "lightyellow")
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  n%d [label=\"%s\\n%d bits\", shape=%s, style=filled, fillcolor=%s];\n"
           nd.Seqgraph.id (escape nd.Seqgraph.name) nd.Seqgraph.bits shape color))
    g.Seqgraph.nodes;
  Array.iter
    (fun (e : Seqgraph.edge) ->
      if e.Seqgraph.width >= min_width then
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [label=\"%d/%d\"];\n" e.Seqgraph.src
             e.Seqgraph.dst e.Seqgraph.width e.Seqgraph.latency))
    g.Seqgraph.edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
