lib/viz/ascii.mli: Geom
