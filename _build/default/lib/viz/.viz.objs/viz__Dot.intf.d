lib/viz/dot.mli: Hier Seqgraph
