lib/viz/ppm.mli:
