lib/viz/dot.ml: Array Buffer Hier List Printf Seqgraph String
