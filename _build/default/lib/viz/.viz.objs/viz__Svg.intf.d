lib/viz/svg.mli: Geom
