lib/viz/ppm.ml: Array Buffer Char Printf Util
