lib/viz/svg.ml: Array Buffer Geom List Printf Util
