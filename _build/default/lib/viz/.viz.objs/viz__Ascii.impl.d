lib/viz/ascii.ml: Array Buffer Geom List String Util
