(** Graphviz DOT export: the hierarchy tree and the sequential graph, for
    offline inspection of a design's structure (the paper's interactive
    tool replacement, alongside the SVG dataflow diagram). *)

val hierarchy :
  Hier.Tree.t -> ?max_depth:int -> unit -> string
(** HT as a tree; macro leaves are boxes, glue leaves are ellipses.
    Subtrees below [max_depth] (default 4) are elided with a summary
    node. *)

val seqgraph : Seqgraph.t -> ?min_width:int -> unit -> string
(** Gseq with edge labels "width/latency"; edges narrower than
    [min_width] (default 1) are dropped to keep the graph readable. *)

val write_file : string -> string -> unit
