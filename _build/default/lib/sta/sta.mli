(** Static timing substrate (the paper's WNS% / TNS columns).

    Timing is analysed on the sequential graph Gseq: every edge is a
    register-to-register (or port/macro) path whose delay is a fixed
    logic component plus a linear wire component in the Manhattan
    distance between the placed endpoints. Paths with latency L cross
    L register stages, so the per-cycle delay of an edge is its total
    delay divided by its latency.

    The clock period is derived from the circuit alone (die size and
    logic depth), so it is identical across the flows being compared —
    only the wire term differs with macro placement quality. *)

type params = {
  gate_delay : float;  (** fixed per-edge logic delay (ps) *)
  wire_delay : float;  (** ps per micron of Manhattan distance *)
  clock_slack_factor : float;
      (** clock period = gate_delay + factor * wire_delay * die half
          perimeter *)
}

val default_params : params

type result = {
  clock_period : float;  (** ps *)
  wns : float;  (** worst negative slack, ps; >= 0 when timing is met *)
  wns_pct : float;  (** WNS as a percentage of the clock period, <= 0 *)
  tns : float;  (** total negative slack over endpoints, ps (<= 0) *)
  worst_edge : (int * int) option;  (** Gseq (src, dst) of the worst path *)
  failing_endpoints : int;
}

val analyze :
  ?params:params ->
  gseq:Seqgraph.t ->
  node_pos:(int -> Geom.Point.t) ->
  die:Geom.Rect.t ->
  unit ->
  result
(** [node_pos] gives the placed position of each Gseq node. *)
