module Rect = Geom.Rect
module Point = Geom.Point

type params = {
  gate_delay : float;
  wire_delay : float;
  clock_slack_factor : float;
}

(* A 100 ps logic stage and 0.5 ps/um wire give realistic proportions at
   the generator's micron scale. *)
let default_params = { gate_delay = 100.0; wire_delay = 0.5; clock_slack_factor = 0.35 }

type result = {
  clock_period : float;
  wns : float;
  wns_pct : float;
  tns : float;
  worst_edge : (int * int) option;
  failing_endpoints : int;
}

let analyze ?(params = default_params) ~gseq ~node_pos ~die () =
  let half_perimeter = die.Rect.w +. die.Rect.h in
  let clock_period =
    params.gate_delay
    +. (params.clock_slack_factor *. params.wire_delay *. half_perimeter)
  in
  (* Worst slack per endpoint (edge destination), so TNS counts each
     failing endpoint once, like a timing report. *)
  let endpoint_slack : (int, float * int) Hashtbl.t = Hashtbl.create 256 in
  Array.iter
    (fun (e : Seqgraph.edge) ->
      let d = Point.manhattan (node_pos e.Seqgraph.src) (node_pos e.Seqgraph.dst) in
      let stages = float_of_int (max 1 e.Seqgraph.latency) in
      let per_cycle_delay =
        params.gate_delay +. (params.wire_delay *. d /. stages)
      in
      let slack = clock_period -. per_cycle_delay in
      match Hashtbl.find_opt endpoint_slack e.Seqgraph.dst with
      | Some (s, _) when s <= slack -> ()
      | Some _ | None -> Hashtbl.replace endpoint_slack e.Seqgraph.dst (slack, e.Seqgraph.src))
    gseq.Seqgraph.edges;
  let wns = ref infinity and tns = ref 0.0 and failing = ref 0 in
  let worst = ref None in
  Hashtbl.iter
    (fun dst (slack, src) ->
      if slack < !wns then begin
        wns := slack;
        worst := Some (src, dst)
      end;
      if slack < 0.0 then begin
        tns := !tns +. slack;
        incr failing
      end)
    endpoint_slack;
  let wns = if !wns = infinity then 0.0 else !wns in
  { clock_period;
    wns;
    wns_pct = (if clock_period > 0.0 then 100.0 *. min 0.0 wns /. clock_period else 0.0);
    tns = !tns;
    worst_edge = !worst;
    failing_endpoints = !failing }
