module D = Netlist.Design

(* Fig. 1: 16 macros in two 8-macro subsystems with a cells-only
   connector between them. Unit structure 2 x (2 units x 4 macros). *)
let fig1_design () =
  Gen.generate
    { Gen.name = "fig1";
      seed = 16;
      n_subsystems = 2;
      units_per_subsystem = 2;
      n_macros = 16;
      bus_width = 12;
      pipe_stages = 1;
      target_cells = 1_500;
      macro_w = 55.0;
      macro_h = 40.0;
      port_arrays = 2;
      cross_links = 0;
      cell_area = 8.0 }

(* Fig. 2: four macro blocks A-D communicating through a std-cell block
   X. Hand-built so the connectivity matches the figure: A -> X -> B,
   A -> X -> C, B -> X -> D, C -> X -> D. *)
let fig2_system () =
  let w = 8 in
  let bits prefix = List.init w (fun i -> Printf.sprintf "%s_%d" prefix i) in
  let macro_block ~mname =
    (* in bus -> regs -> macro -> regs -> out bus *)
    let cells =
      List.concat
        (List.mapi
           (fun i inn ->
             [ D.cell ~name:(Printf.sprintf "ri_%d" i) ~kind:D.Flop ~ins:[ inn ]
                 ~outs:[ Printf.sprintf "d_%d" i ] () ])
           (bits "in"))
      @ [ D.cell ~name:"mem0" ~kind:(D.make_macro ~w:50.0 ~h:35.0) ~ins:(bits "d")
            ~outs:(bits "q") () ]
      @ List.concat
          (List.mapi
             (fun i out ->
               [ D.cell ~name:(Printf.sprintf "ro_%d" i) ~kind:D.Flop
                   ~ins:[ Printf.sprintf "q_%d" i ] ~outs:[ out ] () ])
             (bits "out"))
    in
    let ports =
      List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "in")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "out")
    in
    D.module_def ~name:mname ~ports ~cells ()
  in
  (* X: pure standard cells, two independent register crossings
     (A->B/C and B/C->D). *)
  let x_block =
    let cross tag =
      List.concat
        (List.mapi
           (fun i inn ->
             [ D.cell ~name:(Printf.sprintf "%sc_%d" tag i) ~kind:D.Comb ~ins:[ inn ]
                 ~outs:[ Printf.sprintf "%sn_%d" tag i ] ();
               D.cell
                 ~name:(Printf.sprintf "%sr_%d" tag i)
                 ~kind:D.Flop
                 ~ins:[ Printf.sprintf "%sn_%d" tag i ]
                 ~outs:[ Printf.sprintf "%sq_%d" tag i ]
                 ();
               D.cell ~name:(Printf.sprintf "%so_%d" tag i) ~kind:D.Comb
                 ~ins:[ Printf.sprintf "%sq_%d" tag i ]
                 ~outs:[ Printf.sprintf "%sout_%d" tag i ] () ])
           (bits (tag ^ "in")))
    in
    (* some extra glue bulk so X has visible area *)
    let filler =
      List.init 200 (fun j ->
          D.cell ~name:(Printf.sprintf "f_%d" j) ~kind:D.Comb
            ~ins:[ (if j = 0 then "ainq_0" else Printf.sprintf "fn_%d" (j - 1)) ]
            ~outs:[ Printf.sprintf "fn_%d" j ] ())
    in
    let ports =
      List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "ainin")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "ainout")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "binin")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "binout")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "cinin")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "cinout")
    in
    D.module_def ~name:"fig2_x" ~ports ~cells:(cross "ain" @ cross "bin" @ cross "cin" @ filler) ()
  in
  let bind formals actuals = List.map2 (fun f a -> (f, a)) formals actuals in
  let top =
    (* A -> X(ain) -> fan to B and C; B -> X(bin) -> D; C -> X(cin) -> D
       (the bin/cin crossings merge into D's input via top combs). *)
    let cells =
      List.mapi
        (fun i _ ->
          D.cell ~name:(Printf.sprintf "mrg_%d" i) ~kind:D.Comb
            ~ins:[ Printf.sprintf "bx_%d" i; Printf.sprintf "cx_%d" i ]
            ~outs:[ Printf.sprintf "din_%d" i ] ())
        (bits "d")
    in
    let insts =
      [ D.inst ~name:"blk_a" ~module_:"fig2_blk"
          ~bindings:(bind (bits "in") (bits "pin") @ bind (bits "out") (bits "aout"));
        D.inst ~name:"blk_x" ~module_:"fig2_x"
          ~bindings:
            (bind (bits "ainin") (bits "aout")
            @ bind (bits "ainout") (bits "xa")
            @ bind (bits "binin") (bits "bout")
            @ bind (bits "binout") (bits "bx")
            @ bind (bits "cinin") (bits "cout")
            @ bind (bits "cinout") (bits "cx"));
        D.inst ~name:"blk_b" ~module_:"fig2_blk"
          ~bindings:(bind (bits "in") (bits "xa") @ bind (bits "out") (bits "bout"));
        D.inst ~name:"blk_c" ~module_:"fig2_blk"
          ~bindings:(bind (bits "in") (bits "xa") @ bind (bits "out") (bits "cout"));
        D.inst ~name:"blk_d" ~module_:"fig2_blk"
          ~bindings:(bind (bits "in") (bits "din") @ bind (bits "out") (bits "pout")) ]
    in
    let ports =
      List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "pin")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "pout")
    in
    D.module_def ~name:"fig2" ~ports ~cells ~insts ()
  in
  D.design ~top:"fig2" ~modules:[ top; macro_block ~mname:"fig2_blk"; x_block ]

type circuit = {
  cname : string;
  params : Gen.params;
  paper_cells : int;
  paper_macros : int;
}

(* The paper's 8 circuits: macro counts kept exact, cell counts scaled
   1:100 (DESIGN.md §1). Structure parameters vary so the suite is not
   eight copies of one topology. *)
let c_suite () =
  let mk cname ~seed ~cells ~macros ~ss ~ups ~bw ~stages ~mw ~mh ~ports ~xl =
    { cname;
      paper_cells = cells;
      paper_macros = macros;
      params =
        { Gen.name = cname;
          seed;
          n_subsystems = ss;
          units_per_subsystem = ups;
          n_macros = macros;
          bus_width = bw;
          pipe_stages = stages;
          target_cells = cells / 100;
          macro_w = mw;
          macro_h = mh;
          port_arrays = ports;
          cross_links = xl;
          cell_area = 8.0 } }
  in
  [ mk "c1" ~seed:101 ~cells:520_000 ~macros:32 ~ss:2 ~ups:4 ~bw:16 ~stages:1
      ~mw:70.0 ~mh:50.0 ~ports:4 ~xl:1;
    mk "c2" ~seed:102 ~cells:3_950_000 ~macros:100 ~ss:4 ~ups:5 ~bw:24 ~stages:2
      ~mw:80.0 ~mh:55.0 ~ports:6 ~xl:2;
    mk "c3" ~seed:103 ~cells:3_780_000 ~macros:94 ~ss:4 ~ups:4 ~bw:24 ~stages:2
      ~mw:85.0 ~mh:50.0 ~ports:6 ~xl:1;
    mk "c4" ~seed:104 ~cells:4_810_000 ~macros:122 ~ss:5 ~ups:5 ~bw:28 ~stages:2
      ~mw:75.0 ~mh:55.0 ~ports:8 ~xl:2;
    mk "c5" ~seed:105 ~cells:1_390_000 ~macros:133 ~ss:6 ~ups:4 ~bw:16 ~stages:1
      ~mw:45.0 ~mh:35.0 ~ports:6 ~xl:1;
    mk "c6" ~seed:106 ~cells:2_870_000 ~macros:90 ~ss:3 ~ups:5 ~bw:20 ~stages:3
      ~mw:85.0 ~mh:60.0 ~ports:6 ~xl:1;
    mk "c7" ~seed:107 ~cells:1_670_000 ~macros:108 ~ss:4 ~ups:6 ~bw:16 ~stages:1
      ~mw:55.0 ~mh:40.0 ~ports:4 ~xl:2;
    mk "c8" ~seed:108 ~cells:2_200_000 ~macros:37 ~ss:2 ~ups:3 ~bw:20 ~stages:2
      ~mw:90.0 ~mh:65.0 ~ports:4 ~xl:1 ]

let find name = List.find_opt (fun c -> c.cname = name) (c_suite ())
