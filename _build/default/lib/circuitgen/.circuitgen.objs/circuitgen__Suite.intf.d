lib/circuitgen/suite.mli: Gen Netlist
