lib/circuitgen/gen.ml: Array Format List Netlist Printf Util
