lib/circuitgen/suite.ml: Gen List Netlist Printf
