(** Concrete designs used by the paper's figures and evaluation.

    - {!fig1_design}: the 16-macro design of Fig. 1 (two 8-macro
      subsystems joined by a cells-only connector);
    - {!fig2_system}: the 4-blocks-plus-X system of Figs. 2–3 (A feeds B
      and C through the std-cell block X; B and C feed D);
    - {!c_suite}: synthetic analogues c1'–c8' of the industrial circuits
      in Table III — identical macro counts, cell counts scaled 1:100. *)

val fig1_design : unit -> Netlist.Design.t

val fig2_system : unit -> Netlist.Design.t

type circuit = {
  cname : string;
  params : Gen.params;
  paper_cells : int;  (** cell count of the paper's circuit *)
  paper_macros : int;
}

val c_suite : unit -> circuit list

val find : string -> circuit option
(** Look a circuit up by name (["c1"] .. ["c8"]). *)
