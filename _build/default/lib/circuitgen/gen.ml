module D = Netlist.Design

type params = {
  name : string;
  seed : int;
  n_subsystems : int;
  units_per_subsystem : int;
  n_macros : int;
  bus_width : int;
  pipe_stages : int;
  target_cells : int;
  macro_w : float;
  macro_h : float;
  port_arrays : int;
  cross_links : int;
  cell_area : float;
}

let default =
  { name = "demo";
    seed = 7;
    n_subsystems = 2;
    units_per_subsystem = 2;
    n_macros = 8;
    bus_width = 16;
    pipe_stages = 1;
    target_cells = 2_000;
    macro_w = 60.0;
    macro_h = 40.0;
    port_arrays = 4;
    cross_links = 1;
    cell_area = 8.0 }

let scale_macros p ~n_macros = { p with n_macros }

let macro_count p = p.n_macros

(* ------------------------------------------------------------------ *)

let bit_names prefix w = List.init w (fun i -> Printf.sprintf "%s_%d" prefix i)

(* Distribute [total] into [n] buckets as evenly as possible. *)
let distribute total n =
  assert (n > 0);
  Array.init n (fun i -> (total / n) + if i < total mod n then 1 else 0)

(* A datapath unit: [in] bus -> (pipe regs -> macro)+ -> [out] bus.
   Units with zero macros degrade to a register pipeline. The module
   also carries [filler] chained combinational cells to reach the
   design's cell budget. *)
let unit_module ~p ~rng ~mname ~n_macros ~filler =
  let w = p.bus_width in
  let cells = ref [] in
  let add c = cells := c :: !cells in
  let comb ~name ~ins ~outs =
    add (D.cell ~name ~kind:D.Comb ~area:p.cell_area ~ins ~outs ())
  in
  let flop ~name ~ins ~outs =
    add (D.cell ~name ~kind:D.Flop ~area:p.cell_area ~ins ~outs ())
  in
  let cur = ref (bit_names "in" w) in
  let stage_and_macro k =
    (* pipe_stages register stages *)
    for s = 0 to p.pipe_stages - 1 do
      let next =
        List.mapi
          (fun i net ->
            let mixed =
              (* second input mixes neighbouring bits: creates a little
                 combinational cross-coupling inside the array *)
              List.nth !cur ((i + 1) mod w)
            in
            let cnet = Printf.sprintf "c%d_%d_%d" k s i in
            let qnet = Printf.sprintf "rq%d_%d_%d" k s i in
            comb ~name:(Printf.sprintf "g%d_%d_%d" k s i) ~ins:[ net; mixed ]
              ~outs:[ cnet ];
            flop ~name:(Printf.sprintf "stage%d_%d_%d" k s i) ~ins:[ cnet ] ~outs:[ qnet ];
            qnet)
          !cur
      in
      cur := next
    done;
    if k < n_macros then begin
      (* a hard memory macro consuming and producing the whole bus *)
      let jw = p.macro_w *. (0.85 +. Util.Rng.float rng 0.3) in
      let jh = p.macro_h *. (0.85 +. Util.Rng.float rng 0.3) in
      let outs = bit_names (Printf.sprintf "q%d" k) w in
      add
        (D.cell
           ~name:(Printf.sprintf "mem%d" k)
           ~kind:(D.make_macro ~w:jw ~h:jh)
           ~ins:!cur ~outs ());
      cur := outs
    end
  in
  let rounds = max n_macros 1 in
  for k = 0 to rounds - 1 do
    stage_and_macro k
  done;
  (* drive the output bus through a final combinational stage *)
  List.iteri
    (fun i net -> comb ~name:(Printf.sprintf "o_%d" i) ~ins:[ net ] ~outs:[ Printf.sprintf "out_%d" i ])
    !cur;
  (* filler chain hanging off the first current net *)
  if filler > 0 then begin
    let anchor = List.nth !cur 0 in
    let prev = ref anchor in
    for j = 0 to filler - 1 do
      let n = Printf.sprintf "fn_%d" j in
      comb ~name:(Printf.sprintf "f_%d" j) ~ins:[ !prev ] ~outs:[ n ];
      prev := n
    done
  end;
  let ports =
    List.map (fun n -> D.port ~name:n ~dir:D.Input) (bit_names "in" w)
    @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bit_names "out" w)
  in
  D.module_def ~name:mname ~ports ~cells:(List.rev !cells) ()

(* A cells-only connector block: registers plus glue between two buses,
   with optional tap inputs coming from elsewhere in the design. *)
let connector_module ~p ~mname ~taps ~filler =
  let w = p.bus_width in
  let a = p.cell_area in
  let cells = ref [] in
  let add c = cells := c :: !cells in
  let tap_nets = bit_names "tap" taps in
  List.iteri
    (fun i _ ->
      let inn = Printf.sprintf "in_%d" i in
      let extra = if taps > 0 then [ List.nth tap_nets (i mod taps) ] else [] in
      let cnet = Printf.sprintf "xc_%d" i in
      let qnet = Printf.sprintf "xq_%d" i in
      add (D.cell ~name:(Printf.sprintf "x_%d" i) ~kind:D.Comb ~area:a ~ins:(inn :: extra) ~outs:[ cnet ] ());
      add (D.cell ~name:(Printf.sprintf "xr_%d" i) ~kind:D.Flop ~area:a ~ins:[ cnet ] ~outs:[ qnet ] ());
      add
        (D.cell ~name:(Printf.sprintf "y_%d" i) ~kind:D.Comb ~area:a ~ins:[ qnet ]
           ~outs:[ Printf.sprintf "out_%d" i ] ()))
    (bit_names "in" w);
  if filler > 0 then begin
    let prev = ref "xq_0" in
    for j = 0 to filler - 1 do
      let n = Printf.sprintf "fn_%d" j in
      add (D.cell ~name:(Printf.sprintf "f_%d" j) ~kind:D.Comb ~area:a ~ins:[ !prev ] ~outs:[ n ] ());
      prev := n
    done
  end;
  let ports =
    List.map (fun n -> D.port ~name:n ~dir:D.Input) (bit_names "in" w)
    @ List.map (fun n -> D.port ~name:n ~dir:D.Input) tap_nets
    @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bit_names "out" w)
  in
  D.module_def ~name:mname ~ports ~cells:(List.rev !cells) ()

(* Subsystem: a chain of unit instances over internal buses. *)
let subsystem_module ~p ~mname ~unit_mnames =
  let w = p.bus_width in
  let n_units = List.length unit_mnames in
  let bus k = bit_names (Printf.sprintf "bus%d" k) w in
  let insts =
    List.mapi
      (fun k umod ->
        let ins = if k = 0 then bit_names "in" w else bus k in
        let outs = if k = n_units - 1 then bit_names "out" w else bus (k + 1) in
        let bindings =
          List.map2 (fun f a -> (f, a)) (bit_names "in" w) ins
          @ List.map2 (fun f a -> (f, a)) (bit_names "out" w) outs
        in
        D.inst ~name:(Printf.sprintf "u%d" k) ~module_:umod ~bindings)
      unit_mnames
  in
  let ports =
    List.map (fun n -> D.port ~name:n ~dir:D.Input) (bit_names "in" w)
    @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bit_names "out" w)
  in
  D.module_def ~name:mname ~ports ~insts ()

let structural_cells_of_module (m : D.module_def) = List.length m.D.cells

let generate p =
  assert (p.n_subsystems >= 1 && p.units_per_subsystem >= 1 && p.bus_width >= 1);
  let rng = Util.Rng.create p.seed in
  let w = p.bus_width in
  let n_units = p.n_subsystems * p.units_per_subsystem in
  let macros_per_unit = distribute p.n_macros n_units in
  (* Build one unit module per unit instance (sizes are jittered, and
     distinct module names keep the hierarchy informative); connectors
     between subsystems; the top. *)
  let unit_mods = ref [] in
  let unit_names = Array.make n_units "" in
  let structural = ref 0 in
  for u = 0 to n_units - 1 do
    let mname = Printf.sprintf "%s_unit%d" p.name u in
    let m = unit_module ~p ~rng ~mname ~n_macros:macros_per_unit.(u) ~filler:0 in
    unit_names.(u) <- mname;
    structural := !structural + structural_cells_of_module m;
    unit_mods := m :: !unit_mods
  done;
  let n_conn = max 0 (p.n_subsystems - 1) in
  let conn_cells_estimate = n_conn * 3 * w in
  let structural_total = !structural + conn_cells_estimate in
  let deficit = max 0 (p.target_cells - structural_total) in
  (* Spread filler over connectors (glue between subsystems) and a
     dedicated glue module per subsystem. *)
  let conn_filler = if n_conn > 0 then distribute (deficit / 2) n_conn else [||] in
  let glue_filler = distribute (deficit - (if n_conn > 0 then deficit / 2 else 0)) p.n_subsystems in
  let taps = if p.cross_links > 0 then min w 4 else 0 in
  let conn_mods =
    List.init n_conn (fun k ->
        connector_module ~p
          ~mname:(Printf.sprintf "%s_conn%d" p.name k)
          ~taps ~filler:conn_filler.(k))
  in
  let glue_mods =
    List.init p.n_subsystems (fun k ->
        connector_module ~p
          ~mname:(Printf.sprintf "%s_glue%d" p.name k)
          ~taps:0 ~filler:glue_filler.(k))
  in
  let ss_mods =
    List.init p.n_subsystems (fun s ->
        let unit_mnames =
          List.init p.units_per_subsystem (fun k ->
              unit_names.((s * p.units_per_subsystem) + k))
        in
        subsystem_module ~p ~mname:(Printf.sprintf "%s_ss%d" p.name s) ~unit_mnames)
  in
  (* Top level: pin0 -> ss0 -> conn0 -> ss1 -> ... -> pout0, with a glue
     sidecar per subsystem and extra port arrays tapping the buses. *)
  let bus k = bit_names (Printf.sprintf "tb%d" k) w in
  let top_insts = ref [] in
  let add_inst i = top_insts := i :: !top_insts in
  let n_ss = p.n_subsystems in
  let in_arrays = max 1 (p.port_arrays / 2) in
  let out_arrays = max 1 (p.port_arrays - in_arrays) in
  let pin_nets j = bit_names (Printf.sprintf "pin%d" j) w in
  let pout_nets j = bit_names (Printf.sprintf "pout%d" j) w in
  let bind formals actuals = List.map2 (fun f a -> (f, a)) formals actuals in
  for s = 0 to n_ss - 1 do
    let ins = if s = 0 then pin_nets 0 else bus (2 * s) in
    let outs = bus ((2 * s) + 1) in
    add_inst
      (D.inst ~name:(Printf.sprintf "i_ss%d" s)
         ~module_:(Printf.sprintf "%s_ss%d" p.name s)
         ~bindings:(bind (bit_names "in" w) ins @ bind (bit_names "out" w) outs));
    (* glue sidecar reads the subsystem output *)
    add_inst
      (D.inst ~name:(Printf.sprintf "i_glue%d" s)
         ~module_:(Printf.sprintf "%s_glue%d" p.name s)
         ~bindings:
           (bind (bit_names "in" w) outs
           @ bind (bit_names "out" w) (bit_names (Printf.sprintf "gl%d" s) w)));
    if s < n_ss - 1 then begin
      (* connector to the next subsystem, with cross-link taps from an
         earlier bus *)
      let tap_src = if s = 0 then pin_nets 0 else bus (2 * (s - 1) + 1) in
      let tap_bindings =
        List.init taps (fun t -> (Printf.sprintf "tap_%d" t, List.nth tap_src t))
      in
      add_inst
        (D.inst ~name:(Printf.sprintf "i_conn%d" s)
           ~module_:(Printf.sprintf "%s_conn%d" p.name s)
           ~bindings:
             (bind (bit_names "in" w) (bus ((2 * s) + 1))
             @ bind (bit_names "out" w) (bus ((2 * s) + 2))
             @ tap_bindings))
    end
  done;
  let last_bus = bus ((2 * (n_ss - 1)) + 1) in
  (* output ports *)
  let top_cells = ref [] in
  List.iteri
    (fun i net ->
      top_cells :=
        D.cell ~name:(Printf.sprintf "po_%d" i) ~kind:D.Comb ~area:p.cell_area ~ins:[ net ]
          ~outs:[ List.nth (pout_nets 0) i ] ()
        :: !top_cells)
    last_bus;
  (* extra input arrays feed small top-level comb consumers; extra output
     arrays observe intermediate buses *)
  for j = 1 to in_arrays - 1 do
    List.iteri
      (fun i net ->
        top_cells :=
          D.cell ~name:(Printf.sprintf "pi%d_%d" j i) ~kind:D.Comb ~area:p.cell_area ~ins:[ net ]
            ~outs:[ Printf.sprintf "pisink%d_%d" j i ] ()
          :: !top_cells)
      (pin_nets j)
  done;
  for j = 1 to out_arrays - 1 do
    let src = bus ((2 * (j mod n_ss)) + 1) in
    List.iteri
      (fun i net ->
        top_cells :=
          D.cell ~name:(Printf.sprintf "px%d_%d" j i) ~kind:D.Comb ~area:p.cell_area ~ins:[ net ]
            ~outs:[ List.nth (pout_nets j) i ] ()
          :: !top_cells)
      src
  done;
  let top_ports =
    List.concat
      (List.init in_arrays (fun j ->
           List.map (fun n -> D.port ~name:n ~dir:D.Input) (pin_nets j)))
    @ List.concat
        (List.init out_arrays (fun j ->
             List.map (fun n -> D.port ~name:n ~dir:D.Output) (pout_nets j)))
  in
  let top =
    D.module_def ~name:p.name ~ports:top_ports ~cells:(List.rev !top_cells)
      ~insts:(List.rev !top_insts) ()
  in
  let design =
    D.design ~top:p.name
      ~modules:(top :: (ss_mods @ conn_mods @ glue_mods @ List.rev !unit_mods))
  in
  (match D.validate design with
  | Ok () -> ()
  | Error e -> failwith (Format.asprintf "Gen.generate: invalid design: %a" D.pp_error e));
  design
