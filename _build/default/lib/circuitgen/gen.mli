(** Deterministic synthetic RTL circuit generator.

    Substitutes the paper's proprietary industrial designs (DESIGN.md §1).
    Generated designs have the structural features HiDaP exploits:

    - a module hierarchy (top → subsystems → units);
    - hard memory macros concentrated inside units;
    - multi-bit pipeline registers named [stageN_i] so array clustering
      recovers their width;
    - datapath buses chaining units within a subsystem and subsystems
      within the top, with register stages defining latency;
    - combinational glue and filler logic spread over the hierarchy.

    Everything is driven by an explicit seed; equal parameters produce
    byte-identical designs. *)

type params = {
  name : string;
  seed : int;
  n_subsystems : int;
  units_per_subsystem : int;
  n_macros : int;  (** exact macro count, distributed over the units *)
  bus_width : int;  (** datapath bit width *)
  pipe_stages : int;  (** register stages between unit macros *)
  target_cells : int;  (** approximate standard-cell count *)
  macro_w : float;
  macro_h : float;  (** base macro footprint, jittered *)
  port_arrays : int;  (** number of top-level bus ports *)
  cross_links : int;  (** connector tap buses between subsystems *)
  cell_area : float;
      (** area per generated standard cell. The suite scales cell counts
          1:100, so each generated cell aggregates ~100 real cells; its
          area keeps the cell/macro area balance of the paper's
          macro-dominated industrial designs *)
}

val default : params

val scale_macros : params -> n_macros:int -> params

val generate : params -> Netlist.Design.t
(** The result always passes {!Netlist.Design.validate}. *)

val macro_count : params -> int
(** Exact number of macros [generate] will emit. *)
