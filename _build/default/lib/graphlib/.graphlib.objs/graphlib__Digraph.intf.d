lib/graphlib/digraph.mli:
