lib/graphlib/digraph.ml: Array
