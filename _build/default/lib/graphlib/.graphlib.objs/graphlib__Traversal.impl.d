lib/graphlib/traversal.ml: Array Digraph List Queue
