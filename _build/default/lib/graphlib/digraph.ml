(* Adjacency lists as growable int arrays, one pair per node. *)

type adj = { mutable data : int array; mutable len : int }

type t = { fwd : adj array; bwd : adj array; mutable edges : int }

let empty_adj () = { data = [||]; len = 0 }

let create n =
  { fwd = Array.init n (fun _ -> empty_adj ());
    bwd = Array.init n (fun _ -> empty_adj ());
    edges = 0 }

let node_count t = Array.length t.fwd

let edge_count t = t.edges

let adj_push a v =
  let cap = Array.length a.data in
  if a.len = cap then begin
    let nd = Array.make (max 4 (cap * 2)) 0 in
    Array.blit a.data 0 nd 0 a.len;
    a.data <- nd
  end;
  a.data.(a.len) <- v;
  a.len <- a.len + 1

let add_edge t u v =
  adj_push t.fwd.(u) v;
  adj_push t.bwd.(v) u;
  t.edges <- t.edges + 1

let adj_list a = Array.to_list (Array.sub a.data 0 a.len)

let succ t u = adj_list t.fwd.(u)

let pred t v = adj_list t.bwd.(v)

let adj_iter a f =
  for i = 0 to a.len - 1 do
    f a.data.(i)
  done

let succ_iter t u f = adj_iter t.fwd.(u) f

let pred_iter t v f = adj_iter t.bwd.(v) f

let out_degree t u = t.fwd.(u).len

let in_degree t v = t.bwd.(v).len

let transpose t =
  let g = create (node_count t) in
  for u = 0 to node_count t - 1 do
    succ_iter t u (fun v -> add_edge g v u)
  done;
  g

let map_nodes t ~keep =
  let n = node_count t in
  let new_of_old = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if keep v then begin
      new_of_old.(v) <- !count;
      incr count
    end
  done;
  let old_of_new = Array.make !count 0 in
  for v = 0 to n - 1 do
    if new_of_old.(v) >= 0 then old_of_new.(new_of_old.(v)) <- v
  done;
  let sub = create !count in
  for u = 0 to n - 1 do
    let nu = new_of_old.(u) in
    if nu >= 0 then
      succ_iter t u (fun v ->
          let nv = new_of_old.(v) in
          if nv >= 0 then add_edge sub nu nv)
  done;
  (sub, old_of_new, new_of_old)
