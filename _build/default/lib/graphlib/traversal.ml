let bfs_layers g ~sources ~direction ~visit ?(expand = fun _ -> true) () =
  let n = Digraph.node_count g in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  let enqueue node d parent =
    if node >= 0 && node < n && dist.(node) < 0 then begin
      dist.(node) <- d;
      visit ~node ~dist:d ~parent;
      Queue.push node q
    end
  in
  List.iter (fun s -> enqueue s 0 (-1)) sources;
  let step u f = match direction with
    | `Fwd -> Digraph.succ_iter g u f
    | `Bwd -> Digraph.pred_iter g u f
  in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    if expand u then step u (fun v -> enqueue v (dist.(u) + 1) u)
  done

let multi_source_nearest g ~sources =
  let n = Digraph.node_count g in
  let label = Array.make n (-1) in
  let q = Queue.create () in
  let enqueue node l =
    if label.(node) < 0 then begin
      label.(node) <- l;
      Queue.push node q
    end
  in
  List.iter (fun (node, l) -> enqueue node l) sources;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    let l = label.(u) in
    Digraph.succ_iter g u (fun v -> enqueue v l);
    Digraph.pred_iter g u (fun v -> enqueue v l)
  done;
  label

let distances_from g ~sources =
  let n = Digraph.node_count g in
  let dist = Array.make n (-1) in
  bfs_layers g ~sources ~direction:`Fwd
    ~visit:(fun ~node ~dist:d ~parent:_ -> dist.(node) <- d)
    ();
  dist

let topological_order g =
  let n = Digraph.node_count g in
  let indeg = Array.init n (Digraph.in_degree g) in
  let q = Queue.create () in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then Queue.push v q
  done;
  let order = Array.make n 0 in
  let k = ref 0 in
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    order.(!k) <- u;
    incr k;
    Digraph.succ_iter g u (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then Queue.push v q)
  done;
  if !k = n then Some order else None

let reachable_set g ~sources =
  let n = Digraph.node_count g in
  let seen = Array.make n false in
  bfs_layers g ~sources ~direction:`Fwd
    ~visit:(fun ~node ~dist:_ ~parent:_ -> seen.(node) <- true)
    ();
  seen

let weakly_connected_components g =
  let n = Digraph.node_count g in
  let label = Array.make n (-1) in
  let q = Queue.create () in
  let comp = ref 0 in
  for s = 0 to n - 1 do
    if label.(s) < 0 then begin
      label.(s) <- !comp;
      Queue.push s q;
      while not (Queue.is_empty q) do
        let u = Queue.pop q in
        let touch v =
          if label.(v) < 0 then begin
            label.(v) <- !comp;
            Queue.push v q
          end
        in
        Digraph.succ_iter g u touch;
        Digraph.pred_iter g u touch
      done;
      incr comp
    end
  done;
  (label, !comp)
