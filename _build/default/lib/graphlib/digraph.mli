(** Directed graphs over dense integer node ids.

    The netlist graph Gnet and the sequential graph Gseq are both stored
    in this representation; it favours cheap traversal (the paper's
    dataflow inference is traversal-bound on graphs with up to 10^7
    vertices). *)

type t

val create : int -> t
(** [create n] makes a graph with nodes [0 .. n-1] and no edges. *)

val node_count : t -> int

val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** Add directed edge [u -> v]. Duplicates are kept (parallel edges model
    multi-bit connections). *)

val succ : t -> int -> int list
(** Successors in insertion order. *)

val pred : t -> int -> int list

val succ_iter : t -> int -> (int -> unit) -> unit
(** Allocation-free successor iteration. *)

val pred_iter : t -> int -> (int -> unit) -> unit

val out_degree : t -> int -> int

val in_degree : t -> int -> int

val transpose : t -> t

val map_nodes : t -> keep:(int -> bool) -> t * int array * int array
(** [map_nodes g ~keep] builds the subgraph induced by the kept nodes.
    Returns [(sub, old_of_new, new_of_old)]; [new_of_old.(v) = -1] for
    dropped nodes. Edges incident to dropped nodes vanish. *)
