(** Graph traversals.

    Multi-source BFS is the workhorse of the paper: target-area assignment
    runs it on Gnet (§IV-C, citing Then et al. [12]) and dataflow
    inference runs constrained variants on Gseq (§IV-D). *)

val bfs_layers :
  Digraph.t -> sources:int list -> direction:[ `Fwd | `Bwd ] ->
  visit:(node:int -> dist:int -> parent:int -> unit) ->
  ?expand:(int -> bool) -> unit -> unit
(** Breadth-first search from all [sources] at distance 0. [visit] is
    called exactly once per reached node (sources included, with
    [parent = -1]); the search continues through a node only when
    [expand node] is true (defaults to always). *)

val multi_source_nearest : Digraph.t -> sources:(int * int) list -> int array
(** [multi_source_nearest g ~sources] labels every reachable node (in the
    undirected sense: both edge directions are followed) with the label of
    its nearest source, breaking ties by search order. [sources] is a list
    of [(node, label)]. Unreached nodes get label [-1]. This is the
    paper's glue-logic absorption search (Fig. 6). *)

val distances_from : Digraph.t -> sources:int list -> int array
(** Forward BFS distance from the source set; [-1] when unreachable. *)

val topological_order : Digraph.t -> int array option
(** Kahn topological order; [None] when the graph has a cycle. *)

val reachable_set : Digraph.t -> sources:int list -> bool array

val weakly_connected_components : Digraph.t -> int array * int
(** Component label per node, and the number of components. *)
