lib/slicing/polish.mli: Format Util
