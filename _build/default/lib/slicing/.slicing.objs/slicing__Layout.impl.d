lib/slicing/layout.ml: Array Geom List Polish Shape Util
