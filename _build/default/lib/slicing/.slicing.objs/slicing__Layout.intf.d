lib/slicing/layout.mli: Geom Polish Shape
