lib/hnl/printer.ml: Format List Netlist Printf
