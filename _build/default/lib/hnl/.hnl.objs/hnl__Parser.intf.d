lib/hnl/parser.mli: Netlist
