lib/hnl/lexer.mli:
