lib/hnl/parser.ml: Lexer List Netlist Printf
