lib/hnl/lexer.ml: List Printf String
