lib/hnl/printer.mli: Format Netlist
