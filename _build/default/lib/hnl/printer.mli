(** HNL pretty-printer; {!Parser.parse_string} of the output reproduces
    the design (round-trip tested). *)

val pp_design : Format.formatter -> Netlist.Design.t -> unit

val to_string : Netlist.Design.t -> string

val write_file : string -> Netlist.Design.t -> unit
