module D = Netlist.Design

(* Shortest decimal that round-trips to the same float. *)
let fmt_float f =
  let try_prec p =
    let s = Printf.sprintf "%.*g" p f in
    if float_of_string s = f then Some s else None
  in
  let rec search p = if p > 17 then Printf.sprintf "%.17g" f else
    match try_prec p with Some s -> s | None -> search (p + 1)
  in
  search 6

let pp_pins ppf (ins, outs) =
  let pp_names ppf names =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
      Format.pp_print_string ppf names
  in
  match (ins, outs) with
  | [], [] -> Format.pp_print_string ppf "()"
  | ins, [] -> Format.fprintf ppf "(in %a)" pp_names ins
  | [], outs -> Format.fprintf ppf "(out %a)" pp_names outs
  | ins, outs -> Format.fprintf ppf "(in %a ; out %a)" pp_names ins pp_names outs

let pp_cell ppf (c : D.cell_decl) =
  match c.D.ckind with
  | D.Macro { D.mw; mh } ->
    Format.fprintf ppf "  macro %s size %s %s %a@," c.D.cname (fmt_float mw) (fmt_float mh) pp_pins (c.D.cins, c.D.couts)
  | D.Flop ->
    if c.D.carea = 1.0 then
      Format.fprintf ppf "  flop %s %a@," c.D.cname pp_pins (c.D.cins, c.D.couts)
    else
      Format.fprintf ppf "  flop %s area %s %a@," c.D.cname (fmt_float c.D.carea) pp_pins
        (c.D.cins, c.D.couts)
  | D.Comb ->
    if c.D.carea = 1.0 then
      Format.fprintf ppf "  comb %s %a@," c.D.cname pp_pins (c.D.cins, c.D.couts)
    else
      Format.fprintf ppf "  comb %s area %s %a@," c.D.cname (fmt_float c.D.carea) pp_pins
        (c.D.cins, c.D.couts)

let pp_port ppf (p : D.port_decl) =
  match p.D.pdir with
  | D.Input -> Format.fprintf ppf "  input %s@," p.D.pname
  | D.Output -> Format.fprintf ppf "  output %s@," p.D.pname

let pp_inst ppf (i : D.inst_decl) =
  let pp_binding ppf (f, a) = Format.fprintf ppf "%s => %s" f a in
  Format.fprintf ppf "  inst %s : %s (%a)@," i.D.iname i.D.imodule
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_binding)
    i.D.bindings

let pp_module ppf (m : D.module_def) =
  Format.fprintf ppf "@[<v>module %s {@," m.D.mname;
  List.iter (pp_port ppf) m.D.ports;
  List.iter (pp_cell ppf) m.D.cells;
  List.iter (pp_inst ppf) m.D.insts;
  Format.fprintf ppf "}@]@."

let pp_design ppf (d : D.t) =
  Format.fprintf ppf "design %s@.@." d.D.top;
  List.iter (fun (_, m) -> pp_module ppf m) d.D.modules

let to_string d = Format.asprintf "%a" pp_design d

let write_file path d =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  pp_design ppf d;
  Format.pp_print_flush ppf ();
  close_out oc
