module Flat = Netlist.Flat
module Digraph = Graphlib.Digraph

type node_kind =
  | Macro of int
  | Register of int list
  | Port of int list

type node = {
  id : int;
  kind : node_kind;
  name : string;
  scope : int;
  bits : int;
}

type edge = { src : int; dst : int; width : int; latency : int }

type t = {
  nodes : node array;
  edges : edge array;
  out_edges : int list array;
  in_edges : int list array;
  of_flat : int array;
}

(* --- clustering (step 2) ------------------------------------------------ *)

type proto = {
  pkind : [ `Macro of int | `Register | `Port ];
  pname : string;
  pscope : int;
  mutable members : int list;  (* flat ids, reversed *)
}

let cluster_key scope base =
  match Util.Names.array_base base with
  | Some (root, _) -> (scope, root)
  | None -> (scope, base)

let cluster (flat : Flat.t) =
  let protos : proto list ref = ref [] in
  let nprotos = ref 0 in
  let table : (int * string, int) Hashtbl.t = Hashtbl.create 256 in
  let arr = ref [||] in
  let proto_of idx = !arr.(idx) in
  let fresh pkind pname pscope =
    let p = { pkind; pname; pscope; members = [] } in
    protos := p :: !protos;
    incr nprotos;
    !nprotos - 1
  in
  let of_flat = Array.make (Array.length flat.Flat.nodes) (-1) in
  Array.iter
    (fun (n : Flat.node) ->
      match n.Flat.kind with
      | Flat.Kcomb -> ()
      | Flat.Kmacro _ ->
        let idx = fresh (`Macro n.Flat.id) n.Flat.path n.Flat.scope in
        of_flat.(n.Flat.id) <- idx
      | Flat.Kflop ->
        let scope, root = cluster_key n.Flat.scope n.Flat.base in
        let idx =
          match Hashtbl.find_opt table (scope, "R:" ^ root) with
          | Some i -> i
          | None ->
            let i = fresh `Register root scope in
            Hashtbl.add table (scope, "R:" ^ root) i;
            i
        in
        of_flat.(n.Flat.id) <- idx
      | Flat.Kport _ ->
        let scope, root = cluster_key 0 n.Flat.base in
        let idx =
          match Hashtbl.find_opt table (scope, "P:" ^ root) with
          | Some i -> i
          | None ->
            let i = fresh `Port root 0 in
            Hashtbl.add table (scope, "P:" ^ root) i;
            i
        in
        of_flat.(n.Flat.id) <- idx)
    flat.Flat.nodes;
  arr := Array.of_list (List.rev !protos);
  Array.iter
    (fun (n : Flat.node) ->
      let idx = of_flat.(n.Flat.id) in
      if idx >= 0 then begin
        let p = proto_of idx in
        p.members <- n.Flat.id :: p.members
      end)
    flat.Flat.nodes;
  (!arr, of_flat)

(* --- edge inference (steps 1 and 3) ------------------------------------- *)

(* From each sequential flat element, BFS forward through combinational
   nodes only; every sequential endpoint reached contributes one bit to
   the edge (source cluster -> endpoint cluster). Epoch-stamped visited
   array avoids reallocation across the (many) searches. *)
let infer_edges (flat : Flat.t) protos of_flat =
  let gnet = flat.Flat.gnet in
  let n = Array.length flat.Flat.nodes in
  let stamp = Array.make n (-1) in
  let epoch = ref (-1) in
  let widths : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let bump src dst =
    if src <> dst then begin
      let key = (src, dst) in
      let cur = try Hashtbl.find widths key with Not_found -> 0 in
      Hashtbl.replace widths key (cur + 1)
    end
  in
  let queue = Queue.create () in
  Array.iteri
    (fun src_cluster (p : proto) ->
      List.iter
        (fun elem ->
          incr epoch;
          Queue.clear queue;
          (* Seed with the element's direct successors. *)
          Digraph.succ_iter gnet elem (fun v ->
              if stamp.(v) <> !epoch then begin
                stamp.(v) <- !epoch;
                Queue.push v queue
              end);
          while not (Queue.is_empty queue) do
            let u = Queue.pop queue in
            let cu = of_flat.(u) in
            if cu >= 0 then bump src_cluster cu
            else
              Digraph.succ_iter gnet u (fun v ->
                  if stamp.(v) <> !epoch then begin
                    stamp.(v) <- !epoch;
                    Queue.push v queue
                  end)
          done)
        p.members)
    protos;
  widths

(* --- threshold discarding with bridging (step 4) ------------------------ *)

let build ?(bit_threshold = 1) (flat : Flat.t) =
  let protos, of_flat = cluster flat in
  let widths = infer_edges flat protos of_flat in
  (* Raw edges as a map keyed by endpoints; latency 1 initially. *)
  let raw : (int * int, int * int) Hashtbl.t = Hashtbl.create (Hashtbl.length widths) in
  Hashtbl.iter (fun (s, d) w -> Hashtbl.replace raw (s, d) (w, 1)) widths;
  let member_count p = List.length p.members in
  let discard =
    Array.map
      (fun p ->
        match p.pkind with
        | `Register -> member_count p < bit_threshold
        | `Macro _ | `Port -> false)
      protos
  in
  (* Bridge each discarded node: predecessors connect to successors with
     width the min of the two hops and latency the sum. Incremental
     adjacency sets keep the whole pass near-linear even when narrow
     registers form chains. *)
  let nproto = Array.length protos in
  let succ_set = Array.init nproto (fun _ -> Hashtbl.create 4) in
  let pred_set = Array.init nproto (fun _ -> Hashtbl.create 4) in
  let link s d = Hashtbl.replace succ_set.(s) d (); Hashtbl.replace pred_set.(d) s () in
  let unlink s d =
    Hashtbl.remove succ_set.(s) d;
    Hashtbl.remove pred_set.(d) s;
    Hashtbl.remove raw (s, d)
  in
  Hashtbl.iter (fun (s, d) _ -> link s d) raw;
  let bridge v =
    let preds = Hashtbl.fold (fun p () acc -> p :: acc) pred_set.(v) [] in
    let succs = Hashtbl.fold (fun s () acc -> s :: acc) succ_set.(v) [] in
    List.iter
      (fun p ->
        let wp, lp = Hashtbl.find raw (p, v) in
        List.iter
          (fun s ->
            if p <> s then begin
              let ws, ls = Hashtbl.find raw (v, s) in
              let w = min wp ws and l = lp + ls in
              (match Hashtbl.find_opt raw (p, s) with
              | Some (w0, l0) -> Hashtbl.replace raw (p, s) (max w0 w, min l0 l)
              | None -> Hashtbl.replace raw (p, s) (w, l));
              link p s
            end)
          succs)
      preds;
    List.iter (fun p -> unlink p v) preds;
    List.iter (fun s -> unlink v s) succs
  in
  Array.iteri (fun v dead -> if dead then bridge v) discard;
  (* Renumber the surviving clusters. *)
  let new_id = Array.make (Array.length protos) (-1) in
  let count = ref 0 in
  Array.iteri
    (fun i dead ->
      if not dead then begin
        new_id.(i) <- !count;
        incr count
      end)
    discard;
  let bits_of_proto p =
    match p.pkind with
    | `Macro _ -> 1 (* refined below from connectivity *)
    | `Register | `Port -> member_count p
  in
  let nodes =
    Array.make !count
      { id = 0; kind = Register []; name = ""; scope = 0; bits = 0 }
  in
  Array.iteri
    (fun i (p : proto) ->
      let id = new_id.(i) in
      if id >= 0 then begin
        let kind =
          match p.pkind with
          | `Macro fid -> Macro fid
          | `Register -> Register (List.rev p.members)
          | `Port -> Port (List.rev p.members)
        in
        nodes.(id) <- { id; kind; name = p.pname; scope = p.pscope; bits = bits_of_proto p }
      end)
    protos;
  let edges = ref [] and nedges = ref 0 in
  Hashtbl.iter
    (fun (s, d) (w, l) ->
      let s' = new_id.(s) and d' = new_id.(d) in
      if s' >= 0 && d' >= 0 && s' <> d' then begin
        edges := { src = s'; dst = d'; width = w; latency = l } :: !edges;
        incr nedges
      end)
    raw;
  (* Deterministic edge order independent of hash iteration. *)
  let edges =
    Array.of_list
      (List.sort
         (fun a b -> compare (a.src, a.dst) (b.src, b.dst))
         !edges)
  in
  let out_edges = Array.make !count [] in
  let in_edges = Array.make !count [] in
  Array.iteri
    (fun ei e ->
      out_edges.(e.src) <- ei :: out_edges.(e.src);
      in_edges.(e.dst) <- ei :: in_edges.(e.dst))
    edges;
  Array.iteri (fun i l -> out_edges.(i) <- List.rev l) out_edges;
  Array.iteri (fun i l -> in_edges.(i) <- List.rev l) in_edges;
  (* Macro bits: widest connected side. *)
  let nodes =
    Array.map
      (fun nd ->
        match nd.kind with
        | Macro _ ->
          let sum = List.fold_left (fun acc ei -> acc + edges.(ei).width) 0 in
          let w = max (sum out_edges.(nd.id)) (sum in_edges.(nd.id)) in
          { nd with bits = max 1 w }
        | Register _ | Port _ -> nd)
      nodes
  in
  (* Remap of_flat to final ids. *)
  let of_flat = Array.map (fun c -> if c < 0 then -1 else new_id.(c)) of_flat in
  { nodes; edges; out_edges; in_edges; of_flat }

let node_count t = Array.length t.nodes

let edge_count t = Array.length t.edges

let is_macro_node n = match n.kind with Macro _ -> true | Register _ | Port _ -> false

let is_port_node n = match n.kind with Port _ -> true | Macro _ | Register _ -> false

let macro_nodes t = Array.to_list t.nodes |> List.filter is_macro_node

let succ_edges t v = List.map (fun ei -> t.edges.(ei)) t.out_edges.(v)

let pred_edges t v = List.map (fun ei -> t.edges.(ei)) t.in_edges.(v)

let find_edge t ~src ~dst =
  List.find_opt (fun e -> e.dst = dst) (succ_edges t src)

let pp_summary ppf t =
  let count p = Array.fold_left (fun acc n -> if p n then acc + 1 else acc) 0 t.nodes in
  Format.fprintf ppf "Gseq: %d nodes (%d macros, %d registers, %d ports), %d edges"
    (node_count t) (count is_macro_node)
    (count (fun n -> match n.kind with Register _ -> true | _ -> false))
    (count is_port_node) (edge_count t)
