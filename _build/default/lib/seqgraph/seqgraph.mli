(** The sequential graph Gseq (paper §II-C, §IV-D).

    Gseq abstracts the bit-level netlist Gnet into multi-bit sequential
    components: hard macros, register arrays and port arrays. It is built
    in the paper's four steps:

    + combinational cells are elided by connecting predecessors to
      successors (edges are discovered by traversing only combinational
      nodes between sequential endpoints);
    + flops and ports are clustered into arrays using component names
      ([name[i]] / [name_i]);
    + edges between sequential components are inferred from transitive
      fan-in/fan-out through combinational logic;
    + components narrower than a bit threshold are discarded (bridged
      through, preserving path latency, so that dataflow BFS still sees
      multi-hop paths).

    Each edge carries the connection width in bits and a latency in clock
    cycles (1 for a direct register-to-register hop; larger for bridged
    hops through discarded narrow registers). *)

type node_kind =
  | Macro of int  (** flat node id *)
  | Register of int list  (** member flop flat ids *)
  | Port of int list  (** member top-level port flat ids *)

type node = {
  id : int;
  kind : node_kind;
  name : string;  (** array base name or macro path *)
  scope : int;  (** owning scope id *)
  bits : int;  (** array width; for macros, the widest side connection *)
}

type edge = { src : int; dst : int; width : int; latency : int }

type t = {
  nodes : node array;
  edges : edge array;
  out_edges : int list array;  (** edge indices leaving each node *)
  in_edges : int list array;
  of_flat : int array;  (** flat node id -> Gseq node id, [-1] if none *)
}

val build : ?bit_threshold:int -> Netlist.Flat.t -> t
(** [bit_threshold] defaults to 1 (keep everything). *)

val node_count : t -> int

val edge_count : t -> int

val is_macro_node : node -> bool

val is_port_node : node -> bool

val macro_nodes : t -> node list

val succ_edges : t -> int -> edge list

val pred_edges : t -> int -> edge list

val find_edge : t -> src:int -> dst:int -> edge option

val pp_summary : Format.formatter -> t -> unit
