lib/shape/curve.mli: Format
