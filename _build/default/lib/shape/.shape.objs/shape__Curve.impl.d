lib/shape/curve.ml: Array Format List
