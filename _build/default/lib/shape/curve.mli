(** Shape curves Γ (paper §II-D, Fig. 4b).

    A shape curve is a Pareto staircase of bounding boxes (w, h): the
    point set contains the minimal boxes able to hold some placement of
    the macros of a block; every box dominating a curve point also fits.
    The special {!unconstrained} curve (a block with no macros) fits in
    any box.

    Points are kept sorted by increasing width / decreasing height, and
    curves are pruned to a bounded number of points to keep compositions
    cheap. *)

type t

val unconstrained : t
(** No macro constraint: every box fits. *)

val of_points : (float * float) list -> t
(** Pareto-prunes the candidate list. Requires at least one point with
    positive dimensions. *)

val of_macro : w:float -> h:float -> ?rotate:bool -> unit -> t
(** A hard macro's curve: its footprint, plus the 90-degree rotation when
    [rotate] (default true) and the macro is not square. *)

val points : t -> (float * float) list
(** Pareto points, increasing width. Empty for {!unconstrained}. *)

val is_unconstrained : t -> bool

val fits : t -> w:float -> h:float -> bool
(** Can the block's macros be placed in a [w] x [h] box? *)

val min_height : t -> w:float -> float option
(** Least height h such that [fits ~w ~h]; [None] when even infinite
    height does not admit width [w]. [Some 0.] for {!unconstrained}. *)

val min_width : t -> h:float -> float option

val min_area_point : t -> (float * float) option
(** Curve point with the smallest area; [None] for {!unconstrained}. *)

val min_area : t -> float
(** Area of {!min_area_point}; 0 for {!unconstrained}. *)

val compose_h : t -> t -> t
(** Horizontal juxtaposition (side by side): widths add, heights max. *)

val compose_v : t -> t -> t
(** Vertical stacking: heights add, widths max. *)

val compose_best : t -> t -> t
(** Pareto union of both compositions — the curve of the best slicing
    arrangement of the two sub-blocks. *)

val prune : max_points:int -> t -> t
(** Thin the staircase to at most [max_points] points, keeping the
    extremes and a spread of intermediate points. *)

val size : t -> int

val pp : Format.formatter -> t -> unit
