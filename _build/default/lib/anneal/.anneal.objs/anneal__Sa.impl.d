lib/anneal/sa.ml: Util
