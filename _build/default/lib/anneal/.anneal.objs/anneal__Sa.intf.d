lib/anneal/sa.mli: Util
