lib/baselines/legalize.ml: Array Geom Util
