lib/baselines/handfp.mli: Geom Hidap Netlist Seqgraph
