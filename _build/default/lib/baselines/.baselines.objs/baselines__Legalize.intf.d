lib/baselines/legalize.mli: Geom
