lib/baselines/indeda.mli: Geom Netlist Seqgraph
