lib/baselines/handfp.ml: Array Dataflow Geom Hashtbl Hidap Hier Legalize List Netlist Seqgraph Util
