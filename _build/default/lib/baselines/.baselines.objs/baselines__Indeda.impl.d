lib/baselines/indeda.ml: Array Geom Hashtbl Legalize List Netlist Seqgraph
