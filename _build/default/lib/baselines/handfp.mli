(** "handFP" baseline: a proxy for the paper's handcrafted expert
    floorplans.

    Physical designers iterate for weeks directly against the final
    metric; the proxy emulates that with a long flat simulated annealing
    over macro centres, optimizing the measured objective (dataflow-
    weighted macro/port wirelength) with incremental-delta evaluation,
    followed by overlap legalization and orientation flipping. It is the
    quality bar the paper's HiDaP approaches within ~1% of wirelength. *)

type placement = {
  fid : int;
  rect : Geom.Rect.t;
  orient : Geom.Orientation.t;
}

type params = {
  moves_per_macro : int;  (** SA budget scale (default 3000) *)
  seed : int;
  overlap_weight_factor : float;
}

val default_params : params

val place :
  ?params:params ->
  flat:Netlist.Flat.t ->
  gseq:Seqgraph.t ->
  ports:Hidap.Port_plan.t ->
  die:Geom.Rect.t ->
  unit ->
  placement list
