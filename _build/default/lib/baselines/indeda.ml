module Flat = Netlist.Flat
module Rect = Geom.Rect

type ordering =
  | By_area
  | By_connectivity

type placement = {
  fid : int;
  rect : Rect.t;
  orient : Geom.Orientation.t;
}

(* Macro-to-macro connectivity: direct Gseq edges plus one hop through a
   register array (weight = min of the two widths). *)
let macro_adjacency (gseq : Seqgraph.t) =
  let weight : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  let bump a b w =
    if a <> b then begin
      let key = if a < b then (a, b) else (b, a) in
      let cur = try Hashtbl.find weight key with Not_found -> 0.0 in
      Hashtbl.replace weight key (cur +. w)
    end
  in
  let is_macro v = Seqgraph.is_macro_node gseq.Seqgraph.nodes.(v) in
  Array.iter
    (fun (e : Seqgraph.edge) ->
      if is_macro e.Seqgraph.src && is_macro e.Seqgraph.dst then
        bump e.Seqgraph.src e.Seqgraph.dst (float_of_int e.Seqgraph.width))
    gseq.Seqgraph.edges;
  Array.iter
    (fun (nd : Seqgraph.node) ->
      match nd.Seqgraph.kind with
      | Seqgraph.Register _ ->
        let ins = Seqgraph.pred_edges gseq nd.Seqgraph.id in
        let outs = Seqgraph.succ_edges gseq nd.Seqgraph.id in
        List.iter
          (fun (ei : Seqgraph.edge) ->
            if is_macro ei.Seqgraph.src then
              List.iter
                (fun (eo : Seqgraph.edge) ->
                  if is_macro eo.Seqgraph.dst then
                    bump ei.Seqgraph.src eo.Seqgraph.dst
                      (0.5 *. float_of_int (min ei.Seqgraph.width eo.Seqgraph.width)))
                outs)
          ins
      | Seqgraph.Macro _ | Seqgraph.Port _ -> ())
    gseq.Seqgraph.nodes;
  weight

(* Greedy connectivity chain: start at the most connected macro, then
   repeatedly pick the unplaced macro with the strongest tie to the
   already-ordered set. *)
let connectivity_order gseq macro_gids =
  let weight = macro_adjacency gseq in
  let w a b = try Hashtbl.find weight (if a < b then (a, b) else (b, a)) with Not_found -> 0.0 in
  let total g = List.fold_left (fun acc o -> acc +. w g o) 0.0 macro_gids in
  match macro_gids with
  | [] -> []
  | _ ->
    let remaining = ref (List.sort (fun a b -> compare (total b) (total a)) macro_gids) in
    let first = List.hd !remaining in
    remaining := List.tl !remaining;
    let order = ref [ first ] in
    while !remaining <> [] do
      let tie g = List.fold_left (fun acc o -> acc +. w g o) 0.0 !order in
      let best =
        List.fold_left
          (fun acc g ->
            match acc with
            | None -> Some (g, tie g)
            | Some (_, bt) when tie g > bt -> Some (g, tie g)
            | Some _ -> acc)
          None !remaining
      in
      let g = match best with Some (g, _) -> g | None -> assert false in
      remaining := List.filter (fun x -> x <> g) !remaining;
      order := g :: !order
    done;
    List.rev !order

(* Pack rectangles around the die walls ring by ring. Along each wall the
   macro's longer side lies on the wall. *)
let wall_pack ~(die : Rect.t) ~spacing sizes =
  let placements = ref [] in
  let inset = ref 0.0 in
  let queue = ref sizes in
  while !queue <> [] do
    let x0 = die.Rect.x +. !inset and y0 = die.Rect.y +. !inset in
    let x1 = die.Rect.x +. die.Rect.w -. !inset and y1 = die.Rect.y +. die.Rect.h -. !inset in
    if x1 -. x0 <= 0.0 || y1 -. y0 <= 0.0 then begin
      (* die full: dump the remainder at the centre *)
      List.iter
        (fun (fid, w, h) ->
          let c = Rect.center die in
          placements :=
            (fid, Rect.make ~x:(c.Geom.Point.x -. (w /. 2.0)) ~y:(c.Geom.Point.y -. (h /. 2.0)) ~w ~h)
            :: !placements)
        !queue;
      queue := []
    end
    else begin
      (* Reserve a corner margin on every wall so strips cannot collide
         where they meet: the deepest remaining macro bounds any strip. *)
      let margin =
        List.fold_left (fun acc (_, w, h) -> max acc (min w h)) 0.0 !queue +. spacing
      in
      let ring_depth = ref 0.0 in
      let place_one fid w h rect =
        placements := (fid, rect) :: !placements;
        ring_depth := max !ring_depth (min w h +. spacing);
        ignore (w, h)
      in
      (* walls: bottom (left->right), right (bottom->top), top
         (right->left), left (top->bottom); each wall keeps [margin]
         clear at both corners it shares with the next walls. *)
      let cursor = ref 0.0 in
      let wall = ref `Bottom in
      let advance len limit = !cursor +. len <= limit +. 1e-9 in
      let rec fill () =
        match !queue with
        | [] -> ()
        | (fid, w, h) :: rest ->
          let along = max w h and depth = min w h in
          let placed =
            match !wall with
            | `Bottom ->
              if advance along (x1 -. x0 -. margin) then begin
                place_one fid along depth
                  (Rect.make ~x:(x0 +. !cursor) ~y:y0 ~w:along ~h:depth);
                cursor := !cursor +. along +. spacing;
                true
              end
              else begin
                wall := `Right;
                cursor := 0.0;
                false
              end
            | `Right ->
              if advance along (y1 -. y0 -. margin) then begin
                place_one fid depth along
                  (Rect.make ~x:(x1 -. depth) ~y:(y0 +. !cursor) ~w:depth ~h:along);
                cursor := !cursor +. along +. spacing;
                true
              end
              else begin
                wall := `Top;
                cursor := 0.0;
                false
              end
            | `Top ->
              if advance along (x1 -. x0 -. margin) then begin
                place_one fid along depth
                  (Rect.make ~x:(x1 -. !cursor -. along) ~y:(y1 -. depth) ~w:along ~h:depth);
                cursor := !cursor +. along +. spacing;
                true
              end
              else begin
                wall := `Left;
                cursor := 0.0;
                false
              end
            | `Left ->
              if advance along (y1 -. y0 -. margin) then begin
                place_one fid depth along
                  (Rect.make ~x:x0 ~y:(y1 -. !cursor -. along) ~w:depth ~h:along);
                cursor := !cursor +. along +. spacing;
                true
              end
              else begin
                wall := `Done;
                false
              end
            | `Done -> false
          in
          if placed then begin
            queue := rest;
            fill ()
          end
          else if !wall <> `Done then fill ()
      in
      fill ();
      (* next ring *)
      inset := !inset +. !ring_depth +. spacing;
      if !ring_depth = 0.0 then inset := !inset +. (0.05 *. min die.Rect.w die.Rect.h)
    end
  done;
  !placements

let place ~flat ~gseq ~die ?(spacing = 2.0) ?(ordering = By_area) () =
  let macro_gids =
    Array.to_list gseq.Seqgraph.nodes
    |> List.filter_map (fun (nd : Seqgraph.node) ->
           match nd.Seqgraph.kind with
           | Seqgraph.Macro _ -> Some nd.Seqgraph.id
           | Seqgraph.Register _ | Seqgraph.Port _ -> None)
  in
  let dims_of gid =
    let fid =
      match gseq.Seqgraph.nodes.(gid).Seqgraph.kind with
      | Seqgraph.Macro fid -> fid
      | Seqgraph.Register _ | Seqgraph.Port _ -> assert false
    in
    match flat.Flat.nodes.(fid).Flat.kind with
    | Flat.Kmacro info -> (info.Netlist.Design.mw, info.Netlist.Design.mh)
    | Flat.Kflop | Flat.Kcomb | Flat.Kport _ -> assert false
  in
  let order =
    match ordering with
    | By_connectivity -> connectivity_order gseq macro_gids
    | By_area ->
      List.sort
        (fun a b ->
          let wa, ha = dims_of a and wb, hb = dims_of b in
          compare (wb *. hb, b) (wa *. ha, a))
        macro_gids
  in
  let sizes =
    List.map
      (fun gid ->
        let fid =
          match gseq.Seqgraph.nodes.(gid).Seqgraph.kind with
          | Seqgraph.Macro fid -> fid
          | Seqgraph.Register _ | Seqgraph.Port _ -> assert false
        in
        match flat.Flat.nodes.(fid).Flat.kind with
        | Flat.Kmacro info -> (fid, info.Netlist.Design.mw, info.Netlist.Design.mh)
        | Flat.Kflop | Flat.Kcomb | Flat.Kport _ -> assert false)
      order
  in
  let raw = wall_pack ~die ~spacing sizes in
  let rects = Array.of_list (List.map snd raw) in
  let rects = Legalize.separate ~die ~spacing:0.0 rects in
  List.mapi
    (fun i (fid, _) -> { fid; rect = rects.(i); orient = Geom.Orientation.R0 })
    raw
