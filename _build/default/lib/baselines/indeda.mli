(** "IndEDA" baseline: a proxy for the commercial floorplanner the paper
    compares against.

    Macros are packed against the die walls ("de facto the chosen
    approach for some industrial floorplanning tools", paper §I).
    The default ordering is area-driven (largest first) — blind to
    hierarchy, connectivity and dataflow, like the commercial packers the
    paper measures against. A connectivity-chain ordering is available
    for the ablation bench: it walks the perimeter following the
    strongest macro-to-macro ties, which flatters the baseline on
    chain-topology designs. Additional rings are opened toward the
    centre when the perimeter fills up; macros keep their reference
    orientation. *)

type ordering =
  | By_area  (** commercial-packer proxy (default) *)
  | By_connectivity  (** greedy strongest-tie chain over Gseq *)

type placement = {
  fid : int;
  rect : Geom.Rect.t;
  orient : Geom.Orientation.t;
}

val connectivity_order : Seqgraph.t -> int list -> int list
(** Greedy strongest-tie ordering of macro Gseq node ids (exposed for
    tests and the ablation bench). *)

val place :
  flat:Netlist.Flat.t ->
  gseq:Seqgraph.t ->
  die:Geom.Rect.t ->
  ?spacing:float ->
  ?ordering:ordering ->
  unit ->
  placement list
