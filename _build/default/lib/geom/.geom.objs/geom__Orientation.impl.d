lib/geom/orientation.ml: Array Format Point
