lib/geom/rect.ml: Format Point
