lib/geom/wirelength.mli: Point
