lib/geom/orientation.mli: Format Point
