lib/geom/wirelength.ml: Array List Point
