(** 2-D points in micron units. *)

type t = { x : float; y : float }

val make : float -> float -> t

val origin : t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val manhattan : t -> t -> float
(** L1 distance — the wirelength-relevant metric. *)

val euclidean : t -> t -> float

val midpoint : t -> t -> t

val equal : t -> t -> bool
(** Exact float equality (used on points derived from identical
    computations only). *)

val pp : Format.formatter -> t -> unit
