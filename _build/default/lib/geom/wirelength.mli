(** Wirelength estimation primitives. *)

val hpwl : Point.t list -> float
(** Half-perimeter wirelength of a pin cloud; 0 for fewer than two pins. *)

val hpwl_array : Point.t array -> float

val star : Point.t list -> float
(** Star model: sum of Manhattan distances from the centroid. *)

val total_hpwl : Point.t array array -> float
(** Sum of per-net HPWL over an array of nets (each an array of pin
    positions). *)
