type t = { x : float; y : float }

let make x y = { x; y }

let origin = { x = 0.0; y = 0.0 }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k p = { x = k *. p.x; y = k *. p.y }

let manhattan a b = abs_float (a.x -. b.x) +. abs_float (a.y -. b.y)

let euclidean a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  sqrt ((dx *. dx) +. (dy *. dy))

let midpoint a b = { x = (a.x +. b.x) /. 2.0; y = (a.y +. b.y) /. 2.0 }

let equal a b = a.x = b.x && a.y = b.y

let pp ppf p = Format.fprintf ppf "(%.3f, %.3f)" p.x p.y
