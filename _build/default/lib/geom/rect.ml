type t = { x : float; y : float; w : float; h : float }

let make ~x ~y ~w ~h =
  assert (w >= 0.0 && h >= 0.0);
  { x; y; w; h }

let of_corners (a : Point.t) (b : Point.t) =
  let x = min a.Point.x b.Point.x and y = min a.Point.y b.Point.y in
  let w = abs_float (a.Point.x -. b.Point.x) and h = abs_float (a.Point.y -. b.Point.y) in
  { x; y; w; h }

let area r = r.w *. r.h

let center r = Point.make (r.x +. (r.w /. 2.0)) (r.y +. (r.h /. 2.0))

let contains_point r (p : Point.t) =
  p.Point.x >= r.x && p.Point.x <= r.x +. r.w && p.Point.y >= r.y && p.Point.y <= r.y +. r.h

let eps = 1e-6

let contains_rect ~outer ~inner =
  inner.x >= outer.x -. eps
  && inner.y >= outer.y -. eps
  && inner.x +. inner.w <= outer.x +. outer.w +. eps
  && inner.y +. inner.h <= outer.y +. outer.h +. eps

let overlaps a b =
  a.x +. a.w > b.x +. eps
  && b.x +. b.w > a.x +. eps
  && a.y +. a.h > b.y +. eps
  && b.y +. b.h > a.y +. eps

let intersection_area a b =
  let ox = min (a.x +. a.w) (b.x +. b.w) -. max a.x b.x in
  let oy = min (a.y +. a.h) (b.y +. b.h) -. max a.y b.y in
  if ox > 0.0 && oy > 0.0 then ox *. oy else 0.0

let union_bbox a b =
  let x = min a.x b.x and y = min a.y b.y in
  let x2 = max (a.x +. a.w) (b.x +. b.w) and y2 = max (a.y +. a.h) (b.y +. b.h) in
  { x; y; w = x2 -. x; h = y2 -. y }

let inset r m =
  let w = max 0.0 (r.w -. (2.0 *. m)) and h = max 0.0 (r.h -. (2.0 *. m)) in
  { x = r.x +. m; y = r.y +. m; w; h }

let translate r (d : Point.t) = { r with x = r.x +. d.Point.x; y = r.y +. d.Point.y }

let aspect_ratio r =
  if r.w <= 0.0 || r.h <= 0.0 then infinity else max (r.w /. r.h) (r.h /. r.w)

let split_v r frac =
  assert (frac >= 0.0 && frac <= 1.0);
  let wl = r.w *. frac in
  ({ r with w = wl }, { r with x = r.x +. wl; w = r.w -. wl })

let split_h r frac =
  assert (frac >= 0.0 && frac <= 1.0);
  let hb = r.h *. frac in
  ({ r with h = hb }, { r with y = r.y +. hb; h = r.h -. hb })

let corners r =
  [| Point.make r.x r.y;
     Point.make (r.x +. r.w) r.y;
     Point.make (r.x +. r.w) (r.y +. r.h);
     Point.make r.x (r.y +. r.h) |]

let equal a b = a.x = b.x && a.y = b.y && a.w = b.w && a.h = b.h

let pp ppf r = Format.fprintf ppf "[%.3f,%.3f %.3fx%.3f]" r.x r.y r.w r.h
