let hpwl_array pins =
  let n = Array.length pins in
  if n < 2 then 0.0
  else begin
    let minx = ref infinity and maxx = ref neg_infinity in
    let miny = ref infinity and maxy = ref neg_infinity in
    for i = 0 to n - 1 do
      let p = pins.(i) in
      if p.Point.x < !minx then minx := p.Point.x;
      if p.Point.x > !maxx then maxx := p.Point.x;
      if p.Point.y < !miny then miny := p.Point.y;
      if p.Point.y > !maxy then maxy := p.Point.y
    done;
    !maxx -. !minx +. (!maxy -. !miny)
  end

let hpwl pins = hpwl_array (Array.of_list pins)

let star pins =
  match pins with
  | [] | [ _ ] -> 0.0
  | _ ->
    let n = float_of_int (List.length pins) in
    let sx = List.fold_left (fun acc p -> acc +. p.Point.x) 0.0 pins in
    let sy = List.fold_left (fun acc p -> acc +. p.Point.y) 0.0 pins in
    let c = Point.make (sx /. n) (sy /. n) in
    List.fold_left (fun acc p -> acc +. Point.manhattan c p) 0.0 pins

let total_hpwl nets = Array.fold_left (fun acc net -> acc +. hpwl_array net) 0.0 nets
