(** Axis-aligned rectangles (lower-left corner + dimensions). *)

type t = { x : float; y : float; w : float; h : float }

val make : x:float -> y:float -> w:float -> h:float -> t
(** Requires [w >= 0] and [h >= 0]. *)

val of_corners : Point.t -> Point.t -> t
(** Bounding box of two points. *)

val area : t -> float

val center : t -> Point.t

val contains_point : t -> Point.t -> bool
(** Closed containment. *)

val contains_rect : outer:t -> inner:t -> bool
(** [inner] fully inside [outer] (with a small epsilon tolerance). *)

val overlaps : t -> t -> bool
(** Strict interior overlap: touching edges do not count. *)

val intersection_area : t -> t -> float

val union_bbox : t -> t -> t

val inset : t -> float -> t
(** Shrink by a margin on every side (clamped at degenerate). *)

val translate : t -> Point.t -> t

val aspect_ratio : t -> float
(** max(w/h, h/w); [infinity] for degenerate rectangles. *)

val split_v : t -> float -> t * t
(** [split_v r frac] cuts vertically: left part takes fraction [frac] of
    the width. Requires [0 <= frac <= 1]. *)

val split_h : t -> float -> t * t
(** [split_h r frac] cuts horizontally: bottom part takes fraction [frac]
    of the height. *)

val corners : t -> Point.t array
(** The 4 corners: ll, lr, ur, ul. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
