(** Global-routing congestion estimation (the paper's "GRC%" column).

    RUDY-style (Rectangular Uniform wire DensitY): each global net (one
    whose bounding box is not negligible against a grid bin — purely
    local nets ride the lower metal layers) spreads a routing demand of
    [hpwl / bbox_area] uniformly over its bounding box; demand is
    integrated on a grid and compared with the die's routing supply.
    The overflow percentage is the demand above capacity relative to
    total capacity — 0 for a perfectly spreadable design, growing when
    wiring concentrates. *)

type params = {
  bins : int;  (** grid resolution per axis *)
  capacity_factor : float;
      (** routing supply density: microns of wire per square micron of
          routable area — a property of the die and metal stack, so it is
          identical for every flow evaluated on the same circuit *)
  macro_porosity : float;
      (** fraction of routing capacity that survives over a macro
          (memories block most routing layers); wall-packed macro rings
          therefore overflow when nets must cross them *)
}

val default_params : params
(** 32 bins, supply density 14 um/um^2, macro porosity 0.35. *)

type result = {
  demand : float array array;  (** demand per bin *)
  capacity : float;  (** nominal per-bin capacity (macro-free bin) *)
  overflow_pct : float;  (** 100 * sum max(0, d - cap) / sum cap *)
  overflowed_bins_pct : float;  (** share of bins above capacity *)
}

val estimate :
  ?params:params ->
  flat:Netlist.Flat.t ->
  positions:Geom.Point.t array ->
  die:Geom.Rect.t ->
  ?macros:Geom.Rect.t list ->
  unit ->
  result
