module Flat = Netlist.Flat
module Rect = Geom.Rect
module Point = Geom.Point

type params = {
  bins : int;
  capacity_factor : float;
  macro_porosity : float;
}

let default_params = { bins = 32; capacity_factor = 14.0; macro_porosity = 0.35 }

type result = {
  demand : float array array;
  capacity : float;
  overflow_pct : float;
  overflowed_bins_pct : float;
}

let estimate ?(params = default_params) ~flat ~positions ~die ?(macros = []) () =
  let s = params.bins in
  let demand = Array.make_matrix s s 0.0 in
  let bin_w = die.Rect.w /. float_of_int s and bin_h = die.Rect.h /. float_of_int s in
  let clamp_bin v hi = Util.Stat.clamp_int ~lo:0 ~hi v in
  Array.iter
    (fun (drivers, sinks) ->
      let pins = Array.append drivers sinks in
      if Array.length pins >= 2 then begin
        let minx = ref infinity and maxx = ref neg_infinity in
        let miny = ref infinity and maxy = ref neg_infinity in
        Array.iter
          (fun fid ->
            let p = positions.(fid) in
            if p.Point.x < !minx then minx := p.Point.x;
            if p.Point.x > !maxx then maxx := p.Point.x;
            if p.Point.y < !miny then miny := p.Point.y;
            if p.Point.y > !maxy then maxy := p.Point.y)
          pins;
        let hpwl = !maxx -. !minx +. (!maxy -. !miny) in
        (* Nets contained well inside one bin route on local layers and
           do not contribute to global-routing congestion. *)
        if hpwl > 0.5 *. min bin_w bin_h then begin
          let bw = max bin_w (!maxx -. !minx) and bh = max bin_h (!maxy -. !miny) in
          let density = hpwl /. (bw *. bh) in
          let i0 = clamp_bin (int_of_float ((!minx -. die.Rect.x) /. bin_w)) (s - 1) in
          let i1 = clamp_bin (int_of_float ((!maxx -. die.Rect.x) /. bin_w)) (s - 1) in
          let j0 = clamp_bin (int_of_float ((!miny -. die.Rect.y) /. bin_h)) (s - 1) in
          let j1 = clamp_bin (int_of_float ((!maxy -. die.Rect.y) /. bin_h)) (s - 1) in
          for i = i0 to i1 do
            for j = j0 to j1 do
              demand.(i).(j) <- demand.(i).(j) +. (density *. bin_w *. bin_h)
            done
          done
        end
      end)
    flat.Flat.net_pins;
  ignore (Array.fold_left (fun acc row -> Array.fold_left ( +. ) acc row) 0.0 demand);
  (* Routable fraction of each bin: macros block most routing layers but
     keep [macro_porosity] of the tracks. The total routing supply is
     held constant (factor x total demand) and distributed over the
     routable area, so blockage concentrates capacity rather than
     destroying it — a wall-packed macro ring then overflows exactly
     where nets must cross it. *)
  let routable = Array.make_matrix s s 1.0 in
  List.iter
    (fun (m : Rect.t) ->
      for i = 0 to s - 1 do
        for j = 0 to s - 1 do
          let r =
            Rect.make
              ~x:(die.Rect.x +. (float_of_int i *. bin_w))
              ~y:(die.Rect.y +. (float_of_int j *. bin_h))
              ~w:bin_w ~h:bin_h
          in
          let frac = Rect.intersection_area r m /. Rect.area r in
          routable.(i).(j) <-
            max params.macro_porosity
              (routable.(i).(j) -. (frac *. (1.0 -. params.macro_porosity)))
        done
      done)
    macros;
  (* Absolute supply: [capacity_factor] microns of wiring per square
     micron of routable bin area — a property of the die and metal stack,
     identical for every flow on the same circuit. *)
  let capacity = params.capacity_factor *. bin_w *. bin_h in
  let bin_cap =
    Array.init s (fun i -> Array.init s (fun j -> capacity *. routable.(i).(j)))
  in
  let over = ref 0.0 and over_bins = ref 0 and cap_total = ref 0.0 in
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j d ->
          let c = max 0.0 bin_cap.(i).(j) in
          cap_total := !cap_total +. c;
          if d > c then begin
            over := !over +. (d -. c);
            incr over_bins
          end)
        row)
    demand;
  let cap_total = !cap_total in
  { demand;
    capacity;
    overflow_pct = (if cap_total > 0.0 then 100.0 *. !over /. cap_total else 0.0);
    overflowed_bins_pct = 100.0 *. float_of_int !over_bins /. float_of_int (s * s) }
