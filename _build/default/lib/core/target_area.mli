(** Target-area assignment (paper §IV-C, Fig. 6).

    Blocks in HCG are not floorplanned directly; their cell area is
    absorbed into the target area [at] of the HCB blocks. A multi-source
    BFS over the flat netlist graph Gnet, seeded with every cell of every
    HCB block, labels each glue cell with its nearest block; the glue
    cell's area is added to that block's [at]. Glue cells unreachable
    from any block are distributed proportionally to [am], so the sum of
    the target areas always accounts for every cell below the instance
    node. *)

val assign :
  Hier.Tree.t ->
  sgamma:Shape_curves.t ->
  hcb:int list ->
  hcg:int list ->
  Block.t array
(** Builds the fully characterized 〈Γ, am, at〉 blocks for one
    floorplanning instance. Block order follows [hcb]. *)
