(** Plain-text placement persistence (a DEF-like interchange).

    One line per macro: [path x y w h orientation], preceded by a header
    carrying the die rectangle. Lets a placement be saved from one tool
    invocation and reloaded for evaluation or visualization in
    another. *)

type entry = {
  path : string;  (** hierarchical macro name *)
  rect : Geom.Rect.t;
  orient : Geom.Orientation.t;
}

type t = {
  die : Geom.Rect.t;
  entries : entry list;
}

val make :
  flat:Netlist.Flat.t ->
  die:Geom.Rect.t ->
  placements:(int * Geom.Rect.t * Geom.Orientation.t) list ->
  t
(** Build from flat macro ids (paths are resolved through [flat]). *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Error messages carry the offending line number. *)

val save : string -> t -> unit

val load : string -> (t, string) result

val resolve :
  Netlist.Flat.t -> t -> ((int * Geom.Rect.t * Geom.Orientation.t) list, string) result
(** Map entries back to flat node ids by path; fails when a path is
    unknown or does not name a macro. *)
