module Tree = Hier.Tree
module Flat = Netlist.Flat

let assign tree ~sgamma ~hcb ~hcg =
  let flat = Tree.flat tree in
  let hcb = Array.of_list hcb in
  (* Seed the multi-source BFS with every cell of every block. *)
  let sources =
    Array.to_list hcb
    |> List.mapi (fun bi ht -> List.map (fun cid -> (cid, bi)) (Tree.cells_below tree ht))
    |> List.concat
  in
  let label = Graphlib.Traversal.multi_source_nearest flat.Flat.gnet ~sources in
  (* Absorb glue cell areas into the nearest block. *)
  let extra = Array.make (Array.length hcb) 0.0 in
  let orphan = ref 0.0 in
  List.iter
    (fun ht ->
      List.iter
        (fun cid ->
          let a = flat.Flat.nodes.(cid).Flat.area in
          let l = label.(cid) in
          if l >= 0 then extra.(l) <- extra.(l) +. a else orphan := !orphan +. a)
        (Tree.cells_below tree ht))
    hcg;
  let am = Array.map (fun ht -> Tree.area tree ht) hcb in
  let am_total = Array.fold_left ( +. ) 0.0 am in
  let blocks =
    Array.mapi
      (fun bi ht ->
        let share =
          if am_total > 0.0 then !orphan *. (am.(bi) /. am_total)
          else !orphan /. float_of_int (Array.length hcb)
        in
        { Block.idx = bi;
          ht_id = ht;
          name = (Tree.node tree ht).Tree.name;
          curve = Shape_curves.curve sgamma ht;
          am = am.(bi);
          at = am.(bi) +. extra.(bi) +. share;
          macro_count = Tree.macro_count tree ht })
      hcb
  in
  blocks
