(** The floorplanning block: 〈Γ, am, at〉 plus bookkeeping
    (paper §II-D). *)

type t = {
  idx : int;  (** index within the current floorplan instance *)
  ht_id : int;  (** hierarchy-tree node this block models *)
  name : string;
  curve : Shape.Curve.t;  (** Γ: macro shape curve, standard cells ignored *)
  am : float;  (** minimum area: all macros + cells under the node *)
  at : float;  (** target area: am + absorbed glue area (+ whitespace) *)
  macro_count : int;
}

val to_leaf : t -> Slicing.Layout.leaf
(** The slicing-layout view of the block. *)

val pp : Format.formatter -> t -> unit
