type t = {
  idx : int;
  ht_id : int;
  name : string;
  curve : Shape.Curve.t;
  am : float;
  at : float;
  macro_count : int;
}

let to_leaf t =
  { Slicing.Layout.lid = t.idx; curve = t.curve; area_min = t.am; area_target = t.at }

let pp ppf t =
  Format.fprintf ppf "block %d %s: am=%.1f at=%.1f macros=%d" t.idx t.name t.am t.at
    t.macro_count
