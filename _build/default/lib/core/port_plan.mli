(** Deterministic port placement on the die boundary.

    Port arrays (Gseq port nodes) are spread uniformly along the die
    perimeter in name order; each member bit of an array shares the
    array's position. The same plan is used by macro placement (fixed
    dataflow endpoints), by the cell placer (fixed anchors) and by the
    metrics, so all flows see identical port locations. *)

type t

val make : Seqgraph.t -> die:Geom.Rect.t -> t

val gseq_pos : t -> int -> Geom.Point.t option
(** Position of a Gseq node if it is a port array. *)

val flat_pos : t -> int -> Geom.Point.t option
(** Position of a flat port node. *)

val port_nodes : t -> int list
(** Gseq node ids of all port arrays, in placement order. *)
