(** Recursive block floorplanning (paper Algorithm 2).

    Each instance declusters a hierarchy node into blocks, characterizes
    them (target-area assignment), infers their dataflow affinity and
    generates a slicing layout inside the instance rectangle. Blocks
    holding more than one macro are recursed into; blocks holding exactly
    one macro have it fixed in the corner of their rectangle that
    minimizes wirelength toward the block's dataflow attractor. *)

type level_info = {
  depth : int;
  ht_id : int;
  rect : Geom.Rect.t;
  macro_count : int;
}

type instance_snapshot = {
  inst_blocks : Block.t array;
  inst_affinity : float array array;
  inst_rects : Geom.Rect.t array;
}
(** The top-level instance, kept for visualization (paper Fig. 9d). *)

type t = {
  macro_rects : (int * Geom.Rect.t) list;  (** flat macro id -> placed rect *)
  levels : level_info list;  (** every block rectangle of every instance *)
  top : instance_snapshot option;  (** [None] when the design has no blocks *)
  ht_rects : (int, Geom.Rect.t) Hashtbl.t;  (** block rectangles by HT node *)
  sa_moves_total : int;
}

val run :
  tree:Hier.Tree.t ->
  gseq:Seqgraph.t ->
  sgamma:Shape_curves.t ->
  ports:Port_plan.t ->
  config:Config.t ->
  rng:Util.Rng.t ->
  die:Geom.Rect.t ->
  t
(** Places every macro of the design inside [die]. *)
