module Rect = Geom.Rect
module Point = Geom.Point

type t = {
  gseq_positions : (int, Point.t) Hashtbl.t;
  flat_positions : (int, Point.t) Hashtbl.t;
  order : int list;
}

(* Point at curvilinear distance d along the die perimeter, starting at
   the lower-left corner and walking counter-clockwise. *)
let perimeter_point (die : Rect.t) d =
  let w = die.Rect.w and h = die.Rect.h in
  let p = 2.0 *. (w +. h) in
  let d = Float.rem d p in
  let d = if d < 0.0 then d +. p else d in
  if d < w then Point.make (die.Rect.x +. d) die.Rect.y
  else if d < w +. h then Point.make (die.Rect.x +. w) (die.Rect.y +. (d -. w))
  else if d < (2.0 *. w) +. h then
    Point.make (die.Rect.x +. w -. (d -. w -. h)) (die.Rect.y +. h)
  else Point.make die.Rect.x (die.Rect.y +. h -. (d -. (2.0 *. w) -. h))

let make (g : Seqgraph.t) ~die =
  let ports =
    Array.to_list g.Seqgraph.nodes
    |> List.filter Seqgraph.is_port_node
    |> List.sort (fun (a : Seqgraph.node) b -> compare a.Seqgraph.name b.Seqgraph.name)
  in
  let n = List.length ports in
  let perimeter = 2.0 *. (die.Rect.w +. die.Rect.h) in
  let gseq_positions = Hashtbl.create (max 1 n) in
  let flat_positions = Hashtbl.create (max 1 n) in
  List.iteri
    (fun i (nd : Seqgraph.node) ->
      let d = (float_of_int i +. 0.5) *. perimeter /. float_of_int (max 1 n) in
      let pos = perimeter_point die d in
      Hashtbl.replace gseq_positions nd.Seqgraph.id pos;
      match nd.Seqgraph.kind with
      | Seqgraph.Port members -> List.iter (fun fid -> Hashtbl.replace flat_positions fid pos) members
      | Seqgraph.Macro _ | Seqgraph.Register _ -> assert false)
    ports;
  { gseq_positions; flat_positions; order = List.map (fun (nd : Seqgraph.node) -> nd.Seqgraph.id) ports }

let gseq_pos t id = Hashtbl.find_opt t.gseq_positions id

let flat_pos t id = Hashtbl.find_opt t.flat_positions id

let port_nodes t = t.order
