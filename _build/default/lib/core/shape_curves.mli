(** Shape-curve set SΓ generation (paper §IV-A).

    Computed bottom-up over the hierarchy tree, once, at the beginning of
    the flow. Leaves (macros) contribute their footprint orientations;
    at each intermediate node an area-minimizing slicing annealing over
    the children's curves generates a set of small-area shape
    combinations — the node's Γ. Macro-free nodes are unconstrained. *)

type t

val generate : Hier.Tree.t -> config:Config.t -> rng:Util.Rng.t -> t

val curve : t -> int -> Shape.Curve.t
(** Γ of an HT node. *)

val macro_area : t -> int -> float
(** Total macro area under an HT node (standard cells excluded). *)
