module Flat = Netlist.Flat
module Rect = Geom.Rect

type entry = {
  path : string;
  rect : Rect.t;
  orient : Geom.Orientation.t;
}

type t = {
  die : Rect.t;
  entries : entry list;
}

let make ~flat ~die ~placements =
  let entries =
    List.map
      (fun (fid, rect, orient) ->
        { path = flat.Flat.nodes.(fid).Flat.path; rect; orient })
      placements
  in
  { die; entries }

let fmt_rect (r : Rect.t) =
  Printf.sprintf "%.6f %.6f %.6f %.6f" r.Rect.x r.Rect.y r.Rect.w r.Rect.h

let to_string t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "die %s\n" (fmt_rect t.die));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %s\n" e.path (fmt_rect e.rect)
           (Geom.Orientation.to_string e.orient)))
    t.entries;
  Buffer.contents buf

let parse_rect parts =
  match List.map float_of_string_opt parts with
  | [ Some x; Some y; Some w; Some h ] when w >= 0.0 && h >= 0.0 ->
    Some (Rect.make ~x ~y ~w ~h)
  | _ -> None

let of_string src =
  let lines =
    String.split_on_char '\n' src
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && not (Util.Names.is_prefix ~prefix:"#" l))
  in
  let fail lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  match lines with
  | [] -> Error "empty placement file"
  | (lineno, header) :: rest ->
    (match String.split_on_char ' ' header |> List.filter (( <> ) "") with
    | "die" :: dims ->
      (match parse_rect dims with
      | None -> fail lineno "malformed die header"
      | Some die ->
        let rec go acc = function
          | [] -> Ok { die; entries = List.rev acc }
          | (lineno, line) :: rest ->
            (match String.split_on_char ' ' line |> List.filter (( <> ) "") with
            | [ path; x; y; w; h; o ] ->
              (match (parse_rect [ x; y; w; h ], Geom.Orientation.of_string o) with
              | Some rect, Some orient -> go ({ path; rect; orient } :: acc) rest
              | None, _ -> fail lineno "malformed rectangle"
              | _, None -> fail lineno ("unknown orientation " ^ o))
            | _ -> fail lineno "expected: path x y w h orientation")
        in
        go [] rest)
    | _ -> fail lineno "expected 'die x y w h' header")

let save path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    let len = in_channel_length ic in
    let src = really_input_string ic len in
    close_in ic;
    of_string src

let resolve flat t =
  let by_path = Hashtbl.create 64 in
  Array.iter
    (fun (n : Flat.node) -> Hashtbl.replace by_path n.Flat.path n)
    flat.Flat.nodes;
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | e :: rest ->
      (match Hashtbl.find_opt by_path e.path with
      | None -> Error (Printf.sprintf "unknown macro path %s" e.path)
      | Some n when not (Flat.is_macro n) ->
        Error (Printf.sprintf "%s is not a macro" e.path)
      | Some n -> go ((n.Flat.id, e.rect, e.orient) :: acc) rest)
  in
  go [] t.entries
