module Config = Config
module Block = Block
module Port_plan = Port_plan
module Shape_curves = Shape_curves
module Target_area = Target_area
module Layout_gen = Layout_gen
module Floorplan = Floorplan
module Flipping = Flipping
module Placement_io = Placement_io
module Rect = Geom.Rect
module Flat = Netlist.Flat

type macro_placement = {
  fid : int;
  rect : Rect.t;
  orient : Geom.Orientation.t;
}

type result = {
  die : Rect.t;
  placements : macro_placement list;
  levels : Floorplan.level_info list;
  top : Floorplan.instance_snapshot option;
  tree : Hier.Tree.t;
  gseq : Seqgraph.t;
  ports : Port_plan.t;
  ht_rects : (int, Rect.t) Hashtbl.t;
  lambda : float;
  sa_moves : int;
  flip_gain : float;
}

let die_for flat ~config =
  let area = Flat.total_cell_area flat /. config.Config.utilization in
  let aspect = config.Config.die_aspect in
  let h = sqrt (area /. aspect) in
  let w = aspect *. h in
  Rect.make ~x:0.0 ~y:0.0 ~w ~h

let place ?(config = Config.default) ?die flat =
  let die = match die with Some d -> d | None -> die_for flat ~config in
  let rng = Util.Rng.create config.Config.seed in
  let tree = Hier.Tree.build flat in
  let gseq = Seqgraph.build ~bit_threshold:config.Config.bit_threshold flat in
  let sgamma = Shape_curves.generate tree ~config ~rng:(Util.Rng.split rng) in
  let ports = Port_plan.make gseq ~die in
  let fp =
    Floorplan.run ~tree ~gseq ~sgamma ~ports ~config ~rng:(Util.Rng.split rng) ~die
  in
  let flip =
    Flipping.run ~tree ~gseq ~ports ~macro_rects:fp.Floorplan.macro_rects
      ~ht_rects:fp.Floorplan.ht_rects ~die ~config
  in
  let orient_of = Hashtbl.create 64 in
  List.iter
    (fun (fid, o) -> Hashtbl.replace orient_of fid o)
    flip.Flipping.orientations;
  let placements =
    List.map
      (fun (fid, rect) ->
        let orient =
          match Hashtbl.find_opt orient_of fid with
          | Some o -> o
          | None -> Geom.Orientation.R0
        in
        { fid; rect; orient })
      fp.Floorplan.macro_rects
  in
  { die;
    placements;
    levels = fp.Floorplan.levels;
    top = fp.Floorplan.top;
    tree;
    gseq;
    ports;
    ht_rects = fp.Floorplan.ht_rects;
    lambda = config.Config.lambda;
    sa_moves = fp.Floorplan.sa_moves_total;
    flip_gain = flip.Flipping.gain }

let place_sweep ?(config = Config.default) ?die ~objective flat =
  let lambdas =
    match config.Config.lambda_sweep with [] -> [ config.Config.lambda ] | l -> l
  in
  let runs =
    List.map
      (fun lambda ->
        let r = place ~config:{ config with Config.lambda } ?die flat in
        (r, objective r))
      lambdas
  in
  match runs with
  | [] -> assert false
  | first :: rest ->
    List.fold_left (fun (br, bo) (r, o) -> if o < bo then (r, o) else (br, bo)) first rest

let overlap_area result =
  let rects = List.map (fun p -> p.rect) result.placements in
  let arr = Array.of_list rects in
  let total = ref 0.0 in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      total := !total +. Rect.intersection_area arr.(i) arr.(j)
    done
  done;
  !total

let placement_bbox_ok result =
  List.for_all
    (fun p -> Rect.contains_rect ~outer:result.die ~inner:p.rect)
    result.placements
