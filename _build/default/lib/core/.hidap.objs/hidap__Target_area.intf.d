lib/core/target_area.mli: Block Hier Shape_curves
