lib/core/hidap.mli: Block Config Flipping Floorplan Geom Hashtbl Hier Layout_gen Netlist Placement_io Port_plan Seqgraph Shape_curves Target_area
