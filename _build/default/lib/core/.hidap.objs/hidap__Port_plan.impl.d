lib/core/port_plan.ml: Array Float Geom Hashtbl List Seqgraph
