lib/core/floorplan.ml: Array Block Config Dataflow Geom Hashtbl Hier Layout_gen List Netlist Port_plan Seqgraph Shape_curves Target_area Util
