lib/core/target_area.ml: Array Block Graphlib Hier List Netlist Shape_curves
