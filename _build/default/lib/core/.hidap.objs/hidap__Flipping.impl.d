lib/core/flipping.ml: Array Geom Hashtbl Hier List Netlist Port_plan Seqgraph
