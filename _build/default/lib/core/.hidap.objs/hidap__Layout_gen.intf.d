lib/core/layout_gen.mli: Block Config Geom Slicing Util
