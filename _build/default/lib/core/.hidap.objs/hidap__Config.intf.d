lib/core/config.mli: Anneal
