lib/core/port_plan.mli: Geom Seqgraph
