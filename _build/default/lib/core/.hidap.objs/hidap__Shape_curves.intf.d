lib/core/shape_curves.mli: Config Hier Shape Util
