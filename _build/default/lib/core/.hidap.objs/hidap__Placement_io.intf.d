lib/core/placement_io.mli: Geom Netlist
