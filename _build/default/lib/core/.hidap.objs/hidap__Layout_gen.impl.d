lib/core/layout_gen.ml: Anneal Array Block Config Geom List Slicing
