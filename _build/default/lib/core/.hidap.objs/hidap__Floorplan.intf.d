lib/core/floorplan.mli: Block Config Geom Hashtbl Hier Port_plan Seqgraph Shape_curves Util
