lib/core/flipping.mli: Config Geom Hashtbl Hier Port_plan Seqgraph
