lib/core/placement_io.ml: Array Buffer Geom Hashtbl List Netlist Printf String Util
