lib/core/hidap.ml: Array Block Config Flipping Floorplan Geom Hashtbl Hier Layout_gen List Netlist Placement_io Port_plan Seqgraph Shape_curves Target_area Util
