lib/core/block.mli: Format Shape Slicing
