lib/core/shape_curves.ml: Anneal Array Config Hier List Netlist Shape Slicing
