lib/core/config.ml: Anneal
