lib/core/block.ml: Format Shape Slicing
