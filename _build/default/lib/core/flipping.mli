(** Macro orientation post-process (paper Algorithm 1, "memory
    flipping").

    The pin model places all input pins at the centre of the macro's west
    face and all output pins at the centre of its east face (in the
    reference orientation) — the typical single-sided/double-sided memory
    pinout. Flipping evaluates the footprint-preserving orientations
    (R0 / MX / MY / R180) against the macro's side dataflow: each Gseq
    edge pulls its pin toward the other endpoint's position, weighted by
    the connection width. The same pin model is exported for the
    downstream wirelength/timing metrics so that flipping gains are
    measurable. *)

val pin_offset :
  orient:Geom.Orientation.t -> w:float -> h:float -> dir:[ `In | `Out ] -> Geom.Point.t
(** Pin offset from the macro's lower-left corner, for a macro whose
    placed footprint is [w] x [h]. *)

val pin_position :
  rect:Geom.Rect.t -> orient:Geom.Orientation.t -> dir:[ `In | `Out ] -> Geom.Point.t

type result = {
  orientations : (int * Geom.Orientation.t) list;  (** flat macro id -> orientation *)
  gain : float;  (** estimated side-dataflow wirelength reduction *)
}

val run :
  tree:Hier.Tree.t ->
  gseq:Seqgraph.t ->
  ports:Port_plan.t ->
  macro_rects:(int * Geom.Rect.t) list ->
  ht_rects:(int, Geom.Rect.t) Hashtbl.t ->
  die:Geom.Rect.t ->
  config:Config.t ->
  result
