(** The dataflow graph Gdf and affinity matrix Maff (paper §II-B, §IV-D).

    Endpoints are the HCB blocks of the current floorplanning instance
    plus fixed elements (multi-bit ports and macros outside the subtree
    being floorplanned). For every ordered endpoint pair, two latency
    histograms are accumulated:

    - {e block flow}: shortest-latency paths between any components of
      the two endpoints, traversing only glue-logic registers (components
      belonging to no block);
    - {e macro flow}: shortest-latency paths between the macros (and
      ports) of the two endpoints, traversing any register.

    Histogram bins index path latency (sum of Gseq edge latencies) and
    heights accumulate connection bits. The affinity of a pair blends the
    two flows: [lambda * score(block) + (1 - lambda) * score(macro)]
    where [score h = sum_i bits_i / latency_i^k]. *)

type t

val build :
  Seqgraph.t ->
  n_blocks:int ->
  block_of_node:(int -> int) ->
  fixed:int array ->
  t
(** [block_of_node v] gives the block index of Gseq node [v]
    ([0 .. n_blocks-1]) or [-1] for glue / outside nodes. [fixed] lists
    Gseq node ids acting as fixed endpoints; they must map to [-1] in
    [block_of_node]. *)

val endpoint_count : t -> int
(** Blocks first, then fixed endpoints. *)

val n_blocks : t -> int

val block_flow : t -> int -> int -> Util.Histogram.t
(** Directed block-flow histogram between endpoint indices. *)

val macro_flow : t -> int -> int -> Util.Histogram.t

val affinity_matrix : t -> lambda:float -> k:int -> ?normalize:bool -> unit -> float array array
(** Symmetric affinity matrix over all endpoints:
    [M.(i).(j) = lambda * sb + (1 - lambda) * sm] where [sb]/[sm] are the
    summed (both directions) block/macro-flow scores. When [normalize]
    (default true) each flow matrix is scaled to a unit maximum first, so
    that [lambda] blends comparable magnitudes. Requires
    [0 <= lambda <= 1] and [k >= 0]. *)

val edge_count : t -> int
(** Number of endpoint pairs with non-empty flow in either direction
    (the |Edf| of Table I). *)

val pp_summary : Format.formatter -> t -> unit
