lib/dataflow/gdf.mli: Format Seqgraph Util
