lib/dataflow/gdf.ml: Array Format List Seqgraph Util
