module H = Util.Histogram

type t = {
  nb : int;
  n_endpoints : int;
  bflow : H.t array array;
  mflow : H.t array array;
}

(* Dijkstra by cumulative edge latency from a set of source Gseq nodes.
   [may_traverse v] controls which settled nodes are expanded;
   [on_reach ~node ~latency ~via_width] fires once per settled non-source
   node. Sources themselves are neither reported nor subject to the
   traversal predicate (the search leaves them unconditionally).
   [direction] selects forward (paths source -> x) or backward
   (paths x -> source) traversal. *)
let latency_search (g : Seqgraph.t) ~direction ~sources ~may_traverse ~on_reach =
  let n = Seqgraph.node_count g in
  let dist = Array.make n max_int in
  let via = Array.make n 0 in
  let heap = Util.Heap.create () in
  let is_source = Array.make n false in
  List.iter
    (fun s ->
      is_source.(s) <- true;
      dist.(s) <- 0;
      Util.Heap.push heap ~key:0.0 s)
    sources;
  let neighbors u =
    match direction with
    | `Fwd -> List.map (fun (e : Seqgraph.edge) -> (e.Seqgraph.dst, e)) (Seqgraph.succ_edges g u)
    | `Bwd -> List.map (fun (e : Seqgraph.edge) -> (e.Seqgraph.src, e)) (Seqgraph.pred_edges g u)
  in
  let expand u =
    List.iter
      (fun (v, (e : Seqgraph.edge)) ->
        let d = dist.(u) + e.Seqgraph.latency in
        if d < dist.(v) then begin
          dist.(v) <- d;
          via.(v) <- e.Seqgraph.width;
          Util.Heap.push heap ~key:(float_of_int d) v
        end)
      (neighbors u)
  in
  let settled = Array.make n false in
  let rec drain () =
    match Util.Heap.pop_min heap with
    | None -> ()
    | Some (_, u) ->
      if not settled.(u) then begin
        settled.(u) <- true;
        if is_source.(u) then expand u
        else begin
          on_reach ~node:u ~latency:dist.(u) ~via_width:via.(u);
          if may_traverse u then expand u
        end
      end;
      drain ()
  in
  drain ()

let build (g : Seqgraph.t) ~n_blocks ~block_of_node ~fixed =
  let nfixed = Array.length fixed in
  let n_endpoints = n_blocks + nfixed in
  (* Endpoint index of each Gseq node: block index, fixed index, or -1. *)
  let endpoint_of = Array.make (Seqgraph.node_count g) (-1) in
  Array.iteri
    (fun i nd ->
      let b = block_of_node i in
      if b >= 0 then endpoint_of.(i) <- b
      else ignore nd)
    g.Seqgraph.nodes;
  Array.iteri
    (fun fi v ->
      assert (block_of_node v < 0);
      endpoint_of.(v) <- n_blocks + fi)
    fixed;
  let bflow = Array.init n_endpoints (fun _ -> Array.init n_endpoints (fun _ -> H.create ())) in
  let mflow = Array.init n_endpoints (fun _ -> Array.init n_endpoints (fun _ -> H.create ())) in
  (* Component lists per endpoint. *)
  let members = Array.make n_endpoints [] in
  Array.iteri
    (fun v nd ->
      ignore nd;
      let e = endpoint_of.(v) in
      if e >= 0 then members.(e) <- v :: members.(e))
    g.Seqgraph.nodes;
  let is_macro v = Seqgraph.is_macro_node g.Seqgraph.nodes.(v) in
  let is_port v = Seqgraph.is_port_node g.Seqgraph.nodes.(v) in
  (* Searches run only from block endpoints: the layout cost only uses
     pairs with at least one movable block, so fixed-fixed flow is never
     needed. Forward search from block i fills flow.(i).(j); backward
     search fills flow.(j).(i) for fixed j (block-block pairs are covered
     by the forward searches alone). *)
  let record flow ~from_block:i ~direction ~node ~latency ~via_width =
    let j = endpoint_of.(node) in
    if j >= 0 && j <> i then begin
      match direction with
      | `Fwd -> H.add flow.(i).(j) ~bin:latency ~weight:(float_of_int via_width)
      | `Bwd ->
        if j >= n_blocks then
          H.add flow.(j).(i) ~bin:latency ~weight:(float_of_int via_width)
    end
  in
  (* Block flow: traverse only glue registers (no endpoint membership,
     not macros). *)
  let glue v = endpoint_of.(v) < 0 && not (is_macro v) in
  for i = 0 to n_blocks - 1 do
    let sources = members.(i) in
    if sources <> [] then
      List.iter
        (fun direction ->
          latency_search g ~direction ~sources ~may_traverse:glue
            ~on_reach:(fun ~node ~latency ~via_width ->
              record bflow ~from_block:i ~direction ~node ~latency ~via_width))
        [ `Fwd; `Bwd ]
  done;
  (* Macro flow: sources are the macros (and ports) of the endpoint;
     traversal is allowed through any register; endpoints are macros and
     ports of other endpoints. *)
  let seq_register v = (not (is_macro v)) && not (is_port v) in
  for i = 0 to n_blocks - 1 do
    let sources = List.filter (fun v -> is_macro v || is_port v) members.(i) in
    if sources <> [] then
      List.iter
        (fun direction ->
          latency_search g ~direction ~sources ~may_traverse:seq_register
            ~on_reach:(fun ~node ~latency ~via_width ->
              if is_macro node || is_port node then
                record mflow ~from_block:i ~direction ~node ~latency ~via_width))
        [ `Fwd; `Bwd ]
  done;
  { nb = n_blocks; n_endpoints; bflow; mflow }

let endpoint_count t = t.n_endpoints

let n_blocks t = t.nb

let block_flow t i j = t.bflow.(i).(j)

let macro_flow t i j = t.mflow.(i).(j)

let affinity_matrix t ~lambda ~k ?(normalize = true) () =
  assert (lambda >= 0.0 && lambda <= 1.0 && k >= 0);
  let n = t.n_endpoints in
  let pair_score flow i j = H.score flow.(i).(j) ~k +. H.score flow.(j).(i) ~k in
  let scores flow =
    let m = Array.make_matrix n n 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let s = pair_score flow i j in
        m.(i).(j) <- s;
        m.(j).(i) <- s
      done
    done;
    m
  in
  let sb = scores t.bflow and sm = scores t.mflow in
  let max_of m =
    Array.fold_left (fun acc row -> Array.fold_left max acc row) 0.0 m
  in
  let norm m =
    let mx = max_of m in
    if normalize && mx > 0.0 then
      Array.map (Array.map (fun x -> x /. mx)) m
    else m
  in
  let sb = norm sb and sm = norm sm in
  let out = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      out.(i).(j) <- (lambda *. sb.(i).(j)) +. ((1.0 -. lambda) *. sm.(i).(j))
    done
  done;
  out

let edge_count t =
  let n = t.n_endpoints in
  let c = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (H.is_empty t.bflow.(i).(j) && H.is_empty t.bflow.(j).(i)
              && H.is_empty t.mflow.(i).(j) && H.is_empty t.mflow.(j).(i))
      then incr c
    done
  done;
  !c

let pp_summary ppf t =
  Format.fprintf ppf "Gdf: %d endpoints (%d blocks), %d edges" t.n_endpoints t.nb
    (edge_count t)
