(* End-to-end integration tests: the full evaluation pipeline on a real
   (small) circuit, exercising all three flows and the cross-flow
   invariants the paper's tables rely on. *)

module Flat = Netlist.Flat
module Rect = Geom.Rect

let result =
  lazy
    (let design = Circuitgen.Suite.fig1_design () in
     let flat = Flat.elaborate design in
     (flat, Evalflow.run_all ~name:"fig1" design))

let get_run kind =
  let _, res = Lazy.force result in
  List.find (fun (r : Evalflow.run) -> r.Evalflow.kind = kind) res.Evalflow.runs

let test_all_flows_present () =
  let _, res = Lazy.force result in
  Alcotest.(check int) "three flows" 3 (List.length res.Evalflow.runs);
  Alcotest.(check (list string)) "order" [ "IndEDA"; "HiDaP"; "handFP" ]
    (List.map (fun (r : Evalflow.run) -> Evalflow.flow_name r.Evalflow.kind) res.Evalflow.runs)

let test_macro_counts () =
  let _, res = Lazy.force result in
  Alcotest.(check int) "16 macros" 16 res.Evalflow.macro_count;
  List.iter
    (fun (r : Evalflow.run) ->
      Alcotest.(check int) "all macros placed by every flow" 16
        (List.length r.Evalflow.macros))
    res.Evalflow.runs

let test_metrics_sane () =
  let _, res = Lazy.force result in
  List.iter
    (fun (r : Evalflow.run) ->
      let m = r.Evalflow.metrics in
      Alcotest.(check bool) "WL positive" true (m.Evalflow.wl_um > 0.0);
      Alcotest.(check (float 1e-12)) "meters conversion" (m.Evalflow.wl_um *. 1e-6)
        m.Evalflow.wl_m;
      Alcotest.(check bool) "GRC finite and non-negative" true
        (m.Evalflow.grc_pct >= 0.0 && Float.is_finite m.Evalflow.grc_pct);
      Alcotest.(check bool) "WNS <= 0 by construction" true (m.Evalflow.wns_pct <= 0.0);
      Alcotest.(check bool) "TNS <= 0" true (m.Evalflow.tns <= 0.0);
      Alcotest.(check bool) "runtime recorded" true (m.Evalflow.runtime_s >= 0.0))
    res.Evalflow.runs

let test_normalization () =
  let _, res = Lazy.force result in
  Alcotest.(check (float 1e-9)) "handFP normalizes to 1" 1.0
    (Evalflow.normalized_wl res Evalflow.HandFP);
  List.iter
    (fun kind ->
      Alcotest.(check bool) "normalized WL positive" true
        (Evalflow.normalized_wl res kind > 0.0))
    [ Evalflow.IndEDA; Evalflow.HiDaP ]

let test_paper_shape () =
  (* The headline result: HiDaP beats the commercial proxy and is close
     to the expert oracle. *)
  let _, res = Lazy.force result in
  let wl k = Evalflow.normalized_wl res k in
  Alcotest.(check bool) "HiDaP < IndEDA on wirelength" true
    (wl Evalflow.HiDaP < wl Evalflow.IndEDA);
  Alcotest.(check bool) "HiDaP within 15% of handFP" true (wl Evalflow.HiDaP < 1.15);
  (* and HiDaP's timing is no worse than the wall packer's *)
  let wns k = (get_run k).Evalflow.metrics.Evalflow.wns_pct in
  Alcotest.(check bool) "HiDaP WNS >= IndEDA WNS" true
    (wns Evalflow.HiDaP >= wns Evalflow.IndEDA)

let test_hidap_lambda_recorded () =
  let r = get_run Evalflow.HiDaP in
  match r.Evalflow.lambda_used with
  | Some l ->
    Alcotest.(check bool) "lambda from the sweep" true (List.mem l [ 0.2; 0.5; 0.8 ])
  | None -> Alcotest.fail "HiDaP must record its lambda"

let test_every_flow_legal () =
  let flat, res = Lazy.force result in
  ignore flat;
  List.iter
    (fun (r : Evalflow.run) ->
      let rects =
        Array.of_list (List.map (fun (m : Cellplace.macro_place) -> m.Cellplace.rect) r.Evalflow.macros)
      in
      Alcotest.(check bool)
        (Evalflow.flow_name r.Evalflow.kind ^ " placement near-legal")
        true
        (Baselines.Legalize.total_overlap rects < 1e-3))
    res.Evalflow.runs

let test_density_maps () =
  let flat, res = Lazy.force result in
  List.iter
    (fun (r : Evalflow.run) ->
      let grid = Evalflow.density_map r ~flat ~bins:12 in
      Alcotest.(check int) "grid size" 12 (Array.length grid);
      let total = Array.fold_left (fun a col -> Array.fold_left ( +. ) a col) 0.0 grid in
      Alcotest.(check bool) "mass present" true (total > 0.0))
    res.Evalflow.runs

let test_measure_deterministic () =
  let flat, res = Lazy.force result in
  let r = List.hd res.Evalflow.runs in
  let gseq = Seqgraph.build flat in
  let die = r.Evalflow.placement.Cellplace.die in
  let ports = Hidap.Port_plan.make gseq ~die in
  let m1, _ = Evalflow.measure ~flat ~gseq ~ports ~die ~macros:r.Evalflow.macros in
  let m2, _ = Evalflow.measure ~flat ~gseq ~ports ~die ~macros:r.Evalflow.macros in
  Alcotest.(check (float 1e-9)) "same WL" m1.Evalflow.wl_um m2.Evalflow.wl_um;
  Alcotest.(check (float 1e-9)) "same GRC" m1.Evalflow.grc_pct m2.Evalflow.grc_pct;
  Alcotest.(check (float 1e-9)) "same TNS" m1.Evalflow.tns m2.Evalflow.tns

let test_flipping_improves_or_neutral () =
  (* measured WL with chosen orientations must not be worse than all-R0
     by more than noise: the flipping objective is a proxy, so allow 2% *)
  let flat, res = Lazy.force result in
  let r = get_run Evalflow.HiDaP in
  let gseq = Seqgraph.build flat in
  let die = r.Evalflow.placement.Cellplace.die in
  let ports = Hidap.Port_plan.make gseq ~die in
  let m_flip, _ = Evalflow.measure ~flat ~gseq ~ports ~die ~macros:r.Evalflow.macros in
  let r0 =
    List.map
      (fun (m : Cellplace.macro_place) -> { m with Cellplace.orient = Geom.Orientation.R0 })
      r.Evalflow.macros
  in
  let m_r0, _ = Evalflow.measure ~flat ~gseq ~ports ~die ~macros:r0 in
  ignore res;
  Alcotest.(check bool) "flipping does not hurt measurably" true
    (m_flip.Evalflow.wl_um <= m_r0.Evalflow.wl_um *. 1.02)

let suite =
  [ ( "integration.evalflow",
      [ Alcotest.test_case "all flows present" `Slow test_all_flows_present;
        Alcotest.test_case "macro counts" `Slow test_macro_counts;
        Alcotest.test_case "metrics sane" `Slow test_metrics_sane;
        Alcotest.test_case "normalization" `Slow test_normalization;
        Alcotest.test_case "paper shape holds" `Slow test_paper_shape;
        Alcotest.test_case "lambda recorded" `Slow test_hidap_lambda_recorded;
        Alcotest.test_case "legal placements" `Slow test_every_flow_legal;
        Alcotest.test_case "density maps" `Slow test_density_maps;
        Alcotest.test_case "measurement deterministic" `Slow test_measure_deterministic;
        Alcotest.test_case "flipping sanity" `Slow test_flipping_improves_or_neutral ] ) ]
