(* Tests for the geometry substrate. *)

module Point = Geom.Point
module Rect = Geom.Rect
module O = Geom.Orientation

let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let point_arb =
  QCheck.(
    map
      (fun (x, y) -> Point.make x y)
      (pair (float_range (-100.0) 100.0) (float_range (-100.0) 100.0)))

let rect_arb =
  QCheck.(
    map
      (fun (x, y, w, h) -> Rect.make ~x ~y ~w ~h)
      (quad (float_range (-50.0) 50.0) (float_range (-50.0) 50.0)
         (float_range 0.0 40.0) (float_range 0.0 40.0)))

(* ---- Point -------------------------------------------------------- *)

let test_point_arith () =
  let a = Point.make 1.0 2.0 and b = Point.make 3.0 5.0 in
  Alcotest.(check bool) "add" true (Point.equal (Point.add a b) (Point.make 4.0 7.0));
  Alcotest.(check bool) "sub" true (Point.equal (Point.sub b a) (Point.make 2.0 3.0));
  Alcotest.(check bool) "scale" true (Point.equal (Point.scale 2.0 a) (Point.make 2.0 4.0));
  Alcotest.(check bool) "midpoint" true
    (Point.equal (Point.midpoint a b) (Point.make 2.0 3.5))

let test_distances () =
  let a = Point.make 0.0 0.0 and b = Point.make 3.0 4.0 in
  check_float "manhattan" 7.0 (Point.manhattan a b);
  check_float "euclidean" 5.0 (Point.euclidean a b)

let manhattan_triangle =
  qtest "manhattan triangle inequality"
    QCheck.(triple point_arb point_arb point_arb)
    (fun (a, b, c) ->
      Point.manhattan a c <= Point.manhattan a b +. Point.manhattan b c +. 1e-9)

let manhattan_symmetric =
  qtest "manhattan symmetric" QCheck.(pair point_arb point_arb) (fun (a, b) ->
      abs_float (Point.manhattan a b -. Point.manhattan b a) < 1e-12)

let euclidean_le_manhattan =
  qtest "euclidean <= manhattan" QCheck.(pair point_arb point_arb) (fun (a, b) ->
      Point.euclidean a b <= Point.manhattan a b +. 1e-9)

(* ---- Rect --------------------------------------------------------- *)

let test_rect_basic () =
  let r = Rect.make ~x:1.0 ~y:2.0 ~w:4.0 ~h:6.0 in
  check_float "area" 24.0 (Rect.area r);
  Alcotest.(check bool) "center" true (Point.equal (Rect.center r) (Point.make 3.0 5.0));
  Alcotest.(check bool) "contains center" true (Rect.contains_point r (Rect.center r));
  Alcotest.(check bool) "contains corner" true (Rect.contains_point r (Point.make 1.0 2.0));
  Alcotest.(check bool) "outside" false (Rect.contains_point r (Point.make 0.0 0.0))

let test_rect_overlap () =
  let a = Rect.make ~x:0.0 ~y:0.0 ~w:2.0 ~h:2.0 in
  let b = Rect.make ~x:1.0 ~y:1.0 ~w:2.0 ~h:2.0 in
  let c = Rect.make ~x:2.0 ~y:0.0 ~w:2.0 ~h:2.0 in
  Alcotest.(check bool) "overlapping" true (Rect.overlaps a b);
  Alcotest.(check bool) "touching does not overlap" false (Rect.overlaps a c);
  check_float "intersection" 1.0 (Rect.intersection_area a b);
  check_float "no intersection" 0.0 (Rect.intersection_area a c)

let test_rect_union () =
  let a = Rect.make ~x:0.0 ~y:0.0 ~w:1.0 ~h:1.0 in
  let b = Rect.make ~x:2.0 ~y:3.0 ~w:1.0 ~h:1.0 in
  let u = Rect.union_bbox a b in
  Alcotest.(check bool) "contains a" true (Rect.contains_rect ~outer:u ~inner:a);
  Alcotest.(check bool) "contains b" true (Rect.contains_rect ~outer:u ~inner:b);
  check_float "union dims" 12.0 (Rect.area u)

let test_rect_split () =
  let r = Rect.make ~x:0.0 ~y:0.0 ~w:4.0 ~h:2.0 in
  let l, rr = Rect.split_v r 0.25 in
  check_float "left width" 1.0 l.Rect.w;
  check_float "right width" 3.0 rr.Rect.w;
  check_float "right x" 1.0 rr.Rect.x;
  let b, t = Rect.split_h r 0.5 in
  check_float "bottom height" 1.0 b.Rect.h;
  check_float "top y" 1.0 t.Rect.y

let test_rect_misc () =
  let r = Rect.make ~x:0.0 ~y:0.0 ~w:4.0 ~h:2.0 in
  check_float "aspect" 2.0 (Rect.aspect_ratio r);
  let i = Rect.inset r 0.5 in
  check_float "inset width" 3.0 i.Rect.w;
  let t = Rect.translate r (Point.make 1.0 1.0) in
  check_float "translate x" 1.0 t.Rect.x;
  Alcotest.(check int) "corners" 4 (Array.length (Rect.corners r));
  let degenerate = Rect.make ~x:0.0 ~y:0.0 ~w:0.0 ~h:1.0 in
  Alcotest.(check bool) "degenerate aspect infinite" true
    (Rect.aspect_ratio degenerate = infinity)

let intersection_commutative =
  qtest "intersection commutative" QCheck.(pair rect_arb rect_arb) (fun (a, b) ->
      abs_float (Rect.intersection_area a b -. Rect.intersection_area b a) < 1e-9)

let intersection_bounded =
  qtest "intersection bounded by areas" QCheck.(pair rect_arb rect_arb) (fun (a, b) ->
      let i = Rect.intersection_area a b in
      i >= 0.0 && i <= Rect.area a +. 1e-9 && i <= Rect.area b +. 1e-9)

let split_partitions =
  qtest "split_v partitions the area"
    QCheck.(pair rect_arb (float_range 0.0 1.0))
    (fun (r, f) ->
      let a, b = Rect.split_v r f in
      abs_float (Rect.area a +. Rect.area b -. Rect.area r) < 1e-6
      && not (Rect.overlaps a b))

let of_corners_contains =
  qtest "of_corners contains both points (up to rounding)"
    QCheck.(pair point_arb point_arb)
    (fun (a, b) ->
      let r = Rect.of_corners a b in
      let inside (p : Point.t) =
        p.Point.x >= r.Rect.x -. 1e-9
        && p.Point.x <= r.Rect.x +. r.Rect.w +. 1e-9
        && p.Point.y >= r.Rect.y -. 1e-9
        && p.Point.y <= r.Rect.y +. r.Rect.h +. 1e-9
      in
      inside a && inside b)

(* ---- Orientation -------------------------------------------------- *)

let test_orient_dims () =
  List.iter
    (fun o ->
      let w, h = O.apply_dims o ~w:3.0 ~h:2.0 in
      if O.swaps_dims o then begin
        check_float "swapped w" 2.0 w;
        check_float "swapped h" 3.0 h
      end
      else begin
        check_float "kept w" 3.0 w;
        check_float "kept h" 2.0 h
      end)
    (Array.to_list O.all)

let test_orient_offsets () =
  let w = 4.0 and h = 2.0 in
  let p = Point.make 1.0 0.5 in
  let check name o expected =
    Alcotest.(check bool) name true (Point.equal (O.apply_offset o ~w ~h p) expected)
  in
  check "R0 identity" O.R0 p;
  check "MY mirrors x" O.MY (Point.make 3.0 0.5);
  check "MX mirrors y" O.MX (Point.make 1.0 1.5);
  check "R180 mirrors both" O.R180 (Point.make 3.0 1.5)

let test_orient_strings () =
  Array.iter
    (fun o ->
      match O.of_string (O.to_string o) with
      | Some o' -> Alcotest.(check bool) "roundtrip" true (o = o')
      | None -> Alcotest.fail "of_string failed")
    O.all;
  Alcotest.(check (option unit)) "bad string" None
    (Option.map (fun _ -> ()) (O.of_string "R45"))

let test_orient_compose_identity () =
  Array.iter
    (fun o ->
      Alcotest.(check string) "right identity" (O.to_string o) (O.to_string (O.compose o O.R0));
      Alcotest.(check string) "left identity" (O.to_string o) (O.to_string (O.compose O.R0 o)))
    O.all

let test_orient_compose_group () =
  (* the orientation set forms a group: every row and column of the
     composition table is a permutation *)
  Array.iter
    (fun a ->
      let row = Array.map (fun b -> O.compose a b) O.all in
      let col = Array.map (fun b -> O.compose b a) O.all in
      let distinct arr =
        let l = Array.to_list (Array.map O.to_string arr) in
        List.length (List.sort_uniq compare l) = Array.length arr
      in
      Alcotest.(check bool) "row is permutation" true (distinct row);
      Alcotest.(check bool) "col is permutation" true (distinct col))
    O.all

let test_orient_rotation_subgroup () =
  Alcotest.(check string) "R90*R90=R180" "R180" (O.to_string (O.compose O.R90 O.R90));
  Alcotest.(check string) "R90*R270=R0" "R0" (O.to_string (O.compose O.R90 O.R270));
  Alcotest.(check string) "MX*MX=R0" "R0" (O.to_string (O.compose O.MX O.MX));
  Alcotest.(check string) "MY*MY=R0" "R0" (O.to_string (O.compose O.MY O.MY))

let offset_stays_in_footprint =
  qtest "oriented offset stays inside the footprint"
    QCheck.(pair (int_range 0 7) (pair (float_range 0.0 1.0) (float_range 0.0 1.0)))
    (fun (oi, (fx, fy)) ->
      let o = O.all.(oi) in
      let w = 5.0 and h = 3.0 in
      let p = Point.make (fx *. w) (fy *. h) in
      let q = O.apply_offset o ~w ~h p in
      let w', h' = O.apply_dims o ~w ~h in
      q.Point.x >= -1e-9 && q.Point.x <= w' +. 1e-9 && q.Point.y >= -1e-9
      && q.Point.y <= h' +. 1e-9)

(* ---- Wirelength --------------------------------------------------- *)

let test_hpwl () =
  check_float "two pins" 7.0
    (Geom.Wirelength.hpwl [ Point.make 0.0 0.0; Point.make 3.0 4.0 ]);
  check_float "single pin" 0.0 (Geom.Wirelength.hpwl [ Point.origin ]);
  check_float "empty" 0.0 (Geom.Wirelength.hpwl []);
  check_float "interior pins ignored" 7.0
    (Geom.Wirelength.hpwl
       [ Point.make 0.0 0.0; Point.make 1.0 1.0; Point.make 3.0 4.0 ])

let hpwl_translation_invariant =
  qtest "hpwl translation invariant"
    QCheck.(pair (list_of_size (Gen.int_range 2 8) point_arb) point_arb)
    (fun (pins, d) ->
      let moved = List.map (Point.add d) pins in
      abs_float (Geom.Wirelength.hpwl pins -. Geom.Wirelength.hpwl moved) < 1e-6)

let hpwl_le_star =
  qtest "hpwl <= 2x star length"
    QCheck.(list_of_size (Gen.int_range 2 8) point_arb)
    (fun pins ->
      Geom.Wirelength.hpwl pins <= (2.0 *. Geom.Wirelength.star pins) +. 1e-6)

let test_total_hpwl () =
  let nets =
    [| [| Point.make 0.0 0.0; Point.make 1.0 0.0 |];
       [| Point.make 0.0 0.0; Point.make 0.0 2.0 |] |]
  in
  check_float "sum over nets" 3.0 (Geom.Wirelength.total_hpwl nets)

let suite =
  [ ( "geom.point",
      [ Alcotest.test_case "arithmetic" `Quick test_point_arith;
        Alcotest.test_case "distances" `Quick test_distances;
        manhattan_triangle; manhattan_symmetric; euclidean_le_manhattan ] );
    ( "geom.rect",
      [ Alcotest.test_case "basic" `Quick test_rect_basic;
        Alcotest.test_case "overlap" `Quick test_rect_overlap;
        Alcotest.test_case "union" `Quick test_rect_union;
        Alcotest.test_case "split" `Quick test_rect_split;
        Alcotest.test_case "misc" `Quick test_rect_misc;
        intersection_commutative; intersection_bounded; split_partitions;
        of_corners_contains ] );
    ( "geom.orientation",
      [ Alcotest.test_case "dims" `Quick test_orient_dims;
        Alcotest.test_case "offsets" `Quick test_orient_offsets;
        Alcotest.test_case "strings" `Quick test_orient_strings;
        Alcotest.test_case "compose identity" `Quick test_orient_compose_identity;
        Alcotest.test_case "compose group" `Quick test_orient_compose_group;
        Alcotest.test_case "rotation subgroup" `Quick test_orient_rotation_subgroup;
        offset_stays_in_footprint ] );
    ( "geom.wirelength",
      [ Alcotest.test_case "hpwl" `Quick test_hpwl;
        Alcotest.test_case "total" `Quick test_total_hpwl;
        hpwl_translation_invariant; hpwl_le_star ] ) ]
