(* Tests for the hierarchy tree and declustering (paper Algorithm 3). *)

module D = Netlist.Design
module Flat = Netlist.Flat
module Tree = Hier.Tree
module Dc = Hier.Decluster

let qtest ?(count = 50) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* top
     u0 : block  (macro 6x4 + flop + comb)
     u1 : block
     glue : comb in top *)
let block_mod =
  D.module_def ~name:"block"
    ~ports:[ D.port ~name:"i" ~dir:D.Input; D.port ~name:"o" ~dir:D.Output ]
    ~cells:
      [ D.cell ~name:"mem" ~kind:(D.make_macro ~w:6.0 ~h:4.0) ~ins:[ "i" ] ~outs:[ "q" ] ();
        D.cell ~name:"r_0" ~kind:D.Flop ~ins:[ "q" ] ~outs:[ "p" ] ();
        D.cell ~name:"c" ~kind:D.Comb ~ins:[ "p" ] ~outs:[ "o" ] () ]
    ()

let top_mod =
  D.module_def ~name:"top"
    ~ports:[ D.port ~name:"a" ~dir:D.Input; D.port ~name:"z" ~dir:D.Output ]
    ~cells:[ D.cell ~name:"g" ~kind:D.Comb ~ins:[ "w" ] ~outs:[ "z" ] () ]
    ~insts:
      [ D.inst ~name:"u0" ~module_:"block" ~bindings:[ ("i", "a"); ("o", "w") ];
        D.inst ~name:"u1" ~module_:"block" ~bindings:[ ("i", "w"); ("o", "x") ] ]
    ()

let tree = lazy (Tree.build (Flat.elaborate (D.design ~top:"top" ~modules:[ top_mod; block_mod ])))

let fig1_tree = lazy (Tree.build (Flat.elaborate (Circuitgen.Suite.fig1_design ())))

let test_tree_aggregates () =
  let t = Lazy.force tree in
  let root = Tree.root t in
  (* total area: 2 blocks x (24 + 1 + 1) + 1 top comb = 53 *)
  Alcotest.(check (float 1e-9)) "root area" 53.0 (Tree.area t root);
  Alcotest.(check int) "root macros" 2 (Tree.macro_count t root);
  Alcotest.(check int) "root depth 0" 0 (Tree.depth t root)

let test_tree_structure () =
  let t = Lazy.force tree in
  let root = Tree.root t in
  (* children: scope u0, scope u1, top glue leaf *)
  let kids = Tree.children t root in
  Alcotest.(check int) "root children" 3 (List.length kids);
  let scopes, leaves =
    List.partition
      (fun id -> match (Tree.node t id).Tree.kind with Tree.Scope _ -> true | _ -> false)
      kids
  in
  Alcotest.(check int) "two scope children" 2 (List.length scopes);
  Alcotest.(check int) "one glue leaf" 1 (List.length leaves);
  List.iter
    (fun sid ->
      Alcotest.(check int) "block subtree macro" 1 (Tree.macro_count t sid);
      (* scope child: macro leaf + glue leaf *)
      Alcotest.(check int) "scope children" 2 (List.length (Tree.children t sid)))
    scopes

let test_tree_macros_below () =
  let t = Lazy.force tree in
  let root = Tree.root t in
  Alcotest.(check int) "macros below root" 2 (List.length (Tree.macros_below t root));
  let cells = Tree.cells_below t root in
  Alcotest.(check int) "cells below root" 7 (List.length cells)

let test_ht_node_of_flat () =
  let t = Lazy.force tree in
  let flat = Tree.flat t in
  Array.iter
    (fun (n : Flat.node) ->
      if not (Flat.is_port n) then begin
        let ht = Tree.ht_node_of_flat t n.Flat.id in
        (match ((Tree.node t ht).Tree.kind, Flat.is_macro n) with
        | Tree.Macro_cell fid, true -> Alcotest.(check int) "macro leaf maps back" n.Flat.id fid
        | Tree.Glue sid, false -> Alcotest.(check int) "glue leaf scope" n.Flat.scope sid
        | _ -> Alcotest.fail "wrong HT leaf kind");
        Alcotest.(check bool) "leaf under root" true
          (Tree.is_ancestor t ~ancestor:(Tree.root t) ht)
      end)
    flat.Flat.nodes

let test_ht_node_of_flat_port_raises () =
  let t = Lazy.force tree in
  let flat = Tree.flat t in
  let port =
    Array.to_list flat.Flat.nodes |> List.find (fun (n : Flat.node) -> Flat.is_port n)
  in
  match Tree.ht_node_of_flat t port.Flat.id with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for ports"

let test_is_ancestor () =
  let t = Lazy.force tree in
  let root = Tree.root t in
  Alcotest.(check bool) "reflexive" true (Tree.is_ancestor t ~ancestor:root root);
  let kid = List.hd (Tree.children t root) in
  Alcotest.(check bool) "parent of child" true (Tree.is_ancestor t ~ancestor:root kid);
  Alcotest.(check bool) "child not ancestor of root" false
    (Tree.is_ancestor t ~ancestor:kid root)

let test_area_conservation_fig1 () =
  let t = Lazy.force fig1_tree in
  let flat = Tree.flat t in
  Alcotest.(check (float 1e-6)) "root area = total cell area"
    (Flat.total_cell_area flat)
    (Tree.area t (Tree.root t));
  Alcotest.(check int) "16 macros" 16 (Tree.macro_count t (Tree.root t))

(* ---- declustering ------------------------------------------------- *)

let test_decluster_fig1_top () =
  let t = Lazy.force fig1_tree in
  let dc = Dc.run t ~nh:(Tree.root t) ~open_frac:0.4 ~min_frac:0.01 in
  (* the Fig 1 story: two 8-macro subsystems plus cells-only blocks *)
  let macro_blocks =
    List.filter (fun id -> Tree.macro_count t id > 0) dc.Dc.hcb
  in
  Alcotest.(check int) "two macro blocks" 2 (List.length macro_blocks);
  List.iter
    (fun id -> Alcotest.(check int) "8 macros each" 8 (Tree.macro_count t id))
    macro_blocks;
  Alcotest.(check bool) "valid hierarchy cut" true
    (Dc.is_valid_cut t ~nh:(Tree.root t) (dc.Dc.hcb @ dc.Dc.hcg))

let test_decluster_macro_nodes_in_hcb () =
  let t = Lazy.force fig1_tree in
  let dc = Dc.run t ~nh:(Tree.root t) ~open_frac:0.4 ~min_frac:0.01 in
  List.iter
    (fun id -> Alcotest.(check int) "glue has no macros" 0 (Tree.macro_count t id))
    dc.Dc.hcg;
  let covered =
    List.fold_left (fun acc id -> acc + Tree.macro_count t id) 0 dc.Dc.hcb
  in
  Alcotest.(check int) "all macros covered" 16 covered

let test_decluster_area_covered () =
  let t = Lazy.force fig1_tree in
  let dc = Dc.run t ~nh:(Tree.root t) ~open_frac:0.4 ~min_frac:0.01 in
  let total =
    List.fold_left (fun acc id -> acc +. Tree.area t id) 0.0 (dc.Dc.hcb @ dc.Dc.hcg)
  in
  Alcotest.(check (float 1e-6)) "cut covers the whole area"
    (Tree.area t (Tree.root t)) total

let test_decluster_leaf_node () =
  let t = Lazy.force tree in
  (* decluster a macro leaf: single block, itself *)
  let flat = Tree.flat t in
  let macro =
    Array.to_list flat.Flat.nodes |> List.find (fun (n : Flat.node) -> Flat.is_macro n)
  in
  let leaf = Tree.ht_node_of_flat t macro.Flat.id in
  let dc = Dc.run t ~nh:leaf ~open_frac:0.4 ~min_frac:0.01 in
  Alcotest.(check (list int)) "leaf is its own block" [ leaf ] dc.Dc.hcb

let test_decluster_open_frac_effect () =
  let t = Lazy.force fig1_tree in
  (* a tiny open_frac explores deeper and produces more blocks *)
  let coarse = Dc.run t ~nh:(Tree.root t) ~open_frac:0.9 ~min_frac:0.001 in
  let fine = Dc.run t ~nh:(Tree.root t) ~open_frac:0.005 ~min_frac:0.001 in
  Alcotest.(check bool) "finer cut has at least as many nodes" true
    (List.length (fine.Dc.hcb @ fine.Dc.hcg)
     >= List.length (coarse.Dc.hcb @ coarse.Dc.hcg))

let decluster_always_valid_cut =
  qtest "declustering always yields a valid cut covering all macros"
    QCheck.(pair (float_range 0.02 1.0) (float_range 0.001 1.0))
    (fun (open_frac, min_frac_raw) ->
      let min_frac = min min_frac_raw open_frac in
      let t = Lazy.force fig1_tree in
      let dc = Dc.run t ~nh:(Tree.root t) ~open_frac ~min_frac in
      Dc.is_valid_cut t ~nh:(Tree.root t) (dc.Dc.hcb @ dc.Dc.hcg)
      && List.fold_left (fun acc id -> acc + Tree.macro_count t id) 0 dc.Dc.hcb = 16)

let suite =
  [ ( "hier.tree",
      [ Alcotest.test_case "aggregates" `Quick test_tree_aggregates;
        Alcotest.test_case "structure" `Quick test_tree_structure;
        Alcotest.test_case "macros/cells below" `Quick test_tree_macros_below;
        Alcotest.test_case "ht_node_of_flat" `Quick test_ht_node_of_flat;
        Alcotest.test_case "ports raise" `Quick test_ht_node_of_flat_port_raises;
        Alcotest.test_case "is_ancestor" `Quick test_is_ancestor;
        Alcotest.test_case "area conservation (fig1)" `Quick test_area_conservation_fig1 ] );
    ( "hier.decluster",
      [ Alcotest.test_case "fig1 top cut" `Quick test_decluster_fig1_top;
        Alcotest.test_case "macros end in HCB" `Quick test_decluster_macro_nodes_in_hcb;
        Alcotest.test_case "area covered" `Quick test_decluster_area_covered;
        Alcotest.test_case "leaf node" `Quick test_decluster_leaf_node;
        Alcotest.test_case "open_frac depth" `Quick test_decluster_open_frac_effect;
        decluster_always_valid_cut ] ) ]
