(* Tests for Gseq construction: combinational elision, array clustering,
   edge inference and threshold bridging (paper §IV-D steps 1-4). *)

module D = Netlist.Design
module Flat = Netlist.Flat

let bits prefix w = List.init w (fun i -> Printf.sprintf "%s_%d" prefix i)

(* reg array a (w bits) -> comb stage -> reg array b (w bits), all in one
   module; plus a 1-bit loner register fed from a_0. *)
let two_arrays w =
  let cells =
    List.concat
      (List.init w (fun i ->
           [ D.cell ~name:(Printf.sprintf "a_%d" i) ~kind:D.Flop
               ~ins:[ Printf.sprintf "in_%d" i ] ~outs:[ Printf.sprintf "aq_%d" i ] ();
             D.cell ~name:(Printf.sprintf "mix_%d" i) ~kind:D.Comb
               ~ins:[ Printf.sprintf "aq_%d" i ] ~outs:[ Printf.sprintf "m_%d" i ] ();
             D.cell ~name:(Printf.sprintf "b_%d" i) ~kind:D.Flop
               ~ins:[ Printf.sprintf "m_%d" i ] ~outs:[ Printf.sprintf "bq_%d" i ] () ]))
    @ [ D.cell ~name:"loner" ~kind:D.Flop ~ins:[ "aq_0" ] ~outs:[ "lq" ] () ]
  in
  let ports = List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "in" w) in
  D.design ~top:"t" ~modules:[ D.module_def ~name:"t" ~ports ~cells () ]

let find_node (g : Seqgraph.t) name =
  match Array.to_list g.Seqgraph.nodes |> List.find_opt (fun n -> n.Seqgraph.name = name) with
  | Some n -> n
  | None -> Alcotest.failf "Gseq node %s not found" name

let test_array_clustering () =
  let g = Seqgraph.build (Flat.elaborate (two_arrays 8)) in
  let a = find_node g "a" and b = find_node g "b" in
  Alcotest.(check int) "a is 8 bits" 8 a.Seqgraph.bits;
  Alcotest.(check int) "b is 8 bits" 8 b.Seqgraph.bits;
  let loner = find_node g "loner" in
  Alcotest.(check int) "loner 1 bit" 1 loner.Seqgraph.bits

let test_port_clustering () =
  let g = Seqgraph.build (Flat.elaborate (two_arrays 8)) in
  let p = find_node g "in" in
  Alcotest.(check bool) "port node" true (Seqgraph.is_port_node p);
  Alcotest.(check int) "port width 8" 8 p.Seqgraph.bits

let test_comb_elision_edge () =
  let g = Seqgraph.build (Flat.elaborate (two_arrays 8)) in
  let a = find_node g "a" and b = find_node g "b" in
  match Seqgraph.find_edge g ~src:a.Seqgraph.id ~dst:b.Seqgraph.id with
  | None -> Alcotest.fail "expected a -> b edge through comb"
  | Some e ->
    Alcotest.(check int) "full width" 8 e.Seqgraph.width;
    Alcotest.(check int) "latency 1" 1 e.Seqgraph.latency

let test_partial_width_edge () =
  let g = Seqgraph.build (Flat.elaborate (two_arrays 8)) in
  let a = find_node g "a" and loner = find_node g "loner" in
  match Seqgraph.find_edge g ~src:a.Seqgraph.id ~dst:loner.Seqgraph.id with
  | None -> Alcotest.fail "expected a -> loner edge"
  | Some e -> Alcotest.(check int) "single-bit slice" 1 e.Seqgraph.width

let test_no_self_edges () =
  let g = Seqgraph.build (Flat.elaborate (two_arrays 4)) in
  Array.iter
    (fun (e : Seqgraph.edge) ->
      Alcotest.(check bool) "no self edge" false (e.Seqgraph.src = e.Seqgraph.dst))
    g.Seqgraph.edges

let test_of_flat_mapping () =
  let flat = Flat.elaborate (two_arrays 4) in
  let g = Seqgraph.build flat in
  Array.iter
    (fun (n : Flat.node) ->
      let gid = g.Seqgraph.of_flat.(n.Flat.id) in
      match n.Flat.kind with
      | Flat.Kcomb -> Alcotest.(check int) "comb unmapped" (-1) gid
      | Flat.Kflop | Flat.Kmacro _ | Flat.Kport _ ->
        Alcotest.(check bool) "sequential mapped" true (gid >= 0))
    flat.Flat.nodes

(* macro between register stages: regs(8) -> macro -> regs(8) *)
let macro_between w =
  let cells =
    (D.cell ~name:"mem" ~kind:(D.make_macro ~w:20.0 ~h:10.0) ~ins:(bits "aq" w)
       ~outs:(bits "mq" w) ())
    :: List.concat
         (List.init w (fun i ->
              [ D.cell ~name:(Printf.sprintf "a_%d" i) ~kind:D.Flop
                  ~ins:[ Printf.sprintf "in_%d" i ] ~outs:[ Printf.sprintf "aq_%d" i ] ();
                D.cell ~name:(Printf.sprintf "b_%d" i) ~kind:D.Flop
                  ~ins:[ Printf.sprintf "mq_%d" i ] ~outs:[ Printf.sprintf "bq_%d" i ] () ]))
  in
  let ports = List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "in" w) in
  D.design ~top:"t" ~modules:[ D.module_def ~name:"t" ~ports ~cells () ]

let test_macro_bits_from_connectivity () =
  let g = Seqgraph.build (Flat.elaborate (macro_between 8)) in
  let m = find_node g "mem" in
  Alcotest.(check bool) "macro node" true (Seqgraph.is_macro_node m);
  Alcotest.(check int) "macro width from connections" 8 m.Seqgraph.bits;
  Alcotest.(check int) "macro listed" 1 (List.length (Seqgraph.macro_nodes g))

let test_macro_edges () =
  let g = Seqgraph.build (Flat.elaborate (macro_between 8)) in
  let a = find_node g "a" and m = find_node g "mem" and b = find_node g "b" in
  Alcotest.(check bool) "a -> mem" true
    (Seqgraph.find_edge g ~src:a.Seqgraph.id ~dst:m.Seqgraph.id <> None);
  Alcotest.(check bool) "mem -> b" true
    (Seqgraph.find_edge g ~src:m.Seqgraph.id ~dst:b.Seqgraph.id <> None);
  (* the macro is a sequential endpoint: no a -> b shortcut *)
  Alcotest.(check bool) "no a -> b shortcut" true
    (Seqgraph.find_edge g ~src:a.Seqgraph.id ~dst:b.Seqgraph.id = None)

(* wide -> narrow -> wide register chain for threshold bridging *)
let narrow_between () =
  let w = 8 in
  let cells =
    List.concat
      (List.init w (fun i ->
           [ D.cell ~name:(Printf.sprintf "a_%d" i) ~kind:D.Flop
               ~ins:[ Printf.sprintf "in_%d" i ] ~outs:[ Printf.sprintf "aq_%d" i ] () ]))
    @ [ D.cell ~name:"nar" ~kind:D.Flop ~ins:[ "aq_0" ] ~outs:[ "nq" ] () ]
    @ List.init w (fun i ->
          D.cell ~name:(Printf.sprintf "b_%d" i) ~kind:D.Flop ~ins:[ "nq" ]
            ~outs:[ Printf.sprintf "bq_%d" i ] ())
  in
  let ports = List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "in" w) in
  D.design ~top:"t" ~modules:[ D.module_def ~name:"t" ~ports ~cells () ]

let test_threshold_bridging () =
  let flat = Flat.elaborate (narrow_between ()) in
  (* without threshold: a -> nar -> b, latencies 1 *)
  let g1 = Seqgraph.build ~bit_threshold:1 flat in
  Alcotest.(check bool) "nar kept at threshold 1" true
    (Array.exists (fun n -> n.Seqgraph.name = "nar") g1.Seqgraph.nodes);
  (* with threshold 2 the 1-bit register is discarded and bridged *)
  let g2 = Seqgraph.build ~bit_threshold:2 flat in
  Alcotest.(check bool) "nar discarded" false
    (Array.exists (fun n -> n.Seqgraph.name = "nar") g2.Seqgraph.nodes);
  let a = find_node g2 "a" and b = find_node g2 "b" in
  (match Seqgraph.find_edge g2 ~src:a.Seqgraph.id ~dst:b.Seqgraph.id with
  | None -> Alcotest.fail "expected bridged a -> b edge"
  | Some e ->
    Alcotest.(check int) "bridged latency adds up" 2 e.Seqgraph.latency;
    Alcotest.(check int) "bridged width is the bottleneck" 1 e.Seqgraph.width)

let test_threshold_keeps_macros_and_ports () =
  let flat = Flat.elaborate (macro_between 1) in
  (* threshold larger than anything: 1-bit registers vanish but macro and
     ports survive *)
  let g = Seqgraph.build ~bit_threshold:100 flat in
  Alcotest.(check int) "macro survives" 1 (List.length (Seqgraph.macro_nodes g));
  Alcotest.(check bool) "ports survive" true
    (Array.exists Seqgraph.is_port_node g.Seqgraph.nodes)

let test_counts_on_generated () =
  let flat = Flat.elaborate (Circuitgen.Suite.fig1_design ()) in
  let g = Seqgraph.build flat in
  Alcotest.(check int) "all 16 macros present" 16 (List.length (Seqgraph.macro_nodes g));
  Alcotest.(check bool) "has register arrays" true
    (Array.exists
       (fun n -> match n.Seqgraph.kind with Seqgraph.Register (_ :: _ :: _) -> true | _ -> false)
       g.Seqgraph.nodes);
  (* every edge endpoint is a valid node id *)
  Array.iter
    (fun (e : Seqgraph.edge) ->
      Alcotest.(check bool) "src valid" true (e.Seqgraph.src >= 0 && e.Seqgraph.src < Seqgraph.node_count g);
      Alcotest.(check bool) "dst valid" true (e.Seqgraph.dst >= 0 && e.Seqgraph.dst < Seqgraph.node_count g))
    g.Seqgraph.edges

let test_edge_adjacency_consistency () =
  let g = Seqgraph.build (Flat.elaborate (Circuitgen.Suite.fig2_system ())) in
  for v = 0 to Seqgraph.node_count g - 1 do
    List.iter
      (fun (e : Seqgraph.edge) -> Alcotest.(check int) "out edge src" v e.Seqgraph.src)
      (Seqgraph.succ_edges g v);
    List.iter
      (fun (e : Seqgraph.edge) -> Alcotest.(check int) "in edge dst" v e.Seqgraph.dst)
      (Seqgraph.pred_edges g v)
  done

let suite =
  [ ( "seqgraph",
      [ Alcotest.test_case "array clustering" `Quick test_array_clustering;
        Alcotest.test_case "port clustering" `Quick test_port_clustering;
        Alcotest.test_case "comb elision edge" `Quick test_comb_elision_edge;
        Alcotest.test_case "partial width edge" `Quick test_partial_width_edge;
        Alcotest.test_case "no self edges" `Quick test_no_self_edges;
        Alcotest.test_case "of_flat mapping" `Quick test_of_flat_mapping;
        Alcotest.test_case "macro bits" `Quick test_macro_bits_from_connectivity;
        Alcotest.test_case "macro edges" `Quick test_macro_edges;
        Alcotest.test_case "threshold bridging" `Quick test_threshold_bridging;
        Alcotest.test_case "threshold keeps macros/ports" `Quick
          test_threshold_keeps_macros_and_ports;
        Alcotest.test_case "generated design counts" `Quick test_counts_on_generated;
        Alcotest.test_case "adjacency consistency" `Quick test_edge_adjacency_consistency ] ) ]
