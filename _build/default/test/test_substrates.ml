(* Tests for the evaluation substrates: cell placement, congestion and
   static timing. *)

module Flat = Netlist.Flat
module Rect = Geom.Rect
module Point = Geom.Point

let check_float = Alcotest.(check (float 1e-6))

let fig1_flat = lazy (Flat.elaborate (Circuitgen.Suite.fig1_design ()))

let setup =
  lazy
    (let flat = Lazy.force fig1_flat in
     let gseq = Seqgraph.build flat in
     let config = Hidap.Config.default in
     let die = Hidap.die_for flat ~config in
     let ports = Hidap.Port_plan.make gseq ~die in
     let r = Hidap.place ~config ~die flat in
     let macros =
       List.map
         (fun (p : Hidap.macro_placement) ->
           { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect; orient = p.Hidap.orient })
         r.Hidap.placements
     in
     (flat, gseq, die, ports, macros))

let run_cellplace () =
  let flat, _, die, ports, macros = Lazy.force setup in
  ( flat, die, macros,
    Cellplace.run ~flat ~macros
      ~port_pos:(fun fid -> Hidap.Port_plan.flat_pos ports fid)
      ~die () )

(* ---- cellplace ----------------------------------------------------- *)

let test_cellplace_positions_in_die () =
  let flat, die, _, cp = run_cellplace () in
  Array.iter
    (fun (n : Flat.node) ->
      let p = cp.Cellplace.positions.(n.Flat.id) in
      Alcotest.(check bool) "inside die" true
        (p.Point.x >= die.Rect.x -. 1e-6
        && p.Point.x <= die.Rect.x +. die.Rect.w +. 1e-6
        && p.Point.y >= die.Rect.y -. 1e-6
        && p.Point.y <= die.Rect.y +. die.Rect.h +. 1e-6))
    flat.Flat.nodes

let test_cellplace_anchors () =
  let flat, _, macros, cp = run_cellplace () in
  (* macros stay at their placed centres *)
  List.iter
    (fun (m : Cellplace.macro_place) ->
      Alcotest.(check bool) "macro anchored" true
        (Point.equal cp.Cellplace.positions.(m.Cellplace.fid) (Rect.center m.Cellplace.rect)))
    macros;
  (* movable flags *)
  Array.iter
    (fun (n : Flat.node) ->
      let movable = cp.Cellplace.movable.(n.Flat.id) in
      match n.Flat.kind with
      | Flat.Kmacro _ | Flat.Kport _ -> Alcotest.(check bool) "fixed" false movable
      | Flat.Kflop | Flat.Kcomb -> Alcotest.(check bool) "movable" true movable)
    flat.Flat.nodes

let test_cellplace_locality () =
  (* a flop feeding a macro should land near that macro, not across the
     die *)
  let flat, die, macros, cp = run_cellplace () in
  let macro_rect = Hashtbl.create 16 in
  List.iter (fun (m : Cellplace.macro_place) -> Hashtbl.replace macro_rect m.Cellplace.fid m.Cellplace.rect) macros;
  let checked = ref 0 in
  Array.iter
    (fun (n : Flat.node) ->
      if Flat.is_flop n && !checked < 50 then
        Graphlib.Digraph.succ_iter flat.Flat.gnet n.Flat.id (fun v ->
            match Hashtbl.find_opt macro_rect v with
            | Some r ->
              incr checked;
              let d = Point.manhattan cp.Cellplace.positions.(n.Flat.id) (Rect.center r) in
              Alcotest.(check bool) "flop near its macro" true
                (d < 0.6 *. (die.Rect.w +. die.Rect.h))
            | None -> ()))
    flat.Flat.nodes;
  Alcotest.(check bool) "some pairs checked" true (!checked > 0)

let test_cellplace_deterministic () =
  let _, _, _, cp1 = run_cellplace () in
  let _, _, _, cp2 = run_cellplace () in
  Alcotest.(check bool) "identical positions" true
    (cp1.Cellplace.positions = cp2.Cellplace.positions)

let test_density_map () =
  let flat, _, macros, cp = run_cellplace () in
  let grid = Cellplace.density_map cp ~flat ~macros ~bins:16 in
  Alcotest.(check int) "grid x" 16 (Array.length grid);
  Alcotest.(check int) "grid y" 16 (Array.length grid.(0));
  let total = Array.fold_left (fun a col -> Array.fold_left ( +. ) a col) 0.0 grid in
  Alcotest.(check bool) "density mass positive" true (total > 0.0);
  Array.iter
    (Array.iter (fun d -> Alcotest.(check bool) "non-negative" true (d >= 0.0)))
    grid

let test_macro_pin_position () =
  let flat, _, macros, _ = Lazy.force setup |> fun (f, _, _, _, m) ->
    (f, (), m, ())
  in
  let m = List.hd macros in
  (match Cellplace.macro_pin_position ~flat ~macros m.Cellplace.fid ~dir:`In with
  | Some p ->
    Alcotest.(check bool) "pin on macro boundary" true
      (Rect.contains_point m.Cellplace.rect p)
  | None -> Alcotest.fail "macro pin missing");
  Alcotest.(check bool) "unknown macro" true
    (Cellplace.macro_pin_position ~flat ~macros (-1) ~dir:`In = None)

(* ---- congestion ----------------------------------------------------- *)

let test_congestion_uniform_design () =
  (* a single long net in a big die: tiny overflow *)
  let d =
    Netlist.Design.design ~top:"t"
      ~modules:
        [ Netlist.Design.module_def ~name:"t"
            ~cells:
              [ Netlist.Design.cell ~name:"a" ~kind:Netlist.Design.Comb ~ins:[] ~outs:[ "n" ] ();
                Netlist.Design.cell ~name:"b" ~kind:Netlist.Design.Comb ~ins:[ "n" ] ~outs:[] () ]
            () ]
  in
  let flat = Flat.elaborate d in
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:100.0 ~h:100.0 in
  let positions = Array.make 2 (Point.make 10.0 10.0) in
  positions.(1) <- Point.make 90.0 90.0;
  let r = Congestion.estimate ~flat ~positions ~die () in
  Alcotest.(check (float 1e-9)) "single net does not overflow" 0.0
    r.Congestion.overflow_pct

let test_congestion_hotspot () =
  (* many medium nets stacked in one corner must overflow *)
  let n = 400 in
  let cells =
    List.concat
      (List.init n (fun i ->
           [ Netlist.Design.cell ~name:(Printf.sprintf "a%d" i) ~kind:Netlist.Design.Comb
               ~ins:[] ~outs:[ Printf.sprintf "n%d" i ] ();
             Netlist.Design.cell ~name:(Printf.sprintf "b%d" i) ~kind:Netlist.Design.Comb
               ~ins:[ Printf.sprintf "n%d" i ] ~outs:[] () ]))
  in
  let d =
    Netlist.Design.design ~top:"t"
      ~modules:[ Netlist.Design.module_def ~name:"t" ~cells () ]
  in
  let flat = Flat.elaborate d in
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:100.0 ~h:100.0 in
  let positions =
    Array.init (2 * n) (fun i -> if i mod 2 = 0 then Point.make 1.0 1.0 else Point.make 9.0 9.0)
  in
  let r = Congestion.estimate ~flat ~positions ~die () in
  Alcotest.(check bool) "hotspot overflows" true (r.Congestion.overflow_pct > 0.0);
  Alcotest.(check bool) "few bins overflow" true (r.Congestion.overflowed_bins_pct < 20.0)

let test_congestion_macro_blockage () =
  let flat, die, macros, cp = run_cellplace () in
  let rects = List.map (fun (m : Cellplace.macro_place) -> m.Cellplace.rect) macros in
  let without =
    Congestion.estimate ~flat ~positions:cp.Cellplace.positions ~die ()
  in
  let with_blockage =
    Congestion.estimate ~flat ~positions:cp.Cellplace.positions ~die ~macros:rects ()
  in
  Alcotest.(check bool) "blockage can only hurt" true
    (with_blockage.Congestion.overflow_pct >= without.Congestion.overflow_pct -. 1e-9)

(* ---- sta ------------------------------------------------------------ *)

let test_sta_no_edges () =
  let d =
    Netlist.Design.design ~top:"t"
      ~modules:[ Netlist.Design.module_def ~name:"t" () ]
  in
  let gseq = Seqgraph.build (Flat.elaborate d) in
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 in
  let r = Sta.analyze ~gseq ~node_pos:(fun _ -> Point.origin) ~die () in
  check_float "wns 0" 0.0 r.Sta.wns_pct;
  check_float "tns 0" 0.0 r.Sta.tns;
  Alcotest.(check int) "no failing endpoints" 0 r.Sta.failing_endpoints

let sta_chain_design () =
  (* two registers a -> b (8 bits) *)
  let w = 8 in
  let cells =
    List.concat
      (List.init w (fun i ->
           [ Netlist.Design.cell ~name:(Printf.sprintf "a_%d" i) ~kind:Netlist.Design.Flop
               ~ins:[] ~outs:[ Printf.sprintf "n_%d" i ] ();
             Netlist.Design.cell ~name:(Printf.sprintf "b_%d" i) ~kind:Netlist.Design.Flop
               ~ins:[ Printf.sprintf "n_%d" i ] ~outs:[] () ]))
  in
  Seqgraph.build
    (Flat.elaborate
       (Netlist.Design.design ~top:"t"
          ~modules:[ Netlist.Design.module_def ~name:"t" ~cells () ]))

let test_sta_distance_slack () =
  let gseq = sta_chain_design () in
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:1000.0 ~h:1000.0 in
  let far gid = if gid = 0 then Point.make 0.0 0.0 else Point.make 1000.0 1000.0 in
  let near _ = Point.make 0.0 0.0 in
  let r_far = Sta.analyze ~gseq ~node_pos:far ~die () in
  let r_near = Sta.analyze ~gseq ~node_pos:near ~die () in
  check_float "same clock either way" r_far.Sta.clock_period r_near.Sta.clock_period;
  Alcotest.(check bool) "near meets timing" true (r_near.Sta.wns_pct >= -1e-9);
  Alcotest.(check bool) "far violates" true (r_far.Sta.wns_pct < 0.0);
  Alcotest.(check bool) "tns <= wns" true (r_far.Sta.tns <= r_far.Sta.wns);
  Alcotest.(check bool) "worst edge reported" true (r_far.Sta.worst_edge <> None);
  Alcotest.(check int) "one failing endpoint" 1 r_far.Sta.failing_endpoints

let test_sta_latency_relaxes () =
  (* the same physical distance hurts less when pipelined over more
     cycles: build a bridged 2-cycle edge via the bit threshold *)
  let w = 8 in
  let cells =
    List.concat
      (List.init w (fun i ->
           [ Netlist.Design.cell ~name:(Printf.sprintf "a_%d" i) ~kind:Netlist.Design.Flop
               ~ins:[] ~outs:[ Printf.sprintf "n_%d" i ] ();
             Netlist.Design.cell ~name:(Printf.sprintf "b_%d" i) ~kind:Netlist.Design.Flop
               ~ins:[ "mq" ] ~outs:[] () ]))
    @ [ Netlist.Design.cell ~name:"mid" ~kind:Netlist.Design.Flop ~ins:[ "n_0" ]
          ~outs:[ "mq" ] () ]
  in
  let flat =
    Flat.elaborate
      (Netlist.Design.design ~top:"t"
         ~modules:[ Netlist.Design.module_def ~name:"t" ~cells () ])
  in
  let pipelined = Seqgraph.build ~bit_threshold:2 flat in
  (* a->b should now have latency 2 *)
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:1000.0 ~h:1000.0 in
  let far gid =
    let nd = pipelined.Seqgraph.nodes.(gid) in
    if nd.Seqgraph.name = "a" then Point.make 0.0 0.0 else Point.make 1000.0 1000.0
  in
  let r2 = Sta.analyze ~gseq:pipelined ~node_pos:far ~die () in
  let r1 = Sta.analyze ~gseq:(sta_chain_design ()) ~node_pos:far ~die () in
  Alcotest.(check bool) "two cycles relax the same distance" true
    (r2.Sta.wns > r1.Sta.wns)

let suite =
  [ ( "cellplace",
      [ Alcotest.test_case "positions in die" `Quick test_cellplace_positions_in_die;
        Alcotest.test_case "anchors" `Quick test_cellplace_anchors;
        Alcotest.test_case "locality" `Quick test_cellplace_locality;
        Alcotest.test_case "deterministic" `Quick test_cellplace_deterministic;
        Alcotest.test_case "density map" `Quick test_density_map;
        Alcotest.test_case "macro pin position" `Quick test_macro_pin_position ] );
    ( "congestion",
      [ Alcotest.test_case "single net" `Quick test_congestion_uniform_design;
        Alcotest.test_case "hotspot" `Quick test_congestion_hotspot;
        Alcotest.test_case "macro blockage" `Quick test_congestion_macro_blockage ] );
    ( "sta",
      [ Alcotest.test_case "no edges" `Quick test_sta_no_edges;
        Alcotest.test_case "distance slack" `Quick test_sta_distance_slack;
        Alcotest.test_case "latency relaxes" `Quick test_sta_latency_relaxes ] ) ]
