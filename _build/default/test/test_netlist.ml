(* Tests for the netlist data model, validation and elaboration. *)

module D = Netlist.Design
module Flat = Netlist.Flat
module G = Graphlib.Digraph

(* A small reference design used across the tests:

   top: input a, output z
     u0 : leafm (in -> a, out -> w)
     u1 : leafm (in -> w, out -> x)
     g  : comb (x -> z)

   leafm: input in, output out
     mem : macro 10x4 (in -> q)
     r_0 : flop (q -> p)
     c   : comb (p -> out)                                            *)
let leafm =
  D.module_def ~name:"leafm"
    ~ports:[ D.port ~name:"in" ~dir:D.Input; D.port ~name:"out" ~dir:D.Output ]
    ~cells:
      [ D.cell ~name:"mem" ~kind:(D.make_macro ~w:10.0 ~h:4.0) ~ins:[ "in" ] ~outs:[ "q" ] ();
        D.cell ~name:"r_0" ~kind:D.Flop ~ins:[ "q" ] ~outs:[ "p" ] ();
        D.cell ~name:"c" ~kind:D.Comb ~ins:[ "p" ] ~outs:[ "out" ] () ]
    ()

let top =
  D.module_def ~name:"top"
    ~ports:[ D.port ~name:"a" ~dir:D.Input; D.port ~name:"z" ~dir:D.Output ]
    ~cells:[ D.cell ~name:"g" ~kind:D.Comb ~ins:[ "x" ] ~outs:[ "z" ] () ]
    ~insts:
      [ D.inst ~name:"u0" ~module_:"leafm" ~bindings:[ ("in", "a"); ("out", "w") ];
        D.inst ~name:"u1" ~module_:"leafm" ~bindings:[ ("in", "w"); ("out", "x") ] ]
    ()

let ref_design = D.design ~top:"top" ~modules:[ top; leafm ]

(* ---- model -------------------------------------------------------- *)

let test_cell_defaults () =
  let m = D.cell ~name:"m" ~kind:(D.make_macro ~w:5.0 ~h:4.0) ~ins:[] ~outs:[] () in
  Alcotest.(check (float 1e-9)) "macro area defaults to footprint" 20.0 (D.cell_area m);
  let f = D.cell ~name:"f" ~kind:D.Flop ~ins:[] ~outs:[] () in
  Alcotest.(check (float 1e-9)) "flop default area" 1.0 (D.cell_area f);
  let c = D.cell ~name:"c" ~kind:D.Comb ~area:2.5 ~ins:[] ~outs:[] () in
  Alcotest.(check (float 1e-9)) "explicit area" 2.5 (D.cell_area c)

let test_kind_name () =
  Alcotest.(check string) "macro" "macro" (D.kind_name (D.make_macro ~w:1.0 ~h:1.0));
  Alcotest.(check string) "flop" "flop" (D.kind_name D.Flop);
  Alcotest.(check string) "comb" "comb" (D.kind_name D.Comb)

let test_find_module () =
  Alcotest.(check bool) "finds leafm" true (D.find_module ref_design "leafm" <> None);
  Alcotest.(check bool) "missing" true (D.find_module ref_design "nope" = None);
  Alcotest.(check int) "module count" 2 (D.module_count ref_design)

(* ---- validation --------------------------------------------------- *)

let expect_error design pred name =
  match D.validate design with
  | Ok () -> Alcotest.fail (name ^ ": expected validation error")
  | Error e -> Alcotest.(check bool) name true (pred e)

let test_validate_ok () =
  match D.validate ref_design with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unexpected error: %a" D.pp_error e

let test_validate_missing_top () =
  let d = D.design ~top:"ghost" ~modules:[ leafm ] in
  expect_error d (function D.Missing_module "ghost" -> true | _ -> false) "missing top"

let test_validate_missing_child () =
  let bad =
    D.module_def ~name:"bad"
      ~insts:[ D.inst ~name:"u" ~module_:"ghost" ~bindings:[] ]
      ()
  in
  let d = D.design ~top:"bad" ~modules:[ bad ] in
  expect_error d (function D.Missing_module "ghost" -> true | _ -> false) "missing child"

let test_validate_duplicate_module () =
  let d = D.design ~top:"leafm" ~modules:[ leafm; leafm ] in
  expect_error d
    (function D.Duplicate_module "leafm" -> true | _ -> false)
    "duplicate module"

let test_validate_unknown_port () =
  let bad =
    D.module_def ~name:"bad"
      ~insts:[ D.inst ~name:"u" ~module_:"leafm" ~bindings:[ ("nope", "n") ] ]
      ()
  in
  let d = D.design ~top:"bad" ~modules:[ bad; leafm ] in
  expect_error d (function D.Unknown_port _ -> true | _ -> false) "unknown port"

let test_validate_duplicate_cell () =
  let bad =
    D.module_def ~name:"bad"
      ~cells:
        [ D.cell ~name:"x" ~kind:D.Comb ~ins:[] ~outs:[] ();
          D.cell ~name:"x" ~kind:D.Flop ~ins:[] ~outs:[] () ]
      ()
  in
  let d = D.design ~top:"bad" ~modules:[ bad ] in
  expect_error d (function D.Duplicate_cell _ -> true | _ -> false) "duplicate cell"

let test_validate_recursion () =
  let a =
    D.module_def ~name:"a" ~insts:[ D.inst ~name:"u" ~module_:"b" ~bindings:[] ] ()
  in
  let b =
    D.module_def ~name:"b" ~insts:[ D.inst ~name:"v" ~module_:"a" ~bindings:[] ] ()
  in
  let d = D.design ~top:"a" ~modules:[ a; b ] in
  expect_error d (function D.Recursive_instantiation _ -> true | _ -> false) "recursion"

(* ---- elaboration -------------------------------------------------- *)

let flat = lazy (Flat.elaborate ref_design)

let test_elab_counts () =
  let f = Lazy.force flat in
  (* 2 instances x 3 cells + 1 top comb + 2 ports *)
  Alcotest.(check int) "node count" 9 (Array.length f.Flat.nodes);
  Alcotest.(check int) "macro count" 2 (Flat.macro_count f);
  Alcotest.(check int) "cell count" 7 (Flat.cell_count f);
  Alcotest.(check int) "scopes: top + 2 instances" 3 (Array.length f.Flat.scopes);
  Alcotest.(check (float 1e-9)) "total area: 2*(40+1+1)+1" 85.0 (Flat.total_cell_area f)

let test_elab_paths () =
  let f = Lazy.force flat in
  let paths =
    Array.to_list f.Flat.nodes |> List.map (fun (n : Flat.node) -> n.Flat.path)
  in
  Alcotest.(check bool) "macro path" true (List.mem "u0/mem" paths);
  Alcotest.(check bool) "flop path" true (List.mem "u1/r_0" paths);
  Alcotest.(check bool) "top cell path" true (List.mem "g" paths);
  Alcotest.(check bool) "port path" true (List.mem "a" paths)

let node_by_path f path =
  match
    Array.to_list f.Flat.nodes |> List.find_opt (fun (n : Flat.node) -> n.Flat.path = path)
  with
  | Some n -> n
  | None -> Alcotest.failf "node %s not found" path

let test_elab_connectivity () =
  let f = Lazy.force flat in
  let id path = (node_by_path f path).Flat.id in
  (* port a drives u0/mem *)
  Alcotest.(check bool) "a -> u0/mem" true (List.mem (id "u0/mem") (G.succ f.Flat.gnet (id "a")));
  (* u0 chain: mem -> r_0 -> c *)
  Alcotest.(check (list int)) "mem -> r_0" [ id "u0/r_0" ] (G.succ f.Flat.gnet (id "u0/mem"));
  Alcotest.(check (list int)) "r_0 -> c" [ id "u0/c" ] (G.succ f.Flat.gnet (id "u0/r_0"));
  (* cross-instance net w: u0/c -> u1/mem *)
  Alcotest.(check (list int)) "u0/c -> u1/mem" [ id "u1/mem" ] (G.succ f.Flat.gnet (id "u0/c"));
  (* top: u1/c -> g -> z *)
  Alcotest.(check (list int)) "u1/c -> g" [ id "g" ] (G.succ f.Flat.gnet (id "u1/c"));
  Alcotest.(check (list int)) "g -> z" [ id "z" ] (G.succ f.Flat.gnet (id "g"))

let test_elab_scopes () =
  let f = Lazy.force flat in
  let m = node_by_path f "u0/mem" in
  let scope = Flat.scope_of_node f m.Flat.id in
  Alcotest.(check string) "scope path" "u0" scope.Flat.spath;
  Alcotest.(check string) "scope module" "leafm" scope.Flat.smodule;
  Alcotest.(check int) "scope parent is top" 0 scope.Flat.sparent;
  let topscope = f.Flat.scopes.(0) in
  Alcotest.(check int) "top has two children" 2 (List.length topscope.Flat.schildren)

let test_elab_same_module_distinct_scopes () =
  let f = Lazy.force flat in
  let a = node_by_path f "u0/mem" and b = node_by_path f "u1/mem" in
  Alcotest.(check bool) "distinct scopes" false (a.Flat.scope = b.Flat.scope);
  Alcotest.(check bool) "distinct ids" false (a.Flat.id = b.Flat.id)

let test_elab_kinds () =
  let f = Lazy.force flat in
  let n = node_by_path f "u0/mem" in
  Alcotest.(check bool) "is macro" true (Flat.is_macro n);
  Alcotest.(check bool) "macro not flop" false (Flat.is_flop n);
  let p = node_by_path f "a" in
  Alcotest.(check bool) "is port" true (Flat.is_port p);
  Alcotest.(check int) "ports listed" 2 (List.length (Flat.ports f));
  Alcotest.(check int) "macros listed" 2 (List.length (Flat.macros f))

let test_elab_invalid_raises () =
  let d = D.design ~top:"ghost" ~modules:[] in
  (match Flat.elaborate d with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_elab_net_pins () =
  let f = Lazy.force flat in
  (* every net has drivers+sinks consistent with gnet edge count *)
  let edges =
    Array.fold_left
      (fun acc (ds, ss) -> acc + (Array.length ds * Array.length ss))
      0 f.Flat.net_pins
  in
  Alcotest.(check int) "pin products = edges" (G.edge_count f.Flat.gnet) edges

let test_generated_designs_validate () =
  List.iter
    (fun (c : Circuitgen.Suite.circuit) ->
      match D.validate (Circuitgen.Gen.generate c.Circuitgen.Suite.params) with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %a" c.Circuitgen.Suite.cname D.pp_error e)
    (Circuitgen.Suite.c_suite () |> List.filteri (fun i _ -> i < 2))

let suite =
  [ ( "netlist.design",
      [ Alcotest.test_case "cell defaults" `Quick test_cell_defaults;
        Alcotest.test_case "kind names" `Quick test_kind_name;
        Alcotest.test_case "find module" `Quick test_find_module ] );
    ( "netlist.validate",
      [ Alcotest.test_case "ok design" `Quick test_validate_ok;
        Alcotest.test_case "missing top" `Quick test_validate_missing_top;
        Alcotest.test_case "missing child" `Quick test_validate_missing_child;
        Alcotest.test_case "duplicate module" `Quick test_validate_duplicate_module;
        Alcotest.test_case "unknown port" `Quick test_validate_unknown_port;
        Alcotest.test_case "duplicate cell" `Quick test_validate_duplicate_cell;
        Alcotest.test_case "recursion" `Quick test_validate_recursion ] );
    ( "netlist.flat",
      [ Alcotest.test_case "counts" `Quick test_elab_counts;
        Alcotest.test_case "paths" `Quick test_elab_paths;
        Alcotest.test_case "connectivity" `Quick test_elab_connectivity;
        Alcotest.test_case "scopes" `Quick test_elab_scopes;
        Alcotest.test_case "instances get distinct scopes" `Quick
          test_elab_same_module_distinct_scopes;
        Alcotest.test_case "kinds" `Quick test_elab_kinds;
        Alcotest.test_case "invalid design raises" `Quick test_elab_invalid_raises;
        Alcotest.test_case "net pins consistent" `Quick test_elab_net_pins;
        Alcotest.test_case "generated designs validate" `Slow
          test_generated_designs_validate ] ) ]
