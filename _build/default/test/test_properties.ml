(* Whole-flow property tests over randomized generated designs: for any
   circuit the generator can produce, the flow must stay total, legal and
   deterministic. Counts are kept small because each case runs real
   annealing. *)

module Flat = Netlist.Flat
module Rect = Geom.Rect

let qtest ~count name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* small random generator configurations *)
let params_arb =
  QCheck.(
    map
      (fun (seed, ss, ups, macros, bw) ->
        { Circuitgen.Gen.default with
          Circuitgen.Gen.seed;
          n_subsystems = ss;
          units_per_subsystem = ups;
          n_macros = macros;
          bus_width = bw;
          target_cells = 400 })
      (tup5 (int_range 1 1000) (int_range 1 3) (int_range 1 3) (int_range 1 12)
         (int_range 2 8)))

let fast_config =
  { Hidap.Config.default with
    Hidap.Config.layout_sa =
      { Anneal.Sa.quick_params with Anneal.Sa.max_moves = 1_500 };
    curve_sa = { Anneal.Sa.quick_params with Anneal.Sa.max_moves = 800 } }

let flow_total_and_legal =
  qtest ~count:12 "HiDaP is total, complete and in-bounds on random designs" params_arb
    (fun p ->
      let flat = Flat.elaborate (Circuitgen.Gen.generate p) in
      let r = Hidap.place ~config:fast_config flat in
      List.length r.Hidap.placements = p.Circuitgen.Gen.n_macros
      && Hidap.placement_bbox_ok r)

let flow_overlap_bounded =
  qtest ~count:12 "macro overlap stays negligible" params_arb (fun p ->
      let flat = Flat.elaborate (Circuitgen.Gen.generate p) in
      let r = Hidap.place ~config:fast_config flat in
      let macro_area =
        List.fold_left
          (fun acc (pl : Hidap.macro_placement) -> acc +. Rect.area pl.Hidap.rect)
          0.0 r.Hidap.placements
      in
      Hidap.overlap_area r <= 0.02 *. macro_area +. 1e-6)

let flow_deterministic =
  qtest ~count:6 "same seed, same placement" params_arb (fun p ->
      let flat = Flat.elaborate (Circuitgen.Gen.generate p) in
      let sig_of (r : Hidap.result) =
        List.map (fun (pl : Hidap.macro_placement) -> (pl.Hidap.fid, pl.Hidap.rect)) r.Hidap.placements
      in
      sig_of (Hidap.place ~config:fast_config flat)
      = sig_of (Hidap.place ~config:fast_config flat))

let hnl_roundtrip_random =
  qtest ~count:12 "HNL round-trips every generated design" params_arb (fun p ->
      let d = Circuitgen.Gen.generate p in
      match Hnl.Parser.parse_string (Hnl.Printer.to_string d) with
      | Ok d2 -> d = d2
      | Error _ -> false)

let gseq_conserves_macros =
  qtest ~count:12 "Gseq keeps every macro regardless of threshold"
    QCheck.(pair params_arb (int_range 1 64))
    (fun (p, threshold) ->
      let flat = Flat.elaborate (Circuitgen.Gen.generate p) in
      let g = Seqgraph.build ~bit_threshold:threshold flat in
      List.length (Seqgraph.macro_nodes g) = p.Circuitgen.Gen.n_macros)

let decluster_covers_cells =
  qtest ~count:12 "declustering accounts for every cell" params_arb (fun p ->
      let flat = Flat.elaborate (Circuitgen.Gen.generate p) in
      let tree = Hier.Tree.build flat in
      let root = Hier.Tree.root tree in
      let dc = Hier.Decluster.run tree ~nh:root ~open_frac:0.4 ~min_frac:0.01 in
      let covered =
        List.fold_left
          (fun acc id -> acc + List.length (Hier.Tree.cells_below tree id))
          0
          (dc.Hier.Decluster.hcb @ dc.Hier.Decluster.hcg)
      in
      covered = Flat.cell_count flat)

let suite =
  [ ( "properties.flow",
      [ flow_total_and_legal; flow_overlap_bounded; flow_deterministic;
        hnl_roundtrip_random; gseq_conserves_macros; decluster_covers_cells ] ) ]
