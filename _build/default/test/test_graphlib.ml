(* Tests for the graph substrate, including the multi-source BFS at the
   heart of target-area assignment. *)

module G = Graphlib.Digraph
module Tr = Graphlib.Traversal

let qtest ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* chain 0 -> 1 -> 2 -> ... -> n-1 *)
let chain n =
  let g = G.create n in
  for i = 0 to n - 2 do
    G.add_edge g i (i + 1)
  done;
  g

let test_digraph_basic () =
  let g = G.create 3 in
  G.add_edge g 0 1;
  G.add_edge g 0 2;
  G.add_edge g 1 2;
  Alcotest.(check int) "nodes" 3 (G.node_count g);
  Alcotest.(check int) "edges" 3 (G.edge_count g);
  Alcotest.(check (list int)) "succ 0" [ 1; 2 ] (G.succ g 0);
  Alcotest.(check (list int)) "pred 2" [ 0; 1 ] (G.pred g 2);
  Alcotest.(check int) "out degree" 2 (G.out_degree g 0);
  Alcotest.(check int) "in degree" 2 (G.in_degree g 2);
  Alcotest.(check (list int)) "no succ" [] (G.succ g 2)

let test_digraph_parallel_edges () =
  let g = G.create 2 in
  G.add_edge g 0 1;
  G.add_edge g 0 1;
  Alcotest.(check int) "parallel edges kept" 2 (G.edge_count g);
  Alcotest.(check (list int)) "succ twice" [ 1; 1 ] (G.succ g 0)

let test_transpose () =
  let g = chain 4 in
  let t = G.transpose g in
  Alcotest.(check int) "edge count preserved" (G.edge_count g) (G.edge_count t);
  Alcotest.(check (list int)) "reversed edge" [ 0 ] (G.succ t 1);
  Alcotest.(check (list int)) "reversed pred" [ 1 ] (G.pred t 0)

let test_map_nodes () =
  let g = chain 5 in
  let sub, old_of_new, new_of_old = G.map_nodes g ~keep:(fun v -> v <> 2) in
  Alcotest.(check int) "kept nodes" 4 (G.node_count sub);
  Alcotest.(check int) "dropped marker" (-1) new_of_old.(2);
  Alcotest.(check int) "edges through dropped vanish" 2 (G.edge_count sub);
  Alcotest.(check int) "old id recovered" 3 old_of_new.(new_of_old.(3))

let test_bfs_distances () =
  let g = chain 5 in
  let d = Tr.distances_from g ~sources:[ 0 ] in
  Alcotest.(check (array int)) "chain distances" [| 0; 1; 2; 3; 4 |] d;
  let d2 = Tr.distances_from g ~sources:[ 2 ] in
  Alcotest.(check int) "unreachable" (-1) d2.(0);
  Alcotest.(check int) "forward only" 2 d2.(4)

let test_bfs_multi_source () =
  let g = chain 5 in
  let d = Tr.distances_from g ~sources:[ 0; 3 ] in
  Alcotest.(check (array int)) "two sources" [| 0; 1; 2; 0; 1 |] d

let test_bfs_expand_gate () =
  let g = chain 4 in
  (* do not expand past node 1 *)
  let seen = ref [] in
  Tr.bfs_layers g ~sources:[ 0 ] ~direction:`Fwd
    ~visit:(fun ~node ~dist:_ ~parent:_ -> seen := node :: !seen)
    ~expand:(fun v -> v <> 1)
    ();
  Alcotest.(check (list int)) "stopped at gate" [ 0; 1 ] (List.rev !seen)

let test_bfs_backward () =
  let g = chain 4 in
  let seen = ref [] in
  Tr.bfs_layers g ~sources:[ 3 ] ~direction:`Bwd
    ~visit:(fun ~node ~dist ~parent:_ -> seen := (node, dist) :: !seen)
    ();
  Alcotest.(check (list (pair int int))) "backward layers"
    [ (3, 0); (2, 1); (1, 2); (0, 3) ]
    (List.rev !seen)

let test_multi_source_nearest () =
  (* path 0 - 1 - 2 - 3 - 4 (directed edges forward, but the nearest
     search is undirected) with sources at 0 (label 7) and 4 (label 9) *)
  let g = chain 5 in
  let label = Tr.multi_source_nearest g ~sources:[ (0, 7); (4, 9) ] in
  Alcotest.(check int) "source keeps label" 7 label.(0);
  Alcotest.(check int) "near left" 7 label.(1);
  Alcotest.(check int) "near right" 9 label.(3);
  Alcotest.(check int) "other source" 9 label.(4)

let test_multi_source_nearest_undirected () =
  (* edges point away from node 2; both ends must still be labelled *)
  let g = G.create 3 in
  G.add_edge g 2 0;
  G.add_edge g 2 1;
  let label = Tr.multi_source_nearest g ~sources:[ (0, 1) ] in
  Alcotest.(check int) "reaches against edge direction" 1 label.(2);
  Alcotest.(check int) "reaches across" 1 label.(1)

let test_topological () =
  let g = G.create 4 in
  G.add_edge g 0 1;
  G.add_edge g 0 2;
  G.add_edge g 1 3;
  G.add_edge g 2 3;
  (match Tr.topological_order g with
  | None -> Alcotest.fail "expected topological order"
  | Some order ->
    let posn = Array.make 4 0 in
    Array.iteri (fun i v -> posn.(v) <- i) order;
    Alcotest.(check bool) "0 before 1" true (posn.(0) < posn.(1));
    Alcotest.(check bool) "1 before 3" true (posn.(1) < posn.(3));
    Alcotest.(check bool) "2 before 3" true (posn.(2) < posn.(3)));
  let cyc = G.create 2 in
  G.add_edge cyc 0 1;
  G.add_edge cyc 1 0;
  Alcotest.(check bool) "cycle detected" true (Tr.topological_order cyc = None)

let test_reachable () =
  let g = chain 4 in
  let r = Tr.reachable_set g ~sources:[ 1 ] in
  Alcotest.(check (array bool)) "reachable" [| false; true; true; true |] r

let test_components () =
  let g = G.create 5 in
  G.add_edge g 0 1;
  G.add_edge g 3 4;
  let label, n = Tr.weakly_connected_components g in
  Alcotest.(check int) "three components" 3 n;
  Alcotest.(check bool) "0 and 1 together" true (label.(0) = label.(1));
  Alcotest.(check bool) "0 and 2 apart" false (label.(0) = label.(2))

(* random DAG: edges only from smaller to bigger ids *)
let dag_arb =
  QCheck.(
    map
      (fun pairs ->
        List.filter_map
          (fun (a, b) ->
            let a = a mod 20 and b = b mod 20 in
            if a < b then Some (a, b) else if b < a then Some (b, a) else None)
          pairs)
      (list (pair (int_range 0 19) (int_range 0 19))))

let topo_respects_edges =
  qtest "topological order respects every DAG edge" dag_arb (fun edges ->
      let g = G.create 20 in
      List.iter (fun (a, b) -> G.add_edge g a b) edges;
      match Tr.topological_order g with
      | None -> false
      | Some order ->
        let posn = Array.make 20 0 in
        Array.iteri (fun i v -> posn.(v) <- i) order;
        List.for_all (fun (a, b) -> posn.(a) < posn.(b)) edges)

let bfs_dist_shortest =
  qtest "bfs distance <= any edge relaxation" dag_arb (fun edges ->
      let g = G.create 20 in
      List.iter (fun (a, b) -> G.add_edge g a b) edges;
      let d = Tr.distances_from g ~sources:[ 0 ] in
      List.for_all
        (fun (a, b) -> d.(a) < 0 || (d.(b) >= 0 && d.(b) <= d.(a) + 1))
        edges)

let suite =
  [ ( "graphlib.digraph",
      [ Alcotest.test_case "basic" `Quick test_digraph_basic;
        Alcotest.test_case "parallel edges" `Quick test_digraph_parallel_edges;
        Alcotest.test_case "transpose" `Quick test_transpose;
        Alcotest.test_case "map_nodes" `Quick test_map_nodes ] );
    ( "graphlib.traversal",
      [ Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
        Alcotest.test_case "multi-source distances" `Quick test_bfs_multi_source;
        Alcotest.test_case "expand gate" `Quick test_bfs_expand_gate;
        Alcotest.test_case "backward" `Quick test_bfs_backward;
        Alcotest.test_case "multi-source nearest" `Quick test_multi_source_nearest;
        Alcotest.test_case "nearest is undirected" `Quick test_multi_source_nearest_undirected;
        Alcotest.test_case "topological" `Quick test_topological;
        Alcotest.test_case "reachable" `Quick test_reachable;
        Alcotest.test_case "components" `Quick test_components;
        topo_respects_edges; bfs_dist_shortest ] ) ]
