(* Tests for dataflow inference: block flow, macro flow, latency
   histograms and the affinity matrix (paper §IV-D). *)

module D = Netlist.Design
module Flat = Netlist.Flat
module Gdf = Dataflow.Gdf
module H = Util.Histogram

let bits prefix w = List.init w (fun i -> Printf.sprintf "%s_%d" prefix i)

(* Two macro blocks A and B, connected A -> glue regs (2 stages) -> B.
   Same topology as the paper's Fig 7 example. *)
let dual_block_design ~width ~glue_stages =
  let blockm name =
    let cells =
      D.cell ~name:"mem" ~kind:(D.make_macro ~w:20.0 ~h:10.0) ~ins:(bits "in" width)
        ~outs:(bits "q" width) ()
      :: List.init width (fun i ->
             D.cell ~name:(Printf.sprintf "ro_%d" i) ~kind:D.Flop
               ~ins:[ Printf.sprintf "q_%d" i ]
               ~outs:[ Printf.sprintf "out_%d" i ] ())
    in
    let ports =
      List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "in" width)
      @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "out" width)
    in
    D.module_def ~name ~ports ~cells ()
  in
  let stage k src =
    List.init width (fun i ->
        D.cell ~name:(Printf.sprintf "g%d_%d" k i) ~kind:D.Flop
          ~ins:[ Printf.sprintf "%s_%d" src i ]
          ~outs:[ Printf.sprintf "g%dq_%d" k i ] ())
  in
  let glue =
    List.concat
      (List.init glue_stages (fun k ->
           stage k (if k = 0 then "aout" else Printf.sprintf "g%dq" (k - 1))))
  in
  let last = if glue_stages = 0 then "aout" else Printf.sprintf "g%dq" (glue_stages - 1) in
  let top =
    D.module_def ~name:"top"
      ~ports:
        (List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "pin" width)
        @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "pout" width))
      ~cells:glue
      ~insts:
        [ D.inst ~name:"ba" ~module_:"blk"
            ~bindings:
              (List.map2 (fun f a -> (f, a)) (bits "in" width) (bits "pin" width)
              @ List.map2 (fun f a -> (f, a)) (bits "out" width) (bits "aout" width));
          D.inst ~name:"bb" ~module_:"blk"
            ~bindings:
              (List.map2 (fun f a -> (f, a)) (bits "in" width) (bits last width)
              @ List.map2 (fun f a -> (f, a)) (bits "out" width) (bits "pout" width)) ]
      ()
  in
  D.design ~top:"top" ~modules:[ top; blockm "blk" ]

let build_gdf ~width ~glue_stages =
  let flat = Flat.elaborate (dual_block_design ~width ~glue_stages) in
  let gseq = Seqgraph.build flat in
  let scope_block = Hashtbl.create 4 in
  Array.iter
    (fun (s : Flat.scope) ->
      if s.Flat.spath = "ba" then Hashtbl.replace scope_block s.Flat.sid 0;
      if s.Flat.spath = "bb" then Hashtbl.replace scope_block s.Flat.sid 1)
    flat.Flat.scopes;
  let block_of_node gid =
    let nd = gseq.Seqgraph.nodes.(gid) in
    if Seqgraph.is_port_node nd then -1
    else
      match Hashtbl.find_opt scope_block nd.Seqgraph.scope with
      | Some b -> b
      | None -> -1
  in
  let fixed =
    Array.of_list
      (List.filter_map
         (fun (nd : Seqgraph.node) ->
           if Seqgraph.is_port_node nd then Some nd.Seqgraph.id else None)
         (Array.to_list gseq.Seqgraph.nodes))
  in
  (gseq, Gdf.build gseq ~n_blocks:2 ~block_of_node ~fixed)

let test_block_flow_latency () =
  let _, gdf = build_gdf ~width:8 ~glue_stages:2 in
  let h = Gdf.block_flow gdf 0 1 in
  (* A's output reg -> g0 -> g1 -> B's macro: 3 sequential hops *)
  Alcotest.(check (float 1e-9)) "8 bits at latency 3" 8.0 (H.get h 3);
  Alcotest.(check (float 1e-9)) "nothing at latency 1" 0.0 (H.get h 1)

let test_macro_flow_latency () =
  let _, gdf = build_gdf ~width:8 ~glue_stages:2 in
  let h = Gdf.macro_flow gdf 0 1 in
  (* macro A -> ro -> g0 -> g1 -> macro B: 4 hops *)
  Alcotest.(check (float 1e-9)) "8 bits at latency 4" 8.0 (H.get h 4)

let test_flow_direction () =
  let _, gdf = build_gdf ~width:8 ~glue_stages:2 in
  Alcotest.(check bool) "no reverse block flow" true (H.is_empty (Gdf.block_flow gdf 1 0));
  Alcotest.(check bool) "no reverse macro flow" true (H.is_empty (Gdf.macro_flow gdf 1 0))

let test_latency_grows_with_glue () =
  let _, g1 = build_gdf ~width:4 ~glue_stages:1 in
  let _, g3 = build_gdf ~width:4 ~glue_stages:3 in
  Alcotest.(check int) "short path" 2 (H.max_bin (Gdf.block_flow g1 0 1));
  Alcotest.(check int) "longer path" 4 (H.max_bin (Gdf.block_flow g3 0 1))

let test_affinity_matrix_properties () =
  let _, gdf = build_gdf ~width:8 ~glue_stages:2 in
  let m = Gdf.affinity_matrix gdf ~lambda:0.5 ~k:2 () in
  let n = Gdf.endpoint_count gdf in
  Alcotest.(check int) "matrix size" n (Array.length m);
  for i = 0 to n - 1 do
    Alcotest.(check (float 1e-12)) "zero diagonal" 0.0 m.(i).(i);
    for j = 0 to n - 1 do
      Alcotest.(check (float 1e-12)) "symmetric" m.(i).(j) m.(j).(i);
      Alcotest.(check bool) "normalized range" true (m.(i).(j) >= 0.0 && m.(i).(j) <= 1.0)
    done
  done

let test_affinity_lambda_extremes () =
  let _, gdf = build_gdf ~width:8 ~glue_stages:2 in
  let mb = Gdf.affinity_matrix gdf ~lambda:1.0 ~k:1 ~normalize:false () in
  let mm = Gdf.affinity_matrix gdf ~lambda:0.0 ~k:1 ~normalize:false () in
  (* block flow: 8 bits / 3; macro flow: 8 bits / 4 *)
  Alcotest.(check (float 1e-9)) "block-only score" (8.0 /. 3.0) mb.(0).(1);
  Alcotest.(check (float 1e-9)) "macro-only score" (8.0 /. 4.0) mm.(0).(1)

let test_affinity_k_decay () =
  let _, gdf = build_gdf ~width:8 ~glue_stages:2 in
  let at k = (Gdf.affinity_matrix gdf ~lambda:0.5 ~k ~normalize:false ()).(0).(1) in
  Alcotest.(check bool) "higher k lowers multi-cycle affinity" true (at 0 > at 1 && at 1 > at 2)

let test_block_port_flow () =
  let _, gdf = build_gdf ~width:8 ~glue_stages:1 in
  (* endpoint 2.. are ports; A reads pin (input port array) *)
  let n = Gdf.endpoint_count gdf in
  let found = ref false in
  for j = 2 to n - 1 do
    if not (H.is_empty (Gdf.block_flow gdf j 0)) then found := true
  done;
  Alcotest.(check bool) "some port flows into block A" true !found

let test_edge_count () =
  let _, gdf = build_gdf ~width:8 ~glue_stages:2 in
  Alcotest.(check bool) "some Gdf edges" true (Gdf.edge_count gdf > 0);
  Alcotest.(check int) "two blocks" 2 (Gdf.n_blocks gdf)

let test_no_block_through_block () =
  (* block flow must not traverse another block: chain A -> B -> C with
     direct register hops means A..C block flow only via B's components,
     which are not glue, so A->C block flow is empty *)
  let width = 4 in
  let blockm name =
    D.module_def ~name
      ~ports:
        (List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "in" width)
        @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "out" width))
      ~cells:
        (List.init width (fun i ->
             D.cell ~name:(Printf.sprintf "r_%d" i) ~kind:D.Flop
               ~ins:[ Printf.sprintf "in_%d" i ]
               ~outs:[ Printf.sprintf "out_%d" i ] ()))
      ()
  in
  let inst name inn out =
    D.inst ~name ~module_:"blk"
      ~bindings:
        (List.map2 (fun f a -> (f, a)) (bits "in" width) (bits inn width)
        @ List.map2 (fun f a -> (f, a)) (bits "out" width) (bits out width))
  in
  let top =
    D.module_def ~name:"top"
      ~ports:(List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "x" width))
      ~insts:[ inst "ba" "x" "ab"; inst "bb" "ab" "bc"; inst "bc_i" "bc" "cd" ]
      ()
  in
  let d = D.design ~top:"top" ~modules:[ top; blockm "blk" ] in
  let flat = Flat.elaborate d in
  let gseq = Seqgraph.build flat in
  let scope_block = Hashtbl.create 4 in
  Array.iter
    (fun (s : Flat.scope) ->
      List.iteri
        (fun i p -> if s.Flat.spath = p then Hashtbl.replace scope_block s.Flat.sid i)
        [ "ba"; "bb"; "bc_i" ])
    flat.Flat.scopes;
  let block_of_node gid =
    let nd = gseq.Seqgraph.nodes.(gid) in
    if Seqgraph.is_port_node nd then -1
    else
      match Hashtbl.find_opt scope_block nd.Seqgraph.scope with
      | Some b -> b
      | None -> -1
  in
  let gdf = Gdf.build gseq ~n_blocks:3 ~block_of_node ~fixed:[||] in
  Alcotest.(check bool) "A -> B direct" false (H.is_empty (Gdf.block_flow gdf 0 1));
  Alcotest.(check bool) "A -> C blocked by B" true (H.is_empty (Gdf.block_flow gdf 0 2))

let suite =
  [ ( "dataflow.gdf",
      [ Alcotest.test_case "block flow latency" `Quick test_block_flow_latency;
        Alcotest.test_case "macro flow latency" `Quick test_macro_flow_latency;
        Alcotest.test_case "flow direction" `Quick test_flow_direction;
        Alcotest.test_case "latency grows with glue" `Quick test_latency_grows_with_glue;
        Alcotest.test_case "affinity matrix properties" `Quick
          test_affinity_matrix_properties;
        Alcotest.test_case "lambda extremes" `Quick test_affinity_lambda_extremes;
        Alcotest.test_case "k decay" `Quick test_affinity_k_decay;
        Alcotest.test_case "port flow" `Quick test_block_port_flow;
        Alcotest.test_case "edge count" `Quick test_edge_count;
        Alcotest.test_case "blocks are opaque to block flow" `Quick
          test_no_block_through_block ] ) ]
