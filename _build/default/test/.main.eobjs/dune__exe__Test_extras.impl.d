test/test_extras.ml: Alcotest Array Astring Circuitgen Filename Format Geom Hidap Hier Lazy List Netlist Printf Seqgraph String Sys Viz
