test/main.mli:
