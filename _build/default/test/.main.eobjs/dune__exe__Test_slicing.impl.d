test/test_slicing.ml: Alcotest Array Geom List Printf QCheck QCheck_alcotest Shape Slicing Util
