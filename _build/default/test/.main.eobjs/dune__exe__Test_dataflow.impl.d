test/test_dataflow.ml: Alcotest Array Dataflow Hashtbl List Netlist Printf Seqgraph Util
