test/test_integration.ml: Alcotest Array Baselines Cellplace Circuitgen Evalflow Float Geom Hidap Lazy List Netlist Seqgraph
