test/test_anneal.ml: Alcotest Anneal QCheck QCheck_alcotest Util
