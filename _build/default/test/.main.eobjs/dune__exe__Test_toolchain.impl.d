test/test_toolchain.ml: Alcotest Array Astring Baselines Circuitgen Geom Hidap Lazy List Netlist Printf QCheck QCheck_alcotest Report Seqgraph String Util Viz
