test/test_core.ml: Alcotest Array Circuitgen Geom Hashtbl Hidap Hier Lazy List Netlist Printf Seqgraph Shape Util
