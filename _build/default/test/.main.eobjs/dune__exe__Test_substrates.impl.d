test/test_substrates.ml: Alcotest Array Cellplace Circuitgen Congestion Geom Graphlib Hashtbl Hidap Lazy List Netlist Printf Seqgraph Sta
