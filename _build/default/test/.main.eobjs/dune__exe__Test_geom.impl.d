test/test_geom.ml: Alcotest Array Gen Geom List Option QCheck QCheck_alcotest
