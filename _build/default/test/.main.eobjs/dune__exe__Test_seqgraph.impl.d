test/test_seqgraph.ml: Alcotest Array Circuitgen List Netlist Printf Seqgraph
