test/test_hier.ml: Alcotest Array Circuitgen Hier Lazy List Netlist QCheck QCheck_alcotest
