test/test_graphlib.ml: Alcotest Array Graphlib List QCheck QCheck_alcotest
