test/test_netlist.ml: Alcotest Array Circuitgen Graphlib Lazy List Netlist
