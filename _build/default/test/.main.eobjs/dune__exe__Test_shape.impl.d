test/test_shape.ml: Alcotest Gen List QCheck QCheck_alcotest Shape
