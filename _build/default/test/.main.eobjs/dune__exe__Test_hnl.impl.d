test/test_hnl.ml: Alcotest Array Circuitgen Filename Graphlib Hnl List Netlist Option Sys
