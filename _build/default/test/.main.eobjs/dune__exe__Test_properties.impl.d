test/test_properties.ml: Anneal Circuitgen Geom Hidap Hier Hnl List Netlist QCheck QCheck_alcotest Seqgraph
