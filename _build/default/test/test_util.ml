(* Unit and property tests for the util substrate. *)

let check_float = Alcotest.(check (float 1e-9))

let qtest ?(count = 200) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ---- Rng ---------------------------------------------------------- *)

let test_rng_determinism () =
  let a = Util.Rng.create 42 and b = Util.Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Rng.bits64 a) (Util.Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Util.Rng.create 1 and b = Util.Rng.create 2 in
  Alcotest.(check bool) "different output" false (Util.Rng.bits64 a = Util.Rng.bits64 b)

let test_rng_split_independent () =
  let a = Util.Rng.create 7 in
  let c = Util.Rng.split a in
  Alcotest.(check bool) "split stream differs" false
    (Util.Rng.bits64 a = Util.Rng.bits64 c)

let test_rng_copy () =
  let a = Util.Rng.create 3 in
  ignore (Util.Rng.bits64 a);
  let b = Util.Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Util.Rng.bits64 a) (Util.Rng.bits64 b)

let rng_int_bounds =
  qtest "Rng.int in bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let rng = Util.Rng.create seed in
      let v = Util.Rng.int rng n in
      v >= 0 && v < n)

let rng_range_bounds =
  qtest "Rng.range inclusive bounds"
    QCheck.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Util.Rng.create seed in
      let v = Util.Rng.range rng lo (lo + span) in
      v >= lo && v <= lo + span)

let rng_float_bounds =
  qtest "Rng.float in [0,x)"
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, x) ->
      let rng = Util.Rng.create seed in
      let v = Util.Rng.float rng x in
      v >= 0.0 && v < x)

let rng_shuffle_permutation =
  qtest "shuffle is a permutation"
    QCheck.(pair small_int (list int))
    (fun (seed, l) ->
      let rng = Util.Rng.create seed in
      let a = Array.of_list l in
      Util.Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_rng_gaussian_moments () =
  let rng = Util.Rng.create 11 in
  let n = 20_000 in
  let sum = ref 0.0 and sq = ref 0.0 in
  for _ = 1 to n do
    let v = Util.Rng.gaussian rng ~mean:5.0 ~stddev:2.0 in
    sum := !sum +. v;
    sq := !sq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 5" true (abs_float (mean -. 5.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (abs_float (sqrt var -. 2.0) < 0.1)

(* ---- Histogram ---------------------------------------------------- *)

let test_histogram_basic () =
  let h = Util.Histogram.create () in
  Alcotest.(check bool) "empty" true (Util.Histogram.is_empty h);
  Util.Histogram.add h ~bin:2 ~weight:8.0;
  Util.Histogram.add h ~bin:2 ~weight:4.0;
  Util.Histogram.add h ~bin:5 ~weight:1.0;
  check_float "bin 2 accumulates" 12.0 (Util.Histogram.get h 2);
  check_float "bin 5" 1.0 (Util.Histogram.get h 5);
  check_float "untouched bin" 0.0 (Util.Histogram.get h 3);
  check_float "total" 13.0 (Util.Histogram.total h);
  Alcotest.(check int) "max bin" 5 (Util.Histogram.max_bin h);
  Alcotest.(check (list (pair int (float 1e-9)))) "bins sorted"
    [ (2, 12.0); (5, 1.0) ] (Util.Histogram.bins h)

let test_histogram_merge () =
  let a = Util.Histogram.create () and b = Util.Histogram.create () in
  Util.Histogram.add a ~bin:1 ~weight:3.0;
  Util.Histogram.add b ~bin:1 ~weight:2.0;
  Util.Histogram.add b ~bin:4 ~weight:7.0;
  let m = Util.Histogram.merge a b in
  check_float "merged bin" 5.0 (Util.Histogram.get m 1);
  check_float "b-only bin" 7.0 (Util.Histogram.get m 4);
  check_float "a unchanged" 3.0 (Util.Histogram.get a 1)

let test_histogram_score () =
  let h = Util.Histogram.create () in
  Util.Histogram.add h ~bin:1 ~weight:8.0;
  Util.Histogram.add h ~bin:2 ~weight:8.0;
  check_float "k=0 is total" 16.0 (Util.Histogram.score h ~k:0);
  check_float "k=1 decays" (8.0 +. 4.0) (Util.Histogram.score h ~k:1);
  check_float "k=2 decays quadratically" (8.0 +. 2.0) (Util.Histogram.score h ~k:2)

let test_histogram_score_bin0 () =
  (* bin 0 (combinational paths) counts as latency 1 *)
  let h = Util.Histogram.create () in
  Util.Histogram.add h ~bin:0 ~weight:4.0;
  check_float "bin 0 like latency 1" 4.0 (Util.Histogram.score h ~k:2)

let histogram_score_monotone_k =
  qtest "score non-increasing in k"
    QCheck.(list_of_size (Gen.int_range 1 10) (pair (int_range 1 8) (float_range 0.0 100.0)))
    (fun entries ->
      let h = Util.Histogram.create () in
      List.iter (fun (bin, weight) -> Util.Histogram.add h ~bin ~weight) entries;
      Util.Histogram.score h ~k:0 >= Util.Histogram.score h ~k:1
      && Util.Histogram.score h ~k:1 >= Util.Histogram.score h ~k:2)

(* ---- Stat --------------------------------------------------------- *)

let test_geometric_mean () =
  check_float "geo mean of [2;8]" 4.0 (Util.Stat.geometric_mean [ 2.0; 8.0 ]);
  check_float "geo mean of identical" 3.0 (Util.Stat.geometric_mean [ 3.0; 3.0; 3.0 ])

let test_geometric_mean_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "geometric_mean: empty list") (fun () ->
      ignore (Util.Stat.geometric_mean []));
  Alcotest.check_raises "non-positive"
    (Invalid_argument "geometric_mean: non-positive element") (fun () ->
      ignore (Util.Stat.geometric_mean [ 1.0; 0.0 ]))

let test_mean_median () =
  check_float "mean" 2.0 (Util.Stat.mean [ 1.0; 2.0; 3.0 ]);
  check_float "median odd" 2.0 (Util.Stat.median [ 3.0; 1.0; 2.0 ]);
  check_float "median even" 2.5 (Util.Stat.median [ 1.0; 2.0; 3.0; 4.0 ])

let test_stddev () =
  check_float "stddev singleton" 0.0 (Util.Stat.stddev [ 5.0 ]);
  check_float "stddev of [0;2]" 1.0 (Util.Stat.stddev [ 0.0; 2.0 ])

let test_clamp () =
  check_float "below" 1.0 (Util.Stat.clamp ~lo:1.0 ~hi:2.0 0.5);
  check_float "above" 2.0 (Util.Stat.clamp ~lo:1.0 ~hi:2.0 3.0);
  check_float "inside" 1.5 (Util.Stat.clamp ~lo:1.0 ~hi:2.0 1.5);
  Alcotest.(check int) "int clamp" 4 (Util.Stat.clamp_int ~lo:0 ~hi:4 9)

let geo_between_min_max =
  qtest "geo mean between min and max"
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0.1 100.0))
    (fun l ->
      let g = Util.Stat.geometric_mean l in
      g >= Util.Stat.minimum l -. 1e-9 && g <= Util.Stat.maximum l +. 1e-9)

let test_round_to () =
  check_float "round" 1.23 (Util.Stat.round_to ~digits:2 1.2345)

(* ---- Disjoint_set ------------------------------------------------- *)

let test_ds_basic () =
  let ds = Util.Disjoint_set.create 5 in
  Alcotest.(check bool) "initially apart" false (Util.Disjoint_set.same ds 0 1);
  Util.Disjoint_set.union ds 0 1;
  Util.Disjoint_set.union ds 1 2;
  Alcotest.(check bool) "transitive" true (Util.Disjoint_set.same ds 0 2);
  Alcotest.(check int) "size" 3 (Util.Disjoint_set.size ds 1);
  Alcotest.(check int) "singleton size" 1 (Util.Disjoint_set.size ds 4)

let test_ds_groups () =
  let ds = Util.Disjoint_set.create 4 in
  Util.Disjoint_set.union ds 0 3;
  let groups = Util.Disjoint_set.groups ds in
  let sizes = Array.to_list groups |> List.map List.length |> List.sort compare in
  Alcotest.(check (list int)) "group sizes" [ 1; 1; 2 ] sizes;
  let all = Array.to_list groups |> List.concat |> List.sort compare in
  Alcotest.(check (list int)) "covers all" [ 0; 1; 2; 3 ] all

let ds_union_idempotent =
  qtest "repeated unions keep sizes consistent"
    QCheck.(list_of_size (Gen.int_range 0 30) (pair (int_range 0 9) (int_range 0 9)))
    (fun pairs ->
      let ds = Util.Disjoint_set.create 10 in
      List.iter (fun (a, b) -> Util.Disjoint_set.union ds a b) pairs;
      let total =
        Array.fold_left (fun acc g -> acc + List.length g) 0 (Util.Disjoint_set.groups ds)
      in
      total = 10)

(* ---- Heap --------------------------------------------------------- *)

let test_heap_basic () =
  let h = Util.Heap.create () in
  Alcotest.(check bool) "empty" true (Util.Heap.is_empty h);
  Util.Heap.push h ~key:3.0 "c";
  Util.Heap.push h ~key:1.0 "a";
  Util.Heap.push h ~key:2.0 "b";
  Alcotest.(check int) "length" 3 (Util.Heap.length h);
  (match Util.Heap.peek_min h with
  | Some (k, v) ->
    Alcotest.(check (float 0.0)) "peek key" 1.0 k;
    Alcotest.(check string) "peek value" "a" v
  | None -> Alcotest.fail "expected peek");
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a"))
    (Util.Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b"))
    (Util.Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop c" (Some (3.0, "c"))
    (Util.Heap.pop_min h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop empty" None (Util.Heap.pop_min h)

let heap_sorts =
  qtest "pops come out sorted"
    QCheck.(list (float_range (-1000.0) 1000.0))
    (fun keys ->
      let h = Util.Heap.create () in
      List.iteri (fun i k -> Util.Heap.push h ~key:k i) keys;
      let rec drain acc =
        match Util.Heap.pop_min h with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let out = drain [] in
      out = List.sort compare keys)

(* ---- Names -------------------------------------------------------- *)

let test_array_base () =
  Alcotest.(check (option (pair string int))) "bracket form" (Some ("data", 3))
    (Util.Names.array_base "data[3]");
  Alcotest.(check (option (pair string int))) "underscore form" (Some ("data", 17))
    (Util.Names.array_base "data_17");
  Alcotest.(check (option (pair string int))) "nested underscore" (Some ("stage0_1", 5))
    (Util.Names.array_base "stage0_1_5");
  Alcotest.(check (option (pair string int))) "no index" None (Util.Names.array_base "clk");
  Alcotest.(check (option (pair string int))) "empty" None (Util.Names.array_base "");
  Alcotest.(check (option (pair string int))) "bad bracket" None (Util.Names.array_base "x[a]");
  Alcotest.(check (option (pair string int))) "underscore only" None (Util.Names.array_base "_3")

let test_join_split () =
  Alcotest.(check string) "join" "a/b" (Util.Names.join "a" "b");
  Alcotest.(check string) "join empty prefix" "b" (Util.Names.join "" "b");
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c" ] (Util.Names.split_path "a/b/c")

let test_is_prefix () =
  Alcotest.(check bool) "prefix" true (Util.Names.is_prefix ~prefix:"a/b" "a/b/c");
  Alcotest.(check bool) "not prefix" false (Util.Names.is_prefix ~prefix:"a/c" "a/b/c")

let suite =
  [ ( "util.rng",
      [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "different seeds" `Quick test_rng_different_seeds;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "copy" `Quick test_rng_copy;
        Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
        rng_int_bounds; rng_range_bounds; rng_float_bounds; rng_shuffle_permutation ] );
    ( "util.histogram",
      [ Alcotest.test_case "basic" `Quick test_histogram_basic;
        Alcotest.test_case "merge" `Quick test_histogram_merge;
        Alcotest.test_case "score" `Quick test_histogram_score;
        Alcotest.test_case "score bin 0" `Quick test_histogram_score_bin0;
        histogram_score_monotone_k ] );
    ( "util.stat",
      [ Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
        Alcotest.test_case "geometric mean errors" `Quick test_geometric_mean_errors;
        Alcotest.test_case "mean/median" `Quick test_mean_median;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "clamp" `Quick test_clamp;
        Alcotest.test_case "round_to" `Quick test_round_to;
        geo_between_min_max ] );
    ( "util.disjoint_set",
      [ Alcotest.test_case "basic" `Quick test_ds_basic;
        Alcotest.test_case "groups" `Quick test_ds_groups;
        ds_union_idempotent ] );
    ( "util.heap",
      [ Alcotest.test_case "basic" `Quick test_heap_basic; heap_sorts ] );
    ( "util.names",
      [ Alcotest.test_case "array_base" `Quick test_array_base;
        Alcotest.test_case "join/split" `Quick test_join_split;
        Alcotest.test_case "is_prefix" `Quick test_is_prefix ] ) ]
