(* Tests for the circuit generator, the baselines, the report tables and
   the visualization back-ends. *)

module D = Netlist.Design
module Flat = Netlist.Flat
module Rect = Geom.Rect

let qtest ?(count = 20) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

(* ---- circuitgen ----------------------------------------------------- *)

let test_gen_macro_count_exact () =
  List.iter
    (fun n_macros ->
      let p = Circuitgen.Gen.scale_macros Circuitgen.Gen.default ~n_macros in
      let flat = Flat.elaborate (Circuitgen.Gen.generate p) in
      Alcotest.(check int)
        (Printf.sprintf "exactly %d macros" n_macros)
        n_macros (Flat.macro_count flat))
    [ 1; 7; 16; 33 ]

let test_gen_deterministic () =
  let p = Circuitgen.Gen.default in
  Alcotest.(check bool) "same params, same design" true
    (Circuitgen.Gen.generate p = Circuitgen.Gen.generate p);
  let p2 = { p with Circuitgen.Gen.seed = p.Circuitgen.Gen.seed + 1 } in
  Alcotest.(check bool) "seed changes macro jitter" false
    (Circuitgen.Gen.generate p = Circuitgen.Gen.generate p2)

let test_gen_cell_budget () =
  let p = { Circuitgen.Gen.default with Circuitgen.Gen.target_cells = 5_000 } in
  let flat = Flat.elaborate (Circuitgen.Gen.generate p) in
  let cells = Flat.cell_count flat in
  Alcotest.(check bool) "within 30% of the budget" true
    (abs (cells - 5_000) < 1_500)

let test_gen_hierarchy_shape () =
  let p = { Circuitgen.Gen.default with Circuitgen.Gen.n_subsystems = 3 } in
  let flat = Flat.elaborate (Circuitgen.Gen.generate p) in
  let top = flat.Flat.scopes.(0) in
  (* subsystems + glue sidecars + connectors *)
  Alcotest.(check bool) "top has children" true (List.length top.Flat.schildren >= 3);
  Alcotest.(check bool) "three levels deep" true
    (Array.exists
       (fun (s : Flat.scope) ->
         s.Flat.sparent >= 0 && flat.Flat.scopes.(s.Flat.sparent).Flat.sparent >= 0)
       flat.Flat.scopes)

let gen_always_validates =
  qtest "random generator params yield valid designs"
    QCheck.(quad (int_range 1 4) (int_range 1 4) (int_range 0 40) (int_range 1 16))
    (fun (ss, ups, macros, bw) ->
      let p =
        { Circuitgen.Gen.default with
          Circuitgen.Gen.n_subsystems = ss;
          units_per_subsystem = ups;
          n_macros = macros;
          bus_width = bw;
          target_cells = 500 }
      in
      match D.validate (Circuitgen.Gen.generate p) with Ok () -> true | Error _ -> false)

let test_suite_matches_paper () =
  let suite = Circuitgen.Suite.c_suite () in
  Alcotest.(check int) "eight circuits" 8 (List.length suite);
  List.iter
    (fun (c : Circuitgen.Suite.circuit) ->
      match Report.Paper_data.find c.Circuitgen.Suite.cname with
      | None -> Alcotest.failf "%s missing from paper data" c.Circuitgen.Suite.cname
      | Some row ->
        Alcotest.(check int) "macro count matches Table III"
          row.Report.Paper_data.macros c.Circuitgen.Suite.paper_macros;
        Alcotest.(check int) "generated macros match"
          c.Circuitgen.Suite.paper_macros
          (Circuitgen.Gen.macro_count c.Circuitgen.Suite.params);
        Alcotest.(check int) "cells scaled 1:100"
          (c.Circuitgen.Suite.paper_cells / 100)
          c.Circuitgen.Suite.params.Circuitgen.Gen.target_cells)
    suite

let test_fig2_structure () =
  let flat = Flat.elaborate (Circuitgen.Suite.fig2_system ()) in
  Alcotest.(check int) "four macros (A-D)" 4 (Flat.macro_count flat);
  (* X is cells-only: find its scope *)
  let x =
    Array.to_list flat.Flat.scopes
    |> List.find (fun (s : Flat.scope) -> s.Flat.spath = "blk_x")
  in
  List.iter
    (fun cid ->
      Alcotest.(check bool) "X has no macros" false (Flat.is_macro flat.Flat.nodes.(cid)))
    x.Flat.scells

(* ---- baselines ------------------------------------------------------ *)

let baseline_setup =
  lazy
    (let flat = Flat.elaborate (Circuitgen.Suite.fig1_design ()) in
     let gseq = Seqgraph.build flat in
     let die = Hidap.die_for flat ~config:Hidap.Config.default in
     let ports = Hidap.Port_plan.make gseq ~die in
     (flat, gseq, die, ports))

let test_legalize () =
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:100.0 ~h:100.0 in
  let overlapping =
    [| Rect.make ~x:10.0 ~y:10.0 ~w:20.0 ~h:20.0;
       Rect.make ~x:15.0 ~y:12.0 ~w:20.0 ~h:20.0;
       Rect.make ~x:12.0 ~y:18.0 ~w:20.0 ~h:20.0 |]
  in
  Alcotest.(check bool) "initially overlapping" true
    (Baselines.Legalize.total_overlap overlapping > 0.0);
  let fixed = Baselines.Legalize.separate ~die overlapping in
  Alcotest.(check bool) "separated" true (Baselines.Legalize.total_overlap fixed < 1e-3);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "inside die" true (Rect.contains_rect ~outer:die ~inner:r))
    fixed

let test_legalize_clamps_outside () =
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:50.0 ~h:50.0 in
  let out = [| Rect.make ~x:(-10.0) ~y:60.0 ~w:20.0 ~h:20.0 |] in
  let fixed = Baselines.Legalize.separate ~die out in
  Alcotest.(check bool) "clamped into die" true
    (Rect.contains_rect ~outer:die ~inner:fixed.(0))

let test_indeda_placement () =
  let flat, gseq, die, _ = Lazy.force baseline_setup in
  let pl = Baselines.Indeda.place ~flat ~gseq ~die () in
  Alcotest.(check int) "all macros" 16 (List.length pl);
  let rects = Array.of_list (List.map (fun (p : Baselines.Indeda.placement) -> p.Baselines.Indeda.rect) pl) in
  Alcotest.(check bool) "legal" true (Baselines.Legalize.total_overlap rects < 1e-3);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "inside die" true (Rect.contains_rect ~outer:die ~inner:r))
    rects;
  (* wall packing: most macros touch the first ring near the boundary *)
  let near_wall (r : Rect.t) =
    let margin = 0.22 *. min die.Rect.w die.Rect.h in
    r.Rect.x < die.Rect.x +. margin
    || r.Rect.y < die.Rect.y +. margin
    || r.Rect.x +. r.Rect.w > die.Rect.x +. die.Rect.w -. margin
    || r.Rect.y +. r.Rect.h > die.Rect.y +. die.Rect.h -. margin
  in
  let on_wall = Array.to_list rects |> List.filter near_wall |> List.length in
  Alcotest.(check bool) "mostly on the walls" true (on_wall >= 12)

let test_indeda_orderings_differ () =
  let flat, gseq, die, _ = Lazy.force baseline_setup in
  let area = Baselines.Indeda.place ~flat ~gseq ~die ~ordering:Baselines.Indeda.By_area () in
  let conn =
    Baselines.Indeda.place ~flat ~gseq ~die ~ordering:Baselines.Indeda.By_connectivity ()
  in
  let sig_of pl =
    List.map (fun (p : Baselines.Indeda.placement) -> (p.Baselines.Indeda.fid, p.Baselines.Indeda.rect)) pl
    |> List.sort compare
  in
  Alcotest.(check bool) "different placements" false (sig_of area = sig_of conn)

let test_connectivity_order_covers () =
  let _, gseq, _, _ = Lazy.force baseline_setup in
  let macro_gids =
    Array.to_list gseq.Seqgraph.nodes
    |> List.filter_map (fun (n : Seqgraph.node) ->
           if Seqgraph.is_macro_node n then Some n.Seqgraph.id else None)
  in
  let order = Baselines.Indeda.connectivity_order gseq macro_gids in
  Alcotest.(check (list int)) "permutation of the macros"
    (List.sort compare macro_gids) (List.sort compare order)

let test_handfp_placement () =
  let flat, gseq, die, ports = Lazy.force baseline_setup in
  let pl = Baselines.Handfp.place ~flat ~gseq ~ports ~die () in
  Alcotest.(check int) "all macros" 16 (List.length pl);
  let rects = Array.of_list (List.map (fun (p : Baselines.Handfp.placement) -> p.Baselines.Handfp.rect) pl) in
  Alcotest.(check bool) "legal after separation" true
    (Baselines.Legalize.total_overlap rects < 1e-3);
  Array.iter
    (fun r ->
      Alcotest.(check bool) "inside die" true (Rect.contains_rect ~outer:die ~inner:r))
    rects

let test_handfp_deterministic () =
  let flat, gseq, die, ports = Lazy.force baseline_setup in
  let p1 = Baselines.Handfp.place ~flat ~gseq ~ports ~die () in
  let p2 = Baselines.Handfp.place ~flat ~gseq ~ports ~die () in
  Alcotest.(check bool) "identical runs" true (p1 = p2)

(* ---- report --------------------------------------------------------- *)

let test_table_render () =
  let t =
    Report.Table.render ~header:[ "name"; "value" ]
      [ [ "a"; "1" ]; [ "long-name"; "22" ] ]
  in
  let lines = String.split_on_char '\n' t |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + rule + 2 rows" 4 (List.length lines);
  (* all lines same width *)
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_paper_data_consistency () =
  List.iter
    (fun (row : Report.Paper_data.circuit_rows) ->
      Alcotest.(check (float 1e-9)) "handFP normalized to 1" 1.0
        row.Report.Paper_data.handfp.Report.Paper_data.wl_norm;
      (* published norm columns match the wirelength ratios *)
      let ratio =
        row.Report.Paper_data.indeda.Report.Paper_data.wl_m
        /. row.Report.Paper_data.handfp.Report.Paper_data.wl_m
      in
      Alcotest.(check bool) "IndEDA norm consistent with meters" true
        (abs_float (ratio -. row.Report.Paper_data.indeda.Report.Paper_data.wl_norm) < 0.01))
    Report.Paper_data.table3

let test_paper_table2 () =
  let wl_i, wl_h, wl_f = Report.Paper_data.table2_wl_norm in
  Alcotest.(check (float 1e-9)) "IndEDA avg" 1.143 wl_i;
  Alcotest.(check (float 1e-9)) "HiDaP avg" 1.013 wl_h;
  Alcotest.(check (float 1e-9)) "handFP avg" 1.000 wl_f

(* ---- viz ------------------------------------------------------------ *)

let test_ascii_floorplan () =
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 in
  let s =
    Viz.Ascii.floorplan ~die
      ~rects:[ ("A", Rect.make ~x:0.0 ~y:0.0 ~w:5.0 ~h:5.0) ]
      ~width:20 ~height:10 ()
  in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "height" 10 (List.length lines);
  List.iter (fun l -> Alcotest.(check int) "width" 20 (String.length l)) lines;
  (* the block is in the lower-left: last content row starts with 'A' *)
  let last = List.nth lines 8 in
  Alcotest.(check char) "block char bottom-left" 'A' last.[1];
  Alcotest.(check bool) "block absent top-right" true
    (String.for_all (fun c -> c <> 'A') (List.hd lines))

let test_ascii_overlap_marker () =
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 in
  let r = Rect.make ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 in
  let s = Viz.Ascii.floorplan ~die ~rects:[ ("A", r); ("B", r) ] ~width:8 ~height:4 () in
  Alcotest.(check bool) "overlap marked" true (String.contains s '#')

let test_ascii_density () =
  let grid = Array.make_matrix 4 4 0.0 in
  grid.(0).(0) <- 10.0;
  let s = Viz.Ascii.density grid ~width:8 ~height:4 () in
  Alcotest.(check bool) "hottest bin drawn" true (String.contains s '@')

let test_histogram_bar () =
  Alcotest.(check string) "half bar" "||||    " (Viz.Ascii.histogram_bar 1.0 ~max:2.0 ~width:8);
  Alcotest.(check string) "empty" "        " (Viz.Ascii.histogram_bar 0.0 ~max:2.0 ~width:8)

let test_svg_output () =
  let die = Rect.make ~x:0.0 ~y:0.0 ~w:10.0 ~h:10.0 in
  let svg =
    Viz.Svg.floorplan ~die
      ~rects:[ ("m", Rect.make ~x:1.0 ~y:1.0 ~w:2.0 ~h:2.0, Viz.Svg.macro_style) ]
      ()
  in
  Alcotest.(check bool) "svg header" true (Util.Names.is_prefix ~prefix:"<svg" svg);
  Alcotest.(check bool) "contains rect" true
    (Astring.String.is_infix ~affix:"<rect" svg);
  Alcotest.(check bool) "contains label" true
    (Astring.String.is_infix ~affix:">m</text>" svg);
  Alcotest.(check bool) "closed" true (Astring.String.is_suffix ~affix:"</svg>\n" svg)

let test_ppm_output () =
  let grid = Array.make_matrix 4 4 1.0 in
  let ppm = Viz.Ppm.of_density grid ~pixels_per_bin:2 () in
  Alcotest.(check bool) "P6 header" true (Util.Names.is_prefix ~prefix:"P6\n8 8\n255\n" ppm);
  (* header + 8*8*3 bytes *)
  Alcotest.(check int) "payload size" (String.length "P6\n8 8\n255\n" + 192)
    (String.length ppm)

let suite =
  [ ( "circuitgen",
      [ Alcotest.test_case "exact macro counts" `Quick test_gen_macro_count_exact;
        Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
        Alcotest.test_case "cell budget" `Quick test_gen_cell_budget;
        Alcotest.test_case "hierarchy shape" `Quick test_gen_hierarchy_shape;
        Alcotest.test_case "suite matches paper" `Quick test_suite_matches_paper;
        Alcotest.test_case "fig2 structure" `Quick test_fig2_structure;
        gen_always_validates ] );
    ( "baselines",
      [ Alcotest.test_case "legalize separates" `Quick test_legalize;
        Alcotest.test_case "legalize clamps" `Quick test_legalize_clamps_outside;
        Alcotest.test_case "indeda placement" `Quick test_indeda_placement;
        Alcotest.test_case "indeda orderings differ" `Quick test_indeda_orderings_differ;
        Alcotest.test_case "connectivity order" `Quick test_connectivity_order_covers;
        Alcotest.test_case "handfp placement" `Slow test_handfp_placement;
        Alcotest.test_case "handfp deterministic" `Slow test_handfp_deterministic ] );
    ( "report",
      [ Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "paper data consistent" `Quick test_paper_data_consistency;
        Alcotest.test_case "table 2 values" `Quick test_paper_table2 ] );
    ( "viz",
      [ Alcotest.test_case "ascii floorplan" `Quick test_ascii_floorplan;
        Alcotest.test_case "ascii overlap marker" `Quick test_ascii_overlap_marker;
        Alcotest.test_case "ascii density" `Quick test_ascii_density;
        Alcotest.test_case "histogram bar" `Quick test_histogram_bar;
        Alcotest.test_case "svg output" `Quick test_svg_output;
        Alcotest.test_case "ppm output" `Quick test_ppm_output ] ) ]
