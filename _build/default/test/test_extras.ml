(* Tests for the auxiliary tooling: design statistics, DOT export and
   placement persistence. *)

module Flat = Netlist.Flat
module Rect = Geom.Rect

let fig1_flat = lazy (Flat.elaborate (Circuitgen.Suite.fig1_design ()))

let contains ~affix s = Astring.String.is_infix ~affix s

(* ---- stats ---------------------------------------------------------- *)

let test_stats_counts () =
  let flat = Lazy.force fig1_flat in
  let s = Netlist.Stats.compute flat in
  Alcotest.(check int) "macros" 16 s.Netlist.Stats.macros;
  Alcotest.(check int) "nodes consistent" (Array.length flat.Flat.nodes)
    s.Netlist.Stats.nodes;
  Alcotest.(check int) "sum of kinds" s.Netlist.Stats.nodes
    (s.Netlist.Stats.macros + s.Netlist.Stats.flops + s.Netlist.Stats.combs
    + s.Netlist.Stats.ports);
  Alcotest.(check (float 1e-6)) "area consistent" (Flat.total_cell_area flat)
    s.Netlist.Stats.cell_area;
  Alcotest.(check bool) "macro-dominated" true (s.Netlist.Stats.macro_area_pct > 50.0);
  Alcotest.(check int) "two hierarchy levels" 2 s.Netlist.Stats.max_depth;
  Alcotest.(check bool) "acyclic comb" true (s.Netlist.Stats.comb_depth >= 1);
  Alcotest.(check bool) "fanout sane" true
    (s.Netlist.Stats.avg_fanout >= 1.0
    && s.Netlist.Stats.max_fanout >= int_of_float s.Netlist.Stats.avg_fanout)

let test_stats_comb_depth_chain () =
  (* a pure comb chain of length 5 *)
  let module D = Netlist.Design in
  let cells =
    List.init 5 (fun i ->
        D.cell ~name:(Printf.sprintf "c%d" i) ~kind:D.Comb
          ~ins:(if i = 0 then [] else [ Printf.sprintf "n%d" (i - 1) ])
          ~outs:[ Printf.sprintf "n%d" i ] ())
  in
  let d = D.design ~top:"t" ~modules:[ D.module_def ~name:"t" ~cells () ] in
  let s = Netlist.Stats.compute (Flat.elaborate d) in
  Alcotest.(check int) "depth 5" 5 s.Netlist.Stats.comb_depth

let test_stats_pp () =
  let s = Netlist.Stats.compute (Lazy.force fig1_flat) in
  let text = Format.asprintf "%a" Netlist.Stats.pp s in
  Alcotest.(check bool) "mentions macros" true (contains ~affix:"16 macros" text)

(* ---- dot ------------------------------------------------------------ *)

let test_dot_hierarchy () =
  let tree = Hier.Tree.build (Lazy.force fig1_flat) in
  let dot = Viz.Dot.hierarchy tree () in
  Alcotest.(check bool) "digraph header" true (contains ~affix:"digraph HT" dot);
  Alcotest.(check bool) "top node present" true (contains ~affix:"<top>" dot);
  Alcotest.(check bool) "edges present" true (contains ~affix:"->" dot);
  (* max_depth elision *)
  let shallow = Viz.Dot.hierarchy tree ~max_depth:0 () in
  Alcotest.(check bool) "elision marker" true (contains ~affix:"more" shallow)

let test_dot_seqgraph () =
  let gseq = Seqgraph.build (Lazy.force fig1_flat) in
  let dot = Viz.Dot.seqgraph gseq () in
  Alcotest.(check bool) "digraph header" true (contains ~affix:"digraph Gseq" dot);
  Alcotest.(check bool) "macro node styled" true (contains ~affix:"lightblue" dot);
  (* width filter drops edges *)
  let filtered = Viz.Dot.seqgraph gseq ~min_width:1_000 () in
  Alcotest.(check bool) "filtered has fewer lines" true
    (String.length filtered < String.length dot)

(* ---- placement io ---------------------------------------------------- *)

let placement =
  lazy
    (let flat = Lazy.force fig1_flat in
     let r = Hidap.place flat in
     let placements =
       List.map
         (fun (p : Hidap.macro_placement) -> (p.Hidap.fid, p.Hidap.rect, p.Hidap.orient))
         r.Hidap.placements
     in
     (flat, Hidap.Placement_io.make ~flat ~die:r.Hidap.die ~placements, placements))

let test_placement_roundtrip () =
  let _, pio, _ = Lazy.force placement in
  let text = Hidap.Placement_io.to_string pio in
  match Hidap.Placement_io.of_string text with
  | Error msg -> Alcotest.fail msg
  | Ok pio2 ->
    Alcotest.(check bool) "die preserved (1e-6 precision)" true
      (Rect.intersection_area pio.Hidap.Placement_io.die pio2.Hidap.Placement_io.die
       > 0.999999 *. Rect.area pio.Hidap.Placement_io.die);
    Alcotest.(check int) "entry count" 16 (List.length pio2.Hidap.Placement_io.entries);
    List.iter2
      (fun (a : Hidap.Placement_io.entry) (b : Hidap.Placement_io.entry) ->
        Alcotest.(check string) "path" a.Hidap.Placement_io.path b.Hidap.Placement_io.path;
        Alcotest.(check bool) "orient" true
          (a.Hidap.Placement_io.orient = b.Hidap.Placement_io.orient);
        Alcotest.(check bool) "rect close" true
          (Rect.intersection_area a.Hidap.Placement_io.rect b.Hidap.Placement_io.rect
           > 0.999 *. Rect.area a.Hidap.Placement_io.rect))
      pio.Hidap.Placement_io.entries pio2.Hidap.Placement_io.entries

let test_placement_resolve () =
  let flat, pio, placements = Lazy.force placement in
  match Hidap.Placement_io.resolve flat pio with
  | Error msg -> Alcotest.fail msg
  | Ok resolved ->
    List.iter2
      (fun (fid, _, _) (fid', _, _) -> Alcotest.(check int) "ids match" fid fid')
      placements resolved

let test_placement_resolve_unknown () =
  let flat, pio, _ = Lazy.force placement in
  let bad =
    { pio with
      Hidap.Placement_io.entries =
        { Hidap.Placement_io.path = "ghost/mem"; rect = Rect.make ~x:0.0 ~y:0.0 ~w:1.0 ~h:1.0;
          orient = Geom.Orientation.R0 }
        :: pio.Hidap.Placement_io.entries }
  in
  match Hidap.Placement_io.resolve flat bad with
  | Error msg -> Alcotest.(check bool) "names the path" true (contains ~affix:"ghost/mem" msg)
  | Ok _ -> Alcotest.fail "expected resolve failure"

let test_placement_parse_errors () =
  let check_err name src =
    match Hidap.Placement_io.of_string src with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (name ^ ": expected error")
  in
  check_err "empty" "";
  check_err "bad header" "nope 0 0 1 1";
  check_err "bad rect" "die 0 0 10 10\nm a b c d R0";
  check_err "bad orientation" "die 0 0 10 10\nm 0 0 1 1 R45";
  check_err "short line" "die 0 0 10 10\nm 0 0 1"

let test_placement_comments_and_blanks () =
  let src = "# saved by test\ndie 0 0 10 10\n\nm 1 2 3 4 MX\n" in
  match Hidap.Placement_io.of_string src with
  | Error msg -> Alcotest.fail msg
  | Ok pio ->
    Alcotest.(check int) "one entry" 1 (List.length pio.Hidap.Placement_io.entries);
    let e = List.hd pio.Hidap.Placement_io.entries in
    Alcotest.(check bool) "orientation read" true
      (e.Hidap.Placement_io.orient = Geom.Orientation.MX)

let test_placement_file_io () =
  let _, pio, _ = Lazy.force placement in
  let path = Filename.temp_file "hidap" ".place" in
  Hidap.Placement_io.save path pio;
  (match Hidap.Placement_io.load path with
  | Ok pio2 ->
    Alcotest.(check int) "entries preserved"
      (List.length pio.Hidap.Placement_io.entries)
      (List.length pio2.Hidap.Placement_io.entries)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path;
  match Hidap.Placement_io.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected load failure on missing file"

let suite =
  [ ( "netlist.stats",
      [ Alcotest.test_case "counts" `Quick test_stats_counts;
        Alcotest.test_case "comb depth" `Quick test_stats_comb_depth_chain;
        Alcotest.test_case "pretty print" `Quick test_stats_pp ] );
    ( "viz.dot",
      [ Alcotest.test_case "hierarchy" `Quick test_dot_hierarchy;
        Alcotest.test_case "seqgraph" `Quick test_dot_seqgraph ] );
    ( "hidap.placement_io",
      [ Alcotest.test_case "roundtrip" `Quick test_placement_roundtrip;
        Alcotest.test_case "resolve" `Quick test_placement_resolve;
        Alcotest.test_case "resolve unknown" `Quick test_placement_resolve_unknown;
        Alcotest.test_case "parse errors" `Quick test_placement_parse_errors;
        Alcotest.test_case "comments and blanks" `Quick test_placement_comments_and_blanks;
        Alcotest.test_case "file io" `Quick test_placement_file_io ] ) ]
