(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Tables I-III, Figs 1-9), runs the ablations called out in
   DESIGN.md, and times the core algorithms with Bechamel.

   Usage: dune exec bench/main.exe
   Set HIDAP_BENCH_FAST=1 to restrict the circuit suite to c1/c5 while
   iterating. Artifacts (density maps, SVG diagrams) are written to
   bench_artifacts/. *)

module Rect = Geom.Rect
module Flat = Netlist.Flat
module T = Report.Table

let artifacts_dir = "bench_artifacts"

let ensure_artifacts_dir () =
  try Unix.mkdir artifacts_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let printf = Format.printf

let fast_mode = Sys.getenv_opt "HIDAP_BENCH_FAST" <> None

let circuits () =
  let all = Circuitgen.Suite.c_suite () in
  if fast_mode then
    List.filter (fun c -> List.mem c.Circuitgen.Suite.cname [ "c1"; "c5" ]) all
  else all

(* ------------------------------------------------------------------ *)
(* Table I: data-structure sizes                                       *)
(* ------------------------------------------------------------------ *)

let table1 () =
  printf "%s@." (T.section "Table I: circuit abstraction sizes (cells scaled 1:100)");
  let rows =
    List.map
      (fun (c : Circuitgen.Suite.circuit) ->
        let flat = Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params) in
        let gseq = Seqgraph.build flat in
        let tree = Hier.Tree.build flat in
        let dc =
          Hier.Decluster.run tree ~nh:(Hier.Tree.root tree) ~open_frac:0.4 ~min_frac:0.01
        in
        let n_blocks = List.length dc.Hier.Decluster.hcb in
        [ c.Circuitgen.Suite.cname;
          string_of_int (Array.length flat.Flat.nodes);
          string_of_int (Graphlib.Digraph.edge_count flat.Flat.gnet);
          string_of_int (Seqgraph.node_count gseq);
          string_of_int (Seqgraph.edge_count gseq);
          string_of_int n_blocks ])
      (circuits ())
  in
  printf "%s@."
    (T.render
       ~header:[ "circuit"; "|Vnet|"; "|Enet|"; "|Vseq|"; "|Eseq|"; "|Vdf| (top)" ]
       rows);
  printf
    "paper magnitudes: Gnet ~1e7, Gseq ~1e5, Gdf ~1e2; at the 1:100 cell scale the@.";
  printf "expected magnitudes are Gnet ~1e5, Gseq ~1e2..1e3, Gdf ~1e1..1e2.@."

(* ------------------------------------------------------------------ *)
(* Tables II and III: the three flows on the c-suite                   *)
(* ------------------------------------------------------------------ *)

let flow_of_paper (p : Report.Paper_data.circuit_rows) = function
  | Evalflow.IndEDA -> p.Report.Paper_data.indeda
  | Evalflow.HiDaP -> p.Report.Paper_data.hidap
  | Evalflow.HandFP -> p.Report.Paper_data.handfp

let tables_2_3 () =
  printf "%s@." (T.section "Table III: per-circuit metrics for the three flows");
  ensure_artifacts_dir ();
  let results =
    List.map
      (fun (c : Circuitgen.Suite.circuit) ->
        let design = Circuitgen.Gen.generate c.Circuitgen.Suite.params in
        let flat = Flat.elaborate design in
        (* Run instrumented so the QoR ledger gets stage times, the SA
           curve and GC gauges; telemetry cannot change the placement
           (see test_obs determinism case). *)
        Obs.Metrics.reset Obs.Metrics.global;
        Obs.Metrics.set_enabled true;
        Obs.Perf.reset Obs.Perf.global;
        Obs.Perf.set_enabled true;
        let gc_before = Obs.Gcstats.snapshot () in
        Obs.Trace.start ();
        let res =
          Fun.protect
            ~finally:(fun () ->
              Obs.Metrics.set_enabled false;
              Obs.Perf.set_enabled false)
            (fun () -> Evalflow.run_all ~name:c.Circuitgen.Suite.cname design)
        in
        let spans = Obs.Trace.finish () in
        let gc_delta =
          Obs.Gcstats.diff ~before:gc_before ~after:(Obs.Gcstats.snapshot ())
        in
        let sa_moves = Obs.Perf.get Obs.Perf.global Obs.Perf.sa_moves in
        let records =
          Qor.Record.of_eval ~circuit:c.Circuitgen.Suite.cname ~flat
            ~config:Hidap.Config.default ~spans ~registry:Obs.Metrics.global res
        in
        Obs.Metrics.reset Obs.Metrics.global;
        let ledger_path =
          Filename.concat artifacts_dir
            (Printf.sprintf "qor_%s.json" c.Circuitgen.Suite.cname)
        in
        Qor.Record.write_ledger ledger_path records;
        printf "  [done] %s (%d cells, %d macros) -> %s@." res.Evalflow.circuit
          res.Evalflow.cells res.Evalflow.macro_count ledger_path;
        (* Throughput of the HiDaP leg, defined exactly as in
           [hidap bench --speed-out]: the leg's measured runtime against
           the deterministic move count of the whole sweep (the other
           flows spend no SA moves). *)
        let wall_s =
          List.fold_left
            (fun acc (r : Evalflow.run) ->
              if r.Evalflow.kind = Evalflow.HiDaP then
                acc +. r.Evalflow.metrics.Evalflow.runtime_s
              else acc)
            0.0 res.Evalflow.runs
        in
        ( (c, flat, res),
          (* Peak RSS is process-wide and monotone: each entry records
             the high-water mark up to and including its circuit. *)
          Qor.Speed.entry ~peak_rss_kb:(Obs.Gcstats.peak_rss_kb ())
            ~major_words:gc_delta.Obs.Gcstats.major_words
            ~circuit:c.Circuitgen.Suite.cname ~wall_s ~sa_moves () ))
      (circuits ())
  in
  let results, speed = (List.map fst results, List.map snd results) in
  let rows =
    List.concat_map
      (fun ((c : Circuitgen.Suite.circuit), _, res) ->
        let paper = Report.Paper_data.find c.Circuitgen.Suite.cname in
        List.map
          (fun (r : Evalflow.run) ->
            let m = r.Evalflow.metrics in
            let paper_cells =
              match paper with
              | Some p ->
                let pr = flow_of_paper p r.Evalflow.kind in
                [ T.fmt_f 3 pr.Report.Paper_data.wl_norm;
                  T.fmt_f 2 pr.Report.Paper_data.grc_pct;
                  T.fmt_f 1 pr.Report.Paper_data.wns_pct ]
              | None -> [ "-"; "-"; "-" ]
            in
            [ res.Evalflow.circuit;
              Evalflow.flow_name r.Evalflow.kind;
              T.fmt_f 3 m.Evalflow.wl_m;
              T.fmt_f 3 (Evalflow.normalized_wl res r.Evalflow.kind);
              T.fmt_f 2 m.Evalflow.grc_pct;
              T.fmt_f 1 m.Evalflow.wns_pct;
              T.fmt_f 0 m.Evalflow.tns;
              T.fmt_f 2 m.Evalflow.runtime_s ]
            @ paper_cells)
          res.Evalflow.runs)
      results
  in
  printf "%s@."
    (T.render
       ~header:
         [ "circuit"; "flow"; "WL(m)"; "WLnorm"; "GRC%"; "WNS%"; "TNS"; "rt(s)";
           "pWLnorm"; "pGRC%"; "pWNS%" ]
       rows);
  printf "(pXXX columns are the paper's published values for the same circuit/flow)@.";
  printf "%s@." (T.section "Table II: averages over the suite");
  let geo kind =
    Util.Stat.geometric_mean
      (List.map (fun (_, _, res) -> Evalflow.normalized_wl res kind) results)
  in
  let mean_wns kind =
    Util.Stat.mean
      (List.map
         (fun (_, _, res) ->
           let r = List.find (fun (r : Evalflow.run) -> r.Evalflow.kind = kind) res.Evalflow.runs in
           r.Evalflow.metrics.Evalflow.wns_pct)
         results)
  in
  let rt_range kind =
    let rts =
      List.map
        (fun (_, _, res) ->
          let r = List.find (fun (r : Evalflow.run) -> r.Evalflow.kind = kind) res.Evalflow.runs in
          r.Evalflow.metrics.Evalflow.runtime_s)
        results
    in
    Printf.sprintf "%.2f-%.2fs" (Util.Stat.minimum rts) (Util.Stat.maximum rts)
  in
  let p_wl_i, p_wl_h, p_wl_f = Report.Paper_data.table2_wl_norm in
  let p_wns_i, p_wns_h, p_wns_f = Report.Paper_data.table2_wns in
  let e_i, e_h, e_f = Report.Paper_data.table2_effort in
  let row kind p_wl p_wns p_effort =
    [ Evalflow.flow_name kind;
      T.fmt_f 3 (geo kind);
      T.fmt_f 1 (mean_wns kind);
      rt_range kind;
      T.fmt_f 3 p_wl;
      T.fmt_f 1 p_wns;
      p_effort ]
  in
  printf "%s@."
    (T.render
       ~header:[ "flow"; "WL(geo)"; "WNS%"; "effort"; "pWL"; "pWNS%"; "pEffort" ]
       [ row Evalflow.IndEDA p_wl_i p_wns_i e_i;
         row Evalflow.HiDaP p_wl_h p_wns_h e_h;
         row Evalflow.HandFP p_wl_f p_wns_f e_f ]);
  (results, speed)

(* ------------------------------------------------------------------ *)
(* Fig 1: multi-level floorplan evolution                              *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  printf "%s@." (T.section "Fig 1: multi-level floorplan of the 16-macro design");
  let flat = Flat.elaborate (Circuitgen.Suite.fig1_design ()) in
  let r = Hidap.place flat in
  let max_depth =
    List.fold_left (fun acc (l : Hidap.Floorplan.level_info) -> max acc l.Hidap.Floorplan.depth)
      0 r.Hidap.levels
  in
  for depth = 0 to min 2 max_depth do
    let rects =
      List.filter_map
        (fun (l : Hidap.Floorplan.level_info) ->
          if l.Hidap.Floorplan.depth = depth then
            Some
              ( (if l.Hidap.Floorplan.macro_count > 0 then
                   string_of_int l.Hidap.Floorplan.macro_count
                 else "c"),
                l.Hidap.Floorplan.rect )
          else None)
        r.Hidap.levels
    in
    printf "level %d: %d blocks (digits = macro count, c = cells only)@." depth
      (List.length rects);
    printf "%s@." (Viz.Ascii.floorplan ~die:r.Hidap.die ~rects ~width:48 ~height:20 ())
  done;
  let rects =
    List.map (fun (p : Hidap.macro_placement) -> ("M", p.Hidap.rect)) r.Hidap.placements
  in
  printf "final macro placement (%d macros, overlap %.2f):@." (List.length rects)
    (Hidap.overlap_area r);
  printf "%s@." (Viz.Ascii.floorplan ~die:r.Hidap.die ~rects ~width:48 ~height:20 ())

(* ------------------------------------------------------------------ *)
(* Figs 2-3: block flow vs macro flow                                  *)
(* ------------------------------------------------------------------ *)

let figs_2_3 () =
  printf "%s@." (T.section "Figs 2-3: block flow vs macro flow on the 4-block system");
  let design = Circuitgen.Suite.fig2_system () in
  let flat = Flat.elaborate design in
  let gseq = Seqgraph.build flat in
  let config = Hidap.Config.default in
  let die = Hidap.die_for flat ~config in
  let ports = Hidap.Port_plan.make gseq ~die in
  List.iter
    (fun (lambda, label) ->
      let config = Hidap.Config.with_lambda config lambda in
      let r = Hidap.place ~config ~die flat in
      let m, _ =
        Evalflow.measure ~flat ~gseq ~ports ~die
          ~macros:
            (List.map
               (fun (p : Hidap.macro_placement) ->
                 { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect; orient = p.Hidap.orient })
               r.Hidap.placements)
      in
      printf "lambda=%.1f (%s): WL=%.0f um, overlap=%.1f@." lambda label m.Evalflow.wl_um
        (Hidap.overlap_area r);
      match r.Hidap.top with
      | Some top ->
        let rects =
          Array.to_list
            (Array.mapi
               (fun i (b : Hidap.Block.t) ->
                 ( (if b.Hidap.Block.macro_count > 0 then
                      String.make 1 (Char.chr (Char.code 'A' + (i mod 26)))
                    else "x"),
                   top.Hidap.Floorplan.inst_rects.(i) ))
               top.Hidap.Floorplan.inst_blocks)
        in
        printf "%s@." (Viz.Ascii.floorplan ~die ~rects ~width:40 ~height:16 ())
      | None -> ())
    [ (1.0, "block flow only, Fig 3a"); (0.0, "macro flow only, Fig 3b");
      (0.5, "blended, Fig 3c") ]

(* ------------------------------------------------------------------ *)
(* Fig 4: block area model and shape curve                             *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  printf "%s@." (T.section "Fig 4: shape curve of an 8-macro block");
  let flat = Flat.elaborate (Circuitgen.Suite.fig1_design ()) in
  let tree = Hier.Tree.build flat in
  let config = Hidap.Config.default in
  let sgamma = Hidap.Shape_curves.generate tree ~config ~rng:(Util.Rng.create 5) in
  let node8 = ref (-1) in
  for id = Hier.Tree.node_count tree - 1 downto 0 do
    if Hier.Tree.macro_count tree id = 8 then node8 := id
  done;
  let id = !node8 in
  let curve = Hidap.Shape_curves.curve sgamma id in
  printf "node %s: macro area=%.0f, total area=%.0f@."
    (Hier.Tree.node tree id).Hier.Tree.name
    (Hidap.Shape_curves.macro_area sgamma id)
    (Hier.Tree.area tree id);
  printf "Pareto points of Gamma (w, h, area):@.";
  List.iter
    (fun (w, h) -> printf "  %8.1f x %-8.1f area %10.0f@." w h (w *. h))
    (Shape.Curve.points curve);
  printf "min-area point: %s@."
    (match Shape.Curve.min_area_point curve with
    | Some (w, h) -> Printf.sprintf "%.1f x %.1f (area %.0f)" w h (w *. h)
    | None -> "unconstrained")

(* ------------------------------------------------------------------ *)
(* Figs 5-6: declustering and target-area assignment on c3'            *)
(* ------------------------------------------------------------------ *)

let figs_5_6 () =
  printf "%s@." (T.section "Figs 5-6: declustering + glue-area assignment (c3')");
  let c = match Circuitgen.Suite.find "c3" with Some c -> c | None -> assert false in
  let flat = Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params) in
  let tree = Hier.Tree.build flat in
  let root = Hier.Tree.root tree in
  let dc = Hier.Decluster.run tree ~nh:root ~open_frac:0.4 ~min_frac:0.01 in
  printf "root area %.0f, %d macros@." (Hier.Tree.area tree root)
    (Hier.Tree.macro_count tree root);
  printf "HCB: %d blocks, HCG: %d glue nodes, cut valid: %b@."
    (List.length dc.Hier.Decluster.hcb)
    (List.length dc.Hier.Decluster.hcg)
    (Hier.Decluster.is_valid_cut tree ~nh:root
       (dc.Hier.Decluster.hcb @ dc.Hier.Decluster.hcg));
  let config = Hidap.Config.default in
  let sgamma = Hidap.Shape_curves.generate tree ~config ~rng:(Util.Rng.create 5) in
  let blocks =
    Hidap.Target_area.assign tree ~sgamma ~hcb:dc.Hier.Decluster.hcb
      ~hcg:dc.Hier.Decluster.hcg
  in
  let rows =
    Array.to_list
      (Array.map
         (fun (b : Hidap.Block.t) ->
           [ b.Hidap.Block.name;
             string_of_int b.Hidap.Block.macro_count;
             T.fmt_f 0 b.Hidap.Block.am;
             T.fmt_f 0 b.Hidap.Block.at;
             T.fmt_f 2 (b.Hidap.Block.at /. max 1e-9 b.Hidap.Block.am) ])
         blocks)
  in
  printf "%s@." (T.render ~header:[ "block"; "macros"; "am"; "at"; "at/am" ] rows);
  let am_sum = Array.fold_left (fun a (b : Hidap.Block.t) -> a +. b.Hidap.Block.am) 0.0 blocks in
  let at_sum = Array.fold_left (fun a (b : Hidap.Block.t) -> a +. b.Hidap.Block.at) 0.0 blocks in
  printf "sum am=%.0f  sum at=%.0f  root area=%.0f (at covers all cells)@." am_sum at_sum
    (Hier.Tree.area tree root)

(* ------------------------------------------------------------------ *)
(* Fig 7: dataflow inference example                                   *)
(* ------------------------------------------------------------------ *)

(* A miniature system in the spirit of Fig 7: two macro blocks A and B
   joined by two chained top-level register arrays (latency 3 from A's
   output register to B's input through two glue stages). *)
let fig7_design () =
  let module D = Netlist.Design in
  let w = 8 in
  let bits p = List.init w (fun i -> Printf.sprintf "%s_%d" p i) in
  let blockm name =
    let cells =
      D.cell ~name:"mem0" ~kind:(D.make_macro ~w:40.0 ~h:30.0) ~ins:(bits "in")
        ~outs:(bits "q") ()
      :: List.concat
           (List.mapi
              (fun i out ->
                [ D.cell
                    ~name:(Printf.sprintf "ro_%d" i)
                    ~kind:D.Flop
                    ~ins:[ Printf.sprintf "q_%d" i ]
                    ~outs:[ out ] () ])
              (bits "out"))
    in
    let ports =
      List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "in")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "out")
    in
    D.module_def ~name ~ports ~cells ()
  in
  let top =
    let stage prefix src =
      List.concat
        (List.mapi
           (fun i s ->
             [ D.cell
                 ~name:(Printf.sprintf "%s_%d" prefix i)
                 ~kind:D.Flop ~ins:[ s ]
                 ~outs:[ Printf.sprintf "%sq_%d" prefix i ]
                 () ])
           src)
    in
    let cells = stage "g1" (bits "aout") @ stage "g2" (bits "g1q") in
    let insts =
      [ D.inst ~name:"ba" ~module_:"f7a"
          ~bindings:
            (List.map2 (fun f a -> (f, a)) (bits "in") (bits "pin")
            @ List.map2 (fun f a -> (f, a)) (bits "out") (bits "aout"));
        D.inst ~name:"bb" ~module_:"f7b"
          ~bindings:
            (List.map2 (fun f a -> (f, a)) (bits "in") (bits "g2q")
            @ List.map2 (fun f a -> (f, a)) (bits "out") (bits "pout")) ]
    in
    let ports =
      List.map (fun n -> D.port ~name:n ~dir:D.Input) (bits "pin")
      @ List.map (fun n -> D.port ~name:n ~dir:D.Output) (bits "pout")
    in
    D.module_def ~name:"f7top" ~ports ~cells ~insts ()
  in
  D.design ~top:"f7top" ~modules:[ top; blockm "f7a"; blockm "f7b" ]

let fig7 () =
  printf "%s@." (T.section "Fig 7: Gseq -> Gdf dataflow inference");
  let flat = Flat.elaborate (fig7_design ()) in
  let gseq = Seqgraph.build flat in
  printf "%a@." Seqgraph.pp_summary gseq;
  let scope_block = Hashtbl.create 4 in
  Array.iter
    (fun (s : Flat.scope) ->
      if s.Flat.spath = "ba" then Hashtbl.replace scope_block s.Flat.sid 0;
      if s.Flat.spath = "bb" then Hashtbl.replace scope_block s.Flat.sid 1)
    flat.Flat.scopes;
  let block_of_node gid =
    let nd = gseq.Seqgraph.nodes.(gid) in
    if Seqgraph.is_port_node nd then -1
    else
      match Hashtbl.find_opt scope_block nd.Seqgraph.scope with
      | Some b -> b
      | None -> -1
  in
  let fixed =
    Array.of_list
      (List.filter_map
         (fun (nd : Seqgraph.node) ->
           if Seqgraph.is_port_node nd then Some nd.Seqgraph.id else None)
         (Array.to_list gseq.Seqgraph.nodes))
  in
  let gdf = Dataflow.Gdf.build gseq ~n_blocks:2 ~block_of_node ~fixed in
  printf "block flow A->B histogram: %a@." Util.Histogram.pp (Dataflow.Gdf.block_flow gdf 0 1);
  printf "macro flow A->B histogram: %a@." Util.Histogram.pp (Dataflow.Gdf.macro_flow gdf 0 1);
  List.iter
    (fun k ->
      printf "score(block,k=%d)=%.2f score(macro,k=%d)=%.2f@." k
        (Util.Histogram.score (Dataflow.Gdf.block_flow gdf 0 1) ~k)
        k
        (Util.Histogram.score (Dataflow.Gdf.macro_flow gdf 0 1) ~k))
    [ 0; 1; 2 ];
  let m = Dataflow.Gdf.affinity_matrix gdf ~lambda:0.5 ~k:2 () in
  printf "affinity(A,B) with lambda=0.5, k=2: %.3f@." m.(0).(1)

(* ------------------------------------------------------------------ *)
(* Fig 8: top-down area-budgeted slicing layout                        *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  printf "%s@." (T.section "Fig 8: top-down area budgeting in a 3x3 budget");
  let open Slicing in
  let leaves =
    Array.of_list
      (List.mapi
         (fun i at ->
           { Layout.lid = i; curve = Shape.Curve.unconstrained; area_min = at;
             area_target = at })
         [ 1.0; 2.0; 1.5; 2.0; 2.5 ])
  in
  let expr =
    Polish.of_elements
      [| Polish.Operand 0; Polish.Operand 1; Polish.Operator Polish.V;
         Polish.Operand 2; Polish.Operator Polish.H; Polish.Operand 3;
         Polish.Operand 4; Polish.Operator Polish.V; Polish.Operator Polish.H |]
  in
  let budget = Rect.make ~x:0.0 ~y:0.0 ~w:3.0 ~h:3.0 in
  let placement = Layout.evaluate expr ~leaves ~budget in
  List.iter
    (fun (lid, r) ->
      printf "  leaf %d (at=%.1f): rect %a area=%.2f@." lid
        leaves.(lid).Layout.area_target Rect.pp r (Rect.area r))
    placement.Layout.rects;
  let total =
    List.fold_left (fun acc (_, r) -> acc +. Rect.area r) 0.0 placement.Layout.rects
  in
  printf "sum of areas %.2f = budget %.2f (exact partition)@." total (Rect.area budget)

(* ------------------------------------------------------------------ *)
(* Fig 9: density maps + Gdf diagram for c3'                           *)
(* ------------------------------------------------------------------ *)

let fig9 results =
  printf "%s@." (T.section "Fig 9: density maps of c3' under the three flows");
  ensure_artifacts_dir ();
  match
    List.find_opt
      (fun ((c : Circuitgen.Suite.circuit), _, _) -> c.Circuitgen.Suite.cname = "c3")
      results
  with
  | None -> printf "(c3 not in the fast suite; skipped)@."
  | Some (_, flat, res) ->
    List.iter
      (fun (r : Evalflow.run) ->
        let grid = Evalflow.density_map r ~flat ~bins:24 in
        printf "%s (WL %.3fm):@." (Evalflow.flow_name r.Evalflow.kind)
          r.Evalflow.metrics.Evalflow.wl_m;
        printf "%s@." (Viz.Ascii.density grid ~width:48 ~height:18 ());
        let path =
          Filename.concat artifacts_dir
            (Printf.sprintf "fig9_density_%s.ppm" (Evalflow.flow_name r.Evalflow.kind))
        in
        Viz.Ppm.write_file path (Viz.Ppm.of_density grid ());
        printf "  wrote %s@." path)
      res.Evalflow.runs;
    let r = Hidap.place flat in
    (match r.Hidap.top with
    | Some top ->
      let blocks =
        Array.to_list
          (Array.mapi
             (fun i (b : Hidap.Block.t) ->
               ( b.Hidap.Block.name,
                 top.Hidap.Floorplan.inst_rects.(i),
                 b.Hidap.Block.macro_count ))
             top.Hidap.Floorplan.inst_blocks)
      in
      let n = List.length blocks in
      let aff = Array.make_matrix n n 0.0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          aff.(i).(j) <- top.Hidap.Floorplan.inst_affinity.(i).(j)
        done
      done;
      let svg = Viz.Svg.dataflow_diagram ~die:r.Hidap.die ~blocks ~affinity:aff () in
      let path = Filename.concat artifacts_dir "fig9d_gdf_c3.svg" in
      Viz.Svg.write_file path svg;
      printf "wrote %s (top-level Gdf block diagram)@." path
    | None -> ())

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  printf "%s@." (T.section "Ablations (circuit c1')");
  let c = match Circuitgen.Suite.find "c1" with Some c -> c | None -> assert false in
  let design = Circuitgen.Gen.generate c.Circuitgen.Suite.params in
  let flat = Flat.elaborate design in
  let config = Hidap.Config.default in
  let gseq = Seqgraph.build ~bit_threshold:config.Hidap.Config.bit_threshold flat in
  let die = Hidap.die_for flat ~config in
  let ports = Hidap.Port_plan.make gseq ~die in
  let wl_of_macros macros =
    let m, _ = Evalflow.measure ~flat ~gseq ~ports ~die ~macros in
    m.Evalflow.wl_um
  in
  let wl_of_result (r : Hidap.result) =
    wl_of_macros
      (List.map
         (fun (p : Hidap.macro_placement) ->
           { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect; orient = p.Hidap.orient })
         r.Hidap.placements)
  in
  printf "-- lambda (block vs macro flow blend):@.";
  let rows =
    List.map
      (fun lambda ->
        let r = Hidap.place ~config:(Hidap.Config.with_lambda config lambda) ~die flat in
        [ T.fmt_f 1 lambda; T.fmt_f 0 (wl_of_result r) ])
      [ 0.0; 0.2; 0.5; 0.8; 1.0 ]
  in
  printf "%s@." (T.render ~header:[ "lambda"; "WL(um)" ] rows);
  printf "-- k (latency decay exponent):@.";
  let rows =
    List.map
      (fun k ->
        let r = Hidap.place ~config:{ config with Hidap.Config.k } ~die flat in
        [ string_of_int k; T.fmt_f 0 (wl_of_result r) ])
      [ 0; 1; 2; 4 ]
  in
  printf "%s@." (T.render ~header:[ "k"; "WL(um)" ] rows);
  printf "-- macro flipping post-process:@.";
  let r = Hidap.place ~config ~die flat in
  let with_flip = wl_of_result r in
  let without_flip =
    wl_of_macros
      (List.map
         (fun (p : Hidap.macro_placement) ->
           { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect;
             orient = Geom.Orientation.R0 })
         r.Hidap.placements)
  in
  printf "%s@."
    (T.render ~header:[ "variant"; "WL(um)" ]
       [ [ "flipping on"; T.fmt_f 0 with_flip ];
         [ "flipping off (all R0)"; T.fmt_f 0 without_flip ] ]);
  printf "-- declustering thresholds (open_frac / min_frac):@.";
  let rows =
    List.map
      (fun (open_frac, min_frac) ->
        let config = { config with Hidap.Config.open_frac; min_frac } in
        let r = Hidap.place ~config ~die flat in
        [ Printf.sprintf "%.2f / %.3f" open_frac min_frac; T.fmt_f 0 (wl_of_result r) ])
      [ (0.4, 0.01); (0.2, 0.01); (0.6, 0.01); (0.4, 0.05) ]
  in
  printf "%s@." (T.render ~header:[ "open/min"; "WL(um)" ] rows);
  printf "-- IndEDA wall-packing order:@.";
  let indeda ordering =
    wl_of_macros
      (List.map
         (fun (p : Baselines.Indeda.placement) ->
           { Cellplace.fid = p.Baselines.Indeda.fid; rect = p.Baselines.Indeda.rect;
             orient = p.Baselines.Indeda.orient })
         (Baselines.Indeda.place ~flat ~gseq ~die ~ordering ()))
  in
  printf "%s@."
    (T.render ~header:[ "ordering"; "WL(um)" ]
       [ [ "by area (commercial proxy)"; T.fmt_f 0 (indeda Baselines.Indeda.By_area) ];
         [ "by connectivity chain"; T.fmt_f 0 (indeda Baselines.Indeda.By_connectivity) ] ])

(* ------------------------------------------------------------------ *)
(* Observability: per-circuit stage timings + SA convergence curves    *)
(* ------------------------------------------------------------------ *)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let observability () =
  printf "%s@."
    (T.section "Observability: stage timings and SA acceptance curves");
  ensure_artifacts_dir ();
  List.iter
    (fun (c : Circuitgen.Suite.circuit) ->
      let cname = c.Circuitgen.Suite.cname in
      let flat = Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params) in
      Obs.Metrics.reset Obs.Metrics.global;
      Obs.Metrics.set_enabled true;
      Obs.Perf.reset Obs.Perf.global;
      Obs.Perf.set_enabled true;
      Obs.Trace.start ();
      let spans =
        Fun.protect
          ~finally:(fun () ->
            Obs.Metrics.set_enabled false;
            Obs.Perf.set_enabled false)
          (fun () ->
            let (_ : Hidap.result) = Hidap.place flat in
            Obs.Trace.finish ())
      in
      let trace_path =
        Filename.concat artifacts_dir (Printf.sprintf "trace_%s.json" cname)
      in
      Obs.Trace.write_chrome_file trace_path spans;
      let metrics_path =
        Filename.concat artifacts_dir (Printf.sprintf "metrics_%s.json" cname)
      in
      Obs.Jsonx.write_file metrics_path (Obs.Metrics.to_json Obs.Metrics.global);
      let curve_names =
        List.filter
          (has_prefix ~prefix:"sa.curve.level")
          (Obs.Metrics.names Obs.Metrics.global)
      in
      let curve_path =
        Filename.concat artifacts_dir (Printf.sprintf "sa_curves_%s.csv" cname)
      in
      let oc = open_out curve_path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc "level,moves,acceptance_rate\n";
          List.iter
            (fun name ->
              let level = String.sub name 14 (String.length name - 14) in
              List.iter
                (fun (x, y) ->
                  output_string oc (Printf.sprintf "%s,%.0f,%.4f\n" level x y))
                (Obs.Metrics.series_points Obs.Metrics.global name))
            curve_names);
      printf "%s: stage tree@." cname;
      printf "%s@." (Obs.Trace.summary spans);
      List.iter
        (fun name ->
          let samples = Obs.Metrics.hist_samples Obs.Metrics.global name in
          if samples <> [] then
            printf "  %s: %d plateaus, mean %.3f, p50 %.3f@." name
              (List.length samples)
              (Util.Stat.mean samples)
              (Obs.Metrics.percentile samples ~p:50.0))
        (List.filter
           (has_prefix ~prefix:"sa.acceptance.level")
           (Obs.Metrics.names Obs.Metrics.global));
      printf "  wrote %s, %s, %s@." trace_path metrics_path curve_path;
      printf "  perf: %s@."
        (String.concat ", "
           (List.map
              (fun (k, v) -> Printf.sprintf "%s=%d" k v)
              (Obs.Perf.to_assoc Obs.Perf.global)));
      Obs.Metrics.reset Obs.Metrics.global)
    (circuits ())

(* ------------------------------------------------------------------ *)
(* Speed: throughput table, counter-overhead budget, baseline deltas   *)
(* ------------------------------------------------------------------ *)

let speed_baselines_path = Filename.concat "bench" "speed_baselines.json"

let speed_table (speed : Qor.Speed.entry list) =
  printf "%s@." (T.section "Speed: placement throughput per circuit");
  printf "%s@."
    (T.render
       ~header:[ "circuit"; "wall(s)"; "sa_moves"; "moves/s"; "peak_rss(MB)"; "major_Mw" ]
       (List.map
          (fun (e : Qor.Speed.entry) ->
            [ e.Qor.Speed.circuit; T.fmt_f 2 e.Qor.Speed.wall_s;
              string_of_int e.Qor.Speed.sa_moves; T.fmt_f 0 e.Qor.Speed.moves_per_s;
              (if e.Qor.Speed.peak_rss_kb > 0 then
                 T.fmt_f 1 (float_of_int e.Qor.Speed.peak_rss_kb /. 1024.0)
               else "-");
              T.fmt_f 1 (e.Qor.Speed.major_words /. 1e6) ])
          speed));
  if Sys.file_exists speed_baselines_path then begin
    match Qor.Speed.load speed_baselines_path with
    | Ok base ->
      printf "speed vs %s (report-only):@." speed_baselines_path;
      print_string
        (Qor.Speed.render
           (Qor.Speed.compare_to ~baseline:base { Qor.Speed.entries = speed }))
    | Error msg -> printf "(speed comparison skipped: %s)@." msg
  end
  else printf "(no %s: speed comparison skipped)@." speed_baselines_path

(* The ≤2%% budget from DESIGN.md §12: enabling the perf counters may
   not cost more than 2%% wall-clock on c5. Min-of-3 on both sides
   discounts one-off scheduler noise; a small absolute floor keeps the
   assertion meaningful should c5 ever get very fast. *)
let overhead_check () =
  printf "%s@." (T.section "Perf-counter overhead budget (c5, min of 3)");
  let c = match Circuitgen.Suite.find "c5" with Some c -> c | None -> assert false in
  let flat = Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params) in
  let time_place () =
    let t0 = Obs.Clock.now_s () in
    let (_ : Hidap.result) = Hidap.place flat in
    Obs.Clock.now_s () -. t0
  in
  let min3 f =
    let a = f () in
    let b = f () in
    let c = f () in
    Float.min a (Float.min b c)
  in
  let disabled_s = min3 time_place in
  Obs.Perf.reset Obs.Perf.global;
  Obs.Perf.set_enabled true;
  let enabled_s =
    Fun.protect ~finally:(fun () -> Obs.Perf.set_enabled false) (fun () -> min3 time_place)
  in
  let overhead_pct = 100.0 *. ((enabled_s /. disabled_s) -. 1.0) in
  printf "disabled %.3fs, enabled %.3fs: overhead %+.2f%% (budget 2%%)@." disabled_s
    enabled_s overhead_pct;
  if enabled_s > (disabled_s *. 1.02) +. 0.01 then
    failwith
      (Printf.sprintf "perf-counter overhead %.2f%% exceeds the 2%% budget" overhead_pct);
  overhead_pct

(* Attribution must be free: enabling the metrics layer — which turns
   on the per-plateau term observer and the best-eval capture in the SA
   cost closure — has to place bit-identically to a bare run on c1/c5
   at jobs 1/2, inside the same ≤2% wall-clock budget as the perf
   counters (min-of-3 on c5, same absolute floor). *)
let attribution_check () =
  printf "%s@."
    (T.section "Cost-term attribution: determinism (c1/c5, jobs 1/2) + overhead (c5)");
  let place_with ~metrics ~jobs flat =
    let config = { Hidap.Config.default with Hidap.Config.jobs } in
    if metrics then begin
      Obs.Metrics.reset Obs.Metrics.global;
      Obs.Metrics.set_enabled true
    end;
    Fun.protect
      ~finally:(fun () ->
        if metrics then begin
          Obs.Metrics.set_enabled false;
          Obs.Metrics.reset Obs.Metrics.global
        end)
      (fun () -> Hidap.place ~config flat)
  in
  let same (a : Hidap.result) (b : Hidap.result) =
    List.length a.Hidap.placements = List.length b.Hidap.placements
    && List.for_all2
         (fun (x : Hidap.macro_placement) (y : Hidap.macro_placement) ->
           x.Hidap.fid = y.Hidap.fid
           && x.Hidap.orient = y.Hidap.orient
           && x.Hidap.rect = y.Hidap.rect)
         a.Hidap.placements b.Hidap.placements
  in
  List.iter
    (fun cname ->
      let c =
        match Circuitgen.Suite.find cname with Some c -> c | None -> assert false
      in
      let flat = Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params) in
      List.iter
        (fun jobs ->
          let plain = place_with ~metrics:false ~jobs flat in
          let attributed = place_with ~metrics:true ~jobs flat in
          let ok = same plain attributed in
          printf "  %s jobs=%d: attribution-enabled placement identical: %b@." cname
            jobs ok;
          if not ok then
            failwith
              (Printf.sprintf "attribution changed the %s placement at jobs=%d" cname
                 jobs))
        [ 1; 2 ])
    [ "c1"; "c5" ];
  let c = match Circuitgen.Suite.find "c5" with Some c -> c | None -> assert false in
  let flat = Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params) in
  let time ~metrics =
    let one () =
      let t0 = Obs.Clock.now_s () in
      let (_ : Hidap.result) = place_with ~metrics ~jobs:1 flat in
      Obs.Clock.now_s () -. t0
    in
    let a = one () in
    let b = one () in
    let c = one () in
    Float.min a (Float.min b c)
  in
  let disabled_s = time ~metrics:false in
  let enabled_s = time ~metrics:true in
  let pct = 100.0 *. ((enabled_s /. disabled_s) -. 1.0) in
  printf "  c5 wall: bare %.3fs, attributed %.3fs (%+.2f%%, budget 2%%)@." disabled_s
    enabled_s pct;
  if enabled_s > (disabled_s *. 1.02) +. 0.01 then
    failwith
      (Printf.sprintf "attribution overhead %.2f%% exceeds the 2%% budget" pct);
  pct

(* ------------------------------------------------------------------ *)
(* Parallel annealing: floorplan-stage speedup and determinism (c5)    *)
(* ------------------------------------------------------------------ *)

let parallel_speedup () =
  printf "%s@." (T.section "Parallel annealing: floorplan speedup + determinism (c5)");
  let c = match Circuitgen.Suite.find "c5" with Some c -> c | None -> assert false in
  let flat = Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params) in
  let measure jobs =
    let config = { Hidap.Config.default with Hidap.Config.jobs } in
    Obs.Trace.start ();
    let t0 = Obs.Clock.now_s () in
    let r = Hidap.place ~config flat in
    let wall_s = Obs.Clock.now_s () -. t0 in
    let spans = Obs.Trace.finish () in
    let rec sum acc (s : Obs.Span.t) =
      let acc =
        if s.Obs.Span.name = "floorplan.run" then acc +. s.Obs.Span.dur_us else acc
      in
      List.fold_left sum acc s.Obs.Span.children
    in
    let floorplan_s = List.fold_left sum 0.0 spans /. 1e6 in
    (r, wall_s, floorplan_s)
  in
  let jobs_par = max 2 (Parexec.default_jobs ()) in
  let r1, wall1, fp1 = measure 1 in
  let rn, walln, fpn = measure jobs_par in
  let identical =
    List.length r1.Hidap.placements = List.length rn.Hidap.placements
    && List.for_all2
         (fun (a : Hidap.macro_placement) (b : Hidap.macro_placement) ->
           a.Hidap.fid = b.Hidap.fid
           && a.Hidap.orient = b.Hidap.orient
           && a.Hidap.rect = b.Hidap.rect)
         r1.Hidap.placements rn.Hidap.placements
  in
  printf "%s@."
    (T.render
       ~header:[ "jobs"; "wall(s)"; "floorplan(s)" ]
       [ [ "1"; T.fmt_f 2 wall1; T.fmt_f 2 fp1 ];
         [ string_of_int jobs_par; T.fmt_f 2 walln; T.fmt_f 2 fpn ] ]);
  let cores = Domain.recommended_domain_count () in
  printf "floorplan-stage speedup: %.2fx (target >= 1.5x with 2+ domains)@."
    (fp1 /. max 1e-9 fpn);
  if cores < jobs_par then
    printf
      "note: machine recommends %d domain(s) for %d jobs — oversubscribed, \
       speedup target does not apply@."
      cores jobs_par;
  printf "placements bit-identical across job counts: %b@." identical;
  if not identical then failwith "parallel determinism violated on c5"

(* ------------------------------------------------------------------ *)
(* Incremental SA evaluation: identity (c1/c5) + c5 speed gate         *)
(* ------------------------------------------------------------------ *)

(* The committed single-thread c5 floorplan throughput immediately
   before the incremental evaluator and the staircase-merge curve
   composition landed: 1,325,312 SA moves in 45.9s of floorplan =
   ~28.9k moves/s (same machine class as bench/speed_baselines.json).
   DESIGN.md section 14's gate asserts the rewritten hot path clears
   3x this floor; at landing time the measured margin was ~8x, so the
   absolute threshold tolerates a substantially slower machine before
   it could misfire. *)
let pre_incremental_c5_moves_per_s = 28_880.0

let incremental_check () =
  printf "%s@."
    (T.section "Incremental SA evaluation: identity (c1/c5, jobs 1) + c5 speed gate");
  let identical (a : Hidap.result) (b : Hidap.result) =
    List.length a.Hidap.placements = List.length b.Hidap.placements
    && List.for_all2
         (fun (x : Hidap.macro_placement) (y : Hidap.macro_placement) ->
           x.Hidap.fid = y.Hidap.fid
           && x.Hidap.orient = y.Hidap.orient
           && x.Hidap.rect = y.Hidap.rect)
         a.Hidap.placements b.Hidap.placements
  in
  (* Single-thread leg: placement result, SA move count, and the
     floorplan-stage seconds (the time the evaluator actually runs —
     moves/s against whole-flow wall would dilute the gate with cell
     placement and measurement time this PR does not touch). *)
  let leg ~incremental flat =
    let config =
      { Hidap.Config.default with Hidap.Config.jobs = 1;
        incremental_eval = incremental }
    in
    Obs.Perf.reset Obs.Perf.global;
    Obs.Perf.set_enabled true;
    Obs.Trace.start ();
    let r =
      Fun.protect
        ~finally:(fun () -> Obs.Perf.set_enabled false)
        (fun () -> Hidap.place ~config flat)
    in
    let spans = Obs.Trace.finish () in
    let rec sum acc (s : Obs.Span.t) =
      let acc =
        if s.Obs.Span.name = "floorplan.run" then acc +. s.Obs.Span.dur_us else acc
      in
      List.fold_left sum acc s.Obs.Span.children
    in
    let fp_s = List.fold_left sum 0.0 spans /. 1e6 in
    let moves = Obs.Perf.get Obs.Perf.global Obs.Perf.sa_moves in
    (r, moves, fp_s)
  in
  let rows = ref [] in
  List.iter
    (fun cname ->
      let c =
        match Circuitgen.Suite.find cname with Some c -> c | None -> assert false
      in
      let flat = Flat.elaborate (Circuitgen.Gen.generate c.Circuitgen.Suite.params) in
      let ri, mi, fp_i = leg ~incremental:true flat in
      let rf, mf, fp_f = leg ~incremental:false flat in
      let ok = identical ri rf && mi = mf in
      printf
        "  %s: placements identical: %b; %d moves; floorplan %.2fs incremental \
         vs %.2fs full (%.2fx)@."
        cname ok mi fp_i fp_f
        (fp_f /. Float.max 1e-9 fp_i);
      if not ok then
        failwith
          (Printf.sprintf "incremental evaluation changed the %s placement" cname);
      if cname = "c5" then begin
        let mps = float_of_int mi /. Float.max 1e-9 fp_i in
        let floor = 3.0 *. pre_incremental_c5_moves_per_s in
        printf
          "  c5 single-thread floorplan throughput: %.0f moves/s (%.1fx the \
           pre-incremental %.0f; gate 3x%s)@."
          mps
          (mps /. pre_incremental_c5_moves_per_s)
          pre_incremental_c5_moves_per_s
          (if mps >= 5.0 *. pre_incremental_c5_moves_per_s then
             ", stretch 5x met"
           else "");
        if mps < floor then
          failwith
            (Printf.sprintf
               "c5 single-thread floorplan throughput %.0f moves/s is below the \
                3x gate (%.0f)"
               mps floor);
        rows :=
          [ Qor.Speed.entry ~circuit:"c5-fp-incremental" ~wall_s:fp_i ~sa_moves:mi ();
            Qor.Speed.entry ~circuit:"c5-fp-full" ~wall_s:fp_f ~sa_moves:mf () ]
      end)
    [ "c1"; "c5" ];
  !rows

(* ------------------------------------------------------------------ *)
(* Bechamel timing microbenches                                        *)
(* ------------------------------------------------------------------ *)

let bechamel_benches () =
  printf "%s@." (T.section "Timing microbenches (Bechamel, ns/run)");
  let open Bechamel in
  let flat = Flat.elaborate (Circuitgen.Suite.fig1_design ()) in
  let tree = Hier.Tree.build flat in
  let gseq = Seqgraph.build flat in
  let config = Hidap.Config.default in
  let die = Hidap.die_for flat ~config in
  let rng = Util.Rng.create 42 in
  let sgamma = Hidap.Shape_curves.generate tree ~config ~rng in
  let ports = Hidap.Port_plan.make gseq ~die in
  let decluster () =
    Hier.Decluster.run tree ~nh:(Hier.Tree.root tree) ~open_frac:0.4 ~min_frac:0.01
  in
  let tests =
    Test.make_grouped ~name:"hidap"
      [ Test.make ~name:"T1:gseq_build" (Staged.stage (fun () -> Seqgraph.build flat));
        Test.make ~name:"F5:decluster" (Staged.stage decluster);
        Test.make ~name:"F6:target_area"
          (Staged.stage (fun () ->
               let dc = decluster () in
               Hidap.Target_area.assign tree ~sgamma ~hcb:dc.Hier.Decluster.hcb
                 ~hcg:dc.Hier.Decluster.hcg));
        Test.make ~name:"F7:dataflow_gdf"
          (Staged.stage (fun () ->
               let dc = decluster () in
               let hcb = Array.of_list dc.Hier.Decluster.hcb in
               let block_of_ht = Hashtbl.create 8 in
               Array.iteri (fun i ht -> Hashtbl.replace block_of_ht ht i) hcb;
               let block_of_node gid =
                 match gseq.Seqgraph.nodes.(gid).Seqgraph.kind with
                 | Seqgraph.Port _ -> -1
                 | Seqgraph.Macro fid | Seqgraph.Register (fid :: _) ->
                   let rec up ht =
                     if ht < 0 then -1
                     else
                       match Hashtbl.find_opt block_of_ht ht with
                       | Some b -> b
                       | None -> up (Hier.Tree.node tree ht).Hier.Tree.parent
                   in
                   up (Hier.Tree.ht_node_of_flat tree fid)
                 | Seqgraph.Register [] -> -1
               in
               Dataflow.Gdf.build gseq ~n_blocks:(Array.length hcb) ~block_of_node
                 ~fixed:[||]));
        Test.make ~name:"F8:polish_perturb"
          (let e = ref (Slicing.Polish.initial ~n:12) in
           Staged.stage (fun () -> e := Slicing.Polish.perturb rng !e));
        Test.make ~name:"F9:cellplace_sweep"
          (Staged.stage (fun () ->
               Cellplace.run
                 ~params:
                   { Cellplace.iterations = 1; spread_grid = 8; smooth_iterations = 0 }
                 ~flat ~macros:[]
                 ~port_pos:(fun fid -> Hidap.Port_plan.flat_pos ports fid)
                 ~die ())) ]
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.4) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ x ] -> Printf.sprintf "%.0f" x
        | Some _ | None -> "n/a"
      in
      rows := [ name; est ] :: !rows)
    results;
  let rows = List.sort compare !rows in
  printf "%s@." (T.render ~header:[ "bench"; "ns/run" ] rows)

(* ------------------------------------------------------------------ *)
(* Serve: daemon throughput under concurrent clients and workers       *)
(* ------------------------------------------------------------------ *)

(* Real `hidap serve` daemon subprocesses (the forked-worker engine
   cannot run inside this binary, which creates domains), each loaded
   by N client domains bursting fig1-size jobs before collecting
   results, so the bounded queue actually overflows: backpressure
   rejections (clients re-submit after a short sleep) and the
   admission bound are part of the measurement, not an error path.
   The same burst runs at --workers 1 and --workers 2; the speedup is
   the payoff of the process pool. *)

let serve_cli () =
  let p =
    Filename.concat
      (Filename.dirname (Filename.dirname Sys.executable_name))
      (Filename.concat "bin" "hidap_cli.exe")
  in
  if not (Sys.file_exists p) then
    failwith ("serve bench: hidap_cli.exe not built (run dune build): " ^ p);
  p

let serve_start_daemon ~dir ~workers ~queue_limit =
  let cli = serve_cli () in
  let sock = Filename.concat dir "s.sock" in
  let log = Filename.concat dir "serve.log" in
  let logfd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    Unix.create_process cli
      [| cli; "serve"; "--socket"; sock; "--state-dir";
         Filename.concat dir "state"; "--workers"; string_of_int workers;
         "--queue-limit"; string_of_int queue_limit |]
      Unix.stdin logfd logfd
  in
  Unix.close logfd;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec poll () =
    match Serve.Client.connect ~socket_path:sock with
    | cl ->
      let up = Serve.Client.ping cl = Ok () in
      Serve.Client.close cl;
      if not up then begin
        Unix.sleepf 0.02;
        poll ()
      end
    | exception Unix.Unix_error _ ->
      if Unix.gettimeofday () > deadline then
        failwith "serve bench: daemon never came up";
      Unix.sleepf 0.02;
      poll ()
  in
  poll ();
  (pid, sock)

let serve_stop_daemon pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> failwith "serve bench: daemon drain did not exit 0"

(* One burst: [clients] domains each submit [per_client] fig1 jobs as
   fast as the admission bound lets them, then wait for all results.
   Returns (wall seconds, daemon stats, client re-submit count). *)
let serve_burst ~workers ~clients ~per_client ~queue_limit =
  let dir = Filename.temp_file "hidap-bench-serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let pid, sock = serve_start_daemon ~dir ~workers ~queue_limit in
  let hnl = Hnl.Printer.to_string (Circuitgen.Suite.fig1_design ()) in
  let resubmits = Atomic.make 0 in
  let completed = Atomic.make 0 in
  let t0 = Obs.Clock.now_s () in
  let client_doms =
    List.init clients (fun ci ->
        Domain.spawn (fun () ->
            let cl = Serve.Client.connect ~socket_path:sock in
            let rec submit spec =
              match Serve.Client.submit cl spec with
              | Ok (`Accepted (id, _)) -> Some id
              | Ok (`Rejected _) ->
                Atomic.incr resubmits;
                Unix.sleepf 0.05;
                submit spec
              | Error _ -> None
            in
            let ids =
              List.filter_map
                (fun i ->
                  submit
                    { Serve.Proto.default_submit with
                      Serve.Proto.hnl = Some hnl;
                      seed = (ci * 100) + i;
                      label = Printf.sprintf "bench-%d-%d" ci i })
                (List.init per_client (fun i -> i + 1))
            in
            List.iter
              (fun id ->
                match Serve.Client.wait ~timeout_s:600.0 cl id with
                | Ok v when v.Serve.Proto.state = Serve.Proto.Done ->
                  Atomic.incr completed
                | _ -> ())
              ids;
            Serve.Client.close cl))
  in
  List.iter Domain.join client_doms;
  let wall_s = Obs.Clock.now_s () -. t0 in
  let cl = Serve.Client.connect ~socket_path:sock in
  let stats =
    match Serve.Client.stats cl with
    | Ok s -> s
    | Error e ->
      failwith ("serve bench: stats failed: " ^ Serve.Client.error_message e)
  in
  Serve.Client.close cl;
  serve_stop_daemon pid;
  if Atomic.get completed < clients * per_client then
    failwith "serve bench: not every submitted job completed";
  (wall_s, stats, Atomic.get resubmits)

let serve_bench () =
  printf "%s@." (T.section "Serve: job daemon under concurrent clients");
  let clients = 4 in
  let per_client = if fast_mode then 2 else 4 in
  let queue_limit = 8 in
  let total = clients * per_client in
  let run workers =
    let wall_s, stats, resubmits =
      serve_burst ~workers ~clients ~per_client ~queue_limit
    in
    let jobs_per_min = float stats.Serve.Proto.completed /. wall_s *. 60.0 in
    (wall_s, jobs_per_min, stats, resubmits)
  in
  let w1_wall, w1_jpm, w1_stats, w1_resub = run 1 in
  let w2_wall, w2_jpm, w2_stats, w2_resub = run 2 in
  let speedup = w2_jpm /. w1_jpm in
  let cores = Domain.recommended_domain_count () in
  printf "%s@."
    (T.render
       ~header:
         [ "workers"; "clients"; "jobs"; "wall(s)"; "jobs/min"; "rejected";
           "resubmits" ]
       [ [ "1"; string_of_int clients; string_of_int total; T.fmt_f 2 w1_wall;
           T.fmt_f 1 w1_jpm;
           string_of_int w1_stats.Serve.Proto.rejected_backpressure;
           string_of_int w1_resub ];
         [ "2"; string_of_int clients; string_of_int total; T.fmt_f 2 w2_wall;
           T.fmt_f 1 w2_jpm;
           string_of_int w2_stats.Serve.Proto.rejected_backpressure;
           string_of_int w2_resub ] ]);
  printf "worker-pool speedup: %.2fx (2 workers over 1) on %d fig1 jobs, %d core%s@."
    speedup total cores (if cores = 1 then "" else "s");
  (* Two placement workers need their own core each, plus headroom for the
     daemon and the client burst, before the speedup is a property of the
     pool rather than of the box.  Gate only where the hardware can express
     it; on smaller machines the numbers are report-only. *)
  if cores >= 4 && speedup < 1.8 then
    failwith
      (Printf.sprintf
         "serve bench: 2-worker speedup %.2fx below 1.8x floor on %d cores"
         speedup cores)
  else if cores < 4 then
    printf "note: %d core(s) available; 2-worker speedup is core-bound and \
            report-only here (gated at >=1.8x on 4+ cores)@."
      cores;
  [ ("clients", Obs.Jsonx.Int clients);
    ("cores", Obs.Jsonx.Int cores);
    ("jobs", Obs.Jsonx.Int total);
    ("queue_limit", Obs.Jsonx.Int queue_limit);
    ("wall_s_workers1", Obs.Jsonx.Float w1_wall);
    ("wall_s_workers2", Obs.Jsonx.Float w2_wall);
    ("jobs_per_min_workers1", Obs.Jsonx.Float w1_jpm);
    ("jobs_per_min_workers2", Obs.Jsonx.Float w2_jpm);
    ("worker_speedup", Obs.Jsonx.Float speedup);
    ("rejected_backpressure",
     Obs.Jsonx.Int
       (w1_stats.Serve.Proto.rejected_backpressure
       + w2_stats.Serve.Proto.rejected_backpressure));
    ("retried",
     Obs.Jsonx.Int (w1_stats.Serve.Proto.retried + w2_stats.Serve.Proto.retried))
  ]

(* ------------------------------------------------------------------ *)
(* Suite-level QoR summary: one JSON per bench run at the repo root so *)
(* the perf trajectory accumulates across commits (BENCH_<date>.json). *)
(* ------------------------------------------------------------------ *)

let suite_summary results ~speed ~overhead_pct ~attribution_pct ~serve ~elapsed_s =
  let module J = Obs.Jsonx in
  let tm = Unix.localtime (Unix.time ()) in
  let date =
    Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday
  in
  let geo kind =
    Util.Stat.geometric_mean
      (List.map (fun (_, _, res) -> Evalflow.normalized_wl res kind) results)
  in
  let per_circuit =
    List.map
      (fun ((c : Circuitgen.Suite.circuit), _, res) ->
        ( c.Circuitgen.Suite.cname,
          J.Obj
            [ ("cells", J.Int res.Evalflow.cells);
              ("macros", J.Int res.Evalflow.macro_count);
              ( "flows",
                J.Obj
                  (List.map
                     (fun (r : Evalflow.run) ->
                       let m = r.Evalflow.metrics in
                       ( Evalflow.flow_name r.Evalflow.kind,
                         J.Obj
                           [ ("wl_m", J.Float m.Evalflow.wl_m);
                             ( "wl_norm",
                               J.Float (Evalflow.normalized_wl res r.Evalflow.kind) );
                             ("grc_pct", J.Float m.Evalflow.grc_pct);
                             ("wns_pct", J.Float m.Evalflow.wns_pct);
                             ("tns", J.Float m.Evalflow.tns);
                             ("runtime_s", J.Float m.Evalflow.runtime_s) ] ))
                     res.Evalflow.runs) ) ] ))
      results
  in
  let doc =
    J.Obj
      [ ("schema", J.String "hidap-bench-summary");
        ("version", J.Int 1);
        ("date", J.String date);
        ("fast_mode", J.Bool fast_mode);
        ("total_bench_s", J.Float elapsed_s);
        ( "wl_geo_norm",
          J.Obj
            (List.map
               (fun kind -> (Evalflow.flow_name kind, J.Float (geo kind)))
               [ Evalflow.IndEDA; Evalflow.HiDaP; Evalflow.HandFP ]) );
        ( "speed",
          J.Obj
            [ ("counter_overhead_pct", J.Float overhead_pct);
              ("attribution_overhead_pct", J.Float attribution_pct);
              ( "circuits",
                J.Obj
                  (List.map
                     (fun (e : Qor.Speed.entry) ->
                       ( e.Qor.Speed.circuit,
                         J.Obj
                           [ ("wall_s", J.Float e.Qor.Speed.wall_s);
                             ("sa_moves", J.Int e.Qor.Speed.sa_moves);
                             ("moves_per_s", J.Float e.Qor.Speed.moves_per_s);
                             ("peak_rss_kb", J.Int e.Qor.Speed.peak_rss_kb);
                             ("major_words", J.Float e.Qor.Speed.major_words) ] ))
                     speed) ) ] );
        ("serve", J.Obj serve);
        ("circuits", J.Obj per_circuit) ]
  in
  let path = Printf.sprintf "BENCH_%s.json" date in
  J.write_file path doc;
  printf "wrote %s (suite QoR summary, %d circuits)@." path (List.length results)

let () =
  let t0 = Obs.Clock.now_s () in
  printf "HiDaP benchmark harness — reproduces every table and figure of the paper.@.";
  if fast_mode then printf "(HIDAP_BENCH_FAST set: suite restricted to c1/c5)@.";
  table1 ();
  let results, speed = tables_2_3 () in
  fig1 ();
  figs_2_3 ();
  fig4 ();
  figs_5_6 ();
  fig7 ();
  fig8 ();
  fig9 results;
  ablations ();
  observability ();
  let overhead_pct = overhead_check () in
  let attribution_pct = attribution_check () in
  parallel_speedup ();
  let speed = speed @ incremental_check () in
  speed_table speed;
  let serve = serve_bench () in
  bechamel_benches ();
  let elapsed_s = Obs.Clock.now_s () -. t0 in
  suite_summary results ~speed ~overhead_pct ~attribution_pct ~serve ~elapsed_s;
  printf "@.total bench time: %.1fs@." elapsed_s
