module D = Netlist.Design

type error = { line : int; col : int; message : string }

exception Parse_error of error

type state = { mutable toks : (Lexer.token * Lexer.pos) list }

let peek st =
  match st.toks with
  | (t, pos) :: _ -> (t, pos)
  | [] -> (Lexer.Eof, { Lexer.line = 0; col = 0 })

let advance st =
  match st.toks with
  | _ :: rest -> st.toks <- rest
  | [] -> ()

let fail (pos : Lexer.pos) message =
  raise (Parse_error { line = pos.Lexer.line; col = pos.Lexer.col; message })

let expect st tok =
  let t, pos = peek st in
  if t = tok then advance st
  else
    fail pos
      (Printf.sprintf "expected %s, found %s" (Lexer.token_to_string tok)
         (Lexer.token_to_string t))

let ident st =
  match peek st with
  | Lexer.Ident s, _ ->
    advance st;
    s
  | t, pos -> fail pos (Printf.sprintf "expected identifier, found %s" (Lexer.token_to_string t))

let number st =
  match peek st with
  | Lexer.Number f, _ ->
    advance st;
    f
  | t, pos -> fail pos (Printf.sprintf "expected number, found %s" (Lexer.token_to_string t))

let ident_list st =
  let rec loop acc =
    match peek st with
    | Lexer.Ident s, _ ->
      advance st;
      loop (s :: acc)
    | _ -> List.rev acc
  in
  loop []

(* pins := "(" ["in" IDENT*] [";"] ["out" IDENT*] ")" *)
let pins st =
  expect st Lexer.Lparen;
  let ins =
    match peek st with
    | Lexer.Kw_in, _ ->
      advance st;
      ident_list st
    | _ -> []
  in
  (match peek st with Lexer.Semi, _ -> advance st | _ -> ());
  let outs =
    match peek st with
    | Lexer.Kw_out, _ ->
      advance st;
      ident_list st
    | _ -> []
  in
  expect st Lexer.Rparen;
  (ins, outs)

let binding st =
  let formal = ident st in
  expect st Lexer.Arrow;
  let actual = ident st in
  (formal, actual)

let bindings st =
  expect st Lexer.Lparen;
  let rec loop acc =
    match peek st with
    | Lexer.Rparen, _ ->
      advance st;
      List.rev acc
    | Lexer.Comma, _ ->
      advance st;
      loop acc
    | _ -> loop (binding st :: acc)
  in
  loop []

type item =
  | Iport of D.port_decl
  | Icell of D.cell_decl
  | Iinst of D.inst_decl

let item st =
  match peek st with
  | Lexer.Kw_input, _ ->
    advance st;
    Some (Iport (D.port ~name:(ident st) ~dir:D.Input))
  | Lexer.Kw_output, _ ->
    advance st;
    Some (Iport (D.port ~name:(ident st) ~dir:D.Output))
  | Lexer.Kw_macro, _ ->
    advance st;
    let name = ident st in
    expect st Lexer.Kw_size;
    let w = number st in
    let h = number st in
    let ins, outs = pins st in
    Some (Icell (D.cell ~name ~kind:(D.make_macro ~w ~h) ~ins ~outs ()))
  | Lexer.Kw_flop, _ ->
    advance st;
    let name = ident st in
    let area =
      match peek st with
      | Lexer.Kw_area, _ ->
        advance st;
        Some (number st)
      | _ -> None
    in
    let ins, outs = pins st in
    Some (Icell (D.cell ~name ~kind:D.Flop ?area ~ins ~outs ()))
  | Lexer.Kw_comb, _ ->
    advance st;
    let name = ident st in
    let area =
      match peek st with
      | Lexer.Kw_area, _ ->
        advance st;
        Some (number st)
      | _ -> None
    in
    let ins, outs = pins st in
    Some (Icell (D.cell ~name ~kind:D.Comb ?area ~ins ~outs ()))
  | Lexer.Kw_inst, _ ->
    advance st;
    let name = ident st in
    expect st Lexer.Colon;
    let module_ = ident st in
    let bs = bindings st in
    Some (Iinst (D.inst ~name ~module_ ~bindings:bs))
  | _ -> None

let module_ st =
  expect st Lexer.Kw_module;
  let name = ident st in
  expect st Lexer.Lbrace;
  let rec loop ports cells insts =
    match item st with
    | Some (Iport p) -> loop (p :: ports) cells insts
    | Some (Icell c) -> loop ports (c :: cells) insts
    | Some (Iinst i) -> loop ports cells (i :: insts)
    | None ->
      expect st Lexer.Rbrace;
      D.module_def ~name ~ports:(List.rev ports) ~cells:(List.rev cells)
        ~insts:(List.rev insts) ()
  in
  loop [] [] []

let design st =
  expect st Lexer.Kw_design;
  let top = ident st in
  let rec loop acc =
    match peek st with
    | Lexer.Eof, _ -> List.rev acc
    | _ -> loop (module_ st :: acc)
  in
  let modules = loop [] in
  D.design ~top ~modules

let parse_string src =
  Obs.Span.with_ ~name:"hnl.parse" (fun () ->
      Obs.Span.attr_int "bytes" (String.length src);
      Obs.Metrics.counter "hnl.bytes_parsed" (String.length src);
      match
        let toks = Lexer.tokenize src in
        design { toks }
      with
      | d -> Ok d
      | exception Parse_error e -> Error e
      | exception Lexer.Lex_error { Lexer.line; col; message } ->
        Error { line; col; message })

let parse_file path =
  Obs.Span.with_ ~name:"hnl.parse_file" (fun () ->
      Obs.Span.attr_str "path" path;
      Obs.Metrics.counter "hnl.files_parsed" 1;
      let ic = open_in path in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      parse_string src)

let parse_exn src =
  match parse_string src with
  | Ok d -> d
  | Error e -> raise (Parse_error e)
