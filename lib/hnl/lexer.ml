type token =
  | Kw_design
  | Kw_module
  | Kw_input
  | Kw_output
  | Kw_macro
  | Kw_flop
  | Kw_comb
  | Kw_inst
  | Kw_size
  | Kw_area
  | Kw_in
  | Kw_out
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Colon
  | Arrow
  | Ident of string
  | Number of float
  | Eof

type pos = { line : int; col : int }

type error = { line : int; col : int; message : string }

exception Lex_error of error

let keyword_of_string = function
  | "design" -> Some Kw_design
  | "module" -> Some Kw_module
  | "input" -> Some Kw_input
  | "output" -> Some Kw_output
  | "macro" -> Some Kw_macro
  | "flop" -> Some Kw_flop
  | "comb" -> Some Kw_comb
  | "inst" -> Some Kw_inst
  | "size" -> Some Kw_size
  | "area" -> Some Kw_area
  | "in" -> Some Kw_in
  | "out" -> Some Kw_out
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '[' || c = ']' || c = '/' || c = '.'
  || c = '-'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  (* Index of the first character of the current line; the column of
     the character at [i] is [i - bol + 1]. *)
  let bol = ref 0 in
  let i = ref 0 in
  let col_at i = i - !bol + 1 in
  let emit_at start t = toks := (t, { line = !line; col = col_at start }) :: !toks in
  let emit t = emit_at !i t in
  let fail_at start message =
    raise (Lex_error { line = !line; col = col_at start; message })
  in
  let fail message = fail_at !i message in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '{' then begin emit Lbrace; incr i end
    else if c = '}' then begin emit Rbrace; incr i end
    else if c = '(' then begin emit Lparen; incr i end
    else if c = ')' then begin emit Rparen; incr i end
    else if c = ';' then begin emit Semi; incr i end
    else if c = ',' then begin emit Comma; incr i end
    else if c = ':' then begin emit Colon; incr i end
    else if c = '=' then begin
      if !i + 1 < n && src.[!i + 1] = '>' then begin
        emit Arrow;
        i := !i + 2
      end
      else fail "expected '=>' after '='"
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && (is_digit src.[!i] || src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = '-'
                       && !i > start && (src.[!i - 1] = 'e')) do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      match float_of_string_opt s with
      | Some f -> emit_at start (Number f)
      | None -> fail_at start (Printf.sprintf "bad number %S" s)
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      match keyword_of_string s with
      | Some kw -> emit_at start kw
      | None -> emit_at start (Ident s)
    end
    else fail (Printf.sprintf "illegal character %C" c)
  done;
  emit Eof;
  List.rev !toks

let token_to_string = function
  | Kw_design -> "design"
  | Kw_module -> "module"
  | Kw_input -> "input"
  | Kw_output -> "output"
  | Kw_macro -> "macro"
  | Kw_flop -> "flop"
  | Kw_comb -> "comb"
  | Kw_inst -> "inst"
  | Kw_size -> "size"
  | Kw_area -> "area"
  | Kw_in -> "in"
  | Kw_out -> "out"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lparen -> "("
  | Rparen -> ")"
  | Semi -> ";"
  | Comma -> ","
  | Colon -> ":"
  | Arrow -> "=>"
  | Ident s -> s
  | Number f -> string_of_float f
  | Eof -> "<eof>"
