(** Recursive-descent parser for HNL.

    Grammar (comments start with [#]):
    {v
    design  := "design" IDENT module*
    module  := "module" IDENT "{" item* "}"
    item    := "input" IDENT
             | "output" IDENT
             | "macro" IDENT "size" NUM NUM pins
             | "flop" IDENT ["area" NUM] pins
             | "comb" IDENT ["area" NUM] pins
             | "inst" IDENT ":" IDENT "(" [binding ("," binding)*] ")"
    pins    := "(" ["in" IDENT*] [";"] ["out" IDENT*] ")"
    binding := IDENT "=>" IDENT
    v} *)

type error = { line : int; col : int; message : string }
(** 1-based position of the offending token's first character. *)

exception Parse_error of error

val parse_string : string -> (Netlist.Design.t, error) result
(** Parse HNL source text. Lexical errors are reported through the same
    [error] type. *)

val parse_file : string -> (Netlist.Design.t, error) result

val parse_exn : string -> Netlist.Design.t
(** @raise Parse_error on malformed input. *)
