(** Lexer for the HNL structural netlist format. *)

type token =
  | Kw_design
  | Kw_module
  | Kw_input
  | Kw_output
  | Kw_macro
  | Kw_flop
  | Kw_comb
  | Kw_inst
  | Kw_size
  | Kw_area
  | Kw_in
  | Kw_out
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Semi
  | Comma
  | Colon
  | Arrow  (** [=>] in instance bindings *)
  | Ident of string
  | Number of float
  | Eof

type pos = { line : int; col : int }
(** 1-based line and column of a token's first character. *)

type error = { line : int; col : int; message : string }

exception Lex_error of error

val tokenize : string -> (token * pos) list
(** Token stream with 1-based line/column positions; ends with [Eof].
    [#] starts a comment running to end of line. Raises {!Lex_error}
    (carrying the offending position) on an illegal character or a
    malformed number. *)

val token_to_string : token -> string
