(* Legalization moved into the core library so the flow's degraded-run
   repair can use it; re-exported here for existing baseline callers. *)
include Hidap.Legalize
