module Flat = Netlist.Flat
module Rect = Geom.Rect
module Point = Geom.Point

type placement = {
  fid : int;
  rect : Rect.t;
  orient : Geom.Orientation.t;
}

type params = {
  moves_per_macro : int;
  seed : int;
  overlap_weight_factor : float;
}

let default_params = { moves_per_macro = 3000; seed = 99; overlap_weight_factor = 8.0 }

(* Dataflow affinity with every macro as its own block and ports fixed —
   the flat view an expert iterates against. *)
let macro_affinity ~gseq ~macro_gids ~port_gids =
  let n = Array.length macro_gids in
  let index = Hashtbl.create n in
  Array.iteri (fun i g -> Hashtbl.replace index g i) macro_gids;
  let block_of_node g = match Hashtbl.find_opt index g with Some i -> i | None -> -1 in
  let gdf = Dataflow.Gdf.build gseq ~n_blocks:n ~block_of_node ~fixed:port_gids in
  Dataflow.Gdf.affinity_matrix gdf ~lambda:0.5 ~k:2 ()

let place ?(params = default_params) ~flat ~gseq ~ports ~die () =
  let macro_gids =
    Array.to_list gseq.Seqgraph.nodes
    |> List.filter_map (fun (nd : Seqgraph.node) ->
           match nd.Seqgraph.kind with
           | Seqgraph.Macro _ -> Some nd.Seqgraph.id
           | Seqgraph.Register _ | Seqgraph.Port _ -> None)
    |> Array.of_list
  in
  let n = Array.length macro_gids in
  if n = 0 then []
  else begin
    let fid_of =
      Array.map
        (fun gid ->
          match gseq.Seqgraph.nodes.(gid).Seqgraph.kind with
          | Seqgraph.Macro fid -> fid
          | Seqgraph.Register _ | Seqgraph.Port _ -> assert false)
        macro_gids
    in
    let dims =
      Array.map
        (fun fid ->
          match flat.Flat.nodes.(fid).Flat.kind with
          | Flat.Kmacro info -> (info.Netlist.Design.mw, info.Netlist.Design.mh)
          | Flat.Kflop | Flat.Kcomb | Flat.Kport _ -> assert false)
        fid_of
    in
    let port_gids = Array.of_list (Hidap.Port_plan.port_nodes ports) in
    let aff = macro_affinity ~gseq ~macro_gids ~port_gids in
    let port_pos =
      Array.map
        (fun gid ->
          match Hidap.Port_plan.gseq_pos ports gid with
          | Some p -> p
          | None -> Rect.center die)
        port_gids
    in
    (* sparse per-macro pair lists *)
    let pairs = Array.make n [] in
    for i = 0 to n - 1 do
      for j = 0 to n + Array.length port_gids - 1 do
        if j <> i then begin
          let w = aff.(i).(j) in
          if w > 1e-12 then pairs.(i) <- (j, w) :: pairs.(i)
        end
      done
    done;
    let rng = Util.Rng.create params.seed in
    (* state: macro centres *)
    let cx = Array.make n 0.0 and cy = Array.make n 0.0 in
    let lo_x i = die.Rect.x +. (fst dims.(i) /. 2.0) in
    let hi_x i = die.Rect.x +. die.Rect.w -. (fst dims.(i) /. 2.0) in
    let lo_y i = die.Rect.y +. (snd dims.(i) /. 2.0) in
    let hi_y i = die.Rect.y +. die.Rect.h -. (snd dims.(i) /. 2.0) in
    for i = 0 to n - 1 do
      cx.(i) <- Util.Rng.float rng die.Rect.w +. die.Rect.x;
      cy.(i) <- Util.Rng.float rng die.Rect.h +. die.Rect.y;
      cx.(i) <- Util.Stat.clamp ~lo:(lo_x i) ~hi:(max (lo_x i) (hi_x i)) cx.(i);
      cy.(i) <- Util.Stat.clamp ~lo:(lo_y i) ~hi:(max (lo_y i) (hi_y i)) cy.(i)
    done;
    let rect_of i =
      let w, h = dims.(i) in
      Rect.make ~x:(cx.(i) -. (w /. 2.0)) ~y:(cy.(i) -. (h /. 2.0)) ~w ~h
    in
    let pos j = if j < n then Point.make cx.(j) cy.(j) else port_pos.(j - n) in
    (* incremental cost pieces *)
    let wl_of i =
      List.fold_left
        (fun acc (j, w) -> acc +. (w *. Point.manhattan (Point.make cx.(i) cy.(i)) (pos j)))
        0.0 pairs.(i)
    in
    let ov_of i =
      let r = rect_of i in
      let acc = ref 0.0 in
      for j = 0 to n - 1 do
        if j <> i then acc := !acc +. Rect.intersection_area r (rect_of j)
      done;
      !acc
    in
    let total_wl () =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        acc := !acc +. wl_of i
      done;
      (* macro-macro pairs counted twice; ports once — close enough for a
         weight scale, and the SA only ever uses deltas *)
      !acc
    in
    let macro_area =
      Array.fold_left (fun acc (w, h) -> acc +. (w *. h)) 0.0 dims
    in
    let ov_w =
      params.overlap_weight_factor *. max 1e-9 (total_wl ()) /. max 1e-9 macro_area
    in
    (* annealing with incremental deltas *)
    let max_moves = params.moves_per_macro * n in
    let temp = ref 0.0 in
    (* calibrate: sample displacement deltas *)
    let sample_delta () =
      let i = Util.Rng.int rng n in
      let ox = cx.(i) and oy = cy.(i) in
      let before = wl_of i +. (ov_w *. ov_of i) in
      cx.(i) <- Util.Stat.clamp ~lo:(lo_x i) ~hi:(max (lo_x i) (hi_x i))
          (ox +. Util.Rng.gaussian rng ~mean:0.0 ~stddev:(die.Rect.w /. 8.0));
      cy.(i) <- Util.Stat.clamp ~lo:(lo_y i) ~hi:(max (lo_y i) (hi_y i))
          (oy +. Util.Rng.gaussian rng ~mean:0.0 ~stddev:(die.Rect.h /. 8.0));
      let after = wl_of i +. (ov_w *. ov_of i) in
      cx.(i) <- ox;
      cy.(i) <- oy;
      after -. before
    in
    let up = ref 0.0 and nu = ref 0 in
    for _ = 1 to 32 do
      let d = sample_delta () in
      if d > 0.0 then begin
        up := !up +. d;
        incr nu
      end
    done;
    temp := if !nu > 0 then -. (!up /. float_of_int !nu) /. log 0.8 else 1.0;
    let t0 = !temp in
    let moves_per_plateau = max 32 (4 * n) in
    let sigma () = max 2.0 (die.Rect.w /. 4.0 *. (!temp /. t0)) in
    let moves = ref 0 in
    while !moves < max_moves && !temp > 1e-5 *. t0 do
      for _ = 1 to moves_per_plateau do
        if !moves < max_moves then begin
          incr moves;
          if Util.Rng.float rng 1.0 < 0.8 then begin
            (* displace *)
            let i = Util.Rng.int rng n in
            let ox = cx.(i) and oy = cy.(i) in
            let before = wl_of i +. (ov_w *. ov_of i) in
            cx.(i) <- Util.Stat.clamp ~lo:(lo_x i) ~hi:(max (lo_x i) (hi_x i))
                (ox +. Util.Rng.gaussian rng ~mean:0.0 ~stddev:(sigma ()));
            cy.(i) <- Util.Stat.clamp ~lo:(lo_y i) ~hi:(max (lo_y i) (hi_y i))
                (oy +. Util.Rng.gaussian rng ~mean:0.0 ~stddev:(sigma ()));
            let after = wl_of i +. (ov_w *. ov_of i) in
            let delta = after -. before in
            let accept =
              delta <= 0.0 || Util.Rng.float rng 1.0 < exp (-.delta /. !temp)
            in
            if not accept then begin
              cx.(i) <- ox;
              cy.(i) <- oy
            end
          end
          else begin
            (* swap two macro centres *)
            let i = Util.Rng.int rng n and j = Util.Rng.int rng n in
            if i <> j then begin
              let before = wl_of i +. wl_of j +. (ov_w *. (ov_of i +. ov_of j)) in
              let sx = cx.(i) and sy = cy.(i) in
              cx.(i) <- cx.(j); cy.(i) <- cy.(j);
              cx.(j) <- sx; cy.(j) <- sy;
              cx.(i) <- Util.Stat.clamp ~lo:(lo_x i) ~hi:(max (lo_x i) (hi_x i)) cx.(i);
              cy.(i) <- Util.Stat.clamp ~lo:(lo_y i) ~hi:(max (lo_y i) (hi_y i)) cy.(i);
              cx.(j) <- Util.Stat.clamp ~lo:(lo_x j) ~hi:(max (lo_x j) (hi_x j)) cx.(j);
              cy.(j) <- Util.Stat.clamp ~lo:(lo_y j) ~hi:(max (lo_y j) (hi_y j)) cy.(j);
              let after = wl_of i +. wl_of j +. (ov_w *. (ov_of i +. ov_of j)) in
              let delta = after -. before in
              let accept =
                delta <= 0.0 || Util.Rng.float rng 1.0 < exp (-.delta /. !temp)
              in
              if not accept then begin
                cx.(j) <- cx.(i); cy.(j) <- cy.(i);
                cx.(i) <- sx; cy.(i) <- sy
              end
            end
          end
        end
      done;
      temp := !temp *. 0.95
    done;
    (* legalize and orient *)
    let rects = Legalize.separate ~die (Array.init n rect_of) in
    (* The oracle never rotates macros, so every base orientation is R0. *)
    let macros =
      Array.to_list
        (Array.mapi (fun i r -> (fid_of.(i), r, Geom.Orientation.R0)) rects)
    in
    let empty_ht = Hashtbl.create 1 in
    (* Flipping needs an HT for register positions; with none available,
       registers default to the die centre, which is adequate for the
       oracle's orientation pass. *)
    let tree = Hier.Tree.build flat in
    let flip =
      Hidap.Flipping.run ~tree ~gseq ~ports ~macros ~ht_rects:empty_ht ~die
        ~config:Hidap.Config.default
    in
    let orient_of = Hashtbl.create n in
    List.iter (fun (fid, o) -> Hashtbl.replace orient_of fid o) flip.Hidap.Flipping.orientations;
    List.map
      (fun (fid, rect, base) ->
        let orient =
          match Hashtbl.find_opt orient_of fid with
          | Some o -> o
          | None -> base
        in
        { fid; rect; orient })
      macros
  end
