(** Re-export of {!Hidap.Legalize} (the legalizer lives in core so the
    supervised flow can repair degraded placements with it). *)

include module type of Hidap.Legalize
