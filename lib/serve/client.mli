(** Blocking client for the hidap-serve Unix socket.

    One connection carries any number of request/response exchanges.
    Used by [hidap submit] / [hidap jobs], the bench load generator
    and the tests. Every call returns [Error _] on protocol or
    transport failure — connection problems never raise past
    {!connect}. *)

type t

val connect : socket_path:string -> t
(** Raises [Unix.Unix_error] when the socket is absent or refused. *)

val close : t -> unit

val request : t -> Proto.request -> (Proto.response, string) result
(** One raw exchange (for tests; prefer the typed wrappers). *)

val ping : t -> (unit, string) result

val submit :
  t ->
  Proto.submit ->
  ([ `Accepted of string * int | `Rejected of string * int * int ], string) result
(** [`Accepted (id, depth)] or [`Rejected (reason, depth, limit)] —
    a backpressure/draining rejection is a normal answer, not an
    error. *)

val status : t -> string -> (Proto.job_view, string) result

val list : t -> (Proto.job_view list, string) result

val stats : t -> (Proto.stats, string) result

val result : t -> string -> (Obs.Jsonx.t, string) result
(** The completed job's QoR ledger document. *)

val report : t -> string -> (string, string) result
(** The completed job's HTML report. *)

val drain : t -> (unit, string) result

val watch :
  t -> string -> on_event:(Obs.Jsonx.t -> unit) -> (Proto.job_view, string) result
(** Stream the job's relayed progress events through [on_event] until
    it reaches a terminal state; returns the terminal view. The
    connection is dedicated to the watch from this call on. *)

val wait :
  ?poll_s:float -> ?timeout_s:float -> t -> string -> (Proto.job_view, string) result
(** Poll [status] until the job is terminal (default 50 ms period,
    120 s timeout). *)
