(** Blocking client for the hidap-serve Unix socket.

    One connection carries any number of request/response exchanges.
    Used by [hidap submit] / [hidap jobs], the bench load generator
    and the tests. Every call returns [Error _] on protocol or
    transport failure — connection problems never raise past
    {!connect}. *)

(** [Conn] — the conversation with the daemon broke: connection
    refused, EOF mid-exchange (the daemon died), or a failed send.
    The CLI maps these to its daemon-unreachable exit code (7).
    [Remote] — the daemon answered with an error, or broke protocol. *)
type error = Conn of string | Remote of string

val error_message : error -> string

val is_conn : error -> bool

type t

val connect : socket_path:string -> t
(** Raises [Unix.Unix_error] when the socket is absent or refused. *)

val close : t -> unit

val request : t -> Proto.request -> (Proto.response, error) result
(** One raw exchange (for tests; prefer the typed wrappers). *)

val ping : t -> (unit, error) result

val submit :
  t ->
  Proto.submit ->
  ([ `Accepted of string * int | `Rejected of string * int * int ], error) result
(** [`Accepted (id, depth)] or [`Rejected (reason, depth, limit)] —
    a backpressure/draining rejection is a normal answer, not an
    error. *)

val status : t -> string -> (Proto.job_view, error) result

val list : t -> (Proto.job_view list, error) result

val stats : t -> (Proto.stats, error) result

val result : t -> string -> (Obs.Jsonx.t, error) result
(** The completed job's QoR ledger document. *)

val report : t -> string -> (string, error) result
(** The completed job's HTML report. *)

val drain : t -> (unit, error) result

val watch :
  t -> string -> on_event:(Obs.Jsonx.t -> unit) -> (Proto.job_view, error) result
(** Stream the job's relayed progress events through [on_event] until
    it reaches a terminal state; returns the terminal view. The
    connection is dedicated to the watch from this call on — a [Conn]
    error means the daemon died while the job was in flight. *)

val wait :
  ?poll_s:float -> ?timeout_s:float -> t -> string -> (Proto.job_view, error) result
(** Poll [status] until the job is terminal (default 50 ms period,
    120 s timeout). *)
