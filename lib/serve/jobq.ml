(* Bounded priority queue between the accept loop and the worker.

   A mutex + condition around a small list: queue depths are bounded
   by admission control (the whole point), so linear scans beat a heap
   on clarity. Ordering is priority descending, then submission
   sequence ascending (FIFO within a priority). An entry can carry a
   ready time in the future (retry backoff); [pop] never returns it
   early.

   OCaml's Condition has no timed wait, so when every queued entry is
   still backing off the consumer polls with short bounded sleeps
   instead of blocking on the condition (which only push/close
   signal). *)

type 'a entry = { priority : int; seq : int; ready_s : float; v : 'a }

type 'a t = {
  lock : Mutex.t;
  cond : Condition.t;
  limit : int;
  mutable entries : 'a entry list;
  mutable closed : bool;
}

type push_result = Enqueued of int | Full of int

let create ~limit =
  { lock = Mutex.create (); cond = Condition.create ();
    limit = max 1 limit; entries = []; closed = false }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let depth t = locked t (fun () -> List.length t.entries)

let limit t = t.limit

let insert t ~priority ~seq ~ready_s v =
  t.entries <- { priority; seq; ready_s; v } :: t.entries;
  Condition.broadcast t.cond

let push t ~priority ~seq ?(ready_s = 0.0) v =
  locked t (fun () ->
      let d = List.length t.entries in
      if t.closed || d >= t.limit then Full d
      else begin
        insert t ~priority ~seq ~ready_s v;
        Enqueued (d + 1)
      end)

(* Retries and crash recovery re-enter the queue past the admission
   bound: the job was already admitted once, and dropping it would
   turn a transient fault into a lost job. *)
let force_push t ~priority ~seq ?(ready_s = 0.0) v =
  locked t (fun () -> if not t.closed then insert t ~priority ~seq ~ready_s v)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cond)

let best_ready ~now entries =
  List.fold_left
    (fun acc e ->
      if e.ready_s > now then acc
      else
        match acc with
        | Some b
          when b.priority > e.priority
               || (b.priority = e.priority && b.seq < e.seq) ->
          acc
        | _ -> Some e)
    None entries

(* Non-blocking pop for the daemon's single-domain select loop, which
   must never sleep in the queue: it owns accept, relay and reaping
   too. Backing-off entries simply stay put until a later tick. *)
let try_pop t =
  locked t (fun () ->
      if t.closed then None
      else
        let now = Unix.gettimeofday () in
        match best_ready ~now t.entries with
        | Some e ->
          t.entries <- List.filter (fun x -> x != e) t.entries;
          Some e.v
        | None -> None)

let rec pop t =
  Mutex.lock t.lock;
  if t.closed then begin
    (* Close means drain: entries left in the queue are NOT handed
       out — they stay persisted as pending for the next daemon. *)
    Mutex.unlock t.lock;
    None
  end
  else begin
    let now = Unix.gettimeofday () in
    match best_ready ~now t.entries with
    | Some e ->
      t.entries <- List.filter (fun x -> x != e) t.entries;
      Mutex.unlock t.lock;
      Some e.v
    | None ->
      if t.entries = [] then Condition.wait t.cond t.lock
      else begin
        (* Only backing-off entries: poll on a short bounded sleep. *)
        Mutex.unlock t.lock;
        Unix.sleepf 0.02;
        Mutex.lock t.lock
      end;
      Mutex.unlock t.lock;
      pop t
  end
