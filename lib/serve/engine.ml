(* The hidap serve daemon engine.

   One process, one domain, many worker processes. The daemon itself
   is a single-domain select loop — accept, framing, request handling,
   progress relay, spawn/reap/watchdog — and every job attempt runs in
   a forked child (Worker.exec) supervised through Pool. That split is
   load-bearing twice over:

   - containment: a job can segfault, OOM, spin forever or be SIGKILLed
     and the daemon only ever observes an exit status and a closed
     pipe; Worker.classify turns every possible death into a verdict
     (done / invalid / timed-out / parked / rlimit-failed / retry);
   - concurrency: Guard.Budget's deadline/cancel cells are process
     globals, which is what forced PR 9 to run jobs serially; a fresh
     process per attempt makes them per-job, so --workers N runs N
     jobs genuinely in parallel.

   The parent must stay fork-safe: OCaml 5 refuses Unix.fork in any
   process that has EVER created a domain, so nothing here may call
   Domain.spawn (children may — Parexec and the stream heartbeat live
   on the other side of the fork).

   Robustness model:
   - admission control: a bounded Jobq; the N+1th submit gets a
     structured backpressure rejection, memory stays bounded;
   - per-job rlimits: --job-mem-mb / --job-cpu-s cap each child's
     address space and CPU; exhaustion is deterministic, so those jobs
     fail with an rlimit classification instead of retrying;
   - per-job deadlines: enforced inside the child (Guard.Budget) with
     a parent-side watchdog backstop that SIGKILLs a child running
     past deadline + grace — a wedged worker cannot hold a slot;
   - hung-job watchdog: the stream heartbeat (0.5 s) makes pipe bytes
     a liveness signal; a child silent past --job-stall-s is killed
     and its job retried with a serve-worker-lost note;
   - retry: transient failures and lost workers re-enqueue with
     deterministic capped exponential backoff up to max_retries;
   - drain: stop admitting; grace for in-flight jobs to finish; then
     SIGTERM (cooperative checkpoint-and-park); then SIGKILL, with the
     job re-pended — undone work always survives on disk;
   - crash recovery: pending/running/parked jobs found in the state
     dir are re-enqueued; Ckpt stores make resumed placements
     bit-identical. A leftover socket is probed: unlinked when dead,
     refused with a structured serve-socket-busy diag when live.

   Engine-level fault sites use *transient* semantics: a spec [site:N]
   fails the first N hits and then heals (flow sites keep their usual
   fire-from-hit-N-on meaning). serve.accept / serve.write fire in the
   parent; serve.worker / serve.worker_kill / serve.worker_hang are
   counted in the parent (per spawn) and executed in the child, which
   is what lets a single spec span retries. DESIGN.md §15. *)

module J = Obs.Jsonx

type config = {
  socket_path : string;
  state_dir : string;
  queue_limit : int;
  workers : int;
  drain_grace_s : float;
  retry_base_s : float;
  retry_cap_s : float;
  max_line_bytes : int;
  default_job_jobs : int;
  job_mem_mb : int option;
  job_cpu_s : int option;
  stall_s : float;
  deadline_grace_s : float;
  faults : Guard.Fault.spec list;
}

let default_config ~socket_path ~state_dir =
  { socket_path; state_dir; queue_limit = 8; workers = 1; drain_grace_s = 5.0;
    retry_base_s = 0.05; retry_cap_s = 2.0; max_line_bytes = 1 lsl 20;
    default_job_jobs = 1; job_mem_mb = None; job_cpu_s = None; stall_s = 30.0;
    deadline_grace_s = 2.0; faults = [] }

(* Single-domain now: plain ints, mutated only from the select loop. *)
type counters = {
  mutable accepted : int;
  mutable rejected_backpressure : int;
  mutable rejected_draining : int;
  mutable completed : int;
  mutable failed : int;
  mutable timed_out : int;
  mutable parked : int;
  mutable retried : int;
  mutable worker_lost : int;
}

type t = {
  cfg : config;
  jobs : (string, Job.t) Hashtbl.t;
  mutable next_seq : int;
  q : Job.t Jobq.t;
  c : counters;
  drain_req : bool Atomic.t;  (* set from the SIGTERM/SIGINT handler *)
  mutable draining : bool;
  (* serve.* specs with persistent cross-job hit counters (transient
     semantics: fire while hits <= nth, then heal). *)
  serve_faults : (Guard.Fault.spec * int ref) array;
  job_faults : Guard.Fault.spec list;  (* flow sites, armed in the child *)
  pool : Pool.t;
  listen_fd : Unix.file_descr;
}

let fault t site =
  Array.iter
    (fun ((spec : Guard.Fault.spec), count) ->
      if spec.Guard.Fault.site = site then begin
        incr count;
        if !count <= spec.Guard.Fault.nth then
          match spec.Guard.Fault.action with
          | Guard.Fault.Raise -> raise (Guard.Fault.Injected { site; hit = !count })
          | Guard.Fault.Stall s -> Unix.sleepf s
      end)
    t.serve_faults

(* Consume one hit of [site]'s spec (if armed and still firing) and
   return its action. Worker-site hits are counted here, per spawn,
   but executed in the child — the parent-side counter is what lets
   one [serve.worker:1] spec fail the first attempt and heal for the
   retry even though each attempt is a fresh process. *)
let fire_spec t site =
  let result = ref None in
  Array.iter
    (fun ((spec : Guard.Fault.spec), count) ->
      if spec.Guard.Fault.site = site && !result = None then begin
        incr count;
        if !count <= spec.Guard.Fault.nth then result := Some spec.Guard.Fault.action
      end)
    t.serve_faults;
  !result

let decide_inject t =
  match fire_spec t "serve.worker_hang" with
  | Some _ -> Worker.Inj_hang
  | None ->
    (match fire_spec t "serve.worker_kill" with
    | Some (Guard.Fault.Stall d) -> Worker.Inj_kill d
    | Some Guard.Fault.Raise -> Worker.Inj_kill 0.25
    | None ->
      (match fire_spec t "serve.worker" with
      | Some Guard.Fault.Raise -> Worker.Inj_fail
      | Some (Guard.Fault.Stall s) -> Worker.Inj_stall s
      | None -> Worker.Inj_none))

let is_serve_site (spec : Guard.Fault.spec) =
  String.length spec.Guard.Fault.site >= 6
  && String.sub spec.Guard.Fault.site 0 6 = "serve."

let log t fmt =
  ignore t;
  Format.eprintf ("hidap serve: " ^^ fmt ^^ "@.")

(* ---- stale-socket recovery ----------------------------------------- *)

(* A daemon that was kill -9ed leaves its socket file behind; binding
   would fail with EADDRINUSE. Probe it: a live daemon answers the
   connect and must not be robbed of its socket; a dead one refuses,
   and the leftover is safe to unlink. Anything unprobeable (not a
   socket, permissions) is refused too — never delete what we cannot
   prove is ours and dead. *)
let probe_socket path =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e)
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match Unix.connect fd (Unix.ADDR_UNIX path) with
        | () -> `Live
        | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> `Dead
        | exception Unix.Unix_error (Unix.ENOENT, _, _) -> `Gone
        | exception Unix.Unix_error (e, _, _) -> `Error (Unix.error_message e))

let create cfg =
  (* EPIPE must surface as an exception on the write path, never kill
     the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Job.mkdir_p (Filename.concat cfg.state_dir "jobs");
  let serve_specs, job_faults = List.partition is_serve_site cfg.faults in
  if Sys.file_exists cfg.socket_path then begin
    match probe_socket cfg.socket_path with
    | `Live ->
      raise
        (Guard.Diag.Fail
           (Guard.Diag.error ~code:"serve-socket-busy" ~stage:"serve"
              (Printf.sprintf
                 "%s: a live daemon already answers on this socket; refusing \
                  to steal it"
                 cfg.socket_path)))
    | `Error msg ->
      raise
        (Guard.Diag.Fail
           (Guard.Diag.error ~code:"serve-socket-busy" ~stage:"serve"
              (Printf.sprintf
                 "%s: cannot probe the existing socket path (%s); remove it \
                  manually if no daemon owns it"
                 cfg.socket_path msg)))
    | `Dead ->
      Format.eprintf
        "hidap serve: removing stale socket %s (no daemon answered)@."
        cfg.socket_path;
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
    | `Gone -> ()
  end;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 16;
  let t =
    { cfg; jobs = Hashtbl.create 16; next_seq = 1;
      q = Jobq.create ~limit:cfg.queue_limit;
      c =
        { accepted = 0; rejected_backpressure = 0; rejected_draining = 0;
          completed = 0; failed = 0; timed_out = 0; parked = 0; retried = 0;
          worker_lost = 0 };
      drain_req = Atomic.make false; draining = false;
      serve_faults = Array.of_list (List.map (fun s -> (s, ref 0)) serve_specs);
      job_faults;
      pool =
        Pool.create ~size:cfg.workers ~stall_s:cfg.stall_s
          ~deadline_grace_s:cfg.deadline_grace_s;
      listen_fd }
  in
  (* Crash recovery: every job that was pending, running or parked
     when the previous daemon died is re-enqueued as pending. Its
     attempts survive; its checkpoint store makes the resumed
     placement bit-identical. Terminal jobs stay queryable. *)
  List.iter
    (fun (j : Job.t) ->
      Hashtbl.replace t.jobs j.Job.id j;
      if j.Job.seq >= t.next_seq then t.next_seq <- j.Job.seq + 1;
      match j.Job.state with
      | Proto.Pending | Proto.Running | Proto.Parked ->
        let note =
          match j.Job.state with
          | Proto.Running -> "recovered after crash"
          | Proto.Parked -> "resumed after drain"
          | _ -> j.Job.detail
        in
        j.Job.state <- Proto.Pending;
        j.Job.detail <- note;
        Job.save ~state_dir:cfg.state_dir j;
        Jobq.force_push t.q ~priority:j.Job.spec.Proto.priority ~seq:j.Job.seq j
      | Proto.Done | Proto.Failed | Proto.Timed_out -> ())
    (Job.load_all ~state_dir:cfg.state_dir);
  t

let request_drain t = Atomic.set t.drain_req true

let stats t =
  { Proto.queue_depth = Jobq.depth t.q; queue_limit = Jobq.limit t.q;
    accepted = t.c.accepted;
    rejected_backpressure = t.c.rejected_backpressure;
    rejected_draining = t.c.rejected_draining;
    completed = t.c.completed;
    failed = t.c.failed;
    timed_out = t.c.timed_out;
    parked = t.c.parked;
    retried = t.c.retried;
    worker_lost = t.c.worker_lost;
    draining = t.draining;
    workers = Pool.views t.pool ~now:(Unix.gettimeofday ()) }

let backoff_s cfg attempts =
  Float.min cfg.retry_cap_s (cfg.retry_base_s *. (2.0 ** float_of_int (attempts - 1)))

(* ---- connections: framing, requests ------------------------------- *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  mutable watching : string option;
  mutable alive : bool;
}

let drop c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let send t c resp =
  if c.alive then begin
    match
      fault t "serve.write";
      let line = Proto.to_line (Proto.response_to_json resp) ^ "\n" in
      let rec write_all off =
        if off < String.length line then
          let n = Unix.write_substring c.fd line off (String.length line - off) in
          write_all (off + n)
      in
      write_all 0
    with
    | () -> ()
    | exception Guard.Fault.Injected _ ->
      log t "injected write fault; dropping client";
      drop c
    | exception Unix.Unix_error _ -> drop c
  end

let view_of t id = Option.map Job.view (Hashtbl.find_opt t.jobs id)

let job_views t =
  Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs []
  |> List.sort (fun (a : Job.t) b -> compare a.Job.seq b.Job.seq)
  |> List.map Job.view

let set_state t (job : Job.t) state detail =
  job.Job.state <- state;
  job.Job.detail <- detail;
  Job.save ~state_dir:t.cfg.state_dir job

let notify_watchers t conns id =
  match view_of t id with
  | None -> ()
  | Some v ->
    List.iter
      (fun c ->
        if c.alive && c.watching = Some id then begin
          send t c (Proto.Job v);
          if Proto.state_terminal v.Proto.state then c.watching <- None
        end)
      conns

let handle_submit t spec =
  if t.draining || Atomic.get t.drain_req then begin
    t.c.rejected_draining <- t.c.rejected_draining + 1;
    Proto.Rejected
      { reason = "draining"; depth = Jobq.depth t.q; limit = Jobq.limit t.q }
  end
  else
    match (spec.Proto.circuit, spec.Proto.hnl) with
    | Some _, Some _ | None, None ->
      Proto.Error_reply "give exactly one of circuit or hnl"
    | _ ->
      let seq = t.next_seq in
      let job = Job.make ~seq spec in
      (match Jobq.push t.q ~priority:spec.Proto.priority ~seq job with
      | Jobq.Full depth ->
        t.c.rejected_backpressure <- t.c.rejected_backpressure + 1;
        Proto.Rejected { reason = "backpressure"; depth; limit = Jobq.limit t.q }
      | Jobq.Enqueued depth ->
        t.next_seq <- seq + 1;
        Hashtbl.replace t.jobs job.Job.id job;
        Job.save ~state_dir:t.cfg.state_dir job;
        t.c.accepted <- t.c.accepted + 1;
        Proto.Accepted { id = job.Job.id; depth })

let read_file_opt path =
  match open_in_bin path with
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  | exception Sys_error _ -> None

let handle_request t c line =
  match Proto.request_of_line line with
  | Error msg -> send t c (Proto.Error_reply msg)
  | Ok req ->
    (match req with
    | Proto.Ping -> send t c Proto.Pong
    | Proto.Submit spec -> send t c (handle_submit t spec)
    | Proto.Status id ->
      (match view_of t id with
      | Some v -> send t c (Proto.Job v)
      | None -> send t c (Proto.Error_reply (Printf.sprintf "unknown job %s" id)))
    | Proto.List -> send t c (Proto.Jobs (job_views t))
    | Proto.Stats -> send t c (Proto.Stats_reply (stats t))
    | Proto.Result id ->
      (match view_of t id with
      | None -> send t c (Proto.Error_reply (Printf.sprintf "unknown job %s" id))
      | Some v when v.Proto.state <> Proto.Done ->
        send t c
          (Proto.Error_reply
             (Printf.sprintf "job %s is %s, not done" id
                (Proto.state_to_string v.Proto.state)))
      | Some _ ->
        (match
           Option.map J.parse
             (read_file_opt (Job.result_path ~state_dir:t.cfg.state_dir id))
         with
        | Some (Ok qor) -> send t c (Proto.Result_reply { id; qor })
        | Some (Error e) ->
          send t c (Proto.Error_reply (Printf.sprintf "corrupt result: %s" e))
        | None -> send t c (Proto.Error_reply "result file missing")))
    | Proto.Report id ->
      (match read_file_opt (Job.report_path ~state_dir:t.cfg.state_dir id) with
      | Some html -> send t c (Proto.Report_reply { id; html })
      | None ->
        send t c (Proto.Error_reply (Printf.sprintf "no report for job %s" id)))
    | Proto.Watch id ->
      (match view_of t id with
      | None -> send t c (Proto.Error_reply (Printf.sprintf "unknown job %s" id))
      | Some v ->
        send t c (Proto.Job v);
        if not (Proto.state_terminal v.Proto.state) then c.watching <- Some id)
    | Proto.Drain ->
      request_drain t;
      send t c Proto.Draining_reply)

(* Split buffered bytes into complete lines; the remainder stays. *)
let take_lines buf =
  let data = Buffer.contents buf in
  Buffer.clear buf;
  let rec go start acc =
    match String.index_from_opt data start '\n' with
    | Some i -> go (i + 1) (String.sub data start (i - start) :: acc)
    | None ->
      Buffer.add_substring buf data start (String.length data - start);
      List.rev acc
  in
  go 0 []

let feed_conn t c chunk =
  Buffer.add_string c.rbuf chunk;
  let lines = take_lines c.rbuf in
  List.iter
    (fun line ->
      if c.alive then
        if String.length line > t.cfg.max_line_bytes then begin
          send t c
            (Proto.Error_reply
               (Printf.sprintf "line exceeds %d bytes" t.cfg.max_line_bytes));
          drop c
        end
        else if line <> "" then handle_request t c line)
    lines;
  (* An unterminated line larger than the bound can never complete
     legally: reject it without buffering unbounded garbage. *)
  if c.alive && Buffer.length c.rbuf > t.cfg.max_line_bytes then begin
    send t c
      (Proto.Error_reply
         (Printf.sprintf "line exceeds %d bytes" t.cfg.max_line_bytes));
    drop c
  end

(* ---- job lifecycle (spawn / verdict) ------------------------------- *)

(* Every child NDJSON line reaches the watchers of its job — the
   per-worker pipes make tagging trivial (PR 9 needed in-band
   job-start/job-end markers on one shared pipe). *)
let relay_event t conns (job : Job.t) event =
  List.iter
    (fun c ->
      if c.alive && c.watching = Some job.Job.id then
        send t c (Proto.Progress { id = job.Job.id; event }))
    conns

let retry_or_fail t conns (job : Job.t) msg =
  if job.Job.attempts <= job.Job.spec.Proto.max_retries then begin
    let delay = backoff_s t.cfg job.Job.attempts in
    set_state t job Proto.Pending
      (Printf.sprintf "attempt %d failed (%s); retrying in %gs" job.Job.attempts
         msg delay);
    t.c.retried <- t.c.retried + 1;
    Jobq.force_push t.q ~priority:job.Job.spec.Proto.priority ~seq:job.Job.seq
      ~ready_s:(Unix.gettimeofday () +. delay)
      job
  end
  else begin
    set_state t job Proto.Failed
      (Printf.sprintf "failed after %d attempt%s: %s" job.Job.attempts
         (if job.Job.attempts = 1 then "" else "s")
         msg);
    t.c.failed <- t.c.failed + 1
  end;
  notify_watchers t conns job.Job.id

let start_job t conns (job : Job.t) =
  job.Job.state <- Proto.Running;
  job.Job.attempts <- job.Job.attempts + 1;
  Job.save ~state_dir:t.cfg.state_dir job;
  let inject = decide_inject t in
  let extra_close =
    t.listen_fd
    :: List.filter_map (fun c -> if c.alive then Some c.fd else None) conns
  in
  match
    Pool.spawn t.pool ~job ~extra_close ~child:(fun ~pipe_w ~close_fds ->
        Worker.exec ~state_dir:t.cfg.state_dir
          ~default_job_jobs:t.cfg.default_job_jobs ~flow_faults:t.job_faults
          ~mem_mb:t.cfg.job_mem_mb ~cpu_s:t.cfg.job_cpu_s ~inject ~job ~pipe_w
          ~close_fds)
  with
  | Pool.Spawned _ -> notify_watchers t conns job.Job.id
  | Pool.No_slot ->
    (* cannot happen — the fill loop checked idle_slots — but stay
       total: count the attempt and let the retry budget decide *)
    retry_or_fail t conns job "no worker slot free"
  | Pool.Fork_failed msg ->
    (* transient resource exhaustion (EAGAIN/EMFILE): the attempt
       never started, retry within the budget *)
    log t "spawn for %s failed: %s" job.Job.id msg;
    retry_or_fail t conns job (Printf.sprintf "fork failed (%s)" msg)

(* Fill free worker slots from the queue. Backing-off entries are
   simply not ready yet; the next tick polls again. *)
let rec fill t conns =
  if (not t.draining) && Pool.idle_slots t.pool > 0 then
    match Jobq.try_pop t.q with
    | None -> ()
    | Some job ->
      start_job t conns job;
      fill t conns

let finish_worker t conns (r : Pool.running) =
  let job = r.job in
  if r.drain_killed then begin
    (* The hard drain phase killed it: not a failure of the job, just
       of this daemon's patience. Re-pend; the checkpoint store makes
       the next daemon's resume bit-identical. *)
    set_state t job Proto.Parked
      "drain killed the worker; restart resumes from its last checkpoint";
    t.c.parked <- t.c.parked + 1;
    t.c.worker_lost <- t.c.worker_lost + 1;
    notify_watchers t conns job.Job.id
  end
  else begin
    let status = Option.value ~default:(Unix.WEXITED 127) r.status in
    match
      Worker.classify status ~frame:r.frame ~killed:r.killed
        ~mem_limited:(t.cfg.job_mem_mb <> None) ~attempt:job.Job.attempts
    with
    | Worker.Done ->
      (* keep recovery provenance visible on the terminal view; anything
         else (retry notes) is stale once the job completed *)
      let note =
        match job.Job.detail with
        | ("recovered after crash" | "resumed after drain") as d -> d
        | _ -> ""
      in
      set_state t job Proto.Done note;
      t.c.completed <- t.c.completed + 1;
      notify_watchers t conns job.Job.id
    | Worker.Invalid msg ->
      (* A job the flow can never run is failed outright: retrying an
         unknown circuit or unparsable netlist cannot help. *)
      set_state t job Proto.Failed ("invalid job: " ^ msg);
      t.c.failed <- t.c.failed + 1;
      notify_watchers t conns job.Job.id
    | Worker.Timed_out msg ->
      set_state t job Proto.Timed_out msg;
      t.c.timed_out <- t.c.timed_out + 1;
      if r.killed <> None then t.c.worker_lost <- t.c.worker_lost + 1;
      notify_watchers t conns job.Job.id
    | Worker.Parked msg ->
      set_state t job Proto.Parked msg;
      t.c.parked <- t.c.parked + 1;
      notify_watchers t conns job.Job.id
    | Worker.Rlimit msg ->
      (* Resource exhaustion under an explicit limit is deterministic:
         the same job would exhaust it again, so no retry. *)
      set_state t job Proto.Failed msg;
      t.c.failed <- t.c.failed + 1;
      notify_watchers t conns job.Job.id
    | Worker.Transient msg -> retry_or_fail t conns job msg
    | Worker.Lost msg ->
      t.c.worker_lost <- t.c.worker_lost + 1;
      log t "worker pid %d lost (%s)" r.pid msg;
      retry_or_fail t conns job msg
  end

(* ---- main loop ----------------------------------------------------- *)

let accept_client t conns =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error (e, _, _) ->
    log t "accept failed: %s; still serving" (Unix.error_message e)
  | fd, _ ->
    (match fault t "serve.accept" with
    | () ->
      conns :=
        { fd; rbuf = Buffer.create 256; watching = None; alive = true } :: !conns
    | exception Guard.Fault.Injected _ ->
      (* The accept path failed: this client is lost, the daemon keeps
         serving everyone else. *)
      log t "injected accept fault; dropping client";
      (try Unix.close fd with Unix.Unix_error _ -> ()))

(* Drain escalation: Graceful (let in-flight jobs finish) → Term
   (SIGTERM: checkpoint and park) → Kill (SIGKILL: re-pend). Each
   phase gets the configured grace window. *)
type drain_phase = Serving | Graceful of float | Terming of float | Killing

let run t =
  let conns = ref [] in
  let phase = ref Serving in
  let buf = Bytes.create 65536 in
  let cleanup () =
    List.iter drop !conns;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ())
  in
  let on_event job event = relay_event t !conns job event in
  let rec loop () =
    let now = Unix.gettimeofday () in
    (match !phase with
    | Serving ->
      if Atomic.get t.drain_req then begin
        t.draining <- true;
        log t "draining: no longer accepting jobs";
        Jobq.close t.q;
        phase := Graceful (now +. t.cfg.drain_grace_s)
      end
    | Graceful dl when now > dl ->
      if Pool.busy t.pool then begin
        log t "drain grace expired: asking workers to checkpoint and park";
        Pool.term_all t.pool
      end;
      phase := Terming (now +. t.cfg.drain_grace_s)
    | Terming dl when now > dl ->
      if Pool.busy t.pool then begin
        log t "drain: killing workers that did not park; their jobs re-pend";
        Pool.kill_all t.pool
      end;
      phase := Killing
    | Graceful _ | Terming _ | Killing -> ());
    List.iter
      (fun ((job : Job.t), reason) ->
        match reason with
        | Worker.Kill_deadline d ->
          log t "watchdog: killing %s's worker, %gs past its %gs deadline"
            job.Job.id t.cfg.deadline_grace_s d
        | Worker.Kill_hang s ->
          log t "watchdog: killing %s's worker, silent for %gs" job.Job.id s)
      (Pool.watchdog t.pool ~now);
    List.iter (finish_worker t !conns) (Pool.reap t.pool ~on_event);
    fill t !conns;
    if t.draining && (not (Pool.busy t.pool)) then cleanup ()
    else begin
      let pipe_fds = Pool.pipe_fds t.pool in
      let fds =
        (t.listen_fd :: pipe_fds)
        @ List.filter_map (fun c -> if c.alive then Some c.fd else None) !conns
      in
      (match Unix.select fds [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then accept_client t conns
            else
              match List.find_opt (fun c -> c.fd = fd && c.alive) !conns with
              | Some c ->
                (match Unix.read c.fd buf 0 (Bytes.length buf) with
                | 0 -> drop c
                | n -> feed_conn t c (Bytes.sub_string buf 0 n)
                | exception Unix.Unix_error _ -> drop c)
              | None -> Pool.handle_readable t.pool fd ~on_event)
          ready);
      conns := List.filter (fun c -> c.alive) !conns;
      loop ()
    end
  in
  loop ()
