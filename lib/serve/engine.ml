(* The hidap serve daemon engine.

   Two domains: the caller's (the select loop — accept, framing,
   request handling, progress relay) and one worker executing jobs
   strictly one at a time. Serial execution is load-bearing, not lazy:
   per-job deadlines and drain cancellation ride on Guard.Budget's
   whole-run cells, which are global — one flow at a time is the
   contract that keeps them unambiguous. Parallelism lives inside a
   job (its [jobs] config drives Parexec), where it is deterministic.

   Robustness model:
   - admission control: a bounded Jobq; the N+1th submit gets a
     structured backpressure rejection, memory stays bounded;
   - per-job deadlines: Guard.Budget.set_deadline per attempt; the SA
     polls raise Deadline, the job lands in timed-out, nothing else is
     harmed;
   - retry: a transient failure (injected serve.worker fault or a real
     exception) re-enqueues the job with deterministic capped
     exponential backoff, up to max_retries extra attempts;
   - drain: stop admitting, let the in-flight job finish within the
     grace window, then request cooperative cancellation so it
     checkpoints and parks; undone jobs stay pending on disk;
   - crash recovery: jobs found pending/running/parked in the state
     dir are re-enqueued; their Ckpt stores make the resumed
     placements bit-identical to uninterrupted runs.

   Engine-level fault sites (serve.accept / serve.write /
   serve.worker) use *transient* semantics: a spec [site:N] fails the
   first N hits and then heals. Flow sites keep their usual
   fire-from-hit-N-on meaning; the inversion is what server fault
   testing needs (retry must eventually succeed) and is documented in
   DESIGN.md §15. *)

module J = Obs.Jsonx

type config = {
  socket_path : string;
  state_dir : string;
  queue_limit : int;
  drain_grace_s : float;
  retry_base_s : float;
  retry_cap_s : float;
  max_line_bytes : int;
  default_job_jobs : int;
  faults : Guard.Fault.spec list;
}

let default_config ~socket_path ~state_dir =
  { socket_path; state_dir; queue_limit = 8; drain_grace_s = 5.0;
    retry_base_s = 0.05; retry_cap_s = 2.0; max_line_bytes = 1 lsl 20;
    default_job_jobs = 1; faults = [] }

type counters = {
  accepted : int Atomic.t;
  rejected_backpressure : int Atomic.t;
  rejected_draining : int Atomic.t;
  completed : int Atomic.t;
  failed : int Atomic.t;
  timed_out : int Atomic.t;
  parked : int Atomic.t;
  retried : int Atomic.t;
}

type t = {
  cfg : config;
  lock : Mutex.t;  (* jobs table and every Job.t field mutation *)
  jobs : (string, Job.t) Hashtbl.t;
  mutable next_seq : int;
  q : Job.t Jobq.t;
  c : counters;
  drain_req : bool Atomic.t;
  draining : bool Atomic.t;
  worker_done : bool Atomic.t;
  running_id : string option Atomic.t;
  (* serve.* specs with persistent cross-job hit counters (transient
     semantics: fire while hits <= nth, then heal). *)
  serve_faults : (Guard.Fault.spec * int Atomic.t) array;
  job_faults : Guard.Fault.spec list;  (* flow sites, armed per job *)
  listen_fd : Unix.file_descr;
  progress_r : Unix.file_descr;
  progress_w : Unix.file_descr;
  mutable worker : unit Domain.t option;
}

exception Invalid_job of string

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let fault t site =
  Array.iter
    (fun ((spec : Guard.Fault.spec), count) ->
      if spec.Guard.Fault.site = site then begin
        let n = Atomic.fetch_and_add count 1 + 1 in
        if n <= spec.Guard.Fault.nth then
          match spec.Guard.Fault.action with
          | Guard.Fault.Raise -> raise (Guard.Fault.Injected { site; hit = n })
          | Guard.Fault.Stall s -> Unix.sleepf s
      end)
    t.serve_faults

let is_serve_site (spec : Guard.Fault.spec) =
  String.length spec.Guard.Fault.site >= 6
  && String.sub spec.Guard.Fault.site 0 6 = "serve."

let log t fmt =
  ignore t;
  Format.eprintf ("hidap serve: " ^^ fmt ^^ "@.")

let create cfg =
  (* EPIPE must surface as an exception on the write path, never kill
     the daemon. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Job.mkdir_p (Filename.concat cfg.state_dir "jobs");
  let serve_specs, job_faults = List.partition is_serve_site cfg.faults in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 16;
  let progress_r, progress_w = Unix.pipe () in
  let t =
    { cfg; lock = Mutex.create (); jobs = Hashtbl.create 16; next_seq = 1;
      q = Jobq.create ~limit:cfg.queue_limit;
      c =
        { accepted = Atomic.make 0; rejected_backpressure = Atomic.make 0;
          rejected_draining = Atomic.make 0; completed = Atomic.make 0;
          failed = Atomic.make 0; timed_out = Atomic.make 0;
          parked = Atomic.make 0; retried = Atomic.make 0 };
      drain_req = Atomic.make false; draining = Atomic.make false;
      worker_done = Atomic.make false; running_id = Atomic.make None;
      serve_faults =
        Array.of_list (List.map (fun s -> (s, Atomic.make 0)) serve_specs);
      job_faults; listen_fd; progress_r; progress_w; worker = None }
  in
  (* Crash recovery: every job that was pending, running or parked
     when the previous daemon died is re-enqueued as pending. Its
     attempts survive; its checkpoint store makes the resumed
     placement bit-identical. Terminal jobs stay queryable. *)
  List.iter
    (fun (j : Job.t) ->
      Hashtbl.replace t.jobs j.Job.id j;
      if j.Job.seq >= t.next_seq then t.next_seq <- j.Job.seq + 1;
      match j.Job.state with
      | Proto.Pending | Proto.Running | Proto.Parked ->
        let note =
          match j.Job.state with
          | Proto.Running -> "recovered after crash"
          | Proto.Parked -> "resumed after drain"
          | _ -> j.Job.detail
        in
        j.Job.state <- Proto.Pending;
        j.Job.detail <- note;
        Job.save ~state_dir:cfg.state_dir j;
        Jobq.force_push t.q ~priority:j.Job.spec.Proto.priority ~seq:j.Job.seq j
      | Proto.Done | Proto.Failed | Proto.Timed_out -> ())
    (Job.load_all ~state_dir:cfg.state_dir);
  t

let request_drain t = Atomic.set t.drain_req true

let stats t =
  { Proto.queue_depth = Jobq.depth t.q; queue_limit = Jobq.limit t.q;
    accepted = Atomic.get t.c.accepted;
    rejected_backpressure = Atomic.get t.c.rejected_backpressure;
    rejected_draining = Atomic.get t.c.rejected_draining;
    completed = Atomic.get t.c.completed;
    failed = Atomic.get t.c.failed;
    timed_out = Atomic.get t.c.timed_out;
    parked = Atomic.get t.c.parked;
    retried = Atomic.get t.c.retried;
    draining = Atomic.get t.draining }

(* ---- worker: job execution ---------------------------------------- *)

let backoff_s cfg attempts =
  Float.min cfg.retry_cap_s (cfg.retry_base_s *. (2.0 ** float_of_int (attempts - 1)))

let design_of_spec (spec : Proto.submit) =
  match (spec.Proto.circuit, spec.Proto.hnl) with
  | Some name, None ->
    (match Circuitgen.Suite.find name with
    | Some c -> (name, Circuitgen.Gen.generate c.Circuitgen.Suite.params)
    | None -> raise (Invalid_job (Printf.sprintf "unknown suite circuit %s" name)))
  | None, Some text ->
    let name = if spec.Proto.label <> "" then spec.Proto.label else "inline" in
    (match Hnl.Parser.parse_string text with
    | Ok d -> (name, d)
    | Error { Hnl.Parser.line; col; message } ->
      raise (Invalid_job (Printf.sprintf "hnl:%d:%d: %s" line col message)))
  | Some _, Some _ | None, None ->
    raise (Invalid_job "give exactly one of circuit or hnl")

let run_attempt t (job : Job.t) =
  fault t "serve.worker";
  let spec = job.Job.spec in
  let name, design = design_of_spec spec in
  let design =
    match Guard.Validate.design ~strict:false design with
    | Ok r -> r.Guard.Validate.design
    | Error diags ->
      raise
        (Invalid_job
           (String.concat "; "
              (List.map (fun d -> Format.asprintf "%a" Guard.Diag.pp d) diags)))
  in
  let flat =
    try Netlist.Flat.elaborate design
    with Invalid_argument msg -> raise (Invalid_job msg)
  in
  let config =
    { Hidap.Config.default with
      Hidap.Config.seed = spec.Proto.seed;
      jobs =
        (if spec.Proto.jobs <= 0 then t.cfg.default_job_jobs else spec.Proto.jobs);
      faults = t.job_faults }
  in
  let config =
    match spec.Proto.lambda with
    | Some l -> Hidap.Config.with_lambda config l
    | None -> config
  in
  let die = Hidap.die_for flat ~config in
  let ckdir = Job.ckpt_dir ~state_dir:t.cfg.state_dir job.Job.id in
  Job.mkdir_p ckdir;
  let fp =
    { Ckpt.State.circuit = name; seed = config.Hidap.Config.seed;
      lambda = config.Hidap.Config.lambda;
      sa_starts = config.Hidap.Config.sa_starts;
      cells = Netlist.Flat.cell_count flat;
      macro_count = Netlist.Flat.macro_count flat }
  in
  let session =
    match Ckpt.Session.start ~dir:ckdir ~resume:true fp with
    | Ok s -> s
    | Error d -> raise (Invalid_job (Format.asprintf "%a" Guard.Diag.pp d))
  in
  (* The deadline is per attempt: each retry gets the full window. *)
  Option.iter Guard.Budget.set_deadline spec.Proto.deadline_s;
  Fun.protect ~finally:Guard.Budget.clear_deadline @@ fun () ->
  match
    Guard.Supervisor.with_run ~faults:t.job_faults (fun () ->
        let r = Hidap.place ~config ~die ~ckpt:session flat in
        let macros =
          List.map
            (fun (p : Hidap.macro_placement) ->
              { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect;
                orient = p.Hidap.orient })
            r.Hidap.placements
        in
        let m, _ =
          Evalflow.measure ~flat ~gseq:r.Hidap.gseq ~ports:r.Hidap.ports
            ~die:r.Hidap.die ~macros
        in
        (r, m))
  with
  | (r, measured), degradations ->
    let sm = Ckpt.Session.summary session in
    let ckpt =
      { Qor.Record.resumed_from = sm.Ckpt.Session.resumed_from;
        snapshots_written = sm.Ckpt.Session.snapshots_written;
        instances_reused = sm.Ckpt.Session.instances_reused }
    in
    let record =
      Qor.Record.of_place ~circuit:name ~flat ~config ~degradations ~measured
        ~ckpt r
    in
    Qor.Record.write_ledger
      (Job.result_path ~state_dir:t.cfg.state_dir job.Job.id)
      [ record ];
    Qor.Html.write_file
      (Job.report_path ~state_dir:t.cfg.state_dir job.Job.id)
      (Qor.Html.render ~title:(Printf.sprintf "hidap serve — %s" job.Job.id)
         [ record ]);
    ()
  | exception Guard.Budget.Cancelled c ->
    (* Drain reached the in-flight job: park it on a final snapshot so
       the next daemon resumes it bit-identically. *)
    (try Ckpt.Session.save_now session ~stage:false with _ -> ());
    raise (Guard.Budget.Cancelled c)

let set_state t (job : Job.t) state detail =
  with_lock t (fun () ->
      job.Job.state <- state;
      job.Job.detail <- detail;
      Job.save ~state_dir:t.cfg.state_dir job)

let emit_job_event (job : Job.t) event extra =
  Obs.Stream.emit event
    (( ("id", J.String job.Job.id)
     :: ("state", J.String (Proto.state_to_string job.Job.state))
     :: ("attempt", J.Int job.Job.attempts)
     :: extra ))

let execute t (job : Job.t) =
  with_lock t (fun () ->
      job.Job.state <- Proto.Running;
      job.Job.attempts <- job.Job.attempts + 1;
      Job.save ~state_dir:t.cfg.state_dir job);
  Atomic.set t.running_id (Some job.Job.id);
  emit_job_event job "job-start" [];
  let outcome =
    match run_attempt t job with
    | () -> `Done
    | exception Guard.Budget.Deadline { deadline_s } -> `Timed_out deadline_s
    | exception Guard.Budget.Cancelled _ -> `Parked
    | exception Invalid_job msg -> `Invalid msg
    | exception e -> `Transient (Printexc.to_string e)
  in
  Atomic.set t.running_id None;
  (match outcome with
  | `Done ->
    (* keep recovery provenance visible on the terminal view; anything
       else (retry notes) is stale once the job completed *)
    let note =
      match job.Job.detail with
      | ("recovered after crash" | "resumed after drain") as d -> d
      | _ -> ""
    in
    set_state t job Proto.Done note;
    Atomic.incr t.c.completed;
    emit_job_event job "job-end" []
  | `Timed_out d ->
    set_state t job Proto.Timed_out
      (Printf.sprintf "deadline %gs exceeded on attempt %d" d job.Job.attempts);
    Atomic.incr t.c.timed_out;
    emit_job_event job "job-end" []
  | `Parked ->
    set_state t job Proto.Parked "parked by drain; restart resumes it";
    Atomic.incr t.c.parked;
    emit_job_event job "job-end" []
  | `Invalid msg ->
    (* A job the flow can never run is failed outright: retrying an
       unknown circuit or unparsable netlist cannot help. *)
    set_state t job Proto.Failed ("invalid job: " ^ msg);
    Atomic.incr t.c.failed;
    emit_job_event job "job-end" []
  | `Transient msg ->
    if job.Job.attempts <= job.Job.spec.Proto.max_retries then begin
      let delay = backoff_s t.cfg job.Job.attempts in
      set_state t job Proto.Pending
        (Printf.sprintf "attempt %d failed (%s); retrying in %gs"
           job.Job.attempts msg delay);
      Atomic.incr t.c.retried;
      emit_job_event job "job-retry" [ ("delay_s", J.Float delay) ];
      Jobq.force_push t.q ~priority:job.Job.spec.Proto.priority ~seq:job.Job.seq
        ~ready_s:(Unix.gettimeofday () +. delay)
        job
    end
    else begin
      set_state t job Proto.Failed
        (Printf.sprintf "failed after %d attempt%s: %s" job.Job.attempts
           (if job.Job.attempts = 1 then "" else "s")
           msg);
      Atomic.incr t.c.failed;
      emit_job_event job "job-end" []
    end)

let worker t =
  (* All job progress goes to the relay pipe; the select loop tags it
     with the running job (via job-start/job-end markers emitted here,
     in-band, so tagging can never race the stream). *)
  Obs.Stream.enable ~heartbeat_s:0.5 ~close_on_disable:false
    (Unix.out_channel_of_descr t.progress_w);
  let rec loop () =
    match Jobq.pop t.q with
    | None -> ()
    | Some job ->
      execute t job;
      loop ()
  in
  loop ();
  Obs.Stream.disable ();
  Atomic.set t.worker_done true

(* ---- select loop: connections, framing, requests ------------------ *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  mutable watching : string option;
  mutable alive : bool;
}

let drop c =
  if c.alive then begin
    c.alive <- false;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  end

let send t c resp =
  if c.alive then begin
    match
      fault t "serve.write";
      let line = Proto.to_line (Proto.response_to_json resp) ^ "\n" in
      let rec write_all off =
        if off < String.length line then
          let n = Unix.write_substring c.fd line off (String.length line - off) in
          write_all (off + n)
      in
      write_all 0
    with
    | () -> ()
    | exception Guard.Fault.Injected _ ->
      log t "injected write fault; dropping client";
      drop c
    | exception Unix.Unix_error _ -> drop c
  end

let view_of t id =
  with_lock t (fun () ->
      Option.map Job.view (Hashtbl.find_opt t.jobs id))

let job_views t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ j acc -> j :: acc) t.jobs []
      |> List.sort (fun (a : Job.t) b -> compare a.Job.seq b.Job.seq)
      |> List.map Job.view)

let handle_submit t spec =
  if Atomic.get t.draining || Atomic.get t.drain_req then begin
    Atomic.incr t.c.rejected_draining;
    Proto.Rejected
      { reason = "draining"; depth = Jobq.depth t.q; limit = Jobq.limit t.q }
  end
  else
    match (spec.Proto.circuit, spec.Proto.hnl) with
    | Some _, Some _ | None, None ->
      Proto.Error_reply "give exactly one of circuit or hnl"
    | _ ->
      with_lock t (fun () ->
          let seq = t.next_seq in
          let job = Job.make ~seq spec in
          match Jobq.push t.q ~priority:spec.Proto.priority ~seq job with
          | Jobq.Full depth ->
            Atomic.incr t.c.rejected_backpressure;
            Proto.Rejected
              { reason = "backpressure"; depth; limit = Jobq.limit t.q }
          | Jobq.Enqueued depth ->
            t.next_seq <- seq + 1;
            Hashtbl.replace t.jobs job.Job.id job;
            Job.save ~state_dir:t.cfg.state_dir job;
            Atomic.incr t.c.accepted;
            Proto.Accepted { id = job.Job.id; depth })

let read_file_opt path =
  match open_in_bin path with
  | ic ->
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    Some s
  | exception Sys_error _ -> None

let handle_request t c line =
  match Proto.request_of_line line with
  | Error msg -> send t c (Proto.Error_reply msg)
  | Ok req ->
    (match req with
    | Proto.Ping -> send t c Proto.Pong
    | Proto.Submit spec -> send t c (handle_submit t spec)
    | Proto.Status id ->
      (match view_of t id with
      | Some v -> send t c (Proto.Job v)
      | None -> send t c (Proto.Error_reply (Printf.sprintf "unknown job %s" id)))
    | Proto.List -> send t c (Proto.Jobs (job_views t))
    | Proto.Stats -> send t c (Proto.Stats_reply (stats t))
    | Proto.Result id ->
      (match view_of t id with
      | None -> send t c (Proto.Error_reply (Printf.sprintf "unknown job %s" id))
      | Some v when v.Proto.state <> Proto.Done ->
        send t c
          (Proto.Error_reply
             (Printf.sprintf "job %s is %s, not done" id
                (Proto.state_to_string v.Proto.state)))
      | Some _ ->
        (match
           Option.map J.parse
             (read_file_opt (Job.result_path ~state_dir:t.cfg.state_dir id))
         with
        | Some (Ok qor) -> send t c (Proto.Result_reply { id; qor })
        | Some (Error e) ->
          send t c (Proto.Error_reply (Printf.sprintf "corrupt result: %s" e))
        | None -> send t c (Proto.Error_reply "result file missing")))
    | Proto.Report id ->
      (match read_file_opt (Job.report_path ~state_dir:t.cfg.state_dir id) with
      | Some html -> send t c (Proto.Report_reply { id; html })
      | None ->
        send t c (Proto.Error_reply (Printf.sprintf "no report for job %s" id)))
    | Proto.Watch id ->
      (match view_of t id with
      | None -> send t c (Proto.Error_reply (Printf.sprintf "unknown job %s" id))
      | Some v ->
        send t c (Proto.Job v);
        if not (Proto.state_terminal v.Proto.state) then c.watching <- Some id)
    | Proto.Drain ->
      request_drain t;
      send t c Proto.Draining_reply)

(* Split buffered bytes into complete lines; the remainder stays. *)
let take_lines buf =
  let data = Buffer.contents buf in
  Buffer.clear buf;
  let rec go start acc =
    match String.index_from_opt data start '\n' with
    | Some i -> go (i + 1) (String.sub data start (i - start) :: acc)
    | None ->
      Buffer.add_substring buf data start (String.length data - start);
      List.rev acc
  in
  go 0 []

let feed_conn t c chunk =
  Buffer.add_string c.rbuf chunk;
  let lines = take_lines c.rbuf in
  List.iter
    (fun line ->
      if c.alive then
        if String.length line > t.cfg.max_line_bytes then begin
          send t c
            (Proto.Error_reply
               (Printf.sprintf "line exceeds %d bytes" t.cfg.max_line_bytes));
          drop c
        end
        else if line <> "" then handle_request t c line)
    lines;
  (* An unterminated line larger than the bound can never complete
     legally: reject it without buffering unbounded garbage. *)
  if c.alive && Buffer.length c.rbuf > t.cfg.max_line_bytes then begin
    send t c
      (Proto.Error_reply
         (Printf.sprintf "line exceeds %d bytes" t.cfg.max_line_bytes));
    drop c
  end

(* ---- progress relay ----------------------------------------------- *)

type relay = { pbuf : Buffer.t; mutable current : string option }

let notify_watchers t conns id =
  match view_of t id with
  | None -> ()
  | Some v ->
    List.iter
      (fun c ->
        if c.alive && c.watching = Some id then begin
          send t c (Proto.Job v);
          if Proto.state_terminal v.Proto.state then c.watching <- None
        end)
      conns

let relay_line t relay conns line =
  match J.parse line with
  | Error _ -> ()
  | Ok j ->
    let event = Option.bind (J.member "event" j) J.to_string_opt in
    let id = Option.bind (J.member "id" j) J.to_string_opt in
    (match event with
    | Some "job-start" ->
      relay.current <- id;
      Option.iter (notify_watchers t conns) id
    | Some ("job-end" | "job-retry") ->
      relay.current <- None;
      Option.iter (notify_watchers t conns) id
    | _ ->
      (match relay.current with
      | None -> ()
      | Some id ->
        List.iter
          (fun c ->
            if c.alive && c.watching = Some id then
              send t c (Proto.Progress { id; event = j }))
          conns))

let feed_relay t relay conns chunk =
  Buffer.add_string relay.pbuf chunk;
  List.iter (relay_line t relay conns) (take_lines relay.pbuf)

(* ---- main loop ----------------------------------------------------- *)

let accept_client t conns =
  match Unix.accept t.listen_fd with
  | exception Unix.Unix_error (e, _, _) ->
    log t "accept failed: %s; still serving" (Unix.error_message e)
  | fd, _ ->
    (match fault t "serve.accept" with
    | () ->
      conns :=
        { fd; rbuf = Buffer.create 256; watching = None; alive = true } :: !conns
    | exception Guard.Fault.Injected _ ->
      (* The accept path failed: this client is lost, the daemon keeps
         serving everyone else. *)
      log t "injected accept fault; dropping client";
      (try Unix.close fd with Unix.Unix_error _ -> ()))

let run t =
  t.worker <- Some (Domain.spawn (fun () -> worker t));
  let conns = ref [] in
  let relay = { pbuf = Buffer.create 256; current = None } in
  let drain_deadline = ref None in
  let cleanup () =
    Option.iter Domain.join t.worker;
    t.worker <- None;
    (* Drain whatever progress is still in the pipe so final job-end
       notifications reach their watchers before the sockets close. *)
    Unix.set_nonblock t.progress_r;
    let buf = Bytes.create 65536 in
    (try
       let rec go () =
         let n = Unix.read t.progress_r buf 0 (Bytes.length buf) in
         if n > 0 then begin
           feed_relay t relay !conns (Bytes.sub_string buf 0 n);
           go ()
         end
       in
       go ()
     with Unix.Unix_error _ -> ());
    List.iter drop !conns;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.progress_r with Unix.Unix_error _ -> ());
    (try Unix.close t.progress_w with Unix.Unix_error _ -> ());
    (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
    Guard.Budget.clear_cancel ();
    Guard.Budget.clear_deadline ()
  in
  let buf = Bytes.create 65536 in
  let rec loop () =
    if Atomic.get t.drain_req && not (Atomic.get t.draining) then begin
      Atomic.set t.draining true;
      log t "draining: no longer accepting jobs";
      Jobq.close t.q;
      drain_deadline := Some (Unix.gettimeofday () +. t.cfg.drain_grace_s)
    end;
    (match !drain_deadline with
    | Some dl
      when Unix.gettimeofday () > dl
           && Atomic.get t.running_id <> None
           && not (Guard.Budget.cancel_requested ()) ->
      log t "drain grace expired: parking the in-flight job";
      Guard.Budget.request_cancel ()
    | _ -> ());
    if Atomic.get t.worker_done then cleanup ()
    else begin
      let fds =
        t.listen_fd :: t.progress_r
        :: List.filter_map (fun c -> if c.alive then Some c.fd else None) !conns
      in
      (match Unix.select fds [] [] 0.1 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | ready, _, _ ->
        List.iter
          (fun fd ->
            if fd = t.listen_fd then accept_client t conns
            else if fd = t.progress_r then begin
              match Unix.read t.progress_r buf 0 (Bytes.length buf) with
              | 0 -> ()
              | n -> feed_relay t relay !conns (Bytes.sub_string buf 0 n)
              | exception Unix.Unix_error _ -> ()
            end
            else
              match List.find_opt (fun c -> c.fd = fd && c.alive) !conns with
              | None -> ()
              | Some c ->
                (match Unix.read c.fd buf 0 (Bytes.length buf) with
                | 0 -> drop c
                | n -> feed_conn t c (Bytes.sub_string buf 0 n)
                | exception Unix.Unix_error _ -> drop c))
          ready);
      conns := List.filter (fun c -> c.alive) !conns;
      loop ()
    end
  in
  loop ()
