(** Supervisor for the daemon's forked worker processes.

    A fixed array of worker slots driven entirely from the daemon's
    single-domain select loop: {!spawn} forks a child per job attempt,
    {!handle_readable} consumes its NDJSON progress pipe (every byte
    refreshes the liveness stamp; the final [job-attempt-end] status
    frame is captured), {!reap} collects exit statuses via
    non-blocking [waitpid], and {!watchdog} SIGKILLs children that
    outran their deadline or went silent.

    The parent must stay fork-safe: OCaml 5 refuses [Unix.fork] in a
    process that has {e ever} created a domain, so nothing on the
    daemon side may call [Domain.spawn] — parallelism belongs to the
    children. *)

(** One running child. Concrete so the engine can classify it after
    {!reap} hands it back. *)
type running = {
  pid : int;
  job : Job.t;
  pipe_r : Unix.file_descr;
  rbuf : Buffer.t;
  started_s : float;
  mutable last_io_s : float;  (** last byte seen on the pipe *)
  mutable frame : (string * string) option;
      (** final [job-attempt-end] frame as [(outcome, detail)] *)
  mutable killed : Worker.kill_reason option;  (** watchdog SIGKILL *)
  mutable drain_killed : bool;  (** SIGKILLed by drain's hard phase *)
  mutable status : Unix.process_status option;
  mutable eof : bool;
}

type t

val create : size:int -> stall_s:float -> deadline_grace_s:float -> t
(** [size] slots (clamped to ≥ 1). [stall_s]: SIGKILL a child whose
    pipe has been silent this long (heartbeats arrive every 0.5 s, so
    this detects wedged workers, not slow jobs). [deadline_grace_s]:
    slack past a job's own deadline before the watchdog concludes the
    child missed it and kills from outside. *)

val size : t -> int

val busy : t -> bool
(** Some slot is running. *)

val idle_slots : t -> int

type spawn_result =
  | Spawned of int  (** child pid *)
  | No_slot
  | Fork_failed of string  (** pipe/fork error; the job was not started *)

val spawn :
  t ->
  job:Job.t ->
  extra_close:Unix.file_descr list ->
  child:(pipe_w:Unix.file_descr -> close_fds:Unix.file_descr list -> unit) ->
  spawn_result
(** Fork a child for [job] into a free slot. [child] runs in the
    forked process and must never return (a {!Worker.exec} call); it
    receives the pipe's write end plus every descriptor it must close
    — [extra_close] (the engine's listener and client connections)
    and the sibling pipes the fork duplicated. *)

val pipe_fds : t -> Unix.file_descr list
(** Read ends to include in the select set (running, pre-EOF slots). *)

val handle_readable :
  t -> Unix.file_descr -> on_event:(Job.t -> Obs.Jsonx.t -> unit) -> unit
(** Drain one readable pipe; [on_event] sees every parsed NDJSON line
    (for relay to watch clients). Unknown fds are ignored. *)

val reap : t -> on_event:(Job.t -> Obs.Jsonx.t -> unit) -> running list
(** Non-blocking: collect exit statuses, finish draining pipes, and
    return every child that is fully gone (reaped {e and} pipe at
    EOF, so captured frames cannot race the verdict). Returned slots
    are free again. *)

val watchdog : t -> now:float -> (Job.t * Worker.kill_reason) list
(** SIGKILL deadline-overruns and silent children; returns what was
    killed and why. Each child is killed at most once. *)

val term_all : t -> unit
(** Drain, soft phase: SIGTERM every running child (cooperative
    checkpoint-and-park). *)

val kill_all : t -> unit
(** Drain, hard phase: SIGKILL survivors, marking them
    [drain_killed] so the engine re-pends rather than retries them. *)

val views : t -> now:float -> Proto.worker_view list
(** One {!Proto.worker_view} per slot, for [stats]. *)
