(* One placement job and its on-disk footprint.

   Every job owns a directory <state_dir>/jobs/<id>/ holding:
     job.json     — spec + mutable state/attempts/detail (this module)
     ckpt/        — the job's Ckpt checkpoint store
     result.json  — QoR ledger once done
     report.html  — rendered report once done

   job.json is written atomically (tmp + rename), so a kill -9 at any
   point leaves either the previous state or the new one, never a torn
   file; recovery treats an unreadable job.json as absent. *)

module J = Obs.Jsonx

let job_schema = "hidap-serve-job"

let job_version = 1

type t = {
  id : string;
  seq : int;
  spec : Proto.submit;
  mutable state : Proto.state;
  mutable attempts : int;
  mutable detail : string;
}

let id_of_seq seq = Printf.sprintf "j%04d" seq

let make ~seq spec =
  { id = id_of_seq seq; seq; spec; state = Proto.Pending; attempts = 0; detail = "" }

let jobs_root state_dir = Filename.concat state_dir "jobs"

let dir ~state_dir id = Filename.concat (jobs_root state_dir) id

let ckpt_dir ~state_dir id = Filename.concat (dir ~state_dir id) "ckpt"

let meta_path ~state_dir id = Filename.concat (dir ~state_dir id) "job.json"

let result_path ~state_dir id = Filename.concat (dir ~state_dir id) "result.json"

let report_path ~state_dir id = Filename.concat (dir ~state_dir id) "report.html"

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let view t =
  { Proto.id = t.id; label = t.spec.Proto.label; state = t.state;
    attempts = t.attempts; priority = t.spec.Proto.priority; detail = t.detail }

let to_json t =
  J.Obj
    (( ("schema", J.String job_schema)
     :: ("version", J.Int job_version)
     :: ("id", J.String t.id)
     :: ("seq", J.Int t.seq)
     :: ("state", J.String (Proto.state_to_string t.state))
     :: ("attempts", J.Int t.attempts)
     :: ("detail", J.String t.detail)
     :: ("spec", J.Obj (Proto.submit_fields t.spec))
     :: [] ))

let save ~state_dir t =
  let d = dir ~state_dir t.id in
  mkdir_p d;
  let path = meta_path ~state_dir t.id in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc (J.to_string ~compact:true (to_json t));
  output_char oc '\n';
  close_out oc;
  Sys.rename tmp path

let of_json j =
  let str name = Option.bind (J.member name j) J.to_string_opt in
  let int name = Option.bind (J.member name j) J.to_int_opt in
  match (str "schema", int "version") with
  | Some s, _ when s <> job_schema -> Error (Printf.sprintf "unexpected schema %S" s)
  | _, Some v when v > job_version ->
    Error (Printf.sprintf "job version %d is newer than %d" v job_version)
  | _ ->
    (match (str "id", int "seq", Option.bind (str "state") Proto.state_of_string) with
    | Some id, Some seq, Some state ->
      let spec =
        match J.member "spec" j with
        | Some s -> Proto.submit_of_json s
        | None -> Proto.default_submit
      in
      Ok
        { id; seq; spec; state;
          attempts = Option.value ~default:0 (int "attempts");
          detail = Option.value ~default:"" (str "detail") }
    | _ -> Error "missing id/seq/state")

let load ~state_dir id =
  match J.parse_file (meta_path ~state_dir id) with
  | Error e -> Error e
  | Ok j -> of_json j

(* Scan the state directory for every job with a readable job.json.
   Unreadable or torn entries are skipped, not fatal: recovery must
   start with whatever survived. Sorted by submission sequence so
   re-enqueueing preserves the original order. *)
let load_all ~state_dir =
  let root = jobs_root state_dir in
  let ids =
    match Sys.readdir root with
    | entries -> Array.to_list entries
    | exception Sys_error _ -> []
  in
  List.filter_map
    (fun id -> match load ~state_dir id with Ok t -> Some t | Error _ -> None)
    ids
  |> List.sort (fun a b -> compare a.seq b.seq)
