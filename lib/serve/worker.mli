(** One job attempt inside a forked worker process.

    The daemon forks (no exec) one child per job attempt; {!exec} is
    the child's entire life and never returns. Containment is the
    OS's: per-job [setrlimit] bounds on address space and CPU, a Linux
    parent-death signal so a SIGKILLed daemon leaks no workers, and a
    fresh process making {!Guard.Budget}'s global deadline/cancel
    cells per-job again — the restriction that serialized PR 9's
    engine. The child talks back over one pipe: the {!Obs.Stream}
    NDJSON progress feed (heartbeats included) ended by a
    [job-attempt-end] status frame, plus its exit status.

    {!classify} is the other half, used by the {e parent}: the total
    mapping from any way a worker can end — clean, classified nonzero,
    signaled, rlimit-killed, watchdog-SIGKILLed — to the verdict the
    engine applies (DESIGN.md §15 exit classification table). *)

(** {1 Exit-code protocol}

    Self-classified ends use the sysexits-style 64+ range so a library
    calling [exit 1]/[exit 2] under us can never impersonate them; any
    other exit status classifies as a lost worker. *)

val exit_done : int
(** 0 *)

val exit_invalid : int
(** 64 — the job can never run (bad circuit/netlist); fail, no retry *)

val exit_timed_out : int
(** 65 — the per-attempt deadline fired inside the flow *)

val exit_parked : int
(** 66 — drain's SIGTERM was honored: checkpointed and parked *)

val exit_transient : int
(** 67 — a classified transient failure; retry within the budget *)

val exit_oom : int
(** 68 — [Out_of_memory] under an address-space rlimit; fail, no retry *)

(** {1 Fault injection}

    The parent decides from its persistent serve.* hit counters
    whether an attempt is sabotaged; the decision rides into the child
    through forked memory. *)
type inject =
  | Inj_none
  | Inj_fail  (** [serve.worker] Raise: die at attempt start (transient) *)
  | Inj_stall of float  (** [serve.worker] Stall: slow, but alive (heartbeats) *)
  | Inj_kill of float  (** [serve.worker_kill]: self-SIGKILL after [delay] *)
  | Inj_hang  (** [serve.worker_hang]: silent forever; only the watchdog ends it *)

(** {1 Exit classification (parent side)} *)

type kill_reason =
  | Kill_deadline of float  (** watchdog: ran past the job deadline *)
  | Kill_hang of float  (** watchdog: no pipe bytes for this many seconds *)

type verdict =
  | Done
  | Invalid of string  (** terminal failure: the job can never run *)
  | Timed_out of string
  | Parked of string
  | Rlimit of string  (** deterministic exhaustion: fail, no retry *)
  | Transient of string  (** retry within the job's retry budget *)
  | Lost of string  (** unclassified death: retry, counted as worker-lost *)

val classify :
  Unix.process_status ->
  frame:(string * string) option ->
  killed:kill_reason option ->
  mem_limited:bool ->
  attempt:int ->
  verdict
(** [classify status ~frame ~killed ~mem_limited ~attempt] maps a
    reaped worker to its job's verdict. [frame] is the final
    [job-attempt-end] status frame as [(outcome, detail)] when one
    arrived — its detail is preferred; [killed] records a parent
    watchdog SIGKILL, which outranks the raw status. [mem_limited]
    (an address-space rlimit was armed) reclassifies frameless
    runtime-fatal deaths — SIGABRT or a fatal-error exit — as
    {!Rlimit}: an allocation failing inside the runtime or a domain
    cannot raise [Out_of_memory] cleanly. Total: every process status
    yields a verdict. *)

val signal_name : int -> string
(** Human name for an OCaml [Sys] signal number (["SIGKILL"], …). *)

(** {1 Child main} *)

exception Invalid_job of string

val exec :
  state_dir:string ->
  default_job_jobs:int ->
  flow_faults:Guard.Fault.spec list ->
  mem_mb:int option ->
  cpu_s:int option ->
  inject:inject ->
  job:Job.t ->
  pipe_w:Unix.file_descr ->
  close_fds:Unix.file_descr list ->
  'a
(** Run [job]'s attempt and exit; never returns. Call only in a
    freshly forked child. Arms the parent-death signal, closes
    [close_fds] (the daemon's listener, client connections and sibling
    pipe ends), installs SIGTERM → cooperative cancellation (park),
    redirects stdio to the job's [worker.log], applies rlimits, then
    streams progress to [pipe_w] and runs the flow, exiting with the
    protocol code above. *)
