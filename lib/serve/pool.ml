(* Supervisor for the daemon's forked worker processes.

   A fixed array of slots, each either idle or holding one running
   child: its pid, its job, the read end of its progress pipe, and the
   liveness bookkeeping the watchdog needs. Everything here runs on
   the daemon's single domain — the engine's select loop calls in for
   spawn / readable-pipe / reap / watchdog ticks — so there is no
   locking, and (critically) the parent stays fork-safe: OCaml 5
   refuses Unix.fork in any process that has ever created a domain,
   which is why job execution lives in children and the parent never
   spawns one.

   Lifecycle of a slot: [spawn] forks a child around the caller's
   closure (a Worker.exec call), the parent keeps the pipe's read end
   nonblocking; [handle_readable] consumes NDJSON progress (each byte
   refreshing the watchdog's liveness stamp, final status frames
   captured); [reap] collects exit statuses with waitpid WNOHANG and
   hands back children whose pipe hit EOF; [watchdog] SIGKILLs
   children that outran their job deadline or went silent. *)

module J = Obs.Jsonx

type running = {
  pid : int;
  job : Job.t;
  pipe_r : Unix.file_descr;
  rbuf : Buffer.t;
  started_s : float;
  mutable last_io_s : float;  (** last byte seen on the pipe *)
  mutable frame : (string * string) option;  (** final status frame *)
  mutable killed : Worker.kill_reason option;  (** watchdog SIGKILL *)
  mutable drain_killed : bool;  (** SIGKILLed by drain's hard phase *)
  mutable status : Unix.process_status option;
  mutable eof : bool;
}

type slot = { idx : int; mutable running : running option }

type t = { slots : slot array; stall_s : float; deadline_grace_s : float }

let create ~size ~stall_s ~deadline_grace_s =
  { slots = Array.init (max 1 size) (fun idx -> { idx; running = None });
    stall_s; deadline_grace_s }

let size t = Array.length t.slots

let busy t = Array.exists (fun s -> s.running <> None) t.slots

let idle_slots t =
  Array.fold_left (fun n s -> if s.running = None then n + 1 else n) 0 t.slots

type spawn_result = Spawned of int | No_slot | Fork_failed of string

let spawn t ~job ~extra_close ~child =
  match Array.find_opt (fun s -> s.running = None) t.slots with
  | None -> No_slot
  | Some slot ->
    let sibling_pipes =
      Array.to_list t.slots
      |> List.filter_map (fun s -> Option.map (fun r -> r.pipe_r) s.running)
    in
    (match Unix.pipe () with
    | exception Unix.Unix_error (e, _, _) -> Fork_failed (Unix.error_message e)
    | pipe_r, pipe_w ->
      (* fork duplicates stdio buffers; flush so the child cannot
         replay the parent's pending output into its log *)
      flush stdout;
      flush stderr;
      Format.pp_print_flush Format.err_formatter ();
      (match Unix.fork () with
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close pipe_r with Unix.Unix_error _ -> ());
        (try Unix.close pipe_w with Unix.Unix_error _ -> ());
        Fork_failed (Unix.error_message e)
      | 0 ->
        (* The child must not hold the read end (its EOF is the
           parent's end-of-stream signal) nor any sibling's. [child]
           never returns (Worker.exec exits); exit defensively if it
           somehow does — returning here would run the daemon twice. *)
        child ~pipe_w ~close_fds:(pipe_r :: (sibling_pipes @ extra_close));
        Stdlib.exit 127
      | pid ->
        Unix.close pipe_w;
        Unix.set_nonblock pipe_r;
        let now = Unix.gettimeofday () in
        slot.running <-
          Some
            { pid; job; pipe_r; rbuf = Buffer.create 256; started_s = now;
              last_io_s = now; frame = None; killed = None;
              drain_killed = false; status = None; eof = false };
        Spawned pid))

let pipe_fds t =
  Array.to_list t.slots
  |> List.filter_map (fun s ->
         match s.running with
         | Some r when not r.eof -> Some r.pipe_r
         | _ -> None)

(* Split complete lines out of [r.rbuf], leaving any partial tail. *)
let take_lines buf =
  let data = Buffer.contents buf in
  Buffer.clear buf;
  let rec go start acc =
    match String.index_from_opt data start '\n' with
    | Some i -> go (i + 1) (String.sub data start (i - start) :: acc)
    | None ->
      Buffer.add_substring buf data start (String.length data - start);
      List.rev acc
  in
  go 0 []

let scratch = Bytes.create 65536

let consume r ~on_event =
  List.iter
    (fun line ->
      match J.parse line with
      | Error _ -> ()
      | Ok j ->
        (match Option.bind (J.member "event" j) J.to_string_opt with
        | Some "job-attempt-end" ->
          let str name =
            Option.value ~default:""
              (Option.bind (J.member name j) J.to_string_opt)
          in
          r.frame <- Some (str "outcome", str "detail")
        | _ -> ());
        on_event r.job j)
    (take_lines r.rbuf)

(* Drain the (nonblocking) pipe: refresh liveness, buffer bytes, parse
   complete lines. Returns at EOF (pipe closed, fd released), EAGAIN,
   or a transient read error. *)
let rec read_pipe r ~on_event =
  if not r.eof then
    match Unix.read r.pipe_r scratch 0 (Bytes.length scratch) with
    | 0 ->
      r.eof <- true;
      (try Unix.close r.pipe_r with Unix.Unix_error _ -> ());
      consume r ~on_event
    | n ->
      r.last_io_s <- Unix.gettimeofday ();
      Buffer.add_subbytes r.rbuf scratch 0 n;
      consume r ~on_event;
      read_pipe r ~on_event
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_pipe r ~on_event
    | exception Unix.Unix_error _ ->
      (* Treat any other read error like EOF: stop watching the pipe;
         the exit status still classifies the job. *)
      r.eof <- true;
      (try Unix.close r.pipe_r with Unix.Unix_error _ -> ())

let handle_readable t fd ~on_event =
  Array.iter
    (fun s ->
      match s.running with
      | Some r when (not r.eof) && r.pipe_r = fd -> read_pipe r ~on_event
      | _ -> ())
    t.slots

(* Collect exit statuses and hand back every child that is fully gone:
   reaped by waitpid AND its pipe at EOF (all progress consumed — the
   final status frame must not race the verdict). Once the child is
   dead there are no writers left, so the pipe always reaches EOF. *)
let reap t ~on_event =
  let finished = ref [] in
  Array.iter
    (fun s ->
      match s.running with
      | None -> ()
      | Some r ->
        if r.status = None then begin
          match Unix.waitpid [ Unix.WNOHANG ] r.pid with
          | 0, _ -> ()
          | _, st -> r.status <- Some st
          | exception Unix.Unix_error _ ->
            (* ECHILD would mean someone else reaped our child; call
               the status unknowable and classify as lost. *)
            r.status <- Some (Unix.WEXITED 127)
        end;
        (match r.status with
        | Some _ ->
          read_pipe r ~on_event;
          if r.eof then begin
            s.running <- None;
            finished := r :: !finished
          end
        | None -> ()))
    t.slots;
  List.rev !finished

(* SIGKILL children that outran their job's deadline (plus grace) or
   went silent past the stall bound. Heartbeats count as liveness —
   the child emits one every 0.5 s — so silence really means a wedged
   or dead-but-unreaped worker, not a slow job. *)
let watchdog t ~now =
  let kills = ref [] in
  Array.iter
    (fun s ->
      match s.running with
      | Some r when r.killed = None && (not r.drain_killed) && r.status = None ->
        let reason =
          match r.job.Job.spec.Proto.deadline_s with
          | Some d when now -. r.started_s > d +. t.deadline_grace_s ->
            Some (Worker.Kill_deadline d)
          | _ ->
            if now -. r.last_io_s > t.stall_s then Some (Worker.Kill_hang t.stall_s)
            else None
        in
        (match reason with
        | None -> ()
        | Some reason ->
          r.killed <- Some reason;
          kills := (r.job, reason) :: !kills;
          (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ()))
      | _ -> ())
    t.slots;
  List.rev !kills

(* Drain, soft phase: ask every running child to checkpoint and park
   (its SIGTERM handler requests cooperative cancellation). *)
let term_all t =
  Array.iter
    (fun s ->
      match s.running with
      | Some r when r.status = None ->
        (try Unix.kill r.pid Sys.sigterm with Unix.Unix_error _ -> ())
      | _ -> ())
    t.slots

(* Drain, hard phase: SIGKILL whatever ignored the park request. The
   job goes back to pending — its checkpoint store resumes it. *)
let kill_all t =
  Array.iter
    (fun s ->
      match s.running with
      | Some r when r.status = None ->
        r.drain_killed <- true;
        (try Unix.kill r.pid Sys.sigkill with Unix.Unix_error _ -> ())
      | _ -> ())
    t.slots

let views t ~now =
  Array.to_list t.slots
  |> List.map (fun s ->
         match s.running with
         | None ->
           { Proto.slot = s.idx; pid = None; job = None; elapsed_s = 0.0 }
         | Some r ->
           { Proto.slot = s.idx; pid = Some r.pid; job = Some r.job.Job.id;
             elapsed_s = now -. r.started_s })
