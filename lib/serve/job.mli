(** One placement job and its on-disk footprint.

    A job lives in [<state_dir>/jobs/<id>/]: [job.json] (spec + state,
    written atomically via tmp + rename so a kill -9 never leaves a
    torn file), [ckpt/] (the job's checkpoint store, what makes
    recovery bit-identical), and [result.json] / [report.html] once
    done. *)

type t = {
  id : string;  (** ["j%04d"] of [seq] *)
  seq : int;  (** submission order, unique within a state dir *)
  spec : Proto.submit;
  mutable state : Proto.state;
  mutable attempts : int;
  mutable detail : string;
}

val make : seq:int -> Proto.submit -> t
(** A fresh pending job. *)

val id_of_seq : int -> string

val view : t -> Proto.job_view

val dir : state_dir:string -> string -> string

val ckpt_dir : state_dir:string -> string -> string

val meta_path : state_dir:string -> string -> string

val result_path : state_dir:string -> string -> string

val report_path : state_dir:string -> string -> string

val mkdir_p : string -> unit

val save : state_dir:string -> t -> unit
(** Atomically (re)write [job.json]. *)

val load : state_dir:string -> string -> (t, string) result

val load_all : state_dir:string -> t list
(** Every job with a readable [job.json], sorted by [seq]. Torn or
    foreign entries are skipped — recovery starts from whatever
    survived. *)

val to_json : t -> Obs.Jsonx.t

val of_json : Obs.Jsonx.t -> (t, string) result
