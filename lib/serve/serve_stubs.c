/* OS bindings for worker-process isolation.

   Three tiny knobs the daemon's forked workers need and the Unix
   module does not expose: address-space and CPU rlimits (per-job
   resource containment) and Linux's parent-death signal (a kill -9 on
   the daemon must never leak orphan workers). Everything here runs in
   the child between fork and the job flow, so failures raise into
   OCaml rather than abort. */

#include <caml/mlvalues.h>
#include <caml/fail.h>
#include <signal.h>
#include <sys/resource.h>
#ifdef __linux__
#include <sys/prctl.h>
#endif

/* Cap the virtual address space at [bytes]. Soft = hard, so a breach
   surfaces as a failed allocation (ENOMEM -> OCaml Out_of_memory)
   the worker can catch and classify, not a kill. */
value hidap_serve_rlimit_as(value bytes)
{
  struct rlimit rl;
  rl.rlim_cur = (rlim_t)Long_val(bytes);
  rl.rlim_max = (rlim_t)Long_val(bytes);
  if (setrlimit(RLIMIT_AS, &rl) != 0)
    caml_failwith("setrlimit(RLIMIT_AS) failed");
  return Val_unit;
}

/* Cap CPU time at [sec] seconds: SIGXCPU at the soft limit (the
   parent classifies the signaled exit as an rlimit kill), SIGKILL two
   seconds later if the process somehow survives it. */
value hidap_serve_rlimit_cpu(value sec)
{
  struct rlimit rl;
  rl.rlim_cur = (rlim_t)Long_val(sec);
  rl.rlim_max = (rlim_t)Long_val(sec) + 2;
  if (setrlimit(RLIMIT_CPU, &rl) != 0)
    caml_failwith("setrlimit(RLIMIT_CPU) failed");
  return Val_unit;
}

/* Deliver SIGKILL to the calling process when its parent dies.
   Linux-only; elsewhere this is a no-op and workers merely outlive a
   kill -9 on the daemon until their job ends. */
value hidap_serve_pdeathsig(value unit)
{
#ifdef __linux__
  (void)prctl(PR_SET_PDEATHSIG, SIGKILL);
#endif
  (void)unit;
  return Val_unit;
}
