(** The hidap serve daemon engine.

    One process, one domain, many worker processes. The daemon runs a
    single-domain select loop (accept, NDJSON framing, request
    handling, progress relay, spawn/reap/watchdog), and every job
    attempt executes in a forked child ({!Worker.exec}) supervised
    through {!Pool}. Jobs are crash-contained — a worker can segfault,
    OOM, spin or be SIGKILLed and the daemon only observes an exit
    status — and genuinely concurrent: a fresh process per attempt
    makes {!Guard.Budget}'s global deadline/cancel cells per-job, so
    [workers > 1] runs that many jobs in parallel (the restriction
    that serialized PR 9's engine).

    Fork-safety contract: OCaml 5 refuses [Unix.fork] in a process
    that has {e ever} created a domain, so nothing on the daemon side
    may call [Domain.spawn]. Children may (a job's [jobs] config
    drives {!Parexec} there).

    Robustness (DESIGN.md §15): bounded admission with structured
    backpressure rejections; per-job address-space/CPU rlimits whose
    exhaustion fails deterministically without retry; per-attempt
    deadlines enforced in the child with a parent-side watchdog
    backstop; a hung-job watchdog that SIGKILLs workers silent past
    the stall bound and retries their jobs; deterministic
    capped-exponential retry for transient failures and lost workers;
    three-phase drain (grace, SIGTERM checkpoint-and-park, SIGKILL
    with re-pend); crash recovery by state-dir scan, bit-identical
    thanks to each job's {!Ckpt} store; stale-socket recovery (a dead
    leftover socket is probed and unlinked, a live daemon's socket is
    refused with a [serve-socket-busy] diag).

    The serve.* fault sites are checked with {e transient} semantics —
    a spec [site:N] fails the first N hits and then heals. Worker
    sites ([serve.worker], [serve.worker_kill], [serve.worker_hang])
    are counted in the parent, once per spawn, and executed in the
    child; that is what lets one spec span retries across processes. *)

type config = {
  socket_path : string;  (** Unix socket path (~100 byte OS limit) *)
  state_dir : string;  (** per-job dirs live under [state_dir]/jobs *)
  queue_limit : int;  (** admission bound; the N+1th submit is rejected *)
  workers : int;  (** worker process slots (clamped to ≥ 1) *)
  drain_grace_s : float;
      (** per-phase drain grace: first let in-flight jobs finish, then
          after SIGTERM let them checkpoint and park, then SIGKILL *)
  retry_base_s : float;  (** backoff of the first retry *)
  retry_cap_s : float;
      (** ceiling of [base * 2^(attempt-1)] — deterministic, no jitter *)
  max_line_bytes : int;  (** request framing bound *)
  default_job_jobs : int;  (** worker domains for jobs submitting [jobs=0] *)
  job_mem_mb : int option;
      (** per-worker address-space rlimit; exhaustion fails the job
          with an rlimit classification, no retry *)
  job_cpu_s : int option;
      (** per-worker CPU-time rlimit (SIGXCPU); same classification *)
  stall_s : float;
      (** watchdog: SIGKILL a worker whose pipe is silent this long
          (heartbeats arrive every 0.5 s, so this catches wedged
          workers, not slow jobs); its job retries as worker-lost *)
  deadline_grace_s : float;
      (** watchdog: slack past a job's own deadline before the parent
          concludes the child missed it and kills from outside *)
  faults : Guard.Fault.spec list;
      (** serve.* specs are armed engine-side; the rest ride into each
          worker and arm around the flow ({!Guard.Supervisor.with_run}) *)
}

val default_config : socket_path:string -> state_dir:string -> config
(** queue_limit 8, 1 worker, drain_grace_s 5, retry 0.05 s doubling
    capped at 2 s, 1 MiB lines, single-domain jobs, no rlimits,
    stall_s 30, deadline_grace_s 2, no faults. *)

type t

val create : config -> t
(** Bind and listen on the socket, prepare the state dir, and recover:
    jobs found pending/running/parked from a previous daemon are
    re-enqueued as pending (attempts preserved, checkpoints intact).
    A leftover socket file is probed first — unlinked when no daemon
    answers, refused with @raise Guard.Diag.Fail ([serve-socket-busy])
    when one does. Clients may connect as soon as [create] returns;
    requests are answered once {!run} starts. Ignores SIGPIPE
    process-wide. *)

val run : t -> unit
(** Serve until drained: returns after a drain request once every
    in-flight job finished, parked, or was killed and re-pended, with
    every socket closed and the socket path unlinked. The caller then
    exits 0. *)

val request_drain : t -> unit
(** Stop admitting jobs and shut down gracefully. Async-signal-safe
    (one atomic store) — call it from a SIGTERM/SIGINT handler. *)

val stats : t -> Proto.stats

val backoff_s : config -> int -> float
(** [backoff_s cfg attempt] — the deterministic delay after a failed
    [attempt] (1-based): [min retry_cap_s (retry_base_s * 2^(attempt-1))]. *)
