(** The hidap serve daemon engine.

    Two domains: the caller's (running {!run}: accept loop, NDJSON
    framing, request handling, progress relay) and one worker
    executing jobs strictly one at a time. Serial job execution is
    the contract that keeps {!Guard.Budget}'s whole-run deadline and
    cancellation cells unambiguous; parallelism lives {e inside} a job
    (its [jobs] config drives {!Parexec}), where it is deterministic.

    Robustness (DESIGN.md §15): bounded admission with structured
    backpressure rejections; per-attempt deadlines landing jobs in
    timed-out; deterministic capped-exponential retry for transient
    failures; graceful drain (finish or checkpoint-and-park the
    in-flight job, leave the rest pending on disk); crash recovery by
    state-dir scan, bit-identical thanks to each job's {!Ckpt} store.

    The serve.* fault sites ([serve.accept], [serve.write],
    [serve.worker]) are checked engine-side with {e transient}
    semantics: a spec [site:N] fails the first N hits and then heals
    (flow sites keep their fire-from-hit-N-on meaning). Transient is
    what server fault testing needs — a retry must eventually be able
    to succeed. *)

type config = {
  socket_path : string;  (** Unix socket path (~100 byte OS limit) *)
  state_dir : string;  (** per-job dirs live under [state_dir]/jobs *)
  queue_limit : int;  (** admission bound; the N+1th submit is rejected *)
  drain_grace_s : float;
      (** how long a drain lets the in-flight job finish before
          requesting cooperative cancellation (checkpoint + park) *)
  retry_base_s : float;  (** backoff of the first retry *)
  retry_cap_s : float;
      (** ceiling of [base * 2^(attempt-1)] — deterministic, no jitter *)
  max_line_bytes : int;  (** request framing bound *)
  default_job_jobs : int;  (** worker domains for jobs submitting [jobs=0] *)
  faults : Guard.Fault.spec list;
      (** serve.* specs are armed engine-side; the rest are armed
          around every job's flow ({!Guard.Supervisor.with_run}) *)
}

val default_config : socket_path:string -> state_dir:string -> config
(** queue_limit 8, drain_grace_s 5, retry 0.05 s doubling capped at
    2 s, 1 MiB lines, single-domain jobs, no faults. *)

type t

val create : config -> t
(** Bind and listen on the socket, prepare the state dir, and recover:
    jobs found pending/running/parked from a previous daemon are
    re-enqueued as pending (attempts preserved, checkpoints intact).
    Clients may connect as soon as [create] returns; requests are
    answered once {!run} starts. Ignores SIGPIPE process-wide. *)

val run : t -> unit
(** Serve until drained: returns after a drain request once the
    in-flight job finished or parked, with every socket closed and the
    socket path unlinked. The caller then exits 0. *)

val request_drain : t -> unit
(** Stop admitting jobs and shut down gracefully. Async-signal-safe
    (one atomic store) — call it from a SIGTERM/SIGINT handler. *)

val stats : t -> Proto.stats

val backoff_s : config -> int -> float
(** [backoff_s cfg attempt] — the deterministic delay after a failed
    [attempt] (1-based): [min retry_cap_s (retry_base_s * 2^(attempt-1))]. *)
