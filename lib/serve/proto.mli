(** hidap-serve wire protocol (NDJSON over a Unix socket).

    One JSON object per line in both directions, each carrying the
    envelope [{"schema":"hidap-serve","version":1,...}] plus a ["req"]
    (client to daemon) or ["resp"] (daemon to client) tag. Versioning
    follows the other hidap schemas: adding fields is
    backward-compatible, anything else bumps [version]; decoders
    ignore unknown fields and refuse newer versions.

    Decoding is {e total}: malformed bytes become [Error _], never an
    exception, because the daemon feeds raw client input through these
    functions (the framing fuzz tests assert exactly this). *)

val schema : string
(** ["hidap-serve"] *)

val version : int
(** 1 *)

(** {1 Job states}

    The documented state machine (DESIGN.md §15):
    pending → running → {done, failed, timed-out, parked}, with
    running → pending again on a retry and parked/running/pending →
    pending on daemon restart. *)

type state = Pending | Running | Done | Failed | Timed_out | Parked

val state_to_string : state -> string
(** Wire names: pending / running / done / failed / timed-out / parked. *)

val state_of_string : string -> state option

val state_terminal : state -> bool
(** True for the states a watch ends on: done, failed, timed-out and
    parked (parked is terminal for this daemon process; a restart
    re-enqueues the job). *)

(** {1 Requests} *)

type submit = {
  circuit : string option;  (** synthetic suite circuit name (c1..c8) *)
  hnl : string option;  (** inline HNL netlist text *)
  seed : int;
  lambda : float option;
  jobs : int;  (** worker domains inside the job; 0 = daemon default *)
  priority : int;  (** higher runs first; FIFO within a priority *)
  deadline_s : float option;  (** per-attempt wall-clock deadline *)
  max_retries : int;  (** extra attempts after a transient failure *)
  label : string;
}

val default_submit : submit
(** [seed 1], no circuit/hnl, [jobs 0], [priority 0], no deadline,
    [max_retries 0], empty label — absent wire fields decode to these. *)

type request =
  | Ping
  | Submit of submit
  | Status of string  (** job id *)
  | List
  | Stats
  | Result of string  (** completed job's QoR ledger *)
  | Report of string  (** completed job's HTML report *)
  | Watch of string  (** stream progress until the job is terminal *)
  | Drain  (** ask the daemon to drain (same as SIGTERM) *)

val request_to_json : request -> Obs.Jsonx.t

val request_of_json : Obs.Jsonx.t -> (request, string) result

val request_of_line : string -> (request, string) result

(** {1 Responses} *)

type job_view = {
  id : string;
  label : string;
  state : state;
  attempts : int;
  priority : int;
  detail : string;  (** last failure / retry / recovery note *)
}

(** One worker slot of the daemon's process pool. [pid] and [job] are
    absent when idle. The pid is exposed on purpose: operators (and
    the stress tests) can kill a wedged worker externally and let the
    daemon absorb and retry it. *)
type worker_view = {
  slot : int;
  pid : int option;
  job : string option;
  elapsed_s : float;  (** seconds the current job has been running; 0 idle *)
}

type stats = {
  queue_depth : int;
  queue_limit : int;
  accepted : int;
  rejected_backpressure : int;
  rejected_draining : int;
  completed : int;
  failed : int;
  timed_out : int;
  parked : int;
  retried : int;
  worker_lost : int;
      (** workers that died unclassified (killed, crashed, or
          watchdog-SIGKILLed); each is a [serve-worker-lost] event *)
  draining : bool;
  workers : worker_view list;  (** one entry per pool slot *)
}

val worker_view_to_json : worker_view -> Obs.Jsonx.t

val worker_view_of_json : Obs.Jsonx.t -> worker_view

type response =
  | Pong
  | Accepted of { id : string; depth : int }
  | Rejected of { reason : string; depth : int; limit : int }
      (** [reason] is ["backpressure"] (bounded queue full), ["draining"]
          or ["invalid"] (unusable submission) *)
  | Job of job_view
  | Jobs of job_view list
  | Stats_reply of stats
  | Result_reply of { id : string; qor : Obs.Jsonx.t }
  | Report_reply of { id : string; html : string }
  | Progress of { id : string; event : Obs.Jsonx.t }
      (** one relayed hidap-progress event of a watched job *)
  | Draining_reply  (** drain acknowledged *)
  | Error_reply of string

val job_view_to_json : job_view -> Obs.Jsonx.t

val job_view_of_json : Obs.Jsonx.t -> (job_view, string) result

val response_to_json : response -> Obs.Jsonx.t

val response_of_json : Obs.Jsonx.t -> (response, string) result

val response_of_line : string -> (response, string) result

val submit_fields : submit -> (string * Obs.Jsonx.t) list
(** The submit payload as envelope fields (shared with the on-disk
    job.json). *)

val submit_of_json : Obs.Jsonx.t -> submit
(** Lenient: absent fields take their {!default_submit} values. *)

val to_line : Obs.Jsonx.t -> string
(** Compact one-line rendering (the only framing the protocol has). *)
