(** Bounded priority queue between the daemon's accept loop and its
    worker.

    Ordering: priority descending, then submission sequence ascending
    (FIFO within a priority). Entries may carry a future ready time
    (retry backoff); {!pop} never hands one out early. The bound is
    the admission-control limit — {!push} refuses past it, returning
    the depth for the structured backpressure rejection. *)

type 'a t

type push_result =
  | Enqueued of int  (** depth after the push *)
  | Full of int  (** depth that caused the refusal *)

val create : limit:int -> 'a t
(** [limit] is clamped to at least 1. *)

val push : 'a t -> priority:int -> seq:int -> ?ready_s:float -> 'a -> push_result
(** Admission-controlled push; [Full] when the queue is at its limit
    or closed. [ready_s] is an absolute [Unix.gettimeofday] time
    before which the entry is not eligible (default: immediately). *)

val force_push : 'a t -> priority:int -> seq:int -> ?ready_s:float -> 'a -> unit
(** Push past the admission bound — for retries and crash recovery,
    which re-enter work that was already admitted once. Silently
    dropped on a closed queue (the entry is persisted on disk and the
    next daemon will recover it). *)

val try_pop : 'a t -> 'a option
(** Non-blocking {!pop}: the best eligible entry right now, or [None]
    when the queue is closed, empty, or holds only entries still
    backing off. The daemon's select loop polls this once per free
    worker slot per tick. *)

val pop : 'a t -> 'a option
(** Block until an eligible entry exists and return the best one, or
    [None] once the queue is closed. A closed queue returns [None]
    even when entries remain: close means drain, and undone entries
    stay persisted for the next daemon. Single-consumer. *)

val close : 'a t -> unit
(** Stop the queue: subsequent pushes are refused/dropped and {!pop}
    returns [None]. *)

val depth : 'a t -> int

val limit : 'a t -> int
