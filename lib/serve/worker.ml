(* One job attempt inside a forked worker process.

   The daemon forks (no exec) a child per attempt; this module is the
   child's whole life. Containment comes from the OS, not from OCaml
   discipline: address-space and CPU rlimits bound the job, a
   parent-death signal reaps orphans if the daemon is SIGKILLed, and
   the only channels back to the daemon are the progress pipe (the
   Obs.Stream NDJSON feed plus one final [job-attempt-end] status
   frame) and the exit status. A worker can die any way at all —
   clean, nonzero, signaled, rlimit-killed, silently hung — and
   {!classify} maps every one of those ends to a verdict the engine
   applies.

   Being a fresh process also makes Guard.Budget's process-global
   deadline/cancel cells per-job again: the very thing that forced
   PR 9's engine to run jobs serially now falls out of fork, and jobs
   run genuinely concurrently. *)

module J = Obs.Jsonx

external rlimit_as : int -> unit = "hidap_serve_rlimit_as"

external rlimit_cpu : int -> unit = "hidap_serve_rlimit_cpu"

external pdeathsig : unit -> unit = "hidap_serve_pdeathsig"

(* ---- exit-code protocol ------------------------------------------- *)

(* Classified self-reported ends live in the sysexits-style 64+ range
   so they can never collide with a library calling exit 1/2 on us. *)
let exit_done = 0

let exit_invalid = 64

let exit_timed_out = 65

let exit_parked = 66

let exit_transient = 67

let exit_oom = 68

(* ---- fault injection ----------------------------------------------- *)

(* The parent decides (from its persistent serve.* hit counters)
   whether this attempt is sabotaged and how; the decision rides into
   the child through forked memory. *)
type inject =
  | Inj_none
  | Inj_fail  (** serve.worker Raise: die at attempt start (transient) *)
  | Inj_stall of float  (** serve.worker Stall: a slow job, not a dead one *)
  | Inj_kill of float  (** serve.worker_kill: self-SIGKILL after delay *)
  | Inj_hang  (** serve.worker_hang: silent forever; only the watchdog ends it *)

(* ---- exit classification (parent side, pure) ----------------------- *)

type kill_reason =
  | Kill_deadline of float  (** watchdog: ran past the job deadline *)
  | Kill_hang of float  (** watchdog: no pipe bytes for this many seconds *)

type verdict =
  | Done
  | Invalid of string
  | Timed_out of string
  | Parked of string
  | Rlimit of string  (** resource exhaustion is deterministic: fail, no retry *)
  | Transient of string  (** classified failure: retry within the budget *)
  | Lost of string  (** unclassified death: retry, counted as worker-lost *)

let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigbus then "SIGBUS"
  else if s = Sys.sigxcpu then "SIGXCPU"
  else if s = Sys.sigxfsz then "SIGXFSZ"
  else Printf.sprintf "signal %d" s

(* Map how the worker ended to what happens to its job. [frame] is the
   final status frame if one arrived on the pipe — preferred, because
   the child knows why it died; the fallbacks cover deaths too sudden
   to leave one. [killed] records a watchdog SIGKILL, which outranks
   the exit status (a SIGKILLed child always reports WSIGNALED, but
   the reason lives in the parent). [mem_limited] marks an armed
   address-space rlimit: exhaustion usually surfaces as a clean
   Out_of_memory (exit 68), but an allocation failing inside the
   runtime or a domain is fatal — SIGABRT or a fatal-error exit with
   nothing on the pipe — and under an explicit limit that death is
   the limit's doing, so it classifies as rlimit, not lost. *)
let runtime_fatal_exit c = c = 125 || c = 2

let classify status ~frame ~killed ~mem_limited ~attempt =
  let detail default =
    match frame with Some (_, d) when d <> "" -> d | _ -> default
  in
  match killed with
  | Some (Kill_deadline d) ->
    Timed_out
      (Printf.sprintf
         "serve-worker-lost: watchdog killed the worker past its %gs deadline \
          on attempt %d"
         d attempt)
  | Some (Kill_hang s) ->
    Lost
      (Printf.sprintf
         "serve-worker-lost: no progress for %gs; watchdog killed the worker \
          on attempt %d"
         s attempt)
  | None ->
    (match status with
    | Unix.WEXITED c when c = exit_done -> Done
    | Unix.WEXITED c when c = exit_invalid -> Invalid (detail "invalid job")
    | Unix.WEXITED c when c = exit_timed_out ->
      Timed_out (detail (Printf.sprintf "deadline exceeded on attempt %d" attempt))
    | Unix.WEXITED c when c = exit_parked ->
      Parked (detail "parked by drain; restart resumes it")
    | Unix.WEXITED c when c = exit_oom ->
      Rlimit
        (detail
           (Printf.sprintf "rlimit: address-space limit exhausted on attempt %d"
              attempt))
    | Unix.WEXITED c when c = exit_transient -> Transient (detail "transient failure")
    | Unix.WEXITED c when mem_limited && frame = None && runtime_fatal_exit c ->
      Rlimit
        (Printf.sprintf
           "rlimit: address-space limit exhausted on attempt %d (runtime fatal \
            exit %d)"
           attempt c)
    | Unix.WEXITED c ->
      Lost
        (Printf.sprintf
           "serve-worker-lost: worker exited with unexpected status %d on \
            attempt %d"
           c attempt)
    | Unix.WSIGNALED s when s = Sys.sigxcpu ->
      Rlimit
        (Printf.sprintf "rlimit: CPU-time limit exhausted on attempt %d (SIGXCPU)"
           attempt)
    | Unix.WSIGNALED s when mem_limited && frame = None && s = Sys.sigabrt ->
      Rlimit
        (Printf.sprintf
           "rlimit: address-space limit exhausted on attempt %d (runtime abort)"
           attempt)
    | Unix.WSIGNALED s ->
      Lost
        (Printf.sprintf "serve-worker-lost: worker killed by %s on attempt %d"
           (signal_name s) attempt)
    | Unix.WSTOPPED s ->
      Lost
        (Printf.sprintf "serve-worker-lost: worker stopped by %s on attempt %d"
           (signal_name s) attempt))

(* ---- the job flow (runs only in the child) ------------------------- *)

exception Invalid_job of string

let design_of_spec (spec : Proto.submit) =
  match (spec.Proto.circuit, spec.Proto.hnl) with
  | Some name, None ->
    (match Circuitgen.Suite.find name with
    | Some c -> (name, Circuitgen.Gen.generate c.Circuitgen.Suite.params)
    | None -> raise (Invalid_job (Printf.sprintf "unknown suite circuit %s" name)))
  | None, Some text ->
    let name = if spec.Proto.label <> "" then spec.Proto.label else "inline" in
    (match Hnl.Parser.parse_string text with
    | Ok d -> (name, d)
    | Error { Hnl.Parser.line; col; message } ->
      raise (Invalid_job (Printf.sprintf "hnl:%d:%d: %s" line col message)))
  | Some _, Some _ | None, None ->
    raise (Invalid_job "give exactly one of circuit or hnl")

let run_attempt ~state_dir ~default_job_jobs ~flow_faults (job : Job.t) =
  let spec = job.Job.spec in
  let name, design = design_of_spec spec in
  let design =
    match Guard.Validate.design ~strict:false design with
    | Ok r -> r.Guard.Validate.design
    | Error diags ->
      raise
        (Invalid_job
           (String.concat "; "
              (List.map (fun d -> Format.asprintf "%a" Guard.Diag.pp d) diags)))
  in
  let flat =
    try Netlist.Flat.elaborate design
    with Invalid_argument msg -> raise (Invalid_job msg)
  in
  let config =
    { Hidap.Config.default with
      Hidap.Config.seed = spec.Proto.seed;
      jobs = (if spec.Proto.jobs <= 0 then default_job_jobs else spec.Proto.jobs);
      faults = flow_faults }
  in
  let config =
    match spec.Proto.lambda with
    | Some l -> Hidap.Config.with_lambda config l
    | None -> config
  in
  let die = Hidap.die_for flat ~config in
  let ckdir = Job.ckpt_dir ~state_dir job.Job.id in
  Job.mkdir_p ckdir;
  let fp =
    { Ckpt.State.circuit = name; seed = config.Hidap.Config.seed;
      lambda = config.Hidap.Config.lambda;
      sa_starts = config.Hidap.Config.sa_starts;
      cells = Netlist.Flat.cell_count flat;
      macro_count = Netlist.Flat.macro_count flat }
  in
  let session =
    match Ckpt.Session.start ~dir:ckdir ~resume:true fp with
    | Ok s -> s
    | Error d -> raise (Invalid_job (Format.asprintf "%a" Guard.Diag.pp d))
  in
  (* The deadline is per attempt: each retry gets the full window. The
     budget cells are process-global but the process is ours alone. *)
  Option.iter Guard.Budget.set_deadline spec.Proto.deadline_s;
  Fun.protect ~finally:Guard.Budget.clear_deadline @@ fun () ->
  match
    Guard.Supervisor.with_run ~faults:flow_faults (fun () ->
        let r = Hidap.place ~config ~die ~ckpt:session flat in
        let macros =
          List.map
            (fun (p : Hidap.macro_placement) ->
              { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect;
                orient = p.Hidap.orient })
            r.Hidap.placements
        in
        let m, _ =
          Evalflow.measure ~flat ~gseq:r.Hidap.gseq ~ports:r.Hidap.ports
            ~die:r.Hidap.die ~macros
        in
        (r, m))
  with
  | (r, measured), degradations ->
    let sm = Ckpt.Session.summary session in
    let ckpt =
      { Qor.Record.resumed_from = sm.Ckpt.Session.resumed_from;
        snapshots_written = sm.Ckpt.Session.snapshots_written;
        instances_reused = sm.Ckpt.Session.instances_reused }
    in
    let record =
      Qor.Record.of_place ~circuit:name ~flat ~config ~degradations ~measured
        ~ckpt r
    in
    Qor.Record.write_ledger (Job.result_path ~state_dir job.Job.id) [ record ];
    Qor.Html.write_file
      (Job.report_path ~state_dir job.Job.id)
      (Qor.Html.render ~title:(Printf.sprintf "hidap serve — %s" job.Job.id)
         [ record ]);
    ()
  | exception Guard.Budget.Cancelled c ->
    (* Drain reached this job: park it on a final snapshot so the next
       daemon resumes it bit-identically. *)
    (try Ckpt.Session.save_now session ~stage:false with _ -> ());
    raise (Guard.Budget.Cancelled c)

(* ---- child main ----------------------------------------------------- *)

let redirect_stdio path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 with
  | fd ->
    Unix.dup2 fd Unix.stdout;
    Unix.dup2 fd Unix.stderr;
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let exec ~state_dir ~default_job_jobs ~flow_faults ~mem_mb ~cpu_s ~inject
    ~(job : Job.t) ~pipe_w ~close_fds =
  pdeathsig ();
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) close_fds;
  (* Drain reaches a worker as SIGTERM: cooperative cancellation, so
     the flow checkpoints and parks instead of dying mid-move. The
     parent's own SIGTERM/SIGINT handlers (drain request) are replaced
     — they capture the parent's engine and mean nothing here. *)
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle (fun _ -> Guard.Budget.request_cancel ()));
  (try Sys.set_signal Sys.sigint Sys.Signal_ignore with Invalid_argument _ -> ());
  Guard.Budget.clear_cancel ();
  Guard.Budget.clear_deadline ();
  redirect_stdio (Filename.concat (Job.dir ~state_dir job.Job.id) "worker.log");
  (match mem_mb with Some mb -> rlimit_as (mb * 1024 * 1024) | None -> ());
  (match cpu_s with Some s -> rlimit_cpu s | None -> ());
  (match inject with
  | Inj_hang ->
    (* Silent forever — not one stream byte. Only the parent's
       watchdog can end this attempt, which is exactly what the
       serve.worker_hang fault exists to prove. *)
    while true do
      Unix.sleepf 3600.0
    done
  | _ -> ());
  Obs.Stream.enable ~heartbeat_s:0.5 ~close_on_disable:true
    (Unix.out_channel_of_descr pipe_w);
  (match inject with
  | Inj_kill delay ->
    ignore
      (Domain.spawn (fun () ->
           Unix.sleepf delay;
           Unix.kill (Unix.getpid ()) Sys.sigkill))
  | _ -> ());
  Obs.Stream.emit "job-attempt"
    [ ("id", J.String job.Job.id); ("attempt", J.Int job.Job.attempts) ];
  let finish code outcome detail =
    (try
       Obs.Stream.emit "job-attempt-end"
         [ ("id", J.String job.Job.id); ("attempt", J.Int job.Job.attempts);
           ("outcome", J.String outcome); ("detail", J.String detail) ]
     with _ -> ());
    (try Obs.Stream.disable () with _ -> ());
    Stdlib.exit code
  in
  match
    (match inject with
    | Inj_fail ->
      raise (Guard.Fault.Injected { site = "serve.worker"; hit = job.Job.attempts })
    | Inj_stall s -> Unix.sleepf s
    | _ -> ());
    run_attempt ~state_dir ~default_job_jobs ~flow_faults job
  with
  | () -> finish exit_done "done" ""
  | exception Guard.Budget.Deadline { deadline_s } ->
    finish exit_timed_out "timed-out"
      (Printf.sprintf "deadline %gs exceeded on attempt %d" deadline_s
         job.Job.attempts)
  | exception Guard.Budget.Cancelled _ ->
    finish exit_parked "parked" "parked by drain; restart resumes it"
  | exception Invalid_job msg -> finish exit_invalid "invalid" msg
  | exception Out_of_memory ->
    finish exit_oom "rlimit"
      (match mem_mb with
      | Some mb ->
        Printf.sprintf "rlimit: address-space limit of %d MB exhausted on attempt %d"
          mb job.Job.attempts
      | None -> Printf.sprintf "rlimit: out of memory on attempt %d" job.Job.attempts)
  | exception e -> finish exit_transient "transient" (Printexc.to_string e)
