(* Blocking client for the hidap-serve socket.

   One connection carries any number of request/response exchanges;
   responses to one-shot requests come back in order, and a watch
   turns the connection into a stream of progress events ended by the
   job's terminal view.

   Errors are typed: [Conn] means the conversation with the daemon
   broke (refused, EOF mid-exchange, send failure) — the CLI maps
   these to its daemon-unreachable exit code — while [Remote] carries
   a daemon-sent error reply or a protocol-level surprise. *)

type error = Conn of string | Remote of string

let error_message = function Conn m | Remote m -> m

let is_conn = function Conn _ -> true | Remote _ -> false

type t = { fd : Unix.file_descr; ic : in_channel; mutable open_ : bool }

let connect ~socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; open_ = true }

let close t =
  if t.open_ then begin
    t.open_ <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let send_line t line =
  let line = line ^ "\n" in
  let rec write_all off =
    if off < String.length line then
      let n = Unix.write_substring t.fd line off (String.length line - off) in
      write_all (off + n)
  in
  write_all 0

let send t req = send_line t (Proto.to_line (Proto.request_to_json req))

let recv t =
  match input_line t.ic with
  | line ->
    (match Proto.response_of_line line with
    | Ok r -> Ok r
    | Error m -> Error (Remote m))
  | exception End_of_file ->
    Error (Conn "daemon disconnected mid-conversation (EOF)")
  | exception Sys_error msg -> Error (Conn msg)

let request t req =
  match send t req with
  | () -> recv t
  | exception Unix.Unix_error (e, _, _) ->
    Error (Conn (Printf.sprintf "send to daemon failed: %s" (Unix.error_message e)))

let ping t =
  match request t Proto.Ping with
  | Ok Proto.Pong -> Ok ()
  | Ok (Proto.Error_reply m) -> Error (Remote m)
  | Ok _ -> Error (Remote "unexpected response to ping")
  | Error e -> Error e

let submit t spec =
  match request t (Proto.Submit spec) with
  | Ok (Proto.Accepted { id; depth }) -> Ok (`Accepted (id, depth))
  | Ok (Proto.Rejected { reason; depth; limit }) -> Ok (`Rejected (reason, depth, limit))
  | Ok (Proto.Error_reply m) -> Error (Remote m)
  | Ok _ -> Error (Remote "unexpected response to submit")
  | Error e -> Error e

let status t id =
  match request t (Proto.Status id) with
  | Ok (Proto.Job v) -> Ok v
  | Ok (Proto.Error_reply m) -> Error (Remote m)
  | Ok _ -> Error (Remote "unexpected response to status")
  | Error e -> Error e

let list t =
  match request t Proto.List with
  | Ok (Proto.Jobs vs) -> Ok vs
  | Ok (Proto.Error_reply m) -> Error (Remote m)
  | Ok _ -> Error (Remote "unexpected response to list")
  | Error e -> Error e

let stats t =
  match request t Proto.Stats with
  | Ok (Proto.Stats_reply s) -> Ok s
  | Ok (Proto.Error_reply m) -> Error (Remote m)
  | Ok _ -> Error (Remote "unexpected response to stats")
  | Error e -> Error e

let result t id =
  match request t (Proto.Result id) with
  | Ok (Proto.Result_reply { qor; _ }) -> Ok qor
  | Ok (Proto.Error_reply m) -> Error (Remote m)
  | Ok _ -> Error (Remote "unexpected response to result")
  | Error e -> Error e

let report t id =
  match request t (Proto.Report id) with
  | Ok (Proto.Report_reply { html; _ }) -> Ok html
  | Ok (Proto.Error_reply m) -> Error (Remote m)
  | Ok _ -> Error (Remote "unexpected response to report")
  | Error e -> Error e

let drain t =
  match request t Proto.Drain with
  | Ok Proto.Draining_reply -> Ok ()
  | Ok (Proto.Error_reply m) -> Error (Remote m)
  | Ok _ -> Error (Remote "unexpected response to drain")
  | Error e -> Error e

let watch t id ~on_event =
  match send t (Proto.Watch id) with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Conn (Printf.sprintf "send to daemon failed: %s" (Unix.error_message e)))
  | () ->
    let rec go () =
      match recv t with
      | Error e -> Error e
      | Ok (Proto.Job v) when Proto.state_terminal v.Proto.state -> Ok v
      | Ok (Proto.Job _) -> go ()
      | Ok (Proto.Progress { event; _ }) ->
        on_event event;
        go ()
      | Ok (Proto.Error_reply m) -> Error (Remote m)
      | Ok _ -> Error (Remote "unexpected response while watching")
    in
    go ()

(* Poll a job to a terminal state over this connection. Retries and
   parks count as terminal per Proto.state_terminal (a parked job will
   not finish in this daemon's lifetime). *)
let wait ?(poll_s = 0.05) ?(timeout_s = 120.0) t id =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match status t id with
    | Error e -> Error e
    | Ok v when Proto.state_terminal v.Proto.state -> Ok v
    | Ok _ ->
      if Unix.gettimeofday () > deadline then Error (Remote "wait timed out")
      else begin
        Unix.sleepf poll_s;
        go ()
      end
  in
  go ()
