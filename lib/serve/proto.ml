(* hidap-serve wire protocol: one JSON object per line, both ways.

   Requests and responses share the envelope {"schema":"hidap-serve",
   "version":1,...}; a request carries a "req" tag, a response a
   "resp" tag. Decoding is total: every malformed input maps to
   [Error], never an exception, because the daemon feeds it raw client
   bytes (the framing fuzz tests drive exactly this). *)

module J = Obs.Jsonx

let schema = "hidap-serve"

let version = 1

(* ---- job states --------------------------------------------------- *)

type state = Pending | Running | Done | Failed | Timed_out | Parked

let state_to_string = function
  | Pending -> "pending"
  | Running -> "running"
  | Done -> "done"
  | Failed -> "failed"
  | Timed_out -> "timed-out"
  | Parked -> "parked"

let state_of_string = function
  | "pending" -> Some Pending
  | "running" -> Some Running
  | "done" -> Some Done
  | "failed" -> Some Failed
  | "timed-out" -> Some Timed_out
  | "parked" -> Some Parked
  | _ -> None

let state_terminal = function
  | Done | Failed | Timed_out | Parked -> true
  | Pending | Running -> false

(* ---- submissions -------------------------------------------------- *)

type submit = {
  circuit : string option;
  hnl : string option;
  seed : int;
  lambda : float option;
  jobs : int;
  priority : int;
  deadline_s : float option;
  max_retries : int;
  label : string;
}

let default_submit =
  { circuit = None; hnl = None; seed = 1; lambda = None; jobs = 0;
    priority = 0; deadline_s = None; max_retries = 0; label = "" }

let submit_fields s =
  List.filter_map
    (fun x -> x)
    [ Option.map (fun c -> ("circuit", J.String c)) s.circuit;
      Option.map (fun h -> ("hnl", J.String h)) s.hnl;
      Some ("seed", J.Int s.seed);
      Option.map (fun l -> ("lambda", J.Float l)) s.lambda;
      Some ("jobs", J.Int s.jobs);
      Some ("priority", J.Int s.priority);
      Option.map (fun d -> ("deadline_s", J.Float d)) s.deadline_s;
      Some ("max_retries", J.Int s.max_retries);
      Some ("label", J.String s.label) ]

let opt_str j name = Option.bind (J.member name j) J.to_string_opt

let opt_int j name = Option.bind (J.member name j) J.to_int_opt

let opt_float j name = Option.bind (J.member name j) J.to_float_opt

let int_or j name d = Option.value ~default:d (opt_int j name)

let submit_of_json j =
  { circuit = opt_str j "circuit";
    hnl = opt_str j "hnl";
    seed = int_or j "seed" default_submit.seed;
    lambda = opt_float j "lambda";
    jobs = int_or j "jobs" default_submit.jobs;
    priority = int_or j "priority" default_submit.priority;
    deadline_s = opt_float j "deadline_s";
    max_retries = int_or j "max_retries" default_submit.max_retries;
    label = Option.value ~default:"" (opt_str j "label") }

(* ---- requests ----------------------------------------------------- *)

type request =
  | Ping
  | Submit of submit
  | Status of string
  | List
  | Stats
  | Result of string
  | Report of string
  | Watch of string
  | Drain

let envelope fields = J.Obj (("schema", J.String schema) :: ("version", J.Int version) :: fields)

let with_id tag id = [ ("req", J.String tag); ("id", J.String id) ]

let request_to_json = function
  | Ping -> envelope [ ("req", J.String "ping") ]
  | Submit s -> envelope (("req", J.String "submit") :: submit_fields s)
  | Status id -> envelope (with_id "status" id)
  | List -> envelope [ ("req", J.String "list") ]
  | Stats -> envelope [ ("req", J.String "stats") ]
  | Result id -> envelope (with_id "result" id)
  | Report id -> envelope (with_id "report" id)
  | Watch id -> envelope (with_id "watch" id)
  | Drain -> envelope [ ("req", J.String "drain") ]

(* The envelope check is shared by both directions: requests and
   responses refuse foreign schemas and newer versions the same way. *)
let check_envelope j =
  match (opt_str j "schema", opt_int j "version") with
  | None, _ -> Error "missing schema field"
  | Some s, _ when s <> schema ->
    Error (Printf.sprintf "unexpected schema %S (want %s)" s schema)
  | _, None -> Error "missing version field"
  | _, Some v when v > version ->
    Error (Printf.sprintf "protocol version %d is newer than %d" v version)
  | Some _, Some _ -> Ok ()

let need_id j k =
  match opt_str j "id" with
  | Some id -> Ok (k id)
  | None -> Error "missing id field"

let request_of_json j =
  match check_envelope j with
  | Error _ as e -> e
  | Ok () ->
    (match opt_str j "req" with
    | None -> Error "missing req field"
    | Some "ping" -> Ok Ping
    | Some "submit" -> Ok (Submit (submit_of_json j))
    | Some "status" -> need_id j (fun id -> Status id)
    | Some "list" -> Ok List
    | Some "stats" -> Ok Stats
    | Some "result" -> need_id j (fun id -> Result id)
    | Some "report" -> need_id j (fun id -> Report id)
    | Some "watch" -> need_id j (fun id -> Watch id)
    | Some "drain" -> Ok Drain
    | Some other -> Error (Printf.sprintf "unknown request %S" other))

let request_of_line line =
  match J.parse line with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j -> request_of_json j

(* ---- responses ---------------------------------------------------- *)

type job_view = {
  id : string;
  label : string;
  state : state;
  attempts : int;
  priority : int;
  detail : string;
}

(* One worker slot of the daemon's process pool: idle ([pid]/[job]
   absent) or running a job. Exposing the pid is deliberate — it lets
   operators (and the stress tests) kill a wedged worker externally
   and watch the daemon absorb it. *)
type worker_view = {
  slot : int;
  pid : int option;
  job : string option;
  elapsed_s : float;  (** 0 when idle *)
}

type stats = {
  queue_depth : int;
  queue_limit : int;
  accepted : int;
  rejected_backpressure : int;
  rejected_draining : int;
  completed : int;
  failed : int;
  timed_out : int;
  parked : int;
  retried : int;
  worker_lost : int;
  draining : bool;
  workers : worker_view list;
}

type response =
  | Pong
  | Accepted of { id : string; depth : int }
  | Rejected of { reason : string; depth : int; limit : int }
  | Job of job_view
  | Jobs of job_view list
  | Stats_reply of stats
  | Result_reply of { id : string; qor : J.t }
  | Report_reply of { id : string; html : string }
  | Progress of { id : string; event : J.t }
  | Draining_reply
  | Error_reply of string

let job_view_to_json v =
  J.Obj
    [ ("id", J.String v.id); ("label", J.String v.label);
      ("state", J.String (state_to_string v.state));
      ("attempts", J.Int v.attempts); ("priority", J.Int v.priority);
      ("detail", J.String v.detail) ]

let job_view_of_json j =
  match (opt_str j "id", Option.bind (opt_str j "state") state_of_string) with
  | Some id, Some state ->
    Ok
      { id; state;
        label = Option.value ~default:"" (opt_str j "label");
        attempts = int_or j "attempts" 0;
        priority = int_or j "priority" 0;
        detail = Option.value ~default:"" (opt_str j "detail") }
  | _ -> Error "bad job view"

let worker_view_to_json w =
  J.Obj
    [ ("slot", J.Int w.slot);
      ("pid", (match w.pid with Some p -> J.Int p | None -> J.Null));
      ("job", (match w.job with Some id -> J.String id | None -> J.Null));
      ("elapsed_s", J.Float w.elapsed_s) ]

let worker_view_of_json j =
  { slot = int_or j "slot" 0;
    pid = opt_int j "pid";
    job = opt_str j "job";
    elapsed_s = Option.value ~default:0.0 (opt_float j "elapsed_s") }

let stats_to_json s =
  J.Obj
    [ ("queue_depth", J.Int s.queue_depth); ("queue_limit", J.Int s.queue_limit);
      ("accepted", J.Int s.accepted);
      ("rejected_backpressure", J.Int s.rejected_backpressure);
      ("rejected_draining", J.Int s.rejected_draining);
      ("completed", J.Int s.completed); ("failed", J.Int s.failed);
      ("timed_out", J.Int s.timed_out); ("parked", J.Int s.parked);
      ("retried", J.Int s.retried); ("worker_lost", J.Int s.worker_lost);
      ("draining", J.Bool s.draining);
      ("workers", J.List (List.map worker_view_to_json s.workers)) ]

let stats_of_json j =
  { queue_depth = int_or j "queue_depth" 0;
    queue_limit = int_or j "queue_limit" 0;
    accepted = int_or j "accepted" 0;
    rejected_backpressure = int_or j "rejected_backpressure" 0;
    rejected_draining = int_or j "rejected_draining" 0;
    completed = int_or j "completed" 0;
    failed = int_or j "failed" 0;
    timed_out = int_or j "timed_out" 0;
    parked = int_or j "parked" 0;
    retried = int_or j "retried" 0;
    worker_lost = int_or j "worker_lost" 0;
    draining = (match J.member "draining" j with Some (J.Bool b) -> b | _ -> false);
    workers =
      (match Option.bind (J.member "workers" j) J.to_list_opt with
      | Some l -> List.map worker_view_of_json l
      | None -> []) }

let response_to_json = function
  | Pong -> envelope [ ("resp", J.String "pong") ]
  | Accepted { id; depth } ->
    envelope [ ("resp", J.String "accepted"); ("id", J.String id); ("depth", J.Int depth) ]
  | Rejected { reason; depth; limit } ->
    envelope
      [ ("resp", J.String "rejected"); ("reason", J.String reason);
        ("depth", J.Int depth); ("limit", J.Int limit) ]
  | Job v -> envelope [ ("resp", J.String "job"); ("job", job_view_to_json v) ]
  | Jobs vs ->
    envelope [ ("resp", J.String "jobs"); ("jobs", J.List (List.map job_view_to_json vs)) ]
  | Stats_reply s -> envelope [ ("resp", J.String "stats"); ("stats", stats_to_json s) ]
  | Result_reply { id; qor } ->
    envelope [ ("resp", J.String "result"); ("id", J.String id); ("qor", qor) ]
  | Report_reply { id; html } ->
    envelope [ ("resp", J.String "report"); ("id", J.String id); ("html", J.String html) ]
  | Progress { id; event } ->
    envelope [ ("resp", J.String "progress"); ("id", J.String id); ("event", event) ]
  | Draining_reply -> envelope [ ("resp", J.String "draining") ]
  | Error_reply msg -> envelope [ ("resp", J.String "error"); ("message", J.String msg) ]

let response_of_json j =
  match check_envelope j with
  | Error _ as e -> e
  | Ok () ->
    (match opt_str j "resp" with
    | None -> Error "missing resp field"
    | Some "pong" -> Ok Pong
    | Some "accepted" ->
      need_id j (fun id -> Accepted { id; depth = int_or j "depth" 0 })
    | Some "rejected" ->
      Ok
        (Rejected
           { reason = Option.value ~default:"" (opt_str j "reason");
             depth = int_or j "depth" 0; limit = int_or j "limit" 0 })
    | Some "job" ->
      (match J.member "job" j with
      | Some v -> Result.map (fun v -> Job v) (job_view_of_json v)
      | None -> Error "missing job field")
    | Some "jobs" ->
      (match Option.bind (J.member "jobs" j) J.to_list_opt with
      | None -> Error "missing jobs field"
      | Some l ->
        let rec go acc = function
          | [] -> Ok (Jobs (List.rev acc))
          | v :: rest ->
            (match job_view_of_json v with
            | Ok v -> go (v :: acc) rest
            | Error _ as e -> e)
        in
        go [] l)
    | Some "stats" ->
      (match J.member "stats" j with
      | Some s -> Ok (Stats_reply (stats_of_json s))
      | None -> Error "missing stats field")
    | Some "result" ->
      need_id j (fun id ->
          Result_reply { id; qor = Option.value ~default:J.Null (J.member "qor" j) })
    | Some "report" ->
      need_id j (fun id ->
          Report_reply
            { id; html = Option.value ~default:"" (opt_str j "html") })
    | Some "progress" ->
      need_id j (fun id ->
          Progress { id; event = Option.value ~default:J.Null (J.member "event" j) })
    | Some "draining" -> Ok Draining_reply
    | Some "error" ->
      Ok (Error_reply (Option.value ~default:"" (opt_str j "message")))
    | Some other -> Error (Printf.sprintf "unknown response %S" other))

let response_of_line line =
  match J.parse line with
  | Error e -> Error ("bad JSON: " ^ e)
  | Ok j -> response_of_json j

let to_line j = J.to_string ~compact:true j
