type node_kind =
  | Kmacro of Design.macro_info
  | Kflop
  | Kcomb
  | Kport of Design.direction

type node = {
  id : int;
  path : string;
  base : string;
  kind : node_kind;
  area : float;
  scope : int;
}

type scope = {
  sid : int;
  spath : string;
  smodule : string;
  sparent : int;
  mutable schildren : int list;
  mutable scells : int list;
}

type t = {
  design_name : string;
  nodes : node array;
  scopes : scope array;
  gnet : Graphlib.Digraph.t;
  net_count : int;
  net_pins : (int array * int array) array;
}

(* Growable accumulators used during elaboration. *)
type builder = {
  mutable bnodes : node list;  (* reversed *)
  mutable nnodes : int;
  mutable bscopes : scope list;  (* reversed *)
  mutable nscopes : int;
  mutable nnets : int;
  (* per net id: reversed driver / sink node id lists *)
  drivers : (int, int list) Hashtbl.t;
  sinks : (int, int list) Hashtbl.t;
}

let fresh_net b =
  let id = b.nnets in
  b.nnets <- id + 1;
  id

let add_driver b net node =
  let cur = try Hashtbl.find b.drivers net with Not_found -> [] in
  Hashtbl.replace b.drivers net (node :: cur)

let add_sink b net node =
  let cur = try Hashtbl.find b.sinks net with Not_found -> [] in
  Hashtbl.replace b.sinks net (node :: cur)

let add_node b ~path ~base ~kind ~area ~scope =
  let id = b.nnodes in
  b.nnodes <- id + 1;
  b.bnodes <- { id; path; base; kind; area; scope } :: b.bnodes;
  id

let add_scope b ~spath ~smodule ~sparent =
  let sid = b.nscopes in
  b.nscopes <- sid + 1;
  let s = { sid; spath; smodule; sparent; schildren = []; scells = [] } in
  b.bscopes <- s :: b.bscopes;
  s

let elaborate_body (d : Design.t) =
  (match Design.validate d with
  | Ok () -> ()
  | Error e -> invalid_arg (Format.asprintf "Flat.elaborate: %a" Design.pp_error e));
  let top =
    match Design.find_module d d.Design.top with
    | Some m -> m
    | None -> assert false
  in
  let b =
    { bnodes = []; nnodes = 0; bscopes = []; nscopes = 0; nnets = 0;
      drivers = Hashtbl.create 1024; sinks = Hashtbl.create 1024 }
  in
  (* env maps local net names of the module being elaborated to global net
     ids. Local nets not bound through ports get fresh ids on first use. *)
  let rec elab_module (m : Design.module_def) ~path ~parent_sid ~(env : (string, int) Hashtbl.t) =
    let scope = add_scope b ~spath:path ~smodule:m.Design.mname ~sparent:parent_sid in
    let net name =
      match Hashtbl.find_opt env name with
      | Some id -> id
      | None ->
        let id = fresh_net b in
        Hashtbl.add env name id;
        id
    in
    List.iter
      (fun (c : Design.cell_decl) ->
        let kind =
          match c.Design.ckind with
          | Design.Macro info -> Kmacro info
          | Design.Flop -> Kflop
          | Design.Comb -> Kcomb
        in
        let cpath = Util.Names.join path c.Design.cname in
        let id = add_node b ~path:cpath ~base:c.Design.cname ~kind
            ~area:c.Design.carea ~scope:scope.sid
        in
        scope.scells <- id :: scope.scells;
        List.iter (fun n -> add_sink b (net n) id) c.Design.cins;
        List.iter (fun n -> add_driver b (net n) id) c.Design.couts)
      m.Design.cells;
    List.iter
      (fun (i : Design.inst_decl) ->
        let child =
          match Design.find_module d i.Design.imodule with
          | Some c -> c
          | None -> assert false
        in
        let child_env = Hashtbl.create 64 in
        List.iter
          (fun (formal, actual) -> Hashtbl.replace child_env formal (net actual))
          i.Design.bindings;
        let child_path = Util.Names.join path i.Design.iname in
        let child_scope = elab_module child ~path:child_path ~parent_sid:scope.sid ~env:child_env in
        scope.schildren <- child_scope.sid :: scope.schildren)
      m.Design.insts;
    scope
  in
  let top_env = Hashtbl.create 64 in
  let top_scope = elab_module top ~path:"" ~parent_sid:(-1) ~env:top_env in
  assert (top_scope.sid = 0);
  (* Top-level ports become P nodes attached to their nets. *)
  List.iter
    (fun (p : Design.port_decl) ->
      let net =
        match Hashtbl.find_opt top_env p.Design.pname with
        | Some id -> id
        | None ->
          let id = fresh_net b in
          Hashtbl.add top_env p.Design.pname id;
          id
      in
      let id = add_node b ~path:p.Design.pname ~base:p.Design.pname
          ~kind:(Kport p.Design.pdir) ~area:0.0 ~scope:0
      in
      match p.Design.pdir with
      | Design.Input -> add_driver b net id
      | Design.Output -> add_sink b net id)
    top.Design.ports;
  let nodes = Array.of_list (List.rev b.bnodes) in
  let scopes = Array.of_list (List.rev b.bscopes) in
  Array.iteri (fun i n -> assert (n.id = i)) nodes;
  (* Scope child/cell lists were accumulated in reverse. *)
  Array.iter
    (fun s ->
      s.schildren <- List.rev s.schildren;
      s.scells <- List.rev s.scells)
    scopes;
  let gnet = Graphlib.Digraph.create (Array.length nodes) in
  let net_pins =
    Array.init b.nnets (fun net ->
        let ds = try Hashtbl.find b.drivers net with Not_found -> [] in
        let ss = try Hashtbl.find b.sinks net with Not_found -> [] in
        (Array.of_list (List.rev ds), Array.of_list (List.rev ss)))
  in
  Array.iter
    (fun (ds, ss) ->
      Array.iter (fun u -> Array.iter (fun v -> Graphlib.Digraph.add_edge gnet u v) ss) ds)
    net_pins;
  { design_name = d.Design.top; nodes; scopes; gnet; net_count = b.nnets; net_pins }

let elaborate (d : Design.t) =
  Obs.Span.with_ ~name:"netlist.elaborate" (fun () ->
      let t = elaborate_body d in
      Obs.Span.attr_str "design" t.design_name;
      Obs.Span.attr_int "nodes" (Array.length t.nodes);
      Obs.Span.attr_int "nets" t.net_count;
      Obs.Metrics.counter "netlist.elaborations" 1;
      Obs.Metrics.gauge "netlist.nodes" (float_of_int (Array.length t.nodes));
      Obs.Metrics.gauge "netlist.nets" (float_of_int t.net_count);
      t)

let is_macro n = match n.kind with Kmacro _ -> true | Kflop | Kcomb | Kport _ -> false
let is_flop n = match n.kind with Kflop -> true | Kmacro _ | Kcomb | Kport _ -> false
let is_comb n = match n.kind with Kcomb -> true | Kmacro _ | Kflop | Kport _ -> false
let is_port n = match n.kind with Kport _ -> true | Kmacro _ | Kflop | Kcomb -> false

let macros t = Array.to_list t.nodes |> List.filter is_macro

let ports t = Array.to_list t.nodes |> List.filter is_port

let macro_count t = Array.fold_left (fun acc n -> if is_macro n then acc + 1 else acc) 0 t.nodes

let cell_count t =
  Array.fold_left (fun acc n -> if is_port n then acc else acc + 1) 0 t.nodes

let total_cell_area t =
  Array.fold_left (fun acc n -> if is_port n then acc else acc +. n.area) 0.0 t.nodes

let scope_of_node t id = t.scopes.(t.nodes.(id).scope)

let pp_summary ppf t =
  let count p = Array.fold_left (fun acc n -> if p n then acc + 1 else acc) 0 t.nodes in
  Format.fprintf ppf
    "design %s: %d nodes (%d macros, %d flops, %d comb, %d ports), %d nets, %d edges, %d scopes"
    t.design_name (Array.length t.nodes) (count is_macro) (count is_flop) (count is_comb)
    (count is_port) t.net_count
    (Graphlib.Digraph.edge_count t.gnet)
    (Array.length t.scopes)
