(** Hierarchical netlist data model.

    A design is a set of module definitions plus a top module name. Each
    module declares single-bit ports (multi-bit buses are carried as
    indexed names such as [data[7]] or [data_7], exactly the RTL-stage
    array information the paper exploits), leaf cells (macros, flops,
    combinational gates) and instances of other modules. Nets are local
    names; instance port bindings stitch them across hierarchy levels. *)

type direction = Input | Output

type macro_info = { mw : float; mh : float }
(** Physical footprint of a hard macro, in microns. *)

type cell_kind =
  | Macro of macro_info
  | Flop
  | Comb

type cell_decl = {
  cname : string;
  ckind : cell_kind;
  carea : float;  (** placement area; for macros this is [mw *. mh] *)
  cins : string list;  (** input net names *)
  couts : string list;  (** output net names *)
}

type port_decl = { pname : string; pdir : direction }

type inst_decl = {
  iname : string;
  imodule : string;
  bindings : (string * string) list;  (** (formal port, actual net) *)
}

type module_def = {
  mname : string;
  ports : port_decl list;
  cells : cell_decl list;
  insts : inst_decl list;
}

type t = { top : string; modules : (string * module_def) list }

val make_macro : w:float -> h:float -> cell_kind
(** Macro kind with area [w *. h]. *)

val cell : name:string -> kind:cell_kind -> ?area:float ->
  ins:string list -> outs:string list -> unit -> cell_decl
(** Leaf-cell declaration; [area] defaults to the macro footprint for
    macros and to 1.0 for flops / combinational cells. *)

val port : name:string -> dir:direction -> port_decl

val inst : name:string -> module_:string -> bindings:(string * string) list -> inst_decl

val module_def : name:string -> ?ports:port_decl list -> ?cells:cell_decl list ->
  ?insts:inst_decl list -> unit -> module_def

val design : top:string -> modules:module_def list -> t

val default_area : cell_kind -> float
(** The area [cell] assigns when none is given: the macro footprint for
    macros, 1.0 for flops / combinational cells. *)

val find_module : t -> string -> module_def option

type error =
  | Missing_module of string
  | Duplicate_module of string
  | Unknown_port of { module_ : string; inst : string; port : string }
  | Duplicate_cell of { module_ : string; cell : string }
  | Recursive_instantiation of string

val validate : t -> (unit, error) result
(** Structural sanity: top exists, all instantiated modules exist and are
    non-recursive, instance bindings name declared ports, cell names are
    unique within their module. *)

val pp_error : Format.formatter -> error -> unit

val module_count : t -> int

val cell_area : cell_decl -> float

val kind_name : cell_kind -> string
