(** Deterministic pseudo-random number generation.

    A small, fast SplitMix64 generator. Every randomized component of the
    tool (circuit generation, simulated annealing, placement) takes an
    explicit [t] so that all results are reproducible from a seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy of the current state. *)

val state : t -> int64
(** The raw 64-bit SplitMix64 state. Together with {!set_state} this is
    the checkpoint/resume hook: capturing the state after a unit of
    work and restoring it on resume replays the exact stream an
    uninterrupted run would have consumed. *)

val set_state : t -> int64 -> unit
(** Overwrite the generator state (see {!state}). *)

val of_state : int64 -> t
(** Fresh generator positioned at a previously captured {!state}. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in \[0, n). Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in \[0, x). *)

val bool : t -> bool
(** Fair coin. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in \[lo, hi\] (inclusive). Requires
    [lo <= hi]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller normal deviate. *)
