type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state

let set_state t s = t.state <- s

let of_state s = { state = s }

(* SplitMix64 output function (Steele, Lea, Flood 2014). *)
let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

let int t n =
  assert (n > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int n))

let float t x =
  (* 53 random bits mapped to [0,1). *)
  let b = Int64.shift_right_logical (bits64 t) 11 in
  let u = Int64.to_float b /. 9007199254740992.0 in
  u *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let range t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-12 then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))
