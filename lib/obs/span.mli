(** Tracing spans with nesting.

    A span covers the execution of [with_ ~name f]: it records a
    monotonic start timestamp, the duration, string attributes and the
    spans opened inside it. Recording is off by default ([with_] then
    just runs [f] — one pattern match of overhead), and is turned on by
    installing the global recorder with [start_recording].

    Spans never touch any RNG: enabling tracing cannot change the
    behaviour of the instrumented code.

    The recorder is domain-local (one per domain, installed on the
    domain that called [start_recording]). Worker domains of a
    fork-join runner see no recorder by default; the runner uses
    [capture] around each task and [graft] at the join point to stitch
    the workers' spans back into the spawning domain's recorder in a
    deterministic order. *)

type t = {
  name : string;
  mutable attrs : (string * string) list;
  start_us : float;  (** monotonic microseconds, see {!Clock} *)
  mutable dur_us : float;
  mutable children : t list;
}

val enabled : unit -> bool
(** Whether a recorder is installed. *)

val start_recording : unit -> unit
(** Install a fresh recorder on the calling domain (discarding any
    active one). *)

val finish_recording : unit -> t list
(** Uninstall the recorder and return the completed root spans in
    execution order (children likewise ordered). Spans still open are
    closed at the current time. *)

val capture : (unit -> 'a) -> 'a * t list
(** Run [f] under a fresh temporary recorder (saving and restoring any
    recorder active on the calling domain) and return its result with
    the spans [f] opened, in execution order. The spans are {e raw} —
    internal lists are still in recording order — and are only valid as
    an argument to [graft], which re-inserts them into a live recorder
    so the final [finish_recording] normalizes everything exactly once.
    If [f] raises, the captured spans are discarded and the exception is
    re-raised with its backtrace. *)

val graft : t list -> unit
(** Attach spans previously returned by [capture] as children of the
    innermost open span of the calling domain's recorder (or as roots
    when no span is open). No-op when recording is off. *)

val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run [f] under a new span (child of the innermost open span). The
    span is closed even if [f] raises. When recording is off this is
    just [f ()]. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span; no-op when
    recording is off. Use the typed variants below in hot paths — they
    only build the string representation when a recorder is active. *)

val attr_int : string -> int -> unit
val attr_float : string -> float -> unit
val attr_str : string -> string -> unit

(** {1 Stack publication}

    Support for the wall-clock sampling profiler ({!Sampler}): each
    participating domain owns one slot of a small global table and
    mirrors its current span stack into it at every span boundary, so
    a sampler on another domain reads a consistent immutable snapshot
    with one atomic load. Publication is off by default; when off, the
    only cost is one atomic load per span open/close. *)

val publishing : unit -> bool

val set_publishing : bool -> unit
(** Turn stack mirroring on or off globally (an atomic flag). *)

val ensure_slot : unit -> unit
(** Allocate a publication slot for the calling domain if it has none
    (no-op if the table is full — the domain is then simply invisible
    to the sampler). *)

val release_slot : unit -> unit
(** Free the calling domain's slot, if any. Long-lived domains must
    release before exiting or the slot leaks for the process. *)

val with_publish_slot : (unit -> 'a) -> 'a
(** Run [f] with a slot held (acquire/release around [f]) — what a
    fork-join worker wraps its drain loop in. Just runs [f] when
    publication is off or the domain already holds a slot. *)

val published_stacks : unit -> string list option array
(** Snapshot of the slot table: [None] for free slots, [Some names]
    (innermost frame first, [[]] = idle) for domains holding one. *)
