(** Tracing spans with nesting.

    A span covers the execution of [with_ ~name f]: it records a
    monotonic start timestamp, the duration, string attributes and the
    spans opened inside it. Recording is off by default ([with_] then
    just runs [f] — one pattern match of overhead), and is turned on by
    installing the global recorder with [start_recording].

    Spans never touch any RNG: enabling tracing cannot change the
    behaviour of the instrumented code. *)

type t = {
  name : string;
  mutable attrs : (string * string) list;
  start_us : float;  (** monotonic microseconds, see {!Clock} *)
  mutable dur_us : float;
  mutable children : t list;
}

val enabled : unit -> bool
(** Whether a recorder is installed. *)

val start_recording : unit -> unit
(** Install a fresh recorder (discarding any active one). *)

val finish_recording : unit -> t list
(** Uninstall the recorder and return the completed root spans in
    execution order (children likewise ordered). Spans still open are
    closed at the current time. *)

val with_ : ?attrs:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run [f] under a new span (child of the innermost open span). The
    span is closed even if [f] raises. When recording is off this is
    just [f ()]. *)

val add_attr : string -> string -> unit
(** Attach an attribute to the innermost open span; no-op when
    recording is off. Use the typed variants below in hot paths — they
    only build the string representation when a recorder is active. *)

val attr_int : string -> int -> unit
val attr_float : string -> float -> unit
val attr_str : string -> string -> unit
