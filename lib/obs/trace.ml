type t = Span.t list

let start = Span.start_recording

let finish = Span.finish_recording

let event ~t0 (sp : Span.t) =
  let base =
    [ ("name", Jsonx.String sp.Span.name);
      ("ph", Jsonx.String "X");
      ("ts", Jsonx.Float (sp.Span.start_us -. t0));
      ("dur", Jsonx.Float sp.Span.dur_us);
      ("pid", Jsonx.Int 1);
      ("tid", Jsonx.Int 1) ]
  in
  let args =
    match sp.Span.attrs with
    | [] -> []
    | attrs ->
      [ ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.String v)) attrs)) ]
  in
  Jsonx.Obj (base @ args)

let to_chrome_json spans =
  (* Timestamps are rebased to the first span so they stay precise
     through the float printer regardless of the clock's origin. *)
  let t0 = match spans with [] -> 0.0 | sp :: _ -> sp.Span.start_us in
  (* Start-order traversal: parent event first, then its children. *)
  let rec emit acc sp = List.fold_left emit (event ~t0 sp :: acc) sp.Span.children in
  Jsonx.List (List.rev (List.fold_left emit [] spans))

let write_chrome_file path spans = Jsonx.write_file path (to_chrome_json spans)

let stage_totals spans =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  let rec visit (sp : Span.t) =
    (match Hashtbl.find_opt tbl sp.Span.name with
    | Some (total, calls) -> Hashtbl.replace tbl sp.Span.name (total +. sp.Span.dur_us, calls + 1)
    | None ->
      Hashtbl.replace tbl sp.Span.name (sp.Span.dur_us, 1);
      order := sp.Span.name :: !order);
    List.iter visit sp.Span.children
  in
  List.iter visit spans;
  List.rev_map
    (fun name ->
      let total, calls = Hashtbl.find tbl name in
      (name, total, calls))
    !order

let fmt_dur us =
  if us >= 1e6 then Printf.sprintf "%.2fs" (us /. 1e6)
  else if us >= 1e3 then Printf.sprintf "%.1fms" (us /. 1e3)
  else Printf.sprintf "%.0fus" us

let summary spans =
  let buf = Buffer.create 1024 in
  let rec go prefix ~parent_dur (sp : Span.t) ~is_last =
    let branch, child_prefix =
      match prefix with
      | None -> ("", "")
      | Some p -> ((p ^ if is_last then "`- " else "|- "), p ^ if is_last then "   " else "|  ")
    in
    let label = branch ^ sp.Span.name in
    let share =
      match parent_dur with
      | Some d when d > 0.0 -> Printf.sprintf " %5.1f%%" (100.0 *. sp.Span.dur_us /. d)
      | Some _ | None -> ""
    in
    let attrs =
      match sp.Span.attrs with
      | [] -> ""
      | attrs ->
        "  " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) attrs)
    in
    Buffer.add_string buf
      (Printf.sprintf "%-48s %9s%s%s\n" label (fmt_dur sp.Span.dur_us) share attrs);
    let n = List.length sp.Span.children in
    List.iteri
      (fun i c ->
        go (Some child_prefix) ~parent_dur:(Some sp.Span.dur_us) c ~is_last:(i = n - 1))
      sp.Span.children
  in
  let n = List.length spans in
  List.iteri (fun i sp -> go None ~parent_dur:None sp ~is_last:(i = n - 1)) spans;
  Buffer.contents buf
