let wall () = Unix.gettimeofday ()

let source = ref wall

(* Highest timestamp handed out so far; clamping makes the reported
   clock monotone even when the source jumps backwards. *)
let last = ref neg_infinity

let set_source f =
  source := f;
  last := neg_infinity

let use_wall () = set_source wall

let now_us () =
  let t = !source () *. 1e6 in
  let t = if t > !last then t else !last in
  last := t;
  t
