let wall () = Unix.gettimeofday ()

let source = ref wall

(* Highest timestamp handed out so far; clamping makes the reported
   clock monotone even when the source jumps backwards. The clamp is an
   atomic so readings taken on worker domains (span capture, budget
   checks, the sampling profiler) share one monotone frontier instead
   of racing on a plain ref. *)
let last = Atomic.make neg_infinity

let set_source f =
  source := f;
  Atomic.set last neg_infinity

let use_wall () = set_source wall

let now_us () =
  let t = !source () *. 1e6 in
  let rec clamp () =
    let l = Atomic.get last in
    if t > l then if Atomic.compare_and_set last l t then t else clamp ()
    else l
  in
  clamp ()

let now_s () = now_us () /. 1e6
