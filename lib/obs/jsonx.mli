(** Minimal JSON document model and serializer.

    Just enough JSON to export traces and metrics without an external
    dependency: construction, rendering (compact or indented) and file
    output. Non-finite floats (NaN and infinities leak into metrics
    from degraded or fault-injected runs) are rendered as the string
    sentinels ["NaN"] / ["Infinity"] / ["-Infinity"] so the output is
    always standard JSON; {!to_float_opt} maps the sentinels back, so
    numeric fields round-trip through [parse] even when non-finite. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?compact:bool -> t -> string
(** Render; [compact] (default false) suppresses newlines/indentation. *)

val write_file : string -> t -> unit
(** Write the rendered document (with a trailing newline). *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val parse : string -> (t, string) result
(** Parse a JSON document. Integer-syntax numbers become [Int] (falling
    back to [Float] beyond the native int range), all other numbers
    [Float]. String escapes are decoded; [\uXXXX] sequences (including
    surrogate pairs) are re-encoded as UTF-8 bytes, so
    [parse (to_string t)] round-trips byte-for-byte for every string
    the serializer emits. Errors carry the byte offset. *)

val parse_file : string -> (t, string) result
(** [parse] on a file's contents; I/O failures become [Error]. *)

(* Shallow typed accessors, for destructuring parsed documents. *)

val to_string_opt : t -> string option

val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts [Float], [Int] (JSON does not distinguish), and the
    non-finite string sentinels the serializer emits. *)

val to_list_opt : t -> t list option
