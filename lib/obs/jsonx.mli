(** Minimal JSON document model and serializer.

    Just enough JSON to export traces and metrics without an external
    dependency: construction, rendering (compact or indented) and file
    output. Non-finite floats are rendered as [null] so the output is
    always standard JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?compact:bool -> t -> string
(** Render; [compact] (default false) suppresses newlines/indentation. *)

val write_file : string -> t -> unit
(** Write the rendered document (with a trailing newline). *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)
