(** Minimal JSON document model and serializer.

    Just enough JSON to export traces and metrics without an external
    dependency: construction, rendering (compact or indented) and file
    output. Non-finite floats are rendered as [null] so the output is
    always standard JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?compact:bool -> t -> string
(** Render; [compact] (default false) suppresses newlines/indentation. *)

val write_file : string -> t -> unit
(** Write the rendered document (with a trailing newline). *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val parse : string -> (t, string) result
(** Parse a JSON document. Integer-syntax numbers become [Int] (falling
    back to [Float] beyond the native int range), all other numbers
    [Float]. String escapes are decoded; [\uXXXX] sequences (including
    surrogate pairs) are re-encoded as UTF-8 bytes, so
    [parse (to_string t)] round-trips byte-for-byte for every string
    the serializer emits. Errors carry the byte offset. *)

val parse_file : string -> (t, string) result
(** [parse] on a file's contents; I/O failures become [Error]. *)

(* Shallow typed accessors, for destructuring parsed documents. *)

val to_string_opt : t -> string option

val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts both [Float] and [Int] (JSON does not distinguish). *)

val to_list_opt : t -> t list option
