(* Versioned NDJSON progress event stream.

   One JSON object per line, every line self-describing:
   {"schema":"hidap-progress","version":1,"event":...,"t_us":...}.
   Emission is gated on one atomic flag and serialized with a mutex so
   worker domains can report concurrently; the stream is write-only
   telemetry and never touches any RNG, so enabling it cannot change a
   placement (DESIGN.md §9/§12). *)

let schema = "hidap-progress"

(* v2: sa-progress gained a [cost_terms] object (the named breakdown of
   [best_cost], DESIGN.md §13). Purely field-additive over v1. *)
let version = 2

type sink = {
  oc : out_channel;
  lock : Mutex.t;
  close_oc : bool;
  hb_stop : bool Atomic.t;
  mutable hb : unit Domain.t option;
  mutable closed : bool;  (** guarded by [lock]; set by {!disable} *)
}

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let current : sink option ref = ref None

let emit event fields =
  if enabled () then
    match !current with
    | None -> ()
    | Some s ->
      let line =
        Jsonx.to_string ~compact:true
          (Jsonx.Obj
             (( ("schema", Jsonx.String schema)
              :: ("version", Jsonx.Int version)
              :: ("event", Jsonx.String event)
              :: ("t_us", Jsonx.Float (Clock.now_us ()))
              :: fields )))
      in
      Mutex.lock s.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock s.lock)
        (fun () ->
          (* A racing [disable] may have closed the channel between our
             read of [current] and taking the lock; the closed flag is
             flipped under this same lock, so checking it here means a
             line is either written whole before the close or skipped
             entirely — never torn, never a write-after-close. *)
          if not s.closed then begin
            output_string s.oc line;
            output_char s.oc '\n';
            flush s.oc
          end)

let heartbeat () = emit "heartbeat" []

let interruptible_sleep stop s =
  let chunk = 0.05 in
  let rec go left =
    if left > 0.0 && not (Atomic.get stop) then begin
      Unix.sleepf (min chunk left);
      go (left -. chunk)
    end
  in
  go s

let enable ?(heartbeat_s = 1.0) ?(close_on_disable = false) oc =
  if not (enabled ()) then begin
    let s =
      { oc; lock = Mutex.create (); close_oc = close_on_disable;
        hb_stop = Atomic.make false; hb = None; closed = false }
    in
    current := Some s;
    Atomic.set enabled_flag true;
    if heartbeat_s > 0.0 then
      s.hb <-
        Some
          (Domain.spawn (fun () ->
               while not (Atomic.get s.hb_stop) do
                 heartbeat ();
                 interruptible_sleep s.hb_stop heartbeat_s
               done))
  end

let disable () =
  match !current with
  | None -> ()
  | Some s ->
    (* Stop and join the heartbeat before touching the channel: the
       heartbeat domain emits under [s.lock], so it must be gone (not
       merely signalled) before the close. Joining outside the lock is
       required — holding it here while the heartbeat waits for it
       would deadlock. *)
    Atomic.set s.hb_stop true;
    Option.iter Domain.join s.hb;
    s.hb <- None;
    Atomic.set enabled_flag false;
    current := None;
    (* Close under the sink lock so an [emit] that read [current] just
       before we cleared it either finishes its whole line first or
       observes [closed] and skips. Flush/close failures (e.g. a
       reader that vanished) are swallowed: disable sits on exception
       paths and must never mask the original error. *)
    Mutex.lock s.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.lock)
      (fun () ->
        if not s.closed then begin
          s.closed <- true;
          (try flush s.oc with Sys_error _ -> ());
          if s.close_oc then try close_out s.oc with Sys_error _ -> ()
        end)

(* ---- event helpers ------------------------------------------------ *)

let run_start ~circuit ~seed ~jobs =
  emit "run-start"
    [ ("circuit", Jsonx.String circuit); ("seed", Jsonx.Int seed);
      ("jobs", Jsonx.Int jobs) ]

let run_end ~status = emit "run-end" [ ("status", Jsonx.String status) ]

let stage_start name = emit "stage-start" [ ("stage", Jsonx.String name) ]

let stage_end name ~dur_us ~ok =
  emit "stage-end"
    [ ("stage", Jsonx.String name); ("dur_us", Jsonx.Float dur_us);
      ("ok", Jsonx.Bool ok) ]

let with_stage name f =
  if not (enabled ()) then f ()
  else begin
    stage_start name;
    let t0 = Clock.now_us () in
    match f () with
    | v ->
      stage_end name ~dur_us:(Clock.now_us () -. t0) ~ok:true;
      v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      stage_end name ~dur_us:(Clock.now_us () -. t0) ~ok:false;
      Printexc.raise_with_backtrace e bt
  end

let sa_progress ~instance ?instances ~temperature ~best_cost ?cost_terms ~moves
    ~moves_per_s () =
  emit "sa-progress"
    [ ("instance", Jsonx.Int instance);
      ( "instances",
        match instances with Some n -> Jsonx.Int n | None -> Jsonx.Null );
      ("temperature", Jsonx.Float temperature);
      ("best_cost", Jsonx.Float best_cost);
      ( "cost_terms",
        match cost_terms with
        | None -> Jsonx.Null
        | Some terms ->
          Jsonx.Obj (List.map (fun (name, v) -> (name, Jsonx.Float v)) terms) );
      ("moves", Jsonx.Int moves);
      ("moves_per_s", Jsonx.Float moves_per_s) ]

let checkpoint ~seq ~file =
  emit "checkpoint" [ ("seq", Jsonx.Int seq); ("file", Jsonx.String file) ]

let degradation ~stage ~reason =
  emit "degradation"
    [ ("stage", Jsonx.String stage); ("reason", Jsonx.String reason) ]
