(** OCaml runtime allocation / collection statistics as metrics.

    A [snapshot] captures [Gc.quick_stat] at one point; [diff] turns two
    snapshots into the allocation and collection work done between them
    (word counters subtract, heap sizes keep the later reading).
    [gauges] publishes a snapshot to the global registry as
    [gc.*] gauges, gated on {!Metrics.enabled} like every other
    shorthand — reading [Gc] statistics never perturbs the flow. *)

type snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

val snapshot : unit -> snapshot

val allocated_words : snapshot -> float
(** Total words allocated: minor + major - promoted (promoted words
    would otherwise be counted twice). *)

val peak_rss_kb : unit -> int
(** Peak resident set size of this process in kilobytes (the kernel's
    VmHWM high-water mark from [/proc/self/status]); 0 when it cannot
    be read (non-Linux). A whole-process, monotone measure — unlike the
    GC words it includes code, stacks and C allocations. *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Work done between two snapshots; [heap_words]/[top_heap_words] are
    taken from [after]. *)

val record : ?prefix:string -> Metrics.t -> snapshot -> unit
(** Publish as [<prefix>.minor_words] etc. gauges (default prefix
    ["gc"]) on an explicit registry. *)

val gauges : ?prefix:string -> snapshot -> unit
(** [record] on the global registry, no-op unless metrics are enabled. *)

val to_json : snapshot -> Jsonx.t

val of_json : Jsonx.t -> snapshot option
