type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Non-finite floats (degraded or fault-injected runs produce them in
   metrics) have no JSON number syntax; they are emitted as the string
   sentinels below so the document stays standard JSON and the value
   survives a round-trip — [to_float_opt] maps the sentinels back. *)
let nonfinite_repr f =
  if Float.is_nan f then "\"NaN\""
  else if f > 0.0 then "\"Infinity\""
  else "\"-Infinity\""

let float_repr f =
  if not (Float.is_finite f) then None
  else if Float.is_integer f && abs_float f < 1e15 then
    Some (Printf.sprintf "%.0f" f)
  else Some (Printf.sprintf "%.12g" f)

let to_string ?(compact = false) t =
  let buf = Buffer.create 256 in
  let nl indent =
    if not compact then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      Buffer.add_string buf
        (match float_repr f with Some s -> s | None -> nonfinite_repr f)
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if compact then ":" else ": ");
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* ---- parsing ------------------------------------------------------ *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail (Printf.sprintf "bad hex digit '%c' in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    (* Encode a code point as UTF-8 bytes, matching how the serializer
       passes non-ASCII bytes through untouched. *)
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xf0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents buf
      | Some '\\' ->
        advance ();
        (match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            let cp = hex4 () in
            if cp >= 0xd800 && cp <= 0xdbff then
              (* High surrogate: combine with the following \uXXXX low
                 surrogate when present, else keep the replacement char. *)
              if !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                pos := !pos + 2;
                let lo = hex4 () in
                if lo >= 0xdc00 && lo <= 0xdfff then
                  add_utf8 buf (0x10000 + (((cp - 0xd800) lsl 10) lor (lo - 0xdc00)))
                else fail "invalid low surrogate"
              end
              else fail "lone high surrogate"
            else if cp >= 0xdc00 && cp <= 0xdfff then fail "lone low surrogate"
            else add_utf8 buf cp
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    let rec go () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+') ->
        advance ();
        go ()
      | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance ();
        go ()
      | _ -> ()
    in
    go ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None ->
        (* Integer syntax but out of int range: fall back to float. *)
        (match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg

(* ---- typed accessors ---------------------------------------------- *)

let to_string_opt = function String s -> Some s | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | String "NaN" -> Some Float.nan
  | String "Infinity" -> Some Float.infinity
  | String "-Infinity" -> Some Float.neg_infinity
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
