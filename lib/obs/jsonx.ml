type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then None
  else if Float.is_integer f && abs_float f < 1e15 then
    Some (Printf.sprintf "%.0f" f)
  else Some (Printf.sprintf "%.12g" f)

let to_string ?(compact = false) t =
  let buf = Buffer.create 256 in
  let nl indent =
    if not compact then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ')
    end
  in
  let rec go indent = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      Buffer.add_string buf (match float_repr f with Some s -> s | None -> "null")
    | String s -> Buffer.add_string buf (escape_string s)
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          go (indent + 2) item)
        items;
      nl indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (indent + 2);
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf (if compact then ":" else ": ");
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  output_char oc '\n';
  close_out oc

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
