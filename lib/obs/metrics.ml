type hist = {
  mutable samples : float list;  (* reverse observation order *)
  mutable count : int;
  bin_width : float;
  bins : Util.Histogram.t;
}

type value =
  | Counter of int ref
  | Gauge of float ref
  | Hist of hist
  | Series of (float * float) list ref  (* reversed *)

type t = { tbl : (string, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let global = create ()

(* The enabled flag is read from worker domains (atomic load); the
   registry the gated shorthands write to is domain-local so that
   concurrent tasks never share a mutable table. Fork-join runners give
   each task a fresh ambient registry via [with_ambient] and fold the
   results back with [merge_into] in a deterministic order. *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> global)

let ambient () = Domain.DLS.get ambient_key

let with_ambient r f =
  let saved = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key saved) f

let reset t = Hashtbl.reset t.tbl

(* ---- operations --------------------------------------------------- *)

let incr_counter t name n =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter r) -> r := !r + n
  | Some _ | None -> Hashtbl.replace t.tbl name (Counter (ref n))

let set_gauge t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge r) -> r := v
  | Some _ | None -> Hashtbl.replace t.tbl name (Gauge (ref v))

let bin_of ~bin_width x =
  let b = int_of_float (floor (x /. bin_width)) in
  if b < 0 then 0 else b

let observe ?(bin_width = 1.0) t name x =
  let h =
    match Hashtbl.find_opt t.tbl name with
    | Some (Hist h) -> h
    | Some _ | None ->
      let h = { samples = []; count = 0; bin_width; bins = Util.Histogram.create () } in
      Hashtbl.replace t.tbl name (Hist h);
      h
  in
  h.samples <- x :: h.samples;
  h.count <- h.count + 1;
  Util.Histogram.add h.bins ~bin:(bin_of ~bin_width:h.bin_width x) ~weight:1.0

let push_series t name x y =
  match Hashtbl.find_opt t.tbl name with
  | Some (Series r) -> r := (x, y) :: !r
  | Some _ | None -> Hashtbl.replace t.tbl name (Series (ref [ (x, y) ]))

(* ---- gated shorthands --------------------------------------------- *)

let counter name n = if enabled () then incr_counter (ambient ()) name n

let gauge name v = if enabled () then set_gauge (ambient ()) name v

let sample ?bin_width name x = if enabled () then observe ?bin_width (ambient ()) name x

let series name ~x ~y = if enabled () then push_series (ambient ()) name x y

(* ---- queries ------------------------------------------------------ *)

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with Some (Counter r) -> Some !r | _ -> None

let gauge_value t name =
  match Hashtbl.find_opt t.tbl name with Some (Gauge r) -> Some !r | _ -> None

let hist_samples t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Hist h) -> List.rev h.samples
  | _ -> []

let hist_bins t name =
  match Hashtbl.find_opt t.tbl name with Some (Hist h) -> Some h.bins | _ -> None

let series_points t name =
  match Hashtbl.find_opt t.tbl name with Some (Series r) -> List.rev !r | _ -> []

(* ---- merge -------------------------------------------------------- *)

let merge_into dst src =
  let copy_into name v =
    match v with
    | Counter r -> incr_counter dst name !r
    | Gauge r -> set_gauge dst name !r
    | Hist h ->
      List.iter (fun x -> observe ~bin_width:h.bin_width dst name x) (List.rev h.samples)
    | Series r -> List.iter (fun (x, y) -> push_series dst name x y) (List.rev !r)
  in
  Hashtbl.iter copy_into src.tbl

let merge a b =
  let out = create () in
  merge_into out a;
  merge_into out b;
  out

(* ---- percentiles / export ----------------------------------------- *)

(* Boundary convention (documented in the .mli): the empty list has no
   percentiles; a single sample is every percentile of its
   distribution. The general case interpolates linearly between order
   statistics, so the single-sample rule is the n = 1 instance of the
   formula rather than a special case bolted on. *)
let percentile_opt xs ~p =
  match List.sort compare xs with
  | [] -> None
  | [ x ] -> Some x
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    let p = Util.Stat.clamp ~lo:0.0 ~hi:100.0 p in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    Some (a.(lo) +. ((rank -. float_of_int lo) *. (a.(hi) -. a.(lo))))

let percentile xs ~p =
  match percentile_opt xs ~p with
  | Some v -> v
  | None -> invalid_arg "Metrics.percentile: empty sample list"

let hist_percentile t name ~p =
  match Hashtbl.find_opt t.tbl name with
  | Some (Hist h) -> percentile_opt h.samples ~p
  | _ -> None

let hist_json h =
  let samples = List.rev h.samples in
  let stats =
    match samples with
    | [] -> []
    | _ ->
      [ ("mean", Jsonx.Float (Util.Stat.mean samples));
        ("min", Jsonx.Float (Util.Stat.minimum samples));
        ("max", Jsonx.Float (Util.Stat.maximum samples));
        ("p50", Jsonx.Float (percentile samples ~p:50.0));
        ("p90", Jsonx.Float (percentile samples ~p:90.0));
        ("p99", Jsonx.Float (percentile samples ~p:99.0)) ]
  in
  Jsonx.Obj
    (( ("count", Jsonx.Int h.count) :: stats )
    @ [ ("bin_width", Jsonx.Float h.bin_width);
        ( "bins",
          Jsonx.List
            (List.map
               (fun (b, w) -> Jsonx.List [ Jsonx.Int b; Jsonx.Float w ])
               (Util.Histogram.bins h.bins)) ) ])

let to_json t =
  let section pick to_j =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt t.tbl name with
        | Some v -> Option.map (fun x -> (name, to_j x)) (pick v)
        | None -> None)
      (names t)
  in
  Jsonx.Obj
    [ ( "counters",
        Jsonx.Obj
          (section (function Counter r -> Some !r | _ -> None) (fun n -> Jsonx.Int n)) );
      ( "gauges",
        Jsonx.Obj
          (section (function Gauge r -> Some !r | _ -> None) (fun v -> Jsonx.Float v)) );
      ( "histograms",
        Jsonx.Obj (section (function Hist h -> Some h | _ -> None) hist_json) );
      ( "series",
        Jsonx.Obj
          (section
             (function Series r -> Some (List.rev !r) | _ -> None)
             (fun pts ->
               Jsonx.List
                 (List.map
                    (fun (x, y) -> Jsonx.List [ Jsonx.Float x; Jsonx.Float y ])
                    pts))) ) ]
