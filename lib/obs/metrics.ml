(* Raw-sample storage is capped by a deterministic reservoir
   (Algorithm R, capacity [reservoir_capacity]) so long runs cannot
   grow memory without bound: count/sum/min/max stay exact, the binned
   histogram stays exact, and percentiles are computed from the
   retained subsample. The reservoir RNG is seeded from the metric
   name, so the retained set depends only on the observation sequence
   — never on scheduling — which keeps merged registries identical for
   every job count. *)
let reservoir_capacity = 512

type hist = {
  res : float array;  (* res.(0 .. filled-1) are the retained samples *)
  mutable filled : int;
  mutable offered : int;  (* observations offered to the reservoir *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  rng : Util.Rng.t;  (* reservoir replacement stream, seeded by name *)
  bin_width : float;
  bins : Util.Histogram.t;
}

type value =
  | Counter of int ref
  | Gauge of float ref
  | Hist of hist
  | Series of (float * float) list ref  (* reversed *)

type t = { tbl : (string, value) Hashtbl.t }

let create () = { tbl = Hashtbl.create 32 }

let global = create ()

(* The enabled flag is read from worker domains (atomic load); the
   registry the gated shorthands write to is domain-local so that
   concurrent tasks never share a mutable table. Fork-join runners give
   each task a fresh ambient registry via [with_ambient] and fold the
   results back with [merge_into] in a deterministic order. *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> global)

let ambient () = Domain.DLS.get ambient_key

let with_ambient r f =
  let saved = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key saved) f

let reset t = Hashtbl.reset t.tbl

(* ---- operations --------------------------------------------------- *)

let incr_counter t name n =
  match Hashtbl.find_opt t.tbl name with
  | Some (Counter r) -> r := !r + n
  | Some _ | None -> Hashtbl.replace t.tbl name (Counter (ref n))

let set_gauge t name v =
  match Hashtbl.find_opt t.tbl name with
  | Some (Gauge r) -> r := v
  | Some _ | None -> Hashtbl.replace t.tbl name (Gauge (ref v))

let bin_of ~bin_width x =
  let b = int_of_float (floor (x /. bin_width)) in
  if b < 0 then 0 else b

let get_hist t name ~bin_width =
  match Hashtbl.find_opt t.tbl name with
  | Some (Hist h) -> h
  | Some _ | None ->
    let h =
      { res = Array.make reservoir_capacity 0.0;
        filled = 0;
        offered = 0;
        count = 0;
        sum = 0.0;
        min_v = infinity;
        max_v = neg_infinity;
        rng = Util.Rng.create (Hashtbl.hash name);
        bin_width;
        bins = Util.Histogram.create () }
    in
    Hashtbl.replace t.tbl name (Hist h);
    h

(* Algorithm R: the i-th offered sample replaces a uniformly chosen
   slot with probability capacity/i once the reservoir is full. *)
let offer h x =
  h.offered <- h.offered + 1;
  if h.filled < reservoir_capacity then begin
    h.res.(h.filled) <- x;
    h.filled <- h.filled + 1
  end
  else begin
    let j = Util.Rng.int h.rng h.offered in
    if j < reservoir_capacity then h.res.(j) <- x
  end

let retained h = Array.to_list (Array.sub h.res 0 h.filled)

let observe ?(bin_width = 1.0) t name x =
  let h = get_hist t name ~bin_width in
  offer h x;
  h.count <- h.count + 1;
  h.sum <- h.sum +. x;
  if x < h.min_v then h.min_v <- x;
  if x > h.max_v then h.max_v <- x;
  Util.Histogram.add h.bins ~bin:(bin_of ~bin_width:h.bin_width x) ~weight:1.0

let push_series t name x y =
  match Hashtbl.find_opt t.tbl name with
  | Some (Series r) -> r := (x, y) :: !r
  | Some _ | None -> Hashtbl.replace t.tbl name (Series (ref [ (x, y) ]))

(* ---- gated shorthands --------------------------------------------- *)

let counter name n = if enabled () then incr_counter (ambient ()) name n

let gauge name v = if enabled () then set_gauge (ambient ()) name v

let sample ?bin_width name x = if enabled () then observe ?bin_width (ambient ()) name x

let series name ~x ~y = if enabled () then push_series (ambient ()) name x y

(* ---- queries ------------------------------------------------------ *)

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl [] |> List.sort compare

let counter_value t name =
  match Hashtbl.find_opt t.tbl name with Some (Counter r) -> Some !r | _ -> None

let gauge_value t name =
  match Hashtbl.find_opt t.tbl name with Some (Gauge r) -> Some !r | _ -> None

let hist_samples t name =
  match Hashtbl.find_opt t.tbl name with
  | Some (Hist h) -> retained h
  | _ -> []

let hist_bins t name =
  match Hashtbl.find_opt t.tbl name with Some (Hist h) -> Some h.bins | _ -> None

let series_points t name =
  match Hashtbl.find_opt t.tbl name with Some (Series r) -> List.rev !r | _ -> []

(* ---- merge -------------------------------------------------------- *)

let merge_into dst src =
  let copy_into name v =
    match v with
    | Counter r -> incr_counter dst name !r
    | Gauge r -> set_gauge dst name !r
    | Hist h ->
      let d = get_hist dst name ~bin_width:h.bin_width in
      (* Exact aggregates merge exactly; only the retained subsample is
         re-offered to the destination reservoir (in slot order, so the
         result depends only on the merge order — task order). *)
      d.count <- d.count + h.count;
      d.sum <- d.sum +. h.sum;
      if h.min_v < d.min_v then d.min_v <- h.min_v;
      if h.max_v > d.max_v then d.max_v <- h.max_v;
      List.iter
        (fun (bin, weight) -> Util.Histogram.add d.bins ~bin ~weight)
        (Util.Histogram.bins h.bins);
      for i = 0 to h.filled - 1 do
        offer d h.res.(i)
      done
    | Series r -> List.iter (fun (x, y) -> push_series dst name x y) (List.rev !r)
  in
  Hashtbl.iter copy_into src.tbl

let merge a b =
  let out = create () in
  merge_into out a;
  merge_into out b;
  out

(* ---- percentiles / export ----------------------------------------- *)

(* Boundary convention (documented in the .mli): the empty list has no
   percentiles; a single sample is every percentile of its
   distribution. The general case interpolates linearly between order
   statistics, so the single-sample rule is the n = 1 instance of the
   formula rather than a special case bolted on. *)
let percentile_opt xs ~p =
  match List.sort compare xs with
  | [] -> None
  | [ x ] -> Some x
  | sorted ->
    let a = Array.of_list sorted in
    let n = Array.length a in
    let p = Util.Stat.clamp ~lo:0.0 ~hi:100.0 p in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    Some (a.(lo) +. ((rank -. float_of_int lo) *. (a.(hi) -. a.(lo))))

let percentile xs ~p =
  match percentile_opt xs ~p with
  | Some v -> v
  | None -> invalid_arg "Metrics.percentile: empty sample list"

let hist_percentile t name ~p =
  match Hashtbl.find_opt t.tbl name with
  | Some (Hist h) -> percentile_opt (retained h) ~p
  | _ -> None

let hist_json h =
  let samples = retained h in
  (* count/mean/min/max are exact even past the reservoir capacity;
     the percentiles are estimates from the retained subsample. *)
  let stats =
    match samples with
    | [] -> []
    | _ ->
      [ ("mean", Jsonx.Float (h.sum /. float_of_int h.count));
        ("min", Jsonx.Float h.min_v);
        ("max", Jsonx.Float h.max_v);
        ("p50", Jsonx.Float (percentile samples ~p:50.0));
        ("p90", Jsonx.Float (percentile samples ~p:90.0));
        ("p99", Jsonx.Float (percentile samples ~p:99.0)) ]
  in
  Jsonx.Obj
    (( ("count", Jsonx.Int h.count) :: stats )
    @ [ ("bin_width", Jsonx.Float h.bin_width);
        ( "bins",
          Jsonx.List
            (List.map
               (fun (b, w) -> Jsonx.List [ Jsonx.Int b; Jsonx.Float w ])
               (Util.Histogram.bins h.bins)) ) ])

let to_json t =
  let section pick to_j =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt t.tbl name with
        | Some v -> Option.map (fun x -> (name, to_j x)) (pick v)
        | None -> None)
      (names t)
  in
  Jsonx.Obj
    [ ( "counters",
        Jsonx.Obj
          (section (function Counter r -> Some !r | _ -> None) (fun n -> Jsonx.Int n)) );
      ( "gauges",
        Jsonx.Obj
          (section (function Gauge r -> Some !r | _ -> None) (fun v -> Jsonx.Float v)) );
      ( "histograms",
        Jsonx.Obj (section (function Hist h -> Some h | _ -> None) hist_json) );
      ( "series",
        Jsonx.Obj
          (section
             (function Series r -> Some (List.rev !r) | _ -> None)
             (fun pts ->
               Jsonx.List
                 (List.map
                    (fun (x, y) -> Jsonx.List [ Jsonx.Float x; Jsonx.Float y ])
                    pts))) ) ]
