type snapshot = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
  heap_words : int;
  top_heap_words : int;
}

let snapshot () =
  let s = Gc.quick_stat () in
  { minor_words = s.Gc.minor_words;
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    compactions = s.Gc.compactions;
    heap_words = s.Gc.heap_words;
    top_heap_words = s.Gc.top_heap_words }

let allocated_words s = s.minor_words +. s.major_words -. s.promoted_words

(* Peak resident set size of this process in kilobytes, read from the
   kernel's high-water mark (VmHWM in /proc/self/status). 0 when the
   file or the field is unavailable (non-Linux); callers treat 0 as
   "not measured". *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let prefix = "VmHWM:" in
        let plen = String.length prefix in
        let rec scan () =
          match input_line ic with
          | exception End_of_file -> 0
          | line ->
            if String.length line > plen && String.sub line 0 plen = prefix then
              (* "VmHWM:	  123456 kB" *)
              (try
                 Scanf.sscanf (String.sub line plen (String.length line - plen))
                   " %d" (fun n -> n)
               with Scanf.Scan_failure _ | Failure _ | End_of_file -> 0)
            else scan ()
        in
        scan ())

let diff ~before ~after =
  { minor_words = after.minor_words -. before.minor_words;
    promoted_words = after.promoted_words -. before.promoted_words;
    major_words = after.major_words -. before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    compactions = after.compactions - before.compactions;
    heap_words = after.heap_words;
    top_heap_words = after.top_heap_words }

let record ?(prefix = "gc") t s =
  Metrics.set_gauge t (prefix ^ ".minor_words") s.minor_words;
  Metrics.set_gauge t (prefix ^ ".promoted_words") s.promoted_words;
  Metrics.set_gauge t (prefix ^ ".major_words") s.major_words;
  Metrics.set_gauge t (prefix ^ ".allocated_words") (allocated_words s);
  Metrics.set_gauge t (prefix ^ ".minor_collections") (float_of_int s.minor_collections);
  Metrics.set_gauge t (prefix ^ ".major_collections") (float_of_int s.major_collections);
  Metrics.set_gauge t (prefix ^ ".compactions") (float_of_int s.compactions);
  Metrics.set_gauge t (prefix ^ ".heap_words") (float_of_int s.heap_words);
  Metrics.set_gauge t (prefix ^ ".top_heap_words") (float_of_int s.top_heap_words)

let gauges ?prefix s = if Metrics.enabled () then record ?prefix Metrics.global s

let to_json s =
  Jsonx.Obj
    [ ("minor_words", Jsonx.Float s.minor_words);
      ("promoted_words", Jsonx.Float s.promoted_words);
      ("major_words", Jsonx.Float s.major_words);
      ("allocated_words", Jsonx.Float (allocated_words s));
      ("minor_collections", Jsonx.Int s.minor_collections);
      ("major_collections", Jsonx.Int s.major_collections);
      ("compactions", Jsonx.Int s.compactions);
      ("heap_words", Jsonx.Int s.heap_words);
      ("top_heap_words", Jsonx.Int s.top_heap_words) ]

let of_json j =
  let f name = Option.bind (Jsonx.member name j) Jsonx.to_float_opt in
  let i name = Option.bind (Jsonx.member name j) Jsonx.to_int_opt in
  match (f "minor_words", f "promoted_words", f "major_words") with
  | Some minor_words, Some promoted_words, Some major_words ->
    let get name = Option.value ~default:0 (i name) in
    Some
      { minor_words;
        promoted_words;
        major_words;
        minor_collections = get "minor_collections";
        major_collections = get "major_collections";
        compactions = get "compactions";
        heap_words = get "heap_words";
        top_heap_words = get "top_heap_words" }
  | _ -> None
