(** Versioned NDJSON progress event stream.

    The live feed behind [--progress-file]/[--progress-fd] (and, later,
    [hidap serve]): one JSON object per line, written and flushed
    atomically under a mutex so worker domains can report concurrently
    without interleaving. Every line is self-describing:

    {v
    {"schema":"hidap-progress","version":2,"event":"...","t_us":...}
    v}

    The full event vocabulary and field tables are specified in
    DESIGN.md §12; the schema is versioned exactly like the QoR
    record — adding fields is backward-compatible, anything else bumps
    [version], and readers must ignore unknown fields and refuse newer
    versions.

    Emission costs one atomic load when disabled and never touches any
    RNG, so enabling the stream cannot change a placement. *)

val schema : string
(** ["hidap-progress"] *)

val version : int
(** 2 — v2 added the field-additive [cost_terms] object to
    [sa-progress] (a v1 reader that ignores unknown fields parses every
    v2 line unchanged). *)

val enabled : unit -> bool

val enable : ?heartbeat_s:float -> ?close_on_disable:bool -> out_channel -> unit
(** Route events to [oc] and, when [heartbeat_s > 0] (default 1.0),
    spawn a heartbeat domain emitting an event on that period. No-op
    when already enabled. Call from the main domain. *)

val disable : unit -> unit
(** Stop {e and join} the heartbeat domain, flush, detach (and close
    the channel when [close_on_disable] was set). Safe on exception
    paths: flush/close failures are swallowed, the call is idempotent,
    and the close happens under the sink mutex so an [emit] racing
    [disable] either writes its whole line before the close or skips —
    an NDJSON line is never torn and the channel is never written
    after close. *)

val emit : string -> (string * Jsonx.t) list -> unit
(** [emit event fields] writes one line with the standard envelope
    ([schema]/[version]/[event]/[t_us]) followed by [fields]. No-op
    when disabled. The typed helpers below are the documented
    vocabulary — prefer them. *)

(** {1 Event vocabulary (DESIGN.md §12)} *)

val heartbeat : unit -> unit

val run_start : circuit:string -> seed:int -> jobs:int -> unit

val run_end : status:string -> unit
(** [status] is ["ok"], ["degraded"] or ["failed"]. *)

val stage_start : string -> unit

val stage_end : string -> dur_us:float -> ok:bool -> unit

val with_stage : string -> (unit -> 'a) -> 'a
(** Bracket [f] with stage-start/stage-end (emitting [ok:false] and
    re-raising when [f] raises). Just [f ()] when disabled. *)

val sa_progress :
  instance:int ->
  ?instances:int ->
  temperature:float ->
  best_cost:float ->
  ?cost_terms:(string * float) list ->
  moves:int ->
  moves_per_s:float ->
  unit ->
  unit
(** Per completed floorplan instance: 1-based [instance] counter,
    total [instances] when known (emitted as [null] otherwise), final
    plateau temperature, best cost, its named term breakdown
    ([cost_terms], an object of term name -> value, [null] when not
    supplied), SA moves spent and the instance's moves/second. *)

val checkpoint : seq:int -> file:string -> unit

val degradation : stage:string -> reason:string -> unit
