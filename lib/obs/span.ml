type t = {
  name : string;
  mutable attrs : (string * string) list;  (* reverse insertion order *)
  start_us : float;
  mutable dur_us : float;
  mutable children : t list;  (* reverse execution order *)
}

type recorder = {
  mutable roots : t list;  (* reverse execution order *)
  mutable stack : t list;  (* innermost first *)
}

(* The recorder is domain-local: each domain records into its own
   structure, and fork-join runners stitch worker spans back into the
   spawning domain's recorder with [capture]/[graft]. *)
let active : recorder option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_active () = Domain.DLS.get active

let set_active r = Domain.DLS.set active r

let enabled () = match get_active () with None -> false | Some _ -> true

let start_recording () = set_active (Some { roots = []; stack = [] })

(* Recording accumulates lists in reverse; normalize once at the end. *)
let rec normalize sp =
  sp.attrs <- List.rev sp.attrs;
  sp.children <- List.rev sp.children;
  List.iter normalize sp.children

(* Close open spans and return the raw roots in execution order, with
   attrs/children still in reverse order (normalization pending). *)
let drain_raw r =
  let now = Clock.now_us () in
  List.iter (fun sp -> sp.dur_us <- now -. sp.start_us) r.stack;
  List.rev r.roots

let finish_recording () =
  match get_active () with
  | None -> []
  | Some r ->
    set_active None;
    let roots = drain_raw r in
    List.iter normalize roots;
    roots

let capture f =
  let saved = get_active () in
  set_active (Some { roots = []; stack = [] });
  match f () with
  | v ->
    let spans =
      match get_active () with None -> [] | Some r -> drain_raw r
    in
    set_active saved;
    (v, spans)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    set_active saved;
    Printexc.raise_with_backtrace e bt

let graft spans =
  match (get_active (), spans) with
  | None, _ | _, [] -> ()
  | Some r, spans ->
    (* The recorder stores children/roots in reverse execution order, so
       the captured spans (execution order) are reversed and prepended:
       the final normalization pass un-reverses everything exactly
       once. *)
    let rev = List.rev spans in
    (match r.stack with
    | parent :: _ -> parent.children <- rev @ parent.children
    | [] -> r.roots <- rev @ r.roots)

let with_ ?(attrs = []) ~name f =
  match get_active () with
  | None -> f ()
  | Some r ->
    let sp =
      { name; attrs = List.rev attrs; start_us = Clock.now_us (); dur_us = 0.0;
        children = [] }
    in
    (match r.stack with
    | parent :: _ -> parent.children <- sp :: parent.children
    | [] -> r.roots <- sp :: r.roots);
    r.stack <- sp :: r.stack;
    Fun.protect
      ~finally:(fun () ->
        sp.dur_us <- Clock.now_us () -. sp.start_us;
        match r.stack with
        | top :: rest when top == sp -> r.stack <- rest
        | _ -> ())
      f

let add_attr k v =
  match get_active () with
  | Some { stack = sp :: _; _ } -> sp.attrs <- (k, v) :: sp.attrs
  | Some { stack = []; _ } | None -> ()

let attr_int k v =
  match get_active () with
  | Some { stack = _ :: _; _ } -> add_attr k (string_of_int v)
  | Some { stack = []; _ } | None -> ()

let attr_float k v =
  match get_active () with
  | Some { stack = _ :: _; _ } -> add_attr k (Printf.sprintf "%g" v)
  | Some { stack = []; _ } | None -> ()

let attr_str k v = add_attr k v
