type t = {
  name : string;
  mutable attrs : (string * string) list;  (* reverse insertion order *)
  start_us : float;
  mutable dur_us : float;
  mutable children : t list;  (* reverse execution order *)
}

type recorder = {
  mutable roots : t list;  (* reverse execution order *)
  mutable stack : t list;  (* innermost first *)
}

(* The recorder is domain-local: each domain records into its own
   structure, and fork-join runners stitch worker spans back into the
   spawning domain's recorder with [capture]/[graft]. *)
let active : recorder option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let get_active () = Domain.DLS.get active

let set_active r = Domain.DLS.set active r

let enabled () = match get_active () with None -> false | Some _ -> true

let start_recording () = set_active (Some { roots = []; stack = [] })

(* ---- stack publication (sampling profiler support) ----------------

   Each participating domain owns one slot of a small global table and
   mirrors its current span stack (innermost first) into it on every
   span open/close, so a sampler running on another domain can read a
   consistent immutable snapshot with a single atomic load. [None]
   marks a free slot; [Some []] an allocated but idle domain. The
   mirror writes are gated on one atomic flag, so when no sampler runs
   the cost is a single load per span boundary. *)

let max_slots = 64

let published : string list option Atomic.t array =
  Array.init max_slots (fun _ -> Atomic.make None)

let publishing_flag = Atomic.make false

let publishing () = Atomic.get publishing_flag

let set_publishing b = Atomic.set publishing_flag b

let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> -1)

let publish_current () =
  if Atomic.get publishing_flag then begin
    let s = Domain.DLS.get slot_key in
    if s >= 0 then
      let names =
        match get_active () with
        | Some r -> List.map (fun sp -> sp.name) r.stack
        | None -> []
      in
      Atomic.set published.(s) (Some names)
  end

let ensure_slot () =
  if Domain.DLS.get slot_key < 0 then begin
    let rec scan i =
      if i >= max_slots then ()
      else if Atomic.compare_and_set published.(i) None (Some []) then
        Domain.DLS.set slot_key i
      else scan (i + 1)
    in
    scan 0;
    publish_current ()
  end

let release_slot () =
  let s = Domain.DLS.get slot_key in
  if s >= 0 then begin
    Domain.DLS.set slot_key (-1);
    Atomic.set published.(s) None
  end

let with_publish_slot f =
  if (not (Atomic.get publishing_flag)) || Domain.DLS.get slot_key >= 0 then f ()
  else begin
    ensure_slot ();
    Fun.protect ~finally:release_slot f
  end

let published_stacks () = Array.map Atomic.get published

(* Recording accumulates lists in reverse; normalize once at the end. *)
let rec normalize sp =
  sp.attrs <- List.rev sp.attrs;
  sp.children <- List.rev sp.children;
  List.iter normalize sp.children

(* Close open spans and return the raw roots in execution order, with
   attrs/children still in reverse order (normalization pending). *)
let drain_raw r =
  let now = Clock.now_us () in
  List.iter (fun sp -> sp.dur_us <- now -. sp.start_us) r.stack;
  List.rev r.roots

let finish_recording () =
  match get_active () with
  | None -> []
  | Some r ->
    set_active None;
    let roots = drain_raw r in
    List.iter normalize roots;
    roots

let capture f =
  let saved = get_active () in
  set_active (Some { roots = []; stack = [] });
  publish_current ();
  match f () with
  | v ->
    let spans =
      match get_active () with None -> [] | Some r -> drain_raw r
    in
    set_active saved;
    publish_current ();
    (v, spans)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    set_active saved;
    publish_current ();
    Printexc.raise_with_backtrace e bt

let graft spans =
  match (get_active (), spans) with
  | None, _ | _, [] -> ()
  | Some r, spans ->
    (* The recorder stores children/roots in reverse execution order, so
       the captured spans (execution order) are reversed and prepended:
       the final normalization pass un-reverses everything exactly
       once. *)
    let rev = List.rev spans in
    (match r.stack with
    | parent :: _ -> parent.children <- rev @ parent.children
    | [] -> r.roots <- rev @ r.roots)

let with_ ?(attrs = []) ~name f =
  match get_active () with
  | None -> f ()
  | Some r ->
    let sp =
      { name; attrs = List.rev attrs; start_us = Clock.now_us (); dur_us = 0.0;
        children = [] }
    in
    (match r.stack with
    | parent :: _ -> parent.children <- sp :: parent.children
    | [] -> r.roots <- sp :: r.roots);
    r.stack <- sp :: r.stack;
    publish_current ();
    Fun.protect
      ~finally:(fun () ->
        sp.dur_us <- Clock.now_us () -. sp.start_us;
        (match r.stack with
        | top :: rest when top == sp -> r.stack <- rest
        | _ -> ());
        publish_current ())
      f

let add_attr k v =
  match get_active () with
  | Some { stack = sp :: _; _ } -> sp.attrs <- (k, v) :: sp.attrs
  | Some { stack = []; _ } | None -> ()

let attr_int k v =
  match get_active () with
  | Some { stack = _ :: _; _ } -> add_attr k (string_of_int v)
  | Some { stack = []; _ } | None -> ()

let attr_float k v =
  match get_active () with
  | Some { stack = _ :: _; _ } -> add_attr k (Printf.sprintf "%g" v)
  | Some { stack = []; _ } | None -> ()

let attr_str k v = add_attr k v
