type t = {
  name : string;
  mutable attrs : (string * string) list;  (* reverse insertion order *)
  start_us : float;
  mutable dur_us : float;
  mutable children : t list;  (* reverse execution order *)
}

type recorder = {
  mutable roots : t list;  (* reverse execution order *)
  mutable stack : t list;  (* innermost first *)
}

let active : recorder option ref = ref None

let enabled () = !active <> None

let start_recording () = active := Some { roots = []; stack = [] }

(* Recording accumulates lists in reverse; normalize once at the end. *)
let rec normalize sp =
  sp.attrs <- List.rev sp.attrs;
  sp.children <- List.rev sp.children;
  List.iter normalize sp.children

let finish_recording () =
  match !active with
  | None -> []
  | Some r ->
    active := None;
    let now = Clock.now_us () in
    List.iter (fun sp -> sp.dur_us <- now -. sp.start_us) r.stack;
    let roots = List.rev r.roots in
    List.iter normalize roots;
    roots

let with_ ?(attrs = []) ~name f =
  match !active with
  | None -> f ()
  | Some r ->
    let sp =
      { name; attrs = List.rev attrs; start_us = Clock.now_us (); dur_us = 0.0;
        children = [] }
    in
    (match r.stack with
    | parent :: _ -> parent.children <- sp :: parent.children
    | [] -> r.roots <- sp :: r.roots);
    r.stack <- sp :: r.stack;
    Fun.protect
      ~finally:(fun () ->
        sp.dur_us <- Clock.now_us () -. sp.start_us;
        match r.stack with
        | top :: rest when top == sp -> r.stack <- rest
        | _ -> ())
      f

let add_attr k v =
  match !active with
  | Some { stack = sp :: _; _ } -> sp.attrs <- (k, v) :: sp.attrs
  | Some { stack = []; _ } | None -> ()

let attr_int k v =
  match !active with
  | Some { stack = _ :: _; _ } -> add_attr k (string_of_int v)
  | Some { stack = []; _ } | None -> ()

let attr_float k v =
  match !active with
  | Some { stack = _ :: _; _ } -> add_attr k (Printf.sprintf "%g" v)
  | Some { stack = []; _ } | None -> ()

let attr_str k v = add_attr k v
