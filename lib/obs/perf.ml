(* Pre-registered hot-path counters.

   Every counter id is a fixed index into a flat [int array]; the hot
   path never hashes a string or allocates. The registry is ambient and
   domain-local, mirroring [Metrics]: fork-join runners give each task
   a fresh array via [with_ambient] and fold the snapshots back with
   [merge_into] in task order, so the merged totals are identical for
   every job count and enabling the counters never perturbs a
   placement. *)

type id = int

let names =
  [| "sa.moves";
     "sa.accepts";
     "sa.rejects";
     "sa.plateaus";
     "sa.reheats";
     "cost.evals";
     "floorplan.instances" |]

let sa_moves = 0
let sa_accepts = 1
let sa_rejects = 2
let sa_plateaus = 3
let sa_reheats = 4
let cost_evals = 5
let fp_instances = 6

let n_ids = Array.length names

let id_name i = names.(i)

let all_ids = List.init n_ids Fun.id

type t = int array

let create () : t = Array.make n_ids 0

let global : t = create ()

let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let ambient_key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> global)

let ambient () = Domain.DLS.get ambient_key

let with_ambient r f =
  let saved = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key saved) f

let get (t : t) i = t.(i)

let bump (t : t) i n = Array.unsafe_set t i (Array.unsafe_get t i + n)

let add i n = if enabled () then bump (ambient ()) i n

let reset (t : t) = Array.fill t 0 n_ids 0

let snapshot (t : t) = Array.copy t

let merge_into (dst : t) (src : t) =
  for i = 0 to n_ids - 1 do
    dst.(i) <- dst.(i) + src.(i)
  done

let to_assoc (t : t) = List.map (fun i -> (names.(i), t.(i))) all_ids

let to_json (t : t) =
  Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Int v)) (to_assoc t))
