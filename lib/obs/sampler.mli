(** Wall-clock sampling profiler over published span stacks.

    {!start} turns on {!Span} stack publication and spawns a dedicated
    sampler domain that periodically snapshots every publishing
    domain's span stack, counting observations per collapsed stack
    ["root;child;leaf"] (the flamegraph input format; an allocated but
    idle domain samples as ["(idle)"]). {!stop} joins the sampler,
    takes one final synchronous sample (so even very short runs
    produce output) and returns the accumulated samples.

    The profiler is read-only: it never blocks the sampled domains and
    never touches any RNG, so enabling it cannot change a placement
    (DESIGN.md §9). Only spans are sampled — run with span recording
    active (e.g. [--trace] or [--profile-out], which implies it) or
    every sample lands in ["(idle)"]. *)

val running : unit -> bool

val start : ?interval_ms:float -> unit -> unit
(** Start sampling every [interval_ms] (default 5 ms, clamped to
    ≥0.5 ms). No-op when already running. Call from the main domain. *)

val stop : unit -> (string * int) list
(** Stop and return [(collapsed_stack, count)] sorted by stack.
    Returns [[]] when no sampler is running. *)

val sample_now : unit -> unit
(** Take one synchronous sample into the running sampler (no-op when
    stopped) — deterministic hook for tests. *)

val collapse : string list -> string
(** Collapse an innermost-first frame list to ["root;...;leaf"]
    (["(idle)"] for the empty stack). *)

val to_collapsed_lines : (string * int) list -> string list
(** One ["stack count"] line per sample bucket. *)

val write_collapsed : string -> (string * int) list -> unit
(** Write the collapsed-stack lines to a file (flamegraph.pl /
    speedscope / inferno input). *)
