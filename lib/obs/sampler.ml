(* Wall-clock sampling profiler.

   A dedicated sampler domain wakes up every [interval] and reads the
   span stacks the worker domains publish through [Span] (one atomic
   load per slot), bucketing each observation under its collapsed
   stack "root;child;leaf". The sampled code never blocks for the
   sampler and the sampler never touches any RNG, so profiling cannot
   change a placement. *)

type state = {
  tbl : (string, int ref) Hashtbl.t;
  lock : Mutex.t;
  stop : bool Atomic.t;
  mutable sampler : unit Domain.t option;
}

let current : state option ref = ref None

let running () = Option.is_some !current

let collapse names =
  match names with [] -> "(idle)" | _ -> String.concat ";" (List.rev names)

let sample_locked st =
  let stacks = Span.published_stacks () in
  Array.iter
    (function
      | None -> ()
      | Some names ->
        let key = collapse names in
        (match Hashtbl.find_opt st.tbl key with
        | Some r -> incr r
        | None -> Hashtbl.replace st.tbl key (ref 1)))
    stacks

let sample_now () =
  match !current with
  | None -> ()
  | Some st ->
    Mutex.lock st.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock st.lock) (fun () -> sample_locked st)

(* Sleep in short chunks so [stop] takes effect promptly even with a
   long sampling interval. *)
let interruptible_sleep stop s =
  let chunk = 0.02 in
  let rec go left =
    if left > 0.0 && not (Atomic.get stop) then begin
      Unix.sleepf (min chunk left);
      go (left -. chunk)
    end
  in
  go s

let start ?(interval_ms = 5.0) () =
  if not (running ()) then begin
    let st =
      { tbl = Hashtbl.create 64;
        lock = Mutex.create ();
        stop = Atomic.make false;
        sampler = None }
    in
    current := Some st;
    Span.set_publishing true;
    Span.ensure_slot ();
    let interval_s = Float.max 0.0005 (interval_ms /. 1e3) in
    let d =
      Domain.spawn (fun () ->
          while not (Atomic.get st.stop) do
            Mutex.lock st.lock;
            sample_locked st;
            Mutex.unlock st.lock;
            interruptible_sleep st.stop interval_s
          done)
    in
    st.sampler <- Some d
  end

let stop () =
  match !current with
  | None -> []
  | Some st ->
    Atomic.set st.stop true;
    Option.iter Domain.join st.sampler;
    (* One final synchronous sample so even a run shorter than the
       interval produces at least one observation. *)
    sample_locked st;
    Span.set_publishing false;
    Span.release_slot ();
    current := None;
    Hashtbl.fold (fun k r acc -> (k, !r) :: acc) st.tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_collapsed_lines samples =
  List.map (fun (stack, n) -> Printf.sprintf "%s %d" stack n) samples

let write_collapsed path samples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun l -> output_string oc l; output_char oc '\n')
        (to_collapsed_lines samples))
