(** Pre-registered hot-path performance counters.

    Unlike {!Metrics} (string-keyed, hashtable-backed, built for
    flexible telemetry), [Perf] is built for the annealing inner loop:
    every counter is registered below as a fixed integer {!id} indexing
    a flat [int array], so bumping a counter is two array accesses and
    the gated shorthand {!add} costs exactly one branch (an atomic
    flag load) when disabled. No string is hashed and nothing is
    allocated on the hot path.

    {b Determinism contract} (DESIGN.md §9/§12): counters never touch
    any RNG, so enabling them cannot change a placement. The registry
    is ambient and domain-local: a fork-join runner ({!Parexec}) gives
    each task a fresh array via {!with_ambient} and folds the results
    back with {!merge_into} in {e task order} at the join point, so the
    merged totals are bit-identical for every [--jobs] value. Counters
    whose value would depend on the schedule (per-worker task or steal
    counts) live in [Parexec.pool_stats], not here. *)

type id = private int
(** Index of a registered counter. Only the values below exist. *)

val sa_moves : id
(** SA proposals evaluated (schedule moves, excluding calibration). *)

val sa_accepts : id
(** SA proposals accepted. *)

val sa_rejects : id
(** SA proposals rejected ([sa_moves - sa_accepts]). *)

val sa_plateaus : id
(** Temperature plateaus completed. *)

val sa_reheats : id
(** Additional annealing starts beyond the first for an instance —
    each restarts the schedule from a fresh calibrated temperature. *)

val cost_evals : id
(** Cost-function evaluations, including calibration samples and the
    initial-state evaluation. *)

val fp_instances : id
(** Floorplan instances annealed. *)

val n_ids : int

val id_name : id -> string

val all_ids : id list
(** All registered ids in registration order. *)

(** {1 Enable gate} *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Flip the global atomic gate read by {!add}. Flip it only between
    runs, not while a pool is executing tasks. *)

(** {1 Registries} *)

type t
(** A flat counter array. Not safe to share between domains; each
    domain (or task) writes its own and the owner merges. *)

val create : unit -> t

val global : t
(** The default ambient registry of every domain. *)

val ambient : unit -> t

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run [f] with a given ambient registry on the calling domain,
    restoring the previous one afterwards (even on exceptions). *)

val get : t -> id -> int

val bump : t -> id -> int -> unit
(** Unchecked increment on a registry the caller already holds — the
    hot-path primitive ([a.(i) <- a.(i) + n], no gate). *)

val add : id -> int -> unit
(** Gated shorthand: bump the ambient registry when {!enabled}, else do
    nothing (one branch). *)

val reset : t -> unit

val snapshot : t -> int array
(** Copy of the current counts, indexed by id. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] adds [src]'s counts into [dst]. Callers must
    merge in task order (the totals commute, but the convention keeps
    the contract uniform with {!Metrics.merge_into}). *)

val to_assoc : t -> (string * int) list
(** [(name, count)] for every registered id, in registration order. *)

val to_json : t -> Jsonx.t
