(** Monotonic timestamp source for spans.

    Timestamps are microseconds since an arbitrary origin and are
    guaranteed non-decreasing even if the underlying source steps
    backwards (wall-clock adjustments). The source is injectable so
    tests can drive a deterministic virtual clock. *)

val now_us : unit -> float
(** Current monotonic timestamp in microseconds. *)

val set_source : (unit -> float) -> unit
(** Replace the raw time source (a function returning seconds). Resets
    the monotonic clamp. *)

val use_wall : unit -> unit
(** Restore the default wall-clock source. *)
