(** Monotonic timestamp source for spans.

    Timestamps are microseconds since an arbitrary origin and are
    guaranteed non-decreasing even if the underlying source steps
    backwards (wall-clock adjustments). The source is injectable so
    tests can drive a deterministic virtual clock. *)

val now_us : unit -> float
(** Current monotonic timestamp in microseconds. Safe to call from any
    domain: the monotone clamp is shared atomically, so no domain ever
    observes the clock going backwards relative to another. *)

val now_s : unit -> float
(** [now_us () /. 1e6] — for code that keeps elapsed time in seconds.
    All timing paths (stage totals, budgets, speed measurements) should
    read this instead of [Unix.gettimeofday] so they cannot go
    backwards under wall-clock adjustment. *)

val set_source : (unit -> float) -> unit
(** Replace the raw time source (a function returning seconds). Resets
    the monotonic clamp. *)

val use_wall : unit -> unit
(** Restore the default wall-clock source. *)
