(** Metrics registry: named counters, gauges, float histograms and
    (x, y) series.

    Histograms keep a {e capped} raw-sample view plus a binned
    [Util.Histogram.t] view (bin = [floor (x / bin_width)]) that is
    cheap to merge and export. Series are append-only ordered point
    lists, used for convergence curves where sample order matters.

    {b Reservoir convention.} Raw-sample storage is bounded by
    {!reservoir_capacity}: the first [capacity] observations are kept
    exactly (and in observation order); past that, Algorithm R keeps a
    uniform subsample, replacing slots via a dedicated RNG seeded from
    the metric {e name}. Count, mean, min, max and the binned view
    remain exact at any count; percentiles ({!hist_percentile},
    [to_json]'s p50/p90/p99) are computed from the retained subsample
    and become estimates once a histogram exceeds the capacity. Because
    the replacement stream is seeded by name and consumed in
    observation order (and merges re-offer retained samples in task
    order), the retained set is a deterministic function of the
    observation sequence — never of wall-clock or scheduling.

    The gated shorthands ([counter], [gauge], [sample], [series]) write
    to the calling domain's {e ambient} registry — [global] unless
    overridden with [with_ambient] — and are no-ops until
    [set_enabled true] (an atomic flag readable from any domain), so
    instrumentation sprinkled through the libraries costs one boolean
    check when observability is off. Explicit registries ignore the
    flag.

    Domain-safety contract: a registry itself is not synchronized. A
    fork-join runner gives each task its own fresh ambient registry via
    [with_ambient] and folds them back with [merge_into] in task order
    at the join point, so enabling metrics never changes — and is never
    changed by — the parallel schedule. *)

type t

val reservoir_capacity : int
(** Retained raw samples per histogram (512). *)

val create : unit -> t

val global : t

val enabled : unit -> bool

val set_enabled : bool -> unit

val ambient : unit -> t
(** The registry the gated shorthands write to on the calling domain
    ([global] unless inside [with_ambient]). *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run [f] with [r] as the calling domain's ambient registry,
    restoring the previous one afterwards (also on exceptions). *)

val reset : t -> unit
(** Drop every metric from the registry. *)

(* ---- operations on an explicit registry --------------------------- *)

val incr_counter : t -> string -> int -> unit

val set_gauge : t -> string -> float -> unit

val observe : ?bin_width:float -> t -> string -> float -> unit
(** Record a histogram sample. [bin_width] (default 1.0) is fixed by
    the first observation of a name. *)

val push_series : t -> string -> float -> float -> unit
(** Append an (x, y) point to a named series. *)

(* ---- gated shorthands on the global registry ---------------------- *)

val counter : string -> int -> unit
val gauge : string -> float -> unit
val sample : ?bin_width:float -> string -> float -> unit
val series : string -> x:float -> y:float -> unit

(* ---- queries / export --------------------------------------------- *)

val names : t -> string list
(** Sorted names of every registered metric. *)

val counter_value : t -> string -> int option
val gauge_value : t -> string -> float option

val hist_samples : t -> string -> float list
(** Retained raw samples ([] when absent). Up to
    {!reservoir_capacity} observations this is exactly the observation
    sequence in order; beyond that it is the reservoir subsample in
    slot order. *)

val hist_bins : t -> string -> Util.Histogram.t option
val series_points : t -> string -> (float * float) list

val merge : t -> t -> t
(** Fresh registry combining both: counters add, gauges take the right
    value, histograms merge exactly (count/sum/min/max/bins) and
    re-offer the right side's retained samples to the left reservoir,
    series concatenate (left points first). On a kind clash the right
    side wins. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] folds [src] into [dst] in place, with the same
    combination rules as [merge] ([src] plays the right side). *)

val percentile_opt : float list -> p:float -> float option
(** Linear-interpolated percentile, [p] clamped to [0, 100].

    Boundary convention: the empty list has no percentiles ([None]); a
    single sample [x] is every percentile of its distribution
    ([Some x] for any [p] — the n = 1 instance of the interpolation
    formula, not a special case). *)

val percentile : float list -> p:float -> float
(** [percentile_opt] that raises [Invalid_argument] on an empty list;
    same single-sample convention. *)

val hist_percentile : t -> string -> p:float -> float option
(** Percentile of a named histogram's retained samples (exact below
    {!reservoir_capacity} observations, an estimate above); [None]
    when the name is absent, not a histogram, or the histogram is
    empty. *)

val to_json : t -> Jsonx.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...},
    "series": {...}}] with per-histogram count/mean/min/max (exact)
    and p50/p90/p99 (from the reservoir) plus the binned view. *)
