(** Trace lifecycle and exporters.

    [start]/[finish] wrap {!Span.start_recording} and
    {!Span.finish_recording}. A finished trace exports either as a
    Chrome-trace JSON array of complete events (openable in
    chrome://tracing or https://ui.perfetto.dev) or as an indented
    stage tree for terminals. *)

type t = Span.t list

val start : unit -> unit

val finish : unit -> t

val to_chrome_json : t -> Jsonx.t
(** JSON array of ["ph": "X"] complete events, one per span, with
    [name]/[ph]/[ts]/[dur]/[pid]/[tid] fields and attributes under
    [args]. Events appear in start order (parents before children). *)

val write_chrome_file : string -> t -> unit

val stage_totals : t -> (string * float * int) list
(** Wall-clock roll-up by span name over the whole tree:
    [(name, total_us, calls)], in first-appearance order. Nested spans
    of the same name each contribute, so a recursive stage's total can
    exceed its outermost duration. *)

val summary : t -> string
(** Human-readable tree: per-span duration, share of the parent's
    duration, and attributes. *)
