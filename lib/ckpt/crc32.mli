(** CRC-32 (IEEE) checksums for checkpoint envelopes. *)

val string : string -> int32
(** Checksum of a whole string. *)

val update : int32 -> string -> pos:int -> len:int -> int32
(** Incremental update: [update (string a) b ~pos:0 ~len] equals
    [string (a ^ b)] when [len = String.length b]. *)

val to_hex : int32 -> string
(** Fixed-width lowercase hex, 8 characters. *)

val of_hex : string -> int32 option
(** Inverse of {!to_hex}; [None] on anything but 8 hex digits. *)
