(* Crash-safe checkpoint envelope.

   On-disk layout (text header, arbitrary payload bytes):

     hidap-ckpt <version>\n
     crc32=<8 hex> len=<payload bytes>\n
     <payload>

   A torn write can truncate the payload (len mismatch), corrupt bytes
   (crc mismatch), or lose the file entirely; every case is a clean
   [Error], never a crash or a silently wrong state. Writes go through
   a temp file in the same directory, are fsynced, then renamed over
   the target, and the directory is fsynced so the rename itself
   survives power loss. *)

let magic = "hidap-ckpt"

let version = 1

let header payload =
  Printf.sprintf "%s %d\ncrc32=%s len=%d\n" magic version
    (Crc32.to_hex (Crc32.string payload))
    (String.length payload)

let fsync_dir dir =
  (* Best effort: some filesystems refuse fsync on a directory fd; the
     rename is still atomic, only its durability window widens. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd

let write path payload =
  Guard.Fault.hit "ckpt_write";
  let dir = Filename.dirname path in
  let tmp =
    Filename.concat dir
      (Printf.sprintf ".%s.tmp.%d" (Filename.basename path) (Unix.getpid ()))
  in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let oc = Unix.out_channel_of_descr fd in
      output_string oc (header payload);
      output_string oc payload;
      flush oc;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir dir

let read path =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* contents =
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | contents -> Ok contents
    | exception Sys_error msg -> Error msg
  in
  let* line1_end =
    match String.index_opt contents '\n' with
    | Some i -> Ok i
    | None -> Error "missing envelope header"
  in
  let* () =
    let line1 = String.sub contents 0 line1_end in
    match String.split_on_char ' ' line1 with
    | [ m; v ] when m = magic ->
      (match int_of_string_opt v with
      | Some v when v <= version -> Ok ()
      | Some v -> Error (Printf.sprintf "envelope version %d is newer than supported %d" v version)
      | None -> Error (Printf.sprintf "malformed envelope version %S" line1))
    | _ -> Error "not a hidap-ckpt envelope"
  in
  let* line2_end =
    match String.index_from_opt contents (line1_end + 1) '\n' with
    | Some i -> Ok i
    | None -> Error "truncated envelope header"
  in
  let line2 = String.sub contents (line1_end + 1) (line2_end - line1_end - 1) in
  let* crc, len =
    match String.split_on_char ' ' line2 with
    | [ c; l ]
      when String.length c > 6
           && String.sub c 0 6 = "crc32="
           && String.length l > 4
           && String.sub l 0 4 = "len=" -> (
      match
        ( Crc32.of_hex (String.sub c 6 (String.length c - 6)),
          int_of_string_opt (String.sub l 4 (String.length l - 4)) )
      with
      | Some crc, Some len when len >= 0 -> Ok (crc, len)
      | _ -> Error "malformed envelope checksum line")
    | _ -> Error "malformed envelope checksum line"
  in
  let payload_start = line2_end + 1 in
  let actual = String.length contents - payload_start in
  if actual <> len then
    Error (Printf.sprintf "truncated payload: %d bytes, envelope says %d" actual len)
  else
    let found = Crc32.update 0l contents ~pos:payload_start ~len in
    if found <> crc then
      Error
        (Printf.sprintf "checksum mismatch: crc32 %s, envelope says %s"
           (Crc32.to_hex found) (Crc32.to_hex crc))
    else Ok (String.sub contents payload_start len)
