(** Checkpointable flow state.

    A snapshot is the complete record of finished work in one
    [Hidap.place] invocation: the run fingerprint (inputs that must
    match for a resume to be meaningful), the per-instance floorplan
    results in completion order — each carrying the SA-derived block
    rectangles {e and} the RNG state after the instance, so a resumed
    run replays the identical pseudo-random stream — the flipping
    result, and the completed stage boundaries.

    All floats are serialized as the hex image of their IEEE-754 bits:
    a loaded snapshot is bit-identical to the saved one, which is what
    makes resume-after-kill produce byte-identical placements. *)

type fingerprint = {
  circuit : string;
  seed : int;
  lambda : float;
  sa_starts : int;
  cells : int;
  macro_count : int;
}
(** Identity of a run: a snapshot only resumes a run with an equal
    fingerprint (bit-equal [lambda]). *)

type instance_entry = {
  nh : int;  (** HT node id of the floorplan instance (unique per run) *)
  depth : int;
  n_blocks : int;
  rects : Geom.Rect.t array;  (** block rectangles chosen by the SA *)
  sa_moves : int;
  rng_after : int64;  (** RNG state after the instance completed *)
}

type flip_entry = {
  orientations : (int * Geom.Orientation.t) list;
  flip_gain : float;
}

type t = {
  fp : fingerprint;
  instances : instance_entry list;
  flip : flip_entry option;
  stages : string list;
}

val version : int
(** Payload schema version; bump on any incompatible layout change
    (see DESIGN.md section 11 for the bump rules). *)

val empty : fingerprint -> t

val equal : t -> t -> bool
(** Structural equality with bit-exact float comparison (NaN-safe). *)

val fingerprint_equal : fingerprint -> fingerprint -> bool

val to_payload : t -> string
(** Serialize for {!Envelope.write}. *)

val of_payload : string -> (t, string) result
(** Inverse of {!to_payload}; schema/version-checked. *)

val to_json : t -> Obs.Jsonx.t

val pp_fingerprint : Format.formatter -> fingerprint -> unit
