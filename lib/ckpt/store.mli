(** Checkpoint directory: numbered snapshots plus a manifest.

    A store owns one directory holding [snap-NNNNNN.ckpt] envelope
    files and a [manifest.json] (itself envelope-wrapped, so a torn
    manifest is detected, not trusted). Snapshots are written through
    {!Envelope.write}, so every file is atomic-or-rejected.

    Retention keeps every stage-boundary snapshot plus the last [keep]
    snapshots of any kind. Loading walks newest to oldest and falls
    back past torn or corrupted snapshots, recording each rollback in
    the {!Guard.Supervisor} degradation ledger. *)

type entry = { seq : int; file : string; stage : bool }

type t

val open_ : ?keep:int -> fresh:bool -> string -> (t, string) result
(** Open (creating if needed) a checkpoint directory. [fresh] starts a
    new snapshot sequence ignoring — but not deleting — existing
    snapshots; [fresh:false] adopts the manifest, or a directory rescan
    when the manifest itself is lost or torn. [keep] (default 4) is the
    retention window. *)

val dir : t -> string

val entries : t -> entry list
(** Oldest first. *)

val path_of : t -> entry -> string

val save : t -> stage:bool -> State.t -> entry
(** Write a snapshot, update the manifest, apply retention. Raises on
    I/O failure (callers degrade via {!Guard.Supervisor.protect}). *)

type loaded = {
  state : State.t;
  entry : entry;
  rejected : (entry * string) list;
}

val load_latest : t -> loaded option
(** Most recent snapshot that validates, with the newer rejected ones;
    [None] when the store holds no valid snapshot. Rollbacks are
    recorded in the degradation ledger of the active supervised run. *)

val read_entry : t -> entry -> (State.t, string) result
(** Validate and decode one snapshot. *)

val corrupt_latest : t -> unit
(** Deterministically corrupt the newest snapshot (flip one payload
    byte, truncate the last byte) — the [ckpt_load_corrupt] fault
    action, also used by the tests. *)

val gc : ?keep:int -> t -> string list
(** Re-apply retention (optionally under a new [keep]) and remove
    snapshot files no longer referenced by the manifest. Returns the
    removed file names, sorted. *)
