module Jsonx = Obs.Jsonx

let manifest_schema = "hidap-ckpt-manifest"

let manifest_version = 1

let manifest_file = "manifest.json"

type entry = {
  seq : int;
  file : string;  (** basename inside the store directory *)
  stage : bool;  (** stage-boundary snapshot (kept beyond the last-K window) *)
}

type t = {
  dir : string;
  keep : int;
  mutable next_seq : int;
  mutable entries : entry list;  (** oldest first *)
}

let dir t = t.dir

let entries t = t.entries

let path_of t e = Filename.concat t.dir e.file

let snap_name seq = Printf.sprintf "snap-%06d.ckpt" seq

let seq_of_name name =
  match String.length name = 16 && String.sub name 0 5 = "snap-" && Filename.check_suffix name ".ckpt" with
  | true -> int_of_string_opt (String.sub name 5 6)
  | false -> None

(* ---- manifest ------------------------------------------------------ *)

let manifest_json t =
  Jsonx.Obj
    [ ("schema", Jsonx.String manifest_schema);
      ("version", Jsonx.Int manifest_version);
      ("keep", Jsonx.Int t.keep);
      ("next_seq", Jsonx.Int t.next_seq);
      ( "entries",
        Jsonx.List
          (List.map
             (fun e ->
               Jsonx.Obj
                 [ ("seq", Jsonx.Int e.seq);
                   ("file", Jsonx.String e.file);
                   ("stage", Jsonx.Bool e.stage) ])
             t.entries) ) ]

let write_manifest t =
  Envelope.write (Filename.concat t.dir manifest_file)
    (Jsonx.to_string ~compact:true (manifest_json t) ^ "\n")

let entries_of_manifest j =
  match Option.bind (Jsonx.member "entries" j) Jsonx.to_list_opt with
  | None -> None
  | Some items ->
    let entry e =
      match
        ( Option.bind (Jsonx.member "seq" e) Jsonx.to_int_opt,
          Option.bind (Jsonx.member "file" e) Jsonx.to_string_opt,
          Jsonx.member "stage" e )
      with
      | Some seq, Some file, Some (Jsonx.Bool stage) -> Some { seq; file; stage }
      | _ -> None
    in
    let entries = List.filter_map entry items in
    if List.length entries = List.length items then Some entries else None

let read_manifest dir =
  match Envelope.read (Filename.concat dir manifest_file) with
  | Error msg -> Error msg
  | Ok payload ->
    (match Jsonx.parse payload with
    | Error msg -> Error msg
    | Ok j ->
      (match
         ( Option.bind (Jsonx.member "schema" j) Jsonx.to_string_opt,
           entries_of_manifest j,
           Option.bind (Jsonx.member "next_seq" j) Jsonx.to_int_opt )
       with
      | Some s, Some entries, Some next_seq when s = manifest_schema ->
        Ok (entries, next_seq)
      | _ -> Error "malformed manifest"))

(* Fallback when the manifest is lost or torn: the snapshots themselves
   are self-validating, so the directory listing is an authoritative —
   if unordered-by-kind — index. Rescued entries are marked as stage
   boundaries so retention never deletes evidence it cannot classify. *)
let rescan dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           Option.map (fun seq -> { seq; file = name; stage = true }) (seq_of_name name))
    |> List.sort (fun a b -> compare a.seq b.seq)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_ ?(keep = 4) ~fresh dir =
  match
    mkdir_p dir;
    if not (Sys.is_directory dir) then Error (dir ^ " is not a directory")
    else begin
      let listed, next_seq =
        match read_manifest dir with
        | Ok (entries, next_seq) -> (entries, next_seq)
        | Error _ ->
          let rescued = rescan dir in
          ( rescued,
            1 + List.fold_left (fun acc e -> max acc e.seq) 0 rescued )
      in
      if fresh then
        (* A fresh run ignores whatever a previous run left behind; the
           old files stay on disk (unlisted) until [gc] sweeps them, so
           an accidental restart without --resume is recoverable. *)
        Ok { dir; keep = max 1 keep; next_seq; entries = [] }
      else Ok { dir; keep = max 1 keep; next_seq; entries = listed }
    end
  with
  | r -> r
  | exception Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))
  | exception Sys_error msg -> Error msg

(* ---- retention ----------------------------------------------------- *)

(* Keep every stage-boundary snapshot plus the [keep] most recent
   snapshots of any kind; everything older is dropped. *)
let retained t =
  let n = List.length t.entries in
  List.filteri (fun i e -> e.stage || i >= n - t.keep) t.entries

let save t ~stage state =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let e = { seq; file = snap_name seq; stage } in
  Envelope.write (path_of t e) (State.to_payload state);
  t.entries <- t.entries @ [ e ];
  let kept = retained t in
  let dropped = List.filter (fun e -> not (List.memq e kept)) t.entries in
  t.entries <- kept;
  write_manifest t;
  List.iter (fun e -> try Sys.remove (path_of t e) with Sys_error _ -> ()) dropped;
  e

(* ---- loading with rollback ----------------------------------------- *)

type loaded = {
  state : State.t;
  entry : entry;
  rejected : (entry * string) list;  (** newer snapshots that failed validation *)
}

let read_entry t e =
  match Envelope.read (path_of t e) with
  | Error msg -> Error msg
  | Ok payload -> State.of_payload payload

(* Walk newest -> oldest; the first snapshot that validates wins. Every
   rejected (torn, corrupted, missing) snapshot on the way is a
   rollback: recorded in the supervisor's degradation ledger so the QoR
   record shows the run did not resume from where it thought it
   would. *)
let load_latest t =
  let rec go rejected = function
    | [] -> None
    | e :: older ->
      (match read_entry t e with
      | Ok state -> Some { state; entry = e; rejected = List.rev rejected }
      | Error msg ->
        Guard.Supervisor.record ~stage:"ckpt.load" ~reason:"rollback"
          ~detail:(Printf.sprintf "snapshot %s rejected: %s" e.file msg);
        go ((e, msg) :: rejected) older)
  in
  go [] (List.rev t.entries)

(* Deterministic torn-write simulation for the [ckpt_load_corrupt]
   fault site and the tests: flip one payload byte in the middle of the
   newest snapshot and truncate its final byte, covering both
   corruption modes the envelope must reject. *)
let corrupt_latest t =
  match List.rev t.entries with
  | [] -> ()
  | e :: _ ->
    let path = path_of t e in
    (match
       let ic = open_in_bin path in
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () -> really_input_string ic (in_channel_length ic))
     with
    | exception Sys_error _ -> ()
    | contents when String.length contents < 2 -> ()
    | contents ->
      let b = Bytes.of_string contents in
      let mid = Bytes.length b / 2 in
      Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
      let oc = open_out_bin path in
      output_bytes oc (Bytes.sub b 0 (Bytes.length b - 1));
      close_out oc)

(* ---- gc ------------------------------------------------------------ *)

(* Re-apply retention under [keep] and sweep snapshot files the
   manifest no longer references (left by a crash mid-save or by a
   fresh run over an old directory). *)
let gc ?keep t =
  let t = match keep with Some k -> { t with keep = max 1 k } | None -> t in
  let kept = retained t in
  let dropped = List.filter (fun e -> not (List.memq e kept)) t.entries in
  t.entries <- kept;
  write_manifest t;
  let listed = List.map (fun e -> e.file) t.entries in
  let unreferenced =
    match Sys.readdir t.dir with
    | exception Sys_error _ -> []
    | names ->
      Array.to_list names
      |> List.filter (fun n -> seq_of_name n <> None && not (List.mem n listed))
  in
  let removed =
    List.map (fun e -> e.file) dropped
    @ List.filter (fun _ -> true) unreferenced
  in
  List.iter
    (fun file -> try Sys.remove (Filename.concat t.dir file) with Sys_error _ -> ())
    removed;
  List.sort_uniq compare removed
