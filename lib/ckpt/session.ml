type t = {
  store : Store.t;
  every : int;
  mutable state : State.t;
  lookup : (int, State.instance_entry) Hashtbl.t;  (* nh -> resumed entry *)
  resumed_flip : State.flip_entry option;
  resumed_from : string option;
  mutable new_units : int;  (* completed units since the last snapshot *)
  mutable written : int;
  mutable reused : int;
  mutex : Mutex.t;
}

type summary = {
  resumed_from : string option;
  snapshots_written : int;
  instances_reused : int;
}

let resumed_from (t : t) = t.resumed_from

let state t = t.state

let summary (t : t) =
  { resumed_from = t.resumed_from;
    snapshots_written = t.written;
    instances_reused = t.reused }

let make ~store ~every ~state ~resumed_from =
  let lookup = Hashtbl.create 64 in
  List.iter (fun (e : State.instance_entry) -> Hashtbl.replace lookup e.State.nh e) state.State.instances;
  { store; every = max 1 every; state; lookup;
    resumed_flip = state.State.flip; resumed_from;
    new_units = 0; written = 0; reused = 0; mutex = Mutex.create () }

(* Resume loading honors the [ckpt_load_corrupt] injection site: the
   armed fault corrupts the newest snapshot on disk and retries, so the
   CRC-rejection and rollback paths are exercised end to end, exactly
   as a real torn write would drive them. *)
let load_for_resume store =
  Obs.Span.with_ ~name:"ckpt.load" (fun () ->
      let loaded =
        Guard.Supervisor.protect ~stage:"ckpt_load_corrupt"
          ~fallback:(fun _ ->
            Store.corrupt_latest store;
            Store.load_latest store)
          (fun () ->
            Guard.Fault.hit "ckpt_load_corrupt";
            Store.load_latest store)
      in
      (match loaded with
      | Some l ->
        Obs.Span.attr_int "seq" l.Store.entry.Store.seq;
        Obs.Span.attr_int "rejected" (List.length l.Store.rejected)
      | None -> ());
      loaded)

let start ?(keep = 4) ?(every = 1) ~dir ~resume fp =
  match Store.open_ ~keep ~fresh:(not resume) dir with
  | Error msg ->
    Error (Guard.Diag.error ~code:"ckpt-io" ~stage:"ckpt" (dir ^ ": " ^ msg))
  | Ok store ->
    if not resume then Ok (make ~store ~every ~state:(State.empty fp) ~resumed_from:None)
    else begin
      match load_for_resume store with
      | None ->
        (* Nothing (valid) to resume from: run from scratch in the same
           directory so retry loops are idempotent. *)
        Ok (make ~store ~every ~state:(State.empty fp) ~resumed_from:None)
      | Some { Store.state; entry; rejected = _ } ->
        if not (State.fingerprint_equal state.State.fp fp) then
          Error
            (Guard.Diag.error ~code:"ckpt-mismatch" ~stage:"ckpt"
               (Format.asprintf
                  "checkpoint %s was written by a different run (%a) than the one \
                   being resumed (%a)"
                  entry.Store.file State.pp_fingerprint state.State.fp
                  State.pp_fingerprint fp))
        else
          Ok (make ~store ~every ~state ~resumed_from:(Some entry.Store.file))
    end

(* Snapshot writes degrade, never kill: a full disk or an injected
   [ckpt_write] fault costs the checkpoint, not the placement. *)
let save_now t ~stage =
  Guard.Supervisor.protect ~stage:"ckpt_write"
    ~fallback:(fun _ -> ())
    (fun () ->
      Obs.Span.with_ ~name:"ckpt.save" (fun () ->
          let e = Store.save t.store ~stage t.state in
          t.written <- t.written + 1;
          Obs.Span.attr_int "seq" e.Store.seq;
          Obs.Span.attr_int "instances" (List.length t.state.State.instances);
          Obs.Stream.checkpoint ~seq:e.Store.seq ~file:e.Store.file));
  t.new_units <- 0

let lookup_instance t ~nh ~n_blocks =
  match Hashtbl.find_opt t.lookup nh with
  | Some e when e.State.n_blocks = n_blocks ->
    Mutex.lock t.mutex;
    t.reused <- t.reused + 1;
    Mutex.unlock t.mutex;
    Some e
  | Some _ | None -> None

let instance_done t ~nh ~depth ~n_blocks ~rects ~sa_moves ~rng_after =
  Mutex.lock t.mutex;
  let entry = { State.nh; depth; n_blocks; rects; sa_moves; rng_after } in
  t.state <- { t.state with State.instances = t.state.State.instances @ [ entry ] };
  Hashtbl.replace t.lookup nh entry;
  t.new_units <- t.new_units + 1;
  let due = t.new_units >= t.every in
  Mutex.unlock t.mutex;
  if due then save_now t ~stage:false

let lookup_flip t = t.resumed_flip

let flip_done t flip =
  Mutex.lock t.mutex;
  t.state <- { t.state with State.flip = Some flip };
  Mutex.unlock t.mutex

let stage_done t name =
  let fresh =
    Mutex.lock t.mutex;
    let fresh = not (List.mem name t.state.State.stages) in
    if fresh then t.state <- { t.state with State.stages = t.state.State.stages @ [ name ] };
    Mutex.unlock t.mutex;
    fresh
  in
  if fresh then save_now t ~stage:true
