module Jsonx = Obs.Jsonx
module Rect = Geom.Rect

let schema = "hidap-ckpt-state"

let version = 1

type fingerprint = {
  circuit : string;
  seed : int;
  lambda : float;
  sa_starts : int;
  cells : int;
  macro_count : int;
}

type instance_entry = {
  nh : int;
  depth : int;
  n_blocks : int;
  rects : Rect.t array;
  sa_moves : int;
  rng_after : int64;
}

type flip_entry = {
  orientations : (int * Geom.Orientation.t) list;
  flip_gain : float;
}

type t = {
  fp : fingerprint;
  instances : instance_entry list;  (** completion order *)
  flip : flip_entry option;
  stages : string list;  (** completed stage boundaries, in order *)
}

let empty fp = { fp; instances = []; flip = None; stages = [] }

(* ---- bit-exact floats ---------------------------------------------- *)

(* Resume must reproduce an uninterrupted run bit for bit, so floats are
   stored as the hex image of their IEEE-754 bits: decimal round-trips
   ("%.17g") are exact too, but bits are unambiguous, locale-proof, and
   make torn-state debugging greppable. *)
let float_json f = Jsonx.String (Printf.sprintf "%Lx" (Int64.bits_of_float f))

let float_of_json = function
  | Jsonx.String s ->
    (match Int64.of_string_opt ("0x" ^ s) with
    | Some bits -> Some (Int64.float_of_bits bits)
    | None -> None)
  | Jsonx.Int i -> Some (float_of_int i)
  | _ -> None

let float_equal a b = Int64.bits_of_float a = Int64.bits_of_float b

let rect_json (r : Rect.t) =
  Jsonx.List [ float_json r.Rect.x; float_json r.Rect.y; float_json r.Rect.w; float_json r.Rect.h ]

let rect_of_json = function
  | Jsonx.List [ x; y; w; h ] ->
    (match (float_of_json x, float_of_json y, float_of_json w, float_of_json h) with
    | Some x, Some y, Some w, Some h -> Some (Rect.make ~x ~y ~w ~h)
    | _ -> None)
  | _ -> None

let rect_equal a b =
  float_equal a.Rect.x b.Rect.x
  && float_equal a.Rect.y b.Rect.y
  && float_equal a.Rect.w b.Rect.w
  && float_equal a.Rect.h b.Rect.h

(* ---- equality ------------------------------------------------------ *)

let fingerprint_equal a b =
  a.circuit = b.circuit && a.seed = b.seed
  && float_equal a.lambda b.lambda
  && a.sa_starts = b.sa_starts && a.cells = b.cells && a.macro_count = b.macro_count

let instance_equal a b =
  a.nh = b.nh && a.depth = b.depth && a.n_blocks = b.n_blocks
  && Array.length a.rects = Array.length b.rects
  && Array.for_all2 rect_equal a.rects b.rects
  && a.sa_moves = b.sa_moves && a.rng_after = b.rng_after

let flip_equal a b =
  a.orientations = b.orientations && float_equal a.flip_gain b.flip_gain

let equal a b =
  fingerprint_equal a.fp b.fp
  && List.length a.instances = List.length b.instances
  && List.for_all2 instance_equal a.instances b.instances
  && (match (a.flip, b.flip) with
     | None, None -> true
     | Some x, Some y -> flip_equal x y
     | _ -> false)
  && a.stages = b.stages

(* ---- JSON codec ---------------------------------------------------- *)

let fingerprint_json fp =
  Jsonx.Obj
    [ ("circuit", Jsonx.String fp.circuit);
      ("seed", Jsonx.Int fp.seed);
      ("lambda", float_json fp.lambda);
      ("sa_starts", Jsonx.Int fp.sa_starts);
      ("cells", Jsonx.Int fp.cells);
      ("macro_count", Jsonx.Int fp.macro_count) ]

let instance_json e =
  Jsonx.Obj
    [ ("nh", Jsonx.Int e.nh);
      ("depth", Jsonx.Int e.depth);
      ("n_blocks", Jsonx.Int e.n_blocks);
      ("rects", Jsonx.List (Array.to_list (Array.map rect_json e.rects)));
      ("sa_moves", Jsonx.Int e.sa_moves);
      ("rng_after", Jsonx.String (Printf.sprintf "%Lx" e.rng_after)) ]

let flip_json f =
  Jsonx.Obj
    [ ( "orientations",
        Jsonx.List
          (List.map
             (fun (fid, o) ->
               Jsonx.List [ Jsonx.Int fid; Jsonx.String (Geom.Orientation.to_string o) ])
             f.orientations) );
      ("gain", float_json f.flip_gain) ]

let to_json t =
  Jsonx.Obj
    [ ("schema", Jsonx.String schema);
      ("version", Jsonx.Int version);
      ("fingerprint", fingerprint_json t.fp);
      ("stages", Jsonx.List (List.map (fun s -> Jsonx.String s) t.stages));
      ("instances", Jsonx.List (List.map instance_json t.instances));
      ("flip", (match t.flip with Some f -> flip_json f | None -> Jsonx.Null)) ]

let to_payload t = Jsonx.to_string ~compact:true (to_json t) ^ "\n"

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field j name of_j =
  match Option.bind (Jsonx.member name j) of_j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let fingerprint_of_json j =
  let* circuit = field j "circuit" Jsonx.to_string_opt in
  let* seed = field j "seed" Jsonx.to_int_opt in
  let* lambda = field j "lambda" float_of_json in
  let* sa_starts = field j "sa_starts" Jsonx.to_int_opt in
  let* cells = field j "cells" Jsonx.to_int_opt in
  let* macro_count = field j "macro_count" Jsonx.to_int_opt in
  Ok { circuit; seed; lambda; sa_starts; cells; macro_count }

let instance_of_json j =
  let* nh = field j "nh" Jsonx.to_int_opt in
  let* depth = field j "depth" Jsonx.to_int_opt in
  let* n_blocks = field j "n_blocks" Jsonx.to_int_opt in
  let* rect_items = field j "rects" Jsonx.to_list_opt in
  let rects = List.filter_map rect_of_json rect_items in
  if List.length rects <> List.length rect_items then
    Error "malformed rectangle in instance entry"
  else
    let* sa_moves = field j "sa_moves" Jsonx.to_int_opt in
    let* rng_after =
      field j "rng_after" (fun v ->
          Option.bind (Jsonx.to_string_opt v) (fun s -> Int64.of_string_opt ("0x" ^ s)))
    in
    Ok { nh; depth; n_blocks; rects = Array.of_list rects; sa_moves; rng_after }

let flip_of_json j =
  let* items = field j "orientations" Jsonx.to_list_opt in
  let orient = function
    | Jsonx.List [ fid; o ] ->
      (match (Jsonx.to_int_opt fid, Option.bind (Jsonx.to_string_opt o) Geom.Orientation.of_string) with
      | Some fid, Some o -> Some (fid, o)
      | _ -> None)
    | _ -> None
  in
  let orientations = List.filter_map orient items in
  if List.length orientations <> List.length items then
    Error "malformed orientation in flip entry"
  else
    let* flip_gain = field j "gain" float_of_json in
    Ok { orientations; flip_gain }

let of_json j =
  let* s = field j "schema" Jsonx.to_string_opt in
  if s <> schema then Error (Printf.sprintf "not a %s payload (schema %S)" schema s)
  else
    let* v = field j "version" Jsonx.to_int_opt in
    if v > version then
      Error (Printf.sprintf "state version %d is newer than supported %d" v version)
    else
      let* fpj = field j "fingerprint" (fun x -> Some x) in
      let* fp = fingerprint_of_json fpj in
      let* stage_items = field j "stages" Jsonx.to_list_opt in
      let stages = List.filter_map Jsonx.to_string_opt stage_items in
      let* inst_items = field j "instances" Jsonx.to_list_opt in
      let* instances =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* e = instance_of_json item in
            Ok (e :: acc))
          (Ok []) inst_items
      in
      let* flip =
        match Jsonx.member "flip" j with
        | None | Some Jsonx.Null -> Ok None
        | Some f ->
          let* f = flip_of_json f in
          Ok (Some f)
      in
      Ok { fp; instances = List.rev instances; flip; stages }

let of_payload payload =
  match Jsonx.parse payload with
  | Error msg -> Error msg
  | Ok j -> of_json j

let pp_fingerprint ppf fp =
  Format.fprintf ppf "circuit %s, seed %d, lambda %g, sa_starts %d, %d cells, %d macros"
    fp.circuit fp.seed fp.lambda fp.sa_starts fp.cells fp.macro_count
