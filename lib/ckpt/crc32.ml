(* CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), table-driven.
   Kept dependency-free: checkpoint envelopes must be verifiable without
   anything beyond the stdlib. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s ~pos ~len =
  let table = Lazy.force table in
  let c = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code s.[i]))) 0xffl) in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.lognot !c

let string s = update 0l s ~pos:0 ~len:(String.length s)

let to_hex crc = Printf.sprintf "%08lx" crc

let of_hex s =
  if String.length s <> 8 then None
  else
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v when Int64.unsigned_compare v 0x1_0000_0000L < 0 -> Some (Int64.to_int32 v)
    | Some _ | None -> None
