(** Crash-safe, CRC-validated file envelope for checkpoint payloads.

    Files carry a versioned text header ([hidap-ckpt N], then the
    payload CRC-32 and byte length) followed by the raw payload. {!write}
    is atomic with respect to crashes: temp file in the same directory,
    fsync, rename over the target, directory fsync. {!read} rejects a
    torn or corrupted file (bad magic, newer version, length mismatch,
    checksum mismatch) with a descriptive [Error] instead of returning
    a partial state. *)

val version : int
(** Current envelope format version. Readers accept any version up to
    this; a newer on-disk version is rejected (forward compatibility is
    a rollback concern, not a parsing one). *)

val write : string -> string -> unit
(** [write path payload] atomically replaces [path]. Raises
    [Unix.Unix_error] / [Sys_error] on I/O failure and honors the
    [ckpt_write] fault-injection site. *)

val read : string -> (string, string) result
(** Validated payload of an envelope file. *)
