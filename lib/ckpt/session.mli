(** One run's checkpointing session, threaded through the flow.

    A session owns a {!Store.t} plus the cumulative {!State.t} of the
    run so far. The flow reports completed work ({!instance_done},
    {!flip_done}, {!stage_done}); the session appends it to the state
    and snapshots the whole state every [every] completed units, and
    unconditionally at stage boundaries. On resume, the flow asks
    before each unit of work ({!lookup_instance}, {!lookup_flip})
    whether a finished result is already on record; a hit skips the
    computation and — for floorplan instances — restores the RNG to the
    recorded post-instance state, which is what keeps a resumed run
    bit-identical to an uninterrupted one at any [--jobs] count.

    Snapshot writes are supervised under the [ckpt_write] stage: an I/O
    failure (or injected fault) degrades to "no checkpoint written" and
    is recorded in the ledger, never killing the run. Resume honors the
    [ckpt_load_corrupt] site by corrupting the newest snapshot and
    re-loading, driving the CRC-rejection rollback path. *)

type t

type summary = {
  resumed_from : string option;  (** snapshot file resumed from *)
  snapshots_written : int;
  instances_reused : int;
}

val start :
  ?keep:int ->
  ?every:int ->
  dir:string ->
  resume:bool ->
  State.fingerprint ->
  (t, Guard.Diag.t) result
(** Open [dir] and begin a session. With [resume:false] a new snapshot
    sequence starts (existing snapshots are ignored until [gc]). With
    [resume:true] the newest valid snapshot is adopted when its
    fingerprint matches ([ckpt-mismatch] error otherwise); an empty or
    wholly invalid store resumes from scratch. [every] (default 1) is
    the number of completed floorplan instances between periodic
    snapshots; [keep] (default 4) the store retention window. *)

val lookup_instance : t -> nh:int -> n_blocks:int -> State.instance_entry option

val instance_done :
  t ->
  nh:int ->
  depth:int ->
  n_blocks:int ->
  rects:Geom.Rect.t array ->
  sa_moves:int ->
  rng_after:int64 ->
  unit

val lookup_flip : t -> State.flip_entry option

val flip_done : t -> State.flip_entry -> unit

val stage_done : t -> string -> unit
(** Record a completed stage boundary and write a stage snapshot.
    Idempotent per stage name (resumed stages do not re-snapshot). *)

val save_now : t -> stage:bool -> unit
(** Force a snapshot of the current state. *)

val summary : t -> summary

val resumed_from : t -> string option

val state : t -> State.t
(** The cumulative state (for tests and [hidap ckpt inspect]). *)
