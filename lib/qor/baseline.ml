module Jsonx = Obs.Jsonx

let schema = "hidap-qor-baselines"

let version = 1

(* Gated metrics: name, accessor, whether larger is better, and the
   absolute floor used as the denominator when the baseline is near
   zero (WNS/TNS sit at exactly 0 on relaxed circuits). Runtime is
   deliberately not gated — it is machine-dependent noise. *)
let metrics =
  [ ("wl_um", (fun (q : Record.qmetrics) -> q.Record.wl_um), false, 1.0);
    ("grc_pct", (fun q -> q.Record.grc_pct), false, 0.1);
    ("wns_pct", (fun q -> q.Record.wns_pct), true, 0.1);
    ("tns", (fun q -> q.Record.tns), true, 1.0);
    ("dataflow_cost", (fun q -> q.Record.dataflow_cost), false, 1.0) ]

let default_tolerances =
  [ ("wl_um", 0.02); ("grc_pct", 0.10); ("wns_pct", 0.10); ("tns", 0.10);
    ("dataflow_cost", 0.05) ]

type entry = {
  circuit : string;
  flow : string;
  qm : Record.qmetrics;
}

type t = {
  tolerances : (string * float) list;
  entries : entry list;
}

type verdict = Improved | Unchanged | Regressed

let verdict_name = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "regressed"

type metric_delta = {
  metric : string;
  baseline : float;
  current : float;
  rel_delta : float;  (** signed badness: > 0 is worse than baseline *)
  tolerance : float;
  metric_verdict : verdict;
}

type comparison = {
  c_circuit : string;
  c_flow : string;
  deltas : metric_delta list;
  run_verdict : verdict;
  missing_baseline : bool;
}

let tolerance_of t name =
  match List.assoc_opt name t.tolerances with
  | Some tol -> tol
  | None -> (
    match List.assoc_opt name default_tolerances with Some tol -> tol | None -> 0.05)

let find t ~circuit ~flow =
  List.find_opt (fun e -> e.circuit = circuit && e.flow = flow) t.entries

let delta_of ~tolerance ~higher_better ~floor ~baseline ~current =
  let scale = Float.max (Float.abs baseline) floor in
  let raw = (current -. baseline) /. scale in
  let rel_delta = if higher_better then -.raw else raw in
  let metric_verdict =
    if rel_delta > tolerance then Regressed
    else if rel_delta < -.tolerance then Improved
    else Unchanged
  in
  { metric = ""; baseline; current; rel_delta; tolerance; metric_verdict }

let combine verdicts =
  if List.mem Regressed verdicts then Regressed
  else if List.mem Improved verdicts then Improved
  else Unchanged

let compare_record t (r : Record.t) =
  match find t ~circuit:r.Record.circuit ~flow:r.Record.flow with
  | None ->
    { c_circuit = r.Record.circuit;
      c_flow = r.Record.flow;
      deltas = [];
      run_verdict = Unchanged;
      missing_baseline = true }
  | Some base ->
    let deltas =
      List.map
        (fun (name, get, higher_better, floor) ->
          let d =
            delta_of ~tolerance:(tolerance_of t name) ~higher_better ~floor
              ~baseline:(get base.qm) ~current:(get r.Record.qm)
          in
          { d with metric = name })
        metrics
    in
    { c_circuit = r.Record.circuit;
      c_flow = r.Record.flow;
      deltas;
      run_verdict = combine (List.map (fun d -> d.metric_verdict) deltas);
      missing_baseline = false }

let compare_all t records = List.map (compare_record t) records

let overall comparisons = combine (List.map (fun c -> c.run_verdict) comparisons)

let of_records ?(tolerances = default_tolerances) records =
  { tolerances;
    entries =
      List.map
        (fun (r : Record.t) ->
          { circuit = r.Record.circuit; flow = r.Record.flow; qm = r.Record.qm })
        records }

(* ---- JSON ---------------------------------------------------------- *)

let to_json t =
  Jsonx.Obj
    [ ("schema", Jsonx.String schema);
      ("version", Jsonx.Int version);
      ( "tolerances",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) t.tolerances) );
      ( "entries",
        Jsonx.List
          (List.map
             (fun e ->
               Jsonx.Obj
                 [ ("circuit", Jsonx.String e.circuit);
                   ("flow", Jsonx.String e.flow);
                   ( "metrics",
                     Jsonx.Obj
                       (List.map
                          (fun (name, get, _, _) -> (name, Jsonx.Float (get e.qm)))
                          metrics) ) ])
             t.entries) ) ]

let of_json j =
  match Jsonx.member "schema" j with
  | Some (Jsonx.String s) when s = schema ->
    let tolerances =
      match Jsonx.member "tolerances" j with
      | Some (Jsonx.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun f -> (k, f)) (Jsonx.to_float_opt v))
          fields
      | _ -> default_tolerances
    in
    let entries =
      match Option.bind (Jsonx.member "entries" j) Jsonx.to_list_opt with
      | None -> []
      | Some items ->
        List.filter_map
          (fun e ->
            match
              ( Option.bind (Jsonx.member "circuit" e) Jsonx.to_string_opt,
                Option.bind (Jsonx.member "flow" e) Jsonx.to_string_opt,
                Jsonx.member "metrics" e )
            with
            | Some circuit, Some flow, Some mj ->
              let metric name =
                Option.value ~default:0.0
                  (Option.bind (Jsonx.member name mj) Jsonx.to_float_opt)
              in
              Some
                { circuit;
                  flow;
                  qm =
                    { Record.wl_um = metric "wl_um";
                      grc_pct = metric "grc_pct";
                      wns_pct = metric "wns_pct";
                      tns = metric "tns";
                      runtime_s = 0.0;
                      dataflow_cost = metric "dataflow_cost" } }
            | _ -> None)
          items
    in
    Ok { tolerances; entries }
  | _ -> Error "not a hidap-qor-baselines document"

let write path t = Jsonx.write_file path (to_json t)

let load path =
  match Jsonx.parse_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok j ->
    (match of_json j with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok _ as ok -> ok)

(* ---- rendering ------------------------------------------------------ *)

let render comparisons =
  let buf = Buffer.create 512 in
  List.iter
    (fun c ->
      if c.missing_baseline then
        Buffer.add_string buf
          (Printf.sprintf "%-8s %-8s NO BASELINE (run --update-baselines to add)\n"
             c.c_circuit c.c_flow)
      else begin
        Buffer.add_string buf
          (Printf.sprintf "%-8s %-8s %s\n" c.c_circuit c.c_flow
             (String.uppercase_ascii (verdict_name c.run_verdict)));
        List.iter
          (fun d ->
            if d.metric_verdict <> Unchanged then
              Buffer.add_string buf
                (Printf.sprintf "    %-14s %12.4f -> %-12.4f %+.2f%% (tol %.1f%%) %s\n"
                   d.metric d.baseline d.current (100.0 *. d.rel_delta)
                   (100.0 *. d.tolerance)
                   (verdict_name d.metric_verdict)))
          c.deltas
      end)
    comparisons;
  Buffer.add_string buf
    (Printf.sprintf "overall: %s\n"
       (String.uppercase_ascii (verdict_name (overall comparisons))));
  Buffer.contents buf
