(** Self-contained HTML run reports.

    [render] turns ledger records into a single HTML document with no
    external assets: metric tiles, the QoR-vs-baseline delta table
    (when a baselines document is supplied), per-recursion-level
    floorplan SVG snapshots re-rendered from the record's geometry, an
    SA convergence sparkline, stage wall-clock bars and GC statistics.
    One report per ledger; everything is inlined so the file can be
    archived or attached to CI artifacts as-is. *)

val contribution_matrix :
  Record.cost_breakdown -> string array * float array array
(** Per-pair wirelength shares folded into a symmetric block-by-block
    matrix [(labels, values)] for {!Viz.Svg.contribution_heatmap}.
    Endpoints that are not top-level blocks (fixed siblings, port
    groups) aggregate under one trailing ["fixed"] row/column. *)

val render : ?baseline:Baseline.t -> title:string -> Record.t list -> string

val write_file : string -> string -> unit
