module Jsonx = Obs.Jsonx

let schema = "hidap-speed"

let version = 1

type entry = {
  circuit : string;
  wall_s : float;
  sa_moves : int;
  moves_per_s : float;
  peak_rss_kb : int;
  major_words : float;
}

type t = { entries : entry list }

let entry ?(peak_rss_kb = 0) ?(major_words = 0.0) ~circuit ~wall_s ~sa_moves () =
  { circuit;
    wall_s;
    sa_moves;
    moves_per_s = (if wall_s > 0.0 then float_of_int sa_moves /. wall_s else 0.0);
    peak_rss_kb;
    major_words }

let find t circuit = List.find_opt (fun e -> e.circuit = circuit) t.entries

(* ---- JSON ---------------------------------------------------------- *)

let entry_json e =
  Jsonx.Obj
    [ ("circuit", Jsonx.String e.circuit);
      ("wall_s", Jsonx.Float e.wall_s);
      ("sa_moves", Jsonx.Int e.sa_moves);
      ("moves_per_s", Jsonx.Float e.moves_per_s);
      ("peak_rss_kb", Jsonx.Int e.peak_rss_kb);
      ("major_words", Jsonx.Float e.major_words) ]

let to_json t =
  Jsonx.Obj
    [ ("schema", Jsonx.String schema);
      ("version", Jsonx.Int version);
      ("entries", Jsonx.List (List.map entry_json t.entries)) ]

let entry_of_json e =
  match
    ( Option.bind (Jsonx.member "circuit" e) Jsonx.to_string_opt,
      Option.bind (Jsonx.member "wall_s" e) Jsonx.to_float_opt,
      Option.bind (Jsonx.member "sa_moves" e) Jsonx.to_int_opt )
  with
  | Some circuit, Some wall_s, Some sa_moves ->
    Some
      { circuit;
        wall_s;
        sa_moves;
        moves_per_s =
          Option.value
            ~default:(if wall_s > 0.0 then float_of_int sa_moves /. wall_s else 0.0)
            (Option.bind (Jsonx.member "moves_per_s" e) Jsonx.to_float_opt);
        (* both absent from pre-memory-column documents: 0 = unmeasured *)
        peak_rss_kb =
          Option.value ~default:0
            (Option.bind (Jsonx.member "peak_rss_kb" e) Jsonx.to_int_opt);
        major_words =
          Option.value ~default:0.0
            (Option.bind (Jsonx.member "major_words" e) Jsonx.to_float_opt) }
  | _ -> None

let of_json j =
  match Jsonx.member "schema" j with
  | Some (Jsonx.String s) when s = schema ->
    let entries =
      match Option.bind (Jsonx.member "entries" j) Jsonx.to_list_opt with
      | None -> []
      | Some items -> List.filter_map entry_of_json items
    in
    Ok { entries }
  | _ -> Error "not a hidap-speed document"

let write path t = Jsonx.write_file path (to_json t)

let load path =
  match Jsonx.parse_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok j ->
    (match of_json j with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok _ as ok -> ok)

(* ---- report-only comparison ---------------------------------------- *)

type delta = {
  d_circuit : string;
  base : entry option;  (** [None] when the baseline lacks this circuit *)
  cur : entry;
}

let compare_to ~baseline current =
  List.map (fun cur -> { d_circuit = cur.circuit; base = find baseline cur.circuit; cur })
    current.entries

(* Wall-clock is machine-dependent, so the comparison is informational
   only — it never produces a verdict and must never gate a run. *)
let rss_mb kb = if kb > 0 then Printf.sprintf "%.1f" (float_of_int kb /. 1024.0) else "-"

let render deltas =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-10s %12s %12s %10s %14s %14s %10s %10s %10s\n" "circuit"
       "base wall_s" "cur wall_s" "Δ wall" "base moves/s" "cur moves/s" "Δ mv/s"
       "base rssMB" "cur rssMB");
  List.iter
    (fun d ->
      match d.base with
      | None ->
        Buffer.add_string buf
          (Printf.sprintf "%-10s %12s %12.3f %10s %14s %14.0f %10s %10s %10s\n"
             d.d_circuit "-" d.cur.wall_s "-" "-" d.cur.moves_per_s "(no baseline)" "-"
             (rss_mb d.cur.peak_rss_kb))
      | Some b ->
        let pct cur base =
          if base > 0.0 then Printf.sprintf "%+.1f%%" (100.0 *. ((cur /. base) -. 1.0))
          else "-"
        in
        Buffer.add_string buf
          (Printf.sprintf "%-10s %12.3f %12.3f %10s %14.0f %14.0f %10s %10s %10s\n"
             d.d_circuit b.wall_s d.cur.wall_s
             (pct d.cur.wall_s b.wall_s)
             b.moves_per_s d.cur.moves_per_s
             (pct d.cur.moves_per_s b.moves_per_s)
             (rss_mb b.peak_rss_kb) (rss_mb d.cur.peak_rss_kb)))
    deltas;
  Buffer.add_string buf "(speed comparison is report-only: wall-clock is machine-dependent)\n";
  Buffer.contents buf
