module Rect = Geom.Rect

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let css =
  {|body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif; margin: 2em auto;
        max-width: 72em; color: #1a1a2e; background: #fdfdfc; }
h1 { font-size: 1.5em; border-bottom: 2px solid #5b7aa9; padding-bottom: 0.3em; }
h2 { font-size: 1.2em; margin-top: 2em; }
h3 { font-size: 1em; color: #444; }
.meta { color: #666; font-size: 0.9em; }
.tiles { display: flex; flex-wrap: wrap; gap: 0.8em; margin: 1em 0; }
.tile { border: 1px solid #d8d8e0; border-radius: 6px; padding: 0.6em 1em; min-width: 8em;
        background: #fff; }
.tile .v { font-size: 1.3em; font-weight: 600; }
.tile .k { font-size: 0.75em; color: #777; text-transform: uppercase; }
table { border-collapse: collapse; margin: 0.8em 0; font-size: 0.9em; }
th, td { border: 1px solid #d8d8e0; padding: 0.3em 0.7em; text-align: right; }
th { background: #eef1f6; }
td.name, th.name { text-align: left; }
.improved { color: #1d7a36; font-weight: 600; }
.regressed { color: #b3261e; font-weight: 600; }
.unchanged { color: #666; }
.bar { height: 0.9em; background: #5b7aa9; display: inline-block; }
.barrow td { border: none; padding: 0.15em 0.7em; }
.levels { display: flex; flex-wrap: wrap; gap: 1em; }
.levels figure { margin: 0; }
.levels figcaption { font-size: 0.8em; color: #666; text-align: center; }
.spark { vertical-align: middle; }
footer { margin-top: 3em; color: #999; font-size: 0.8em; }|}

let fmt_f digits v = Printf.sprintf "%.*f" digits v

let tile buf ~label ~value =
  Buffer.add_string buf
    (Printf.sprintf "<div class=\"tile\"><div class=\"v\">%s</div><div class=\"k\">%s</div></div>\n"
       (escape value) (escape label))

let sparkline ?(w = 220) ?(h = 48) pts =
  match pts with
  | [] | [ _ ] -> "<span class=\"meta\">(no convergence series)</span>"
  | pts ->
    let xs = List.map fst pts and ys = List.map snd pts in
    let xmin = List.fold_left min infinity xs and xmax = List.fold_left max neg_infinity xs in
    let ymin = List.fold_left min infinity ys and ymax = List.fold_left max neg_infinity ys in
    let xr = if xmax -. xmin > 0.0 then xmax -. xmin else 1.0 in
    let yr = if ymax -. ymin > 0.0 then ymax -. ymin else 1.0 in
    let fw = float_of_int (w - 4) and fh = float_of_int (h - 4) in
    let coords =
      List.map
        (fun (x, y) ->
          Printf.sprintf "%.1f,%.1f"
            (2.0 +. ((x -. xmin) /. xr *. fw))
            (2.0 +. ((ymax -. y) /. yr *. fh)))
        pts
    in
    Printf.sprintf
      "<svg class=\"spark\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\
       <rect width=\"%d\" height=\"%d\" fill=\"#f4f6fa\"/>\
       <polyline points=\"%s\" fill=\"none\" stroke=\"#5b7aa9\" stroke-width=\"1.5\"/></svg>"
      w h w h w h
      (String.concat " " coords)

let stage_bars buf stages =
  match stages with
  | [] -> Buffer.add_string buf "<p class=\"meta\">(run was not traced)</p>\n"
  | stages ->
    let sorted =
      List.sort
        (fun (a : Record.stage) b -> compare b.Record.total_us a.Record.total_us)
        stages
    in
    let vmax =
      match sorted with s :: _ -> Float.max s.Record.total_us 1e-9 | [] -> 1.0
    in
    Buffer.add_string buf "<table>\n";
    List.iteri
      (fun i (s : Record.stage) ->
        if i < 16 then
          Buffer.add_string buf
            (Printf.sprintf
               "<tr class=\"barrow\"><td class=\"name\">%s</td><td>%s ms</td>\
                <td>&times;%d</td><td class=\"name\" style=\"width:22em\">\
                <span class=\"bar\" style=\"width:%.1f%%\"></span></td></tr>\n"
               (escape s.Record.stage_name)
               (fmt_f 1 (s.Record.total_us /. 1e3))
               s.Record.calls
               (100.0 *. s.Record.total_us /. vmax)))
      sorted;
    Buffer.add_string buf "</table>\n"

let short_name path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let floorplans buf (r : Record.t) =
  let levels =
    List.map
      (fun (l : Record.level) ->
        { Hidap.Floorplan.depth = l.Record.depth;
          ht_id = l.Record.ht_id;
          rect = l.Record.level_rect;
          macro_count = l.Record.level_macros })
      r.Record.levels
  in
  let macros =
    List.map
      (fun (m : Record.macro) -> (short_name m.Record.macro_name, m.Record.macro_rect))
      r.Record.macros
  in
  let snapshots =
    if levels = [] && macros = [] then []
    else if levels = [] then
      (* eval-path record: only the final macro placement is known *)
      Viz.Svg.floorplan_levels ~die:r.Record.die ~levels:[] ~macros ()
    else Viz.Svg.floorplan_levels ~die:r.Record.die ~levels ~macros ()
  in
  match snapshots with
  | [] -> Buffer.add_string buf "<p class=\"meta\">(no geometry recorded)</p>\n"
  | snapshots ->
    Buffer.add_string buf "<div class=\"levels\">\n";
    let last = List.length snapshots - 1 in
    List.iteri
      (fun i (depth, svg) ->
        let caption =
          if i = last && r.Record.macros <> [] then "final macro placement"
          else Printf.sprintf "recursion level %d" depth
        in
        Buffer.add_string buf
          (Printf.sprintf "<figure>%s<figcaption>%s</figcaption></figure>\n" svg caption))
      snapshots;
    Buffer.add_string buf "</div>\n"

let verdict_cell (v : Baseline.verdict) =
  let name = Baseline.verdict_name v in
  Printf.sprintf "<td class=\"%s\">%s</td>" name name

let delta_table buf (c : Baseline.comparison) =
  if c.Baseline.missing_baseline then
    Buffer.add_string buf
      "<p class=\"meta\">no committed baseline for this circuit/flow</p>\n"
  else begin
    Buffer.add_string buf
      "<table><tr><th class=\"name\">metric</th><th>baseline</th><th>current</th>\
       <th>&Delta; rel</th><th>tolerance</th><th>verdict</th></tr>\n";
    List.iter
      (fun (d : Baseline.metric_delta) ->
        Buffer.add_string buf
          (Printf.sprintf
             "<tr><td class=\"name\">%s</td><td>%s</td><td>%s</td><td>%+.2f%%</td>\
              <td>%.1f%%</td>%s</tr>\n"
             (escape d.Baseline.metric)
             (fmt_f 4 d.Baseline.baseline)
             (fmt_f 4 d.Baseline.current)
             (100.0 *. d.Baseline.rel_delta)
             (100.0 *. d.Baseline.tolerance)
             (verdict_cell d.Baseline.metric_verdict)))
      c.Baseline.deltas;
    Buffer.add_string buf "</table>\n"
  end

let gc_table buf = function
  | None -> ()
  | Some (g : Obs.Gcstats.snapshot) ->
    Buffer.add_string buf "<h3>Runtime (OCaml GC)</h3>\n<table>\n";
    Buffer.add_string buf
      (Printf.sprintf
         "<tr><th class=\"name\">allocated words</th><th>minor collections</th>\
          <th>major collections</th><th>heap words</th></tr>\n\
          <tr><td>%.3e</td><td>%d</td><td>%d</td><td>%d</td></tr>\n"
         (Obs.Gcstats.allocated_words g)
         g.Obs.Gcstats.minor_collections g.Obs.Gcstats.major_collections
         g.Obs.Gcstats.heap_words);
    Buffer.add_string buf "</table>\n"

(* ---- perf panel: pool utilization + flamegraph -------------------- *)

(* Collapsed-stack lines folded into a frame tree. Children keep first-
   appearance order, which is deterministic because the profile list is
   sorted by stack string. *)
type frame = {
  fr_name : string;
  mutable fr_total : int;
  mutable fr_children : frame list;  (* reversed during build *)
}

let frame_tree profile =
  let root = { fr_name = ""; fr_total = 0; fr_children = [] } in
  List.iter
    (fun (stack, n) ->
      root.fr_total <- root.fr_total + n;
      let frames = String.split_on_char ';' stack in
      let node = ref root in
      List.iter
        (fun name ->
          let child =
            match List.find_opt (fun c -> c.fr_name = name) !node.fr_children with
            | Some c -> c
            | None ->
              let c = { fr_name = name; fr_total = 0; fr_children = [] } in
              !node.fr_children <- !node.fr_children @ [ c ];
              c
          in
          child.fr_total <- child.fr_total + n;
          node := child)
        frames)
    profile;
  root

let flamegraph_svg profile =
  let root = frame_tree profile in
  if root.fr_total = 0 then "<p class=\"meta\">(no profile samples)</p>"
  else begin
    let width = 700.0 and row_h = 17 in
    let rec depth_of f =
      1 + List.fold_left (fun acc c -> max acc (depth_of c)) 0 f.fr_children
    in
    let height = (depth_of root - 1) * row_h in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (Printf.sprintf
         "<svg width=\"%.0f\" height=\"%d\" viewBox=\"0 0 %.0f %d\" \
          font-family=\"monospace\" font-size=\"11\">\n"
         width (max height row_h) width (max height row_h));
    let palette = [| "#d9822b"; "#e0a458"; "#c96f2e"; "#e8b478"; "#d08f4a" |] in
    let rec emit f ~x ~depth =
      let y = depth * row_h in
      let w = width *. float_of_int f.fr_total /. float_of_int root.fr_total in
      if f.fr_name <> "" && w >= 0.5 then begin
        let fill =
          if f.fr_name = "(idle)" then "#d4d8e0"
          else palette.(Hashtbl.hash f.fr_name mod Array.length palette)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<g><rect x=\"%.1f\" y=\"%d\" width=\"%.1f\" height=\"%d\" fill=\"%s\" \
              stroke=\"#fff\" stroke-width=\"0.5\"/><title>%s (%d samples, %.1f%%)</title>"
             x y w (row_h - 1) fill (escape f.fr_name) f.fr_total
             (100.0 *. float_of_int f.fr_total /. float_of_int root.fr_total));
        if w > 40.0 then
          Buffer.add_string buf
            (Printf.sprintf
               "<text x=\"%.1f\" y=\"%d\" fill=\"#222\">%s</text>"
               (x +. 3.0) (y + row_h - 5)
               (escape f.fr_name));
        Buffer.add_string buf "</g>\n"
      end;
      let cx = ref x in
      List.iter
        (fun c ->
          emit c ~x:!cx ~depth:(if f.fr_name = "" then depth else depth + 1);
          cx := !cx +. (width *. float_of_int c.fr_total /. float_of_int root.fr_total))
        f.fr_children
    in
    emit root ~x:0.0 ~depth:0;
    Buffer.add_string buf "</svg>";
    Buffer.contents buf
  end

let perf_section buf (r : Record.t) =
  match r.Record.perf with
  | None -> ()
  | Some p ->
    Buffer.add_string buf "<h3>Performance</h3>\n";
    Buffer.add_string buf "<div class=\"tiles\">\n";
    if p.Record.perf_moves_per_s > 0.0 then
      tile buf ~label:"SA moves/s" ~value:(fmt_f 0 p.Record.perf_moves_per_s);
    if p.Record.perf_wall_s > 0.0 then
      tile buf ~label:"place wall (s)" ~value:(fmt_f 2 p.Record.perf_wall_s);
    Buffer.add_string buf "</div>\n";
    if p.Record.perf_counters <> [] then begin
      Buffer.add_string buf "<table><tr>";
      List.iter
        (fun (k, _) ->
          Buffer.add_string buf (Printf.sprintf "<th>%s</th>" (escape k)))
        p.Record.perf_counters;
      Buffer.add_string buf "</tr><tr>";
      List.iter
        (fun (_, v) -> Buffer.add_string buf (Printf.sprintf "<td>%d</td>" v))
        p.Record.perf_counters;
      Buffer.add_string buf "</tr></table>\n"
    end;
    (match p.Record.pool_workers with
    | [] -> ()
    | workers ->
      Buffer.add_string buf
        (Printf.sprintf
           "<h3>Pool utilization <span class=\"meta\">(%d map%s, wall %s ms — \
            schedule-dependent, informational only)</span></h3>\n"
           p.Record.pool_maps
           (if p.Record.pool_maps = 1 then "" else "s")
           (fmt_f 1 (p.Record.pool_wall_us /. 1e3)));
      Buffer.add_string buf
        "<table><tr><th class=\"name\">domain</th><th>tasks</th><th>steals</th>\
         <th>busy ms</th><th class=\"name\" style=\"width:22em\">busy</th></tr>\n";
      let wall = Float.max p.Record.pool_wall_us 1e-9 in
      List.iteri
        (fun i (w : Record.pool_worker) ->
          let pct = Float.min 100.0 (100.0 *. w.Record.pw_busy_us /. wall) in
          Buffer.add_string buf
            (Printf.sprintf
               "<tr><td class=\"name\">%s</td><td>%d</td><td>%d</td><td>%s</td>\
                <td class=\"name\"><span class=\"bar\" style=\"width:%.1f%%\"></span> \
                %.0f%%</td></tr>\n"
               (if i = 0 then "caller" else Printf.sprintf "worker %d" i)
               w.Record.pw_tasks w.Record.pw_steals
               (fmt_f 1 (w.Record.pw_busy_us /. 1e3))
               pct pct))
        workers;
      Buffer.add_string buf "</table>\n");
    if p.Record.profile <> [] then begin
      Buffer.add_string buf
        "<h3>Sampled profile <span class=\"meta\">(wall-clock span samples, \
         collapsed-stack)</span></h3>\n";
      Buffer.add_string buf (flamegraph_svg p.Record.profile);
      Buffer.add_string buf "\n"
    end

(* ---- cost-term attribution (DESIGN.md §13) ------------------------ *)

(* Per-pair wl shares folded into a symmetric block × block matrix.
   Endpoints that are not top-level blocks (fixed siblings, port
   groups) are aggregated under one "fixed" row/column. *)
let contribution_matrix (cb : Record.cost_breakdown) =
  let block_names = List.map (fun b -> b.Record.bc_name) cb.Record.cb_blocks in
  let has_fixed =
    List.exists
      (fun p ->
        (not (List.mem p.Record.pair_a block_names))
        || not (List.mem p.Record.pair_b block_names))
      cb.Record.cb_pairs
  in
  let labels =
    Array.of_list (if has_fixed then block_names @ [ "fixed" ] else block_names)
  in
  let n = Array.length labels in
  let index name =
    let rec go i = function
      | [] -> n - 1 (* the "fixed" slot *)
      | b :: rest -> if b = name then i else go (i + 1) rest
    in
    go 0 block_names
  in
  let values = Array.make_matrix n n 0.0 in
  List.iter
    (fun p ->
      let i = index p.Record.pair_a and j = index p.Record.pair_b in
      values.(i).(j) <- values.(i).(j) +. p.Record.pair_wl;
      if i <> j then values.(j).(i) <- values.(j).(i) +. p.Record.pair_wl)
    cb.Record.cb_pairs;
  (labels, values)

let breakdown_section buf (r : Record.t) =
  match r.Record.cost_breakdown with
  | None -> ()
  | Some cb ->
    Buffer.add_string buf
      "<h3>Cost breakdown <span class=\"meta\">(terms sum to the SA scalar \
       bit-exactly)</span></h3>\n";
    Buffer.add_string buf
      "<table><tr><th class=\"name\">term</th><th>value</th><th>share</th>\
       <th class=\"name\">trajectory</th></tr>\n";
    let total = if cb.Record.cb_total <> 0.0 then cb.Record.cb_total else 1.0 in
    List.iter
      (fun (name, v) ->
        let curve =
          match List.assoc_opt name cb.Record.cb_term_curves with
          | Some pts when List.length pts > 1 -> sparkline ~w:160 ~h:32 pts
          | _ -> "<span class=\"meta\">-</span>"
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<tr><td class=\"name\">%s</td><td>%s</td><td>%.2f%%</td>\
              <td class=\"name\">%s</td></tr>\n"
             (escape name) (fmt_f 4 v)
             (100.0 *. v /. total)
             curve))
      cb.Record.cb_terms;
    Buffer.add_string buf
      (Printf.sprintf
         "<tr><td class=\"name\">total</td><td>%s</td><td>100.00%%</td><td></td></tr>\n\
          </table>\n"
         (fmt_f 4 cb.Record.cb_total));
    (match cb.Record.cb_blocks with
    | [] -> ()
    | blocks ->
      Buffer.add_string buf
        "<h3>Per-block attribution <span class=\"meta\">(raw, unnormalized \
         charges)</span></h3>\n";
      Buffer.add_string buf
        "<table><tr><th class=\"name\">block</th><th>wl share</th><th>at shift</th>\
         <th>am deficit</th><th>macro deficit</th></tr>\n";
      let sorted =
        List.sort (fun a b -> compare b.Record.bc_wl a.Record.bc_wl) blocks
      in
      List.iter
        (fun b ->
          Buffer.add_string buf
            (Printf.sprintf
               "<tr><td class=\"name\">%s</td><td>%s</td><td>%s</td><td>%s</td>\
                <td>%s</td></tr>\n"
               (escape b.Record.bc_name) (fmt_f 2 b.Record.bc_wl)
               (fmt_f 2 b.Record.bc_at_shift)
               (fmt_f 2 b.Record.bc_am_deficit)
               (fmt_f 2 b.Record.bc_macro_deficit)))
        sorted;
      Buffer.add_string buf "</table>\n");
    if cb.Record.cb_pairs <> [] then begin
      let labels, values = contribution_matrix cb in
      Buffer.add_string buf
        "<h3>Affinity wirelength contributions <span class=\"meta\">(weight &times; \
         distance per pair; hover for values)</span></h3>\n";
      Buffer.add_string buf (Viz.Svg.contribution_heatmap ~labels ~values ());
      Buffer.add_string buf "\n"
    end

let record_section buf ?baseline (r : Record.t) =
  Buffer.add_string buf
    (Printf.sprintf "<h2>%s &middot; %s</h2>\n" (escape r.Record.circuit)
       (escape r.Record.flow));
  Buffer.add_string buf
    (Printf.sprintf
       "<p class=\"meta\">seed %d &middot; lambda %s &middot; %d cells &middot; %d \
        macros &middot; schema v%d</p>\n"
       r.Record.seed
       (match r.Record.lambda with Some l -> fmt_f 2 l | None -> "-")
       r.Record.cells r.Record.macro_count r.Record.rec_version);
  Buffer.add_string buf "<div class=\"tiles\">\n";
  let q = r.Record.qm in
  tile buf ~label:"WL (m)" ~value:(fmt_f 3 (q.Record.wl_um *. 1e-6));
  tile buf ~label:"GRC overflow %" ~value:(fmt_f 2 q.Record.grc_pct);
  tile buf ~label:"WNS %" ~value:(fmt_f 1 q.Record.wns_pct);
  tile buf ~label:"TNS (ps)" ~value:(fmt_f 0 q.Record.tns);
  tile buf ~label:"runtime (s)" ~value:(fmt_f 2 q.Record.runtime_s);
  if q.Record.dataflow_cost > 0.0 then
    tile buf ~label:"dataflow cost" ~value:(fmt_f 0 q.Record.dataflow_cost);
  Buffer.add_string buf "</div>\n";
  (match baseline with
  | Some b ->
    Buffer.add_string buf "<h3>QoR vs committed baseline</h3>\n";
    delta_table buf (Baseline.compare_record b r)
  | None -> ());
  if r.Record.displacement <> [] then begin
    Buffer.add_string buf
      "<h3>Macro displacement vs other flows</h3>\n<table><tr>";
    List.iter
      (fun (flow, _) ->
        Buffer.add_string buf (Printf.sprintf "<th>vs %s</th>" (escape flow)))
      r.Record.displacement;
    Buffer.add_string buf "</tr><tr>";
    List.iter
      (fun (_, d) -> Buffer.add_string buf (Printf.sprintf "<td>%s um</td>" (fmt_f 1 d)))
      r.Record.displacement;
    Buffer.add_string buf "</tr></table>\n"
  end;
  Buffer.add_string buf "<h3>Floorplan</h3>\n";
  floorplans buf r;
  Buffer.add_string buf
    (Printf.sprintf "<h3>SA convergence</h3>\n<p>%s <span class=\"meta\">%d moves, \
                     acceptance rate per plateau</span></p>\n"
       (sparkline r.Record.sa_curve) r.Record.sa_moves);
  breakdown_section buf r;
  Buffer.add_string buf "<h3>Stage wall-clock</h3>\n";
  stage_bars buf r.Record.stages;
  perf_section buf r;
  gc_table buf r.Record.gc

let render ?baseline ~title records =
  let buf = Buffer.create 16384 in
  Buffer.add_string buf "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"/>\n";
  Buffer.add_string buf (Printf.sprintf "<title>%s</title>\n" (escape title));
  Buffer.add_string buf (Printf.sprintf "<style>%s</style>\n</head>\n<body>\n" css);
  Buffer.add_string buf (Printf.sprintf "<h1>%s</h1>\n" (escape title));
  (match baseline, records with
  | Some b, _ :: _ ->
    let comparisons = Baseline.compare_all b records in
    Buffer.add_string buf
      (Printf.sprintf "<p>Overall verdict: <span class=\"%s\">%s</span></p>\n"
         (Baseline.verdict_name (Baseline.overall comparisons))
         (String.uppercase_ascii
            (Baseline.verdict_name (Baseline.overall comparisons))))
  | _ -> ());
  List.iter (fun r -> record_section buf ?baseline r) records;
  Buffer.add_string buf
    (Printf.sprintf
       "<footer>hidap QoR report &middot; schema %s v%d &middot; self-contained (no \
        external assets)</footer>\n"
       Record.schema Record.version);
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
