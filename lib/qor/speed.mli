(** Schema-versioned speed records and the report-only speed comparison.

    One ["hidap-speed"] document holds per-circuit throughput of a run:
    wall-clock of the placement flow, total SA moves (a deterministic
    work measure from {!Obs.Perf}), and the derived moves/sec. The same
    document format serves as the committed baseline file
    ([bench/speed_baselines.json]).

    Unlike {!Baseline}, the comparison here is {e report-only}: wall
    clock is machine-dependent, so deltas are printed for humans and CI
    job summaries but never produce a gating verdict. *)

val schema : string
(** ["hidap-speed"]. *)

val version : int
(** Current schema version (1). *)

type entry = {
  circuit : string;
  wall_s : float;  (** wall-clock of the placement flow, seconds *)
  sa_moves : int;  (** deterministic SA move count ([sa.moves] perf counter) *)
  moves_per_s : float;  (** [sa_moves / wall_s]; 0 when [wall_s = 0] *)
  peak_rss_kb : int;
      (** process peak RSS ({!Obs.Gcstats.peak_rss_kb}); 0 = unmeasured.
          Whole-process and monotone, so multi-circuit suites measure
          the high-water mark up to that circuit. *)
  major_words : float;
      (** major-heap words allocated during the flow
          ({!Obs.Gcstats.snapshot} delta); 0 = unmeasured *)
}

type t = { entries : entry list }

val entry :
  ?peak_rss_kb:int ->
  ?major_words:float ->
  circuit:string ->
  wall_s:float ->
  sa_moves:int ->
  unit ->
  entry
(** Builds an entry, deriving [moves_per_s]. The memory fields default
    to 0 (unmeasured). *)

val find : t -> string -> entry option

val to_json : t -> Obs.Jsonx.t

val of_json : Obs.Jsonx.t -> (t, string) result

val write : string -> t -> unit

val load : string -> (t, string) result

type delta = {
  d_circuit : string;
  base : entry option;  (** [None] when the baseline lacks this circuit *)
  cur : entry;
}

val compare_to : baseline:t -> t -> delta list
(** One delta per current entry, in current order. *)

val render : delta list -> string
(** Human-readable comparison table. Informational only — callers must
    not turn it into an exit code. *)
