module Jsonx = Obs.Jsonx
module Rect = Geom.Rect
module Point = Geom.Point

let schema = "hidap-qor"

(* v3 adds the optional cost_breakdown section (exact cost-term
   attribution); v1/v2 records read back with [cost_breakdown = None]. *)
let version = 3

type ckpt_info = {
  resumed_from : string option;
  snapshots_written : int;
  instances_reused : int;
}

type stage = {
  stage_name : string;
  total_us : float;
  calls : int;
}

type macro = {
  macro_name : string;
  macro_rect : Rect.t;
  orient : Geom.Orientation.t;
}

type level = {
  depth : int;
  ht_id : int;
  level_rect : Rect.t;
  level_macros : int;
}

type qmetrics = {
  wl_um : float;
  grc_pct : float;
  wns_pct : float;
  tns : float;
  runtime_s : float;
  dataflow_cost : float;
}

type pool_worker = {
  pw_tasks : int;
  pw_steals : int;
  pw_busy_us : float;
}

type perf_info = {
  perf_counters : (string * int) list;
  perf_moves_per_s : float;
  perf_wall_s : float;
  pool_workers : pool_worker list;
  pool_wall_us : float;
  pool_maps : int;
  profile : (string * int) list;  (* collapsed stacks *)
}

type pair_contrib = {
  pair_a : string;
  pair_b : string;
  pair_weight : float;
  pair_wl : float;  (* weight * manhattan distance *)
}

type block_contrib = {
  bc_name : string;
  bc_wl : float;  (* sum of pair_wl over incident affinity pairs *)
  bc_at_shift : float;
  bc_am_deficit : float;
  bc_macro_deficit : float;
}

type cost_breakdown = {
  cb_total : float;
  cb_terms : (string * float) list;
      (* Layout_gen.term_names order; ordered left-to-right sum
         reproduces cb_total bit for bit *)
  cb_pairs : pair_contrib list;  (* affinity-loop order, not sorted *)
  cb_blocks : block_contrib list;
  cb_term_curves : (string * (float * float) list) list;
      (* per-term best-cost trajectories: (total_moves, term value) *)
}

type t = {
  rec_version : int;
  circuit : string;
  flow : string;
  seed : int;
  lambda : float option;
  cells : int;
  macro_count : int;
  qm : qmetrics;
  displacement : (string * float) list;
  sa_moves : int;
  sa_curve : (float * float) list;
  stages : stage list;
  gc : Obs.Gcstats.snapshot option;
  die : Rect.t;
  macros : macro list;
  levels : level list;
  degradations : Guard.Supervisor.entry list;
  ckpt : ckpt_info option;
  perf : perf_info option;
  cost_breakdown : cost_breakdown option;
}

(* ---- derived quantities ------------------------------------------- *)

(* Affinity-weighted distance between top-level Gdf blocks: the
   objective the dataflow blend is pulling on, reported so runs can be
   compared on dataflow quality and not only on wirelength. *)
let dataflow_cost_of_top (top : Hidap.Floorplan.instance_snapshot option) =
  match top with
  | None -> 0.0
  | Some top ->
    let n = Array.length top.Hidap.Floorplan.inst_rects in
    let centers = Array.map Rect.center top.Hidap.Floorplan.inst_rects in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = top.Hidap.Floorplan.inst_affinity.(i).(j) in
        if a > 0.0 then total := !total +. (a *. Point.euclidean centers.(i) centers.(j))
      done
    done;
    !total

let sa_curve_of registry =
  match registry with
  | None -> []
  | Some reg -> Obs.Metrics.series_points reg "sa.curve.level0"

let term_curves_of registry =
  match registry with
  | None -> []
  | Some reg ->
    List.filter_map
      (fun t ->
        match Obs.Metrics.series_points reg (Printf.sprintf "sa.term.%s.level0" t) with
        | [] -> None
        | pts -> Some (t, pts))
      Hidap.Layout_gen.term_names

(* The exact-attribution section, from the top-level instance snapshot.
   None when the top instance was replayed from a checkpoint (no layout
   was re-evaluated) or the run predates attribution. *)
let cost_breakdown_of_top registry (top : Hidap.Floorplan.instance_snapshot option) =
  match top with
  | None -> None
  | Some top ->
    (match
       ( top.Hidap.Floorplan.inst_cost,
         top.Hidap.Floorplan.inst_breakdown,
         top.Hidap.Floorplan.inst_attribution )
     with
    | Some cost, Some bd, Some attr ->
      let blocks = top.Hidap.Floorplan.inst_blocks in
      let fixed = top.Hidap.Floorplan.inst_fixed_names in
      let n_blocks = Array.length blocks in
      let endpoint i =
        if i < n_blocks then blocks.(i).Hidap.Block.name
        else if i - n_blocks < Array.length fixed then fixed.(i - n_blocks)
        else "fixed"
      in
      let pairs =
        Array.to_list
          (Array.map
             (fun (p : Hidap.Layout_gen.pair_contrib) ->
               { pair_a = endpoint p.Hidap.Layout_gen.pc_i;
                 pair_b = endpoint p.Hidap.Layout_gen.pc_j;
                 pair_weight = p.Hidap.Layout_gen.pc_weight;
                 pair_wl = p.Hidap.Layout_gen.pc_wl })
             attr.Hidap.Layout_gen.attr_pairs)
      in
      let wl_of = Array.make (max 1 n_blocks) 0.0 in
      Array.iter
        (fun (p : Hidap.Layout_gen.pair_contrib) ->
          let add i =
            if i >= 0 && i < n_blocks then wl_of.(i) <- wl_of.(i) +. p.Hidap.Layout_gen.pc_wl
          in
          add p.Hidap.Layout_gen.pc_i;
          add p.Hidap.Layout_gen.pc_j)
        attr.Hidap.Layout_gen.attr_pairs;
      let viols = attr.Hidap.Layout_gen.attr_leaf_viol in
      let cb_blocks =
        List.init n_blocks (fun i ->
            let v =
              if i < Array.length viols then viols.(i)
              else
                { Slicing.Layout.at_shift = 0.0; am_deficit = 0.0; macro_deficit = 0.0 }
            in
            { bc_name = blocks.(i).Hidap.Block.name;
              bc_wl = wl_of.(i);
              bc_at_shift = v.Slicing.Layout.at_shift;
              bc_am_deficit = v.Slicing.Layout.am_deficit;
              bc_macro_deficit = v.Slicing.Layout.macro_deficit })
      in
      Some
        { cb_total = cost;
          cb_terms = Hidap.Layout_gen.breakdown_terms bd;
          cb_pairs = pairs;
          cb_blocks;
          cb_term_curves = term_curves_of registry }
    | _ -> None)

let stages_of spans =
  match spans with
  | None -> []
  | Some spans ->
    List.map
      (fun (stage_name, total_us, calls) -> { stage_name; total_us; calls })
      (Obs.Trace.stage_totals spans)

let gc_of registry =
  match registry with
  | None -> None
  | Some reg ->
    (* The gauges are published by the flow itself (Hidap.place); fall
       back to None when the run was not instrumented. *)
    (match Obs.Metrics.gauge_value reg "gc.minor_words" with
    | None -> None
    | Some minor_words ->
      let g name = Option.value ~default:0.0 (Obs.Metrics.gauge_value reg name) in
      Some
        { Obs.Gcstats.minor_words;
          promoted_words = g "gc.promoted_words";
          major_words = g "gc.major_words";
          minor_collections = int_of_float (g "gc.minor_collections");
          major_collections = int_of_float (g "gc.major_collections");
          compactions = int_of_float (g "gc.compactions");
          heap_words = int_of_float (g "gc.heap_words");
          top_heap_words = int_of_float (g "gc.top_heap_words") })

(* ---- constructors ------------------------------------------------- *)

let of_place ~circuit ~flat ~(config : Hidap.Config.t) ?spans ?registry
    ?(degradations = []) ?measured ?ckpt ?perf (r : Hidap.result) =
  let macros =
    List.map
      (fun (p : Hidap.macro_placement) ->
        { macro_name = flat.Netlist.Flat.nodes.(p.Hidap.fid).Netlist.Flat.path;
          macro_rect = p.Hidap.rect;
          orient = p.Hidap.orient })
      r.Hidap.placements
  in
  let cp_macros =
    List.map
      (fun (p : Hidap.macro_placement) ->
        { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect; orient = p.Hidap.orient })
      r.Hidap.placements
  in
  let m =
    match measured with
    | Some m -> m
    | None ->
      let m, _ =
        Evalflow.measure ~flat ~gseq:r.Hidap.gseq ~ports:r.Hidap.ports
          ~die:r.Hidap.die ~macros:cp_macros
      in
      m
  in
  let runtime_s =
    match spans with
    | None -> 0.0
    | Some spans ->
      List.fold_left
        (fun acc (name, total_us, _) ->
          if name = "hidap.place" then acc +. (total_us /. 1e6) else acc)
        0.0 (Obs.Trace.stage_totals spans)
  in
  { rec_version = version;
    circuit;
    flow = "HiDaP";
    seed = config.Hidap.Config.seed;
    lambda = Some r.Hidap.lambda;
    cells = Netlist.Flat.cell_count flat;
    macro_count = Netlist.Flat.macro_count flat;
    qm =
      { wl_um = m.Evalflow.wl_um;
        grc_pct = m.Evalflow.grc_pct;
        wns_pct = m.Evalflow.wns_pct;
        tns = m.Evalflow.tns;
        runtime_s;
        dataflow_cost = dataflow_cost_of_top r.Hidap.top };
    displacement = [];
    sa_moves = r.Hidap.sa_moves;
    sa_curve = sa_curve_of registry;
    stages = stages_of spans;
    gc = gc_of registry;
    die = r.Hidap.die;
    macros;
    levels =
      List.map
        (fun (l : Hidap.Floorplan.level_info) ->
          { depth = l.Hidap.Floorplan.depth;
            ht_id = l.Hidap.Floorplan.ht_id;
            level_rect = l.Hidap.Floorplan.rect;
            level_macros = l.Hidap.Floorplan.macro_count })
        r.Hidap.levels;
    degradations;
    ckpt;
    perf;
    cost_breakdown = cost_breakdown_of_top registry r.Hidap.top }

let of_eval ~circuit ~flat ~(config : Hidap.Config.t) ?spans ?registry
    ?(degradations = []) (res : Evalflow.circuit_result) =
  let die = Hidap.die_for flat ~config in
  List.map
    (fun (run : Evalflow.run) ->
      let flow = Evalflow.flow_name run.Evalflow.kind in
      let displacement =
        List.filter_map
          (fun (other : Evalflow.run) ->
            if other.Evalflow.kind = run.Evalflow.kind then None
            else
              Some
                ( Evalflow.flow_name other.Evalflow.kind,
                  Evalflow.macro_displacement run other ))
          res.Evalflow.runs
      in
      let macros =
        List.map
          (fun (m : Cellplace.macro_place) ->
            { macro_name = flat.Netlist.Flat.nodes.(m.Cellplace.fid).Netlist.Flat.path;
              macro_rect = m.Cellplace.rect;
              orient = m.Cellplace.orient })
          run.Evalflow.macros
      in
      let is_hidap = run.Evalflow.kind = Evalflow.HiDaP in
      let m = run.Evalflow.metrics in
      { rec_version = version;
        circuit;
        flow;
        seed = config.Hidap.Config.seed;
        lambda = run.Evalflow.lambda_used;
        cells = res.Evalflow.cells;
        macro_count = res.Evalflow.macro_count;
        qm =
          { wl_um = m.Evalflow.wl_um;
            grc_pct = m.Evalflow.grc_pct;
            wns_pct = m.Evalflow.wns_pct;
            tns = m.Evalflow.tns;
            runtime_s = m.Evalflow.runtime_s;
            dataflow_cost = 0.0 };
        displacement;
        sa_moves = 0;
        sa_curve = (if is_hidap then sa_curve_of registry else []);
        stages = (if is_hidap then stages_of spans else []);
        gc = (if is_hidap then gc_of registry else None);
        die;
        macros;
        levels = [];
        degradations = (if is_hidap then degradations else []);
        ckpt = None;
        perf = None;
        (* Evalflow keeps only macro placements per flow, not the top
           instance snapshot, so eval-path records carry no breakdown. *)
        cost_breakdown = None })
    res.Evalflow.runs

(* ---- JSON ---------------------------------------------------------- *)

let rect_json (r : Rect.t) =
  Jsonx.List
    [ Jsonx.Float r.Rect.x; Jsonx.Float r.Rect.y; Jsonx.Float r.Rect.w;
      Jsonx.Float r.Rect.h ]

let rect_of_json = function
  | Jsonx.List [ x; y; w; h ] ->
    (match (Jsonx.to_float_opt x, Jsonx.to_float_opt y, Jsonx.to_float_opt w,
            Jsonx.to_float_opt h)
     with
    | Some x, Some y, Some w, Some h -> Some (Rect.make ~x ~y ~w ~h)
    | _ -> None)
  | _ -> None

let points_json pts =
  Jsonx.List (List.map (fun (x, y) -> Jsonx.List [ Jsonx.Float x; Jsonx.Float y ]) pts)

let points_of_json j =
  match Jsonx.to_list_opt j with
  | None -> None
  | Some items ->
    let pt = function
      | Jsonx.List [ x; y ] ->
        (match (Jsonx.to_float_opt x, Jsonx.to_float_opt y) with
        | Some x, Some y -> Some (x, y)
        | _ -> None)
      | _ -> None
    in
    let pts = List.filter_map pt items in
    if List.length pts = List.length items then Some pts else None

let perf_info_json p =
  Jsonx.Obj
    [ ( "counters",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Int v)) p.perf_counters) );
      ("moves_per_s", Jsonx.Float p.perf_moves_per_s);
      ("wall_s", Jsonx.Float p.perf_wall_s);
      ( "pool",
        Jsonx.Obj
          [ ( "workers",
              Jsonx.List
                (List.map
                   (fun w ->
                     Jsonx.Obj
                       [ ("tasks", Jsonx.Int w.pw_tasks);
                         ("steals", Jsonx.Int w.pw_steals);
                         ("busy_us", Jsonx.Float w.pw_busy_us) ])
                   p.pool_workers) );
            ("wall_us", Jsonx.Float p.pool_wall_us);
            ("maps", Jsonx.Int p.pool_maps) ] );
      ( "profile",
        Jsonx.List
          (List.map
             (fun (stack, n) -> Jsonx.List [ Jsonx.String stack; Jsonx.Int n ])
             p.profile) ) ]

let to_json t =
  Jsonx.Obj
    [ ("schema", Jsonx.String schema);
      ("version", Jsonx.Int t.rec_version);
      ("circuit", Jsonx.String t.circuit);
      ("flow", Jsonx.String t.flow);
      ("seed", Jsonx.Int t.seed);
      ("lambda", (match t.lambda with Some l -> Jsonx.Float l | None -> Jsonx.Null));
      ("cells", Jsonx.Int t.cells);
      ("macro_count", Jsonx.Int t.macro_count);
      ( "metrics",
        Jsonx.Obj
          [ ("wl_um", Jsonx.Float t.qm.wl_um);
            ("wl_m", Jsonx.Float (t.qm.wl_um *. 1e-6));
            ("grc_pct", Jsonx.Float t.qm.grc_pct);
            ("wns_pct", Jsonx.Float t.qm.wns_pct);
            ("tns", Jsonx.Float t.qm.tns);
            ("runtime_s", Jsonx.Float t.qm.runtime_s);
            ("dataflow_cost", Jsonx.Float t.qm.dataflow_cost) ] );
      ( "displacement",
        Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Float v)) t.displacement) );
      ( "sa",
        Jsonx.Obj
          [ ("moves", Jsonx.Int t.sa_moves); ("curve", points_json t.sa_curve) ] );
      ( "stages",
        Jsonx.List
          (List.map
             (fun s ->
               Jsonx.Obj
                 [ ("name", Jsonx.String s.stage_name);
                   ("total_us", Jsonx.Float s.total_us);
                   ("calls", Jsonx.Int s.calls) ])
             t.stages) );
      ("gc", (match t.gc with Some g -> Obs.Gcstats.to_json g | None -> Jsonx.Null));
      ("die", rect_json t.die);
      ( "macros",
        Jsonx.List
          (List.map
             (fun m ->
               Jsonx.Obj
                 [ ("name", Jsonx.String m.macro_name);
                   ("rect", rect_json m.macro_rect);
                   ("orient", Jsonx.String (Geom.Orientation.to_string m.orient)) ])
             t.macros) );
      ( "levels",
        Jsonx.List
          (List.map
             (fun l ->
               Jsonx.Obj
                 [ ("depth", Jsonx.Int l.depth);
                   ("ht_id", Jsonx.Int l.ht_id);
                   ("rect", rect_json l.level_rect);
                   ("macro_count", Jsonx.Int l.level_macros) ])
             t.levels) );
      ( "degradations",
        Jsonx.List (List.map Guard.Supervisor.entry_to_json t.degradations) );
      ( "ckpt",
        match t.ckpt with
        | None -> Jsonx.Null
        | Some c ->
          Jsonx.Obj
            [ ( "resumed_from",
                match c.resumed_from with
                | Some f -> Jsonx.String f
                | None -> Jsonx.Null );
              ("snapshots_written", Jsonx.Int c.snapshots_written);
              ("instances_reused", Jsonx.Int c.instances_reused) ] );
      ( "perf",
        match t.perf with None -> Jsonx.Null | Some p -> perf_info_json p );
      ( "cost_breakdown",
        match t.cost_breakdown with
        | None -> Jsonx.Null
        | Some cb ->
          Jsonx.Obj
            [ ("total", Jsonx.Float cb.cb_total);
              ( "terms",
                (* ordered list, not an object: the left-to-right sum is
                   part of the contract (reproduces total bit for bit) *)
                Jsonx.List
                  (List.map
                     (fun (name, value) ->
                       Jsonx.Obj
                         [ ("name", Jsonx.String name); ("value", Jsonx.Float value) ])
                     cb.cb_terms) );
              ( "pairs",
                Jsonx.List
                  (List.map
                     (fun p ->
                       Jsonx.Obj
                         [ ("a", Jsonx.String p.pair_a);
                           ("b", Jsonx.String p.pair_b);
                           ("weight", Jsonx.Float p.pair_weight);
                           ("wl", Jsonx.Float p.pair_wl) ])
                     cb.cb_pairs) );
              ( "blocks",
                Jsonx.List
                  (List.map
                     (fun b ->
                       Jsonx.Obj
                         [ ("name", Jsonx.String b.bc_name);
                           ("wl", Jsonx.Float b.bc_wl);
                           ("at_shift", Jsonx.Float b.bc_at_shift);
                           ("am_deficit", Jsonx.Float b.bc_am_deficit);
                           ("macro_deficit", Jsonx.Float b.bc_macro_deficit) ])
                     cb.cb_blocks) );
              ( "term_curves",
                Jsonx.Obj
                  (List.map (fun (name, pts) -> (name, points_json pts)) cb.cb_term_curves)
              ) ] ) ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field j name of_j =
  match Option.bind (Jsonx.member name j) of_j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let of_json j =
  let* s = field j "schema" Jsonx.to_string_opt in
  if s <> schema then Error (Printf.sprintf "not a %s record (schema %S)" schema s)
  else
    let* v = field j "version" Jsonx.to_int_opt in
    if v > version then
      Error (Printf.sprintf "record version %d is newer than supported %d" v version)
    else
      let* circuit = field j "circuit" Jsonx.to_string_opt in
      let* flow = field j "flow" Jsonx.to_string_opt in
      let* seed = field j "seed" Jsonx.to_int_opt in
      let lambda = Option.bind (Jsonx.member "lambda" j) Jsonx.to_float_opt in
      let* cells = field j "cells" Jsonx.to_int_opt in
      let* macro_count = field j "macro_count" Jsonx.to_int_opt in
      let* mj = field j "metrics" (fun x -> Some x) in
      let metric name = field mj name Jsonx.to_float_opt in
      let* wl_um = metric "wl_um" in
      let* grc_pct = metric "grc_pct" in
      let* wns_pct = metric "wns_pct" in
      let* tns = metric "tns" in
      let* runtime_s = metric "runtime_s" in
      let* dataflow_cost = metric "dataflow_cost" in
      let displacement =
        match Jsonx.member "displacement" j with
        | Some (Jsonx.Obj fields) ->
          List.filter_map
            (fun (k, v) -> Option.map (fun f -> (k, f)) (Jsonx.to_float_opt v))
            fields
        | _ -> []
      in
      let sa_moves, sa_curve =
        match Jsonx.member "sa" j with
        | Some sa ->
          ( Option.value ~default:0 (Option.bind (Jsonx.member "moves" sa) Jsonx.to_int_opt),
            Option.value ~default:[]
              (Option.bind (Jsonx.member "curve" sa) points_of_json) )
        | None -> (0, [])
      in
      let stages =
        match Option.bind (Jsonx.member "stages" j) Jsonx.to_list_opt with
        | None -> []
        | Some items ->
          List.filter_map
            (fun s ->
              match
                ( Option.bind (Jsonx.member "name" s) Jsonx.to_string_opt,
                  Option.bind (Jsonx.member "total_us" s) Jsonx.to_float_opt,
                  Option.bind (Jsonx.member "calls" s) Jsonx.to_int_opt )
              with
              | Some stage_name, Some total_us, Some calls ->
                Some { stage_name; total_us; calls }
              | _ -> None)
            items
      in
      let gc = Option.bind (Jsonx.member "gc" j) Obs.Gcstats.of_json in
      let* die = field j "die" rect_of_json in
      let macros =
        match Option.bind (Jsonx.member "macros" j) Jsonx.to_list_opt with
        | None -> []
        | Some items ->
          List.filter_map
            (fun m ->
              match
                ( Option.bind (Jsonx.member "name" m) Jsonx.to_string_opt,
                  Option.bind (Jsonx.member "rect" m) rect_of_json,
                  Option.bind
                    (Option.bind (Jsonx.member "orient" m) Jsonx.to_string_opt)
                    Geom.Orientation.of_string )
              with
              | Some macro_name, Some macro_rect, Some orient ->
                Some { macro_name; macro_rect; orient }
              | _ -> None)
            items
      in
      let levels =
        match Option.bind (Jsonx.member "levels" j) Jsonx.to_list_opt with
        | None -> []
        | Some items ->
          List.filter_map
            (fun l ->
              match
                ( Option.bind (Jsonx.member "depth" l) Jsonx.to_int_opt,
                  Option.bind (Jsonx.member "ht_id" l) Jsonx.to_int_opt,
                  Option.bind (Jsonx.member "rect" l) rect_of_json,
                  Option.bind (Jsonx.member "macro_count" l) Jsonx.to_int_opt )
              with
              | Some depth, Some ht_id, Some level_rect, Some level_macros ->
                Some { depth; ht_id; level_rect; level_macros }
              | _ -> None)
            items
      in
      let degradations =
        match Option.bind (Jsonx.member "degradations" j) Jsonx.to_list_opt with
        | None -> []
        | Some items ->
          List.filter_map
            (fun d ->
              match
                ( Option.bind (Jsonx.member "stage" d) Jsonx.to_string_opt,
                  Option.bind (Jsonx.member "reason" d) Jsonx.to_string_opt,
                  Option.bind (Jsonx.member "detail" d) Jsonx.to_string_opt,
                  Option.bind (Jsonx.member "count" d) Jsonx.to_int_opt )
              with
              | Some stage, Some reason, Some detail, Some count ->
                Some { Guard.Supervisor.stage; reason; detail; count }
              | _ -> None)
            items
      in
      let ckpt =
        match Jsonx.member "ckpt" j with
        | Some (Jsonx.Obj _ as c) ->
          (match
             ( Option.bind (Jsonx.member "snapshots_written" c) Jsonx.to_int_opt,
               Option.bind (Jsonx.member "instances_reused" c) Jsonx.to_int_opt )
           with
          | Some snapshots_written, Some instances_reused ->
            Some
              { resumed_from =
                  Option.bind (Jsonx.member "resumed_from" c) Jsonx.to_string_opt;
                snapshots_written;
                instances_reused }
          | _ -> None)
        | _ -> None
      in
      let perf =
        match Jsonx.member "perf" j with
        | Some (Jsonx.Obj _ as p) ->
          let counters =
            match Jsonx.member "counters" p with
            | Some (Jsonx.Obj fields) ->
              List.filter_map
                (fun (k, v) -> Option.map (fun n -> (k, n)) (Jsonx.to_int_opt v))
                fields
            | _ -> []
          in
          let f name =
            Option.value ~default:0.0
              (Option.bind (Jsonx.member name p) Jsonx.to_float_opt)
          in
          let pool = Jsonx.member "pool" p in
          let pool_workers =
            match Option.bind (Option.bind pool (Jsonx.member "workers")) Jsonx.to_list_opt with
            | None -> []
            | Some items ->
              List.filter_map
                (fun w ->
                  match
                    ( Option.bind (Jsonx.member "tasks" w) Jsonx.to_int_opt,
                      Option.bind (Jsonx.member "steals" w) Jsonx.to_int_opt,
                      Option.bind (Jsonx.member "busy_us" w) Jsonx.to_float_opt )
                  with
                  | Some pw_tasks, Some pw_steals, Some pw_busy_us ->
                    Some { pw_tasks; pw_steals; pw_busy_us }
                  | _ -> None)
                items
          in
          let profile =
            match Option.bind (Jsonx.member "profile" p) Jsonx.to_list_opt with
            | None -> []
            | Some items ->
              List.filter_map
                (function
                  | Jsonx.List [ stack; n ] ->
                    (match (Jsonx.to_string_opt stack, Jsonx.to_int_opt n) with
                    | Some s, Some n -> Some (s, n)
                    | _ -> None)
                  | _ -> None)
                items
          in
          Some
            { perf_counters = counters;
              perf_moves_per_s = f "moves_per_s";
              perf_wall_s = f "wall_s";
              pool_workers;
              pool_wall_us =
                Option.value ~default:0.0
                  (Option.bind (Option.bind pool (Jsonx.member "wall_us"))
                     Jsonx.to_float_opt);
              pool_maps =
                Option.value ~default:0
                  (Option.bind (Option.bind pool (Jsonx.member "maps"))
                     Jsonx.to_int_opt);
              profile }
        | _ -> None
      in
      let cost_breakdown =
        match Jsonx.member "cost_breakdown" j with
        | Some (Jsonx.Obj _ as cb) ->
          (match Option.bind (Jsonx.member "total" cb) Jsonx.to_float_opt with
          | None -> None
          | Some cb_total ->
            let cb_terms =
              match Option.bind (Jsonx.member "terms" cb) Jsonx.to_list_opt with
              | None -> []
              | Some items ->
                List.filter_map
                  (fun t ->
                    match
                      ( Option.bind (Jsonx.member "name" t) Jsonx.to_string_opt,
                        Option.bind (Jsonx.member "value" t) Jsonx.to_float_opt )
                    with
                    | Some n, Some v -> Some (n, v)
                    | _ -> None)
                  items
            in
            let cb_pairs =
              match Option.bind (Jsonx.member "pairs" cb) Jsonx.to_list_opt with
              | None -> []
              | Some items ->
                List.filter_map
                  (fun p ->
                    match
                      ( Option.bind (Jsonx.member "a" p) Jsonx.to_string_opt,
                        Option.bind (Jsonx.member "b" p) Jsonx.to_string_opt,
                        Option.bind (Jsonx.member "weight" p) Jsonx.to_float_opt,
                        Option.bind (Jsonx.member "wl" p) Jsonx.to_float_opt )
                    with
                    | Some pair_a, Some pair_b, Some pair_weight, Some pair_wl ->
                      Some { pair_a; pair_b; pair_weight; pair_wl }
                    | _ -> None)
                  items
            in
            let cb_blocks =
              match Option.bind (Jsonx.member "blocks" cb) Jsonx.to_list_opt with
              | None -> []
              | Some items ->
                List.filter_map
                  (fun b ->
                    let f name =
                      Option.bind (Jsonx.member name b) Jsonx.to_float_opt
                    in
                    match
                      ( Option.bind (Jsonx.member "name" b) Jsonx.to_string_opt,
                        f "wl", f "at_shift", f "am_deficit", f "macro_deficit" )
                    with
                    | Some bc_name, Some bc_wl, Some bc_at_shift, Some bc_am_deficit,
                      Some bc_macro_deficit ->
                      Some { bc_name; bc_wl; bc_at_shift; bc_am_deficit; bc_macro_deficit }
                    | _ -> None)
                  items
            in
            let cb_term_curves =
              match Jsonx.member "term_curves" cb with
              | Some (Jsonx.Obj fields) ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun pts -> (k, pts)) (points_of_json v))
                  fields
              | _ -> []
            in
            Some { cb_total; cb_terms; cb_pairs; cb_blocks; cb_term_curves })
        | _ -> None
      in
      Ok
        { rec_version = v;
          circuit;
          flow;
          seed;
          lambda;
          cells;
          macro_count;
          qm = { wl_um; grc_pct; wns_pct; tns; runtime_s; dataflow_cost };
          displacement;
          sa_moves;
          sa_curve;
          stages;
          gc;
          die;
          macros;
          levels;
          degradations;
          ckpt;
          perf;
          cost_breakdown }

(* ---- ledger files -------------------------------------------------- *)

let ledger_schema = "hidap-qor-ledger"

let ledger_json records =
  Jsonx.Obj
    [ ("schema", Jsonx.String ledger_schema);
      ("version", Jsonx.Int version);
      ("records", Jsonx.List (List.map to_json records)) ]

let write_ledger path records = Jsonx.write_file path (ledger_json records)

let records_of_json j =
  match Jsonx.member "schema" j with
  | Some (Jsonx.String s) when s = ledger_schema ->
    (match Option.bind (Jsonx.member "records" j) Jsonx.to_list_opt with
    | None -> Error "ledger has no records array"
    | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
          (match of_json item with
          | Ok r -> go (r :: acc) rest
          | Error _ as e -> e)
      in
      go [] items)
  | Some (Jsonx.String s) when s = schema ->
    (match of_json j with Ok r -> Ok [ r ] | Error _ as e -> e)
  | _ -> Error "not a hidap-qor record or ledger"

let load_ledger path =
  match Jsonx.parse_file path with
  | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
  | Ok j ->
    (match records_of_json j with
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    | Ok _ as ok -> ok)
