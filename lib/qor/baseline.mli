(** Committed QoR baselines and the regression gate.

    A baselines document stores, per (circuit, flow), the gated quality
    metrics of a known-good run plus per-metric relative tolerances.
    The comparator classifies each new {!Record.t} as improved,
    unchanged or regressed: a metric's signed relative delta is its
    "badness" (positive = worse, direction-aware — WNS/TNS are
    better when larger), and a run regresses as soon as any gated
    metric's badness exceeds its tolerance. Runtime is never gated
    (machine-dependent); near-zero baselines divide by a per-metric
    absolute floor instead of the baseline value. *)

val schema : string

val version : int

val default_tolerances : (string * float) list
(** Relative tolerance per metric name, e.g. [("wl_um", 0.02)] = 2%%. *)

type entry = {
  circuit : string;
  flow : string;
  qm : Record.qmetrics;  (** [runtime_s] is carried but never gated *)
}

type t = {
  tolerances : (string * float) list;
  entries : entry list;
}

type verdict = Improved | Unchanged | Regressed

val verdict_name : verdict -> string

type metric_delta = {
  metric : string;
  baseline : float;
  current : float;
  rel_delta : float;
      (** signed badness relative to the baseline: positive means
          worse, already direction-corrected for WNS/TNS *)
  tolerance : float;
  metric_verdict : verdict;
}

type comparison = {
  c_circuit : string;
  c_flow : string;
  deltas : metric_delta list;
  run_verdict : verdict;
  missing_baseline : bool;
      (** true when the baselines file has no entry for this
          (circuit, flow); the run then counts as [Unchanged] so new
          circuits do not fail the gate before a baseline exists *)
}

val compare_record : t -> Record.t -> comparison

val compare_all : t -> Record.t list -> comparison list

val overall : comparison list -> verdict
(** [Regressed] dominates, then [Improved], else [Unchanged]. *)

val of_records : ?tolerances:(string * float) list -> Record.t list -> t
(** Build a fresh baselines document from records
    ([--update-baselines]). *)

val to_json : t -> Obs.Jsonx.t

val of_json : Obs.Jsonx.t -> (t, string) result

val write : string -> t -> unit

val load : string -> (t, string) result

val render : comparison list -> string
(** Human-readable verdict table, one line per run plus the
    out-of-tolerance metric deltas and an overall verdict line. *)
