(** Schema-versioned QoR run records (the run ledger).

    One record captures everything needed to compare and inspect a
    macro-placement run after the fact: identity (circuit, flow, seed,
    λ), quality metrics (HPWL, GRC%% overflow, WNS/TNS, dataflow cost),
    macro displacement against the other flows, per-stage wall-clock
    rolled up from {!Obs.Trace}, runtime [Gc] statistics, and the
    geometry (die, placed macros, per-depth block rectangles) needed to
    re-render floorplan snapshots without the original netlist.

    Versioning / compatibility rules: [version] bumps only on breaking
    changes; added fields are backward-compatible and readers must
    ignore unknown fields. [of_json] accepts any record whose version
    is <= the library's, refuses newer ones. *)

val schema : string
(** ["hidap-qor"], the [schema] tag of every record. *)

val version : int
(** Current schema version (3). Version 2 added the optional [ckpt]
    resume summary; version 3 adds the optional [cost_breakdown]
    attribution section. Older records read back with the
    corresponding fields [None]. *)

type ckpt_info = {
  resumed_from : string option;
      (** snapshot file the run resumed from; [None] for a run that
          checkpointed but started fresh *)
  snapshots_written : int;
  instances_reused : int;  (** floorplan instances replayed, not re-run *)
}

type stage = {
  stage_name : string;
  total_us : float;
  calls : int;
}

type macro = {
  macro_name : string;
  macro_rect : Geom.Rect.t;
  orient : Geom.Orientation.t;
}

type level = {
  depth : int;
  ht_id : int;
  level_rect : Geom.Rect.t;
  level_macros : int;
}

type qmetrics = {
  wl_um : float;
  grc_pct : float;
  wns_pct : float;  (** <= 0, percentage of the clock period *)
  tns : float;  (** ps, <= 0 *)
  runtime_s : float;
  dataflow_cost : float;
      (** affinity-weighted distance between top-level Gdf blocks; 0
          when no top snapshot was available (eval-path records) *)
}

type pool_worker = {
  pw_tasks : int;  (** tasks executed by this worker *)
  pw_steals : int;  (** tasks taken from the shared queue (0 for the caller) *)
  pw_busy_us : float;  (** wall-clock spent inside task bodies *)
}

type perf_info = {
  perf_counters : (string * int) list;
      (** merged {!Obs.Perf} counters, deterministic across job counts *)
  perf_moves_per_s : float;  (** sa.moves / wall_s; 0 when wall_s = 0 *)
  perf_wall_s : float;  (** wall-clock of the placement flow *)
  pool_workers : pool_worker list;
      (** per-domain {!Parexec.pool_stats} utilization (schedule-dependent,
          reported verbatim — never merged into deterministic channels) *)
  pool_wall_us : float;
  pool_maps : int;
  profile : (string * int) list;
      (** collapsed-stack profile lines from {!Obs.Sampler}: (stack, samples) *)
}

type pair_contrib = {
  pair_a : string;  (** endpoint name (block, or fixed sibling/port group) *)
  pair_b : string;
  pair_weight : float;  (** affinity weight *)
  pair_wl : float;  (** [weight * manhattan distance] — this pair's share *)
}

type block_contrib = {
  bc_name : string;
  bc_wl : float;  (** sum of [pair_wl] over incident affinity pairs *)
  bc_at_shift : float;  (** raw (unnormalized) target-area shift charged here *)
  bc_am_deficit : float;  (** raw minimum-area deficit charged here *)
  bc_macro_deficit : float;  (** raw macro-fit deficit charged here *)
}

type cost_breakdown = {
  cb_total : float;  (** the annealer's accepted scalar cost *)
  cb_terms : (string * float) list;
      (** named terms in {!Hidap.Layout_gen.term_names} order; summing
          left to right reproduces [cb_total] bit for bit *)
  cb_pairs : pair_contrib list;
      (** per-affinity-pair wirelength shares, in evaluation (loop)
          order — folding [pair_wl] left to right reproduces the
          wirelength term bit for bit; sort at display time *)
  cb_blocks : block_contrib list;  (** one entry per top-level block *)
  cb_term_curves : (string * (float * float) list) list;
      (** per-term best-cost trajectories from the top-level SA:
          (total_moves, term value); empty when not instrumented *)
}
(** Exact cost-term attribution of the top-level floorplan instance
    (DESIGN.md §13). *)

type t = {
  rec_version : int;
  circuit : string;
  flow : string;
  seed : int;
  lambda : float option;
  cells : int;
  macro_count : int;
  qm : qmetrics;
  displacement : (string * float) list;
      (** mean macro displacement vs each other flow of the same run *)
  sa_moves : int;
  sa_curve : (float * float) list;
      (** top-level SA convergence: (total_moves, acceptance_rate) *)
  stages : stage list;
  gc : Obs.Gcstats.snapshot option;
  die : Geom.Rect.t;
  macros : macro list;
  levels : level list;
  degradations : Guard.Supervisor.entry list;
      (** supervisor ledger of the run: every stage fallback taken
          (injected fault, exceeded budget, absorbed failure); empty for
          a clean run. Added in-place as a backward-compatible field:
          old readers ignore it, old records read back as empty. *)
  ckpt : ckpt_info option;
      (** checkpoint/resume summary; [None] when the run did not
          checkpoint (including every pre-v2 record) *)
  perf : perf_info option;
      (** hot-path performance section (perf counters, pool utilization,
          sampled profile); [None] when the run was not instrumented.
          Added as a backward-compatible field — no version bump. *)
  cost_breakdown : cost_breakdown option;
      (** exact cost-term attribution of the top-level instance (v3);
          [None] for eval-path records, runs whose top instance was
          replayed from a checkpoint, and every pre-v3 record *)
}

val of_place :
  circuit:string ->
  flat:Netlist.Flat.t ->
  config:Hidap.Config.t ->
  ?spans:Obs.Trace.t ->
  ?registry:Obs.Metrics.t ->
  ?degradations:Guard.Supervisor.entry list ->
  ?measured:Evalflow.metrics ->
  ?ckpt:ckpt_info ->
  ?perf:perf_info ->
  Hidap.result ->
  t
(** Record a [Hidap.place] run. Quality metrics are measured with the
    shared evaluation pipeline ({!Evalflow.measure}) unless a
    pre-computed [measured] is supplied (the CLI measures inside the
    supervised region so cell-placement degradations are captured);
    stage times, the SA curve and [Gc] gauges are pulled from
    [spans] / [registry] when the run was instrumented. *)

val of_eval :
  circuit:string ->
  flat:Netlist.Flat.t ->
  config:Hidap.Config.t ->
  ?spans:Obs.Trace.t ->
  ?registry:Obs.Metrics.t ->
  ?degradations:Guard.Supervisor.entry list ->
  Evalflow.circuit_result ->
  t list
(** One record per flow of an {!Evalflow.run_all} result, each carrying
    its macro displacement against the other flows. Trace/metrics
    attachments go to the HiDaP record. *)

val perf_info_json : perf_info -> Obs.Jsonx.t
(** The ["perf"] sub-object of {!to_json}, exposed for standalone
    [--perf-out] documents. *)

val to_json : t -> Obs.Jsonx.t

val of_json : Obs.Jsonx.t -> (t, string) result

val ledger_json : t list -> Obs.Jsonx.t
(** Records wrapped as a ["hidap-qor-ledger"] document. *)

val write_ledger : string -> t list -> unit

val records_of_json : Obs.Jsonx.t -> (t list, string) result
(** Accepts either a ledger document or a bare record. *)

val load_ledger : string -> (t list, string) result
