(** Macro orientations (DEF-style).

    [R0] is the reference orientation; [MY] mirrors about the Y axis,
    [MX] about the X axis, [R180] both; [R90]/[R270]/[MX90]/[MY90] swap
    the width and height. The flipping post-process of the paper searches
    these to reduce pin-side wirelength. *)

type t = R0 | R90 | R180 | R270 | MX | MY | MX90 | MY90

val all : t array

val non_rotating : t array
(** The four orientations that keep the footprint (w, h): R0, R180, MX,
    MY — the set explored by macro flipping when rotation is not
    permitted by the macro's aspect. *)

val rotating : t array
(** The four orientations that swap the footprint to (h, w): R90, R270,
    MX90, MY90 — the set explored by macro flipping when the macro was
    rotated to fit its block, so the placed footprint is preserved. *)

val swaps_dims : t -> bool
(** Whether the orientation exchanges width and height. *)

val apply_dims : t -> w:float -> h:float -> float * float
(** Footprint after orientation. *)

val apply_offset : t -> w:float -> h:float -> Point.t -> Point.t
(** Map a pin offset given in R0 local coordinates (relative to the
    lower-left corner of the un-oriented macro) into the oriented macro's
    local coordinates. *)

val compose : t -> t -> t
(** [compose a b] applies [b] after [a]. *)

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit
