type t = R0 | R90 | R180 | R270 | MX | MY | MX90 | MY90

let all = [| R0; R90; R180; R270; MX; MY; MX90; MY90 |]

let non_rotating = [| R0; R180; MX; MY |]

let rotating = [| R90; R270; MX90; MY90 |]

let swaps_dims = function
  | R90 | R270 | MX90 | MY90 -> true
  | R0 | R180 | MX | MY -> false

let apply_dims o ~w ~h = if swaps_dims o then (h, w) else (w, h)

(* Orientation as a linear map on the unit square, expressed on local
   coordinates: each case gives the image of offset (x, y) inside the
   oriented footprint. *)
let apply_offset o ~w ~h (p : Point.t) =
  let x = p.Point.x and y = p.Point.y in
  match o with
  | R0 -> Point.make x y
  | R180 -> Point.make (w -. x) (h -. y)
  | MX -> Point.make x (h -. y)
  | MY -> Point.make (w -. x) y
  | R90 -> Point.make (h -. y) x
  | R270 -> Point.make y (w -. x)
  | MX90 -> Point.make y x
  | MY90 -> Point.make (h -. y) (w -. x)

(* Composition table computed by composing the underlying symmetries of
   the square (dihedral group D4). *)
let compose a b =
  let to_idx = function
    | R0 -> 0 | R90 -> 1 | R180 -> 2 | R270 -> 3
    | MY -> 4 | MX90 -> 5 | MX -> 6 | MY90 -> 7
  in
  let of_idx = [| R0; R90; R180; R270; MY; MX90; MX; MY90 |] in
  (* Indices 0-3: rotations by 90*i. Indices 4-7: reflection then rotation
     by 90*(i-4). D4 multiplication: r^i * r^j = r^(i+j);
     r^i * s r^j = s r^(j-i); s r^i * r^j = s r^(i+j);
     s r^i * s r^j = r^(j-i). *)
  let ia = to_idx a and ib = to_idx b in
  let result =
    match (ia < 4, ib < 4) with
    | true, true -> (ia + ib) mod 4
    | true, false -> 4 + (((ib - 4) - ia) mod 4 + 4) mod 4
    | false, true -> 4 + ((ia - 4 + ib) mod 4)
    | false, false -> (((ib - 4) - (ia - 4)) mod 4 + 4) mod 4
  in
  of_idx.(result)

let to_string = function
  | R0 -> "R0" | R90 -> "R90" | R180 -> "R180" | R270 -> "R270"
  | MX -> "MX" | MY -> "MY" | MX90 -> "MX90" | MY90 -> "MY90"

let of_string = function
  | "R0" -> Some R0 | "R90" -> Some R90 | "R180" -> Some R180 | "R270" -> Some R270
  | "MX" -> Some MX | "MY" -> Some MY | "MX90" -> Some MX90 | "MY90" -> Some MY90
  | _ -> None

let pp ppf o = Format.pp_print_string ppf (to_string o)
