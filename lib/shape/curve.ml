(* Points sorted by increasing width; heights strictly decrease along the
   array (Pareto staircase). [Unconstrained] is the curve of a block
   without macros. *)

type t =
  | Unconstrained
  | Staircase of (float * float) array

let unconstrained = Unconstrained

let pareto pts =
  let pts = List.filter (fun (w, h) -> w > 0.0 && h > 0.0) pts in
  let sorted =
    List.sort
      (fun (w1, h1) (w2, h2) -> if w1 = w2 then compare h1 h2 else compare w1 w2)
      pts
  in
  (* Scan by increasing width keeping strictly decreasing heights. *)
  let rec keep best_h = function
    | [] -> []
    | (w, h) :: rest -> if h < best_h then (w, h) :: keep h rest else keep best_h rest
  in
  keep infinity sorted

let of_points pts =
  match pareto pts with
  | [] -> invalid_arg "Curve.of_points: no valid points"
  | l -> Staircase (Array.of_list l)

let of_macro ~w ~h ?(rotate = true) () =
  assert (w > 0.0 && h > 0.0);
  if rotate && w <> h then of_points [ (w, h); (h, w) ] else of_points [ (w, h) ]

let points = function
  | Unconstrained -> []
  | Staircase a -> Array.to_list a

let is_unconstrained = function Unconstrained -> true | Staircase _ -> false

let fits t ~w ~h =
  match t with
  | Unconstrained -> true
  | Staircase a ->
    let eps = 1e-9 in
    Array.exists (fun (pw, ph) -> pw <= w +. eps && ph <= h +. eps) a

let min_height t ~w =
  match t with
  | Unconstrained -> Some 0.0
  | Staircase a ->
    let eps = 1e-9 in
    Array.fold_left
      (fun acc (pw, ph) ->
        if pw <= w +. eps then
          match acc with Some best -> Some (min best ph) | None -> Some ph
        else acc)
      None a

let min_width t ~h =
  match t with
  | Unconstrained -> Some 0.0
  | Staircase a ->
    let eps = 1e-9 in
    Array.fold_left
      (fun acc (pw, ph) ->
        if ph <= h +. eps then
          match acc with Some best -> Some (min best pw) | None -> Some pw
        else acc)
      None a

let min_area_point = function
  | Unconstrained -> None
  | Staircase a ->
    let best = ref a.(0) in
    Array.iter
      (fun (w, h) ->
        let bw, bh = !best in
        if w *. h < bw *. bh then best := (w, h))
      a;
    Some !best

let min_area t =
  match min_area_point t with
  | None -> 0.0
  | Some (w, h) -> w *. h

(* The h/v compositions dominate the SA hot path, so they use the
   classical staircase merge instead of [compose_with]'s cartesian
   product + sort. Both inputs are strict staircases (widths strictly
   increasing, heights strictly decreasing), so starting from the
   narrowest pair and advancing the curve holding the current maximum
   height enumerates exactly the undominated combinations, already in
   increasing-width order: advancing the other curve could not lower the
   max but would widen the sum, and any skipped pair keeps the height of
   some emitted point at a larger width. The emitted floats are the same
   [w1 +. w2] / [max h1 h2] the product would produce, so the result is
   bit for bit [pareto] of the full product (the shape property suite
   asserts this against the cartesian reference). *)
let compose_h a b =
  match (a, b) with
  | Unconstrained, c | c, Unconstrained -> c
  | Staircase pa, Staircase pb ->
    let n1 = Array.length pa and n2 = Array.length pb in
    let out = Array.make (n1 + n2) pa.(0) in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    while !i < n1 && !j < n2 do
      let w1, h1 = pa.(!i) and w2, h2 = pb.(!j) in
      out.(!k) <- (w1 +. w2, max h1 h2);
      incr k;
      if h1 > h2 then incr i else if h2 > h1 then incr j else (incr i; incr j)
    done;
    Staircase (Array.sub out 0 !k)

(* Same merge transposed: width plays height's role, so the walk starts
   from the widest (lowest) pair and retreats the curve holding the
   current maximum width, emitting in decreasing-width order; the output
   is reversed back into staircase order. *)
let compose_v a b =
  match (a, b) with
  | Unconstrained, c | c, Unconstrained -> c
  | Staircase pa, Staircase pb ->
    let n1 = Array.length pa and n2 = Array.length pb in
    let out = Array.make (n1 + n2) pa.(0) in
    let k = ref 0 and i = ref (n1 - 1) and j = ref (n2 - 1) in
    while !i >= 0 && !j >= 0 do
      let w1, h1 = pa.(!i) and w2, h2 = pb.(!j) in
      out.(!k) <- (max w1 w2, h1 +. h2);
      incr k;
      if w1 > w2 then decr i else if w2 > w1 then decr j else (decr i; decr j)
    done;
    let res = Array.make !k out.(0) in
    for m = 0 to !k - 1 do
      res.(m) <- out.(!k - 1 - m)
    done;
    Staircase res

let compose_best a b =
  match (compose_h a b, compose_v a b) with
  | Unconstrained, _ | _, Unconstrained -> (* only if an input was unconstrained *)
    compose_h a b
  | Staircase pa, Staircase pb ->
    of_points (Array.to_list pa @ Array.to_list pb)

let prune ~max_points t =
  assert (max_points >= 2);
  match t with
  | Unconstrained -> Unconstrained
  | Staircase a when Array.length a <= max_points -> t
  | Staircase a ->
    let n = Array.length a in
    (* Keep extremes; sample the interior evenly. *)
    let picked = Array.make max_points a.(0) in
    for i = 0 to max_points - 1 do
      let idx = i * (n - 1) / (max_points - 1) in
      picked.(i) <- a.(idx)
    done;
    of_points (Array.to_list picked)

let size = function Unconstrained -> 0 | Staircase a -> Array.length a

let pp ppf t =
  match t with
  | Unconstrained -> Format.pp_print_string ppf "<unconstrained>"
  | Staircase a ->
    let pp_pt ppf (w, h) = Format.fprintf ppf "(%.2f,%.2f)" w h in
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ") pp_pt)
      (Array.to_list a)
