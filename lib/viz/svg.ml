module Rect = Geom.Rect
module Point = Geom.Point

type style = {
  fill : string;
  stroke : string;
  opacity : float;
}

let macro_style = { fill = "#5b7aa9"; stroke = "#1f2f4a"; opacity = 0.95 }
let block_style = { fill = "#8fb58f"; stroke = "#2f4a2f"; opacity = 0.55 }
let glue_style = { fill = "#d9d2b8"; stroke = "#8a8468"; opacity = 0.45 }

let palette =
  [| "#5b7aa9"; "#a95b5b"; "#5ba98e"; "#a9885b"; "#8a5ba9"; "#5b9aa9"; "#a95b88";
     "#7ba95b" |]

let header ~w ~h =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n"
    w h w h

let floorplan ~die ~rects ?(arrows = []) ?(size = 640) () =
  let scale = float_of_int size /. die.Rect.w in
  let hpx = int_of_float (die.Rect.h *. scale) in
  let tx x = (x -. die.Rect.x) *. scale in
  let ty y = float_of_int hpx -. ((y -. die.Rect.y) *. scale) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ~w:size ~h:hpx);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"#fafafa\" stroke=\"#333\"/>\n"
       size hpx);
  List.iter
    (fun (label, (r : Rect.t), st) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\" \
            stroke=\"%s\" fill-opacity=\"%.2f\"/>\n"
           (tx r.Rect.x)
           (ty (r.Rect.y +. r.Rect.h))
           (r.Rect.w *. scale) (r.Rect.h *. scale) st.fill st.stroke st.opacity);
      if label <> "" then
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" fill=\"#222\" \
              text-anchor=\"middle\">%s</text>\n"
             (tx (r.Rect.x +. (r.Rect.w /. 2.0)))
             (ty (r.Rect.y +. (r.Rect.h /. 2.0)))
             label))
    rects;
  List.iter
    (fun ((a : Point.t), (b : Point.t), w) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#c03030\" \
            stroke-width=\"%.2f\" stroke-opacity=\"0.7\"/>\n"
           (tx a.Point.x) (ty a.Point.y) (tx b.Point.x) (ty b.Point.y)
           (Util.Stat.clamp ~lo:0.5 ~hi:8.0 w)))
    arrows;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let dataflow_diagram ~die ~blocks ~affinity ?(size = 640) () =
  let rects =
    List.mapi
      (fun i (name, r, macro_count) ->
        let base = palette.(i mod Array.length palette) in
        let st =
          if macro_count > 0 then { fill = base; stroke = "#222"; opacity = 0.85 }
          else { glue_style with stroke = "#555" }
        in
        let label = Printf.sprintf "%s (%d)" name macro_count in
        (label, r, st))
      blocks
  in
  let n = List.length blocks in
  let centers = Array.of_list (List.map (fun (_, r, _) -> Rect.center r) blocks) in
  let vmax =
    let m = ref 1e-12 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if affinity.(i).(j) > !m then m := affinity.(i).(j)
      done
    done;
    !m
  in
  let arrows = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = affinity.(i).(j) in
      if a > 0.02 *. vmax then
        arrows := (centers.(i), centers.(j), 8.0 *. a /. vmax) :: !arrows
    done
  done;
  floorplan ~die ~rects ~arrows:!arrows ~size ()

let floorplan_levels ~die ~levels ?(macros = []) ?(size = 320) () =
  let max_depth =
    List.fold_left
      (fun acc (l : Hidap.Floorplan.level_info) -> max acc l.Hidap.Floorplan.depth)
      (-1) levels
  in
  let snapshot depth =
    let rects =
      List.filter_map
        (fun (l : Hidap.Floorplan.level_info) ->
          if l.Hidap.Floorplan.depth = depth then
            Some
              ( (if l.Hidap.Floorplan.macro_count > 0 then
                   string_of_int l.Hidap.Floorplan.macro_count
                 else "c"),
                l.Hidap.Floorplan.rect,
                if l.Hidap.Floorplan.macro_count > 0 then block_style else glue_style )
          else None)
        levels
    in
    (depth, floorplan ~die ~rects ~size ())
  in
  let per_level = List.init (max_depth + 1) snapshot in
  match macros with
  | [] -> per_level
  | _ ->
    let rects = List.map (fun (label, r) -> (label, r, macro_style)) macros in
    per_level @ [ (max_depth + 1, floorplan ~die ~rects ~size ()) ]

let density_heatmap grid ?(size = 512) () =
  let nx = Array.length grid in
  let ny = if nx = 0 then 0 else Array.length grid.(0) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ~w:size ~h:size);
  if nx > 0 && ny > 0 then begin
    let vmax = Array.fold_left (fun acc col -> Array.fold_left max acc col) 1e-12 grid in
    let cw = float_of_int size /. float_of_int nx in
    let ch = float_of_int size /. float_of_int ny in
    for i = 0 to nx - 1 do
      for j = 0 to ny - 1 do
        let v = grid.(i).(j) /. vmax in
        let shade = int_of_float (255.0 *. (1.0 -. (0.92 *. v))) in
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
              fill=\"rgb(%d,%d,%d)\"/>\n"
             (float_of_int i *. cw)
             (float_of_int (ny - 1 - j) *. ch)
             cw ch shade shade 255)
      done
    done
  end;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

(* Labels come from user netlists, so escape them for XML. *)
let xml_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let contribution_heatmap ~labels ~values ?(cell = 36) () =
  let n = Array.length labels in
  let margin = 110 in
  let size = margin + (n * cell) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ~w:size ~h:size);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"#fafafa\"/>\n" size size);
  if n > 0 then begin
    let vmax =
      Array.fold_left (fun acc row -> Array.fold_left max acc row) 1e-12 values
    in
    let fc = float_of_int cell in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let v = Util.Stat.clamp ~lo:0.0 ~hi:1.0 (values.(i).(j) /. vmax) in
        let shade = int_of_float (255.0 *. (1.0 -. (0.92 *. v))) in
        let x = float_of_int (margin + (j * cell)) in
        let y = float_of_int (margin + (i * cell)) in
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
              fill=\"rgb(%d,%d,255)\" stroke=\"#ddd\"><title>%s × %s: %.4g</title></rect>\n"
             x y fc fc shade shade (xml_escape labels.(i)) (xml_escape labels.(j))
             values.(i).(j))
      done
    done;
    (* row labels on the left, column labels rotated on top *)
    Array.iteri
      (fun i label ->
        let l = xml_escape label in
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%d\" y=\"%.1f\" font-size=\"10\" fill=\"#222\" \
              text-anchor=\"end\">%s</text>\n"
             (margin - 6)
             (float_of_int (margin + (i * cell)) +. (fc /. 2.0) +. 3.0)
             l);
        let cx = float_of_int (margin + (i * cell)) +. (fc /. 2.0) in
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%.1f\" y=\"%d\" font-size=\"10\" fill=\"#222\" \
              text-anchor=\"start\" transform=\"rotate(-60 %.1f %d)\">%s</text>\n"
             cx (margin - 6) cx (margin - 6) l))
      labels
  end;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
