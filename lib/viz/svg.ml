module Rect = Geom.Rect
module Point = Geom.Point

type style = {
  fill : string;
  stroke : string;
  opacity : float;
}

let macro_style = { fill = "#5b7aa9"; stroke = "#1f2f4a"; opacity = 0.95 }
let block_style = { fill = "#8fb58f"; stroke = "#2f4a2f"; opacity = 0.55 }
let glue_style = { fill = "#d9d2b8"; stroke = "#8a8468"; opacity = 0.45 }

let palette =
  [| "#5b7aa9"; "#a95b5b"; "#5ba98e"; "#a9885b"; "#8a5ba9"; "#5b9aa9"; "#a95b88";
     "#7ba95b" |]

let header ~w ~h =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n"
    w h w h

let floorplan ~die ~rects ?(arrows = []) ?(size = 640) () =
  let scale = float_of_int size /. die.Rect.w in
  let hpx = int_of_float (die.Rect.h *. scale) in
  let tx x = (x -. die.Rect.x) *. scale in
  let ty y = float_of_int hpx -. ((y -. die.Rect.y) *. scale) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ~w:size ~h:hpx);
  Buffer.add_string buf
    (Printf.sprintf
       "<rect x=\"0\" y=\"0\" width=\"%d\" height=\"%d\" fill=\"#fafafa\" stroke=\"#333\"/>\n"
       size hpx);
  List.iter
    (fun (label, (r : Rect.t), st) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"%s\" \
            stroke=\"%s\" fill-opacity=\"%.2f\"/>\n"
           (tx r.Rect.x)
           (ty (r.Rect.y +. r.Rect.h))
           (r.Rect.w *. scale) (r.Rect.h *. scale) st.fill st.stroke st.opacity);
      if label <> "" then
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" fill=\"#222\" \
              text-anchor=\"middle\">%s</text>\n"
             (tx (r.Rect.x +. (r.Rect.w /. 2.0)))
             (ty (r.Rect.y +. (r.Rect.h /. 2.0)))
             label))
    rects;
  List.iter
    (fun ((a : Point.t), (b : Point.t), w) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#c03030\" \
            stroke-width=\"%.2f\" stroke-opacity=\"0.7\"/>\n"
           (tx a.Point.x) (ty a.Point.y) (tx b.Point.x) (ty b.Point.y)
           (Util.Stat.clamp ~lo:0.5 ~hi:8.0 w)))
    arrows;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let dataflow_diagram ~die ~blocks ~affinity ?(size = 640) () =
  let rects =
    List.mapi
      (fun i (name, r, macro_count) ->
        let base = palette.(i mod Array.length palette) in
        let st =
          if macro_count > 0 then { fill = base; stroke = "#222"; opacity = 0.85 }
          else { glue_style with stroke = "#555" }
        in
        let label = Printf.sprintf "%s (%d)" name macro_count in
        (label, r, st))
      blocks
  in
  let n = List.length blocks in
  let centers = Array.of_list (List.map (fun (_, r, _) -> Rect.center r) blocks) in
  let vmax =
    let m = ref 1e-12 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if affinity.(i).(j) > !m then m := affinity.(i).(j)
      done
    done;
    !m
  in
  let arrows = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = affinity.(i).(j) in
      if a > 0.02 *. vmax then
        arrows := (centers.(i), centers.(j), 8.0 *. a /. vmax) :: !arrows
    done
  done;
  floorplan ~die ~rects ~arrows:!arrows ~size ()

let floorplan_levels ~die ~levels ?(macros = []) ?(size = 320) () =
  let max_depth =
    List.fold_left
      (fun acc (l : Hidap.Floorplan.level_info) -> max acc l.Hidap.Floorplan.depth)
      (-1) levels
  in
  let snapshot depth =
    let rects =
      List.filter_map
        (fun (l : Hidap.Floorplan.level_info) ->
          if l.Hidap.Floorplan.depth = depth then
            Some
              ( (if l.Hidap.Floorplan.macro_count > 0 then
                   string_of_int l.Hidap.Floorplan.macro_count
                 else "c"),
                l.Hidap.Floorplan.rect,
                if l.Hidap.Floorplan.macro_count > 0 then block_style else glue_style )
          else None)
        levels
    in
    (depth, floorplan ~die ~rects ~size ())
  in
  let per_level = List.init (max_depth + 1) snapshot in
  match macros with
  | [] -> per_level
  | _ ->
    let rects = List.map (fun (label, r) -> (label, r, macro_style)) macros in
    per_level @ [ (max_depth + 1, floorplan ~die ~rects ~size ()) ]

let density_heatmap grid ?(size = 512) () =
  let nx = Array.length grid in
  let ny = if nx = 0 then 0 else Array.length grid.(0) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ~w:size ~h:size);
  if nx > 0 && ny > 0 then begin
    let vmax = Array.fold_left (fun acc col -> Array.fold_left max acc col) 1e-12 grid in
    let cw = float_of_int size /. float_of_int nx in
    let ch = float_of_int size /. float_of_int ny in
    for i = 0 to nx - 1 do
      for j = 0 to ny - 1 do
        let v = grid.(i).(j) /. vmax in
        let shade = int_of_float (255.0 *. (1.0 -. (0.92 *. v))) in
        Buffer.add_string buf
          (Printf.sprintf
             "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" \
              fill=\"rgb(%d,%d,%d)\"/>\n"
             (float_of_int i *. cw)
             (float_of_int (ny - 1 - j) *. ch)
             cw ch shade shade 255)
      done
    done
  end;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc
