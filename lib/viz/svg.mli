(** SVG output: floorplans, dataflow diagrams (paper Fig. 9d), density
    heat maps. *)

type style = {
  fill : string;
  stroke : string;
  opacity : float;
}

val macro_style : style
val block_style : style
val glue_style : style

val floorplan :
  die:Geom.Rect.t ->
  rects:(string * Geom.Rect.t * style) list ->
  ?arrows:(Geom.Point.t * Geom.Point.t * float) list ->
  ?size:int ->
  unit ->
  string
(** SVG document with labelled rectangles and optional affinity arrows
    (the third component is the line weight). Y axis is flipped so the
    die's origin is bottom-left, as in the floorplan. *)

val dataflow_diagram :
  die:Geom.Rect.t ->
  blocks:(string * Geom.Rect.t * int) list ->
  affinity:float array array ->
  ?size:int ->
  unit ->
  string
(** The paper's interactive-tool view: one coloured box per Gdf block
    (the int is the macro count; 0 means a std-cell block) and arrows
    whose opacity scales with the pairwise affinity. *)

val floorplan_levels :
  die:Geom.Rect.t ->
  levels:Hidap.Floorplan.level_info list ->
  ?macros:(string * Geom.Rect.t) list ->
  ?size:int ->
  unit ->
  (int * string) list
(** One floorplan SVG per recursion depth of a multi-level run
    ([(depth, svg)], depth 0 first): the block rectangles of that depth,
    labelled with their macro count ("c" for cell-only blocks). When
    [macros] is given, a final snapshot of the placed macros is appended
    at depth [max_depth + 1]. *)

val density_heatmap : float array array -> ?size:int -> unit -> string

val contribution_heatmap :
  labels:string array -> values:float array array -> ?cell:int -> unit -> string
(** Labelled symmetric-matrix heat map: cell [(i, j)] is shaded by
    [values.(i).(j)] normalized to the matrix maximum, with row labels
    on the left, rotated column labels on top and a hover tooltip per
    cell. Used for per-pair affinity wirelength contributions
    (DESIGN.md §13); labels are XML-escaped. [cell] is the cell edge in
    pixels. *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
