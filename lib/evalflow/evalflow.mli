(** The evaluation pipeline shared by all macro-placement flows
    (paper §V).

    For a given macro placement the pipeline places the standard cells
    with the same engine, then measures:
    - WL: total half-perimeter wirelength over all nets (macro pins use
      the flipping pin model, so orientation matters), reported in
      microns and meters;
    - GRC%: RUDY global-routing overflow;
    - WNS% / TNS: static timing on the sequential graph.

    The three flows of the paper are provided: IndEDA (wall-packing
    proxy), HiDaP (this repository's contribution, best wirelength of
    the λ sweep) and handFP (expert-oracle proxy). *)

type flow_kind = IndEDA | HiDaP | HandFP

val flow_name : flow_kind -> string

type metrics = {
  wl_um : float;
  wl_m : float;
  grc_pct : float;
  wns_pct : float;  (** <= 0; percentage of the clock period *)
  tns : float;  (** ps, <= 0 *)
  runtime_s : float;  (** flow runtime (macro placement only) *)
}

type run = {
  kind : flow_kind;
  metrics : metrics;
  macros : Cellplace.macro_place list;
  placement : Cellplace.t;
  lambda_used : float option;  (** HiDaP only *)
  sweep_trace : (float * float) list;
      (** HiDaP only: every (λ, objective) of the sweep, losing runs
          included ([] for the other flows) *)
}

val measure :
  flat:Netlist.Flat.t ->
  gseq:Seqgraph.t ->
  ports:Hidap.Port_plan.t ->
  die:Geom.Rect.t ->
  macros:Cellplace.macro_place list ->
  metrics * Cellplace.t
(** Runtime field is 0; the flow runners fill it in. *)

val run_flow :
  flow_kind ->
  ?config:Hidap.Config.t ->
  flat:Netlist.Flat.t ->
  gseq:Seqgraph.t ->
  ports:Hidap.Port_plan.t ->
  die:Geom.Rect.t ->
  unit ->
  run

type circuit_result = {
  circuit : string;
  cells : int;
  macro_count : int;
  runs : run list;  (** IndEDA, HiDaP, handFP order *)
}

val run_all :
  ?config:Hidap.Config.t -> name:string -> Netlist.Design.t -> circuit_result
(** Elaborates the design once and runs the three flows on the same die
    with the same port plan. *)

val normalized_wl : circuit_result -> flow_kind -> float
(** WL relative to the handFP run of the same circuit. *)

val density_map : run -> flat:Netlist.Flat.t -> bins:int -> float array array

val macro_displacement : run -> run -> float
(** Mean distance between the two runs' centres of the same macro
    (macros present in only one run are skipped; 0 when none match).
    Used by the QoR ledger to report how far a flow's placement sits
    from the baseline flows'. *)
