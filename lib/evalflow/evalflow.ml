module Flat = Netlist.Flat
module Rect = Geom.Rect
module Point = Geom.Point

type flow_kind = IndEDA | HiDaP | HandFP

let flow_name = function IndEDA -> "IndEDA" | HiDaP -> "HiDaP" | HandFP -> "handFP"

type metrics = {
  wl_um : float;
  wl_m : float;
  grc_pct : float;
  wns_pct : float;
  tns : float;
  runtime_s : float;
}

type run = {
  kind : flow_kind;
  metrics : metrics;
  macros : Cellplace.macro_place list;
  placement : Cellplace.t;
  lambda_used : float option;
  sweep_trace : (float * float) list;
}

(* Total HPWL with macro pins resolved through the flipping pin model. *)
let total_wirelength ~flat ~(cp : Cellplace.t) ~macros =
  let macro_tbl = Hashtbl.create 64 in
  List.iter
    (fun (m : Cellplace.macro_place) -> Hashtbl.replace macro_tbl m.Cellplace.fid m)
    macros;
  let pin_pos fid ~dir =
    match Hashtbl.find_opt macro_tbl fid with
    | Some m ->
      Hidap.Flipping.pin_position ~rect:m.Cellplace.rect ~orient:m.Cellplace.orient ~dir
    | None -> cp.Cellplace.positions.(fid)
  in
  let acc = ref 0.0 in
  Array.iter
    (fun (drivers, sinks) ->
      let pins =
        Array.append
          (Array.map (fun fid -> pin_pos fid ~dir:`Out) drivers)
          (Array.map (fun fid -> pin_pos fid ~dir:`In) sinks)
      in
      acc := !acc +. Geom.Wirelength.hpwl_array pins)
    flat.Flat.net_pins;
  !acc

(* Gseq node positions for timing: macros at their pin centres, ports on
   the boundary, register arrays at the mean of their placed members. *)
let gseq_positions ~flat ~gseq ~ports ~(cp : Cellplace.t) ~die =
  ignore flat;
  let n = Seqgraph.node_count gseq in
  let pos = Array.make n (Rect.center die) in
  Array.iteri
    (fun gid (nd : Seqgraph.node) ->
      match nd.Seqgraph.kind with
      | Seqgraph.Macro fid -> pos.(gid) <- cp.Cellplace.positions.(fid)
      | Seqgraph.Port _ ->
        (match Hidap.Port_plan.gseq_pos ports gid with
        | Some p -> pos.(gid) <- p
        | None -> ())
      | Seqgraph.Register members ->
        (match members with
        | [] -> ()
        | _ ->
          let k = float_of_int (List.length members) in
          let sx = List.fold_left (fun a fid -> a +. (cp.Cellplace.positions.(fid)).Point.x) 0.0 members in
          let sy = List.fold_left (fun a fid -> a +. (cp.Cellplace.positions.(fid)).Point.y) 0.0 members in
          pos.(gid) <- Point.make (sx /. k) (sy /. k)))
    gseq.Seqgraph.nodes;
  pos

let measure_body ~flat ~gseq ~ports ~die ~macros =
  let cp =
    Cellplace.run ~flat ~macros
      ~port_pos:(fun fid -> Hidap.Port_plan.flat_pos ports fid)
      ~die ()
  in
  let wl_um = total_wirelength ~flat ~cp ~macros in
  let macro_rects = List.map (fun (m : Cellplace.macro_place) -> m.Cellplace.rect) macros in
  let cong =
    Congestion.estimate ~flat ~positions:cp.Cellplace.positions ~die ~macros:macro_rects ()
  in
  let pos = gseq_positions ~flat ~gseq ~ports ~cp ~die in
  let timing = Sta.analyze ~gseq ~node_pos:(fun gid -> pos.(gid)) ~die () in
  ( { wl_um;
      wl_m = wl_um *. 1e-6;
      grc_pct = cong.Congestion.overflow_pct;
      wns_pct = timing.Sta.wns_pct;
      tns = timing.Sta.tns;
      runtime_s = 0.0 },
    cp )

let measure ~flat ~gseq ~ports ~die ~macros =
  Obs.Span.with_ ~name:"evalflow.measure" (fun () ->
      measure_body ~flat ~gseq ~ports ~die ~macros)

let to_cp_macros placements =
  List.map
    (fun (p : Hidap.macro_placement) ->
      { Cellplace.fid = p.Hidap.fid; rect = p.Hidap.rect; orient = p.Hidap.orient })
    placements

let run_flow_body kind ~config ~flat ~gseq ~ports ~die =
  let t0 = Obs.Clock.now_s () in
  let macros, lambda_used, sweep_trace =
    match kind with
    | IndEDA ->
      let pl = Baselines.Indeda.place ~flat ~gseq ~die () in
      ( List.map
          (fun (p : Baselines.Indeda.placement) ->
            { Cellplace.fid = p.Baselines.Indeda.fid; rect = p.Baselines.Indeda.rect;
              orient = p.Baselines.Indeda.orient })
          pl,
        None,
        [] )
    | HandFP ->
      (* The expert-oracle protocol: engineers iterate for weeks against
         the real metric. Modelled as a multi-start search judged by the
         measured wirelength: a flat annealing candidate plus
         differently-seeded multi-level sweeps. Seeds differ from the
         HiDaP flow's, so HiDaP can occasionally win (as in the paper's
         c3 and c8). *)
      let flat_sa =
        List.map
          (fun (p : Baselines.Handfp.placement) ->
            { Cellplace.fid = p.Baselines.Handfp.fid; rect = p.Baselines.Handfp.rect;
              orient = p.Baselines.Handfp.orient })
          (Baselines.Handfp.place ~flat ~gseq ~ports ~die ())
      in
      let objective r =
        let m, _ = measure ~flat ~gseq ~ports ~die ~macros:(to_cp_macros r.Hidap.placements) in
        m.wl_um
      in
      let reseeded offset =
        let config = { config with Hidap.Config.seed = config.Hidap.Config.seed + offset } in
        let sw = Hidap.place_sweep ~config ~die ~objective flat in
        (to_cp_macros sw.Hidap.best.Hidap.placements, sw.Hidap.best_objective)
      in
      let candidates =
        (let m, _ = measure ~flat ~gseq ~ports ~die ~macros:flat_sa in
         (flat_sa, m.wl_um))
        :: List.map reseeded [ 11; 23 ]
      in
      let best =
        List.fold_left
          (fun (bm, bw) (m, w) -> if w < bw then (m, w) else (bm, bw))
          (List.hd candidates) (List.tl candidates)
      in
      (fst best, None, [])
    | HiDaP ->
      let objective r =
        let m, _ = measure ~flat ~gseq ~ports ~die ~macros:(to_cp_macros r.Hidap.placements) in
        m.wl_um
      in
      let sw = Hidap.place_sweep ~config ~die ~objective flat in
      ( to_cp_macros sw.Hidap.best.Hidap.placements,
        Some sw.Hidap.best.Hidap.lambda,
        sw.Hidap.sweep_trace )
  in
  let runtime_s = Obs.Clock.now_s () -. t0 in
  let metrics, cp = measure ~flat ~gseq ~ports ~die ~macros in
  Obs.Metrics.gauge
    (Printf.sprintf "evalflow.%s.wl_um" (flow_name kind))
    metrics.wl_um;
  Obs.Metrics.gauge
    (Printf.sprintf "evalflow.%s.runtime_s" (flow_name kind))
    runtime_s;
  if Obs.Metrics.enabled () then
    Obs.Gcstats.record
      ~prefix:(Printf.sprintf "gc.%s" (flow_name kind))
      Obs.Metrics.global (Obs.Gcstats.snapshot ());
  { kind;
    metrics = { metrics with runtime_s };
    macros;
    placement = cp;
    lambda_used;
    sweep_trace }

let run_flow kind ?(config = Hidap.Config.default) ~flat ~gseq ~ports ~die () =
  Obs.Span.with_ ~name:"evalflow.flow" (fun () ->
      Obs.Span.attr_str "flow" (flow_name kind);
      run_flow_body kind ~config ~flat ~gseq ~ports ~die)

type circuit_result = {
  circuit : string;
  cells : int;
  macro_count : int;
  runs : run list;
}

let run_all ?(config = Hidap.Config.default) ~name design =
  let flat = Flat.elaborate design in
  let gseq = Seqgraph.build ~bit_threshold:config.Hidap.Config.bit_threshold flat in
  let die = Hidap.die_for flat ~config in
  let ports = Hidap.Port_plan.make gseq ~die in
  let runs =
    List.map
      (fun kind -> run_flow kind ~config ~flat ~gseq ~ports ~die ())
      [ IndEDA; HiDaP; HandFP ]
  in
  { circuit = name;
    cells = Flat.cell_count flat;
    macro_count = Flat.macro_count flat;
    runs }

let normalized_wl result kind =
  let wl k =
    match List.find_opt (fun r -> r.kind = k) result.runs with
    | Some r -> r.metrics.wl_um
    | None -> invalid_arg "normalized_wl: missing flow"
  in
  wl kind /. wl HandFP

let density_map run ~flat ~bins =
  Cellplace.density_map run.placement ~flat ~macros:run.macros ~bins

let macro_displacement a b =
  let centers ms =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun (m : Cellplace.macro_place) ->
        Hashtbl.replace tbl m.Cellplace.fid (Rect.center m.Cellplace.rect))
      ms;
    tbl
  in
  let ca = centers a.macros and cb = centers b.macros in
  let total = ref 0.0 and n = ref 0 in
  Hashtbl.iter
    (fun fid pa ->
      match Hashtbl.find_opt cb fid with
      | Some pb ->
        total := !total +. Point.euclidean pa pb;
        incr n
      | None -> ())
    ca;
  if !n = 0 then 0.0 else !total /. float_of_int !n
