(** Per-stage wall-clock budgets.

    A budget bounds how long a flow stage may run before it degrades.
    Stages poll {!check} from their inner loops (the SA cost function,
    the flipping macro loop, the cell-placement sweeps); the first poll
    of a stage starts its clock, and a poll past the deadline raises
    {!Exceeded}, which the stage's supervisor wrapper converts into its
    fallback plus a recorded degradation.

    Polling is lock-free and, with no budgets configured (the default),
    a single atomic load — placements are bit-identical whether or not
    budgets are armed, as long as none expires. Deadlines are published
    once and shared across worker domains, so every annealing start of
    a stage observes the same deadline. *)

exception Exceeded of { stage : string; budget_s : float }

exception Deadline of { deadline_s : float }
(** A whole-run deadline expired. Unlike {!Exceeded} this is {e not}
    degradable: {!Supervisor.recoverable} answers false, so the
    exception propagates out of the flow and the caller (the serve
    worker) records the job as timed-out. *)

exception Cancelled of { stage : string }
(** The run was asked to stop cooperatively ({!request_cancel}); raised
    by the next {!check} poll of any stage. Non-degradable like
    {!Deadline}: it unwinds the flow so the caller can checkpoint and
    park. *)

val configure : (string * float) list -> unit
(** Install [(stage, seconds)] budgets, clearing previous deadlines.
    Stages without an entry are unlimited. Call on the main domain
    before the flow starts. *)

val clear : unit -> unit

val budgets : unit -> (string * float) list

val check : stage:string -> unit
(** Start [stage]'s clock on first call; raise {!Exceeded} when the
    stage has been running longer than its budget. No-op for stages
    without a budget. Every poll additionally honors the whole-run
    controls: it raises {!Cancelled} when a cancel was requested and
    {!Deadline} when the armed run deadline has passed (cancellation
    outranks the deadline). With neither armed the extra cost is two
    atomic loads. *)

(** {1 Whole-run controls}

    Shared by every stage of the running flow. [hidap serve] arms a
    deadline per job attempt and requests cancellation to park the
    in-flight job on drain; a checkpointed [hidap place] requests
    cancellation from its SIGINT/SIGTERM handler. Single global cells:
    one flow at a time (the serve engine serializes job execution). *)

val set_deadline : float -> unit
(** Arm a run deadline [seconds] from now. *)

val clear_deadline : unit -> unit

val deadline : unit -> float option
(** The armed deadline's original duration, if any. *)

val request_cancel : unit -> unit
(** Ask the running flow to stop at its next budget poll. *)

val cancel_requested : unit -> bool

val clear_cancel : unit -> unit

val parse : string -> ((string * float) list, string) result
(** Parse a comma-separated [stage=SECONDS] list (the [--budget] CLI
    flag and the [HIDAP_BUDGET] environment variable). *)

val of_env : unit -> ((string * float) list, string) result
(** Budgets from [HIDAP_BUDGET]; [Ok []] when unset or empty. *)
