(** Per-stage wall-clock budgets.

    A budget bounds how long a flow stage may run before it degrades.
    Stages poll {!check} from their inner loops (the SA cost function,
    the flipping macro loop, the cell-placement sweeps); the first poll
    of a stage starts its clock, and a poll past the deadline raises
    {!Exceeded}, which the stage's supervisor wrapper converts into its
    fallback plus a recorded degradation.

    Polling is lock-free and, with no budgets configured (the default),
    a single atomic load — placements are bit-identical whether or not
    budgets are armed, as long as none expires. Deadlines are published
    once and shared across worker domains, so every annealing start of
    a stage observes the same deadline. *)

exception Exceeded of { stage : string; budget_s : float }

val configure : (string * float) list -> unit
(** Install [(stage, seconds)] budgets, clearing previous deadlines.
    Stages without an entry are unlimited. Call on the main domain
    before the flow starts. *)

val clear : unit -> unit

val budgets : unit -> (string * float) list

val check : stage:string -> unit
(** Start [stage]'s clock on first call; raise {!Exceeded} when the
    stage has been running longer than its budget. No-op for stages
    without a budget. *)

val parse : string -> ((string * float) list, string) result
(** Parse a comma-separated [stage=SECONDS] list (the [--budget] CLI
    flag and the [HIDAP_BUDGET] environment variable). *)

val of_env : unit -> ((string * float) list, string) result
(** Budgets from [HIDAP_BUDGET]; [Ok []] when unset or empty. *)
