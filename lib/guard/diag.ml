type severity = Info | Warning | Error

type loc = { file : string option; line : int; col : int }

type t = {
  code : string;
  severity : severity;
  stage : string;
  loc : loc option;
  message : string;
}

exception Fail of t

(* Registry of every stable code: (code, severity discipline, meaning).
   This is the single source of truth — `hidap check --list-codes`
   prints it and CI asserts the DESIGN.md section 10 table matches, so
   the docs cannot drift from the implementation. Keep entries in the
   order the pipeline can emit them (validation, elaboration, flow,
   checkpointing). *)
let codes =
  [ ("dup-module", "warning (repaired: later duplicate dropped)",
     "two module definitions share a name");
    ("dup-port", "warning (repaired: duplicate dropped)",
     "duplicate port declaration in a module");
    ("dup-cell", "warning (repaired: duplicate dropped)",
     "duplicate leaf-cell name in a module");
    ("dup-binding", "warning (repaired: duplicate dropped)",
     "instance binds the same formal port twice");
    ("dangling-binding", "warning (repaired: binding dropped)",
     "instance binds a port the target module does not declare");
    ("bad-area", "warning (repaired: default area restored); error post-elaboration",
     "non-finite or non-positive cell area");
    ("bad-footprint", "error",
     "non-finite or non-positive macro footprint (not repairable)");
    ("missing-module", "error", "instantiated module has no definition");
    ("recursive-module", "error",
     "module instantiates itself (directly or transitively)");
    ("macro-exceeds-die", "warning",
     "a macro is larger than the die in both orientations");
    ("bad-die", "error", "degenerate die rectangle");
    ("non-finite-cost", "error",
     "a floorplan candidate evaluated to NaN/inf cost (caught before SA acceptance, \
      where `NaN < x` would silently reject forever)");
    ("bad-leaf-table", "error",
     "a floorplan instance's leaf lids are not exactly 0..n-1 (duplicate or \
      out-of-range lid), or an expression operand references a missing leaf");
    ("asymmetric-affinity", "error",
     "the affinity matrix disagrees across the diagonal (or holds NaN); the \
      pair scan reads only the upper triangle, so asymmetric weight would be \
      silently dropped");
    ("bad-sa-acceptance", "error",
     "annealing initial_acceptance outside (0, 1): temperature calibration \
      would divide by log(target) = 0 (silent quench) or produce NaN/negative \
      temperatures");
    ("ckpt-io", "error",
     "checkpoint directory cannot be created, opened or written");
    ("ckpt-mismatch", "error",
     "the resumed snapshot was written by a different run (circuit, seed, lambda, \
      sa_starts or netlist size differ)");
    ("bad-output-path", "error",
     "a telemetry output path (--trace, --metrics, --qor, --profile-out, \
      --perf-out, --progress-file) cannot be opened for writing; checked before \
      the run starts so a long run never silently loses its telemetry");
    ("serve-socket-busy", "error",
     "hidap serve found a live daemon answering on its socket path and refuses \
      to steal it (a dead leftover socket is probed, unlinked and reused)");
    ("serve-worker-lost", "warning (job retried within its retry budget)",
     "a worker process died without a classified exit (killed, crashed, or \
      watchdog-SIGKILLed for silence); the job's checkpoint store makes the \
      retry resume bit-identically");
    ("serve-rlimit", "error",
     "a worker exhausted its per-job resource limit (--job-mem-mb address \
      space or --job-cpu-s CPU time); deterministic exhaustion, so the job \
      fails without retry") ]

let make ~code ~severity ~stage ?loc message = { code; severity; stage; loc; message }

let error ~code ~stage ?loc message = make ~code ~severity:Error ~stage ?loc message

let warning ~code ~stage ?loc message = make ~code ~severity:Warning ~stage ?loc message

let fail ~code ~stage ?loc message = raise (Fail (error ~code ~stage ?loc message))

let escalate t = match t.severity with Warning -> { t with severity = Error } | _ -> t

let is_error t = t.severity = Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let pp ppf t =
  (match t.loc with
  | Some { file; line; col } ->
    (match file with Some f -> Format.fprintf ppf "%s:" f | None -> ());
    if line > 0 then Format.fprintf ppf "%d:" line;
    if col > 0 then Format.fprintf ppf "%d:" col;
    Format.pp_print_char ppf ' '
  | None -> ());
  Format.fprintf ppf "%s[%s] (%s): %s"
    (severity_to_string t.severity)
    t.code t.stage t.message

let to_string t = Format.asprintf "%a" pp t

let to_json t =
  let loc_json =
    match t.loc with
    | None -> Obs.Jsonx.Null
    | Some { file; line; col } ->
      Obs.Jsonx.Obj
        [ ("file", (match file with Some f -> Obs.Jsonx.String f | None -> Obs.Jsonx.Null));
          ("line", Obs.Jsonx.Int line);
          ("col", Obs.Jsonx.Int col) ]
  in
  Obs.Jsonx.Obj
    [ ("code", Obs.Jsonx.String t.code);
      ("severity", Obs.Jsonx.String (severity_to_string t.severity));
      ("stage", Obs.Jsonx.String t.stage);
      ("loc", loc_json);
      ("message", Obs.Jsonx.String t.message) ]

(* Register a printer so an escaped Fail still renders readably in a
   backtrace instead of an opaque constructor dump. *)
let () =
  Printexc.register_printer (function
    | Fail d -> Some (Printf.sprintf "Guard.Diag.Fail(%s)" (to_string d))
    | _ -> None)
