type action = Raise | Stall of float

type spec = { site : string; nth : int; action : action }

exception Injected of { site : string; hit : int }

(* Registry of every site the flow declares with [hit]. Names are
   stage-scoped so the CLI / CI can iterate them; each entry documents
   the degradation its fallback applies. *)
let sites =
  [ ( "floorplan.sa",
      "annealing start fails; the instance keeps the affinity-greedy chain layout" );
    ( "floorplan.affinity",
      "dataflow affinity unavailable; the instance is laid out area-only" );
    ("flipping.run", "macro flipping fails; base orientations are kept");
    ("cellplace.run", "cell placement fails; centroid-seeded positions are kept");
    ( "ckpt_write",
      "checkpoint snapshot write fails; the run continues without that snapshot" );
    ( "ckpt_load_corrupt",
      "resume finds the latest snapshot torn (bytes flipped, tail truncated); the \
       store rolls back to the most recent valid snapshot" );
    ( "serve.accept",
      "a client connection fails to accept; the daemon logs and keeps serving" );
    ( "serve.write",
      "a client response write fails; the connection is dropped, the job continues" );
    ( "serve.worker",
      "a job attempt dies at start; the job retries with capped backoff up to its \
       retry limit" );
    ( "serve.worker_kill",
      "the worker process SIGKILLs itself mid-job; the daemon classifies the \
       signaled exit as worker-lost and retries within the job's retry budget" );
    ( "serve.worker_hang",
      "the worker process stalls before emitting any progress; the hung-job \
       watchdog SIGKILLs it and the job retries" ) ]

let known name = List.mem_assoc name sites

(* Armed state: immutable spec array plus one atomic hit counter per
   spec, published together so workers always see a consistent pair. *)
type armed_state = { specs : spec array; counts : int Atomic.t array }

let state : armed_state option Atomic.t = Atomic.make None

let arm specs =
  let specs = Array.of_list specs in
  let counts = Array.map (fun _ -> Atomic.make 0) specs in
  Atomic.set state (Some { specs; counts })

let disarm () = Atomic.set state None

let armed () =
  match Atomic.get state with
  | None -> []
  | Some { specs; _ } -> Array.to_list specs

let hit site =
  match Atomic.get state with
  | None -> ()
  | Some { specs; counts } ->
    Array.iteri
      (fun i spec ->
        if spec.site = site then begin
          let n = Atomic.fetch_and_add counts.(i) 1 + 1 in
          if n >= spec.nth then
            match spec.action with
            | Raise -> raise (Injected { site; hit = n })
            | Stall s -> Unix.sleepf s
        end)
      specs

let spec_to_string { site; nth; action } =
  let nth_part = if nth = 1 then "" else Printf.sprintf ":%d" nth in
  let action_part =
    match action with Raise -> "" | Stall s -> Printf.sprintf ":stall=%g" s
  in
  site ^ nth_part ^ action_part

let parse_one s =
  match String.split_on_char ':' (String.trim s) with
  | [] | [ "" ] -> Error "empty fault spec"
  | site :: rest ->
    if not (known site) then
      Error
        (Printf.sprintf "unknown fault site %S (known: %s)" site
           (String.concat ", " (List.map fst sites)))
    else
      let rec opts nth action = function
        | [] -> Ok { site; nth; action }
        | part :: rest ->
          (match String.index_opt part '=' with
          | Some i when String.sub part 0 i = "stall" ->
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            (match float_of_string_opt v with
            | Some s when s >= 0.0 -> opts nth (Stall s) rest
            | Some _ | None ->
              Error (Printf.sprintf "bad stall duration %S in fault spec %S" v site))
          | _ ->
            (match int_of_string_opt part with
            | Some n when n >= 1 -> opts n action rest
            | Some _ | None ->
              Error (Printf.sprintf "bad hit count %S in fault spec %S" part site)))
      in
      opts 1 Raise rest

let parse s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  List.fold_left
    (fun acc p ->
      match acc with
      | Error _ as e -> e
      | Ok specs -> (match parse_one p with Ok sp -> Ok (specs @ [ sp ]) | Error _ as e -> e))
    (Ok []) parts

let of_env () =
  match Sys.getenv_opt "HIDAP_FAULT" with
  | None | Some "" -> Ok []
  | Some v -> parse v

let () =
  Printexc.register_printer (function
    | Injected { site; hit } ->
      Some (Printf.sprintf "Guard.Fault.Injected(site=%s, hit=%d)" site hit)
    | _ -> None)
