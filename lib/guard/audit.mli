(** Post-placement legality audit.

    Verifies the invariants a macro placement must satisfy before it is
    worth anything downstream: every placed id is a macro placed once,
    coordinates are finite, macros lie inside the die, no two macros
    overlap, and each placed rectangle is consistent with the macro's
    library footprint under its reported orientation (dimension-swapping
    orientations swap width and height — the pin-frame rules the
    flipping stage relies on).

    The audit is pure and cheap (O(n^2) on the macro count); [hidap
    place] runs it on every placement and exits non-zero with a
    distinct code when it fails. *)

type violation = {
  kind : string;
      (** ["not-a-macro"] | ["duplicate"] | ["non-finite"] |
          ["out-of-die"] | ["overlap"] | ["footprint"] *)
  subject : string;  (** macro path *)
  other : string option;  (** second macro for pairwise violations *)
  amount : float;  (** overlap area / out-of-die distance / size delta *)
  detail : string;
}

type report = {
  total_macros : int;  (** macros in the netlist *)
  placed : int;  (** placements audited *)
  violations : violation list;
  overlap_area : float;  (** total pairwise overlap *)
}

val run :
  flat:Netlist.Flat.t ->
  die:Geom.Rect.t ->
  placements:(int * Geom.Rect.t * Geom.Orientation.t) list ->
  report
(** Violations come out sorted by (kind, subject, other), so reports
    are deterministic and diffable. *)

val ok : report -> bool

val to_json : report -> Obs.Jsonx.t

val pp_summary : Format.formatter -> report -> unit
(** One line when clean; one line per violation otherwise. *)
