(** Design validator: reject or repair malformed inputs after parsing.

    [design] checks a parsed {!Netlist.Design.t} before elaboration and
    either repairs what it safely can — dropping dangling instance
    bindings, duplicate modules/cells/ports/bindings, clamping
    non-finite or negative cell areas back to their defaults — or
    rejects the design with error diagnostics (missing modules,
    recursive instantiation, non-finite macro footprints).

    [flat] checks the elaborated netlist against the die: macros larger
    than the die (either orientation) and degenerate total area are
    diagnosed as warnings.

    With [strict], every warning escalates to an error, so a design
    that parses but needed repair is rejected instead of silently
    fixed. Diagnostic codes are listed in DESIGN.md section 10. *)

type repaired = {
  design : Netlist.Design.t;
      (** physically equal to the input when [repairs = 0] *)
  diags : Diag.t list;  (** in detection order *)
  repairs : int;
}

val design :
  ?strict:bool -> Netlist.Design.t -> (repaired, Diag.t list) result
(** [Error diags] contains every diagnostic of the run (errors and
    warnings), with at least one error. *)

val flat : ?strict:bool -> die:Geom.Rect.t -> Netlist.Flat.t -> Diag.t list
(** Die-aware checks on the elaborated netlist; diagnostics already
    carry their escalated severity under [strict]. *)

val errors : Diag.t list -> Diag.t list
(** The error-severity subset. *)
