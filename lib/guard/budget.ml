exception Exceeded of { stage : string; budget_s : float }

exception Deadline of { deadline_s : float }

exception Cancelled of { stage : string }

(* One cell per configured stage; the deadline is CAS-published by the
   first poll so every domain races to the same value (the winner's
   timestamp is the stage start for everyone). *)
type cell = { stage : string; budget_s : float; deadline : float Atomic.t }

let cells : cell array Atomic.t = Atomic.make [||]

(* Whole-run controls, polled by every [check] regardless of stage:
   an absolute run deadline ([hidap serve] per-job deadlines) and a
   cooperative cancellation flag (daemon drain, SIGINT/SIGTERM on a
   checkpointed [place]). Both are single atomics so the unarmed cost
   per poll is two plain loads. *)
type run_deadline = { abs : float; deadline_s : float }

let deadline_cell : run_deadline option Atomic.t = Atomic.make None

let cancel_cell = Atomic.make false

let set_deadline seconds =
  Atomic.set deadline_cell
    (Some { abs = Obs.Clock.now_s () +. seconds; deadline_s = seconds })

let clear_deadline () = Atomic.set deadline_cell None

let deadline () =
  match Atomic.get deadline_cell with
  | None -> None
  | Some { deadline_s; _ } -> Some deadline_s

let request_cancel () = Atomic.set cancel_cell true

let cancel_requested () = Atomic.get cancel_cell

let clear_cancel () = Atomic.set cancel_cell false

let configure budgets =
  Atomic.set cells
    (Array.of_list
       (List.map
          (fun (stage, budget_s) -> { stage; budget_s; deadline = Atomic.make nan })
          budgets))

let clear () = Atomic.set cells [||]

let budgets () =
  Array.to_list (Array.map (fun c -> (c.stage, c.budget_s)) (Atomic.get cells))

let check ~stage =
  (* Cancellation outranks the deadline, which outranks stage budgets:
     a drain must park the job even when the deadline also passed. *)
  if Atomic.get cancel_cell then raise (Cancelled { stage });
  (match Atomic.get deadline_cell with
  | Some { abs; deadline_s } when Obs.Clock.now_s () > abs ->
    raise (Deadline { deadline_s })
  | Some _ | None -> ());
  let arr = Atomic.get cells in
  for i = 0 to Array.length arr - 1 do
    let c = arr.(i) in
    if c.stage = stage then begin
      (* Monotonic read: a wall-clock step backwards must not extend a
         stage budget (and a step forward must not cut it short). *)
      let now = Obs.Clock.now_s () in
      let dl = Atomic.get c.deadline in
      if Float.is_nan dl then
        (* First poll of the stage: publish the deadline. On a CAS race
           the earliest published value wins for every domain. *)
        ignore (Atomic.compare_and_set c.deadline dl (now +. c.budget_s))
      else if now > dl then raise (Exceeded { stage; budget_s = c.budget_s })
    end
  done

let parse s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  List.fold_left
    (fun acc p ->
      match acc with
      | Error _ as e -> e
      | Ok budgets ->
        (match String.index_opt p '=' with
        | None -> Error (Printf.sprintf "bad budget %S (expected stage=SECONDS)" p)
        | Some i ->
          let stage = String.sub p 0 i in
          let v = String.sub p (i + 1) (String.length p - i - 1) in
          (match float_of_string_opt v with
          | Some s when s >= 0.0 && Float.is_finite s -> Ok (budgets @ [ (stage, s) ])
          | Some _ | None ->
            Error (Printf.sprintf "bad budget duration %S for stage %S" v stage))))
    (Ok []) parts

let of_env () =
  match Sys.getenv_opt "HIDAP_BUDGET" with
  | None | Some "" -> Ok []
  | Some v -> parse v

let () =
  Printexc.register_printer (function
    | Exceeded { stage; budget_s } ->
      Some (Printf.sprintf "Guard.Budget.Exceeded(stage=%s, budget=%gs)" stage budget_s)
    | Deadline { deadline_s } ->
      Some (Printf.sprintf "Guard.Budget.Deadline(deadline=%gs)" deadline_s)
    | Cancelled { stage } ->
      Some (Printf.sprintf "Guard.Budget.Cancelled(stage=%s)" stage)
    | _ -> None)
