(** Structured diagnostics.

    Every user-facing failure in the flow is a diagnostic: a stable
    [code] (listed in DESIGN.md section 10), a severity, the flow stage
    that produced it, an optional source location, and a message.
    Diagnostics replace ad-hoc [failwith] in the parsing, validation and
    placement layers: library code raises {!Fail} with a diagnostic and
    the CLI turns it into a [file:line:col: message] report plus a
    distinct exit code, instead of an uncaught-exception dump. *)

type severity = Info | Warning | Error

type loc = {
  file : string option;
  line : int;  (** 1-based; 0 when unknown *)
  col : int;  (** 1-based; 0 when unknown *)
}

type t = {
  code : string;  (** stable kebab-case identifier, e.g. ["bad-area"] *)
  severity : severity;
  stage : string;  (** flow stage, e.g. ["validate"], ["floorplan"] *)
  loc : loc option;
  message : string;
}

val codes : (string * string * string) list
(** Every registered code as [(code, severity discipline, meaning)] —
    the table `hidap check --list-codes` prints, and the source the
    DESIGN.md section 10 table is generated from (CI asserts they
    match). *)

exception Fail of t
(** Raised by library code for an unrecoverable, already-diagnosed
    failure. The supervisor never converts a [Fail] into a degradation:
    it is a verdict, not a fault. *)

val make :
  code:string -> severity:severity -> stage:string -> ?loc:loc -> string -> t

val error : code:string -> stage:string -> ?loc:loc -> string -> t

val warning : code:string -> stage:string -> ?loc:loc -> string -> t

val fail : code:string -> stage:string -> ?loc:loc -> string -> 'a
(** [fail ~code ~stage msg] raises {!Fail} with an [Error] diagnostic. *)

val escalate : t -> t
(** Warning -> Error (strict mode); other severities unchanged. *)

val is_error : t -> bool

val severity_to_string : severity -> string

val pp : Format.formatter -> t -> unit
(** [file:line:col: severity[code] (stage): message]; location parts are
    omitted when unknown. *)

val to_string : t -> string

val to_json : t -> Obs.Jsonx.t
