(** Deterministic fault injection.

    The flow declares named {e injection sites} at the points whose
    failure paths must stay exercised (see {!sites} for the registry).
    Arming a site makes {!hit} raise {!Injected} (or stall) when
    execution reaches it, so every supervisor fallback can be driven
    from tests and CI without contriving real failures.

    Specs come from the [HIDAP_FAULT] environment variable or
    [Config.faults]; the syntax is [site[:N][:stall=SECONDS]]:

    - [site] — raise {!Injected} at every hit of [site];
    - [site:3] — raise from the 3rd hit on (1-based, counted globally
      across domains);
    - [site:stall=0.2] — sleep 0.2 s at each hit instead of raising
      (drives real wall-clock budget overruns deterministically).

    Multiple specs are comma-separated. With the default [N = 1] the
    site fires at {e every} hit, so the observed failure is
    schedule-independent even when the site sits inside parallel worker
    tasks: all tasks raise, and {!Parexec.map} propagates the
    lowest-index one. An [N > 1] skip count is honored with a single
    atomic counter shared across domains; under parallelism the skipped
    hits are whichever arrive first, so use it only in sequential
    sections (or with jobs = 1). *)

type action =
  | Raise
  | Stall of float  (** seconds slept at each triggering hit *)

type spec = {
  site : string;
  nth : int;  (** fire on hit number >= [nth]; 1 fires always *)
  action : action;
}

exception Injected of { site : string; hit : int }
(** The exception raised at a triggering hit of an armed [Raise] site. *)

val sites : (string * string) list
(** The registered injection sites, [(name, what the fallback does)].
    Arming an unknown site is a usage error; {!hit} with an unregistered
    name is a programming error caught by the tests. *)

val known : string -> bool

val parse : string -> (spec list, string) result
(** Parse a comma-separated [HIDAP_FAULT] value. Unknown sites, bad
    counts and bad stall durations are reported, not ignored. *)

val of_env : unit -> (spec list, string) result
(** Specs from [HIDAP_FAULT]; [Ok []] when unset or empty. *)

val arm : spec list -> unit
(** Install the specs (resetting all hit counters). Call once per run,
    on the main domain, before the flow starts. *)

val disarm : unit -> unit
(** Remove all specs and counters. *)

val armed : unit -> spec list

val hit : string -> unit
(** Mark execution reaching [site]. No-op (one atomic load) when
    nothing is armed for the site; raises {!Injected} or stalls when a
    matching armed spec triggers. Safe to call from worker domains. *)

val spec_to_string : spec -> string
