module Flat = Netlist.Flat
module Rect = Geom.Rect
module Orientation = Geom.Orientation

type violation = {
  kind : string;
  subject : string;
  other : string option;
  amount : float;
  detail : string;
}

type report = {
  total_macros : int;
  placed : int;
  violations : violation list;
  overlap_area : float;
}

(* Overlaps below this share of the smaller macro's area are numerical
   noise, not legality violations. *)
let overlap_rel_eps = 1e-9

(* Footprint dimensions may differ from the library by floating-point
   slack only. *)
let dim_rel_eps = 1e-6

let finite_rect (r : Rect.t) =
  Float.is_finite r.Rect.x && Float.is_finite r.Rect.y && Float.is_finite r.Rect.w
  && Float.is_finite r.Rect.h

let run ~flat ~die ~placements =
  let violations = ref [] in
  let push v = violations := v :: !violations in
  let name fid =
    if fid >= 0 && fid < Array.length flat.Flat.nodes then
      flat.Flat.nodes.(fid).Flat.path
    else Printf.sprintf "<fid %d>" fid
  in
  let seen = Hashtbl.create 64 in
  let audited = ref [] in
  List.iter
    (fun (fid, rect, orient) ->
      let subject = name fid in
      let macro_info =
        if fid < 0 || fid >= Array.length flat.Flat.nodes then None
        else
          match flat.Flat.nodes.(fid).Flat.kind with
          | Flat.Kmacro info -> Some info
          | Flat.Kflop | Flat.Kcomb | Flat.Kport _ -> None
      in
      (match macro_info with
      | None ->
        push
          { kind = "not-a-macro"; subject; other = None; amount = 0.0;
            detail = Printf.sprintf "placed id %d is not a macro of the netlist" fid }
      | Some info ->
        if Hashtbl.mem seen fid then
          push
            { kind = "duplicate"; subject; other = None; amount = 0.0;
              detail = "macro placed more than once" }
        else begin
          Hashtbl.add seen fid ();
          if not (finite_rect rect) then
            push
              { kind = "non-finite"; subject; other = None; amount = 0.0;
                detail =
                  Printf.sprintf "placement [%g %g %g %g] has non-finite coordinates"
                    rect.Rect.x rect.Rect.y rect.Rect.w rect.Rect.h }
          else begin
            if not (Rect.contains_rect ~outer:die ~inner:rect) then begin
              let over =
                Float.max 0.0 (die.Rect.x -. rect.Rect.x)
                +. Float.max 0.0 (die.Rect.y -. rect.Rect.y)
                +. Float.max 0.0
                     (rect.Rect.x +. rect.Rect.w -. (die.Rect.x +. die.Rect.w))
                +. Float.max 0.0
                     (rect.Rect.y +. rect.Rect.h -. (die.Rect.y +. die.Rect.h))
              in
              push
                { kind = "out-of-die"; subject; other = None; amount = over;
                  detail = Printf.sprintf "macro extends %g beyond the die boundary" over }
            end;
            let ew, eh =
              Orientation.apply_dims orient ~w:info.Netlist.Design.mw
                ~h:info.Netlist.Design.mh
            in
            let dim_ok a b = Float.abs (a -. b) <= dim_rel_eps *. Float.max 1.0 b in
            if not (dim_ok rect.Rect.w ew && dim_ok rect.Rect.h eh) then
              push
                { kind = "footprint"; subject; other = None;
                  amount =
                    Float.abs (rect.Rect.w -. ew) +. Float.abs (rect.Rect.h -. eh);
                  detail =
                    Printf.sprintf
                      "placed %gx%g but library footprint is %gx%g under %s"
                      rect.Rect.w rect.Rect.h ew eh
                      (Orientation.to_string orient) };
            audited := (fid, rect) :: !audited
          end
        end))
    placements;
  (* Pairwise overlaps over the audited (finite, unique) placements. *)
  let arr = Array.of_list (List.rev !audited) in
  let overlap_area = ref 0.0 in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      let fa, ra = arr.(i) and fb, rb = arr.(j) in
      let inter = Rect.intersection_area ra rb in
      overlap_area := !overlap_area +. inter;
      let min_area = Float.min (Rect.area ra) (Rect.area rb) in
      if inter > overlap_rel_eps *. Float.max 1.0 min_area then
        push
          { kind = "overlap"; subject = name fa; other = Some (name fb);
            amount = inter;
            detail = Printf.sprintf "macros overlap by area %g" inter }
    done
  done;
  { total_macros = Flat.macro_count flat;
    placed = List.length placements;
    violations = List.sort compare (List.rev !violations);
    overlap_area = !overlap_area }

let ok r = r.violations = []

let to_json r =
  Obs.Jsonx.Obj
    [ ("schema", Obs.Jsonx.String "hidap-audit");
      ("version", Obs.Jsonx.Int 1);
      ("total_macros", Obs.Jsonx.Int r.total_macros);
      ("placed", Obs.Jsonx.Int r.placed);
      ("ok", Obs.Jsonx.Bool (ok r));
      ("overlap_area", Obs.Jsonx.Float r.overlap_area);
      ( "violations",
        Obs.Jsonx.List
          (List.map
             (fun v ->
               Obs.Jsonx.Obj
                 [ ("kind", Obs.Jsonx.String v.kind);
                   ("subject", Obs.Jsonx.String v.subject);
                   ( "other",
                     match v.other with
                     | Some o -> Obs.Jsonx.String o
                     | None -> Obs.Jsonx.Null );
                   ("amount", Obs.Jsonx.Float v.amount);
                   ("detail", Obs.Jsonx.String v.detail) ])
             r.violations) ) ]

let pp_summary ppf r =
  if ok r then
    Format.fprintf ppf "audit: OK (%d/%d macros placed, overlap %g)@." r.placed
      r.total_macros r.overlap_area
  else begin
    Format.fprintf ppf "audit: FAILED with %d violation%s@."
      (List.length r.violations)
      (if List.length r.violations = 1 then "" else "s");
    List.iter
      (fun v ->
        Format.fprintf ppf "  %s: %s%s: %s@." v.kind v.subject
          (match v.other with Some o -> " / " ^ o | None -> "")
          v.detail)
      r.violations
  end
