module D = Netlist.Design
module Flat = Netlist.Flat
module Rect = Geom.Rect

type repaired = { design : D.t; diags : Diag.t list; repairs : int }

let stage = "validate"

let errors diags = List.filter Diag.is_error diags

(* Accumulator for diagnostics + repair count. *)
type acc = { mutable ds : Diag.t list; mutable repairs : int }

let warn acc ~code fmt =
  Printf.ksprintf
    (fun message -> acc.ds <- Diag.warning ~code ~stage message :: acc.ds)
    fmt

let err acc ~code fmt =
  Printf.ksprintf
    (fun message -> acc.ds <- Diag.error ~code ~stage message :: acc.ds)
    fmt

let repaired_warn acc ~code fmt =
  acc.repairs <- acc.repairs + 1;
  warn acc ~code fmt

let finite_pos f = Float.is_finite f && f > 0.0

(* Drop later duplicates of a keyed list, reporting each drop. *)
let dedup acc ~key ~report items =
  let seen = Hashtbl.create 16 in
  let kept =
    List.filter
      (fun item ->
        let k = key item in
        if Hashtbl.mem seen k then begin
          report item;
          false
        end
        else begin
          Hashtbl.add seen k ();
          true
        end)
      items
  in
  ignore acc;
  kept

let check_cell acc ~mname (c : D.cell_decl) =
  match c.D.ckind with
  | D.Macro { D.mw; mh } ->
    if not (finite_pos mw && finite_pos mh) then begin
      (* No sane footprint can be invented for a hard macro. *)
      err acc ~code:"bad-footprint" "macro %s in module %s has footprint %gx%g" c.D.cname
        mname mw mh;
      c
    end
    else if not (Float.is_finite c.D.carea && c.D.carea >= 0.0) then begin
      repaired_warn acc ~code:"bad-area" "macro %s in module %s has area %g; using %g"
        c.D.cname mname c.D.carea (mw *. mh);
      { c with D.carea = mw *. mh }
    end
    else c
  | D.Flop | D.Comb ->
    if not (Float.is_finite c.D.carea && c.D.carea >= 0.0) then begin
      repaired_warn acc ~code:"bad-area" "%s %s in module %s has area %g; using %g"
        (D.kind_name c.D.ckind) c.D.cname mname c.D.carea
        (D.default_area c.D.ckind);
      { c with D.carea = D.default_area c.D.ckind }
    end
    else c

let check_module acc (d : D.t) (m : D.module_def) =
  let ports =
    dedup acc
      ~key:(fun (p : D.port_decl) -> p.D.pname)
      ~report:(fun (p : D.port_decl) ->
        repaired_warn acc ~code:"dup-port" "dropping duplicate port %s in module %s"
          p.D.pname m.D.mname)
      m.D.ports
  in
  let cells =
    dedup acc
      ~key:(fun (c : D.cell_decl) -> c.D.cname)
      ~report:(fun (c : D.cell_decl) ->
        repaired_warn acc ~code:"dup-cell" "dropping duplicate cell %s in module %s"
          c.D.cname m.D.mname)
      m.D.cells
  in
  let cells = List.map (check_cell acc ~mname:m.D.mname) cells in
  let insts =
    List.map
      (fun (i : D.inst_decl) ->
        match D.find_module d i.D.imodule with
        | None ->
          err acc ~code:"missing-module" "instance %s in module %s instantiates unknown module %s"
            i.D.iname m.D.mname i.D.imodule;
          i
        | Some child ->
          let formals = List.map (fun (p : D.port_decl) -> p.D.pname) child.D.ports in
          let bindings =
            List.filter
              (fun (formal, _) ->
                if List.mem formal formals then true
                else begin
                  repaired_warn acc ~code:"dangling-binding"
                    "dropping binding %s => _ of instance %s in module %s: %s has no port %s"
                    formal i.D.iname m.D.mname i.D.imodule formal;
                  false
                end)
              i.D.bindings
          in
          let bindings =
            dedup acc
              ~key:(fun (formal, _) -> formal)
              ~report:(fun (formal, _) ->
                repaired_warn acc ~code:"dup-binding"
                  "dropping duplicate binding of port %s on instance %s in module %s"
                  formal i.D.iname m.D.mname)
              bindings
          in
          if bindings == i.D.bindings then i else { i with D.bindings })
      m.D.insts
  in
  { m with D.ports; cells; insts }

(* Recursion check over the (already deduplicated) module table. *)
let check_recursion acc (d : D.t) =
  let visiting = Hashtbl.create 16 and done_ = Hashtbl.create 16 in
  let rec dfs name =
    if Hashtbl.mem done_ name || Hashtbl.mem visiting name then begin
      if Hashtbl.mem visiting name then
        err acc ~code:"recursive-module" "recursive instantiation of module %s" name
    end
    else
      match D.find_module d name with
      | None -> ()  (* reported by check_module *)
      | Some m ->
        Hashtbl.add visiting name ();
        List.iter (fun (i : D.inst_decl) -> dfs i.D.imodule) m.D.insts;
        Hashtbl.remove visiting name;
        Hashtbl.add done_ name ()
  in
  dfs d.D.top

let design ?(strict = false) (d : D.t) =
  let acc = { ds = []; repairs = 0 } in
  let module_list = List.map snd d.D.modules in
  let module_list =
    dedup acc
      ~key:(fun (m : D.module_def) -> m.D.mname)
      ~report:(fun (m : D.module_def) ->
        repaired_warn acc ~code:"dup-module" "dropping duplicate module %s" m.D.mname)
      module_list
  in
  (* Repairs that change lookup results (duplicate modules) must land
     before per-module checks resolve instances. *)
  let d0 = if acc.repairs = 0 then d else D.design ~top:d.D.top ~modules:module_list in
  if not (List.exists (fun (m : D.module_def) -> m.D.mname = d.D.top) module_list) then
    err acc ~code:"missing-module" "top module %s is not defined" d.D.top;
  let repairs_before = acc.repairs in
  let checked = List.map (check_module acc d0) module_list in
  check_recursion acc d0;
  let d1 =
    if acc.repairs = repairs_before && d0 == d then d
    else D.design ~top:d.D.top ~modules:checked
  in
  let diags = List.rev acc.ds in
  let diags = if strict then List.map Diag.escalate diags else diags in
  if errors diags <> [] then Error diags
  else Ok { design = d1; diags; repairs = acc.repairs }

let flat ?(strict = false) ~die (f : Flat.t) =
  let ds = ref [] in
  Array.iter
    (fun (n : Flat.node) ->
      match n.Flat.kind with
      | Flat.Kmacro { D.mw; mh } ->
        let fits w h = w <= die.Rect.w +. 1e-9 && h <= die.Rect.h +. 1e-9 in
        if not (fits mw mh || fits mh mw) then
          ds :=
            Diag.warning ~code:"macro-exceeds-die" ~stage
              (Printf.sprintf "macro %s (%gx%g) does not fit the %gx%g die in any orientation"
                 n.Flat.path mw mh die.Rect.w die.Rect.h)
            :: !ds
      | Flat.Kflop | Flat.Kcomb | Flat.Kport _ ->
        if not (Float.is_finite n.Flat.area) then
          ds :=
            Diag.error ~code:"bad-area" ~stage
              (Printf.sprintf "cell %s has non-finite area" n.Flat.path)
            :: !ds)
    f.Flat.nodes;
  if not (finite_pos (Rect.area die)) then
    ds :=
      Diag.error ~code:"bad-die" ~stage
        (Printf.sprintf "die %gx%g has degenerate area" die.Rect.w die.Rect.h)
      :: !ds;
  let diags = List.rev !ds in
  if strict then List.map Diag.escalate diags else diags
