(** Stage supervisor: graceful degradation with an auditable ledger.

    {!with_run} brackets a whole flow invocation: it arms fault specs,
    configures stage budgets, and collects every degradation the stages
    record. Inside the bracket, stages wrap their fallible bodies in
    {!protect}: when the body dies of a {e recoverable} failure — an
    injected fault, an exceeded budget, or an unexpected runtime
    exception — the wrapper records a degradation and runs the stage's
    fallback instead of killing the process.

    Outside a [with_run] bracket, {!protect} re-raises everything, so
    library code exercised directly by tests still fails loudly.

    Degradations are deduplicated by (stage, reason, detail) with a
    count and reported sorted, so the ledger is deterministic no matter
    which worker domain recorded first. [Diag.Fail] is never treated as
    recoverable: a diagnosed input error must surface as a diagnostic,
    not as a silently degraded placement. *)

type entry = {
  stage : string;  (** flow stage that degraded, e.g. ["floorplan"] *)
  reason : string;  (** ["fault"] | ["budget"] | ["failure"] *)
  detail : string;  (** fallback applied / failure description *)
  count : int;  (** occurrences within the run *)
}

val active : unit -> bool

val with_run :
  ?budgets:(string * float) list ->
  ?faults:Fault.spec list ->
  (unit -> 'a) ->
  'a * entry list
(** Run [f] supervised and return its result with the sorted
    degradation ledger. Faults and budgets are disarmed on the way out,
    exceptional or not. Nested calls are transparent: the inner bracket
    reports through the outer one and returns an empty ledger. *)

val degraded : unit -> bool
(** Whether the active run has recorded at least one degradation so
    far. Always false outside {!with_run}. Flow code uses this to
    decide whether a repair pass is needed: clean runs must stay
    bit-identical, so repairs may only trigger after a degradation. *)

val record : stage:string -> reason:string -> detail:string -> unit
(** Count a degradation (no-op outside {!with_run}). Safe from worker
    domains. *)

val recoverable : exn -> bool
(** True for failures a stage may absorb into its fallback: injected
    faults, exceeded budgets, and generic runtime errors ([Failure],
    [Invalid_argument], [Not_found], [Division_by_zero],
    [Assert_failure], array/index errors). False for {!Diag.Fail},
    [Out_of_memory], [Stack_overflow], the whole-run terminations
    {!Budget.Deadline} and {!Budget.Cancelled} (they unwind the flow
    to a terminal job state rather than degrade a stage), and anything
    unknown. *)

val protect : stage:string -> fallback:(string -> 'a) -> (unit -> 'a) -> 'a
(** [protect ~stage ~fallback f] is [f ()], except that inside an
    active {!with_run} a recoverable exception is recorded as a
    degradation and answered with [fallback detail] (the recorded
    detail string, for logging). Non-recoverable exceptions, and any
    exception outside a supervised run, propagate unchanged. *)

val budget_degraded : entry list -> bool
(** Whether any entry was a budget overrun (drives the CLI's
    budget-exceeded exit code). *)

val entry_to_json : entry -> Obs.Jsonx.t

val pp_entry : Format.formatter -> entry -> unit
