type entry = { stage : string; reason : string; detail : string; count : int }

(* The ledger is a mutex-protected count table keyed by the full entry
   identity. Worker domains record concurrently; determinism of the
   reported ledger comes from sorting at drain time, not from recording
   order. *)
let mutex = Mutex.create ()

let table : (string * string * string, int) Hashtbl.t = Hashtbl.create 16

let active_flag = Atomic.make false

let active () = Atomic.get active_flag

let record ~stage ~reason ~detail =
  if active () then begin
    Mutex.lock mutex;
    let key = (stage, reason, detail) in
    let cur = Option.value ~default:0 (Hashtbl.find_opt table key) in
    Hashtbl.replace table key (cur + 1);
    Mutex.unlock mutex;
    (* Live feed: degradations surface on the progress stream the
       moment they are recorded, not just in the end-of-run ledger. *)
    Obs.Stream.degradation ~stage ~reason:(reason ^ ": " ^ detail)
  end

let degraded () =
  active ()
  && begin
    Mutex.lock mutex;
    let n = Hashtbl.length table in
    Mutex.unlock mutex;
    n > 0
  end

let drain () =
  Mutex.lock mutex;
  let entries =
    Hashtbl.fold
      (fun (stage, reason, detail) count acc -> { stage; reason; detail; count } :: acc)
      table []
  in
  Hashtbl.reset table;
  Mutex.unlock mutex;
  List.sort compare entries

let with_run ?(budgets = []) ?(faults = []) f =
  if active () then (f (), [])  (* nested: report through the outer run *)
  else begin
    Fault.arm faults;
    Budget.configure budgets;
    Atomic.set active_flag true;
    let finally () =
      Atomic.set active_flag false;
      Fault.disarm ();
      Budget.clear ()
    in
    let v = Fun.protect ~finally f in
    (v, drain ())
  end

let recoverable = function
  | Diag.Fail _ | Out_of_memory | Stack_overflow -> false
  (* Whole-run terminations must unwind, not degrade: a timed-out or
     cancelled job has a terminal state of its own, so no stage may
     absorb these into a fallback. *)
  | Budget.Deadline _ | Budget.Cancelled _ -> false
  | Fault.Injected _ | Budget.Exceeded _ -> true
  | Failure _ | Invalid_argument _ | Not_found | Division_by_zero | Assert_failure _ ->
    true
  | _ -> false

let describe = function
  (* The hit ordinal is omitted on purpose: parallel starts race for
     hit numbers, and the ledger must dedup identically regardless of
     the schedule. *)
  | Fault.Injected { site; _ } -> ("fault", Printf.sprintf "injected fault at %s" site)
  | Budget.Exceeded { stage; budget_s } ->
    ("budget", Printf.sprintf "stage %s exceeded its %gs budget" stage budget_s)
  | e -> ("failure", Printexc.to_string e)

let protect ~stage ~fallback f =
  try f () with
  | e when active () && recoverable e ->
    let reason, detail = describe e in
    record ~stage ~reason ~detail;
    fallback detail

let budget_degraded entries = List.exists (fun e -> e.reason = "budget") entries

let entry_to_json e =
  Obs.Jsonx.Obj
    [ ("stage", Obs.Jsonx.String e.stage);
      ("reason", Obs.Jsonx.String e.reason);
      ("detail", Obs.Jsonx.String e.detail);
      ("count", Obs.Jsonx.Int e.count) ]

let pp_entry ppf e =
  Format.fprintf ppf "%s degraded (%s, x%d): %s" e.stage e.reason e.count e.detail
