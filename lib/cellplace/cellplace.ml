module Flat = Netlist.Flat
module Rect = Geom.Rect
module Point = Geom.Point

type macro_place = {
  fid : int;
  rect : Rect.t;
  orient : Geom.Orientation.t;
}

type t = {
  positions : Point.t array;
  die : Rect.t;
  movable : bool array;
}

type params = {
  iterations : int;
  spread_grid : int;
  smooth_iterations : int;
}

let default_params = { iterations = 30; spread_grid = 16; smooth_iterations = 3 }

let macro_pin_position ~flat ~macros fid ~dir =
  ignore flat;
  match List.find_opt (fun m -> m.fid = fid) macros with
  | None -> None
  | Some m -> Some (Hidap.Flipping.pin_position ~rect:m.rect ~orient:m.orient ~dir)

(* One Jacobi sweep of the star model: every movable cell moves to the
   mean of its nets' pin centroids. [damp] blends with the previous
   position. *)
let relax_sweep ~flat ~pos ~movable ~damp =
  let n = Array.length pos in
  let accx = Array.make n 0.0 and accy = Array.make n 0.0 in
  let cnt = Array.make n 0 in
  Array.iter
    (fun (drivers, sinks) ->
      let pins = Array.append drivers sinks in
      let np = Array.length pins in
      if np >= 2 then begin
        let sx = ref 0.0 and sy = ref 0.0 in
        Array.iter
          (fun fid ->
            let p = pos.(fid) in
            sx := !sx +. p.Point.x;
            sy := !sy +. p.Point.y)
          pins;
        let cx = !sx /. float_of_int np and cy = !sy /. float_of_int np in
        Array.iter
          (fun fid ->
            if movable.(fid) then begin
              accx.(fid) <- accx.(fid) +. cx;
              accy.(fid) <- accy.(fid) +. cy;
              cnt.(fid) <- cnt.(fid) + 1
            end)
          pins
      end)
    flat.Flat.net_pins;
  for fid = 0 to n - 1 do
    if movable.(fid) && cnt.(fid) > 0 then begin
      let nx = accx.(fid) /. float_of_int cnt.(fid) in
      let ny = accy.(fid) /. float_of_int cnt.(fid) in
      let p = pos.(fid) in
      pos.(fid) <-
        Point.make
          ((damp *. nx) +. ((1.0 -. damp) *. p.Point.x))
          ((damp *. ny) +. ((1.0 -. damp) *. p.Point.y))
    end
  done

(* Density-capped local diffusion. The die is divided into an [s] x [s]
   grid; each bin's capacity is its macro-free area times a maximum
   utilization. Cells keep their relaxed positions unless their bin
   overflows, in which case the excess (the cells farthest from the bin
   centre) spills to the nearest bin with spare capacity — locality is
   preserved instead of smearing cells over all the free area. *)
let max_bin_utilization = 0.70

let spread ~flat ~pos ~movable ~die ~macro_rects ~s =
  let cells =
    Array.to_list flat.Flat.nodes
    |> List.filter (fun (nd : Flat.node) -> movable.(nd.Flat.id))
  in
  if cells <> [] then begin
    let bin_w = die.Rect.w /. float_of_int s in
    let bin_h = die.Rect.h /. float_of_int s in
    let bin_rect i j =
      Rect.make
        ~x:(die.Rect.x +. (float_of_int i *. bin_w))
        ~y:(die.Rect.y +. (float_of_int j *. bin_h))
        ~w:bin_w ~h:bin_h
    in
    let cap = Array.make_matrix s s 0.0 in
    for i = 0 to s - 1 do
      for j = 0 to s - 1 do
        let r = bin_rect i j in
        let blocked =
          List.fold_left (fun acc mr -> acc +. Rect.intersection_area r mr) 0.0 macro_rects
        in
        cap.(i).(j) <- max 0.0 (Rect.area r -. blocked) *. max_bin_utilization
      done
    done;
    let bin_of fid =
      let p = pos.(fid) in
      let i = int_of_float ((p.Point.x -. die.Rect.x) /. bin_w) in
      let j = int_of_float ((p.Point.y -. die.Rect.y) /. bin_h) in
      (Util.Stat.clamp_int ~lo:0 ~hi:(s - 1) i, Util.Stat.clamp_int ~lo:0 ~hi:(s - 1) j)
    in
    let members : (int, int list) Hashtbl.t = Hashtbl.create (s * s) in
    let load = Array.make_matrix s s 0.0 in
    let area_of fid = max 1.0 flat.Flat.nodes.(fid).Flat.area in
    List.iter
      (fun (nd : Flat.node) ->
        let fid = nd.Flat.id in
        let i, j = bin_of fid in
        let key = (i * s) + j in
        Hashtbl.replace members key (fid :: (try Hashtbl.find members key with Not_found -> []));
        load.(i).(j) <- load.(i).(j) +. area_of fid)
      cells;
    (* Spill excess cells ring by ring to the nearest bin with spare
       capacity, scanning bins deterministically. *)
    let nearest_free i j =
      let best = ref None in
      let radius = ref 1 in
      while !best = None && !radius < 2 * s do
        let r = !radius in
        for di = -r to r do
          for dj = -r to r do
            if max (abs di) (abs dj) = r then begin
              let ni = i + di and nj = j + dj in
              if ni >= 0 && ni < s && nj >= 0 && nj < s
                 && cap.(ni).(nj) -. load.(ni).(nj) > 0.0
              then
                match !best with
                | None -> best := Some (ni, nj)
                | Some (bi, bj) ->
                  if
                    cap.(ni).(nj) -. load.(ni).(nj)
                    > cap.(bi).(bj) -. load.(bi).(bj)
                  then best := Some (ni, nj)
            end
          done
        done;
        incr radius
      done;
      !best
    in
    for i = 0 to s - 1 do
      for j = 0 to s - 1 do
        if load.(i).(j) > cap.(i).(j) then begin
          let key = (i * s) + j in
          let cells_here = try Hashtbl.find members key with Not_found -> [] in
          let centre = Rect.center (bin_rect i j) in
          (* keep the cells closest to the bin centre *)
          let sorted =
            List.sort
              (fun a b ->
                compare (Point.manhattan pos.(a) centre) (Point.manhattan pos.(b) centre))
              cells_here
          in
          let keep = ref [] and here = ref 0.0 in
          let spill = ref [] in
          List.iter
            (fun fid ->
              let a = area_of fid in
              if !here +. a <= cap.(i).(j) || !keep = [] then begin
                here := !here +. a;
                keep := fid :: !keep
              end
              else spill := fid :: !spill)
            sorted;
          load.(i).(j) <- !here;
          Hashtbl.replace members key !keep;
          List.iter
            (fun fid ->
              match nearest_free i j with
              | None -> () (* no room anywhere: leave in place *)
              | Some (ni, nj) ->
                let a = area_of fid in
                load.(ni).(nj) <- load.(ni).(nj) +. a;
                let nkey = (ni * s) + nj in
                Hashtbl.replace members nkey
                  (fid :: (try Hashtbl.find members nkey with Not_found -> []));
                let r = bin_rect ni nj in
                (* deterministic sub-bin position *)
                let h = (fid * 40503) land 0xFFFF in
                let fx = float_of_int (h land 0xFF) /. 255.0 in
                let fy = float_of_int ((h lsr 8) land 0xFF) /. 255.0 in
                pos.(fid) <-
                  Point.make
                    (r.Rect.x +. (fx *. r.Rect.w))
                    (r.Rect.y +. (fy *. r.Rect.h)))
            (List.rev !spill)
        end
      done
    done
  end

let push_out_of_macros ~pos ~movable ~macro_rects ~die =
  Array.iteri
    (fun fid p ->
      if movable.(fid) then begin
        let p = ref p in
        List.iter
          (fun (r : Rect.t) ->
            if Rect.contains_point r !p then begin
              (* move to the nearest edge of the macro *)
              let dl = (!p).Point.x -. r.Rect.x in
              let dr = r.Rect.x +. r.Rect.w -. (!p).Point.x in
              let db = (!p).Point.y -. r.Rect.y in
              let dt = r.Rect.y +. r.Rect.h -. (!p).Point.y in
              let m = min (min dl dr) (min db dt) in
              p :=
                if m = dl then Point.make (r.Rect.x -. 0.5) (!p).Point.y
                else if m = dr then Point.make (r.Rect.x +. r.Rect.w +. 0.5) (!p).Point.y
                else if m = db then Point.make (!p).Point.x (r.Rect.y -. 0.5)
                else Point.make (!p).Point.x (r.Rect.y +. r.Rect.h +. 0.5)
            end)
          macro_rects;
        let x = Util.Stat.clamp ~lo:die.Rect.x ~hi:(die.Rect.x +. die.Rect.w) (!p).Point.x in
        let y = Util.Stat.clamp ~lo:die.Rect.y ~hi:(die.Rect.y +. die.Rect.h) (!p).Point.y in
        pos.(fid) <- Point.make x y
      end)
    (Array.copy pos)

(* Initial state: ports and macros pinned, movable cells seeded from a
   deterministic jitter around the die centroid. This is also the
   supervisor fallback when the relaxation itself fails — crude but
   finite, in-die, and usable by the evaluation stages. *)
let seed_state ~flat ~macros ~port_pos ~die =
  let n = Array.length flat.Flat.nodes in
  let pos = Array.make n (Rect.center die) in
  let movable = Array.make n false in
  let macro_rect = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace macro_rect m.fid m.rect) macros;
  Array.iter
    (fun (nd : Flat.node) ->
      match nd.Flat.kind with
      | Flat.Kport _ ->
        (match port_pos nd.Flat.id with
        | Some p -> pos.(nd.Flat.id) <- p
        | None -> pos.(nd.Flat.id) <- Point.make die.Rect.x die.Rect.y)
      | Flat.Kmacro _ ->
        (match Hashtbl.find_opt macro_rect nd.Flat.id with
        | Some r -> pos.(nd.Flat.id) <- Rect.center r
        | None -> pos.(nd.Flat.id) <- Rect.center die)
      | Flat.Kflop | Flat.Kcomb ->
        movable.(nd.Flat.id) <- true;
        (* deterministic jitter to break symmetry *)
        let h = (nd.Flat.id * 2654435761) land 0xFFFF in
        let fx = float_of_int (h land 0xFF) /. 255.0 in
        let fy = float_of_int ((h lsr 8) land 0xFF) /. 255.0 in
        pos.(nd.Flat.id) <-
          Point.make
            (die.Rect.x +. (die.Rect.w *. (0.25 +. (0.5 *. fx))))
            (die.Rect.y +. (die.Rect.h *. (0.25 +. (0.5 *. fy)))))
    flat.Flat.nodes;
  (pos, movable)

let run_body ~params ~flat ~macros ~port_pos ~die =
  let n = Array.length flat.Flat.nodes in
  Obs.Span.attr_int "cells" n;
  Obs.Span.attr_int "iterations" params.iterations;
  let pos, movable = seed_state ~flat ~macros ~port_pos ~die in
  for _ = 1 to params.iterations do
    Guard.Budget.check ~stage:"cellplace";
    relax_sweep ~flat ~pos ~movable ~damp:1.0
  done;
  let macro_rects = List.map (fun m -> m.rect) macros in
  spread ~flat ~pos ~movable ~die ~macro_rects ~s:params.spread_grid;
  for _ = 1 to params.smooth_iterations do
    Guard.Budget.check ~stage:"cellplace";
    relax_sweep ~flat ~pos ~movable ~damp:0.25;
    push_out_of_macros ~pos ~movable ~macro_rects ~die
  done;
  { positions = pos; die; movable }

let run ?(params = default_params) ~flat ~macros ~port_pos ~die () =
  Obs.Span.with_ ~name:"cellplace.run" (fun () ->
      Obs.Metrics.counter "cellplace.runs" 1;
      Guard.Supervisor.protect ~stage:"cellplace.run"
        ~fallback:(fun _ ->
          let positions, movable = seed_state ~flat ~macros ~port_pos ~die in
          { positions; die; movable })
        (fun () ->
          Guard.Fault.hit "cellplace.run";
          run_body ~params ~flat ~macros ~port_pos ~die))

let density_map t ~flat ~macros ~bins =
  let s = bins in
  let die = t.die in
  let grid = Array.make_matrix s s 0.0 in
  let bin_w = die.Rect.w /. float_of_int s and bin_h = die.Rect.h /. float_of_int s in
  let bin_area = bin_w *. bin_h in
  let bin_of (p : Point.t) =
    let i = int_of_float ((p.Point.x -. die.Rect.x) /. bin_w) in
    let j = int_of_float ((p.Point.y -. die.Rect.y) /. bin_h) in
    (Util.Stat.clamp_int ~lo:0 ~hi:(s - 1) i, Util.Stat.clamp_int ~lo:0 ~hi:(s - 1) j)
  in
  Array.iter
    (fun (nd : Flat.node) ->
      match nd.Flat.kind with
      | Flat.Kflop | Flat.Kcomb ->
        let i, j = bin_of t.positions.(nd.Flat.id) in
        grid.(i).(j) <- grid.(i).(j) +. max 1.0 nd.Flat.area
      | Flat.Kmacro _ | Flat.Kport _ -> ())
    flat.Flat.nodes;
  List.iter
    (fun m ->
      for i = 0 to s - 1 do
        for j = 0 to s - 1 do
          let r =
            Rect.make
              ~x:(die.Rect.x +. (float_of_int i *. bin_w))
              ~y:(die.Rect.y +. (float_of_int j *. bin_h))
              ~w:bin_w ~h:bin_h
          in
          grid.(i).(j) <- grid.(i).(j) +. Rect.intersection_area r m.rect
        done
      done)
    macros;
  Array.map (Array.map (fun a -> a /. bin_area)) grid
