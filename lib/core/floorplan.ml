module Tree = Hier.Tree
module Flat = Netlist.Flat
module Rect = Geom.Rect
module Point = Geom.Point

type level_info = {
  depth : int;
  ht_id : int;
  rect : Rect.t;
  macro_count : int;
}

type instance_snapshot = {
  inst_blocks : Block.t array;
  inst_affinity : float array array;
  inst_rects : Rect.t array;
  inst_fixed_names : string array;
      (* sequential-graph names of the fixed endpoints, indexed like the
         affinity columns past the blocks *)
  inst_cost : float option;
  inst_breakdown : Layout_gen.breakdown option;
  inst_attribution : Layout_gen.attribution option;
      (* None when the instance was replayed from a checkpoint: the
         snapshot stores rectangles, not the layout evaluation *)
}

type t = {
  placed_macros : (int * Rect.t * Geom.Orientation.t) list;
  levels : level_info list;
  top : instance_snapshot option;
  ht_rects : (int, Rect.t) Hashtbl.t;
  sa_moves_total : int;
}

type context = {
  tree : Tree.t;
  gseq : Seqgraph.t;
  sgamma : Shape_curves.t;
  ports : Port_plan.t;
  config : Config.t;
  rng : Util.Rng.t;
  ckpt : Ckpt.Session.t option;
  die : Rect.t;
  macro_pos : (int, Point.t) Hashtbl.t;  (* flat macro id -> provisional position *)
  mutable out_macros : (int * Rect.t * Geom.Orientation.t) list;
  mutable out_levels : level_info list;
  mutable out_top : instance_snapshot option;
  ht_rects : (int, Rect.t) Hashtbl.t;
  mutable sa_moves : int;
  mutable inst_index : int;  (* completed-instance counter, preorder *)
  inst_total : int option;  (* pre-counted when progress streaming *)
}

(* Representative flat cell of a Gseq node, used to locate it in HT.
   Ports have no HT location. *)
let rep_flat (nd : Seqgraph.node) =
  match nd.Seqgraph.kind with
  | Seqgraph.Macro fid -> Some fid
  | Seqgraph.Register (fid :: _) -> Some fid
  | Seqgraph.Register [] -> None
  | Seqgraph.Port _ -> None

(* Block index of each Gseq node for one instance: the HT leaf of its
   representative cell is walked upward until an HCB node is found. *)
let block_membership ctx ~hcb =
  let block_of_ht = Hashtbl.create 16 in
  List.iteri (fun bi ht -> Hashtbl.replace block_of_ht ht bi) hcb;
  let cache = Hashtbl.create 256 in
  let rec lookup ht =
    if ht < 0 then -1
    else
      match Hashtbl.find_opt cache ht with
      | Some b -> b
      | None ->
        let b =
          match Hashtbl.find_opt block_of_ht ht with
          | Some bi -> bi
          | None -> lookup (Tree.node ctx.tree ht).Tree.parent
        in
        Hashtbl.add cache ht b;
        b
  in
  fun gid ->
    match rep_flat ctx.gseq.Seqgraph.nodes.(gid) with
    | None -> -1
    | Some fid -> lookup (Tree.ht_node_of_flat ctx.tree fid)

(* Position of a fixed endpoint: port-plan position for ports, the
   provisional position for external macros. *)
let fixed_position ctx gid =
  let nd = ctx.gseq.Seqgraph.nodes.(gid) in
  match nd.Seqgraph.kind with
  | Seqgraph.Port _ ->
    (match Port_plan.gseq_pos ctx.ports gid with
    | Some p -> p
    | None -> Rect.center ctx.die)
  | Seqgraph.Macro fid ->
    (match Hashtbl.find_opt ctx.macro_pos fid with
    | Some p -> p
    | None -> Rect.center ctx.die)
  | Seqgraph.Register _ ->
    (* registers are never fixed endpoints *)
    assert false

(* The attractor of a block: affinity-weighted centroid of the other
   endpoints' positions. [None] when the block has no affinity. *)
let attractor ~affinity ~positions bi =
  let sw = ref 0.0 and sx = ref 0.0 and sy = ref 0.0 in
  Array.iteri
    (fun j (p : Point.t) ->
      if j <> bi then begin
        let w = affinity.(bi).(j) in
        if w > 1e-12 then begin
          sw := !sw +. w;
          sx := !sx +. (w *. p.Point.x);
          sy := !sy +. (w *. p.Point.y)
        end
      end)
    positions;
  if !sw > 0.0 then Some (Point.make (!sx /. !sw) (!sy /. !sw)) else None

(* Footprint actually used for a macro of library dimensions (w, h)
   inside [rect]: rotated (R90) when only the rotated footprint fits,
   then clamped to the rectangle. The returned orientation is the base
   orientation of the placement — rect dimensions are always consistent
   with it. *)
let oriented_fit ~w ~h ~rect =
  let fits w h = w <= rect.Rect.w +. 1e-9 && h <= rect.Rect.h +. 1e-9 in
  let w, h, orient =
    if fits w h then (w, h, Geom.Orientation.R0)
    else if fits h w then (h, w, Geom.Orientation.R90)
    else (w, h, Geom.Orientation.R0)
  in
  (min w rect.Rect.w, min h rect.Rect.h, orient)

(* Fix a single macro in the corner of its block rectangle nearest the
   attractor (paper Algorithm 2 line 11). *)
let fix_position ctx ~fid ~rect ~attract =
  let info =
    match (Tree.flat ctx.tree).Flat.nodes.(fid).Flat.kind with
    | Flat.Kmacro info -> info
    | Flat.Kflop | Flat.Kcomb | Flat.Kport _ -> assert false
  in
  let w0 = info.Netlist.Design.mw and h0 = info.Netlist.Design.mh in
  let w, h, orient = oriented_fit ~w:w0 ~h:h0 ~rect in
  let candidates =
    [ Rect.make ~x:rect.Rect.x ~y:rect.Rect.y ~w ~h;
      Rect.make ~x:(rect.Rect.x +. rect.Rect.w -. w) ~y:rect.Rect.y ~w ~h;
      Rect.make ~x:rect.Rect.x ~y:(rect.Rect.y +. rect.Rect.h -. h) ~w ~h;
      Rect.make ~x:(rect.Rect.x +. rect.Rect.w -. w) ~y:(rect.Rect.y +. rect.Rect.h -. h) ~w
        ~h ]
  in
  let target = match attract with Some p -> p | None -> Rect.center ctx.die in
  let best =
    List.fold_left
      (fun acc r ->
        let d = Point.manhattan (Rect.center r) target in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | Some _ | None -> Some (r, d))
      None candidates
  in
  let r = match best with Some (r, _) -> r | None -> assert false in
  ctx.out_macros <- (fid, r, orient) :: ctx.out_macros;
  Hashtbl.replace ctx.macro_pos fid (Rect.center r)

(* Per-plateau SA telemetry for one floorplan instance: acceptance-rate
   histogram and ordered convergence curve, both keyed by recursion
   depth. Only built when metrics are enabled, so the default path adds
   a single boolean test. *)
let sa_observer ~depth =
  if not (Obs.Metrics.enabled ()) then None
  else begin
    let hist_name = Printf.sprintf "sa.acceptance.level%d" depth in
    let curve_name = Printf.sprintf "sa.curve.level%d" depth in
    Some
      (fun (p : Anneal.Sa.plateau) ->
        let rate = Anneal.Sa.acceptance_rate p in
        Obs.Metrics.sample ~bin_width:0.05 hist_name rate;
        Obs.Metrics.series curve_name ~x:(float_of_int p.Anneal.Sa.total_moves) ~y:rate;
        Obs.Metrics.sample "sa.plateau_temperature" p.Anneal.Sa.temperature)
  end

(* Per-plateau cost-term trajectories, keyed by recursion depth like
   [sa_observer]. Series names are pre-rendered so the per-plateau work
   is five registry appends; the observer runs outside the SA RNG path
   (Anneal.Sa) so enabling it cannot change a placement. *)
let sa_term_observer ~depth =
  if not (Obs.Metrics.enabled ()) then None
  else begin
    let names =
      List.map
        (fun t -> Printf.sprintf "sa.term.%s.level%d" t depth)
        Layout_gen.term_names
    in
    Some
      (fun (p : Anneal.Sa.plateau) (b : Layout_gen.breakdown) ->
        let x = float_of_int p.Anneal.Sa.total_moves in
        List.iter2
          (fun name (_, v) -> Obs.Metrics.series name ~x ~y:v)
          names
          (Layout_gen.breakdown_terms b))
  end

(* Instance count of the recursion below [nh], mirroring the
   decluster/recurse structure of [instance_body] without running any
   placement. Only evaluated when progress streaming is on (to report
   "instance i/n"); declustering consumes no RNG, so the pre-pass
   cannot perturb the flow. *)
let rec count_instances ctx ~nh =
  let config = ctx.config in
  let dc =
    Hier.Decluster.run ctx.tree ~nh ~open_frac:config.Config.open_frac
      ~min_frac:config.Config.min_frac
  in
  match dc.Hier.Decluster.hcb with
  | [] -> 0
  | hcb ->
    List.fold_left
      (fun acc ht ->
        match Tree.macros_below ctx.tree ht with
        | _ :: _ :: _ -> acc + count_instances ctx ~nh:ht
        | _ -> acc)
      1 hcb

let rec instance ctx ~nh ~budget ~depth =
  Obs.Span.with_ ~name:"floorplan.level" (fun () -> instance_body ctx ~nh ~budget ~depth)

and instance_body ctx ~nh ~budget ~depth =
  Obs.Span.attr_int "depth" depth;
  Obs.Span.attr_int "ht_id" nh;
  Obs.Span.attr_float "lambda" ctx.config.Config.lambda;
  let config = ctx.config in
  let dc =
    Hier.Decluster.run ctx.tree ~nh ~open_frac:config.Config.open_frac
      ~min_frac:config.Config.min_frac
  in
  match dc.Hier.Decluster.hcb with
  | [] -> () (* nothing to place below this node *)
  | hcb ->
    let blocks =
      Target_area.assign ctx.tree ~sgamma:ctx.sgamma ~hcb ~hcg:dc.Hier.Decluster.hcg
    in
    let n_blocks = Array.length blocks in
    let block_of_node = block_membership ctx ~hcb in
    (* Fixed endpoints: all port arrays plus macros outside this subtree. *)
    let fixed =
      Array.of_list
        (List.filter_map
           (fun (nd : Seqgraph.node) ->
             match nd.Seqgraph.kind with
             | Seqgraph.Port _ -> Some nd.Seqgraph.id
             | Seqgraph.Macro _ ->
               if block_of_node nd.Seqgraph.id < 0 then Some nd.Seqgraph.id else None
             | Seqgraph.Register _ -> None)
           (Array.to_list ctx.gseq.Seqgraph.nodes))
    in
    (* When dataflow affinity is unavailable the instance is laid out
       area-only: a zero matrix keeps every block a valid SA operand
       while the cost reduces to the legality terms. *)
    let n_endpoints = n_blocks + Array.length fixed in
    let affinity =
      Guard.Supervisor.protect ~stage:"floorplan.affinity"
        ~fallback:(fun _ -> Array.make_matrix n_endpoints n_endpoints 0.0)
        (fun () ->
          Guard.Fault.hit "floorplan.affinity";
          let gdf = Dataflow.Gdf.build ctx.gseq ~n_blocks ~block_of_node ~fixed in
          Dataflow.Gdf.affinity_matrix gdf ~lambda:config.Config.lambda
            ~k:config.Config.k ())
    in
    let fixed_pos = Array.map (fun gid -> fixed_position ctx gid) fixed in
    (* Checkpoint unit: one completed instance. A resumed run takes the
       recorded rectangles and restores the RNG to its post-instance
       state instead of re-annealing, so the rest of the recursion —
       and everything downstream — replays bit-identically. *)
    let cached =
      match ctx.ckpt with
      | None -> None
      | Some session -> Ckpt.Session.lookup_instance session ~nh ~n_blocks
    in
    ctx.inst_index <- ctx.inst_index + 1;
    let rects, inst_moves, layout_opt =
      match cached with
      | Some e ->
        Util.Rng.set_state ctx.rng e.Ckpt.State.rng_after;
        Obs.Span.attr_int "ckpt_reused" 1;
        (e.Ckpt.State.rects, e.Ckpt.State.sa_moves, None)
      | None ->
        let streaming = Obs.Stream.enabled () in
        let t0 = if streaming then Obs.Clock.now_us () else 0.0 in
        let layout =
          Layout_gen.run ?observer:(sa_observer ~depth)
            ?term_observer:(sa_term_observer ~depth) ~rng:ctx.rng ~config ~blocks
            ~affinity ~fixed_pos ~budget ()
        in
        if streaming then begin
          let dur_s = (Obs.Clock.now_us () -. t0) /. 1e6 in
          let moves = layout.Layout_gen.sa_moves in
          Obs.Stream.sa_progress ~instance:ctx.inst_index ?instances:ctx.inst_total
            ~temperature:layout.Layout_gen.final_temperature
            ~best_cost:layout.Layout_gen.cost
            ~cost_terms:(Layout_gen.breakdown_terms layout.Layout_gen.breakdown)
            ~moves
            ~moves_per_s:(if dur_s > 0.0 then float_of_int moves /. dur_s else 0.0)
            ()
        end;
        (match ctx.ckpt with
        | None -> ()
        | Some session ->
          Ckpt.Session.instance_done session ~nh ~depth ~n_blocks
            ~rects:layout.Layout_gen.rects ~sa_moves:layout.Layout_gen.sa_moves
            ~rng_after:(Util.Rng.state ctx.rng));
        (layout.Layout_gen.rects, layout.Layout_gen.sa_moves, Some layout)
    in
    ctx.sa_moves <- ctx.sa_moves + inst_moves;
    Obs.Span.attr_int "blocks" n_blocks;
    Obs.Span.attr_int "sa_moves" inst_moves;
    Obs.Perf.add Obs.Perf.fp_instances 1;
    Obs.Metrics.counter "floorplan.instances" 1;
    Obs.Metrics.counter "floorplan.sa_moves" inst_moves;
    Obs.Metrics.sample "floorplan.block_count" (float_of_int n_blocks);
    (* Record rectangles; update provisional macro positions. *)
    let positions = Array.append (Array.map Rect.center rects) fixed_pos in
    Array.iteri
      (fun bi (b : Block.t) ->
        let r = rects.(bi) in
        Hashtbl.replace ctx.ht_rects b.Block.ht_id r;
        ctx.out_levels <-
          { depth; ht_id = b.Block.ht_id; rect = r; macro_count = b.Block.macro_count }
          :: ctx.out_levels;
        List.iter
          (fun fid -> Hashtbl.replace ctx.macro_pos fid (Rect.center r))
          (Tree.macros_below ctx.tree b.Block.ht_id))
      blocks;
    if depth = 0 then
      ctx.out_top <-
        Some
          { inst_blocks = blocks; inst_affinity = affinity;
            inst_rects = Array.copy rects;
            inst_fixed_names =
              Array.map
                (fun gid -> ctx.gseq.Seqgraph.nodes.(gid).Seqgraph.name)
                fixed;
            inst_cost =
              Option.map (fun (l : Layout_gen.result) -> l.Layout_gen.cost) layout_opt;
            inst_breakdown =
              Option.map
                (fun (l : Layout_gen.result) -> l.Layout_gen.breakdown)
                layout_opt;
            inst_attribution =
              Option.map
                (fun (l : Layout_gen.result) -> l.Layout_gen.attribution)
                layout_opt };
    (* Recurse / fix. *)
    Array.iteri
      (fun bi (b : Block.t) ->
        let r = rects.(bi) in
        if b.Block.macro_count > 1 then
          instance ctx ~nh:b.Block.ht_id ~budget:r ~depth:(depth + 1)
        else if b.Block.macro_count = 1 then begin
          let fid =
            match Tree.macros_below ctx.tree b.Block.ht_id with
            | [ fid ] -> fid
            | _ -> assert false
          in
          let attract = attractor ~affinity ~positions bi in
          fix_position ctx ~fid ~rect:r ~attract
        end)
      blocks

let run_body ~tree ~gseq ~sgamma ~ports ~config ~rng ?ckpt ~die () =
  let ctx =
    { tree; gseq; sgamma; ports; config; rng; ckpt; die;
      macro_pos = Hashtbl.create 64;
      out_macros = [];
      out_levels = [];
      out_top = None;
      ht_rects = Hashtbl.create 64;
      sa_moves = 0;
      inst_index = 0;
      inst_total = None }
  in
  let ctx =
    if Obs.Stream.enabled () then
      { ctx with inst_total = Some (count_instances ctx ~nh:(Tree.root tree)) }
    else ctx
  in
  (* Provisional positions: die center. *)
  List.iter
    (fun (n : Flat.node) -> Hashtbl.replace ctx.macro_pos n.Flat.id (Rect.center die))
    (Flat.macros (Tree.flat tree));
  instance ctx ~nh:(Tree.root tree) ~budget:die ~depth:0;
  Obs.Span.attr_int "sa_moves" ctx.sa_moves;
  { placed_macros = List.rev ctx.out_macros;
    levels = List.rev ctx.out_levels;
    top = ctx.out_top;
    ht_rects = ctx.ht_rects;
    sa_moves_total = ctx.sa_moves }

let run ~tree ~gseq ~sgamma ~ports ~config ~rng ?ckpt ~die () =
  Obs.Span.with_ ~name:"floorplan.run" (fun () ->
      run_body ~tree ~gseq ~sgamma ~ports ~config ~rng ?ckpt ~die ())
