type t = {
  lambda : float;
  lambda_sweep : float list;
  k : int;
  open_frac : float;
  min_frac : float;
  bit_threshold : int;
  utilization : float;
  die_aspect : float;
  at_weight : float;
  am_weight : float;
  macro_weight : float;
  layout_sa : Anneal.Sa.params;
  curve_sa : Anneal.Sa.params;
  max_curve_points : int;
  flipping_passes : int;
  seed : int;
  sa_starts : int;
  incremental_eval : bool;
      (* evaluate SA moves incrementally (bit-identical to the full
         evaluation; false forces the full path, e.g. for identity
         checks and benchmarking) *)
  jobs : int;
  faults : Guard.Fault.spec list;
  budgets : (string * float) list;
}

let default =
  { lambda = 0.5;
    lambda_sweep = [ 0.2; 0.5; 0.8 ];
    k = 2;
    open_frac = 0.40;
    min_frac = 0.01;
    bit_threshold = 1;
    utilization = 0.70;
    die_aspect = 1.0;
    at_weight = 2.0;
    am_weight = 10.0;
    macro_weight = 50.0;
    layout_sa = { Anneal.Sa.default_params with Anneal.Sa.max_moves = 25_000; moves_per_plateau = 96 };
    curve_sa = Anneal.Sa.quick_params;
    max_curve_points = 24;
    flipping_passes = 2;
    seed = 1;
    sa_starts = 4;
    incremental_eval = true;
    jobs = Parexec.default_jobs ();
    faults = [];
    budgets = [] }

let with_lambda t lambda = { t with lambda; lambda_sweep = [ lambda ] }
