module Rect = Geom.Rect

let total_overlap rects =
  let n = Array.length rects in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      acc := !acc +. Rect.intersection_area rects.(i) rects.(j)
    done
  done;
  !acc

let clamp_into ~(die : Rect.t) (r : Rect.t) =
  let x = Util.Stat.clamp ~lo:die.Rect.x ~hi:(max die.Rect.x (die.Rect.x +. die.Rect.w -. r.Rect.w)) r.Rect.x in
  let y = Util.Stat.clamp ~lo:die.Rect.y ~hi:(max die.Rect.y (die.Rect.y +. die.Rect.h -. r.Rect.h)) r.Rect.y in
  { r with Rect.x; y }

let separate ~die ?(iterations = 64) ?(spacing = 0.0) rects =
  let rects = Array.map (clamp_into ~die) rects in
  let n = Array.length rects in
  let pass () =
    let moved = ref false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let a = rects.(i) and b = rects.(j) in
        let grown =
          { Rect.x = a.Rect.x -. spacing; y = a.Rect.y -. spacing;
            w = a.Rect.w +. (2.0 *. spacing); h = a.Rect.h +. (2.0 *. spacing) }
        in
        if Rect.overlaps grown b then begin
          moved := true;
          (* penetration along each axis *)
          let slack = 1e-4 in
          let px =
            min (a.Rect.x +. a.Rect.w -. b.Rect.x) (b.Rect.x +. b.Rect.w -. a.Rect.x)
            +. spacing +. slack
          in
          let py =
            min (a.Rect.y +. a.Rect.h -. b.Rect.y) (b.Rect.y +. b.Rect.h -. a.Rect.y)
            +. spacing +. slack
          in
          if px <= py then begin
            (* split the x push between both macros *)
            let dir = if Rect.center a |> fun c -> c.Geom.Point.x <= (Rect.center b).Geom.Point.x then 1.0 else -1.0 in
            rects.(i) <- clamp_into ~die { a with Rect.x = a.Rect.x -. (dir *. px /. 2.0) };
            rects.(j) <- clamp_into ~die { b with Rect.x = b.Rect.x +. (dir *. px /. 2.0) }
          end
          else begin
            let dir = if (Rect.center a).Geom.Point.y <= (Rect.center b).Geom.Point.y then 1.0 else -1.0 in
            rects.(i) <- clamp_into ~die { a with Rect.y = a.Rect.y -. (dir *. py /. 2.0) };
            rects.(j) <- clamp_into ~die { b with Rect.y = b.Rect.y +. (dir *. py /. 2.0) }
          end
        end
      done
    done;
    !moved
  in
  let rec go k = if k > 0 && pass () then go (k - 1) in
  go iterations;
  rects
