module Config = Config
module Block = Block
module Port_plan = Port_plan
module Shape_curves = Shape_curves
module Target_area = Target_area
module Layout_gen = Layout_gen
module Floorplan = Floorplan
module Flipping = Flipping
module Legalize = Legalize
module Placement_io = Placement_io
module Rect = Geom.Rect
module Flat = Netlist.Flat

type macro_placement = {
  fid : int;
  rect : Rect.t;
  orient : Geom.Orientation.t;
}

type result = {
  die : Rect.t;
  placements : macro_placement list;
  levels : Floorplan.level_info list;
  top : Floorplan.instance_snapshot option;
  tree : Hier.Tree.t;
  gseq : Seqgraph.t;
  ports : Port_plan.t;
  ht_rects : (int, Rect.t) Hashtbl.t;
  lambda : float;
  sa_moves : int;
  flip_gain : float;
}

let die_for flat ~config =
  let area = Flat.total_cell_area flat /. config.Config.utilization in
  let aspect = config.Config.die_aspect in
  let h = sqrt (area /. aspect) in
  let w = aspect *. h in
  Rect.make ~x:0.0 ~y:0.0 ~w ~h

(* Degraded stages (fault fallbacks, budget cuts) can leave macros
   clamped below their library footprint or stacked on top of each
   other. Restore every macro's true oriented footprint around its
   current center, then push the rects apart until they are legal.
   Only reachable after a recorded degradation, so clean runs keep
   their bit-identical output. *)
let repair_placements ~die flat placements =
  let rects =
    Array.of_list
      (List.map
         (fun p ->
           match flat.Flat.nodes.(p.fid).Flat.kind with
           | Flat.Kmacro { Netlist.Design.mw; mh } ->
             let w, h = Geom.Orientation.apply_dims p.orient ~w:mw ~h:mh in
             let c = Rect.center p.rect in
             Rect.make
               ~x:(c.Geom.Point.x -. (w /. 2.0))
               ~y:(c.Geom.Point.y -. (h /. 2.0))
               ~w ~h
           | _ -> p.rect)
         placements)
  in
  let rects = Legalize.separate ~die ~iterations:512 rects in
  List.mapi (fun i p -> { p with rect = rects.(i) }) placements

let place_body ~config ~die ?ckpt flat =
  let die = match die with Some d -> d | None -> die_for flat ~config in
  Obs.Span.attr_int "seed" config.Config.seed;
  Obs.Span.attr_float "lambda" config.Config.lambda;
  let rng = Util.Rng.create config.Config.seed in
  (* Progress-stream stage brackets reuse the span names, so a live
     consumer and a trace line up 1:1. Emission is write-only
     telemetry: no RNG, no effect on the flow. *)
  let stage = Obs.Stream.with_stage in
  let tree =
    stage "hier.tree_build" (fun () ->
        Obs.Span.with_ ~name:"hier.tree_build" (fun () -> Hier.Tree.build flat))
  in
  let gseq =
    stage "seqgraph.build" (fun () ->
        Obs.Span.with_ ~name:"seqgraph.build" (fun () ->
            Seqgraph.build ~bit_threshold:config.Config.bit_threshold flat))
  in
  let sgamma =
    stage "shape_curves.generate" (fun () ->
        Shape_curves.generate tree ~config ~rng:(Util.Rng.split rng))
  in
  let ports =
    stage "port_plan.make" (fun () ->
        Obs.Span.with_ ~name:"port_plan.make" (fun () -> Port_plan.make gseq ~die))
  in
  let fp =
    stage "floorplan.run" (fun () ->
        Floorplan.run ~tree ~gseq ~sgamma ~ports ~config ~rng:(Util.Rng.split rng)
          ?ckpt ~die ())
  in
  Option.iter (fun s -> Ckpt.Session.stage_done s "floorplan") ckpt;
  (* The flipping stage is replayed from the checkpoint when a resumed
     snapshot carries it; orientation search is deterministic, so the
     replay equals a recomputation — just free. *)
  let flip =
    match Option.bind ckpt Ckpt.Session.lookup_flip with
    | Some e ->
      { Flipping.orientations = e.Ckpt.State.orientations;
        gain = e.Ckpt.State.flip_gain }
    | None ->
      let flip =
        stage "flipping.run" (fun () ->
            Flipping.run ~tree ~gseq ~ports ~macros:fp.Floorplan.placed_macros
              ~ht_rects:fp.Floorplan.ht_rects ~die ~config)
      in
      Option.iter
        (fun s ->
          Ckpt.Session.flip_done s
            { Ckpt.State.orientations = flip.Flipping.orientations;
              flip_gain = flip.Flipping.gain })
        ckpt;
      flip
  in
  Option.iter (fun s -> Ckpt.Session.stage_done s "flipping") ckpt;
  let orient_of = Hashtbl.create 64 in
  List.iter
    (fun (fid, o) -> Hashtbl.replace orient_of fid o)
    flip.Flipping.orientations;
  let placements =
    List.map
      (fun (fid, rect, base) ->
        let orient =
          match Hashtbl.find_opt orient_of fid with
          | Some o -> o
          | None -> base
        in
        { fid; rect; orient })
      fp.Floorplan.placed_macros
  in
  let placements =
    if Guard.Supervisor.degraded () then repair_placements ~die flat placements
    else placements
  in
  Obs.Metrics.counter "hidap.places" 1;
  Obs.Metrics.counter "hidap.sa_moves" fp.Floorplan.sa_moves_total;
  Obs.Metrics.gauge "hidap.macros_placed" (float_of_int (List.length placements));
  Obs.Metrics.gauge "hidap.die_area" (Rect.area die);
  if Obs.Metrics.enabled () then Obs.Gcstats.gauges (Obs.Gcstats.snapshot ());
  { die;
    placements;
    levels = fp.Floorplan.levels;
    top = fp.Floorplan.top;
    tree;
    gseq;
    ports;
    ht_rects = fp.Floorplan.ht_rects;
    lambda = config.Config.lambda;
    sa_moves = fp.Floorplan.sa_moves_total;
    flip_gain = flip.Flipping.gain }

let place ?(config = Config.default) ?die ?ckpt flat =
  Obs.Span.with_ ~name:"hidap.place" (fun () -> place_body ~config ~die ?ckpt flat)

type sweep = {
  best : result;
  best_objective : float;
  sweep_trace : (float * float) list;
}

let place_sweep ?(config = Config.default) ?die ~objective flat =
  Obs.Span.with_ ~name:"hidap.place_sweep" (fun () ->
      let lambdas =
        match config.Config.lambda_sweep with [] -> [ config.Config.lambda ] | l -> l
      in
      (* Lambda runs are independent; fan them across the pool. The
         results come back in sweep order and the reduction below keeps
         the first minimum, so the chosen run is the same for every job
         count. Nested pool use inside each run degrades to sequential
         execution on that worker. *)
      let pool = Parexec.create ~jobs:config.Config.jobs () in
      let runs =
        Array.to_list
          (Parexec.map pool
             (fun lambda ->
               let r = place ~config:{ config with Config.lambda } ?die flat in
               (r, objective r))
             (Array.of_list lambdas))
      in
      let sweep_trace = List.map (fun (r, o) -> (r.lambda, o)) runs in
      List.iter
        (fun (lambda, o) -> Obs.Metrics.series "hidap.sweep" ~x:lambda ~y:o)
        sweep_trace;
      match runs with
      | [] -> assert false
      | first :: rest ->
        let best, best_objective =
          List.fold_left
            (fun (br, bo) (r, o) -> if o < bo then (r, o) else (br, bo))
            first rest
        in
        Obs.Span.attr_float "best_lambda" best.lambda;
        { best; best_objective; sweep_trace })

let overlap_area result =
  let rects = List.map (fun p -> p.rect) result.placements in
  let arr = Array.of_list rects in
  let total = ref 0.0 in
  for i = 0 to Array.length arr - 1 do
    for j = i + 1 to Array.length arr - 1 do
      total := !total +. Rect.intersection_area arr.(i) arr.(j)
    done
  done;
  !total

let placement_bbox_ok result =
  List.for_all
    (fun p -> Rect.contains_rect ~outer:result.die ~inner:p.rect)
    result.placements
