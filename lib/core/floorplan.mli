(** Recursive block floorplanning (paper Algorithm 2).

    Each instance declusters a hierarchy node into blocks, characterizes
    them (target-area assignment), infers their dataflow affinity and
    generates a slicing layout inside the instance rectangle. Blocks
    holding more than one macro are recursed into; blocks holding exactly
    one macro have it fixed in the corner of their rectangle that
    minimizes wirelength toward the block's dataflow attractor. *)

type level_info = {
  depth : int;
  ht_id : int;
  rect : Geom.Rect.t;
  macro_count : int;
}

type instance_snapshot = {
  inst_blocks : Block.t array;
  inst_affinity : float array array;
  inst_rects : Geom.Rect.t array;
  inst_fixed_names : string array;
      (** sequential-graph names of the fixed endpoints, indexed like
          the affinity columns past the blocks *)
  inst_cost : float option;
  inst_breakdown : Layout_gen.breakdown option;
  inst_attribution : Layout_gen.attribution option;
      (** cost, named terms and per-pair/per-block attribution of the
          top layout; [None] when the instance was replayed from a
          checkpoint (snapshots store rectangles, not evaluations) *)
}
(** The top-level instance, kept for visualization (paper Fig. 9d) and
    cost attribution (DESIGN.md §13). *)

type t = {
  placed_macros : (int * Geom.Rect.t * Geom.Orientation.t) list;
      (** flat macro id, placed rect, base orientation. The orientation
          is [R90] when the macro was rotated to fit its block
          rectangle (its rect swaps the library w/h), [R0] otherwise —
          rect dimensions are always consistent with it. *)
  levels : level_info list;  (** every block rectangle of every instance *)
  top : instance_snapshot option;  (** [None] when the design has no blocks *)
  ht_rects : (int, Geom.Rect.t) Hashtbl.t;  (** block rectangles by HT node *)
  sa_moves_total : int;
}

val oriented_fit :
  w:float -> h:float -> rect:Geom.Rect.t -> float * float * Geom.Orientation.t
(** [(w', h', orient)] for a macro of library footprint [w] x [h]
    placed inside [rect]: the footprint is rotated ([R90]) exactly when
    the upright footprint does not fit but the rotated one does, then
    clamped to [rect]. Exposed for the orientation invariant tests. *)

val run :
  tree:Hier.Tree.t ->
  gseq:Seqgraph.t ->
  sgamma:Shape_curves.t ->
  ports:Port_plan.t ->
  config:Config.t ->
  rng:Util.Rng.t ->
  ?ckpt:Ckpt.Session.t ->
  die:Geom.Rect.t ->
  unit ->
  t
(** Places every macro of the design inside [die]. With [ckpt], each
    completed instance is reported to the checkpoint session (and
    resumed instances are replayed from it, restoring the RNG to the
    recorded post-instance state, so a resumed run is bit-identical to
    an uninterrupted one). *)
