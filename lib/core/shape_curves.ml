module Curve = Shape.Curve
module Tree = Hier.Tree
module Flat = Netlist.Flat

type t = {
  curves : Curve.t array;
  macro_areas : float array;
}

(* Curve of an intermediate node: anneal over slicing arrangements of the
   macro-constrained children, minimizing the bounding-box area of the
   composed curve; the best arrangement's full staircase becomes Γ. *)
let combine_children ~config ~rng child_curves child_areas =
  match Array.length child_curves with
  | 0 -> Curve.unconstrained
  | 1 -> child_curves.(0)
  | n ->
    let leaves =
      Array.init n (fun i ->
          { Slicing.Layout.lid = i;
            curve = child_curves.(i);
            area_min = child_areas.(i);
            area_target = child_areas.(i) })
    in
    let cost expr = Curve.min_area (Slicing.Layout.tree_curve expr ~leaves) in
    let init = Slicing.Polish.initial_random rng ~n in
    let result =
      Anneal.Sa.minimize ~rng ~init ~cost
        ~neighbor:(fun rng e -> Slicing.Polish.perturb rng e)
        ~params:config.Config.curve_sa ()
    in
    Obs.Metrics.counter "shape_curves.combines" 1;
    Obs.Metrics.counter "shape_curves.sa_moves" result.Anneal.Sa.moves;
    let best = Slicing.Layout.tree_curve result.Anneal.Sa.best ~leaves in
    (* Also keep the initial arrangement's shapes for diversity. *)
    let fallback = Slicing.Layout.tree_curve init ~leaves in
    let merged =
      match (Curve.points best, Curve.points fallback) with
      | [], _ | _, [] -> best
      | pb, pf -> Curve.of_points (pb @ pf)
    in
    Curve.prune ~max_points:config.Config.max_curve_points merged

let generate_body tree ~config ~rng =
  let n = Tree.node_count tree in
  Obs.Span.attr_int "ht_nodes" n;
  let curves = Array.make n Curve.unconstrained in
  let macro_areas = Array.make n 0.0 in
  let flat = Tree.flat tree in
  (* Children always have larger ids than their parents (scopes are
     created in preorder, leaves after all scopes), so a descending scan
     processes children first. *)
  for id = n - 1 downto 0 do
    let node = Tree.node tree id in
    match node.Tree.kind with
    | Tree.Macro_cell fid ->
      let info =
        match flat.Flat.nodes.(fid).Flat.kind with
        | Flat.Kmacro info -> info
        | Flat.Kflop | Flat.Kcomb | Flat.Kport _ -> assert false
      in
      curves.(id) <-
        Curve.of_macro ~w:info.Netlist.Design.mw ~h:info.Netlist.Design.mh ();
      macro_areas.(id) <- info.Netlist.Design.mw *. info.Netlist.Design.mh
    | Tree.Glue _ -> ()
    | Tree.Scope _ ->
      let constrained =
        List.filter
          (fun c -> not (Curve.is_unconstrained curves.(c)))
          node.Tree.children
      in
      let child_curves = Array.of_list (List.map (fun c -> curves.(c)) constrained) in
      let child_areas = Array.of_list (List.map (fun c -> macro_areas.(c)) constrained) in
      curves.(id) <- combine_children ~config ~rng child_curves child_areas;
      macro_areas.(id) <- Array.fold_left ( +. ) 0.0 child_areas
  done;
  { curves; macro_areas }

let generate tree ~config ~rng =
  Obs.Span.with_ ~name:"shape_curves.generate" (fun () -> generate_body tree ~config ~rng)

let curve t id = t.curves.(id)

let macro_area t id = t.macro_areas.(id)
