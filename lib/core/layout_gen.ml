module Rect = Geom.Rect
module Point = Geom.Point

type breakdown = {
  bd_wirelength : float;
  bd_at_penalty : float;
  bd_am_penalty : float;
  bd_macro_penalty : float;
  bd_residual : float;
}

type pair_contrib = {
  pc_i : int;
  pc_j : int;
  pc_weight : float;
  pc_wl : float;
}

type attribution = {
  attr_pairs : pair_contrib array;
  attr_leaf_viol : Slicing.Layout.violations array;
}

type result = {
  rects : Rect.t array;
  cost : float;
  wirelength_term : float;
  viol : Slicing.Layout.violations;
  breakdown : breakdown;
  attribution : attribution;
  sa_moves : int;
  final_temperature : float;
      (* of the winning annealing start; 0.0 when no search ran *)
}

let term_names = [ "wirelength"; "at_penalty"; "am_penalty"; "macro_penalty"; "residual" ]

let breakdown_terms b =
  [ ("wirelength", b.bd_wirelength);
    ("at_penalty", b.bd_at_penalty);
    ("am_penalty", b.bd_am_penalty);
    ("macro_penalty", b.bd_macro_penalty);
    ("residual", b.bd_residual) ]

(* The documented reconstruction order. [breakdown_of] computes the
   residual against exactly this left-to-right sum, so the total is the
   annealer's scalar bit for bit. *)
let breakdown_total b =
  (((b.bd_wirelength +. b.bd_at_penalty) +. b.bd_am_penalty) +. b.bd_macro_penalty)
  +. b.bd_residual

(* Named decomposition of the scalar the annealer minimizes. The cost is
   [base * (1 + at + am + macro)] with [base] the wirelength (or the 1.0
   legality bias when the affinity matrix is empty), so distributing
   [base] gives one named product per penalty term. The four products
   agree with [cost] to a few ulps, which keeps [cost /. sum] within
   [1/2, 2]; by Sterbenz's lemma [cost -. sum] is then computed exactly
   and adding it back reproduces [cost] bit for bit — the invariant the
   attribution property test asserts. *)
let breakdown_of ~cost ~wirelength ~viol ~(config : Config.t) ~budget ~n_pairs =
  let scale v = v /. max 1e-9 (Rect.area budget) in
  let base = if n_pairs = 0 then 1.0 else wirelength in
  let bd_wirelength = base in
  let bd_at_penalty =
    base *. (config.Config.at_weight *. scale viol.Slicing.Layout.at_shift)
  in
  let bd_am_penalty =
    base *. (config.Config.am_weight *. scale viol.Slicing.Layout.am_deficit)
  in
  let bd_macro_penalty =
    base *. (config.Config.macro_weight *. scale viol.Slicing.Layout.macro_deficit)
  in
  let partial =
    ((bd_wirelength +. bd_at_penalty) +. bd_am_penalty) +. bd_macro_penalty
  in
  { bd_wirelength; bd_at_penalty; bd_am_penalty; bd_macro_penalty;
    bd_residual = cost -. partial }

(* Sparse list of affinity pairs that involve at least one block. Only
   the upper triangle is read, which is correct solely because the
   matrix is symmetric — [Gdf.affinity_matrix] writes both mirrors of
   every entry. An asymmetric matrix would silently drop its whole
   lower-triangle weight here, so any disagreement across the diagonal
   (including NaN, which never equals its mirror) is rejected with a
   structured diagnostic instead of folded in: summing w_ij +. w_ji
   would double every weight of the symmetric matrices the real flow
   produces and shift every cost. *)
let affinity_pairs ~n_blocks ~n_endpoints affinity =
  let pairs = ref [] in
  for i = 0 to n_blocks - 1 do
    for j = i + 1 to n_endpoints - 1 do
      let w = affinity.(i).(j) in
      if w <> affinity.(j).(i) then
        Guard.Diag.fail ~code:"asymmetric-affinity" ~stage:"floorplan"
          (Printf.sprintf
             "affinity matrix is asymmetric at (%d, %d): %g above the diagonal \
              vs %g below; the pair scan reads only the upper triangle"
             i j w affinity.(j).(i));
      if w > 1e-12 then pairs := (i, j, w) :: !pairs
    done
  done;
  Array.of_list !pairs

(* Scratch buffers for expression evaluation. The SA cost function is
   called once per proposed move, so the per-call rect/center arrays
   are reused instead of reallocated; each annealing start owns its own
   scratch, which also keeps the parallel starts free of shared mutable
   state. *)
type scratch = {
  s_rects : Rect.t array;
  s_centers : Point.t array;
  s_budget_center : Point.t;
}

let make_scratch ~n_blocks ~budget =
  let c = Rect.center budget in
  { s_rects = Array.make n_blocks budget;
    s_centers = Array.make n_blocks c;
    s_budget_center = c }

(* Assemble (cost, wirelength, violations) from the wirelength fold and
   the raw violation totals. Shared verbatim by the full and the
   incremental evaluation paths, so once their [wl]/[viol] inputs agree
   bitwise the scalar the annealer sees does too. *)
let finish_cost ~leaves ~budget ~n_pairs ~(config : Config.t) ~n_blocks ~wl viol =
  (* Normalize violation areas by the budget area so the penalty weights
     are scale-free. *)
  let scale v = v /. max 1e-9 (Rect.area budget) in
  (* A lone leaf never passes through [split_extent], which is where the
     multi-block path charges minimum-area deficits; charge its deficit
     against the whole budget here so a violating single block pays the
     same graded penalty. *)
  let viol =
    if n_blocks = 1 then
      { viol with
        Slicing.Layout.am_deficit =
          viol.Slicing.Layout.am_deficit
          +. max 0.0 (leaves.(0).Slicing.Layout.area_min -. Rect.area budget) }
    else viol
  in
  let norm_viol =
    { Slicing.Layout.at_shift = scale viol.Slicing.Layout.at_shift;
      am_deficit = scale viol.Slicing.Layout.am_deficit;
      macro_deficit = scale viol.Slicing.Layout.macro_deficit }
  in
  let pen =
    Slicing.Layout.penalty norm_viol ~at_w:config.Config.at_weight
      ~am_w:config.Config.am_weight ~macro_w:config.Config.macro_weight
  in
  (* A tiny wirelength-free bias keeps annealing meaningful when the
     affinity matrix is empty: prefer legal layouts. *)
  let base = if n_pairs = 0 then 1.0 else wl in
  let cost = base *. (1.0 +. pen) in
  (* NaN poisoning must surface as a diagnostic, never reach the SA
     acceptance test: [nan < x] is silently false, so a poisoned cost
     would freeze the search on whatever expression came first and the
     run would "succeed" with a garbage layout. *)
  if not (Float.is_finite cost) then
    Guard.Diag.fail ~code:"non-finite-cost" ~stage:"floorplan"
      (Printf.sprintf
         "layout cost is %g (wirelength %g, budget %gx%g): non-finite area or \
          position reached the annealer"
         cost wl budget.Rect.w budget.Rect.h);
  (cost, wl, viol)

(* Evaluate [expr] into [s.s_rects]/[s.s_centers] (valid until the next
   call on the same scratch) and return (cost, wirelength, violations). *)
let evaluate_into s ~leaves ~budget ~pairs ~fixed_pos ~config ~n_blocks expr =
  let placement = Slicing.Layout.evaluate expr ~leaves ~budget in
  Array.fill s.s_rects 0 n_blocks budget;
  Array.fill s.s_centers 0 n_blocks s.s_budget_center;
  List.iter
    (fun (lid, r) ->
      s.s_rects.(lid) <- r;
      s.s_centers.(lid) <- Rect.center r)
    placement.Slicing.Layout.rects;
  let pos i = if i < n_blocks then s.s_centers.(i) else fixed_pos.(i - n_blocks) in
  let wl = ref 0.0 in
  Array.iter (fun (i, j, w) -> wl := !wl +. (w *. Point.manhattan (pos i) (pos j))) pairs;
  finish_cost ~leaves ~budget ~n_pairs:(Array.length pairs) ~config ~n_blocks ~wl:!wl
    placement.Slicing.Layout.viol

(* ---- incremental evaluation ---------------------------------------- *)

(* Per-start state for the incremental cost path (DESIGN.md section 14):
   the [Slicing.Inc] tree evaluator plus flat pair tables. [ic_pc]
   caches each pair's wirelength contribution; [ic_adj] lists, per
   block, the pairs it participates in, so a move only recomputes the
   contributions of pairs with a moved endpoint (fixed endpoints never
   move). The total is still re-folded left to right over the whole
   contribution array every evaluation: each entry is bitwise the term
   the full path would compute, and the fold order is the full path's
   pair order, so the sum — and hence the cost — is bit-identical. *)
type inc = {
  ic_state : Slicing.Inc.t;
  ic_pi : int array;
  ic_pj : int array;
  ic_pw : float array;
  ic_pc : float array;
  ic_adj : int array array;
  ic_fx : float array;   (* fixed endpoint coordinates, flattened *)
  ic_fy : float array;
}

let make_inc ~table ~budget ~pairs ~fixed_pos ~n_blocks =
  let np = Array.length pairs in
  let pi = Array.make np 0 and pj = Array.make np 0 and pw = Array.make np 0.0 in
  let deg = Array.make n_blocks 0 in
  Array.iteri
    (fun p (i, j, w) ->
      pi.(p) <- i;
      pj.(p) <- j;
      pw.(p) <- w;
      if i < n_blocks then deg.(i) <- deg.(i) + 1;
      if j < n_blocks then deg.(j) <- deg.(j) + 1)
    pairs;
  let adj = Array.init n_blocks (fun i -> Array.make deg.(i) 0) in
  let fill = Array.make n_blocks 0 in
  Array.iteri
    (fun p (i, j, _) ->
      if i < n_blocks then begin
        adj.(i).(fill.(i)) <- p;
        fill.(i) <- fill.(i) + 1
      end;
      if j < n_blocks then begin
        adj.(j).(fill.(j)) <- p;
        fill.(j) <- fill.(j) + 1
      end)
    pairs;
  { ic_state = Slicing.Inc.create ~table ~budget;
    ic_pi = pi;
    ic_pj = pj;
    ic_pw = pw;
    ic_pc = Array.make np 0.0;
    ic_adj = adj;
    ic_fx = Array.map (fun (p : Point.t) -> p.Point.x) fixed_pos;
    ic_fy = Array.map (fun (p : Point.t) -> p.Point.y) fixed_pos }

(* Incremental counterpart of [evaluate_into]: same contract, same
   floats. Rects are read through [Slicing.Inc.rects inc.ic_state]. *)
let evaluate_inc inc ~leaves ~budget ~config ~n_blocks expr =
  let st = inc.ic_state in
  let viol = Slicing.Inc.evaluate st expr in
  let cx = Slicing.Inc.centers_x st and cy = Slicing.Inc.centers_y st in
  let np = Array.length inc.ic_pc in
  (* Refresh the contribution of one pair. Recomputing a pair twice
     (both endpoints moved) just rewrites the same value, so the moved
     list needs no deduplication. The arithmetic is [w *. Point.manhattan]
     with the same operand order as the full path. *)
  let update p =
    let i = inc.ic_pi.(p) and j = inc.ic_pj.(p) in
    let xi = if i < n_blocks then cx.(i) else inc.ic_fx.(i - n_blocks) in
    let yi = if i < n_blocks then cy.(i) else inc.ic_fy.(i - n_blocks) in
    let xj = if j < n_blocks then cx.(j) else inc.ic_fx.(j - n_blocks) in
    let yj = if j < n_blocks then cy.(j) else inc.ic_fy.(j - n_blocks) in
    inc.ic_pc.(p) <- inc.ic_pw.(p) *. (abs_float (xi -. xj) +. abs_float (yi -. yj))
  in
  if Slicing.Inc.full st then
    for p = 0 to np - 1 do
      update p
    done
  else begin
    let moved = Slicing.Inc.moved st and n_moved = Slicing.Inc.n_moved st in
    for m = 0 to n_moved - 1 do
      let adj = inc.ic_adj.(moved.(m)) in
      for a = 0 to Array.length adj - 1 do
        update adj.(a)
      done
    done
  end;
  (* Canonical left-to-right re-fold in pair order (never resumed from
     a partial sum: float addition is not associative). *)
  let wl = ref 0.0 in
  for p = 0 to np - 1 do
    wl := !wl +. inc.ic_pc.(p)
  done;
  finish_cost ~leaves ~budget ~n_pairs:np ~config ~n_blocks ~wl:!wl viol

(* Full evaluation of one expression: the scalar cost plus its named
   breakdown and the post-hoc per-pair / per-leaf attribution. Runs once
   per placed instance (never inside the SA move loop), so it can afford
   the extra slicing-tree walk of [evaluate_attributed]. *)
let result_of_expr ~leaves ~budget ~pairs ~fixed_pos ~(config : Config.t) ~n_blocks
    ~sa_moves ~final_temperature expr =
  let s = make_scratch ~n_blocks ~budget in
  let cost, wl, viol =
    evaluate_into s ~leaves ~budget ~pairs ~fixed_pos ~config ~n_blocks expr
  in
  let breakdown =
    breakdown_of ~cost ~wirelength:wl ~viol ~config ~budget
      ~n_pairs:(Array.length pairs)
  in
  (* Per-pair wirelength: replay the [evaluate_into] loop term by term.
     Same pairs array, same order, same positions, same float products —
     folding the contributions reproduces [wirelength_term] bit for
     bit. *)
  let pos i = if i < n_blocks then s.s_centers.(i) else fixed_pos.(i - n_blocks) in
  let attr_pairs =
    Array.map
      (fun (i, j, w) ->
        { pc_i = i; pc_j = j; pc_weight = w; pc_wl = w *. Point.manhattan (pos i) (pos j) })
      pairs
  in
  (* Per-leaf violations, with the single-block budget adjustment of
     [evaluate_into] mirrored onto the lone leaf so the attribution
     covers the same total as [viol]. *)
  let _, attr_leaf_viol = Slicing.Layout.evaluate_attributed expr ~leaves ~budget in
  if n_blocks = 1 && Array.length attr_leaf_viol > 0 then
    attr_leaf_viol.(0) <-
      { attr_leaf_viol.(0) with
        Slicing.Layout.am_deficit =
          attr_leaf_viol.(0).Slicing.Layout.am_deficit
          +. max 0.0 (leaves.(0).Slicing.Layout.area_min -. Rect.area budget) };
  { rects = Array.copy s.s_rects; cost; wirelength_term = wl; viol; breakdown;
    attribution = { attr_pairs; attr_leaf_viol }; sa_moves; final_temperature }

let eval_expr ~config ~blocks ~affinity ~fixed_pos ~budget expr =
  let n_blocks = Array.length blocks in
  let leaves = Array.map Block.to_leaf blocks in
  let pairs =
    affinity_pairs ~n_blocks ~n_endpoints:(Array.length affinity) affinity
  in
  result_of_expr ~leaves ~budget ~pairs ~fixed_pos ~config ~n_blocks ~sa_moves:0
    ~final_temperature:0.0 expr

(* The alternating-operator chain skeleton with operand values taken
   from [order]. *)
let chain_expr ~n_blocks ~order =
  let skeleton = Slicing.Polish.elements (Slicing.Polish.initial ~n:n_blocks) in
  let k = ref 0 in
  let elems =
    Array.map
      (fun e ->
        match e with
        | Slicing.Polish.Operand _ ->
          let v = order.(!k) in
          incr k;
          Slicing.Polish.Operand v
        | Slicing.Polish.Operator _ -> e)
      skeleton
  in
  Slicing.Polish.of_elements elems

(* Affinity-greedy operand order: start from the block with the largest
   total affinity and repeatedly append the block most attracted to the
   last one, so strongly coupled blocks are adjacent in the initial
   layout. *)
let greedy_chain ~affinity ~n_blocks ~n_endpoints =
  let total i =
    let acc = ref 0.0 in
    for j = 0 to n_endpoints - 1 do
      if j <> i then acc := !acc +. affinity.(i).(j)
    done;
    !acc
  in
  let remaining = ref (List.init n_blocks (fun i -> i)) in
  let first =
    List.fold_left
      (fun best i -> if total i > total best then i else best)
      (List.hd !remaining) !remaining
  in
  remaining := List.filter (( <> ) first) !remaining;
  let order = ref [ first ] in
  while !remaining <> [] do
    let last = List.hd !order in
    let next =
      List.fold_left
        (fun best i -> if affinity.(last).(i) > affinity.(last).(best) then i else best)
        (List.hd !remaining) !remaining
    in
    remaining := List.filter (( <> ) next) !remaining;
    order := next :: !order
  done;
  Array.of_list (List.rev !order)

let run ?observer ?term_observer ~rng ~config ~blocks ~affinity ~fixed_pos ~budget () =
  let n_blocks = Array.length blocks in
  assert (n_blocks >= 1);
  let leaves = Array.map Block.to_leaf blocks in
  let n_endpoints = Array.length affinity in
  assert (n_endpoints = n_blocks + Array.length fixed_pos);
  let pairs = affinity_pairs ~n_blocks ~n_endpoints affinity in
  let eval_into s expr =
    evaluate_into s ~leaves ~budget ~pairs ~fixed_pos ~config ~n_blocks expr
  in
  if n_blocks = 1 then
    (* No search needed, but the cost must grade budget violations and
       wirelength to fixed endpoints exactly like the multi-block path,
       so sweep objectives stay comparable across instance sizes. *)
    result_of_expr ~leaves ~budget ~pairs ~fixed_pos ~config ~n_blocks ~sa_moves:0
      ~final_temperature:0.0 (Slicing.Polish.initial ~n:1)
  else begin
    (* N independent annealing starts: the affinity-greedy chain, the
       reversed chain and sa_starts - 2 random shuffles. Initial
       expressions and pre-split RNG streams are derived from [rng] in
       start order on the calling domain, so every start's trajectory —
       and hence the reduced result — is independent of how the starts
       are scheduled across domains. *)
    let chain = greedy_chain ~affinity ~n_blocks ~n_endpoints in
    let table = Slicing.Layout.leaf_table leaves in
    let search () =
      Guard.Fault.hit "floorplan.sa";
      (* Honor the configured start count exactly: sa_starts = 1 runs
         the affinity-greedy chain alone (it used to silently run the
         reversed chain too), 2 adds the reversed chain, and anything
         beyond fills up with random shuffles — the same construction
         and RNG consumption as before for >= 2, so the default of 4
         stays bit-identical. *)
      let n_starts_cfg = max 1 config.Config.sa_starts in
      let inits =
        if n_starts_cfg = 1 then [| chain_expr ~n_blocks ~order:chain |]
        else begin
          let rev_chain =
            Array.init n_blocks (fun i -> chain.(n_blocks - 1 - i))
          in
          Array.of_list
            (chain_expr ~n_blocks ~order:chain
            :: chain_expr ~n_blocks ~order:rev_chain
            :: List.init (n_starts_cfg - 2) (fun _ ->
                   Slicing.Polish.initial_random rng ~n:n_blocks))
        end
      in
      let n_starts = Array.length inits in
      (* Every start beyond the first re-anneals the same instance from
         a fresh calibrated temperature — the reheat counter. *)
      Obs.Perf.add Obs.Perf.sa_reheats (n_starts - 1);
      let rngs = Array.init n_starts (fun _ -> Util.Rng.split rng) in
      let pool = Parexec.create ~jobs:config.Config.jobs () in
      let results =
        Parexec.map pool
          (fun i ->
            (* Each start owns its evaluation state (incremental or
               scratch), so the parallel starts share nothing mutable.
               Both paths return bit-identical (cost, wl, viol) — the
               incremental property suite and the bench/CI identity
               checks hold them together — so the flag never changes a
               placement, only the time to reach it. *)
            let eval_expr =
              if config.Config.incremental_eval then begin
                let inc = make_inc ~table ~budget ~pairs ~fixed_pos ~n_blocks in
                fun expr -> evaluate_inc inc ~leaves ~budget ~config ~n_blocks expr
              end
              else begin
                let s = make_scratch ~n_blocks ~budget in
                fun expr -> eval_into s expr
              end
            in
            match term_observer with
            | None ->
              let cost expr =
                Guard.Budget.check ~stage:"floorplan";
                let c, _, _ = eval_expr expr in
                c
              in
              Anneal.Sa.minimize ~rng:rngs.(i) ~init:inits.(i) ~cost
                ~neighbor:(fun rng e -> Slicing.Polish.perturb rng e)
                ~params:config.Config.layout_sa ?observer ()
            | Some on_terms ->
              (* Telemetry-only side channel: the cost closure remembers
                 the cheapest evaluation this start has seen (calibration
                 samples included), and each plateau reports its named
                 breakdown. The closure returns the identical scalar and
                 the observer runs outside the RNG path, so trajectories
                 and placements are unchanged (DESIGN.md §9). *)
              let best = ref infinity in
              let best_wl = ref 0.0 in
              let best_viol = ref Slicing.Layout.no_violations in
              let cost expr =
                Guard.Budget.check ~stage:"floorplan";
                let c, wl, viol = eval_expr expr in
                if not (!best <= c) then begin
                  best := c;
                  best_wl := wl;
                  best_viol := viol
                end;
                c
              in
              let observer' p =
                (match observer with None -> () | Some f -> f p);
                on_terms p
                  (breakdown_of ~cost:!best ~wirelength:!best_wl ~viol:!best_viol
                     ~config ~budget ~n_pairs:(Array.length pairs))
              in
              Anneal.Sa.minimize ~rng:rngs.(i) ~init:inits.(i) ~cost
                ~neighbor:(fun rng e -> Slicing.Polish.perturb rng e)
                ~params:config.Config.layout_sa ~observer:observer' ())
          (Array.init n_starts Fun.id)
      in
      (* Deterministic reduction: minimum best cost, ties to the lowest
         start index. *)
      let best_i = ref 0 in
      for i = 1 to n_starts - 1 do
        if results.(i).Anneal.Sa.best_cost < results.(!best_i).Anneal.Sa.best_cost then
          best_i := i
      done;
      let sa_moves =
        Array.fold_left
          (fun acc (r : _ Anneal.Sa.result) -> acc + r.moves + r.calibration_moves)
          0 results
      in
      ( results.(!best_i).Anneal.Sa.best,
        sa_moves,
        results.(!best_i).Anneal.Sa.final_temperature )
    in
    (* When the annealing search dies — injected fault, exceeded budget
       — the instance keeps the affinity-greedy chain layout: legal by
       construction of the slicing evaluation, just not optimized. *)
    let best_expr, sa_moves, final_temperature =
      Guard.Supervisor.protect ~stage:"floorplan.sa"
        ~fallback:(fun _ -> (chain_expr ~n_blocks ~order:chain, 0, 0.0))
        search
    in
    result_of_expr ~leaves ~budget ~pairs ~fixed_pos ~config ~n_blocks ~sa_moves
      ~final_temperature best_expr
  end

