module Rect = Geom.Rect
module Point = Geom.Point

type result = {
  rects : Rect.t array;
  cost : float;
  wirelength_term : float;
  viol : Slicing.Layout.violations;
  sa_moves : int;
}

(* Sparse list of affinity pairs that involve at least one block. *)
let affinity_pairs ~n_blocks ~n_endpoints affinity =
  let pairs = ref [] in
  for i = 0 to n_blocks - 1 do
    for j = i + 1 to n_endpoints - 1 do
      let w = affinity.(i).(j) in
      if w > 1e-12 then pairs := (i, j, w) :: !pairs
    done
  done;
  Array.of_list !pairs

let evaluate_expr ~leaves ~budget ~pairs ~fixed_pos ~config ~n_blocks expr =
  let placement = Slicing.Layout.evaluate expr ~leaves ~budget in
  let centers = Array.make n_blocks (Rect.center budget) in
  let rects = Array.make n_blocks budget in
  List.iter
    (fun (lid, r) ->
      rects.(lid) <- r;
      centers.(lid) <- Rect.center r)
    placement.Slicing.Layout.rects;
  let pos i = if i < n_blocks then centers.(i) else fixed_pos.(i - n_blocks) in
  let wl = ref 0.0 in
  Array.iter (fun (i, j, w) -> wl := !wl +. (w *. Point.manhattan (pos i) (pos j))) pairs;
  (* Normalize violation areas by the budget area so the penalty weights
     are scale-free. *)
  let scale v = v /. max 1e-9 (Rect.area budget) in
  let viol = placement.Slicing.Layout.viol in
  let norm_viol =
    { Slicing.Layout.at_shift = scale viol.Slicing.Layout.at_shift;
      am_deficit = scale viol.Slicing.Layout.am_deficit;
      macro_deficit = scale viol.Slicing.Layout.macro_deficit }
  in
  let pen =
    Slicing.Layout.penalty norm_viol ~at_w:config.Config.at_weight
      ~am_w:config.Config.am_weight ~macro_w:config.Config.macro_weight
  in
  (* A tiny wirelength-free bias keeps annealing meaningful when the
     affinity matrix is empty: prefer legal layouts. *)
  let base = if Array.length pairs = 0 then 1.0 else !wl in
  let cost = base *. (1.0 +. pen) in
  (rects, cost, !wl, viol)

let run ?observer ~rng ~config ~blocks ~affinity ~fixed_pos ~budget () =
  let n_blocks = Array.length blocks in
  assert (n_blocks >= 1);
  let leaves = Array.map Block.to_leaf blocks in
  if n_blocks = 1 then begin
    let placement = Slicing.Layout.evaluate (Slicing.Polish.initial ~n:1) ~leaves ~budget in
    let rects = Array.make 1 budget in
    List.iter (fun (lid, r) -> rects.(lid) <- r) placement.Slicing.Layout.rects;
    { rects; cost = 0.0; wirelength_term = 0.0; viol = placement.Slicing.Layout.viol;
      sa_moves = 0 }
  end
  else begin
    let n_endpoints = Array.length affinity in
    assert (n_endpoints = n_blocks + Array.length fixed_pos);
    let pairs = affinity_pairs ~n_blocks ~n_endpoints affinity in
    let eval expr =
      evaluate_expr ~leaves ~budget ~pairs ~fixed_pos ~config ~n_blocks expr
    in
    let cost expr =
      let _, c, _, _ = eval expr in
      c
    in
    (* Two starts: an affinity-greedy chain (strongly coupled blocks
       adjacent in the expression, so adjacent in the initial layout) and
       a random shuffle; keep the better annealed result. *)
    let greedy_init =
      let total i =
        let acc = ref 0.0 in
        for j = 0 to n_endpoints - 1 do
          if j <> i then acc := !acc +. affinity.(i).(j)
        done;
        !acc
      in
      let remaining = ref (List.init n_blocks (fun i -> i)) in
      let first =
        List.fold_left
          (fun best i -> if total i > total best then i else best)
          (List.hd !remaining) !remaining
      in
      remaining := List.filter (( <> ) first) !remaining;
      let order = ref [ first ] in
      while !remaining <> [] do
        let last = List.hd !order in
        let next =
          List.fold_left
            (fun best i -> if affinity.(last).(i) > affinity.(last).(best) then i else best)
            (List.hd !remaining) !remaining
        in
        remaining := List.filter (( <> ) next) !remaining;
        order := next :: !order
      done;
      let chain = Array.of_list (List.rev !order) in
      let skeleton = Slicing.Polish.elements (Slicing.Polish.initial ~n:n_blocks) in
      let k = ref 0 in
      let elems =
        Array.map
          (fun e ->
            match e with
            | Slicing.Polish.Operand _ ->
              let v = chain.(!k) in
              incr k;
              Slicing.Polish.Operand v
            | Slicing.Polish.Operator _ -> e)
          skeleton
      in
      Slicing.Polish.of_elements elems
    in
    let anneal init =
      Anneal.Sa.minimize ~rng ~init ~cost
        ~neighbor:(fun rng e -> Slicing.Polish.perturb rng e)
        ~params:config.Config.layout_sa ?observer ()
    in
    let sa1 = anneal greedy_init in
    let sa2 = anneal (Slicing.Polish.initial_random rng ~n:n_blocks) in
    let sa = if sa1.Anneal.Sa.best_cost <= sa2.Anneal.Sa.best_cost then sa1 else sa2 in
    let rects, cost, wl, viol = eval sa.Anneal.Sa.best in
    { rects; cost; wirelength_term = wl; viol;
      sa_moves = sa1.Anneal.Sa.moves + sa2.Anneal.Sa.moves }
  end
