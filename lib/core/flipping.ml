module Tree = Hier.Tree
module Flat = Netlist.Flat
module Rect = Geom.Rect
module Point = Geom.Point
module Orientation = Geom.Orientation

let pin_offset ~orient ~w ~h ~dir =
  let base =
    match dir with
    | `In -> Point.make 0.0 (h /. 2.0)  (* west face centre *)
    | `Out -> Point.make w (h /. 2.0)  (* east face centre *)
  in
  Orientation.apply_offset orient ~w ~h base

let pin_position ~rect ~orient ~dir =
  (* [pin_offset] works in the library (R0) frame: for a dim-swapping
     orientation the placed rect is [h0 x w0], so the library footprint
     is recovered by swapping back. *)
  let w, h =
    if Orientation.swaps_dims orient then (rect.Rect.h, rect.Rect.w)
    else (rect.Rect.w, rect.Rect.h)
  in
  let off = pin_offset ~orient ~w ~h ~dir in
  Point.make (rect.Rect.x +. off.Point.x) (rect.Rect.y +. off.Point.y)

type result = {
  orientations : (int * Orientation.t) list;
  gain : float;
}

(* Position of a Gseq node from the finished floorplan: macros at their
   placed centre, ports on the boundary, registers at the centre of the
   deepest block rectangle containing them. *)
let node_position ~tree ~gseq ~ports ~macro_rect ~ht_rects ~die gid =
  let nd = gseq.Seqgraph.nodes.(gid) in
  match nd.Seqgraph.kind with
  | Seqgraph.Macro fid ->
    (match macro_rect fid with Some r -> Rect.center r | None -> Rect.center die)
  | Seqgraph.Port _ ->
    (match Port_plan.gseq_pos ports gid with Some p -> p | None -> Rect.center die)
  | Seqgraph.Register (fid :: _) ->
    let rec up ht =
      if ht < 0 then Rect.center die
      else
        match Hashtbl.find_opt ht_rects ht with
        | Some r -> Rect.center r
        | None -> up (Tree.node tree ht).Tree.parent
    in
    up (Tree.ht_node_of_flat tree fid)
  | Seqgraph.Register [] -> Rect.center die

let run_body ~tree ~gseq ~ports ~macros ~ht_rects ~die ~config =
  ignore config;
  Obs.Span.attr_int "macros" (List.length macros);
  let rect_of = Hashtbl.create (List.length macros) in
  List.iter (fun (fid, r, _) -> Hashtbl.replace rect_of fid r) macros;
  let macro_rect fid = Hashtbl.find_opt rect_of fid in
  let position = node_position ~tree ~gseq ~ports ~macro_rect ~ht_rects ~die in
  let gain = ref 0.0 in
  let orientations =
    List.map
      (fun (fid, rect, base) ->
        Guard.Budget.check ~stage:"flipping";
        match gseq.Seqgraph.of_flat.(fid) with
        | -1 -> (fid, base)
        | gid ->
          let pulls =
            List.map
              (fun (e : Seqgraph.edge) -> (`In, float_of_int e.Seqgraph.width, position e.Seqgraph.src))
              (Seqgraph.pred_edges gseq gid)
            @ List.map
                (fun (e : Seqgraph.edge) ->
                  (`Out, float_of_int e.Seqgraph.width, position e.Seqgraph.dst))
                (Seqgraph.succ_edges gseq gid)
          in
          let cost orient =
            List.fold_left
              (fun acc (dir, w, p) ->
                acc +. (w *. Point.manhattan (pin_position ~rect ~orient ~dir) p))
              0.0 pulls
          in
          let square = abs_float (rect.Rect.w -. rect.Rect.h) < 1e-9 in
          (* Candidates must preserve the placed footprint: all eight
             orientations for a square macro, otherwise the four in the
             base orientation's dim-swap class (so a macro rotated by
             the floorplanner stays rotated, only flipped). *)
          let candidates =
            if square then Orientation.all
            else if Orientation.swaps_dims base then Orientation.rotating
            else Orientation.non_rotating
          in
          let base_cost = cost base in
          let best, best_cost =
            Array.fold_left
              (fun (bo, bc) o ->
                let c = cost o in
                if c < bc -. 1e-12 then (o, c) else (bo, bc))
              (base, base_cost) candidates
          in
          gain := !gain +. (base_cost -. best_cost);
          (fid, best))
      macros
  in
  Obs.Metrics.gauge "flipping.gain" !gain;
  { orientations; gain = !gain }

let run ~tree ~gseq ~ports ~macros ~ht_rects ~die ~config =
  Obs.Span.with_ ~name:"flipping.run" (fun () ->
      (* Flipping is a pure gain post-process: on failure the base
         orientations from the floorplanner stand, which every
         downstream consumer already handles (an empty orientation list
         means "no overrides"). *)
      Guard.Supervisor.protect ~stage:"flipping.run"
        ~fallback:(fun _ -> { orientations = []; gain = 0.0 })
        (fun () ->
          Guard.Fault.hit "flipping.run";
          run_body ~tree ~gseq ~ports ~macros ~ht_rects ~die ~config))
