(** Macro orientation post-process (paper Algorithm 1, "memory
    flipping").

    The pin model places all input pins at the centre of the macro's west
    face and all output pins at the centre of its east face (in the
    reference orientation) — the typical single-sided/double-sided memory
    pinout. Flipping evaluates the footprint-preserving orientations
    against the macro's side dataflow: each Gseq edge pulls its pin
    toward the other endpoint's position, weighted by the connection
    width. The candidate set preserves the placed footprint: starting
    from the base orientation recorded by the floorplanner
    (R0 / MX / MY / R180 for an upright macro, R90 / R270 / MX90 / MY90
    for one rotated to fit its block, all eight for a square macro).
    The same pin model is exported for the downstream
    wirelength/timing metrics so that flipping gains are measurable. *)

val pin_offset :
  orient:Geom.Orientation.t -> w:float -> h:float -> dir:[ `In | `Out ] -> Geom.Point.t
(** Pin offset from the placed macro's lower-left corner, for a macro
    whose {e library} (R0) footprint is [w] x [h]; for a dim-swapping
    [orient] the offset lives in the rotated [h] x [w] footprint. *)

val pin_position :
  rect:Geom.Rect.t -> orient:Geom.Orientation.t -> dir:[ `In | `Out ] -> Geom.Point.t
(** Absolute pin position of a placed macro. [rect] is the placed
    rectangle (library footprint swapped when [orient] swaps dims). *)

type result = {
  orientations : (int * Geom.Orientation.t) list;  (** flat macro id -> orientation *)
  gain : float;  (** estimated side-dataflow wirelength reduction *)
}

val run :
  tree:Hier.Tree.t ->
  gseq:Seqgraph.t ->
  ports:Port_plan.t ->
  macros:(int * Geom.Rect.t * Geom.Orientation.t) list ->
  ht_rects:(int, Geom.Rect.t) Hashtbl.t ->
  die:Geom.Rect.t ->
  config:Config.t ->
  result
