(** Macro legalization: iterative pairwise separation.

    Overlapping macros are pushed apart along the axis of least
    penetration, then clamped into the die. Converges quickly for the
    mild overlaps produced by the annealing baselines. *)

val separate :
  die:Geom.Rect.t -> ?iterations:int -> ?spacing:float -> Geom.Rect.t array -> Geom.Rect.t array
(** Returns adjusted rectangles (same order). [spacing] is a minimal gap
    kept between macros (default 0). *)

val total_overlap : Geom.Rect.t array -> float
