(** HiDaP — Hierarchical Dataflow Placement (top flow, paper
    Algorithm 1).

    [place] runs the whole pipeline on an elaborated netlist: hierarchy
    tree, shape curves SΓ, recursive block floorplanning, macro flipping.
    [place_sweep] replicates the paper's evaluation protocol: one run per
    λ in the configured sweep, keeping the result ranked best by a
    caller-supplied objective (the paper uses post-placement
    wirelength). *)

module Config = Config
module Block = Block
module Port_plan = Port_plan
module Shape_curves = Shape_curves
module Target_area = Target_area
module Layout_gen = Layout_gen
module Floorplan = Floorplan
module Flipping = Flipping
module Legalize = Legalize
module Placement_io = Placement_io

type macro_placement = {
  fid : int;  (** flat node id of the macro *)
  rect : Geom.Rect.t;
  orient : Geom.Orientation.t;
}

type result = {
  die : Geom.Rect.t;
  placements : macro_placement list;
  levels : Floorplan.level_info list;  (** per-instance block rectangles *)
  top : Floorplan.instance_snapshot option;
  tree : Hier.Tree.t;
  gseq : Seqgraph.t;
  ports : Port_plan.t;
  ht_rects : (int, Geom.Rect.t) Hashtbl.t;
  lambda : float;  (** λ used for this result *)
  sa_moves : int;
  flip_gain : float;
}

val die_for : Netlist.Flat.t -> config:Config.t -> Geom.Rect.t
(** Die sized from total cell area, utilization and aspect ratio. *)

val place :
  ?config:Config.t -> ?die:Geom.Rect.t -> ?ckpt:Ckpt.Session.t -> Netlist.Flat.t -> result
(** Single run with [config.lambda]. The flow is instrumented with
    [Obs] spans and metrics; with no trace sink installed the
    instrumentation is inert and the placement is identical.

    With [ckpt], the run checkpoints itself through the session: every
    completed floorplan instance is recorded (with the post-instance
    RNG state), the flipping result is recorded, and the "floorplan"
    and "flipping" stage boundaries force snapshots. A session that
    resumed from a snapshot replays the recorded work instead of
    recomputing it; because the recorded RNG states are restored, the
    resumed placement is bit-identical to an uninterrupted run at any
    [config.jobs]. *)

type sweep = {
  best : result;  (** run with the smallest objective *)
  best_objective : float;
  sweep_trace : (float * float) list;
      (** every (λ, objective) evaluated, in sweep order — losing runs
          included so callers can report the whole sweep *)
}

val place_sweep :
  ?config:Config.t ->
  ?die:Geom.Rect.t ->
  objective:(result -> float) ->
  Netlist.Flat.t ->
  sweep
(** Runs once per λ in [config.lambda_sweep] and keeps the result
    ranked best by [objective] (ties to the earliest λ), recording
    every λ's objective in [sweep_trace]. The runs execute across up to
    [config.jobs] domains; the outcome — placements, objective, trace
    and telemetry — is bit-identical for every job count. *)

val overlap_area : result -> float
(** Total pairwise overlap between placed macros — 0 for a legal
    placement. *)

val placement_bbox_ok : result -> bool
(** Whether every macro lies inside the die (with epsilon tolerance). *)
