(** Layout generation for one floorplan instance (paper §IV-E).

    The blocks are arranged by a slicing tree explored with simulated
    annealing (operand swap / operator-chain inversion / operand-operator
    swap). The cost is
    [(1 + penalty) * sum over pairs of distance * affinity], where the
    pairs range over (block, block) and (block, fixed endpoint); fixed
    endpoints (ports, external macros) contribute with their fixed
    positions. The penalty grades target-area, minimum-area and
    macro-area violations of the top-down area-budgeted layout. *)

type result = {
  rects : Geom.Rect.t array;  (** per block index *)
  cost : float;
  wirelength_term : float;  (** cost without the penalty factor *)
  viol : Slicing.Layout.violations;
  sa_moves : int;
      (** cost evaluations across every annealing start, including the
          initial-temperature calibration samples *)
  final_temperature : float;
      (** final plateau temperature of the winning annealing start
          (0.0 when no search ran — single block or degraded) *)
}

val run :
  ?observer:(Anneal.Sa.plateau -> unit) ->
  rng:Util.Rng.t ->
  config:Config.t ->
  blocks:Block.t array ->
  affinity:float array array ->
  fixed_pos:Geom.Point.t array ->
  budget:Geom.Rect.t ->
  unit ->
  result
(** [affinity] is indexed over blocks then fixed endpoints
    ([Array.length blocks + Array.length fixed_pos] square).
    A single block is placed directly with no search, but still at the
    penalized multi-block cost. Otherwise [config.sa_starts] annealing
    starts (the affinity-greedy chain, the reversed chain, then random
    shuffles) run across up to [config.jobs] domains, each with an RNG
    stream pre-split in start order; the best result is chosen by
    minimum cost with ties to the lowest start index, so the outcome is
    bit-identical for every job count. [observer] receives per-plateau
    convergence snapshots from every start (it runs on worker domains;
    the telemetry shorthands it may call are domain-safe). *)
