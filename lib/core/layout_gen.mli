(** Layout generation for one floorplan instance (paper §IV-E).

    The blocks are arranged by a slicing tree explored with simulated
    annealing (operand swap / operator-chain inversion / operand-operator
    swap). The cost is
    [(1 + penalty) * sum over pairs of distance * affinity], where the
    pairs range over (block, block) and (block, fixed endpoint); fixed
    endpoints (ports, external macros) contribute with their fixed
    positions. The penalty grades target-area, minimum-area and
    macro-area violations of the top-down area-budgeted layout.

    {1 Cost terms}

    Every evaluated cost also carries a named decomposition (DESIGN.md
    §13): [wirelength] (the affinity-weighted distance sum, or the 1.0
    legality bias when no pairs exist), one penalty product per
    violation grade ([at_penalty]/[am_penalty]/[macro_penalty]) and a
    [residual] closing the float-rounding gap, such that
    {!breakdown_total} reproduces the annealer's scalar bit for bit.
    The decomposition is computed outside the SA move loop from the
    already-evaluated scalar, so it cannot perturb placements. *)

type breakdown = {
  bd_wirelength : float;
      (** the [base] factor: wirelength sum, or 1.0 with no pairs *)
  bd_at_penalty : float;  (** [base * at_weight * normalized at_shift] *)
  bd_am_penalty : float;  (** [base * am_weight * normalized am_deficit] *)
  bd_macro_penalty : float;
      (** [base * macro_weight * normalized macro_deficit] *)
  bd_residual : float;
      (** [cost - (((wirelength + at) + am) + macro)], exact by
          Sterbenz's lemma since the partial sum is within 2x of the
          cost *)
}

val term_names : string list
(** The five term names, in the canonical (summation) order. *)

val breakdown_terms : breakdown -> (string * float) list
(** Name/value pairs in {!term_names} order. *)

val breakdown_total : breakdown -> float
(** Left-to-right sum of the five terms — bit-identical to the [cost]
    the breakdown was computed from. *)

type pair_contrib = {
  pc_i : int;  (** block index *)
  pc_j : int;  (** block index, or fixed endpoint for [j >= n_blocks] *)
  pc_weight : float;  (** affinity weight *)
  pc_wl : float;  (** [weight * manhattan distance] — this pair's share *)
}

type attribution = {
  attr_pairs : pair_contrib array;
      (** one entry per affinity pair, in evaluation order; folding
          [pc_wl] left to right reproduces [wirelength_term] bit for
          bit *)
  attr_leaf_viol : Slicing.Layout.violations array;
      (** per block index: that block's share of [viol] (see
          {!Slicing.Layout.evaluate_attributed}; sums reconcile up to a
          rounding residual) *)
}

type result = {
  rects : Geom.Rect.t array;  (** per block index *)
  cost : float;
  wirelength_term : float;  (** cost without the penalty factor *)
  viol : Slicing.Layout.violations;
  breakdown : breakdown;  (** named terms summing bit-exactly to [cost] *)
  attribution : attribution;  (** per-pair and per-block shares *)
  sa_moves : int;
      (** cost evaluations across every annealing start, including the
          initial-temperature calibration samples *)
  final_temperature : float;
      (** final plateau temperature of the winning annealing start
          (0.0 when no search ran — single block or degraded) *)
}

val breakdown_of :
  cost:float ->
  wirelength:float ->
  viol:Slicing.Layout.violations ->
  config:Config.t ->
  budget:Geom.Rect.t ->
  n_pairs:int ->
  breakdown
(** Decompose an evaluated cost into named terms. [viol] is the
    (unnormalized) violation total the cost was computed from, including
    the single-block budget adjustment. *)

val eval_expr :
  config:Config.t ->
  blocks:Block.t array ->
  affinity:float array array ->
  fixed_pos:Geom.Point.t array ->
  budget:Geom.Rect.t ->
  Slicing.Polish.t ->
  result
(** Evaluate one slicing expression without any search: the same cost,
    breakdown and attribution a {!run} returning this expression would
    produce, with [sa_moves = 0] and [final_temperature = 0.0]. Exposed
    for tests and tools that need to re-attribute a known layout. *)

val run :
  ?observer:(Anneal.Sa.plateau -> unit) ->
  ?term_observer:(Anneal.Sa.plateau -> breakdown -> unit) ->
  rng:Util.Rng.t ->
  config:Config.t ->
  blocks:Block.t array ->
  affinity:float array array ->
  fixed_pos:Geom.Point.t array ->
  budget:Geom.Rect.t ->
  unit ->
  result
(** [affinity] is indexed over blocks then fixed endpoints
    ([Array.length blocks + Array.length fixed_pos] square).
    A single block is placed directly with no search, but still at the
    penalized multi-block cost. Otherwise [config.sa_starts] annealing
    starts (the affinity-greedy chain, the reversed chain, then random
    shuffles) run across up to [config.jobs] domains, each with an RNG
    stream pre-split in start order; the best result is chosen by
    minimum cost with ties to the lowest start index, so the outcome is
    bit-identical for every job count. [observer] receives per-plateau
    convergence snapshots from every start (it runs on worker domains;
    the telemetry shorthands it may call are domain-safe).
    [term_observer] additionally receives, per plateau, the named
    breakdown of the cheapest evaluation that start's cost closure has
    seen so far (calibration samples included, so it can lead the
    annealer's accepted best). Both observers run outside the RNG path:
    enabling them never changes a placement. *)
