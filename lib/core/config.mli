(** Tool parameters, with the paper's defaults. *)

type t = {
  lambda : float;
      (** blend between block flow and macro flow in the affinity
          (paper §IV-D); the evaluation tries [lambda_sweep] and keeps
          the best wirelength *)
  lambda_sweep : float list;  (** paper §V: 0.2 / 0.5 / 0.8 *)
  k : int;  (** latency decay exponent in [score(h, k)] *)
  open_frac : float;
      (** declustering: macro-free nodes above this fraction of the
          instance area are opened (40%) *)
  min_frac : float;
      (** declustering: nodes below this fraction (and macro-free)
          become glue (1%) *)
  bit_threshold : int;  (** Gseq array width filter (§IV-D step 4) *)
  utilization : float;  (** die area = cell area / utilization *)
  die_aspect : float;  (** die width / height *)
  at_weight : float;  (** layout penalty for target-area shifts *)
  am_weight : float;  (** layout penalty for minimum-area deficits *)
  macro_weight : float;  (** layout penalty for macro-area deficits *)
  layout_sa : Anneal.Sa.params;  (** per-instance layout annealing *)
  curve_sa : Anneal.Sa.params;  (** shape-curve generation annealing *)
  max_curve_points : int;
  flipping_passes : int;  (** iterations of the orientation post-process *)
  seed : int;
  sa_starts : int;
      (** independent annealing starts per floorplan instance: the
          affinity-greedy chain alone for 1, plus its reversal for 2,
          plus [sa_starts - 2] random shuffles beyond that (values
          below 1 are clamped to 1) *)
  incremental_eval : bool;
      (** evaluate SA moves incrementally against the previous
          evaluation (default true). The incremental path is
          bit-identical to the full evaluation — same costs, same
          trajectories, same placements — so this only trades time;
          [false] forces the full path for identity checks and
          benchmarking (DESIGN.md section 14). *)
  jobs : int;
      (** worker domains for the annealing starts and the lambda sweep
          (default [Parexec.default_jobs ()]); results are bit-identical
          for every value *)
  faults : Guard.Fault.spec list;
      (** fault-injection specs armed for the run (default none); see
          {!Guard.Fault} for the registered sites *)
  budgets : (string * float) list;
      (** per-stage wall-clock budgets in seconds (default none); a
          stage past its budget degrades to its fallback — see
          {!Guard.Budget} *)
}

val default : t

val with_lambda : t -> float -> t
(** Override both [lambda] and [lambda_sweep] with a single value. *)
