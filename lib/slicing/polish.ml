type op = H | V

type elt =
  | Operand of int
  | Operator of op

type t = elt array

let flip = function H -> V | V -> H

let is_operand = function Operand _ -> true | Operator _ -> false

let is_normalized e =
  let n = Array.length e in
  if n = 0 then false
  else begin
    let ok = ref true in
    let operands = ref 0 and operators = ref 0 in
    for i = 0 to n - 1 do
      (match e.(i) with
      | Operand _ -> incr operands
      | Operator o ->
        incr operators;
        (* no two adjacent equal operators *)
        if i > 0 then (match e.(i - 1) with Operator o' when o' = o -> ok := false | _ -> ()));
      if !operators >= !operands then ok := false
    done;
    !ok && !operands = !operators + 1
  end

let initial ~n =
  assert (n >= 1);
  if n = 1 then [| Operand 0 |]
  else begin
    let e = Array.make ((2 * n) - 1) (Operand 0) in
    e.(0) <- Operand 0;
    let op = ref V in
    for i = 1 to n - 1 do
      e.((2 * i) - 1) <- Operand i;
      e.(2 * i) <- Operator !op;
      op := flip !op
    done;
    e
  end

let initial_random rng ~n =
  let e = initial ~n in
  let operand_positions =
    Array.of_list
      (List.filter (fun i -> is_operand e.(i)) (List.init (Array.length e) (fun i -> i)))
  in
  (* Shuffle the operand values across operand positions. *)
  let values = Array.map (fun i -> e.(i)) operand_positions in
  Util.Rng.shuffle rng values;
  Array.iteri (fun k pos -> e.(pos) <- values.(k)) operand_positions;
  e

let elements t = Array.copy t

let get (t : t) i = t.(i)

let operand_count t =
  Array.fold_left (fun acc e -> if is_operand e then acc + 1 else acc) 0 t

let length t = Array.length t

let of_elements e =
  if not (is_normalized e) then invalid_arg "Polish.of_elements: not normalized";
  Array.copy e

(* M1: swap two adjacent operands (adjacent in the subsequence of
   operands, not necessarily in the array). *)
let move_m1 rng t =
  let n = operand_count t in
  if n < 2 then None
  else begin
    let positions = Array.make n 0 in
    let k = ref 0 in
    Array.iteri
      (fun i e ->
        if is_operand e then begin
          positions.(!k) <- i;
          incr k
        end)
      t;
    let i = Util.Rng.int rng (n - 1) in
    let p = positions.(i) and q = positions.(i + 1) in
    let e = Array.copy t in
    let tmp = e.(p) in
    e.(p) <- e.(q);
    e.(q) <- tmp;
    Some e
  end

(* M2: complement a maximal operator chain. *)
let move_m2 rng t =
  let len = Array.length t in
  let chain_starts = ref [] in
  for i = 0 to len - 1 do
    match t.(i) with
    | Operator _ when i = 0 || is_operand t.(i - 1) -> chain_starts := i :: !chain_starts
    | Operator _ | Operand _ -> ()
  done;
  match !chain_starts with
  | [] -> None
  | starts ->
    let starts = Array.of_list starts in
    let s = Util.Rng.pick rng starts in
    let e = Array.copy t in
    let i = ref s in
    while
      !i < len && match e.(!i) with Operator _ -> true | Operand _ -> false
    do
      (match e.(!i) with
      | Operator o -> e.(!i) <- Operator (flip o)
      | Operand _ -> assert false);
      incr i
    done;
    Some e

(* M3: swap an adjacent operand-operator pair, keeping normalization.
   Try random adjacent pairs a bounded number of times. *)
let move_m3 rng t =
  let len = Array.length t in
  if len < 3 then None
  else begin
    let attempt () =
      let i = Util.Rng.int rng (len - 1) in
      let a = t.(i) and b = t.(i + 1) in
      let swappable =
        match (a, b) with
        | Operand _, Operator _ | Operator _, Operand _ -> true
        | Operand _, Operand _ | Operator _, Operator _ -> false
      in
      if not swappable then None
      else begin
        let e = Array.copy t in
        e.(i) <- b;
        e.(i + 1) <- a;
        if is_normalized e then Some e else None
      end
    in
    let rec try_n k = if k = 0 then None else match attempt () with Some e -> Some e | None -> try_n (k - 1) in
    try_n 16
  end

let perturb rng t =
  let moves = [| move_m1; move_m2; move_m3 |] in
  let order = [| 0; 1; 2 |] in
  Util.Rng.shuffle rng order;
  let rec go i =
    if i >= Array.length order then t
    else
      match moves.(order.(i)) rng t with
      | Some e -> e
      | None -> go (i + 1)
  in
  go 0

let pp ppf t =
  Array.iter
    (fun e ->
      match e with
      | Operand i -> Format.fprintf ppf "%d " i
      | Operator H -> Format.fprintf ppf "H "
      | Operator V -> Format.fprintf ppf "V ")
    t
