(** Incremental slicing-tree evaluation (DESIGN.md section 14).

    One value of {!t} holds the flat, preallocated evaluation state of a
    single annealing start. Each {!evaluate} diffs the expression
    against the last one evaluated on the same state and re-derives only
    the slicing subtrees the diff touches: curve composition runs for
    nodes whose postfix span contains a changed position, and placement
    recursion skips any subtree whose span is untouched and whose
    assigned rectangle is unchanged. Violation totals are re-folded from
    cached per-node contributions in the full evaluation's exact
    preorder, so the results — violations, rectangles, centers — are bit
    for bit what {!Layout.evaluate} returns for the same expression (the
    incremental property suite and the bench/CI identity checks assert
    this).

    The diff targets the last {e evaluated} expression, not the
    annealer's accepted state, so rejected moves need no SA hook: the
    next candidate diffs as a reverted window plus a new window. *)

type t

val create : table:Layout.leaf array -> budget:Geom.Rect.t -> t
(** Fresh (cold) state for an instance with leaf table [table] (from
    {!Layout.leaf_table}) laid out inside [budget]. The first
    {!evaluate} computes everything. *)

val evaluate : t -> Polish.t -> Layout.violations
(** Evaluate [expr], reusing whatever the diff allows. The expression
    must keep the length [create]'s table implies ([2n - 1]); M1/M2/M3
    all preserve it. Rects/centers accessors are valid until the next
    call. *)

val violations : t -> Layout.violations
(** The last evaluation's violation totals. *)

val rects : t -> Geom.Rect.t array
(** Per-lid rectangles of the last evaluation (do not mutate). *)

val centers_x : t -> float array
(** Per-lid center coordinates of the last evaluation — the same floats
    [Geom.Rect.center] derives (do not mutate). *)

val centers_y : t -> float array

val full : t -> bool
(** True when the last evaluation recomputed every leaf (cold state):
    the caller must refresh all derived data, not just {!moved}. *)

val moved : t -> int array
(** Lids whose center changed in the last evaluation, in the first
    [n_moved] slots — the caller's dirty set for wirelength updates.
    Meaningless when {!full} is set. *)

val n_moved : t -> int
