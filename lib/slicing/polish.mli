(** Normalized Polish expressions for slicing floorplans (Wong–Liu, DAC
    1986; the paper's layout representation, §IV-E).

    A Polish expression is a postfix sequence of operands (block indices)
    and the cut operators [V] (vertical cut line: children side by side)
    and [H] (horizontal cut line: children stacked). Normalization means
    the balloting property holds (every prefix has more operands than
    operators) and no two adjacent operators are equal (each slicing tree
    has a unique normalized expression).

    The three perturbations are the paper's (and Wong–Liu's):
    - M1: swap two adjacent operands;
    - M2: complement a maximal chain of operators;
    - M3: swap an adjacent operand–operator pair (retrying until the
      result stays normalized). *)

type op = H | V

type elt =
  | Operand of int
  | Operator of op

type t

val initial : n:int -> t
(** The chain [0 1 V 2 H 3 V ...] with alternating operators; requires
    [n >= 1]. *)

val initial_random : Util.Rng.t -> n:int -> t
(** Random operand order on the same alternating chain skeleton. *)

val elements : t -> elt array
(** Defensive copy. *)

val get : t -> int -> elt
(** O(1) read of element [i], no copy — the incremental evaluator diffs
    expressions element by element on every SA move. *)

val operand_count : t -> int

val length : t -> int

val is_normalized : elt array -> bool
(** Balloting property + no equal adjacent operators + exactly one more
    operand than operators. *)

val of_elements : elt array -> t
(** Validates normalization; raises [Invalid_argument] otherwise. *)

val perturb : Util.Rng.t -> t -> t
(** One of M1 / M2 / M3, chosen with equal probability. Always returns a
    normalized expression (falls back to another move kind if the chosen
    one has no legal application). *)

(** The individual moves, exposed for property testing. Each returns
    [None] when the move has no legal application to [t] (or, for M3,
    when no normalized swap was found within its bounded retries); a
    returned expression is always normalized and permutes the same
    operand multiset. *)

val move_m1 : Util.Rng.t -> t -> t option
val move_m2 : Util.Rng.t -> t -> t option
val move_m3 : Util.Rng.t -> t -> t option

val pp : Format.formatter -> t -> unit
