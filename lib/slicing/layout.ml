module Curve = Shape.Curve
module Rect = Geom.Rect

type leaf = {
  lid : int;
  curve : Curve.t;
  area_min : float;
  area_target : float;
}

type violations = {
  at_shift : float;
  am_deficit : float;
  macro_deficit : float;
}

type placement = {
  rects : (int * Rect.t) list;
  viol : violations;
}

let no_violations = { at_shift = 0.0; am_deficit = 0.0; macro_deficit = 0.0 }

let penalty v ~at_w ~am_w ~macro_w =
  (at_w *. v.at_shift) +. (am_w *. v.am_deficit) +. (macro_w *. v.macro_deficit)

(* Slicing tree reconstructed from the postfix expression. *)
type tree =
  | Leaf of leaf
  | Node of { op : Polish.op; l : tree; r : tree; curve : Curve.t; am : float; at : float }

let curve_of = function Leaf l -> l.curve | Node n -> n.curve

let am_of = function Leaf l -> l.area_min | Node n -> n.am

let at_of = function Leaf l -> l.area_target | Node n -> n.at

let max_curve_points = 24

(* Dense lid -> leaf lookup table. Instance leaves are the block array
   mapped through [Block.to_leaf], so their lids are exactly 0..n-1; a
   duplicate or out-of-range lid means the caller wired the wrong leaf
   set and every per-operand lookup downstream would be garbage, so it
   is rejected up front with a structured diagnostic (not an
   [invalid_arg]: the supervisor must never swallow it into a stage
   fallback). Building the table once per instance also removes the
   O(n) [Array.find_opt] scan per operand that made every tree build
   quadratic. *)
let leaf_table leaves =
  let n = Array.length leaves in
  if n = 0 then [||]
  else begin
    let table = Array.make n leaves.(0) in
    let seen = Array.make n false in
    Array.iter
      (fun l ->
        if l.lid < 0 || l.lid >= n then
          Guard.Diag.fail ~code:"bad-leaf-table" ~stage:"floorplan"
            (Printf.sprintf "leaf lid %d out of range for %d leaves (lids must be 0..%d)"
               l.lid n (n - 1));
        if seen.(l.lid) then
          Guard.Diag.fail ~code:"bad-leaf-table" ~stage:"floorplan"
            (Printf.sprintf "duplicate leaf lid %d in a %d-leaf instance" l.lid n);
        seen.(l.lid) <- true;
        table.(l.lid) <- l)
      leaves;
    table
  end

let leaf_of_table table i =
  if i < 0 || i >= Array.length table then
    Guard.Diag.fail ~code:"bad-leaf-table" ~stage:"floorplan"
      (Printf.sprintf "expression operand %d has no leaf (%d leaves)" i
         (Array.length table));
  table.(i)

let build_tree expr ~table =
  let stack = ref [] in
  Array.iter
    (fun e ->
      match e with
      | Polish.Operand i -> stack := Leaf (leaf_of_table table i) :: !stack
      | Polish.Operator op ->
        (match !stack with
        | r :: l :: rest ->
          (* V cut: children side by side -> widths add (compose_h).
             H cut: children stacked -> heights add (compose_v). *)
          let curve =
            let c =
              match op with
              | Polish.V -> Curve.compose_h (curve_of l) (curve_of r)
              | Polish.H -> Curve.compose_v (curve_of l) (curve_of r)
            in
            if Curve.is_unconstrained c then c else Curve.prune ~max_points:max_curve_points c
          in
          let am = am_of l +. am_of r and at = at_of l +. at_of r in
          stack := Node { op; l; r; curve; am; at } :: rest
        | _ -> invalid_arg "Layout.evaluate: malformed expression"))
    (Polish.elements expr);
  match !stack with
  | [ t ] -> t
  | _ -> invalid_arg "Layout.evaluate: malformed expression"

(* Decide the size of the first child along the cut axis. [extent] is the
   budget along the cut axis, [cross] the perpendicular dimension.
   [mac_min_a]/[mac_min_b] are the children's curve-derived minimum sizes
   along the axis at the given cross dimension (with their own deficit
   already accounted if the cross dimension is too small for any curve
   point). Returns (first child's extent, violations delta). *)
let split_extent ~extent ~cross ~at_a ~at_b ~am_a ~am_b ~mac_min_a ~mac_min_b =
  let total_at = at_a +. at_b in
  let share = if total_at > 0.0 then extent *. (at_a /. total_at) else extent /. 2.0 in
  (* Stage 1: respect minimum areas when feasible. *)
  let lo_am = if cross > 0.0 then am_a /. cross else 0.0 in
  let hi_am = if cross > 0.0 then extent -. (am_b /. cross) else extent in
  let s1 =
    if lo_am <= hi_am then Util.Stat.clamp ~lo:lo_am ~hi:hi_am share
    else if am_a +. am_b > 0.0 then extent *. (am_a /. (am_a +. am_b))
    else share
  in
  (* Stage 2: macro minima override. *)
  let lo_mac = mac_min_a and hi_mac = extent -. mac_min_b in
  let s2 =
    if lo_mac <= hi_mac then Util.Stat.clamp ~lo:lo_mac ~hi:hi_mac s1
    else if mac_min_a +. mac_min_b > 0.0 then
      extent *. (mac_min_a /. (mac_min_a +. mac_min_b))
    else s1
  in
  let s2 = Util.Stat.clamp ~lo:0.0 ~hi:extent s2 in
  let wa = s2 and wb = extent -. s2 in
  let viol =
    { at_shift = abs_float (s2 -. share) *. cross;
      am_deficit =
        max 0.0 (am_a -. (wa *. cross)) +. max 0.0 (am_b -. (wb *. cross));
      macro_deficit =
        (max 0.0 (mac_min_a -. wa) +. max 0.0 (mac_min_b -. wb)) *. cross }
  in
  (s2, viol)

let add_viol a b =
  { at_shift = a.at_shift +. b.at_shift;
    am_deficit = a.am_deficit +. b.am_deficit;
    macro_deficit = a.macro_deficit +. b.macro_deficit }

(* Minimum extent along the cut axis for a subtree inside cross dimension
   [cross]; pairs the extent with any unavoidable macro deficit when no
   curve point respects [cross]. *)
let macro_min_extent curve ~cross ~axis =
  let q =
    match axis with
    | `Width -> Curve.min_width curve ~h:cross
    | `Height -> Curve.min_height curve ~w:cross
  in
  match q with
  | Some m -> (m, 0.0)
  | None ->
    (* Even unlimited extent cannot fit: charge the smallest curve box's
       cross overflow as macro deficit and require its axis extent. *)
    (match Curve.min_area_point curve with
    | None -> (0.0, 0.0)
    | Some (w, h) ->
      let need_axis, need_cross = match axis with `Width -> (w, h) | `Height -> (h, w) in
      (need_axis, max 0.0 (need_cross -. cross) *. need_axis))

let evaluate expr ~leaves ~budget =
  let tree = build_tree expr ~table:(leaf_table leaves) in
  let rects = ref [] in
  let viol = ref no_violations in
  let rec place t (r : Rect.t) =
    match t with
    | Leaf l ->
      (* Leaf macro fit check. *)
      let deficit =
        if Curve.fits l.curve ~w:r.Rect.w ~h:r.Rect.h then 0.0
        else begin
          match Curve.min_area_point l.curve with
          | None -> 0.0
          | Some (w, h) ->
            let need = min ((w -. r.Rect.w) *. h) ((h -. r.Rect.h) *. w) in
            let need = if need <= 0.0 then abs_float need else need in
            max 1e-9 need
        end
      in
      viol := add_viol !viol { no_violations with macro_deficit = deficit };
      rects := (l.lid, r) :: !rects
    | Node { op; l; r = rt; _ } ->
      (match op with
      | Polish.V ->
        let mac_a, def_a = macro_min_extent (curve_of l) ~cross:r.Rect.h ~axis:`Width in
        let mac_b, def_b = macro_min_extent (curve_of rt) ~cross:r.Rect.h ~axis:`Width in
        viol :=
          add_viol !viol { no_violations with macro_deficit = def_a +. def_b };
        let s, dv =
          split_extent ~extent:r.Rect.w ~cross:r.Rect.h ~at_a:(at_of l) ~at_b:(at_of rt)
            ~am_a:(am_of l) ~am_b:(am_of rt) ~mac_min_a:mac_a ~mac_min_b:mac_b
        in
        viol := add_viol !viol dv;
        let frac = if r.Rect.w > 0.0 then s /. r.Rect.w else 0.5 in
        let ra, rb = Rect.split_v r (Util.Stat.clamp ~lo:0.0 ~hi:1.0 frac) in
        place l ra;
        place rt rb
      | Polish.H ->
        let mac_a, def_a = macro_min_extent (curve_of l) ~cross:r.Rect.w ~axis:`Height in
        let mac_b, def_b = macro_min_extent (curve_of rt) ~cross:r.Rect.w ~axis:`Height in
        viol :=
          add_viol !viol { no_violations with macro_deficit = def_a +. def_b };
        let s, dv =
          split_extent ~extent:r.Rect.h ~cross:r.Rect.w ~at_a:(at_of l) ~at_b:(at_of rt)
            ~am_a:(am_of l) ~am_b:(am_of rt) ~mac_min_a:mac_a ~mac_min_b:mac_b
        in
        viol := add_viol !viol dv;
        let frac = if r.Rect.h > 0.0 then s /. r.Rect.h else 0.5 in
        let ra, rb = Rect.split_h r (Util.Stat.clamp ~lo:0.0 ~hi:1.0 frac) in
        place l ra;
        place rt rb)
  in
  place tree budget;
  { rects = List.rev !rects; viol = !viol }

(* ---- per-leaf attribution ------------------------------------------ *)

let rec fold_leaves t acc f =
  match t with
  | Leaf l -> f acc l
  | Node { l; r; _ } -> fold_leaves r (fold_leaves l acc f) f

let scale_viol v w =
  { at_shift = v.at_shift *. w;
    am_deficit = v.am_deficit *. w;
    macro_deficit = v.macro_deficit *. w }

(* Charge a violation delta to every leaf of [t], proportionally to
   target area (equal split when the subtree has none). The spread is
   attribution bookkeeping only: the exact total always lives in the
   shared [viol] accumulator, and downstream consumers reconcile the
   per-leaf rounding with an explicit residual (DESIGN.md §13). *)
let charge arr t v =
  if v.at_shift <> 0.0 || v.am_deficit <> 0.0 || v.macro_deficit <> 0.0 then
    match t with
    | Leaf l -> arr.(l.lid) <- add_viol arr.(l.lid) v
    | Node _ ->
      let total_at = at_of t in
      let n_leaves = fold_leaves t 0 (fun acc _ -> acc + 1) in
      let share l =
        if total_at > 0.0 then l.area_target /. total_at
        else 1.0 /. float_of_int n_leaves
      in
      fold_leaves t () (fun () l ->
          arr.(l.lid) <- add_viol arr.(l.lid) (scale_viol v (share l)))

let evaluate_attributed expr ~leaves ~budget =
  let tree = build_tree expr ~table:(leaf_table leaves) in
  let n = Array.fold_left (fun acc l -> max acc (l.lid + 1)) 0 leaves in
  let per_leaf = Array.make n no_violations in
  let rects = ref [] in
  let viol = ref no_violations in
  (* The recursion mirrors [evaluate] operation for operation — every
     float feeding [rects]/[viol] is computed by the same expressions in
     the same order, so the returned placement is bit-identical (a
     property test holds the two in sync). Only the [charge] calls are
     new, and they write exclusively into [per_leaf]. *)
  let rec place t (r : Rect.t) =
    match t with
    | Leaf l ->
      let deficit =
        if Curve.fits l.curve ~w:r.Rect.w ~h:r.Rect.h then 0.0
        else begin
          match Curve.min_area_point l.curve with
          | None -> 0.0
          | Some (w, h) ->
            let need = min ((w -. r.Rect.w) *. h) ((h -. r.Rect.h) *. w) in
            let need = if need <= 0.0 then abs_float need else need in
            max 1e-9 need
        end
      in
      viol := add_viol !viol { no_violations with macro_deficit = deficit };
      per_leaf.(l.lid) <-
        add_viol per_leaf.(l.lid) { no_violations with macro_deficit = deficit };
      rects := (l.lid, r) :: !rects
    | Node { op; l; r = rt; _ } ->
      let axis = match op with Polish.V -> `Width | Polish.H -> `Height in
      let extent, cross =
        match op with
        | Polish.V -> (r.Rect.w, r.Rect.h)
        | Polish.H -> (r.Rect.h, r.Rect.w)
      in
      let mac_a, def_a = macro_min_extent (curve_of l) ~cross ~axis in
      let mac_b, def_b = macro_min_extent (curve_of rt) ~cross ~axis in
      viol := add_viol !viol { no_violations with macro_deficit = def_a +. def_b };
      charge per_leaf l { no_violations with macro_deficit = def_a };
      charge per_leaf rt { no_violations with macro_deficit = def_b };
      let s, dv =
        split_extent ~extent ~cross ~at_a:(at_of l) ~at_b:(at_of rt) ~am_a:(am_of l)
          ~am_b:(am_of rt) ~mac_min_a:mac_a ~mac_min_b:mac_b
      in
      viol := add_viol !viol dv;
      (* Per-side decomposition of the split violation: the minimum-area
         addends are exactly the two terms summed inside [split_extent];
         the target shift has no natural side, so it splits evenly; the
         macro terms distribute the shared [cross] factor per side. *)
      let wa = s and wb = extent -. s in
      let at_half = 0.5 *. dv.at_shift in
      charge per_leaf l
        { at_shift = at_half;
          am_deficit = max 0.0 (am_of l -. (wa *. cross));
          macro_deficit = max 0.0 (mac_a -. wa) *. cross };
      charge per_leaf rt
        { at_shift = dv.at_shift -. at_half;
          am_deficit = max 0.0 (am_of rt -. (wb *. cross));
          macro_deficit = max 0.0 (mac_b -. wb) *. cross };
      let frac = if extent > 0.0 then s /. extent else 0.5 in
      let frac = Util.Stat.clamp ~lo:0.0 ~hi:1.0 frac in
      let ra, rb =
        match op with
        | Polish.V -> Rect.split_v r frac
        | Polish.H -> Rect.split_h r frac
      in
      place l ra;
      place rt rb
  in
  place tree budget;
  ({ rects = List.rev !rects; viol = !viol }, per_leaf)

let tree_curve expr ~leaves =
  let tree = build_tree expr ~table:(leaf_table leaves) in
  curve_of tree
