(* Incremental slicing-tree evaluation.

   [Layout.evaluate] rebuilds the whole tree and re-derives every shape
   curve and rectangle for each proposed SA move, although an M1/M2/M3
   perturbation only changes a bounded region of the Polish expression.
   This module keeps one flat, preallocated evaluation state per
   annealing start and, on each call, diffs the new expression against
   the last one it evaluated: only nodes whose postfix span contains a
   changed position re-derive their curve/area sums, and only subtrees
   whose assigned rectangle actually changed re-place their leaves.

   Bit-identity with [Layout.evaluate] (the DESIGN.md section 14
   determinism argument, asserted by the incremental property suite and
   the bench/CI identity checks) rests on three facts:

   - A node whose span is unchanged and whose assigned rectangle equals
     the previous evaluation's is a pure function of unchanged inputs:
     every cached value below it (curves, rects, centers, violation
     contributions) is the value the full evaluation would recompute.
   - Violation totals are NOT resumed from per-subtree subtotals (float
     addition is not associative). Instead the elementary per-node
     contributions are cached and re-folded over the whole tree in the
     exact preorder and field order [Layout.evaluate] uses; recomputed
     nodes contribute bitwise-identical terms, so the folded sums are
     bitwise identical. Skipping the [+. 0.0] terms the full path adds
     for absent fields is exact: the accumulators are non-negative and
     [x +. 0.0 = x] for every non-negative float.
   - The caller's wirelength fold works the same way on the per-pair
     contribution array (see [Layout_gen]).

   The diff is taken against the last EVALUATED expression, not the
   annealer's accepted state, so rejected moves need no hook into the
   SA loop: the next candidate simply diffs as "reverted window plus
   new window". *)

module Curve = Shape.Curve
module Rect = Geom.Rect

type t = {
  table : Layout.leaf array;   (* lid -> leaf, validated by [Layout.leaf_table] *)
  budget : Rect.t;
  len : int;                   (* expression length: 2 * n_blocks - 1 *)
  prev : Polish.elt array;     (* the last-evaluated expression's elements *)
  mutable warm : bool;         (* caches consistent with [prev]? *)
  cp : int array;              (* changed-position prefix counts, len + 1 *)
  (* Structure of the current expression, rebuilt every evaluation
     (integer-only stack pass; the float work is what gets skipped). *)
  span_lo : int array;         (* lowest postfix index of node k's subtree *)
  left : int array;            (* child node ids; -1 marks an operand *)
  right : int array;
  lid : int array;             (* operand positions: the block id *)
  stack : int array;
  (* Bottom-up node data, cached across evaluations. *)
  nd_curve : Curve.t array;
  nd_am : float array;
  nd_at : float array;
  (* The rectangle assigned to each node by the last evaluation. *)
  rx : float array;
  ry : float array;
  rw : float array;
  rh : float array;
  (* Elementary violation contributions per node, in the order
     [Layout.evaluate] adds them: [c_def] is the children's
     macro_min_extent deficit sum (or the fit deficit for a leaf),
     [c_at]/[c_am]/[c_mac] the split_extent delta. *)
  c_def : float array;
  c_at : float array;
  c_am : float array;
  c_mac : float array;
  (* Outputs, indexed by lid. *)
  out_rect : Rect.t array;
  out_cx : float array;
  out_cy : float array;
  moved : int array;           (* lids whose center changed this evaluation *)
  mutable n_moved : int;
  mutable full : bool;         (* cold evaluation: treat every lid as moved *)
  (* Violation accumulators; hold the last evaluation's totals between
     calls so an unchanged expression returns without re-folding. *)
  mutable v_at : float;
  mutable v_am : float;
  mutable v_mac : float;
}

let create ~table ~budget =
  let n = Array.length table in
  assert (n >= 1);
  let len = (2 * n) - 1 in
  let c = Rect.center budget in
  { table;
    budget;
    len;
    prev = Array.make len (Polish.Operand 0);
    warm = false;
    cp = Array.make (len + 1) 0;
    span_lo = Array.make len 0;
    left = Array.make len (-1);
    right = Array.make len (-1);
    lid = Array.make len (-1);
    stack = Array.make len 0;
    nd_curve = Array.make len Curve.unconstrained;
    nd_am = Array.make len 0.0;
    nd_at = Array.make len 0.0;
    rx = Array.make len nan;
    ry = Array.make len nan;
    rw = Array.make len nan;
    rh = Array.make len nan;
    c_def = Array.make len 0.0;
    c_at = Array.make len 0.0;
    c_am = Array.make len 0.0;
    c_mac = Array.make len 0.0;
    out_rect = Array.make n budget;
    out_cx = Array.make n c.Geom.Point.x;
    out_cy = Array.make n c.Geom.Point.y;
    moved = Array.make n 0;
    n_moved = 0;
    full = true;
    v_at = 0.0;
    v_am = 0.0;
    v_mac = 0.0 }

(* Accessors for the caller's wirelength update. [moved]/[n_moved] list
   the lids whose center changed in the last [evaluate]; when [full] is
   set the list is not meaningful and every pair must be recomputed. *)
let full t = t.full
let moved t = t.moved
let n_moved t = t.n_moved
let centers_x t = t.out_cx
let centers_y t = t.out_cy
let rects t = t.out_rect

let violations t =
  { Layout.at_shift = t.v_at; am_deficit = t.v_am; macro_deficit = t.v_mac }

(* Re-add a clean subtree's cached contributions in the preorder the
   full evaluation visits them: node first, then left, then right. *)
let rec fold_cached t k =
  let l = t.left.(k) in
  if l < 0 then t.v_mac <- t.v_mac +. t.c_def.(k)
  else begin
    t.v_mac <- t.v_mac +. t.c_def.(k);
    t.v_at <- t.v_at +. t.c_at.(k);
    t.v_am <- t.v_am +. t.c_am.(k);
    t.v_mac <- t.v_mac +. t.c_mac.(k);
    fold_cached t l;
    fold_cached t t.right.(k)
  end

(* Place node [k] into (x, y, w, h), mirroring [Layout.evaluate]'s
   recursion operation for operation on the recompute path. [may_skip]
   is true when the caches are consistent (warm state). *)
let rec place t ~may_skip k x y w h =
  if
    may_skip
    && t.cp.(k + 1) - t.cp.(t.span_lo.(k)) = 0
    && t.rx.(k) = x && t.ry.(k) = y && t.rw.(k) = w && t.rh.(k) = h
  then fold_cached t k
  else begin
    t.rx.(k) <- x;
    t.ry.(k) <- y;
    t.rw.(k) <- w;
    t.rh.(k) <- h;
    let l = t.left.(k) in
    if l < 0 then begin
      let i = t.lid.(k) in
      let leaf = t.table.(i) in
      let deficit =
        if Curve.fits leaf.Layout.curve ~w ~h then 0.0
        else begin
          match Curve.min_area_point leaf.Layout.curve with
          | None -> 0.0
          | Some (cw, ch) ->
            let need = min ((cw -. w) *. ch) ((ch -. h) *. cw) in
            let need = if need <= 0.0 then abs_float need else need in
            max 1e-9 need
        end
      in
      t.c_def.(k) <- deficit;
      t.v_mac <- t.v_mac +. deficit;
      t.out_rect.(i) <- { Rect.x; y; w; h };
      (* Same float expressions as [Rect.center]. *)
      let cx = x +. (w /. 2.0) and cy = y +. (h /. 2.0) in
      if not (cx = t.out_cx.(i) && cy = t.out_cy.(i)) then begin
        t.out_cx.(i) <- cx;
        t.out_cy.(i) <- cy;
        t.moved.(t.n_moved) <- i;
        t.n_moved <- t.n_moved + 1
      end
    end
    else begin
      let r = t.right.(k) in
      let op =
        match t.prev.(k) with
        | Polish.Operator o -> o
        | Polish.Operand _ -> assert false
      in
      let extent, cross =
        match op with Polish.V -> (w, h) | Polish.H -> (h, w)
      in
      let axis = match op with Polish.V -> `Width | Polish.H -> `Height in
      let mac_a, def_a = Layout.macro_min_extent t.nd_curve.(l) ~cross ~axis in
      let mac_b, def_b = Layout.macro_min_extent t.nd_curve.(r) ~cross ~axis in
      let def_sum = def_a +. def_b in
      t.c_def.(k) <- def_sum;
      t.v_mac <- t.v_mac +. def_sum;
      let s, dv =
        Layout.split_extent ~extent ~cross ~at_a:t.nd_at.(l) ~at_b:t.nd_at.(r)
          ~am_a:t.nd_am.(l) ~am_b:t.nd_am.(r) ~mac_min_a:mac_a ~mac_min_b:mac_b
      in
      t.c_at.(k) <- dv.Layout.at_shift;
      t.c_am.(k) <- dv.Layout.am_deficit;
      t.c_mac.(k) <- dv.Layout.macro_deficit;
      t.v_at <- t.v_at +. dv.Layout.at_shift;
      t.v_am <- t.v_am +. dv.Layout.am_deficit;
      t.v_mac <- t.v_mac +. dv.Layout.macro_deficit;
      let frac = if extent > 0.0 then s /. extent else 0.5 in
      let frac = Util.Stat.clamp ~lo:0.0 ~hi:1.0 frac in
      (* Child rects exactly as [Rect.split_v]/[split_h] derive them. *)
      match op with
      | Polish.V ->
        let wl = w *. frac in
        place t ~may_skip l x y wl h;
        place t ~may_skip r (x +. wl) y (w -. wl) h
      | Polish.H ->
        let hb = h *. frac in
        place t ~may_skip l x y w hb;
        place t ~may_skip r x (y +. hb) w (h -. hb)
    end
  end

(* Evaluate [expr], reusing everything the diff against the previous
   evaluation allows. Returns the violation totals; rects and centers
   are read through the accessors (valid until the next call). *)
let evaluate t (expr : Polish.t) =
  if Polish.length expr <> t.len then
    invalid_arg "Inc.evaluate: expression length changed";
  let was_warm = t.warm in
  (* Phase 0: diff against the last-evaluated elements and take
     ownership of the new ones. Prefix counts make "any change in span
     [a, k]?" an O(1) query. *)
  let changed = ref 0 in
  for k = 0 to t.len - 1 do
    let ek = Polish.get expr k in
    let same =
      was_warm
      &&
      match (t.prev.(k), ek) with
      | Polish.Operand a, Polish.Operand b -> a = b
      | Polish.Operator a, Polish.Operator b -> a = b
      | Polish.Operand _, Polish.Operator _ | Polish.Operator _, Polish.Operand _ ->
        false
    in
    if not same then begin
      t.prev.(k) <- ek;
      incr changed
    end;
    t.cp.(k + 1) <- !changed
  done;
  if was_warm && !changed = 0 then begin
    (* Identical expression (e.g. a no-op perturbation): every cached
       output and the held violation totals are the answer. *)
    t.n_moved <- 0;
    t.full <- false;
    violations t
  end
  else begin
    (* An exception below (diagnostic, injected fault) can leave the
       caches half-updated; drop them until an evaluation completes. *)
    t.warm <- false;
    (* Phase 1: structure + bottom-up curves/areas. The stack pass is
       integer work for every node; curve composition (the expensive,
       allocating part) only runs for nodes whose span changed. *)
    let sp = ref 0 in
    for k = 0 to t.len - 1 do
      match t.prev.(k) with
      | Polish.Operand i ->
        t.span_lo.(k) <- k;
        t.left.(k) <- -1;
        t.lid.(k) <- i;
        if not was_warm || t.cp.(k + 1) - t.cp.(k) > 0 then begin
          let leaf = Layout.leaf_of_table t.table i in
          t.nd_curve.(k) <- leaf.Layout.curve;
          t.nd_am.(k) <- leaf.Layout.area_min;
          t.nd_at.(k) <- leaf.Layout.area_target
        end;
        t.stack.(!sp) <- k;
        incr sp
      | Polish.Operator op ->
        if !sp < 2 then invalid_arg "Layout.evaluate: malformed expression";
        let r = t.stack.(!sp - 1) and l = t.stack.(!sp - 2) in
        sp := !sp - 2;
        t.span_lo.(k) <- t.span_lo.(l);
        t.left.(k) <- l;
        t.right.(k) <- r;
        if not was_warm || t.cp.(k + 1) - t.cp.(t.span_lo.(k)) > 0 then begin
          let curve =
            let c =
              match op with
              | Polish.V -> Curve.compose_h t.nd_curve.(l) t.nd_curve.(r)
              | Polish.H -> Curve.compose_v t.nd_curve.(l) t.nd_curve.(r)
            in
            if Curve.is_unconstrained c then c
            else Curve.prune ~max_points:Layout.max_curve_points c
          in
          t.nd_curve.(k) <- curve;
          t.nd_am.(k) <- t.nd_am.(l) +. t.nd_am.(r);
          t.nd_at.(k) <- t.nd_at.(l) +. t.nd_at.(r)
        end;
        t.stack.(!sp) <- k;
        incr sp
    done;
    if !sp <> 1 then invalid_arg "Layout.evaluate: malformed expression";
    (* Phase 2+3: top-down placement with subtree reuse, folding the
       violation contributions in evaluation order as it goes. *)
    t.v_at <- 0.0;
    t.v_am <- 0.0;
    t.v_mac <- 0.0;
    t.n_moved <- 0;
    t.full <- not was_warm;
    let b = t.budget in
    place t ~may_skip:was_warm (t.len - 1) b.Rect.x b.Rect.y b.Rect.w b.Rect.h;
    t.warm <- true;
    violations t
  end
