(** Top-down area-budgeting layout of a slicing tree (paper §IV-E,
    Fig. 8).

    Unlike bottom-up shape-curve packing, the assigned dimensions are a
    budget, not a constraint: the layout always consumes exactly the
    rectangle it was given. At each internal node the rectangle is cut
    (vertically for [V], horizontally for [H]) proportionally to the
    subtree target areas; shape-curve and minimum-area requirements then
    shift the cut, and any shifted or unsatisfiable area is reported as a
    violation, graded by severity: target area [at] (mildest), minimum
    area [am], macro area (most severe). *)

type leaf = {
  lid : int;  (** operand index in the Polish expression *)
  curve : Shape.Curve.t;  (** macro shape curve; unconstrained if none *)
  area_min : float;  (** am: macros + standard cells *)
  area_target : float;  (** at: am plus absorbed glue area *)
}

type violations = {
  at_shift : float;  (** area moved away from the target-proportional cut *)
  am_deficit : float;  (** minimum area not satisfied *)
  macro_deficit : float;  (** macro area that does not fit its rectangle *)
}

type placement = {
  rects : (int * Geom.Rect.t) list;  (** leaf lid -> assigned rectangle *)
  viol : violations;
}

val no_violations : violations

val penalty : violations -> at_w:float -> am_w:float -> macro_w:float -> float
(** Weighted violation sum, used as the paper's multiplicative penalty
    term: [1. +. penalty ...] multiplies the wirelength cost. *)

val evaluate : Polish.t -> leaves:leaf array -> budget:Geom.Rect.t -> placement
(** Lay the slicing tree out inside [budget]. [leaves] must cover exactly
    the operand indices of the expression. The returned rectangles
    partition the budget exactly (up to floating-point rounding). *)

val evaluate_attributed :
  Polish.t -> leaves:leaf array -> budget:Geom.Rect.t -> placement * violations array
(** [evaluate] plus a per-leaf attribution of the violation total. The
    returned placement is bit-identical to [evaluate]'s — the extra
    accumulation never touches the shared float path. Slot [lid] of the
    array holds the share of [placement.viol] charged to that leaf:
    leaf macro-fit deficits go to the leaf itself; each internal node's
    split violations go to its two subtrees (the exact per-side
    minimum-area addends, the target shift split evenly, the macro
    minima distributed by side) and a subtree's charge is spread over
    its leaves proportionally to target area (equal split when the
    subtree has no target area). The charges sum to the total only up
    to float rounding; consumers reconcile with an explicit residual
    (DESIGN.md §13). *)

val tree_curve : Polish.t -> leaves:leaf array -> Shape.Curve.t
(** Bottom-up composition of the leaf curves along the tree — the shape
    curve of the whole arrangement. *)

(** {1 Evaluation internals}

    Shared with {!Inc}, the incremental evaluator, which must reproduce
    this module's floats bit for bit. *)

val leaf_table : leaf array -> leaf array
(** Dense lid -> leaf table: slot [lid] holds the leaf carrying that
    lid. The leaf lids must be exactly [0..n-1]; a duplicate or
    out-of-range lid raises a structured [bad-leaf-table] diagnostic
    ({!Guard.Diag.Fail}). Build it once per instance — it replaces the
    per-operand linear scan that made tree construction quadratic. *)

val leaf_of_table : leaf array -> int -> leaf
(** Table lookup with the same [bad-leaf-table] diagnostic for an
    operand index outside the table. *)

val max_curve_points : int
(** Pruning bound applied to every composed internal-node curve. *)

val macro_min_extent :
  Shape.Curve.t -> cross:float -> axis:[ `Width | `Height ] -> float * float
(** Minimum extent along the cut axis for a subtree inside cross
    dimension [cross], paired with any unavoidable macro deficit when no
    curve point respects [cross]. *)

val split_extent :
  extent:float ->
  cross:float ->
  at_a:float ->
  at_b:float ->
  am_a:float ->
  am_b:float ->
  mac_min_a:float ->
  mac_min_b:float ->
  float * violations
(** Size of the first child along the cut axis plus the split's
    violation delta (see the implementation for the staged clamping). *)
