type t = { jobs : int }

let default_jobs () =
  match Sys.getenv_opt "HIDAP_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> min 64 j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> max 1 (min 64 j)
    | None -> max 1 (default_jobs ())
  in
  { jobs }

let jobs t = t.jobs

(* Set while a task body runs, so a nested [map] (e.g. the per-lambda
   sweep tasks each running per-instance annealing starts) degrades to
   a sequential loop instead of spawning domains from a worker. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* ---- pool utilization accounting ----------------------------------

   Per worker slot (0 = the calling domain, 1.. = spawned domains):
   tasks claimed, tasks stolen (claimed by a spawned domain rather than
   the caller) and busy wall-time inside task bodies. Idle time is the
   remainder against the accumulated pool-open wall time. The numbers
   are timing observations — inherently schedule-dependent — so they
   are surfaced here and in the QoR record's perf section, never
   through [Obs.Metrics] (whose output is schedule-independent) or
   [Obs.Perf] (whose merged counts are identical for every job
   count). Nested sequential maps are not recorded: their busy time is
   already inside the enclosing task's. *)

type worker_stats = { tasks : int; steals : int; busy_us : float }

type pool_stats = { workers : worker_stats array; wall_us : float; maps : int }

let max_workers = 64

let stats_lock = Mutex.create ()

let g_tasks = Array.make max_workers 0
let g_steals = Array.make max_workers 0
let g_busy = Array.make max_workers 0.0
let g_wall = ref 0.0
let g_maps = ref 0

let reset_pool_stats () =
  Mutex.lock stats_lock;
  Array.fill g_tasks 0 max_workers 0;
  Array.fill g_steals 0 max_workers 0;
  Array.fill g_busy 0 max_workers 0.0;
  g_wall := 0.0;
  g_maps := 0;
  Mutex.unlock stats_lock

let pool_stats () =
  Mutex.lock stats_lock;
  let hi = ref 0 in
  for w = 0 to max_workers - 1 do
    if g_tasks.(w) > 0 then hi := w + 1
  done;
  let workers =
    Array.init !hi (fun w ->
        { tasks = g_tasks.(w); steals = g_steals.(w); busy_us = g_busy.(w) })
  in
  let st = { workers; wall_us = !g_wall; maps = !g_maps } in
  Mutex.unlock stats_lock;
  st

type ('b, 'reg, 'span, 'perf) slot =
  | Pending
  | Done of 'b * 'reg option * 'span list * 'perf option
  | Failed of exn * Printexc.raw_backtrace

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    (* Sinks are sampled once, on the calling domain: worker domains
       have no recorder of their own, and the atomic telemetry flags
       must not flip collection on for some tasks and off for
       others. *)
    let metrics_on = Obs.Metrics.enabled () in
    let perf_on = Obs.Perf.enabled () in
    let tracing = Obs.Span.enabled () in
    let slots = Array.make n Pending in
    let run_task i =
      let saved = Domain.DLS.get in_task in
      Domain.DLS.set in_task true;
      (match
         let reg = if metrics_on then Some (Obs.Metrics.create ()) else None in
         let perf = if perf_on then Some (Obs.Perf.create ()) else None in
         let body () = f xs.(i) in
         let in_perf () =
           match perf with
           | Some p -> Obs.Perf.with_ambient p body
           | None -> body ()
         in
         let in_registry () =
           match reg with
           | Some r -> Obs.Metrics.with_ambient r in_perf
           | None -> in_perf ()
         in
         let v, spans =
           if tracing then Obs.Span.capture in_registry else (in_registry (), [])
         in
         (v, reg, spans, perf)
       with
      | v, reg, spans, perf -> slots.(i) <- Done (v, reg, spans, perf)
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        slots.(i) <- Failed (e, bt));
      Domain.DLS.set in_task saved
    in
    let nested = Domain.DLS.get in_task in
    let workers = if nested then 1 else min t.jobs n in
    let tasks_w = Array.make workers 0 in
    let busy_w = Array.make workers 0.0 in
    let map_t0 = Obs.Clock.now_us () in
    let next = Atomic.make 0 in
    let run_worker w =
      Obs.Span.with_publish_slot (fun () ->
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              let t0 = Obs.Clock.now_us () in
              run_task i;
              busy_w.(w) <- busy_w.(w) +. (Obs.Clock.now_us () -. t0);
              tasks_w.(w) <- tasks_w.(w) + 1;
              loop ()
            end
          in
          loop ())
    in
    if workers <= 1 then run_worker 0
    else begin
      let spawned =
        Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> run_worker (w + 1)))
      in
      run_worker 0;
      Array.iter Domain.join spawned
    end;
    if not nested then begin
      let wall = Obs.Clock.now_us () -. map_t0 in
      Mutex.lock stats_lock;
      for w = 0 to workers - 1 do
        g_tasks.(w) <- g_tasks.(w) + tasks_w.(w);
        if w > 0 then g_steals.(w) <- g_steals.(w) + tasks_w.(w);
        g_busy.(w) <- g_busy.(w) +. busy_w.(w)
      done;
      g_wall := !g_wall +. wall;
      incr g_maps;
      Mutex.unlock stats_lock
    end;
    (* Join: fold per-task telemetry back in task order — the merged
       collections depend only on the tasks, never on the schedule. *)
    Array.iter
      (function
        | Done (_, reg, spans, perf) ->
          (match reg with
          | Some r -> Obs.Metrics.merge_into (Obs.Metrics.ambient ()) r
          | None -> ());
          (match perf with
          | Some p -> Obs.Perf.merge_into (Obs.Perf.ambient ()) p
          | None -> ());
          Obs.Span.graft spans
        | Pending | Failed _ -> ())
      slots;
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      slots;
    Array.map
      (function
        | Done (v, _, _, _) -> v
        | Pending | Failed _ -> assert false)
      slots
  end
