type t = { jobs : int }

let default_jobs () =
  match Sys.getenv_opt "HIDAP_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> min 64 j
    | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let create ?jobs () =
  let jobs =
    match jobs with
    | Some j -> max 1 (min 64 j)
    | None -> max 1 (default_jobs ())
  in
  { jobs }

let jobs t = t.jobs

(* Set while a task body runs, so a nested [map] (e.g. the per-lambda
   sweep tasks each running per-instance annealing starts) degrades to
   a sequential loop instead of spawning domains from a worker. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

type ('b, 'reg, 'span) slot =
  | Pending
  | Done of 'b * 'reg option * 'span list
  | Failed of exn * Printexc.raw_backtrace

let map t f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    (* Sinks are sampled once, on the calling domain: worker domains
       have no recorder of their own, and the atomic metrics flag must
       not flip telemetry on for some tasks and off for others. *)
    let metrics_on = Obs.Metrics.enabled () in
    let tracing = Obs.Span.enabled () in
    let slots = Array.make n Pending in
    let run_task i =
      let saved = Domain.DLS.get in_task in
      Domain.DLS.set in_task true;
      (match
         let reg = if metrics_on then Some (Obs.Metrics.create ()) else None in
         let body () = f xs.(i) in
         let in_registry () =
           match reg with
           | Some r -> Obs.Metrics.with_ambient r body
           | None -> body ()
         in
         let v, spans =
           if tracing then Obs.Span.capture in_registry else (in_registry (), [])
         in
         (v, reg, spans)
       with
      | v, reg, spans -> slots.(i) <- Done (v, reg, spans)
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        slots.(i) <- Failed (e, bt));
      Domain.DLS.set in_task saved
    in
    let workers = min t.jobs n in
    if workers <= 1 || Domain.DLS.get in_task then
      for i = 0 to n - 1 do
        run_task i
      done
    else begin
      let next = Atomic.make 0 in
      let rec worker () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_task i;
          worker ()
        end
      in
      let spawned = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join spawned
    end;
    (* Join: fold per-task telemetry back in task order — the merged
       collections depend only on the tasks, never on the schedule. *)
    Array.iter
      (function
        | Done (_, reg, spans) ->
          (match reg with
          | Some r -> Obs.Metrics.merge_into (Obs.Metrics.ambient ()) r
          | None -> ());
          Obs.Span.graft spans
        | Pending | Failed _ -> ())
      slots;
    Array.iter
      (function
        | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      slots;
    Array.map
      (function
        | Done (v, _, _) -> v
        | Pending | Failed _ -> assert false)
      slots
  end
