(** Deterministic fork-join parallelism over OCaml domains.

    [map] distributes independent tasks over a small pool of freshly
    spawned domains (work-stealing over a shared atomic index; the
    calling domain participates) and returns the results in input
    order. The contract is that the observable outcome is {e identical}
    for every job count, including 1:

    - results come back in input order, so any reduction the caller
      performs is independent of scheduling;
    - the first exception {e by task index} (not by wall-clock) is
      re-raised with its backtrace;
    - telemetry is domain-safe and deterministic: each task runs with
      its own fresh {!Obs.Metrics} ambient registry, its own
      {!Obs.Perf} counter array and its own {!Obs.Span} recorder (each
      only when the respective sink is enabled), and the per-task
      collections are merged back into the caller's collectors in task
      order at the join point. Enabling telemetry never changes the
      tasks' trajectory, and the merged telemetry is the same for any
      job count.

    Nested [map] calls from inside a task run sequentially on the
    worker (still with per-task telemetry isolation), so a pool used at
    two levels of a flow cannot deadlock or oversubscribe the machine.

    Tasks must not share mutable state with each other; give each task
    its own scratch buffers and (pre-split) RNG stream. *)

type t

val default_jobs : unit -> int
(** The pool's default and the bound applied when no explicit job count
    is given: the [HIDAP_JOBS] environment variable when set to a
    positive integer (clamped to 64 — lets CI pin the whole test suite
    and bench gate to a job count), otherwise
    [Domain.recommended_domain_count ()]. *)

val create : ?jobs:int -> unit -> t
(** A pool descriptor. Without [jobs], the pool is bounded by
    {!default_jobs}. An explicit [jobs] is honored even beyond the
    recommended count (useful for exercising determinism on small
    machines), clamped to [1, 64]. The descriptor is cheap: domains are
    spawned per [map] call and joined before it returns. *)

val jobs : t -> int

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map t f xs] applies [f] to every element of [xs], running up to
    [jobs t] tasks concurrently, and returns the results in input
    order. See the module description for the determinism contract. *)

(** {1 Pool utilization}

    Busy/idle/steal accounting, aggregated across every top-level
    [map] call since the last {!reset_pool_stats}. These are timing
    observations — inherently schedule-dependent — so they are
    surfaced here (and in the QoR record's perf section) rather than
    through {!Obs.Metrics}, whose exported registry is
    schedule-independent. Collection is always on; the cost is two
    monotonic clock reads per task. *)

type worker_stats = {
  tasks : int;  (** tasks claimed by this worker slot *)
  steals : int;
      (** tasks claimed by a spawned domain (slot > 0) — the shared
          work-stealing index serves the calling domain first, so
          every spawned-domain claim is a steal *)
  busy_us : float;  (** wall-time spent inside task bodies *)
}

type pool_stats = {
  workers : worker_stats array;
      (** slot 0 is the calling domain, 1.. the spawned domains;
          trimmed to the highest slot that ran a task *)
  wall_us : float;  (** accumulated pool-open wall time *)
  maps : int;  (** top-level [map] calls accounted *)
}
(** Idle time of a slot is [wall_us - busy_us]; pool utilization is
    [sum busy / (slots * wall_us)]. *)

val pool_stats : unit -> pool_stats

val reset_pool_stats : unit -> unit
