type params = {
  initial_temp : float option;
  initial_acceptance : float;
  cooling : float;
  moves_per_plateau : int;
  min_temp : float;
  max_moves : int;
}

let default_params =
  { initial_temp = None;
    initial_acceptance = 0.85;
    cooling = 0.92;
    moves_per_plateau = 64;
    min_temp = 1e-4;
    max_moves = 100_000 }

let quick_params =
  { default_params with moves_per_plateau = 24; max_moves = 6_000; cooling = 0.85 }

type 'a result = {
  best : 'a;
  best_cost : float;
  moves : int;
  accepted : int;
  plateaus : int;
  calibration_moves : int;
  final_temperature : float;
}

type plateau = {
  index : int;
  temperature : float;
  current_cost : float;
  plateau_best_cost : float;
  plateau_moves : int;
  plateau_accepted : int;
  total_moves : int;
}

let acceptance_rate p =
  if p.plateau_moves = 0 then 0.0
  else float_of_int p.plateau_accepted /. float_of_int p.plateau_moves

let calibration_samples = 32

(* Sample random moves to estimate the mean uphill cost delta, then pick
   T0 so that exp(-mean_uphill / T0) = target acceptance. *)
let calibrate ~rng ~cost ~neighbor ~target state c0 =
  let samples = calibration_samples in
  let uphill = ref 0.0 and n_up = ref 0 in
  let s = ref state and c = ref c0 in
  for _ = 1 to samples do
    let s' = neighbor rng !s in
    let c' = cost s' in
    if c' > !c then begin
      uphill := !uphill +. (c' -. !c);
      incr n_up
    end;
    s := s';
    c := c'
  done;
  if !n_up = 0 then max 1e-9 (abs_float c0 *. 0.1)
  else
    let mean_up = !uphill /. float_of_int !n_up in
    let t = -.mean_up /. log target in
    max 1e-9 t

let minimize ~rng ~init ~cost ~neighbor ?(params = default_params) ?observer () =
  (* Calibration solves exp(-mean_up / t0) = target for t0, so the
     target must lie strictly inside (0, 1): log 1.0 = 0 divides by
     zero (the 1e-9 floor would silently quench the search), log of a
     non-positive target is NaN, and a target above 1 gives a negative
     temperature. Reject the parameter up front with a structured
     diagnostic instead of annealing with a nonsense schedule. The
     check is written to also catch NaN. *)
  (match params.initial_temp with
  | Some _ -> ()
  | None ->
    let a = params.initial_acceptance in
    if not (a > 0.0 && a < 1.0) then
      Guard.Diag.fail ~code:"bad-sa-acceptance" ~stage:"anneal"
        (Printf.sprintf
           "initial_acceptance %g is outside (0, 1): temperature calibration \
            needs log(target) finite and negative"
           a));
  let c0 = cost init in
  let t0, calibration_moves =
    match params.initial_temp with
    | Some t -> (t, 0)
    | None ->
      ( calibrate ~rng:(Util.Rng.split rng) ~cost ~neighbor
          ~target:params.initial_acceptance init c0,
        calibration_samples )
  in
  let cur = ref init and cur_cost = ref c0 in
  let best = ref init and best_cost = ref c0 in
  let temp = ref t0 in
  let moves = ref 0 and accepted = ref 0 and plateaus = ref 0 in
  let stop_temp = params.min_temp *. t0 in
  while !temp > stop_temp && !moves < params.max_moves do
    let plateau_accepts = ref 0 in
    let plateau_start = !moves in
    for _ = 1 to params.moves_per_plateau do
      if !moves < params.max_moves then begin
        incr moves;
        let cand = neighbor rng !cur in
        let cand_cost = cost cand in
        let delta = cand_cost -. !cur_cost in
        let accept =
          delta <= 0.0
          || Util.Rng.float rng 1.0 < exp (-.delta /. !temp)
        in
        if accept then begin
          cur := cand;
          cur_cost := cand_cost;
          incr accepted;
          incr plateau_accepts;
          if cand_cost < !best_cost then begin
            best := cand;
            best_cost := cand_cost
          end
        end
      end
    done;
    incr plateaus;
    (* The observer runs outside the RNG path: enabling telemetry can
       never change the annealing trajectory. *)
    (match observer with
    | None -> ()
    | Some f ->
      f
        { index = !plateaus - 1;
          temperature = !temp;
          current_cost = !cur_cost;
          plateau_best_cost = !best_cost;
          plateau_moves = !moves - plateau_start;
          plateau_accepted = !plateau_accepts;
          total_moves = !moves });
    temp := !temp *. params.cooling
  done;
  (* Perf counters are flushed once per run from the loop's own local
     tallies, so the annealing inner loop carries no telemetry work at
     all — not even a branch — and the totals are identical to per-move
     bumps (the ≤2% budget in DESIGN.md §12 is asserted by bench). *)
  if Obs.Perf.enabled () then begin
    let h = Obs.Perf.ambient () in
    Obs.Perf.bump h Obs.Perf.sa_moves !moves;
    Obs.Perf.bump h Obs.Perf.sa_accepts !accepted;
    Obs.Perf.bump h Obs.Perf.sa_rejects (!moves - !accepted);
    Obs.Perf.bump h Obs.Perf.sa_plateaus !plateaus;
    (* moves + calibration samples + the initial-state evaluation *)
    Obs.Perf.bump h Obs.Perf.cost_evals (!moves + calibration_moves + 1)
  end;
  { best = !best; best_cost = !best_cost; moves = !moves; accepted = !accepted;
    plateaus = !plateaus; calibration_moves; final_temperature = !temp }
