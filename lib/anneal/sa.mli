(** Generic simulated annealing (minimization).

    The engine is purely functional in the solution type: [neighbor]
    returns a fresh candidate and the engine keeps the incumbent and the
    best-so-far. Temperature follows a geometric schedule; the initial
    temperature can be calibrated automatically from the uphill move
    distribution (Kirkpatrick-style) so that an initial acceptance
    probability is met. *)

type params = {
  initial_temp : float option;
      (** [None] calibrates from sampled uphill deltas. *)
  initial_acceptance : float;
      (** target acceptance probability for calibration (default 0.85) *)
  cooling : float;  (** geometric factor per plateau, in (0, 1) *)
  moves_per_plateau : int;  (** proposals evaluated at each temperature *)
  min_temp : float;  (** stop when temperature drops below *)
  max_moves : int;  (** hard cap on total proposals *)
}

val default_params : params
(** cooling 0.92, 64 moves per plateau, min_temp 1e-4 relative,
    100_000 max moves, calibrated initial temperature. *)

val quick_params : params
(** A small budget for inner loops (shape-curve generation). *)

type 'a result = {
  best : 'a;
  best_cost : float;
  moves : int;  (** schedule proposals evaluated (excludes calibration) *)
  accepted : int;
  plateaus : int;
  calibration_moves : int;
      (** cost evaluations spent calibrating the initial temperature
          ({!calibration_samples} when calibrated, 0 when
          [initial_temp] was given) — so
          [moves + calibration_moves + 1] is the exact number of
          cost-function calls, the [+ 1] being the initial state *)
  final_temperature : float;
      (** temperature after the last completed plateau's cooling step *)
}

val calibration_samples : int
(** Number of neighbor samples drawn by the Kirkpatrick-style initial
    temperature calibration (32). *)

type plateau = {
  index : int;  (** 0-based plateau number *)
  temperature : float;  (** temperature the plateau ran at *)
  current_cost : float;  (** incumbent cost at plateau end *)
  plateau_best_cost : float;  (** best-so-far cost at plateau end *)
  plateau_moves : int;  (** proposals evaluated in this plateau *)
  plateau_accepted : int;  (** proposals accepted in this plateau *)
  total_moves : int;  (** proposals evaluated so far overall *)
}
(** Convergence snapshot handed to the [?observer] after each plateau. *)

val acceptance_rate : plateau -> float
(** [plateau_accepted / plateau_moves] (0 for an empty plateau). *)

val minimize :
  rng:Util.Rng.t ->
  init:'a ->
  cost:('a -> float) ->
  neighbor:(Util.Rng.t -> 'a -> 'a) ->
  ?params:params ->
  ?observer:(plateau -> unit) ->
  unit ->
  'a result
(** Runs the schedule and returns the best solution seen. Deterministic
    given the rng state; [observer] (called once per plateau, after its
    moves) is outside the RNG path, so attaching one cannot change the
    result.

    When {!Obs.Perf} is enabled the run bumps the ambient
    [sa.moves]/[sa.accepts]/[sa.rejects] counters per move (a pair of
    unchecked array increments — one branch per move when disabled)
    and [sa.plateaus]/[cost.evals] once at the end. Counters never
    touch the RNG, so enabling them cannot change the result. *)
