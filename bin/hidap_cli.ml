(* hidap — command-line front end.

   Subcommands:
     stats  FILE.hnl           netlist statistics and abstraction sizes
     place  FILE.hnl           run the HiDaP flow, print macro placements
     eval   (FILE.hnl | -c N)  compare IndEDA / HiDaP / handFP
     gen    -c NAME -o FILE    emit a synthetic suite circuit as HNL *)

open Cmdliner

let load_design path =
  match Hnl.Parser.parse_file path with
  | Ok d -> d
  | Error { Hnl.Parser.line; message } ->
    Format.eprintf "%s:%d: %s@." path line message;
    exit 1

let design_of ~file ~circuit =
  match (file, circuit) with
  | Some path, None -> (Filename.remove_extension (Filename.basename path), load_design path)
  | None, Some name ->
    (match Circuitgen.Suite.find name with
    | Some c -> (name, Circuitgen.Gen.generate c.Circuitgen.Suite.params)
    | None ->
      Format.eprintf "unknown suite circuit %s (c1..c8)@." name;
      exit 1)
  | Some _, Some _ | None, None ->
    Format.eprintf "give exactly one of FILE.hnl or --circuit@.";
    exit 1

(* ---- common args -------------------------------------------------- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.hnl" ~doc:"HNL netlist file.")

let circuit_arg =
  Arg.(value & opt (some string) None & info [ "c"; "circuit" ] ~docv:"NAME"
         ~doc:"Synthetic suite circuit (c1..c8).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed for the flow.")

let lambda_arg =
  Arg.(value & opt (some float) None & info [ "lambda" ]
         ~doc:"Fix the block/macro dataflow blend instead of sweeping 0.2/0.5/0.8.")

let svg_arg =
  Arg.(value & opt (some string) None & info [ "svg" ] ~docv:"OUT.svg"
         ~doc:"Write the floorplan as SVG.")

let config_of ~seed ~lambda =
  let config = { Hidap.Config.default with Hidap.Config.seed } in
  match lambda with
  | Some l -> Hidap.Config.with_lambda config l
  | None -> config

(* ---- observability ------------------------------------------------ *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT.json"
         ~doc:"Write a Chrome-trace JSON of the run (open in chrome://tracing or \
               https://ui.perfetto.dev).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"OUT.json"
         ~doc:"Write flow metrics (counters, gauges, histograms, series) as JSON.")

let profile_arg =
  Arg.(value & flag & info [ "profile" ]
         ~doc:"Print the stage-tree timing summary to stderr.")

(* Run [f] with the observability layer active when any output was
   requested; otherwise run it with the default no-op sink. *)
let with_obs ~trace ~metrics ~profile f =
  let active = trace <> None || metrics <> None || profile in
  if not active then f ()
  else begin
    Obs.Trace.start ();
    Obs.Metrics.set_enabled true;
    let finish () =
      let spans = Obs.Trace.finish () in
      Obs.Metrics.set_enabled false;
      (* A bad output path must not crash away the completed run. *)
      let write what path f =
        try
          f path;
          Format.eprintf "wrote %s %s@." what path
        with Sys_error msg -> Format.eprintf "hidap: cannot write %s: %s@." what msg
      in
      (match trace with
      | Some path -> write "trace" path (fun p -> Obs.Trace.write_chrome_file p spans)
      | None -> ());
      (match metrics with
      | Some path ->
        write "metrics" path (fun p ->
            Obs.Jsonx.write_file p (Obs.Metrics.to_json Obs.Metrics.global))
      | None -> ());
      if profile then prerr_string (Obs.Trace.summary spans);
      Obs.Metrics.reset Obs.Metrics.global
    in
    Fun.protect ~finally:finish f
  end

(* ---- stats -------------------------------------------------------- *)

let stats_cmd =
  let run file circuit dot_hier dot_gseq =
    let _, design = design_of ~file ~circuit in
    let flat = Netlist.Flat.elaborate design in
    Format.printf "%a@." Netlist.Stats.pp (Netlist.Stats.compute flat);
    let gseq = Seqgraph.build flat in
    Format.printf "%a@." Seqgraph.pp_summary gseq;
    let tree = Hier.Tree.build flat in
    let dc =
      Hier.Decluster.run tree ~nh:(Hier.Tree.root tree) ~open_frac:0.4 ~min_frac:0.01
    in
    Format.printf "top-level declustering: %d blocks, %d glue nodes@."
      (List.length dc.Hier.Decluster.hcb)
      (List.length dc.Hier.Decluster.hcg);
    (match dot_hier with
    | Some path ->
      Viz.Dot.write_file path (Viz.Dot.hierarchy tree ());
      Format.printf "wrote %s@." path
    | None -> ());
    match dot_gseq with
    | Some path ->
      Viz.Dot.write_file path (Viz.Dot.seqgraph gseq ());
      Format.printf "wrote %s@." path
    | None -> ()
  in
  let dot_hier_arg =
    Arg.(value & opt (some string) None & info [ "dot-hier" ] ~docv:"OUT.dot"
           ~doc:"Write the hierarchy tree as Graphviz DOT.")
  in
  let dot_gseq_arg =
    Arg.(value & opt (some string) None & info [ "dot-gseq" ] ~docv:"OUT.dot"
           ~doc:"Write the sequential graph as Graphviz DOT.")
  in
  Cmd.v (Cmd.info "stats" ~doc:"Netlist statistics and abstraction sizes")
    Term.(const run $ file_arg $ circuit_arg $ dot_hier_arg $ dot_gseq_arg)

(* ---- place -------------------------------------------------------- *)

let place_cmd =
  let run file circuit seed lambda svg ascii save trace metrics profile =
    with_obs ~trace ~metrics ~profile @@ fun () ->
    let _, design = design_of ~file ~circuit in
    let flat = Netlist.Flat.elaborate design in
    let config = config_of ~seed ~lambda in
    let t0 = Unix.gettimeofday () in
    let r = Hidap.place ~config flat in
    Format.printf "placed %d macros in %.2fs (lambda %.2f, overlap %.2f)@."
      (List.length r.Hidap.placements)
      (Unix.gettimeofday () -. t0)
      r.Hidap.lambda (Hidap.overlap_area r);
    List.iter
      (fun (p : Hidap.macro_placement) ->
        Format.printf "%s %.3f %.3f %.3f %.3f %s@."
          flat.Netlist.Flat.nodes.(p.Hidap.fid).Netlist.Flat.path p.Hidap.rect.Geom.Rect.x
          p.Hidap.rect.Geom.Rect.y p.Hidap.rect.Geom.Rect.w p.Hidap.rect.Geom.Rect.h
          (Geom.Orientation.to_string p.Hidap.orient))
      r.Hidap.placements;
    if ascii then
      print_string
        (Viz.Ascii.floorplan ~die:r.Hidap.die
           ~rects:
             (List.map (fun (p : Hidap.macro_placement) -> ("M", p.Hidap.rect)) r.Hidap.placements)
           ~width:64 ~height:28 ());
    (match save with
    | Some path ->
      let placements =
        List.map
          (fun (p : Hidap.macro_placement) -> (p.Hidap.fid, p.Hidap.rect, p.Hidap.orient))
          r.Hidap.placements
      in
      Hidap.Placement_io.save path
        (Hidap.Placement_io.make ~flat ~die:r.Hidap.die ~placements);
      Format.printf "saved placement to %s@." path
    | None -> ());
    match svg with
    | Some path ->
      let rects =
        List.map
          (fun (p : Hidap.macro_placement) ->
            ( flat.Netlist.Flat.nodes.(p.Hidap.fid).Netlist.Flat.base,
              p.Hidap.rect, Viz.Svg.macro_style ))
          r.Hidap.placements
      in
      Viz.Svg.write_file path (Viz.Svg.floorplan ~die:r.Hidap.die ~rects ());
      Format.printf "wrote %s@." path
    | None -> ()
  in
  let ascii_arg =
    Arg.(value & flag & info [ "ascii" ] ~doc:"Print an ASCII rendering of the floorplan.")
  in
  let save_arg =
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"OUT.place"
           ~doc:"Save the placement to a file (reload with 'view').")
  in
  Cmd.v (Cmd.info "place" ~doc:"Run the HiDaP macro placement flow")
    Term.(const run $ file_arg $ circuit_arg $ seed_arg $ lambda_arg $ svg_arg $ ascii_arg
          $ save_arg $ trace_arg $ metrics_arg $ profile_arg)

(* ---- eval --------------------------------------------------------- *)

let eval_cmd =
  let run file circuit seed trace metrics profile =
    with_obs ~trace ~metrics ~profile @@ fun () ->
    let name, design = design_of ~file ~circuit in
    let config = { Hidap.Config.default with Hidap.Config.seed } in
    let res = Evalflow.run_all ~config ~name design in
    Format.printf "circuit %s: %d cells, %d macros@." res.Evalflow.circuit
      res.Evalflow.cells res.Evalflow.macro_count;
    let rows =
      List.map
        (fun (r : Evalflow.run) ->
          let m = r.Evalflow.metrics in
          [ Evalflow.flow_name r.Evalflow.kind;
            Report.Table.fmt_f 3 m.Evalflow.wl_m;
            Report.Table.fmt_f 3 (Evalflow.normalized_wl res r.Evalflow.kind);
            Report.Table.fmt_f 2 m.Evalflow.grc_pct;
            Report.Table.fmt_f 1 m.Evalflow.wns_pct;
            Report.Table.fmt_f 0 m.Evalflow.tns;
            Report.Table.fmt_f 2 m.Evalflow.runtime_s ])
        res.Evalflow.runs
    in
    print_string
      (Report.Table.render
         ~header:[ "flow"; "WL(m)"; "WLnorm"; "GRC%"; "WNS%"; "TNS"; "rt(s)" ]
         rows);
    (* λ sweep of the HiDaP run, losing candidates included. *)
    List.iter
      (fun (r : Evalflow.run) ->
        match r.Evalflow.sweep_trace with
        | [] -> ()
        | sweep ->
          Format.printf "%s lambda sweep:%s@."
            (Evalflow.flow_name r.Evalflow.kind)
            (String.concat ""
               (List.map
                  (fun (l, o) -> Printf.sprintf "  %.1f->%.0f" l o)
                  sweep)))
      res.Evalflow.runs
  in
  Cmd.v (Cmd.info "eval" ~doc:"Compare the IndEDA / HiDaP / handFP flows")
    Term.(const run $ file_arg $ circuit_arg $ seed_arg $ trace_arg $ metrics_arg
          $ profile_arg)

(* ---- gen ---------------------------------------------------------- *)

let gen_cmd =
  let run circuit out =
    match circuit with
    | None ->
      Format.eprintf "--circuit is required@.";
      exit 1
    | Some name ->
      let _, design = design_of ~file:None ~circuit:(Some name) in
      (match out with
      | Some path ->
        Hnl.Printer.write_file path design;
        Format.printf "wrote %s@." path
      | None -> print_string (Hnl.Printer.to_string design))
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE.hnl"
           ~doc:"Output file (stdout when omitted).")
  in
  Cmd.v (Cmd.info "gen" ~doc:"Emit a synthetic suite circuit as HNL text")
    Term.(const run $ circuit_arg $ out_arg)

(* ---- view --------------------------------------------------------- *)

let view_cmd =
  let run file circuit placement_file =
    let _, design = design_of ~file ~circuit in
    let flat = Netlist.Flat.elaborate design in
    match Hidap.Placement_io.load placement_file with
    | Error msg ->
      Format.eprintf "%s: %s@." placement_file msg;
      exit 1
    | Ok pl ->
      (match Hidap.Placement_io.resolve flat pl with
      | Error msg ->
        Format.eprintf "%s@." msg;
        exit 1
      | Ok placements ->
        let die = pl.Hidap.Placement_io.die in
        let gseq = Seqgraph.build flat in
        let ports = Hidap.Port_plan.make gseq ~die in
        let macros =
          List.map
            (fun (fid, rect, orient) -> { Cellplace.fid; rect; orient })
            placements
        in
        let m, _ = Evalflow.measure ~flat ~gseq ~ports ~die ~macros in
        Format.printf "WL %.3f m  GRC %.2f%%  WNS %.1f%%  TNS %.0f@." m.Evalflow.wl_m
          m.Evalflow.grc_pct m.Evalflow.wns_pct m.Evalflow.tns;
        print_string
          (Viz.Ascii.floorplan ~die
             ~rects:(List.map (fun (_, r, _) -> ("M", r)) placements)
             ~width:64 ~height:28 ()))
  in
  let placement_arg =
    Arg.(required & opt (some file) None & info [ "placement" ] ~docv:"FILE.place"
           ~doc:"Placement file produced by 'place --save'.")
  in
  Cmd.v (Cmd.info "view" ~doc:"Evaluate and render a saved placement")
    Term.(const run $ file_arg $ circuit_arg $ placement_arg)

let () =
  let info =
    Cmd.info "hidap" ~version:"1.0.0"
      ~doc:"RTL-aware dataflow-driven macro placement (DATE 2019 reproduction)"
  in
  exit (Cmd.eval (Cmd.group info [ stats_cmd; place_cmd; eval_cmd; gen_cmd; view_cmd ]))
